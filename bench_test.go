package oscar

// bench_test.go regenerates every paper table and figure as a testing.B
// benchmark (the timing is the cost of the full experiment), plus the
// ablation benchmarks called out in DESIGN.md. Custom metrics (NRMSE,
// speedup) are attached via b.ReportMetric so `go test -bench` output
// records the reproduced numbers next to the runtimes.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/cs"
	"repro/internal/dct"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/graph"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/qpu"
)

func benchConfig() experiments.Config {
	return experiments.Config{Seed: 2023, Quick: true}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	gen := experiments.Registry()[id]
	if gen == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := gen(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// Paper tables.

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }

// Paper figures.

func BenchmarkFig2(b *testing.B)  { runExperiment(b, "fig2") }
func BenchmarkFig4(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkFig8(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// Headline claims.

func BenchmarkSpeedup(b *testing.B) { runExperiment(b, "speedup") }
func BenchmarkEager(b *testing.B)   { runExperiment(b, "eager") }
func BenchmarkFleet(b *testing.B)   { runExperiment(b, "fleet") }

// BenchmarkAdversarial regenerates the chaos-hardened fleet table: four
// injected device-failure scenarios, each comparing fixed, adaptive, and
// risk-aware scheduling at equal reconstruction quality.
func BenchmarkAdversarial(b *testing.B) { runExperiment(b, "adversarial") }

// BenchmarkFleetAdaptive pits adaptive batch sizing against fixed batch
// sizes on a 3-device heterogeneous fleet (queue/exec ratios 120:1, 6:1,
// 0.8:1): each sub-benchmark runs the 500-job fleet schedule and reports the
// mean simulated makespan over 6 seeds as the "makespan_s" metric — the
// acceptance bar is adaptive at or below every fixed size. Wall-clock time
// here measures scheduling + evaluation overhead; the virtual makespan is
// the headline number.
func BenchmarkFleetAdaptive(b *testing.B) {
	rng := rand.New(rand.NewSource(91))
	p, err := problem.Random3RegularMaxCut(16, rng)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
	if err != nil {
		b.Fatal(err)
	}
	grid, err := QAOAGrid(1, 50, 100)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := core.SampleGrid(grid, 0.10, 7, false) // 500 jobs
	if err != nil {
		b.Fatal(err)
	}
	devices := []qpu.Device{
		{Name: "hiq", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 120, Sigma: 0.5, Exec: 1}},
		{Name: "mid", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 30, Sigma: 0.5, Exec: 5}},
		{Name: "slow", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 10, Sigma: 0.5, Exec: 12}},
	}
	seeds := []int64{1, 2, 3, 5, 8, 13}
	variants := []struct {
		name  string
		fixed int
	}{
		{"adaptive", 0}, {"fixed-8", 8}, {"fixed-32", 32}, {"fixed-64", 64}, {"fixed-128", 128},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				mean = 0
				for _, seed := range seeds {
					s, err := fleet.New(fleet.Options{Seed: seed, FixedBatch: v.fixed}, devices...)
					if err != nil {
						b.Fatal(err)
					}
					rep, err := s.Run(context.Background(), grid, idx)
					if err != nil {
						b.Fatal(err)
					}
					mean += rep.Makespan / float64(len(seeds))
				}
			}
			b.ReportMetric(mean, "makespan_s")
		})
	}
}

// BenchmarkFleetTracing pins the observability layer's cost on the fleet hot
// path: the same 500-job adaptive schedule as BenchmarkFleetAdaptive, once
// with a bare context (the nil-tracer fast path — must match the pre-tracing
// baseline) and once with a root span riding the context so every plan,
// batch, retry, and solve span is recorded.
func BenchmarkFleetTracing(b *testing.B) {
	rng := rand.New(rand.NewSource(91))
	p, err := problem.Random3RegularMaxCut(16, rng)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
	if err != nil {
		b.Fatal(err)
	}
	grid, err := QAOAGrid(1, 50, 100)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := core.SampleGrid(grid, 0.10, 7, false) // 500 jobs
	if err != nil {
		b.Fatal(err)
	}
	devices := []qpu.Device{
		{Name: "hiq", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 120, Sigma: 0.5, Exec: 1}},
		{Name: "mid", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 30, Sigma: 0.5, Exec: 5}},
		{Name: "slow", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 10, Sigma: 0.5, Exec: 12}},
	}
	run := func(b *testing.B, ctx context.Context) {
		b.Helper()
		s, err := fleet.New(fleet.Options{Seed: 1}, devices...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(ctx, grid, idx); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, context.Background())
		}
	})
	b.Run("enabled", func(b *testing.B) {
		var spans float64
		for i := 0; i < b.N; i++ {
			tr := obs.NewTracer("bench")
			root := tr.Start("job")
			run(b, obs.ContextWithSpan(context.Background(), root))
			root.End()
			spans = float64(tr.Len())
			if tr.Dropped() > 0 {
				b.Fatalf("%d spans dropped under the default cap", tr.Dropped())
			}
		}
		b.ReportMetric(spans, "spans")
	})
}

// benchLandscape builds a deterministic 16-qubit noisy QAOA landscape for
// the ablations.
func benchLandscape(b *testing.B, gridB, gridG int) (*landscape.Grid, *landscape.Landscape, landscape.EvalFunc) {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	p, err := problem.Random3RegularMaxCut(16, rng)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
	if err != nil {
		b.Fatal(err)
	}
	grid, err := landscape.NewGrid(
		landscape.Axis{Name: "beta", Min: -math.Pi / 4, Max: math.Pi / 4, N: gridB},
		landscape.Axis{Name: "gamma", Min: -math.Pi / 2, Max: math.Pi / 2, N: gridG},
	)
	if err != nil {
		b.Fatal(err)
	}
	truth, err := landscape.Generate(grid, ev.Evaluate, 0)
	if err != nil {
		b.Fatal(err)
	}
	return grid, truth, ev.Evaluate
}

// BenchmarkAblationSolver compares the three sparse-recovery algorithms
// (DESIGN.md ablation 1) at a fixed 8% sampling fraction, reporting each
// solver's NRMSE alongside its runtime.
func BenchmarkAblationSolver(b *testing.B) {
	grid, truth, eval := benchLandscape(b, 30, 60)
	for _, m := range []cs.Method{cs.FISTA, cs.ISTA, cs.OMP} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				opt := core.Options{SamplingFraction: 0.08, Seed: 5}
				opt.Solver = cs.DefaultOptions()
				opt.Solver.Method = m
				if m == cs.ISTA {
					opt.Solver.MaxIter = 2000
				}
				if m == cs.OMP {
					opt.Solver.OMPSparsity = 40
				}
				recon, _, err := core.Reconstruct(grid, eval, opt)
				if err != nil {
					b.Fatal(err)
				}
				last, err = landscape.NRMSE(truth.Data, recon.Data)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last, "nrmse")
		})
	}
}

// BenchmarkAblationDCT compares the O(N log N) FFT-based DCT against the
// direct O(N^2) reference (DESIGN.md ablation 2).
func BenchmarkAblationDCT(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 1500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.Run("fft", func(b *testing.B) {
		p := dct.NewPlan(len(x))
		out := make([]float64, len(x))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Forward(out, x)
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dct.ForwardDirect(x)
		}
	})
}

// BenchmarkAblationReshape compares the paper's (b1*b2)x(g1*g2)
// concatenation against the (b1*g1)x(b2*g2) axis pairing at the same sample
// budget (DESIGN.md ablation 3). The result shows the pairing choice is a
// first-order design decision: grouping axes that co-vary in the cost (here
// each layer's own beta/gamma pair) is an order of magnitude more accurate
// than the lexicographic layout, because it avoids the artificial repeating
// patterns the paper attributes its p=2 accuracy drop to.
func BenchmarkAblationReshape(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	p, err := problem.Random3RegularMaxCut(8, rng)
	if err != nil {
		b.Fatal(err)
	}
	a2 := func() landscape.EvalFunc {
		ev, err := backend.NewAnalyticQAOA(p, noise.Ideal())
		if err != nil {
			b.Fatal(err)
		}
		// Synthetic separable p=2-style landscape from two p=1 surfaces.
		return func(x []float64) (float64, error) {
			v1, err := ev.Evaluate([]float64{x[0], x[2]})
			if err != nil {
				return 0, err
			}
			v2, err := ev.Evaluate([]float64{x[1], x[3]})
			if err != nil {
				return 0, err
			}
			return v1 + 0.5*v2, nil
		}
	}()
	nb, ng := 8, 10
	g4, err := landscape.NewGrid(
		landscape.Axis{Name: "b1", Min: -math.Pi / 8, Max: math.Pi / 8, N: nb},
		landscape.Axis{Name: "b2", Min: -math.Pi / 8, Max: math.Pi / 8, N: nb},
		landscape.Axis{Name: "g1", Min: -math.Pi / 4, Max: math.Pi / 4, N: ng},
		landscape.Axis{Name: "g2", Min: -math.Pi / 4, Max: math.Pi / 4, N: ng},
	)
	if err != nil {
		b.Fatal(err)
	}
	truth, err := landscape.Generate(g4, a2, 0)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("paper-pairing", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			recon, _, err := core.Reconstruct(g4, a2, core.Options{SamplingFraction: 0.2, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			last, _ = landscape.NRMSE(truth.Data, recon.Data)
		}
		b.ReportMetric(last, "nrmse")
	})
	b.Run("mixed-pairing", func(b *testing.B) {
		// Permute axes to (b1,g1,b2,g2): rows=b1*g1, cols=b2*g2.
		permuted := func(x []float64) (float64, error) {
			return a2([]float64{x[0], x[2], x[1], x[3]})
		}
		gp, err := landscape.NewGrid(
			landscape.Axis{Name: "b1", Min: -math.Pi / 8, Max: math.Pi / 8, N: nb},
			landscape.Axis{Name: "g1", Min: -math.Pi / 4, Max: math.Pi / 4, N: ng},
			landscape.Axis{Name: "b2", Min: -math.Pi / 8, Max: math.Pi / 8, N: nb},
			landscape.Axis{Name: "g2", Min: -math.Pi / 4, Max: math.Pi / 4, N: ng},
		)
		if err != nil {
			b.Fatal(err)
		}
		ptruth, err := landscape.Generate(gp, permuted, 0)
		if err != nil {
			b.Fatal(err)
		}
		var last float64
		for i := 0; i < b.N; i++ {
			recon, _, err := core.Reconstruct(gp, permuted, core.Options{SamplingFraction: 0.2, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			last, _ = landscape.NRMSE(ptruth.Data, recon.Data)
		}
		b.ReportMetric(last, "nrmse")
	})
}

// BenchmarkAblationSampling compares uniform-random against stratified
// parameter sampling (DESIGN.md ablation 4).
func BenchmarkAblationSampling(b *testing.B) {
	grid, truth, eval := benchLandscape(b, 30, 60)
	for _, stratified := range []bool{false, true} {
		name := "uniform"
		if stratified {
			name = "stratified"
		}
		stratified := stratified
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				recon, _, err := core.Reconstruct(grid, eval, core.Options{
					SamplingFraction: 0.08, Seed: 5, Stratified: stratified,
				})
				if err != nil {
					b.Fatal(err)
				}
				last, _ = landscape.NRMSE(truth.Data, recon.Data)
			}
			b.ReportMetric(last, "nrmse")
		})
	}
}

// BenchmarkAblationEngine compares the closed-form depth-1 QAOA engine
// against full state-vector simulation for the same expectation
// (DESIGN.md ablation 5) — identical answers, orders of magnitude apart.
func BenchmarkAblationEngine(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	p, err := problem.Random3RegularMaxCut(16, rng)
	if err != nil {
		b.Fatal(err)
	}
	an, err := backend.NewAnalyticQAOA(p, noise.Ideal())
	if err != nil {
		b.Fatal(err)
	}
	a, err := QAOAAnsatz(p, 1)
	if err != nil {
		b.Fatal(err)
	}
	sv, err := backend.NewStateVector(p, a)
	if err != nil {
		b.Fatal(err)
	}
	params := []float64{0.3, -0.6}
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := an.Evaluate(params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("statevector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sv.Evaluate(params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenerateEngine pits the batched execution engine against the
// naive fan-out it replaced — one goroutine per grid point — on the paper's
// 50x100 Table 1 AnalyticQAOA grid (5000 points). The engine's chunking
// amortizes goroutine scheduling and lets the closed-form backend run whole
// sub-batches natively; the acceptance bar is >= 2x over the naive baseline.
func BenchmarkGenerateEngine(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	p, err := problem.Random3RegularMaxCut(16, rng)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
	if err != nil {
		b.Fatal(err)
	}
	grid, err := QAOAGrid(1, 50, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("engine-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := landscape.GenerateBatch(context.Background(), grid, exec.FromEvaluator(ev), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-goroutine-per-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := landscape.New(grid)
			var (
				wg sync.WaitGroup
				mu sync.Mutex
			)
			for idx := 0; idx < grid.Size(); idx++ {
				wg.Add(1)
				go func(idx int) {
					defer wg.Done()
					v, err := ev.Evaluate(grid.Point(idx))
					if err != nil {
						return
					}
					mu.Lock()
					l.Data[idx] = v
					mu.Unlock()
				}(idx)
			}
			wg.Wait()
		}
	})
	b.Run("engine-cached", func(b *testing.B) {
		// Steady-state with the memo cache warm: the regime an optimizer
		// or repeated ZNE sweep sees.
		cache := exec.NewCache(0)
		en := exec.New(exec.FromEvaluator(ev), exec.Options{Cache: cache})
		pts := grid.AllPoints()
		if _, err := en.EvaluateBatch(context.Background(), pts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := en.EvaluateBatch(context.Background(), pts); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Dense landscape via full state-vector simulation (the ground-truth
	// path for problems with no closed form): the zero-allocation simulator
	// engine against the seed per-point path (fresh 2^n state per point,
	// one full-state pass per Hamiltonian term), both through the same
	// batched engine, on two 12-qubit MaxCut instances. The seed cost is
	// O((gates + |E|) * 2^n) per point while the engine's is
	// O(gates * 2^n) + O(2^n), so the speedup grows with edge count; the
	// acceptance bar for this PR is >= 3x on an |E| >= 10 instance.
	svRng := rand.New(rand.NewSource(78))
	prob3reg, err := problem.Random3RegularMaxCut(12, svRng) // |E| = 18
	if err != nil {
		b.Fatal(err)
	}
	kGraph, err := graph.SK(12, svRng) // complete graph, |E| = 66
	if err != nil {
		b.Fatal(err)
	}
	probK12, err := problem.MaxCut("k12-maxcut", kGraph)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		prob *problem.Problem
	}{
		{"3reg18", prob3reg},
		{"complete66", probK12},
	} {
		svAns, err := QAOAAnsatz(tc.prob, 1)
		if err != nil {
			b.Fatal(err)
		}
		sv, err := backend.NewStateVector(tc.prob, svAns)
		if err != nil {
			b.Fatal(err)
		}
		svProb, svCircuit := tc.prob, svAns.Circuit
		seedPath := &backend.Func{
			Label:  "sv-seed-" + tc.name,
			Params: svAns.NumParams,
			F: func(params []float64) (float64, error) {
				return seedEvaluate(svCircuit, params, svProb.Hamiltonian)
			},
		}
		b.Run("statevector-engine-"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := landscape.GenerateBatch(context.Background(), grid, exec.FromEvaluator(sv), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("statevector-seed-"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := landscape.GenerateBatch(context.Background(), grid, exec.FromEvaluator(seedPath), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStateVectorBatch measures the simulator's native batch path
// directly (no engine): pooled scratch states, the fused diagonal
// expectation, and deterministic point shards. allocs/point must sit at
// zero in steady state — run with -benchmem; the reported allocations per
// op are for a whole 5000-point batch, and the explicit allocs/point metric
// divides them out.
func BenchmarkStateVectorBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(79))
	p, err := problem.Random3RegularMaxCut(12, rng)
	if err != nil {
		b.Fatal(err)
	}
	a, err := QAOAAnsatz(p, 1)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := QAOAGrid(1, 50, 100)
	if err != nil {
		b.Fatal(err)
	}
	pts := grid.AllPoints()
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers-%d", workers)
		if workers == 0 {
			name = "workers-max"
		}
		b.Run(name, func(b *testing.B) {
			sv, err := backend.NewStateVector(p, a)
			if err != nil {
				b.Fatal(err)
			}
			sv.SetWorkers(workers)
			if _, err := sv.EvaluateBatch(context.Background(), pts); err != nil {
				b.Fatal(err) // warm the scratch pool
			}
			b.ReportAllocs()
			b.ResetTimer()
			var allocs0 runtime.MemStats
			runtime.ReadMemStats(&allocs0)
			for i := 0; i < b.N; i++ {
				if _, err := sv.EvaluateBatch(context.Background(), pts); err != nil {
					b.Fatal(err)
				}
			}
			var allocs1 runtime.MemStats
			runtime.ReadMemStats(&allocs1)
			perPoint := float64(allocs1.Mallocs-allocs0.Mallocs) / float64(b.N) / float64(len(pts))
			b.ReportMetric(perPoint, "allocs/point")
		})
	}
}

// BenchmarkReconstructParallel compares the serial solver against the
// sharded solver on the paper's 50x100 Table 1 grid. The samples are
// measured once outside the timed region, so each sub-benchmark times the
// reconstruction phase alone — the phase this PR shards. workers-0 resolves
// to GOMAXPROCS; on a multi-core runner it should beat workers-1
// measurably, and every variant produces bit-identical output.
func BenchmarkReconstructParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	p, err := problem.Random3RegularMaxCut(16, rng)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
	if err != nil {
		b.Fatal(err)
	}
	grid, err := QAOAGrid(1, 50, 100)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := core.SampleGrid(grid, 0.05, 7, false)
	if err != nil {
		b.Fatal(err)
	}
	values, err := exec.New(exec.FromEvaluator(ev), exec.Options{}).
		EvaluateBatch(context.Background(), grid.Points(idx))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers-%d", workers)
		if workers == 0 {
			name = "workers-max"
		}
		b.Run(name, func(b *testing.B) {
			opt := core.Options{SamplingFraction: 0.05, Seed: 7}
			opt.Solver = cs.DefaultOptions()
			opt.Solver.Workers = workers
			if workers == 1 {
				opt.Workers = 1 // serial baseline end to end
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ReconstructFromSamples(grid, idx, values, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReconstructMany solves a fleet of independent 50x100
// reconstructions — the concurrent-jobs regime the service layer will serve
// — once through ReconstructMany's pool and once as a serial loop.
func BenchmarkReconstructMany(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	p, err := problem.Random3RegularMaxCut(16, rng)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
	if err != nil {
		b.Fatal(err)
	}
	grid, err := QAOAGrid(1, 50, 100)
	if err != nil {
		b.Fatal(err)
	}
	const fleet = 8
	jobs := make([]cs.Job, fleet)
	for k := range jobs {
		idx, err := core.SampleGrid(grid, 0.05, int64(100+k), false)
		if err != nil {
			b.Fatal(err)
		}
		values, err := exec.New(exec.FromEvaluator(ev), exec.Options{}).
			EvaluateBatch(context.Background(), grid.Points(idx))
		if err != nil {
			b.Fatal(err)
		}
		opt := cs.DefaultOptions()
		opt.Workers = 1
		jobs[k] = cs.Job{Rows: 50, Cols: 100, Idx: idx, Y: values, Opt: opt}
	}
	b.Run("pool", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, jr := range cs.ReconstructMany(context.Background(), jobs...) {
				if jr.Err != nil {
					b.Fatal(jr.Err)
				}
			}
		}
	})
	b.Run("serial-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, j := range jobs {
				if _, err := cs.Reconstruct2D(j.Rows, j.Cols, j.Idx, j.Y, j.Opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkReconstruct5000 is the paper's headline operation: reconstruct
// the 50x100 Table 1 grid from 5% of its points.
func BenchmarkReconstruct5000(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	p, err := problem.Random3RegularMaxCut(16, rng)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
	if err != nil {
		b.Fatal(err)
	}
	grid, err := QAOAGrid(1, 50, 100)
	if err != nil {
		b.Fatal(err)
	}
	truth, err := landscape.Generate(grid, ev.Evaluate, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		recon, stats, err := core.Reconstruct(grid, ev.Evaluate, core.Options{
			SamplingFraction: 0.05, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		last, _ = landscape.NRMSE(truth.Data, recon.Data)
		if stats.Speedup != 20 {
			b.Fatalf("speedup %g", stats.Speedup)
		}
	}
	b.ReportMetric(last, "nrmse")
}

// BenchmarkReconstructND is the p=2 analogue of BenchmarkReconstruct5000: a
// true 4-D solve on the 10x10x10x10 depth-2 grid from 5% of its points, at
// one and max solver worker counts (the sharded per-axis DCT passes are
// bit-identical across the two).
func BenchmarkReconstructND(b *testing.B) {
	rng := rand.New(rand.NewSource(83))
	dims := []int{10, 10, 10, 10}
	n := 10000
	strides := []int{1000, 100, 10, 1}
	coeffs := make([]float64, n)
	for i := 0; i < 8; i++ {
		idx := 0
		for _, s := range strides {
			idx += rng.Intn(4) * s
		}
		coeffs[idx] = 2*rng.Float64() + 1
	}
	x := make([]float64, n)
	dct.NewPlanND(dims).Inverse(x, coeffs)
	idx, err := cs.SampleIndices(rng, n, n/20)
	if err != nil {
		b.Fatal(err)
	}
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	for _, workers := range []int{1, 0} {
		name := "workers-1"
		if workers == 0 {
			name = "workers-max"
		}
		b.Run(name, func(b *testing.B) {
			opt := cs.DefaultOptions()
			opt.Workers = workers
			var last *cs.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = cs.ReconstructND(dims, idx, y, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			var num, den float64
			for i := range x {
				d := last.X[i] - x[i]
				num += d * d
				den += x[i] * x[i]
			}
			b.ReportMetric(math.Sqrt(num/den), "relerr")
		})
	}
}

// BenchmarkSurrogateDescent times the full p=2 surrogate loop through the
// public API: 4-D reconstruction, NDSpline fit, and an ADAM descent on the
// interpolated surrogate (zero further circuit executions).
func BenchmarkSurrogateDescent(b *testing.B) {
	p, err := MeshMaxCut(2, 4)
	if err != nil {
		b.Fatal(err)
	}
	a, err := QAOAAnsatz(p, 2)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := NewStateVector(p, a)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := QAOAGridP(2, 7, 8)
	if err != nil {
		b.Fatal(err)
	}
	be := Batch(dev)
	ctx := context.Background()
	b.ResetTimer()
	var last *SurrogateResult
	for i := 0; i < b.N; i++ {
		last, err = OptimizeOnSurrogate(ctx, grid, be, SurrogateOptions{
			Recon: Options{SamplingFraction: 0.25, Seed: int64(i)},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Optimum.F, "surrogate-min")
	b.ReportMetric(float64(last.Stats.Samples), "circuit-execs")
}

// BenchmarkFusedCostLayer records the diagonal-fusion win on the paper's two
// 12-qubit MaxCut shapes: the |E|=18 3-regular graph and the |E|=66
// complete (SK) graph. Both legs sweep the full 50x100 Table 1 grid through
// the statevector batch path on one worker; "edge-by-edge" forces the
// pre-fusion kernels (one RZZ sweep per edge per point), "fused" runs each
// cost layer as a single phase-table pass, so the ns/op ratio is the
// integer-factor speedup claimed in the README — larger for denser graphs
// because the fused cost no longer scales with |E|.
func BenchmarkFusedCostLayer(b *testing.B) {
	rng := rand.New(rand.NewSource(79))
	reg, err := problem.Random3RegularMaxCut(12, rng)
	if err != nil {
		b.Fatal(err)
	}
	skGraph, err := graph.SK(12, rng)
	if err != nil {
		b.Fatal(err)
	}
	sk, err := problem.MaxCut("sk-12", skGraph)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := QAOAGrid(1, 50, 100)
	if err != nil {
		b.Fatal(err)
	}
	pts := grid.AllPoints()
	for _, tc := range []struct {
		name string
		prob *problem.Problem
	}{
		{"3reg18", reg},
		{"complete66", sk},
	} {
		a, err := QAOAAnsatz(tc.prob, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, leg := range []struct {
			name string
			opts []backend.Option
		}{
			{"edge-by-edge", []backend.Option{backend.WithoutDiagonalFusion()}},
			{"fused", nil},
		} {
			b.Run(tc.name+"/"+leg.name, func(b *testing.B) {
				sv, err := backend.NewStateVector(tc.prob, a, leg.opts...)
				if err != nil {
					b.Fatal(err)
				}
				sv.SetWorkers(1)
				if _, err := sv.EvaluateBatch(context.Background(), pts); err != nil {
					b.Fatal(err) // warm the scratch pool and table caches
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sv.EvaluateBatch(context.Background(), pts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(pts)), "ns/point")
			})
		}
	}
}

// BenchmarkLandscapeQuery measures the landscape-as-a-service hot read path:
// batch-evaluating a fitted spline surrogate (Interpolator.AtPoints — what
// oscard's POST /landscapes/{id}/query serves) against re-running the
// statevector backend for the same points. The surrogate's batch values are
// asserted bit-identical to pointwise AtPoint calls in setup, and the
// surrogate sub-benchmark reports its measured advantage over the backend as
// the x-vs-backend metric — the ISSUE's >= 1000x bar.
func BenchmarkLandscapeQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	prob, err := Random3RegularMaxCut(16, rng)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := QAOAGrid(1, 50, 100)
	if err != nil {
		b.Fatal(err)
	}
	// The surrogate's fit data comes from the cheap analytic evaluator —
	// what it was fitted to does not change read-path cost — while the
	// comparison backend is the real statevector simulator.
	analytic, err := NewAnalyticQAOA(prob, IdealNoise())
	if err != nil {
		b.Fatal(err)
	}
	recon, _, err := Reconstruct(grid, analytic.Evaluate, Options{SamplingFraction: 0.05, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ip, err := Interpolate(recon)
	if err != nil {
		b.Fatal(err)
	}
	// 512 query points straddling the hull, like real optimizer traffic.
	pts := make([][]float64, 512)
	for i := range pts {
		p := make([]float64, 2)
		for k, ax := range grid.Axes {
			span := ax.Max - ax.Min
			p[k] = ax.Min - 0.2*span + 1.4*span*rng.Float64()
		}
		pts[i] = p
	}
	dst := make([]float64, len(pts))
	if err := ip.AtPoints(dst, pts); err != nil {
		b.Fatal(err)
	}
	for i, p := range pts {
		if math.Float64bits(dst[i]) != math.Float64bits(ip.AtPoint(p)) {
			b.Fatalf("batch read %d not bit-identical to pointwise: %g vs %g", i, dst[i], ip.AtPoint(p))
		}
	}
	a, err := QAOAAnsatz(prob, 1)
	if err != nil {
		b.Fatal(err)
	}
	var backendNs float64
	b.Run("statevector-backend", func(b *testing.B) {
		sv, err := NewStateVector(prob, a)
		if err != nil {
			b.Fatal(err)
		}
		be := Batch(sv)
		ctx := context.Background()
		if _, err := be.EvaluateBatch(ctx, pts); err != nil {
			b.Fatal(err) // warm the scratch pool
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := be.EvaluateBatch(ctx, pts); err != nil {
				b.Fatal(err)
			}
		}
		backendNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("surrogate-query", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ip.AtPoints(dst, pts); err != nil {
				b.Fatal(err)
			}
		}
		per := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if backendNs > 0 && per > 0 {
			b.ReportMetric(backendNs/per, "x-vs-backend")
		}
	})
}
