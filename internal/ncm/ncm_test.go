package ncm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/backend"
	"repro/internal/noise"
	"repro/internal/problem"
)

func TestFitExactAffineRelation(t *testing.T) {
	src := []float64{0, 1, 2, 3, 4}
	ref := make([]float64, len(src))
	for i, x := range src {
		ref[i] = 0.8*x + 0.3
	}
	m, err := Fit(src, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Slope-0.8) > 1e-12 || math.Abs(m.Intercept-0.3) > 1e-12 {
		t.Fatalf("fit %+v", m)
	}
	if math.Abs(m.R2-1) > 1e-12 {
		t.Fatalf("R2=%g", m.R2)
	}
	if got := m.Transform(10); math.Abs(got-8.3) > 1e-12 {
		t.Fatalf("Transform(10)=%g", got)
	}
	all := m.TransformAll([]float64{0, 10})
	if math.Abs(all[0]-0.3) > 1e-12 || math.Abs(all[1]-8.3) > 1e-12 {
		t.Fatalf("TransformAll=%v", all)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := Fit([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single pair")
	}
	if _, err := Fit([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for constant source")
	}
	if _, err := Fit([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Error("want error for NaN")
	}
}

// TestNCMBridgesTwoNoisyDevices is the core Section 5.1 claim: expectations
// measured on two depolarizing devices are affinely related, so a model
// trained on a few points transfers the rest accurately.
func TestNCMBridgesTwoNoisyDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	p, err := problem.Random3RegularMaxCut(12, rng)
	if err != nil {
		t.Fatal(err)
	}
	ev1, err := backend.NewAnalyticQAOA(p, noise.QPU1())
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := backend.NewAnalyticQAOA(p, noise.QPU2())
	if err != nil {
		t.Fatal(err)
	}
	// Train on a handful of random points.
	var src, ref []float64
	for i := 0; i < 12; i++ {
		params := []float64{(rng.Float64() - 0.5) * math.Pi / 2, (rng.Float64() - 0.5) * math.Pi}
		v2, _ := ev2.Evaluate(params)
		v1, _ := ev1.Evaluate(params)
		src = append(src, v2)
		ref = append(ref, v1)
	}
	m, err := Fit(src, ref)
	if err != nil {
		t.Fatal(err)
	}
	if m.R2 < 0.999 {
		t.Fatalf("two depolarizing devices should be near-perfectly affine; R2=%g", m.R2)
	}
	// Evaluate transfer quality on held-out points.
	var worst float64
	for i := 0; i < 50; i++ {
		params := []float64{(rng.Float64() - 0.5) * math.Pi / 2, (rng.Float64() - 0.5) * math.Pi}
		v2, _ := ev2.Evaluate(params)
		v1, _ := ev1.Evaluate(params)
		if d := math.Abs(m.Transform(v2) - v1); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Fatalf("worst transfer error %g", worst)
	}
}
