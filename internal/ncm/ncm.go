// Package ncm implements the paper's Noise Compensation Model (Section
// 5.1): a linear regression that maps expected cost values measured on one
// QPU to the noise configuration of a reference QPU, so samples collected on
// heterogeneous devices can be mixed into one noise-preserving
// reconstruction.
//
// The model is justified by the depolarizing structure of device noise: a
// depolarizing-family channel acts affinely on expectation values
// (E -> f*E + (1-f)*tr), so expectations measured on two devices of the same
// circuit family are related by an affine map y ≈ a*x + b, which is exactly
// what the paper fits with 1% of the landscape's samples.
package ncm

import (
	"errors"
	"fmt"
	"math"
)

// Model is the fitted affine map from a source QPU's expectations to the
// reference QPU's.
type Model struct {
	// Slope and Intercept define reference ≈ Slope*source + Intercept.
	Slope, Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
	// TrainingPairs is the number of (source, reference) pairs used.
	TrainingPairs int
}

// Fit trains an NCM from paired measurements of the same circuit parameters
// on the source and reference devices.
func Fit(source, reference []float64) (*Model, error) {
	if len(source) != len(reference) {
		return nil, fmt.Errorf("ncm: %d source vs %d reference values", len(source), len(reference))
	}
	if len(source) < 2 {
		return nil, errors.New("ncm: need at least 2 training pairs")
	}
	n := float64(len(source))
	var sx, sy, sxx, sxy, syy float64
	for i := range source {
		x, y := source[i], reference[i]
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return nil, fmt.Errorf("ncm: non-finite training pair (%g, %g)", x, y)
		}
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-18 {
		return nil, errors.New("ncm: degenerate training set (constant source values)")
	}
	slope := (n*sxy - sx*sy) / den
	icept := (sy - slope*sx) / n

	// R^2 against the mean predictor.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range source {
		pred := slope*source[i] + icept
		ssRes += (reference[i] - pred) * (reference[i] - pred)
		ssTot += (reference[i] - meanY) * (reference[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return &Model{Slope: slope, Intercept: icept, R2: r2, TrainingPairs: len(source)}, nil
}

// Transform maps a source-device measurement into the reference device's
// noise configuration.
func (m *Model) Transform(v float64) float64 { return m.Slope*v + m.Intercept }

// TransformAll maps a batch of measurements.
func (m *Model) TransformAll(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = m.Transform(v)
	}
	return out
}
