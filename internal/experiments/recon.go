package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ansatz"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/problem"
)

// Table1 prints the grid definitions of the paper's Table 1 (no
// measurement; this is configuration documentation).
func Table1(cfg Config) (*Table, error) {
	b1min, b1max, g1min, g1max := ansatz.QAOAGridAxes(1)
	b2min, b2max, g2min, g2max := ansatz.QAOAGridAxes(2)
	return &Table{
		ID:      "table1",
		Title:   "Grid definition of QAOA ansatz",
		Headers: []string{"depth", "beta range", "#beta", "gamma range", "#gamma", "total points"},
		Rows: [][]string{
			{"p=1", fmt.Sprintf("[%.3f, %.3f]", b1min, b1max), "50", fmt.Sprintf("[%.3f, %.3f]", g1min, g1max), "100", "5000"},
			{"p=2", fmt.Sprintf("[%.3f, %.3f]", b2min, b2max), "12 per layer", fmt.Sprintf("[%.3f, %.3f]", g2min, g2max), "15 per layer", "12^2*15^2 = 32400"},
		},
	}, nil
}

// twoParamSlice builds a 2-D landscape of an arbitrary-arity evaluator by
// varying two randomly chosen parameters and fixing the rest at random
// values — the paper's Table 2/3 protocol for high-dimensional ansatzes.
type twoParamSlice struct {
	eval  backend.Evaluator
	vary  [2]int
	fixed []float64
}

func newTwoParamSlice(eval backend.Evaluator, rng *rand.Rand, lo, hi float64) *twoParamSlice {
	n := eval.NumParams()
	fixed := make([]float64, n)
	for i := range fixed {
		fixed[i] = lo + (hi-lo)*rng.Float64()
	}
	i := rng.Intn(n)
	j := rng.Intn(n - 1)
	if j >= i {
		j++
	}
	if i > j {
		i, j = j, i
	}
	return &twoParamSlice{eval: eval, vary: [2]int{i, j}, fixed: fixed}
}

func (s *twoParamSlice) Evaluate(p []float64) (float64, error) {
	full := append([]float64(nil), s.fixed...)
	full[s.vary[0]] = p[0]
	full[s.vary[1]] = p[1]
	return s.eval.Evaluate(full)
}

// sliceGrid builds the samplesPerDim x samplesPerDim grid over [lo, hi]^2
// used by the Table 2/3 protocol.
func sliceGrid(samplesPerDim int, lo, hi float64) (*landscape.Grid, error) {
	return landscape.NewGrid(
		landscape.Axis{Name: "p_i", Min: lo, Max: hi, N: samplesPerDim},
		landscape.Axis{Name: "p_j", Min: lo, Max: hi, N: samplesPerDim},
	)
}

// reconSliceError runs the Table 2/3 protocol once: dense truth on the
// 2-parameter slice, reconstruction from a fraction of points, NRMSE.
func reconSliceError(eval backend.Evaluator, rng *rand.Rand, samplesPerDim int, lo, hi, fraction float64, workers int) (float64, error) {
	sl := newTwoParamSlice(eval, rng, lo, hi)
	grid, err := sliceGrid(samplesPerDim, lo, hi)
	if err != nil {
		return 0, err
	}
	truth, err := landscape.Generate(grid, sl.Evaluate, workers)
	if err != nil {
		return 0, err
	}
	recon, _, err := core.Reconstruct(grid, sl.Evaluate, core.Options{
		SamplingFraction: fraction,
		Seed:             rng.Int63(),
		Workers:          workers,
	})
	if err != nil {
		return 0, err
	}
	return landscape.NRMSE(truth.Data, recon.Data)
}

// table2Case describes one row of Table 2.
type table2Case struct {
	problemKind string // "3reg" or "sk"
	qubits      int
	params      int
	samples     int
}

// buildCaseEvaluators returns the QAOA and Two-local evaluators for a Table
// 2 case. QAOA depth is chosen so 2p = params; Two-local reps so
// n*(reps+1) = params.
func buildCaseEvaluators(kind string, qubits, params int, rng *rand.Rand) (qaoaEval, twoLocalEval backend.Evaluator, err error) {
	var p *problem.Problem
	switch kind {
	case "3reg":
		p, err = problem.Random3RegularMaxCut(qubits, rng)
	case "sk":
		p, err = problem.SK(qubits, rng)
	default:
		return nil, nil, fmt.Errorf("experiments: unknown problem kind %q", kind)
	}
	if err != nil {
		return nil, nil, err
	}
	qa, err := ansatz.QAOA(p.Graph, params/2)
	if err != nil {
		return nil, nil, err
	}
	qaoaEval, err = backend.NewStateVector(p, qa)
	if err != nil {
		return nil, nil, err
	}
	reps := params/qubits - 1
	tl, err := ansatz.TwoLocal(qubits, reps)
	if err != nil {
		return nil, nil, err
	}
	twoLocalEval, err = backend.NewStateVector(p, tl)
	if err != nil {
		return nil, nil, err
	}
	return qaoaEval, twoLocalEval, nil
}

// Table2 reproduces the paper's Table 2: reconstruction errors for QAOA and
// Two-local ansatzes on 4- and 6-qubit MaxCut and SK problems using the
// two-varying-parameter protocol.
func Table2(cfg Config) (*Table, error) {
	repeats := 20
	if cfg.Quick {
		repeats = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cases := []table2Case{
		{"3reg", 4, 8, 7},
		{"3reg", 6, 6, 14},
		{"sk", 4, 8, 7},
		{"sk", 6, 6, 14},
	}
	t := &Table{
		ID:      "table2",
		Title:   "Reconstruction errors (NRMSE) for QAOA and Two-local ansatzes",
		Headers: []string{"problem", "#qubits", "#params", "#samples/dim", "QAOA", "Two-local"},
		Notes:   fmt.Sprintf("median over %d random 2-parameter slices; sampling fraction 30%%", repeats),
	}
	for _, c := range cases {
		qe, te, err := buildCaseEvaluators(c.problemKind, c.qubits, c.params, rng)
		if err != nil {
			return nil, err
		}
		var qErrs, tErrs []float64
		for r := 0; r < repeats; r++ {
			e1, err := reconSliceError(qe, rng, c.samples, -math.Pi/2, math.Pi/2, 0.3, cfg.Workers)
			if err != nil {
				return nil, err
			}
			e2, err := reconSliceError(te, rng, c.samples, -math.Pi, math.Pi, 0.3, cfg.Workers)
			if err != nil {
				return nil, err
			}
			qErrs = append(qErrs, e1)
			tErrs = append(tErrs, e2)
		}
		name := "3-reg MaxCut"
		if c.problemKind == "sk" {
			name = "SK Problem"
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(c.qubits), fmt.Sprint(c.params), fmt.Sprint(c.samples),
			f(median(qErrs)), f(median(tErrs)),
		})
	}
	return t, nil
}

// Table3 reproduces the paper's Table 3: reconstruction errors for H2 and
// LiH with Two-local and UCCSD-style ansatzes.
func Table3(cfg Config) (*Table, error) {
	repeats := 20
	if cfg.Quick {
		repeats = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	type row struct {
		mol     string
		ansatz  string
		samples int
		eval    backend.Evaluator
	}
	h2 := problem.H2()
	lih := problem.LiH()
	tlH2, err := ansatz.TwoLocal(2, 1) // 4 params
	if err != nil {
		return nil, err
	}
	tlLiH, err := ansatz.TwoLocal(4, 1) // 8 params
	if err != nil {
		return nil, err
	}
	ucH2, err := ansatz.UCCSDH2()
	if err != nil {
		return nil, err
	}
	ucLiH, err := ansatz.UCCSDLiH()
	if err != nil {
		return nil, err
	}
	mk := func(p *problem.Problem, a *ansatz.Ansatz) backend.Evaluator {
		ev, err2 := backend.NewStateVector(p, a)
		if err2 != nil {
			err = err2
		}
		return ev
	}
	rows := []row{
		{"H2", "Two-local", 14, mk(h2, tlH2)},
		{"LiH", "Two-local", 7, mk(lih, tlLiH)},
		{"H2", "UCCSD", 14, mk(h2, ucH2)},
		{"H2", "UCCSD", 50, mk(h2, ucH2)},
		{"LiH", "UCCSD", 7, mk(lih, ucLiH)},
	}
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table3",
		Title:   "Reconstruction errors (NRMSE) for H2 and LiH molecules",
		Headers: []string{"molecule", "ansatz", "#qubits", "#params", "#samples/dim", "NRMSE"},
		Notes:   fmt.Sprintf("median over %d random 2-parameter slices; sampling fraction 30%%", repeats),
	}
	for _, r := range rows {
		var errs []float64
		for k := 0; k < repeats; k++ {
			e, err := reconSliceError(r.eval, rng, r.samples, -math.Pi, math.Pi, 0.3, cfg.Workers)
			if err != nil {
				return nil, err
			}
			errs = append(errs, e)
		}
		nq := 2
		if r.mol == "LiH" {
			nq = 4
		}
		t.Rows = append(t.Rows, []string{
			r.mol, r.ansatz, fmt.Sprint(nq), fmt.Sprint(r.eval.NumParams()),
			fmt.Sprint(r.samples), f(median(errs)),
		})
	}
	return t, nil
}

// Table4 reproduces the paper's Table 4: the fraction of DCT coefficients
// holding 99% of the spectral energy, across problems and ansatzes —
// the sparsity evidence that justifies compressed sensing.
func Table4(cfg Config) (*Table, error) {
	repeats := 12
	if cfg.Quick {
		repeats = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	t := &Table{
		ID:      "table4",
		Title:   "Fraction of DCT coefficients preserving 99% of signal energy",
		Headers: []string{"problem", "QAOA", "Two-local", "UCCSD"},
		Notes:   fmt.Sprintf("mean over %d random 2-parameter slices, 32 samples/dim", repeats),
	}
	sparsity := func(eval backend.Evaluator, lo, hi float64) (float64, error) {
		var fr []float64
		for k := 0; k < repeats; k++ {
			sl := newTwoParamSlice(eval, rng, lo, hi)
			grid, err := sliceGrid(32, lo, hi)
			if err != nil {
				return 0, err
			}
			l, err := landscape.Generate(grid, sl.Evaluate, cfg.Workers)
			if err != nil {
				return 0, err
			}
			v, err := landscape.DCTEnergyFraction(l, 0.99)
			if err != nil {
				return 0, err
			}
			fr = append(fr, v)
		}
		return mean(fr), nil
	}

	for _, c := range []table2Case{
		{"3reg", 4, 8, 0}, {"3reg", 6, 6, 0}, {"sk", 4, 8, 0}, {"sk", 6, 6, 0},
	} {
		qe, te, err := buildCaseEvaluators(c.problemKind, c.qubits, c.params, rng)
		if err != nil {
			return nil, err
		}
		sq, err := sparsity(qe, -math.Pi/2, math.Pi/2)
		if err != nil {
			return nil, err
		}
		st, err := sparsity(te, -math.Pi, math.Pi)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("3-reg MaxCut (n=%d)", c.qubits)
		if c.problemKind == "sk" {
			name = fmt.Sprintf("SK Problem (n=%d)", c.qubits)
		}
		t.Rows = append(t.Rows, []string{name, pct(sq), pct(st), "-"})
	}

	// Molecules.
	h2 := problem.H2()
	lih := problem.LiH()
	tlH2, _ := ansatz.TwoLocal(2, 1)
	tlLiH, _ := ansatz.TwoLocal(4, 1)
	ucH2, _ := ansatz.UCCSDH2()
	ucLiH, _ := ansatz.UCCSDLiH()
	evTLH2, err := backend.NewStateVector(h2, tlH2)
	if err != nil {
		return nil, err
	}
	evTLLiH, err := backend.NewStateVector(lih, tlLiH)
	if err != nil {
		return nil, err
	}
	evUCH2, err := backend.NewStateVector(h2, ucH2)
	if err != nil {
		return nil, err
	}
	evUCLiH, err := backend.NewStateVector(lih, ucLiH)
	if err != nil {
		return nil, err
	}
	sH2TL, err := sparsity(evTLH2, -math.Pi, math.Pi)
	if err != nil {
		return nil, err
	}
	sH2UC, err := sparsity(evUCH2, -math.Pi, math.Pi)
	if err != nil {
		return nil, err
	}
	sLiHTL, err := sparsity(evTLLiH, -math.Pi, math.Pi)
	if err != nil {
		return nil, err
	}
	sLiHUC, err := sparsity(evUCLiH, -math.Pi, math.Pi)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"H2 (n=2)", "-", pct(sH2TL), pct(sH2UC)},
		[]string{"LiH (n=4)", "-", pct(sLiHTL), pct(sLiHUC)},
	)
	return t, nil
}
