package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/ncm"
	"repro/internal/noise"
	"repro/internal/problem"
	"repro/internal/qpu"
)

// mixedReconstruction runs the Section 5.1 protocol: sample the grid, split
// samples between two devices, optionally transform device-2 values with an
// NCM trained on a small paired set, reconstruct, and compare against the
// device-1 dense truth.
func mixedReconstruction(
	grid *landscape.Grid,
	ev1, ev2 backend.Evaluator,
	truth *landscape.Landscape,
	fracFirst float64,
	useNCM bool,
	seed int64,
	workers int,
) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	idx, err := core.SampleGrid(grid, 0.10, seed, false)
	if err != nil {
		return 0, err
	}
	first, second, err := qpu.SplitIndices(idx, fracFirst, rng)
	if err != nil {
		return 0, err
	}
	v1, err := landscape.Sample(grid, ev1.Evaluate, first, workers)
	if err != nil {
		return 0, err
	}
	v2, err := landscape.Sample(grid, ev2.Evaluate, second, workers)
	if err != nil {
		return 0, err
	}
	if useNCM && len(second) > 0 {
		// Train on 1% of the grid measured on both devices.
		trainIdx, err := core.SampleGrid(grid, 0.01, seed+77, false)
		if err != nil {
			return 0, err
		}
		src, err := landscape.Sample(grid, ev2.Evaluate, trainIdx, workers)
		if err != nil {
			return 0, err
		}
		ref, err := landscape.Sample(grid, ev1.Evaluate, trainIdx, workers)
		if err != nil {
			return 0, err
		}
		model, err := ncm.Fit(src, ref)
		if err != nil {
			return 0, err
		}
		v2 = model.TransformAll(v2)
	}
	allIdx := append(append([]int(nil), first...), second...)
	allVals := append(append([]float64(nil), v1...), v2...)
	// Reconstruction requires sorted unique indices? Only unique; sorting
	// is not required by cs, but keep deterministic order by pairing.
	recon, _, err := core.ReconstructFromSamples(grid, allIdx, allVals, core.Options{})
	if err != nil {
		return 0, err
	}
	return landscape.NRMSE(truth.Data, recon.Data)
}

// deviceEval builds the analytic evaluator for a profile.
func deviceEval(p *problem.Problem, prof noise.Profile) (backend.Evaluator, error) {
	return backend.NewAnalyticQAOA(p, prof)
}

// Fig8 reproduces Figure 8: reconstruction error against the QPU-1 target
// landscape as the share of samples from QPU-1 varies, with and without the
// noise-compensation model, for 12/16/20-qubit problems.
func Fig8(cfg Config) (*Table, error) {
	sizes := []int{12, 16, 20}
	fracs := []float64{0, 0.25, 0.5, 0.75, 1}
	gridB, gridG := 40, 80
	if cfg.Quick {
		sizes = []int{12, 16}
		fracs = []float64{0, 0.5, 1}
		gridB, gridG = 30, 60
	}
	t := &Table{
		ID:      "fig8",
		Title:   "Mixed-QPU reconstruction error vs fraction of samples from QPU-1",
		Headers: []string{"qubits", "%from QPU-1", "uncompensated", "+NCM"},
		Notes:   "QPU-1: 0.1%/0.5% error rates; QPU-2: 0.3%/0.7% (paper Section 5.1); target = QPU-1 landscape",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	for _, n := range sizes {
		p, err := problem.Random3RegularMaxCut(n, rng)
		if err != nil {
			return nil, err
		}
		ev1, err := deviceEval(p, noise.QPU1())
		if err != nil {
			return nil, err
		}
		ev2, err := deviceEval(p, noise.QPU2())
		if err != nil {
			return nil, err
		}
		grid, err := qaoaGridP1(gridB, gridG)
		if err != nil {
			return nil, err
		}
		truth, err := landscape.Generate(grid, ev1.Evaluate, cfg.Workers)
		if err != nil {
			return nil, err
		}
		for _, fr := range fracs {
			plain, err := mixedReconstruction(grid, ev1, ev2, truth, fr, false, cfg.Seed+int64(n*100)+int64(fr*10), cfg.Workers)
			if err != nil {
				return nil, err
			}
			comp, err := mixedReconstruction(grid, ev1, ev2, truth, fr, true, cfg.Seed+int64(n*100)+int64(fr*10), cfg.Workers)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), pct(fr), f(plain), f(comp),
			})
		}
	}
	return t, nil
}

// Table5 reproduces the paper's Table 5: reconstruction error for different
// device pairs and mixing ratios, with and without NCM. The IBM devices are
// substituted by perth-like and lagos-like simulator profiles (DESIGN.md).
func Table5(cfg Config) (*Table, error) {
	n := 12
	gridB, gridG := 40, 80
	if cfg.Quick {
		n = 10
		gridB, gridG = 30, 60
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 55))
	p, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		return nil, err
	}
	profiles := map[string]noise.Profile{
		"noisy sim-i":  noise.QPU1(),
		"noisy sim-ii": noise.QPU2(),
		"perth-like":   noise.PerthLike(),
		"lagos-like":   noise.LagosLike(),
		"ideal sim":    noise.Ideal(),
	}
	pairs := [][2]string{
		{"noisy sim-i", "noisy sim-ii"},
		{"noisy sim-ii", "noisy sim-i"},
		{"perth-like", "ideal sim"},
		{"perth-like", "noisy sim-i"},
		{"perth-like", "lagos-like"},
		{"lagos-like", "perth-like"},
		{"ideal sim", "perth-like"},
	}
	mixes := []float64{0.2, 0.5, 0.8, 1.0}
	t := &Table{
		ID:      "table5",
		Title:   "Mixed-device reconstruction errors with and without NCM",
		Headers: []string{"QPU1 (target)", "QPU2", "mix", "oscar", "+ncm"},
		Notes:   "mix = fraction of samples from QPU1; IBM devices substituted by device-like profiles",
	}
	grid, err := qaoaGridP1(gridB, gridG)
	if err != nil {
		return nil, err
	}
	for _, pair := range pairs {
		ev1, err := deviceEval(p, profiles[pair[0]])
		if err != nil {
			return nil, err
		}
		ev2, err := deviceEval(p, profiles[pair[1]])
		if err != nil {
			return nil, err
		}
		truth, err := landscape.Generate(grid, ev1.Evaluate, cfg.Workers)
		if err != nil {
			return nil, err
		}
		for _, mix := range mixes {
			seed := cfg.Seed + int64(len(pair[0])*1000) + int64(mix*100)
			plain, err := mixedReconstruction(grid, ev1, ev2, truth, mix, false, seed, cfg.Workers)
			if err != nil {
				return nil, err
			}
			if mix == 1.0 {
				// 100%-0%: no QPU2 samples, NCM is moot.
				t.Rows = append(t.Rows, []string{pair[0], pair[1], "100%-0%", f(plain), "-"})
				continue
			}
			comp, err := mixedReconstruction(grid, ev1, ev2, truth, mix, true, seed, cfg.Workers)
			if err != nil {
				return nil, err
			}
			mixLabel := fmt.Sprintf("%.0f%%-%.0f%%", mix*100, (1-mix)*100)
			t.Rows = append(t.Rows, []string{pair[0], pair[1], mixLabel, f(plain), f(comp)})
		}
	}
	return t, nil
}
