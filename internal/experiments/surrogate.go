package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/optimizer"
	"repro/internal/problem"
)

// SurrogateP2 exercises the ND pipeline end to end on a depth-2 QAOA
// problem: reconstruct the full 4-axis (beta1, beta2, gamma1, gamma2)
// landscape from a small sample through the true 4-D solver, fit the
// tensor-product NDSpline surrogate, and descend on it with ADAM — zero
// further circuit executions — from the reconstructed minimum grid point.
// The table compares the surrogate optimum against the dense grid search's
// minimum and against a descent that pays for real circuit executions.
func SurrogateP2(cfg Config) (*Table, error) {
	n := 10
	betaN, gammaN := 7, 8
	fraction := 0.25
	if cfg.Quick {
		n = 8
		betaN, gammaN = 6, 7
	}
	p, err := problem.MeshMaxCut(2, n/2)
	if err != nil {
		return nil, err
	}
	eval, err := p2Eval(p, noise.Ideal())
	if err != nil {
		return nil, err
	}
	grid, err := qaoaGridP2(betaN, gammaN)
	if err != nil {
		return nil, err
	}
	truth, err := landscape.Generate(grid, eval, cfg.Workers)
	if err != nil {
		return nil, err
	}
	recon, stats, err := core.Reconstruct(grid, eval, core.Options{
		SamplingFraction: fraction,
		Seed:             cfg.Seed + 14,
		Workers:          cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	nrmse, err := landscape.NRMSE(truth.Data, recon.Data)
	if err != nil {
		return nil, err
	}
	axes := make([][]float64, len(grid.Axes))
	bounds := make([]optimizer.Bounds, len(grid.Axes))
	for i, a := range grid.Axes {
		axes[i] = a.Values()
		bounds[i] = optimizer.Bounds{Lo: a.Min, Hi: a.Max}
	}
	nd, err := interp.NewNDSpline(axes, recon.Data)
	if err != nil {
		return nil, err
	}
	_, argMin := recon.Min()
	if argMin < 0 {
		return nil, fmt.Errorf("surrogate: reconstruction has no finite values")
	}
	start := grid.Point(argMin)
	adamOpt := optimizer.ADAMOptions{MaxIter: 200, Bounds: bounds}
	onSurrogate, err := optimizer.ADAM(func(x []float64) (float64, error) {
		return nd.At(x), nil
	}, start, adamOpt)
	if err != nil {
		return nil, err
	}
	onCircuit, err := optimizer.ADAM(func(x []float64) (float64, error) {
		return eval(x)
	}, start, adamOpt)
	if err != nil {
		return nil, err
	}
	// The surrogate endpoint's true quality: re-evaluate it on the circuit.
	atSurrogate, err := eval(onSurrogate.X)
	if err != nil {
		return nil, err
	}
	denseMin, _ := truth.Min()
	t := &Table{
		ID:      "surrogate",
		Title:   "Depth-2 surrogate descent on the 4-D reconstructed landscape",
		Headers: []string{"quantity", "value"},
		Notes: fmt.Sprintf("%d-qubit mesh MaxCut, %dx%dx%dx%d grid at %.0f%% sampling; "+
			"the surrogate descent spends zero extra circuit executions",
			p.N(), betaN, betaN, gammaN, gammaN, 100*fraction),
	}
	t.Rows = append(t.Rows,
		[]string{"grid points", fmt.Sprint(stats.GridSize)},
		[]string{"circuit executions", fmt.Sprint(stats.Samples)},
		[]string{"reconstruction NRMSE", f(nrmse)},
		[]string{"dense grid minimum", f(denseMin)},
		[]string{"surrogate optimum (on circuit)", f(atSurrogate)},
		[]string{"circuit-descent optimum", f(onCircuit.F)},
		[]string{"circuit-descent queries", fmt.Sprint(onCircuit.Queries)},
	)
	return t, nil
}
