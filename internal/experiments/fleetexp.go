package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/problem"
	"repro/internal/qpu"
)

// Fleet quantifies adaptive versus fixed batch sizing on a heterogeneous
// 3-device fleet, extending the Eager experiment to batched execution: the
// adaptive scheduler learns per-device batch sizes from observed
// queue/execution ratios, streams batches into warm-started incremental
// solves, and (last row) applies the batch-boundary eager cut to shed the
// latency tail.
func Fleet(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 61))
	n := 16
	gridB, gridG := 40, 80
	if cfg.Quick {
		n = 12
		gridB, gridG = 30, 60
	}
	p, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		return nil, err
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
	if err != nil {
		return nil, err
	}
	grid, err := qaoaGridP1(gridB, gridG)
	if err != nil {
		return nil, err
	}
	truth, err := landscape.Generate(grid, ev.Evaluate, cfg.Workers)
	if err != nil {
		return nil, err
	}

	// One queue-dominated, one balanced, one execution-dominated device,
	// all with a mild heavy tail — the regime where no single fixed batch
	// size suits every device.
	mkDevices := func() []qpu.Device {
		return []qpu.Device{
			{Name: "hiq", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 120, Sigma: 0.5, Exec: 1, TailProb: 0.05, TailFactor: 10}},
			{Name: "mid", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 30, Sigma: 0.5, Exec: 5, TailProb: 0.05, TailFactor: 10}},
			{Name: "slow", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 10, Sigma: 0.5, Exec: 12, TailProb: 0.05, TailFactor: 10}},
		}
	}

	t := &Table{
		ID:    "fleet",
		Title: "Adaptive fleet scheduling: learned per-device batch sizes vs fixed batching",
		Headers: []string{
			"strategy", "batches", "virtual time (s)", "speedup", "time saved", "NRMSE",
		},
		Notes: "3 heterogeneous QPUs (queue/exec ratios 120:1, 6:1, 0.8:1), 5% tails at 10x; " +
			"each strategy runs one long-lived scheduler through 3 successive requests " +
			"(calibration persists, like a service fleet); virtual times and speedups are " +
			"means over the runs, batches and NRMSE from the last run",
	}

	const runs = 3
	frac := 0.15
	if cfg.Quick {
		frac = 0.25
	}
	ropt := core.Options{SamplingFraction: frac, Seed: cfg.Seed, Workers: cfg.Workers}
	run := func(label string, fopt fleet.Options) error {
		fopt.Seed = cfg.Seed + 61
		s, err := fleet.New(fopt, mkDevices()...)
		if err != nil {
			return err
		}
		var meanTime, meanSpeedup, meanSaved float64
		var batches int
		var last *fleet.StreamResult
		for r := 0; r < runs; r++ {
			res, err := s.ReconstructStream(nil, grid, ropt)
			if err != nil {
				return err
			}
			meanTime += res.Timeout / runs
			meanSpeedup += res.Report.Speedup() / runs
			meanSaved += res.Saved / runs
			batches = len(res.Report.Batches)
			last = res
		}
		nr, err := landscape.NRMSE(truth.Data, last.Landscape.Data)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprint(batches),
			fmt.Sprintf("%.0f", meanTime),
			fmt.Sprintf("%.1fx", meanSpeedup),
			fmt.Sprintf("%.0f s", meanSaved),
			f(nr),
		})
		return nil
	}

	for _, k := range []int{8, 32, 128} {
		if err := run(fmt.Sprintf("fixed batch %d", k), fleet.Options{FixedBatch: k}); err != nil {
			return nil, err
		}
	}
	if err := run("adaptive", fleet.Options{Thresholds: []float64{0.5, 0.75}}); err != nil {
		return nil, err
	}
	if err := run("adaptive + eager 90%", fleet.Options{
		Thresholds:   []float64{0.5, 0.75},
		KeepFraction: 0.9,
	}); err != nil {
		return nil, err
	}
	return t, nil
}
