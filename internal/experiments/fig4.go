package experiments

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ansatz"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/problem"
)

// qaoaGridP1 builds the Table 1 depth-1 grid at the given resolution.
func qaoaGridP1(betaN, gammaN int) (*landscape.Grid, error) {
	bMin, bMax, gMin, gMax := ansatz.QAOAGridAxes(1)
	return landscape.NewGrid(
		landscape.Axis{Name: "beta", Min: bMin, Max: bMax, N: betaN},
		landscape.Axis{Name: "gamma", Min: gMin, Max: gMax, N: gammaN},
	)
}

// qaoaGridP2 builds the depth-2 4-axis grid.
func qaoaGridP2(betaN, gammaN int) (*landscape.Grid, error) {
	bMin, bMax, gMin, gMax := ansatz.QAOAGridAxes(2)
	return landscape.NewGrid(
		landscape.Axis{Name: "beta1", Min: bMin, Max: bMax, N: betaN},
		landscape.Axis{Name: "beta2", Min: bMin, Max: bMax, N: betaN},
		landscape.Axis{Name: "gamma1", Min: gMin, Max: gMax, N: gammaN},
		landscape.Axis{Name: "gamma2", Min: gMin, Max: gMax, N: gammaN},
	)
}

// fig4Sweep reconstructs `instances` random MaxCut landscapes at each
// sampling fraction and reports the quartiles of NRMSE.
func fig4Sweep(t *Table, label string, instances int, fractions []float64, mkEval func(rng *rand.Rand) (landscape.EvalFunc, *landscape.Grid, error), cfg Config, seedOff int64) error {
	rng := rand.New(rand.NewSource(cfg.Seed + seedOff))
	type inst struct {
		eval  landscape.EvalFunc
		grid  *landscape.Grid
		truth *landscape.Landscape
	}
	insts := make([]inst, instances)
	for i := range insts {
		eval, grid, err := mkEval(rng)
		if err != nil {
			return err
		}
		truth, err := landscape.Generate(grid, eval, cfg.Workers)
		if err != nil {
			return err
		}
		insts[i] = inst{eval: eval, grid: grid, truth: truth}
	}
	for _, frac := range fractions {
		var errs []float64
		for i, in := range insts {
			recon, _, err := core.Reconstruct(in.grid, in.eval, core.Options{
				SamplingFraction: frac,
				Seed:             cfg.Seed + seedOff + int64(i) + int64(frac*1e4),
				Workers:          cfg.Workers,
			})
			if err != nil {
				return err
			}
			e, err := landscape.NRMSE(in.truth.Data, recon.Data)
			if err != nil {
				return err
			}
			errs = append(errs, e)
		}
		t.Rows = append(t.Rows, []string{
			label, pct(frac),
			f(quartile(errs, 0.25)), f(median(errs)), f(quartile(errs, 0.75)),
		})
	}
	return nil
}

// p2Eval builds a depth-2 QAOA evaluator on the state-vector simulator,
// optionally with the global depolarizing damping model (the substitution
// for the paper's 45-55 GPU-hour noisy p=2 simulations; see DESIGN.md).
func p2Eval(p *problem.Problem, prof noise.Profile) (landscape.EvalFunc, error) {
	a, err := ansatz.QAOA(p.Graph, 2)
	if err != nil {
		return nil, err
	}
	sv, err := backend.NewStateVector(p, a)
	if err != nil {
		return nil, err
	}
	if prof.IsIdeal() {
		return sv.Evaluate, nil
	}
	// Global damping: the ZZ part of the cost contracts toward the
	// identity offset by a factor set by the circuit's gate counts.
	n1 := a.Circuit.OneQubitCount()
	n2 := a.Circuit.TwoQubitCount()
	damp := math.Pow(noise.Damping1Q(prof.P1), float64(n1)/float64(p.N())) *
		math.Pow(noise.Damping2Q(prof.P2), float64(n2)/float64(p.N()))
	offset := p.Hamiltonian.IdentityCoeff()
	return func(params []float64) (float64, error) {
		v, err := sv.Evaluate(params)
		if err != nil {
			return 0, err
		}
		return offset + damp*(v-offset), nil
	}, nil
}

// Fig4 reproduces Figure 4: median reconstruction error versus sampling
// fraction for depth-1 and depth-2 QAOA MaxCut landscapes, ideal and noisy.
func Fig4(cfg Config) (*Table, error) {
	instances := 16
	gridB, gridG := 50, 100
	p1Sizes := []int{16, 20, 24, 30}
	p1NoisySizes := []int{12, 16, 20}
	p2Sizes := []int{10}
	p2Grid := [2]int{8, 10}
	if cfg.Quick {
		instances = 4
		gridB, gridG = 30, 60
		p1Sizes = []int{16, 20}
		p1NoisySizes = []int{12, 16}
		p2Sizes = []int{8}
		p2Grid = [2]int{6, 8}
	}
	fractions := []float64{0.03, 0.05, 0.07, 0.09}
	t := &Table{
		ID:      "fig4",
		Title:   "Reconstruction error vs sampling fraction (16 MaxCut instances in the paper)",
		Headers: []string{"series", "sampling", "Q1", "median", "Q3"},
		Notes: fmt.Sprintf("%d instances per series; depth-1 landscapes %dx%d via the analytic engine; "+
			"depth-2 landscapes %d^2x%d^2 via state-vector + damping model", instances, gridB, gridG, p2Grid[0], p2Grid[1]),
	}

	// (A) p=1 ideal.
	for _, n := range p1Sizes {
		n := n
		err := fig4Sweep(t, fmt.Sprintf("p1-ideal-%dq", n), instances, fractions,
			func(rng *rand.Rand) (landscape.EvalFunc, *landscape.Grid, error) {
				p, err := problem.Random3RegularMaxCut(n, rng)
				if err != nil {
					return nil, nil, err
				}
				ev, err := backend.NewAnalyticQAOA(p, noise.Ideal())
				if err != nil {
					return nil, nil, err
				}
				grid, err := qaoaGridP1(gridB, gridG)
				return ev.Evaluate, grid, err
			}, cfg, int64(n))
		if err != nil {
			return nil, err
		}
	}

	// (B) p=1 noisy (depolarizing 0.003/0.007).
	for _, n := range p1NoisySizes {
		n := n
		err := fig4Sweep(t, fmt.Sprintf("p1-noisy-%dq", n), instances, fractions,
			func(rng *rand.Rand) (landscape.EvalFunc, *landscape.Grid, error) {
				p, err := problem.Random3RegularMaxCut(n, rng)
				if err != nil {
					return nil, nil, err
				}
				ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
				if err != nil {
					return nil, nil, err
				}
				grid, err := qaoaGridP1(gridB, gridG)
				return ev.Evaluate, grid, err
			}, cfg, 100+int64(n))
		if err != nil {
			return nil, err
		}
	}

	// (C)+(D) p=2 ideal and noisy on smaller grids/instances.
	p2Instances := instances / 2
	if p2Instances < 2 {
		p2Instances = 2
	}
	for _, n := range p2Sizes {
		n := n
		for _, noisy := range []bool{false, true} {
			label := fmt.Sprintf("p2-ideal-%dq", n)
			prof := noise.Ideal()
			if noisy {
				label = fmt.Sprintf("p2-noisy-%dq", n)
				prof = noise.Fig4()
			}
			err := fig4Sweep(t, label, p2Instances, fractions,
				func(rng *rand.Rand) (landscape.EvalFunc, *landscape.Grid, error) {
					p, err := problem.Random3RegularMaxCut(n, rng)
					if err != nil {
						return nil, nil, err
					}
					eval, err := p2Eval(p, prof)
					if err != nil {
						return nil, nil, err
					}
					grid, err := qaoaGridP2(p2Grid[0], p2Grid[1])
					return eval, grid, err
				}, cfg, 200+int64(n)+boolOff(noisy))
			if err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

func boolOff(b bool) int64 {
	if b {
		return 1000
	}
	return 0
}

// Fig2 produces the paper's motivating Figure 2: the optimizer-centric view
// (cost vs iteration) next to the bird's-eye landscape statistics, for an
// ADAM run on a 16-qubit MaxCut landscape.
func Fig2(cfg Config) (*Table, error) {
	n := 16
	if cfg.Quick {
		n = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	p, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		return nil, err
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Ideal())
	if err != nil {
		return nil, err
	}
	res, err := adamOnEvaluator(ev.Evaluate, []float64{0.02, 1.2}, 120)
	if err != nil {
		return nil, err
	}
	grid, err := qaoaGridP1(30, 60)
	if err != nil {
		return nil, err
	}
	full, err := landscape.Generate(grid, ev.Evaluate, cfg.Workers)
	if err != nil {
		return nil, err
	}
	minV, minIdx := full.Min()
	if minIdx < 0 {
		return nil, errors.New("experiments: generated landscape has no finite values")
	}
	minPt := grid.Point(minIdx)
	t := &Table{
		ID:      "fig2",
		Title:   "Optimizer view vs bird's-eye view (ADAM on 16-qubit MaxCut)",
		Headers: []string{"quantity", "value"},
		Notes:   "the optimizer's narrow view (path) vs the full landscape context (global min)",
	}
	t.Rows = append(t.Rows,
		[]string{"iterations", fmt.Sprint(res.Iterations)},
		[]string{"queries", fmt.Sprint(res.Queries)},
		[]string{"start cost", f(res.FPath[0])},
		[]string{"final cost", f(res.F)},
		[]string{"final point", fmt.Sprintf("(%.3f, %.3f)", res.X[0], res.X[1])},
		[]string{"landscape min", f(minV)},
		[]string{"landscape argmin", fmt.Sprintf("(%.3f, %.3f)", minPt[0], minPt[1])},
		[]string{"gap to global", f(res.F - minV)},
	)
	return t, nil
}
