package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mitigation"
	"repro/internal/noise"
	"repro/internal/problem"
)

// scalableAnalytic adapts the analytic QAOA evaluator to ZNE's noise
// scaling, with finite-shot noise at every scale (shot noise is what the
// extrapolation amplifies — the mechanism behind Figure 9's salt-like
// Richardson landscapes).
type scalableAnalytic struct {
	prob   *problem.Problem
	base   noise.Profile
	shots  int
	spread float64
	seed   int64

	mu    sync.Mutex
	rng   *rand.Rand
	cache map[float64]*backend.AnalyticQAOA
}

func newScalableAnalytic(p *problem.Problem, base noise.Profile, shots int, seed int64) *scalableAnalytic {
	return &scalableAnalytic{
		prob:   p,
		base:   base,
		shots:  shots,
		spread: backend.ShotSpread(p.Hamiltonian),
		seed:   seed,
		rng:    rand.New(rand.NewSource(seed)),
		cache:  make(map[float64]*backend.AnalyticQAOA),
	}
}

// NumParams implements mitigation.ScalableEvaluator.
func (s *scalableAnalytic) NumParams() int { return 2 }

// scaled returns the cached analytic evaluator for noise scale c. Callers
// must hold s.mu.
func (s *scalableAnalytic) scaled(c float64) (*backend.AnalyticQAOA, error) {
	ev, ok := s.cache[c]
	if !ok {
		var err error
		ev, err = backend.NewAnalyticQAOA(s.prob, s.base.Scaled(c))
		if err != nil {
			return nil, err
		}
		s.cache[c] = ev
	}
	return ev, nil
}

// EvaluateScaled implements mitigation.ScalableEvaluator.
func (s *scalableAnalytic) EvaluateScaled(params []float64, c float64) (float64, error) {
	s.mu.Lock()
	ev, err := s.scaled(c)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	var g float64
	if s.shots > 0 {
		g = s.rng.NormFloat64()
	}
	s.mu.Unlock()
	v, err := ev.Evaluate(params)
	if err != nil {
		return 0, err
	}
	if s.shots > 0 {
		v += g * s.spread / math.Sqrt(float64(s.shots))
	}
	return v, nil
}

// EvaluateScaledBatch implements mitigation.ScalableBatchEvaluator. Unlike
// the serial path's shared stream, batch shot noise is drawn from per-pair
// streams derived from (seed, params, scale), so results are deterministic
// however the engine chunks the sweep across workers; only the evaluator
// cache takes the lock.
func (s *scalableAnalytic) EvaluateScaledBatch(ctx context.Context, params [][]float64, scales []float64) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := len(scales)
	out := make([]float64, len(params)*k)
	evs := make([]*backend.AnalyticQAOA, k)
	s.mu.Lock()
	for j, c := range scales {
		ev, err := s.scaled(c)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		evs[j] = ev
	}
	s.mu.Unlock()
	scale := 0.0
	if s.shots > 0 {
		scale = s.spread / math.Sqrt(float64(s.shots))
	}
	for i, p := range params {
		for j := range scales {
			v, err := evs[j].Evaluate(p)
			if err != nil {
				return nil, err
			}
			if scale != 0 {
				v += noiseStream(s.seed, p, scales[j]) * scale
			}
			out[i*k+j] = v
		}
	}
	return out, nil
}

// noiseStream draws one standard normal from the stream identified by
// (seed, params, scale): a pure function, so batched sweeps are
// reproducible regardless of chunking (cf. backend.WithShots).
func noiseStream(seed int64, params []float64, scale float64) float64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range params {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
		h.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(scale))
	h.Write(buf[:])
	x := splitmix64(uint64(seed) ^ splitmix64(h.Sum64()))
	u1 := float64(splitmix64(x)>>11+1) / (1 << 53)
	u2 := float64(splitmix64(x+0x9e3779b97f4a7c15)>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// splitmix64 is the SplitMix64 finalizer (shared idiom with backend).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// zneConfigs returns the three Figure 9/10 configurations over a base
// scalable evaluator: unmitigated, Richardson{1,2,3}, linear{1,3}.
func zneConfigs(sc *scalableAnalytic) (map[string]landscape.EvalFunc, error) {
	unmit := func(params []float64) (float64, error) { return sc.EvaluateScaled(params, 1) }
	rich, err := mitigation.NewZNE(sc, []float64{1, 2, 3}, mitigation.Richardson)
	if err != nil {
		return nil, err
	}
	lin, err := mitigation.NewZNE(sc, []float64{1, 3}, mitigation.Linear)
	if err != nil {
		return nil, err
	}
	return map[string]landscape.EvalFunc{
		"unmitigated": unmit,
		"richardson":  rich.Evaluate,
		"linear":      lin.Evaluate,
	}, nil
}

// fig9Landscapes generates the original and reconstructed landscapes for
// each mitigation configuration.
func fig9Landscapes(cfg Config) (map[string]*landscape.Landscape, map[string]*landscape.Landscape, error) {
	n := 16
	gridB, gridG := 30, 60
	shots := 1024
	if cfg.Quick {
		n = 12
		gridB, gridG = 24, 48
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	p, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		return nil, nil, err
	}
	sc := newScalableAnalytic(p, noise.Fig9(), shots, cfg.Seed+90)
	configs, err := zneConfigs(sc)
	if err != nil {
		return nil, nil, err
	}
	grid, err := qaoaGridP1(gridB, gridG)
	if err != nil {
		return nil, nil, err
	}
	orig := make(map[string]*landscape.Landscape)
	recon := make(map[string]*landscape.Landscape)
	for _, name := range []string{"unmitigated", "richardson", "linear"} {
		eval := configs[name]
		full, err := landscape.Generate(grid, eval, 1) // serial: the rng is shared
		if err != nil {
			return nil, nil, err
		}
		orig[name] = full
		// Reconstruct from 10% of the same landscape's points, the
		// "preserves local traits with 10% of samples" claim.
		idx, err := core.SampleGrid(grid, 0.10, cfg.Seed+int64(len(name)), false)
		if err != nil {
			return nil, nil, err
		}
		vals := make([]float64, len(idx))
		for j, i := range idx {
			vals[j] = full.Data[i]
		}
		rc, _, err := core.ReconstructFromSamples(grid, idx, vals, core.Options{})
		if err != nil {
			return nil, nil, err
		}
		recon[name] = rc
	}
	return orig, recon, nil
}

// Fig9 reproduces Figure 9: Richardson versus linear extrapolation
// landscapes (original and reconstructed), quantified by the roughness the
// figure shows visually.
func Fig9(cfg Config) (*Table, error) {
	orig, recon, err := fig9Landscapes(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9",
		Title:   "ZNE landscapes: Richardson adds salt-like roughness, linear stays smooth",
		Headers: []string{"config", "where", "D2 (roughness)", "variance", "min", "max"},
		Notes:   "depth-1 QAOA, depolarizing 1q=0.001 2q=0.02, 1024 shots; reconstructions use 10% of samples",
	}
	for _, name := range []string{"unmitigated", "richardson", "linear"} {
		for _, kind := range []string{"original", "reconstructed"} {
			l := orig[name]
			if kind == "reconstructed" {
				l = recon[name]
			}
			minV, _ := l.Min()
			maxV, _ := l.Max()
			t.Rows = append(t.Rows, []string{
				name, kind,
				f2(landscape.SecondDerivative(l)), f(landscape.Variance(l)),
				f2(minV), f2(maxV),
			})
		}
	}
	// Key claims as rows: Richardson rougher than linear, preserved by
	// reconstruction.
	t.Rows = append(t.Rows, []string{
		"richardson/linear", "D2 ratio (original)",
		f2(landscape.SecondDerivative(orig["richardson"]) / landscape.SecondDerivative(orig["linear"])), "", "", "",
	})
	t.Rows = append(t.Rows, []string{
		"richardson/linear", "D2 ratio (recon)",
		f2(landscape.SecondDerivative(recon["richardson"]) / landscape.SecondDerivative(recon["linear"])), "", "", "",
	})
	return t, nil
}

// Fig10 reproduces Figure 10: the three landscape metrics (second
// derivative, variance of gradient, variance) for unmitigated, Richardson,
// and linear configurations, on original and reconstructed landscapes.
func Fig10(cfg Config) (*Table, error) {
	orig, recon, err := fig9Landscapes(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10",
		Title:   "Reconstructed landscapes preserve mitigation-dependent features",
		Headers: []string{"metric", "config", "original", "reconstructed"},
		Notes:   "the original-vs-reconstructed ordering of configurations must match (the paper's claim)",
	}
	metrics := []struct {
		name string
		fn   func(*landscape.Landscape) float64
	}{
		{"second-derivative", landscape.SecondDerivative},
		{"variance-of-gradient", landscape.VarianceOfGradient},
		{"variance", landscape.Variance},
	}
	for _, m := range metrics {
		for _, name := range []string{"unmitigated", "richardson", "linear"} {
			t.Rows = append(t.Rows, []string{
				m.name, name, fmt.Sprintf("%.4g", m.fn(orig[name])), fmt.Sprintf("%.4g", m.fn(recon[name])),
			})
		}
	}
	return t, nil
}
