package experiments

import (
	"math/rand"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/dct"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/problem"
)

// hwSynth generates a "hardware" landscape standing in for the Google
// Sycamore dataset (see the substitution table in DESIGN.md): the exact
// analytic landscape, damped by device noise, overlaid with a smooth
// spatially-correlated drift field (calibration drift across the grid scan)
// and per-point shot noise — the three non-idealities that make hardware
// landscapes harder to reconstruct than simulated ones.
func hwSynth(ev *backend.AnalyticQAOA, grid *landscape.Grid, rng *rand.Rand, driftAmp, shotSigma float64) (*landscape.Landscape, error) {
	l, err := landscape.Generate(grid, ev.Evaluate, 0)
	if err != nil {
		return nil, err
	}
	shape := l.Shape()
	strides := make([]int, len(shape))
	s := 1
	for k := len(shape) - 1; k >= 0; k-- {
		strides[k] = s
		s *= shape[k]
	}
	// Smooth drift: a few random low-frequency DCT modes. The per-axis
	// rng.Intn(3) draws match the historical (row, col) draw order on 2-D
	// grids, so 2-D hardware experiments are unchanged by the ND migration.
	coeffs := make([]float64, len(l.Data))
	for k := 0; k < 6; k++ {
		idx := 0
		for a, d := range shape {
			mi := rng.Intn(3)
			if mi >= d {
				mi = d - 1
			}
			idx += mi * strides[a]
		}
		coeffs[idx] = rng.NormFloat64()
	}
	drift := make([]float64, len(l.Data))
	dct.NewPlanND(shape).Inverse(drift, coeffs)
	// Scale drift to driftAmp * the landscape's value spread.
	minV, _ := l.Min()
	maxV, _ := l.Max()
	spread := maxV - minV
	var driftMax float64
	for _, v := range drift {
		if v < 0 {
			v = -v
		}
		if v > driftMax {
			driftMax = v
		}
	}
	if driftMax == 0 {
		driftMax = 1
	}
	for i := range l.Data {
		l.Data[i] += drift[i] / driftMax * driftAmp * spread
		l.Data[i] += shotSigma * spread * rng.NormFloat64()
	}
	return l, nil
}

// hwProblems builds the three Sycamore-dataset problems at a laptop scale:
// MaxCut on a mesh graph, MaxCut on a 3-regular graph, and the SK model.
func hwProblems(n int, rng *rand.Rand) (map[string]*problem.Problem, error) {
	rows, cols := 3, n/3
	if 3*cols != n {
		rows, cols = 2, n/2
	}
	mesh, err := problem.MeshMaxCut(rows, cols)
	if err != nil {
		return nil, err
	}
	reg, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		return nil, err
	}
	sk, err := problem.SK(n, rng)
	if err != nil {
		return nil, err
	}
	return map[string]*problem.Problem{"mesh": mesh, "3-regular": reg, "sk": sk}, nil
}

// sycamoreProfile is the hardware-like noise used for the synthesized
// dataset: strong two-qubit error as on the 53-qubit era devices.
func sycamoreProfile() noise.Profile {
	return noise.Profile{Name: "sycamore-like", P1: 0.0016, P2: 0.0062, Readout01: 0.01, Readout10: 0.05}
}

// hwLandscape builds one 50x50 synthesized hardware landscape for a problem.
func hwLandscape(p *problem.Problem, rng *rand.Rand) (*landscape.Landscape, error) {
	ev, err := backend.NewAnalyticQAOA(p, sycamoreProfile())
	if err != nil {
		return nil, err
	}
	grid, err := qaoaGridP1(50, 50)
	if err != nil {
		return nil, err
	}
	// Sycamore-era landscapes are visibly noisy: 5% drift, 4% shot sigma.
	return hwSynth(ev, grid, rng, 0.05, 0.04)
}

// Fig5 reproduces Figure 5: reconstruction of the three hardware
// (Sycamore-like) 50x50 landscapes at 41% sampling, reporting NRMSE plus the
// structural metrics that show the reconstructions are perceptually
// faithful.
func Fig5(cfg Config) (*Table, error) {
	n := 16
	if cfg.Quick {
		n = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	probs, err := hwProblems(n, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5",
		Title:   "Hardware-landscape reconstruction at 41% sampling (Sycamore-like synthesis)",
		Headers: []string{"problem", "NRMSE", "truth variance", "recon variance", "truth VoG", "recon VoG"},
		Notes:   "synthetic stand-in for the Google dataset: analytic landscape + damping + drift + shot noise",
	}
	for _, name := range []string{"mesh", "3-regular", "sk"} {
		truth, err := hwLandscape(probs[name], rng)
		if err != nil {
			return nil, err
		}
		idx, err := core.SampleGrid(truth.Grid, 0.41, cfg.Seed+int64(len(name)), false)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(idx))
		for j, i := range idx {
			vals[j] = truth.Data[i]
		}
		recon, _, err := core.ReconstructFromSamples(truth.Grid, idx, vals, core.Options{})
		if err != nil {
			return nil, err
		}
		nr, err := landscape.NRMSE(truth.Data, recon.Data)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name, f(nr),
			f(landscape.Variance(truth)), f(landscape.Variance(recon)),
			f(landscape.VarianceOfGradient(truth)), f(landscape.VarianceOfGradient(recon)),
		})
	}
	return t, nil
}

// Fig6 reproduces Figure 6: NRMSE versus sampling fraction on the three
// synthesized hardware landscapes.
func Fig6(cfg Config) (*Table, error) {
	n := 16
	fractions := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	if cfg.Quick {
		n = 12
		fractions = []float64{0.1, 0.3, 0.5}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	probs, err := hwProblems(n, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6",
		Title:   "Reconstruction error vs sampling fraction on Sycamore-like landscapes",
		Headers: []string{"problem", "sampling", "NRMSE"},
		Notes:   "hardware landscapes carry broadband noise, so errors sit well above the simulator's (Fig 4)",
	}
	for _, name := range []string{"mesh", "3-regular", "sk"} {
		truth, err := hwLandscape(probs[name], rng)
		if err != nil {
			return nil, err
		}
		for _, frac := range fractions {
			idx, err := core.SampleGrid(truth.Grid, frac, cfg.Seed+int64(100*frac), false)
			if err != nil {
				return nil, err
			}
			vals := make([]float64, len(idx))
			for j, i := range idx {
				vals[j] = truth.Data[i]
			}
			recon, _, err := core.ReconstructFromSamples(truth.Grid, idx, vals, core.Options{})
			if err != nil {
				return nil, err
			}
			nr, err := landscape.NRMSE(truth.Data, recon.Data)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{name, pct(frac), f(nr)})
		}
	}
	return t, nil
}
