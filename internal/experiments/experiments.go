// Package experiments regenerates every table and figure of the paper's
// evaluation. Each generator returns a Table (headers + rows + notes) that
// cmd/oscar-bench prints and bench_test.go exercises; EXPERIMENTS.md records
// paper-versus-measured values.
//
// Config.Quick scales instance counts and qubit sizes down to what a
// laptop-class machine runs in seconds; full mode uses the paper's sizes
// where the simulator substrates make that feasible.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Seed drives every random choice; runs are deterministic given it.
	Seed int64
	// Workers bounds parallel circuit evaluation and solver sharding
	// (0 = GOMAXPROCS).
	Workers int
	// Quick reduces instance counts and qubit sizes for fast runs.
	Quick bool
}

// DefaultConfig is the quick, deterministic configuration used by the
// benchmark harness.
func DefaultConfig() Config { return Config{Seed: 2023, Quick: true} }

// Table is a formatted experiment result.
type Table struct {
	// ID is the paper artifact it reproduces, e.g. "table2" or "fig4".
	ID string
	// Title describes the experiment.
	Title string
	// Headers and Rows hold the tabular payload.
	Headers []string
	Rows    [][]string
	// Notes records caveats (substitutions, scaled-down sizes).
	Notes string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Generator produces one experiment table.
type Generator func(Config) (*Table, error)

// Registry maps experiment IDs to their generators.
func Registry() map[string]Generator {
	return map[string]Generator{
		"table1":      Table1,
		"table2":      Table2,
		"table3":      Table3,
		"table4":      Table4,
		"table5":      Table5,
		"table6":      Table6,
		"fig2":        Fig2,
		"fig4":        Fig4,
		"fig5":        Fig5,
		"fig6":        Fig6,
		"fig8":        Fig8,
		"fig9":        Fig9,
		"fig10":       Fig10,
		"fig11":       Fig11,
		"fig12":       Fig12,
		"fig13":       Fig13,
		"speedup":     Speedup,
		"eager":       Eager,
		"fleet":       Fleet,
		"adversarial": Adversarial,
		"surrogate":   SurrogateP2,
	}
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.4f", v) }

// f2 formats with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.3g%%", 100*v) }

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func quartile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(pos)
	hi := lo
	if lo+1 < len(s) {
		hi = lo + 1
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
