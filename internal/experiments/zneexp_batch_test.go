package experiments

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/landscape"
	"repro/internal/mitigation"
	"repro/internal/noise"
	"repro/internal/problem"
)

// TestScalableAnalyticBatchDeterministic checks the batched ZNE sweep over
// the shot-noisy analytic evaluator is reproducible across worker counts
// and runs: batch shot noise comes from per-(point,scale) streams, not the
// shared serial RNG, so engine chunking order cannot leak into results.
func TestScalableAnalyticBatchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p, err := problem.Random3RegularMaxCut(12, rng)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := landscape.NewGrid(
		landscape.Axis{Name: "beta", Min: -0.7, Max: 0.7, N: 12},
		landscape.Axis{Name: "gamma", Min: -1.5, Max: 1.5, N: 24},
	)
	if err != nil {
		t.Fatal(err)
	}
	var ref *landscape.Landscape
	for _, workers := range []int{1, 4} {
		for run := 0; run < 2; run++ {
			sc := newScalableAnalytic(p, noise.Fig9(), 1024, 71)
			z, err := mitigation.NewZNE(sc, []float64{1, 2, 3}, mitigation.Richardson)
			if err != nil {
				t.Fatal(err)
			}
			l, err := landscape.GenerateBatch(context.Background(), grid, z, workers)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = l
				continue
			}
			for i := range l.Data {
				if l.Data[i] != ref.Data[i] {
					t.Fatalf("workers=%d run=%d: point %d differs: %g vs %g",
						workers, run, i, l.Data[i], ref.Data[i])
				}
			}
		}
	}
	// Shot noise must actually be present: compare against the noiseless
	// evaluator at scale 1.
	sc := newScalableAnalytic(p, noise.Fig9(), 0, 71)
	z, err := mitigation.NewZNE(sc, []float64{1, 2, 3}, mitigation.Richardson)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := landscape.GenerateBatch(context.Background(), grid, z, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range clean.Data {
		if clean.Data[i] == ref.Data[i] {
			same++
		}
	}
	if same == len(clean.Data) {
		t.Fatal("batched sweep carried no shot noise")
	}
	_ = exec.BatchEvaluator(z) // ZNE is engine-composable
}
