package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 2023, Quick: true} }

func cell(t *testing.T, table *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(table.Rows[row][col], "%"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, table.Rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig2", "fig4", "fig5", "fig6", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "speedup", "eager", "fleet",
		"adversarial", "surrogate",
	}
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("IDs() has %d entries, want %d", len(IDs()), len(want))
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "T",
		Headers: []string{"a", "long-header"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "n",
	}
	s := tab.Format()
	for _, want := range []string{"== x: T ==", "long-header", "333", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("format missing %q:\n%s", want, s)
		}
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

// TestTable2Shape checks the paper's qualitative Table 2 claims: Two-local
// landscapes reconstruct better than QAOA, and 14 samples/dim beats 7.
func TestTable2Shape(t *testing.T) {
	tab, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Columns: problem, qubits, params, samples, QAOA, Two-local.
	for r := range tab.Rows {
		qaoa := cell(t, tab, r, 4)
		twolocal := cell(t, tab, r, 5)
		if twolocal >= qaoa {
			t.Errorf("row %d: Two-local (%g) should beat QAOA (%g)", r, twolocal, qaoa)
		}
	}
	// n=6 rows (14 samples) should beat n=4 rows (7 samples) within each
	// problem for Two-local.
	if cell(t, tab, 1, 5) >= cell(t, tab, 0, 5) {
		t.Errorf("Two-local n=6 (%g) should beat n=4 (%g)", cell(t, tab, 1, 5), cell(t, tab, 0, 5))
	}
}

// TestTable3Shape checks that 50 samples/dim reconstructs H2-UCCSD far
// better than 14 (paper: 0.345 -> 0.005).
func TestTable3Shape(t *testing.T) {
	tab, err := Table3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	h2uccsd14 := cell(t, tab, 2, 5)
	h2uccsd50 := cell(t, tab, 3, 5)
	if h2uccsd50 >= h2uccsd14 {
		t.Errorf("H2-UCCSD: 50 samples (%g) should beat 14 (%g)", h2uccsd50, h2uccsd14)
	}
	if h2uccsd50 > 0.05 {
		t.Errorf("H2-UCCSD at 50 samples: NRMSE %g too high", h2uccsd50)
	}
}

// TestTable4Shape checks the sparsity evidence: every landscape needs only a
// few percent of DCT coefficients for 99% of its energy.
func TestTable4Shape(t *testing.T) {
	tab, err := Table4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for r, row := range tab.Rows {
		for c := 1; c < len(row); c++ {
			if row[c] == "-" {
				continue
			}
			v := cell(t, tab, r, c)
			if v <= 0 || v > 10 {
				t.Errorf("row %d col %d: energy fraction %g%% implausible", r, c, v)
			}
		}
	}
}

// TestFig5And6Shape checks hardware-landscape reconstruction: errors in the
// paper's 0.1-0.8 band and decreasing with sampling fraction.
func TestFig5And6Shape(t *testing.T) {
	tab5, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab5.Rows {
		nr := cell(t, tab5, r, 1)
		if nr <= 0 || nr > 0.8 {
			t.Errorf("fig5 row %d: NRMSE %g outside the hardware band", r, nr)
		}
	}
	tab6, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Per problem: first fraction's error >= last fraction's.
	byProblem := map[string][]float64{}
	for r, row := range tab6.Rows {
		byProblem[row[0]] = append(byProblem[row[0]], cell(t, tab6, r, 2))
	}
	for name, errs := range byProblem {
		if errs[len(errs)-1] >= errs[0] {
			t.Errorf("fig6 %s: error not decreasing: %v", name, errs)
		}
	}
}

// TestFig8Shape checks that NCM never hurts and that all-QPU1 sampling hits
// the floor.
func TestFig8Shape(t *testing.T) {
	tab, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		plain := cell(t, tab, r, 2)
		comp := cell(t, tab, r, 3)
		if comp > plain+0.01 {
			t.Errorf("row %d: NCM made it worse: %g vs %g", r, comp, plain)
		}
	}
}

// TestFig9Shape checks the mitigation-roughness claim: Richardson's D2 far
// exceeds linear's, on both original and reconstructed landscapes.
func TestFig9Shape(t *testing.T) {
	tab, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var d2 = map[string]float64{}
	for r, row := range tab.Rows {
		if row[1] == "original" || row[1] == "reconstructed" {
			d2[row[0]+"/"+row[1]] = cell(t, tab, r, 2)
		}
	}
	if d2["richardson/original"] < 2*d2["linear/original"] {
		t.Errorf("original: Richardson D2 %g not >> linear %g", d2["richardson/original"], d2["linear/original"])
	}
	if d2["richardson/reconstructed"] < 1.5*d2["linear/reconstructed"] {
		t.Errorf("recon: Richardson D2 %g not >> linear %g", d2["richardson/reconstructed"], d2["linear/reconstructed"])
	}
}

// TestSpeedupShape checks the 2x-20x headline claim.
func TestSpeedupShape(t *testing.T) {
	tab, err := Speedup(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Row 4 is "oscar @ 5% sampling" with speedup "20.0x".
	found := false
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[2], "20.0x") {
			found = true
			nr, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				t.Fatal(err)
			}
			if nr > 0.15 {
				t.Errorf("20x speedup with NRMSE %g — accuracy lost", nr)
			}
		}
	}
	if !found {
		t.Error("no 20x row in speedup table")
	}
}

// TestEagerShape checks that eager reconstruction saves time without
// destroying accuracy.
func TestEagerShape(t *testing.T) {
	tab, err := Eager(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1] // keep=100%
	q90 := tab.Rows[1]                // keep=90%
	nrFull, _ := strconv.ParseFloat(last[4], 64)
	nr90, _ := strconv.ParseFloat(q90[4], 64)
	if nr90 > nrFull+0.1 {
		t.Errorf("eager@90%% NRMSE %g much worse than full %g", nr90, nrFull)
	}
	if !strings.Contains(q90[3], "s (") {
		t.Errorf("eager row has no time saving: %v", q90)
	}
}

// TestFleetShape checks the fleet experiment: adaptive batching beats every
// fixed size on mean virtual time, and no strategy destroys accuracy.
func TestFleetShape(t *testing.T) {
	tab, err := Fleet(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tab.Rows))
	}
	times := make([]float64, len(tab.Rows))
	for i, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("row %d virtual time %q: %v", i, row[2], err)
		}
		times[i] = v
		nr, err := strconv.ParseFloat(row[5], 64)
		if err != nil || nr > 0.5 {
			t.Errorf("row %d NRMSE %q (err %v)", i, row[5], err)
		}
	}
	adaptive := times[3]
	for i := 0; i < 3; i++ {
		if adaptive > times[i]*1.05 {
			t.Errorf("adaptive virtual time %.0f worse than %s at %.0f",
				adaptive, tab.Rows[i][0], times[i])
		}
	}
	if eager := times[4]; eager > adaptive {
		t.Errorf("eager cut %.0f slower than full wait %.0f", eager, adaptive)
	}
}

// TestAdversarialShape checks the chaos table: four scenarios × three
// strategies, equal NRMSE within each scenario, risk-aware at or below the
// tail-blind adaptive makespan everywhere, and failure scenarios actually
// producing retries.
func TestAdversarialShape(t *testing.T) {
	tab, err := Adversarial(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(tab.Rows))
	}
	for s := 0; s < 4; s++ {
		scenario := tab.Rows[3*s][0]
		adaptive := cell(t, tab, 3*s+1, 2)
		risk := cell(t, tab, 3*s+2, 2)
		if risk > adaptive {
			t.Errorf("%s: risk-aware makespan %g exceeds adaptive %g", scenario, risk, adaptive)
		}
		for r := 3 * s; r < 3*s+3; r++ {
			if tab.Rows[r][5] != tab.Rows[3*s][5] {
				t.Errorf("%s: NRMSE differs across strategies: %q vs %q",
					scenario, tab.Rows[r][5], tab.Rows[3*s][5])
			}
		}
	}
	// Dropout and retry-storm inject failures; both schedulers must retry.
	for _, s := range []int{1, 3} {
		for r := 3*s + 1; r < 3*s+3; r++ {
			if cell(t, tab, r, 3) == 0 {
				t.Errorf("%s/%s: no retries under injected failures",
					tab.Rows[r][0], tab.Rows[r][1])
			}
		}
	}
	// The risk-aware scheduler must quarantine under dropout and storm.
	for _, s := range []int{1, 3} {
		if cell(t, tab, 3*s+2, 4) == 0 {
			t.Errorf("%s: risk-aware run never quarantined", tab.Rows[3*s][0])
		}
	}
}

// TestFig2And11 run the optimizer-facing generators.
func TestFig2And11(t *testing.T) {
	if testing.Short() {
		t.Skip("optimizer experiments are slow")
	}
	tab, err := Fig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 6 {
		t.Fatalf("fig2 rows %d", len(tab.Rows))
	}
	tab11, err := Fig11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Endpoint distance must be small relative to the grid diagonal (~3.5).
	var dist float64 = -1
	for _, row := range tab11.Rows {
		if row[0] == "endpoint distance" {
			dist, err = strconv.ParseFloat(row[1], 64)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if dist < 0 || dist > 0.5 {
		t.Errorf("fig11 endpoint distance %g", dist)
	}
}

// TestFig13Shape checks that COBYLA beats ADAM on the Richardson landscape.
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("optimizer experiments are slow")
	}
	tab, err := Fig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	adam := cell(t, tab, 0, 1)
	cobyla := cell(t, tab, 1, 1)
	if cobyla >= adam {
		t.Errorf("COBYLA median %g should beat ADAM %g on the jagged landscape", cobyla, adam)
	}
}
