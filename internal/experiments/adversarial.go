package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/problem"
	"repro/internal/qpu"
)

// adversarialScenarios builds the four injected failure modes of the chaos
// suite, freshly wired to the given devices. Each call constructs new
// scenario instances (the window streams are stateful), so every scheduler
// run sees identical injections.
func adversarialScenarios(seed int64) map[string]func(devs []qpu.Device) {
	return map[string]func(devs []qpu.Device){
		// Calibration drift: the fastest device's execution time ramps up
		// 0.2%/s from the start, reaching its 6x cap late in the run.
		"drift": func(devs []qpu.Device) {
			devs[0].Scenario = qpu.Drift{Start: 0, Rate: 0.002, Max: 6}
		},
		// Mid-run dropout: the balanced device goes dark shortly into the
		// run and stays dark for most of it.
		"dropout": func(devs []qpu.Device) {
			devs[1].Scenario = qpu.Dropout{Start: 300, Duration: 4000}
		},
		// Correlated queue spikes: the two queue-heavy devices share one
		// spike stream, so congestion hits them together.
		"queue spikes": func(devs []qpu.Device) {
			spikes := qpu.NewQueueSpikes(seed+7, 900, 500, 8)
			devs[0].Scenario = spikes
			devs[1].Scenario = spikes
		},
		// Retry storm: the two high-throughput devices share one
		// failure-probability burst stream — correlated submission bounces
		// that leave only the slow device reliable during a burst.
		"retry storm": func(devs []qpu.Device) {
			storm := qpu.NewRetryStorm(seed+13, 300, 700, 0.9)
			devs[0].Scenario = storm
			devs[1].Scenario = storm
		},
	}
}

// adversarialOrder fixes the table's row order.
var adversarialOrder = []string{"drift", "dropout", "queue spikes", "retry storm"}

// Adversarial validates fleet scheduling against injected device failure
// modes: for each of the four chaos scenarios it runs the fixed-batch
// baseline, the tail-blind adaptive scheduler, and the risk-aware scheduler
// (tail-exposure batch caps, retry with backoff, quarantine/probation) over
// the same sampling pattern, reporting makespans, retries, and quarantine
// transitions. Every strategy collects the full sample set (no eager cut),
// so reconstructions — and hence NRMSE — are identical per scenario and the
// makespan columns compare schedulers at equal quality.
func Adversarial(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 83))
	n := 16
	gridB, gridG := 40, 80
	if cfg.Quick {
		n = 12
		gridB, gridG = 30, 60
	}
	p, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		return nil, err
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
	if err != nil {
		return nil, err
	}
	grid, err := qaoaGridP1(gridB, gridG)
	if err != nil {
		return nil, err
	}
	truth, err := landscape.Generate(grid, ev.Evaluate, cfg.Workers)
	if err != nil {
		return nil, err
	}

	mkDevices := func() []qpu.Device {
		return []qpu.Device{
			{Name: "hiq", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 120, Sigma: 0.5, Exec: 1, TailProb: 0.02, TailFactor: 10}},
			{Name: "mid", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 30, Sigma: 0.5, Exec: 5, TailProb: 0.02, TailFactor: 10}},
			{Name: "slow", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 10, Sigma: 0.5, Exec: 12, TailProb: 0.02, TailFactor: 10}},
		}
	}

	t := &Table{
		ID:    "adversarial",
		Title: "Chaos-hardened fleet: fixed vs adaptive vs risk-aware under injected failures",
		Headers: []string{
			"scenario", "strategy", "makespan (s)", "retries", "quarantines", "NRMSE",
		},
		Notes: "3 heterogeneous QPUs under deterministic fault injection; every strategy " +
			"collects the identical full sample set, so NRMSE is equal per scenario and " +
			"makespan (mean of 3 latency realizations) compares schedulers at equal " +
			"reconstruction quality; retries and quarantines (bench + re-admit " +
			"transitions) are summed over the realizations",
	}

	frac := 0.15
	if cfg.Quick {
		frac = 0.25
	}
	ropt := core.Options{SamplingFraction: frac, Seed: cfg.Seed, Workers: cfg.Workers}

	type outcome struct {
		makespan float64
		nrmse    float64
	}
	strategies := []struct {
		label string
		fopt  fleet.Options
	}{
		{"fixed batch 32", fleet.Options{FixedBatch: 32}},
		{"adaptive", fleet.Options{}},
		{"risk-aware", fleet.Options{RiskAware: true}},
	}
	// Each strategy's makespan is averaged over a few fleet-latency
	// realizations so a single lucky (or unlucky) draw does not decide the
	// comparison; the injected disturbances themselves are identical across
	// runs (the scenario streams are seeded independently of the fleet).
	const runs = 3
	for _, name := range adversarialOrder {
		var adaptive, risk outcome
		for _, strat := range strategies {
			var makespans []float64
			retries, quarantines := 0, 0
			var nr float64
			for run := 0; run < runs; run++ {
				devs := mkDevices()
				adversarialScenarios(cfg.Seed)[name](devs)
				fopt := strat.fopt
				fopt.Seed = cfg.Seed + 83 + int64(run)*1000
				s, err := fleet.New(fopt, devs...)
				if err != nil {
					return nil, err
				}
				res, err := s.ReconstructStream(nil, grid, ropt)
				if err != nil {
					return nil, fmt.Errorf("adversarial %s/%s: %w", name, strat.label, err)
				}
				makespans = append(makespans, res.Report.Makespan)
				retries += res.Report.Retries
				quarantines += len(res.Quarantines)
				if run == 0 {
					if nr, err = landscape.NRMSE(truth.Data, res.Landscape.Data); err != nil {
						return nil, err
					}
				}
			}
			m := mean(makespans)
			switch strat.label {
			case "adaptive":
				adaptive = outcome{m, nr}
			case "risk-aware":
				risk = outcome{m, nr}
			}
			t.Rows = append(t.Rows, []string{
				name,
				strat.label,
				fmt.Sprintf("%.0f", m),
				fmt.Sprint(retries),
				fmt.Sprint(quarantines),
				f(nr),
			})
		}
		// The table's claim is structural, not cosmetic: the risk-aware
		// scheduler must not lose to the tail-blind one under injection at
		// equal reconstruction quality.
		if risk.nrmse != adaptive.nrmse {
			return nil, fmt.Errorf("adversarial %s: NRMSE diverged (%g vs %g) despite identical samples",
				name, risk.nrmse, adaptive.nrmse)
		}
		if risk.makespan > adaptive.makespan {
			return nil, fmt.Errorf("adversarial %s: risk-aware makespan %.0f exceeds adaptive %.0f",
				name, risk.makespan, adaptive.makespan)
		}
	}
	return t, nil
}
