package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ansatz"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/optimizer"
	"repro/internal/problem"
)

// adamOnEvaluator runs ADAM against a cost evaluator with the grid bounds of
// the depth-1 QAOA landscape.
func adamOnEvaluator(eval landscape.EvalFunc, x0 []float64, maxIter int) (*optimizer.Result, error) {
	bMin, bMax, gMin, gMax := ansatz.QAOAGridAxes(1)
	return optimizer.ADAM(func(x []float64) (float64, error) { return eval(x) }, x0, optimizer.ADAMOptions{
		MaxIter: maxIter,
		Bounds:  []optimizer.Bounds{{Lo: bMin, Hi: bMax}, {Lo: gMin, Hi: gMax}},
	})
}

func cobylaOnEvaluator(eval landscape.EvalFunc, x0 []float64, maxIter int) (*optimizer.Result, error) {
	bMin, bMax, gMin, gMax := ansatz.QAOAGridAxes(1)
	return optimizer.Cobyla(func(x []float64) (float64, error) { return eval(x) }, x0, optimizer.CobylaOptions{
		MaxIter: maxIter,
		Bounds:  []optimizer.Bounds{{Lo: bMin, Hi: bMax}, {Lo: gMin, Hi: gMax}},
	})
}

// interpObjective reconstructs a landscape with OSCAR and returns (a) the
// instant interpolated objective and (b) the number of QPU queries spent on
// reconstruction.
func interpObjective(eval landscape.EvalFunc, gridB, gridG int, fraction float64, seed int64, workers int) (landscape.EvalFunc, int, error) {
	grid, err := qaoaGridP1(gridB, gridG)
	if err != nil {
		return nil, 0, err
	}
	recon, stats, err := core.Reconstruct(grid, eval, core.Options{
		SamplingFraction: fraction,
		Seed:             seed,
		Workers:          workers,
	})
	if err != nil {
		return nil, 0, err
	}
	bi, err := interp.NewBicubic(grid.Axes[0].Values(), grid.Axes[1].Values(), recon.Data)
	if err != nil {
		return nil, 0, err
	}
	return func(x []float64) (float64, error) {
		return bi.At(x[0], x[1]), nil
	}, stats.Samples, nil
}

// randomStart draws a start point inside the depth-1 grid.
func randomStart(rng *rand.Rand) []float64 {
	bMin, bMax, gMin, gMax := ansatz.QAOAGridAxes(1)
	return []float64{
		bMin + (bMax-bMin)*rng.Float64(),
		gMin + (gMax-gMin)*rng.Float64(),
	}
}

// Fig11 reproduces Figure 11: an ADAM run on the interpolated reconstructed
// landscape next to the same run with real circuit executions, from the same
// initial point.
func Fig11(cfg Config) (*Table, error) {
	n := 16
	if cfg.Quick {
		n = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	p, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		return nil, err
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Ideal())
	if err != nil {
		return nil, err
	}
	obj, reconQ, err := interpObjective(ev.Evaluate, 50, 100, 0.05, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}
	start := randomStart(rng)
	onRecon, err := adamOnEvaluator(obj, start, 200)
	if err != nil {
		return nil, err
	}
	onCircuit, err := adamOnEvaluator(ev.Evaluate, start, 200)
	if err != nil {
		return nil, err
	}
	dist := optimizer.EuclideanDistance(onRecon.X, onCircuit.X)
	t := &Table{
		ID:      "fig11",
		Title:   "Optimization on interpolated reconstruction vs circuit execution",
		Headers: []string{"quantity", "interpolated", "circuit"},
		Notes:   "same ADAM configuration and initial point; endpoints should nearly coincide",
	}
	t.Rows = append(t.Rows,
		[]string{"start", fmt.Sprintf("(%.3f, %.3f)", start[0], start[1]), "same"},
		[]string{"endpoint", fmt.Sprintf("(%.3f, %.3f)", onRecon.X[0], onRecon.X[1]), fmt.Sprintf("(%.3f, %.3f)", onCircuit.X[0], onCircuit.X[1])},
		[]string{"final cost", f(onRecon.F), f(onCircuit.F)},
		[]string{"QPU queries", fmt.Sprint(reconQ), fmt.Sprint(onCircuit.Queries)},
		[]string{"endpoint distance", f(dist), ""},
	)
	return t, nil
}

// Fig12 reproduces Figure 12: the distribution of Euclidean distances
// between the endpoints of optimizing on the reconstruction versus with
// circuit executions, for ADAM and COBYLA under ideal and noisy simulation.
func Fig12(cfg Config) (*Table, error) {
	instances := 8
	n := 16
	if cfg.Quick {
		instances = 4
		n = 12
	}
	t := &Table{
		ID:      "fig12",
		Title:   "Endpoint distance: optimize-on-reconstruction vs circuit execution",
		Headers: []string{"optimizer", "noise", "Q1", "median", "Q3"},
		Notes:   fmt.Sprintf("%d instances of %d-qubit MaxCut; grid diagonal is ~3.5, so medians well below 0.5 mean near-identical endpoints", instances, n),
	}
	for _, opt := range []string{"adam", "cobyla"} {
		for _, noisy := range []bool{false, true} {
			rng := rand.New(rand.NewSource(cfg.Seed + 12 + boolOff(noisy)))
			prof := noise.Ideal()
			label := "ideal"
			if noisy {
				prof = noise.Fig4()
				label = "noisy"
			}
			var dists []float64
			for i := 0; i < instances; i++ {
				p, err := problem.Random3RegularMaxCut(n, rng)
				if err != nil {
					return nil, err
				}
				ev, err := backend.NewAnalyticQAOA(p, prof)
				if err != nil {
					return nil, err
				}
				obj, _, err := interpObjective(ev.Evaluate, 40, 80, 0.08, cfg.Seed+int64(i), cfg.Workers)
				if err != nil {
					return nil, err
				}
				start := randomStart(rng)
				var r1, r2 *optimizer.Result
				if opt == "adam" {
					r1, err = adamOnEvaluator(obj, start, 150)
					if err != nil {
						return nil, err
					}
					r2, err = adamOnEvaluator(ev.Evaluate, start, 150)
				} else {
					r1, err = cobylaOnEvaluator(obj, start, 150)
					if err != nil {
						return nil, err
					}
					r2, err = cobylaOnEvaluator(ev.Evaluate, start, 150)
				}
				if err != nil {
					return nil, err
				}
				dists = append(dists, optimizer.EuclideanDistance(r1.X, r2.X))
			}
			t.Rows = append(t.Rows, []string{
				opt, label,
				f(quartile(dists, 0.25)), f(median(dists)), f(quartile(dists, 0.75)),
			})
		}
	}
	return t, nil
}

// Fig13 reproduces Figure 13: on a jagged Richardson-extrapolated landscape
// the gradient-free COBYLA outperforms gradient-based ADAM — a concrete
// "choose your optimizer on the reconstruction" decision.
func Fig13(cfg Config) (*Table, error) {
	n := 16
	gridB, gridG := 30, 60
	if cfg.Quick {
		n = 12
		gridB, gridG = 24, 48
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	p, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		return nil, err
	}
	sc := newScalableAnalytic(p, noise.Fig9(), 1024, cfg.Seed+130)
	configs, err := zneConfigs(sc)
	if err != nil {
		return nil, err
	}
	grid, err := qaoaGridP1(gridB, gridG)
	if err != nil {
		return nil, err
	}
	full, err := landscape.Generate(grid, configs["richardson"], 1)
	if err != nil {
		return nil, err
	}
	idx, err := core.SampleGrid(grid, 0.10, cfg.Seed+131, false)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(idx))
	for j, i := range idx {
		vals[j] = full.Data[i]
	}
	recon, _, err := core.ReconstructFromSamples(grid, idx, vals, core.Options{})
	if err != nil {
		return nil, err
	}
	bi, err := interp.NewBicubic(grid.Axes[0].Values(), grid.Axes[1].Values(), recon.Data)
	if err != nil {
		return nil, err
	}
	obj := func(x []float64) (float64, error) { return bi.At(x[0], x[1]), nil }

	trials := 8
	if cfg.Quick {
		trials = 5
	}
	var adamF, cobF []float64
	for i := 0; i < trials; i++ {
		start := randomStart(rng)
		ra, err := adamOnEvaluator(obj, start, 120)
		if err != nil {
			return nil, err
		}
		rc, err := cobylaOnEvaluator(obj, start, 120)
		if err != nil {
			return nil, err
		}
		adamF = append(adamF, ra.F)
		cobF = append(cobF, rc.F)
	}
	minV, _ := recon.Min()
	t := &Table{
		ID:      "fig13",
		Title:   "Choosing an optimizer on a Richardson-extrapolated landscape",
		Headers: []string{"optimizer", "median final cost", "best final cost", "landscape min"},
		Notes:   fmt.Sprintf("%d random starts on the interpolated reconstruction; lower is better", trials),
	}
	t.Rows = append(t.Rows,
		[]string{"adam", f(median(adamF)), f(minSlice(adamF)), f(minV)},
		[]string{"cobyla", f(median(cobF)), f(minSlice(cobF)), f(minV)},
	)
	return t, nil
}

func minSlice(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Table6 reproduces the paper's Table 6: QPU queries to convergence for
// ADAM and COBYLA under ideal and noisy simulation, with random versus
// OSCAR-generated initial points.
func Table6(cfg Config) (*Table, error) {
	instances := 14
	n := 16
	if cfg.Quick {
		instances = 5
		n = 12
	}
	t := &Table{
		ID:      "table6",
		Title:   "QPU queries to convergence: random vs OSCAR initialization",
		Headers: []string{"optimizer", "noise", "random, opt.", "OSCAR, opt.", "OSCAR, opt.+recon."},
		Notes:   fmt.Sprintf("mean over %d instances of %d-qubit MaxCut; reconstruction uses 5%% of a 50x100 grid (250 queries)", instances, n),
	}
	for _, opt := range []string{"adam", "cobyla"} {
		for _, noisy := range []bool{false, true} {
			rng := rand.New(rand.NewSource(cfg.Seed + 60 + boolOff(noisy)))
			prof := noise.Ideal()
			label := "ideal"
			if noisy {
				prof = noise.Fig4()
				label = "noisy"
			}
			var randQ, oscarQ, oscarTotal []float64
			for i := 0; i < instances; i++ {
				p, err := problem.Random3RegularMaxCut(n, rng)
				if err != nil {
					return nil, err
				}
				ev, err := backend.NewAnalyticQAOA(p, prof)
				if err != nil {
					return nil, err
				}
				// Random initialization on the real workflow. The
				// optimizer settings mirror the defaults the paper
				// used: a conservative ADAM learning rate (many
				// queries from a random start, few from a good one)
				// and a modest COBYLA termination radius.
				bMin, bMax, gMin, gMax := ansatz.QAOAGridAxes(1)
				bounds := []optimizer.Bounds{{Lo: bMin, Hi: bMax}, {Lo: gMin, Hi: gMax}}
				start := randomStart(rng)
				run := func(from []float64) (*optimizer.Result, error) {
					if opt == "adam" {
						return optimizer.ADAM(func(x []float64) (float64, error) { return ev.Evaluate(x) }, from,
							optimizer.ADAMOptions{
								MaxIter:      3000,
								LearningRate: 0.01,
								FDStep:       0.02,
								Tol:          3e-4,
								Bounds:       bounds,
							})
					}
					return optimizer.Cobyla(func(x []float64) (float64, error) { return ev.Evaluate(x) }, from,
						optimizer.CobylaOptions{
							MaxIter:  1000,
							RhoBegin: 0.25,
							RhoEnd:   5e-3,
							Bounds:   bounds,
						})
				}
				rRand, err := run(start)
				if err != nil {
					return nil, err
				}
				// OSCAR initialization: reconstruct, optimize on the
				// interpolation (free), then run the real workflow
				// from the found minimum.
				obj, reconQ, err := interpObjective(ev.Evaluate, 50, 100, 0.05, cfg.Seed+int64(i), cfg.Workers)
				if err != nil {
					return nil, err
				}
				pre, err := adamOnEvaluator(obj, start, 300)
				if err != nil {
					return nil, err
				}
				rOscar, err := run(pre.X)
				if err != nil {
					return nil, err
				}
				randQ = append(randQ, float64(rRand.Queries))
				oscarQ = append(oscarQ, float64(rOscar.Queries))
				oscarTotal = append(oscarTotal, float64(rOscar.Queries+reconQ))
			}
			t.Rows = append(t.Rows, []string{
				opt, label,
				fmt.Sprintf("%.0f", mean(randQ)),
				fmt.Sprintf("%.0f", mean(oscarQ)),
				fmt.Sprintf("%.0f", mean(oscarTotal)),
			})
		}
	}
	return t, nil
}
