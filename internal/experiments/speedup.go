package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/problem"
	"repro/internal/qpu"
)

// Speedup quantifies the Section 4.3 claim ("2x to 20x speedups for
// complete landscape generation") and the additional multi-QPU parallel
// speedup of Section 5.
func Speedup(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 43))
	n := 16
	if cfg.Quick {
		n = 12
	}
	p, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		return nil, err
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
	if err != nil {
		return nil, err
	}
	gridB, gridG := 50, 100
	if cfg.Quick {
		gridB, gridG = 30, 60
	}
	grid, err := qaoaGridP1(gridB, gridG)
	if err != nil {
		return nil, err
	}
	truth, err := landscape.Generate(grid, ev.Evaluate, cfg.Workers)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "speedup",
		Title:   "Landscape-generation speedup vs grid search (samples saved) and parallel execution",
		Headers: []string{"configuration", "samples", "speedup", "NRMSE"},
		Notes:   "grid search = 1.0x baseline; parallel rows add virtual-time multi-QPU speedup on top",
	}
	t.Rows = append(t.Rows, []string{"grid search", fmt.Sprint(grid.Size()), "1.0x", "0"})
	for _, frac := range []float64{0.5, 0.2, 0.1, 0.05} {
		recon, stats, err := core.Reconstruct(grid, ev.Evaluate, core.Options{
			SamplingFraction: frac, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		nr, err := landscape.NRMSE(truth.Data, recon.Data)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("oscar @ %s sampling", pct(frac)),
			fmt.Sprint(stats.Samples),
			fmt.Sprintf("%.1fx", stats.Speedup),
			f(nr),
		})
	}

	// Multi-QPU parallel execution at 5% sampling.
	idx, err := core.SampleGrid(grid, 0.05, cfg.Seed, false)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{2, 4, 8} {
		devices := make([]qpu.Device, k)
		for i := range devices {
			devices[i] = qpu.Device{
				Name:    fmt.Sprintf("qpu-%d", i),
				Eval:    ev,
				Latency: qpu.LatencyModel{QueueMedian: 30, Sigma: 0.5, Exec: 3},
			}
		}
		ex, err := qpu.NewExecutor(cfg.Seed+int64(k), devices...)
		if err != nil {
			return nil, err
		}
		rep, err := ex.Run(grid, idx)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("oscar @ 5%% on %d QPUs", k),
			fmt.Sprint(len(idx)),
			fmt.Sprintf("%.1fx over 1 QPU", rep.Speedup()),
			"-",
		})
	}
	return t, nil
}

// Eager quantifies Section 5.2: eager reconstruction drops tail-latency
// samples to cut the makespan with negligible accuracy cost.
func Eager(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 52))
	n := 16
	gridB, gridG := 40, 80
	if cfg.Quick {
		n = 12
		gridB, gridG = 30, 60
	}
	p, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		return nil, err
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Fig4())
	if err != nil {
		return nil, err
	}
	grid, err := qaoaGridP1(gridB, gridG)
	if err != nil {
		return nil, err
	}
	truth, err := landscape.Generate(grid, ev.Evaluate, cfg.Workers)
	if err != nil {
		return nil, err
	}
	idx, err := core.SampleGrid(grid, 0.10, cfg.Seed, false)
	if err != nil {
		return nil, err
	}
	// Heavy-tailed devices: 8% of jobs land in a 25x tail.
	lat := qpu.LatencyModel{QueueMedian: 30, Sigma: 0.4, Exec: 3, TailProb: 0.08, TailFactor: 25}
	devices := []qpu.Device{
		{Name: "qpu-a", Eval: ev, Latency: lat},
		{Name: "qpu-b", Eval: ev, Latency: lat},
		{Name: "qpu-c", Eval: ev, Latency: lat},
		{Name: "qpu-d", Eval: ev, Latency: lat},
	}
	ex, err := qpu.NewExecutor(cfg.Seed+520, devices...)
	if err != nil {
		return nil, err
	}
	rep, err := ex.Run(grid, idx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "eager",
		Title:   "Eager reconstruction: drop tail-latency samples, keep accuracy",
		Headers: []string{"keep fraction", "samples used", "virtual time (s)", "time saved", "NRMSE"},
		Notes:   "4 QPUs with 8% of jobs hitting a 25x latency tail; full wait is the last row's baseline",
	}
	for _, q := range []float64{0.8, 0.9, 0.95, 1.0} {
		timeout := qpu.TimeoutForFraction(rep, q)
		kept, saved := qpu.EagerCut(rep, timeout)
		keptIdx := make([]int, len(kept))
		keptVals := make([]float64, len(kept))
		for i, r := range kept {
			keptIdx[i] = r.Index
			keptVals[i] = r.Value
		}
		recon, _, err := core.ReconstructFromSamples(grid, keptIdx, keptVals, core.Options{})
		if err != nil {
			return nil, err
		}
		nr, err := landscape.NRMSE(truth.Data, recon.Data)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			pct(q), fmt.Sprint(len(kept)),
			fmt.Sprintf("%.0f", timeout),
			fmt.Sprintf("%.0f s (%.0f%%)", saved, 100*saved/rep.Makespan),
			f(nr),
		})
	}
	return t, nil
}
