package qsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

func TestTrajectoryMatchesDensityMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	n := 4
	c := randomCircuit(n, 15, rng)
	h := pauli.NewHamiltonian(n)
	h.MustAdd(1, pauli.ZZ(n, 0, 1))
	h.MustAdd(-0.5, pauli.SingleZ(n, 2))
	h.MustAdd(0.25, pauli.ZZ(n, 1, 3))

	p1, p2 := 0.01, 0.03
	dm, err := RunDensity(c, nil, func(d *DensityMatrix, g Gate) error {
		switch len(g.Qubits) {
		case 1:
			return d.Depolarize1Q(g.Qubits[0], p1)
		case 2:
			return d.Depolarize2Q(g.Qubits[0], g.Qubits[1], p2)
		default:
			for q := 0; q < g.Pauli.N(); q++ {
				if g.Pauli.At(q) != pauli.I {
					if err := d.Depolarize1Q(q, p1); err != nil {
						return err
					}
				}
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := dm.Expectation(h)
	if err != nil {
		t.Fatal(err)
	}
	est, err := TrajectoryExpectation(c, nil, h, TrajectoryOptions{
		P1: p1, P2: p2, Trajectories: 6000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Monte-Carlo estimate: tolerance ~ few/sqrt(trajectories) scaled by
	// the observable spread (~1.75 here).
	if math.Abs(est-exact) > 0.08 {
		t.Fatalf("trajectory %g vs density matrix %g", est, exact)
	}
}

func TestTrajectoryZeroNoiseIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	n := 3
	c := randomCircuit(n, 12, rng)
	h := pauli.NewHamiltonian(n)
	h.MustAdd(1, pauli.ZZ(n, 0, 2))
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := s.Expectation(h)
	got, err := TrajectoryExpectation(c, nil, h, TrajectoryOptions{Trajectories: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("noiseless trajectory %g vs exact %g", got, want)
	}
}

func TestTrajectoryValidation(t *testing.T) {
	c := NewCircuit(2).H(0)
	h := pauli.NewHamiltonian(2)
	h.MustAdd(1, pauli.ZZ(2, 0, 1))
	if _, err := TrajectoryExpectation(c, nil, h, TrajectoryOptions{P1: -0.1}); err == nil {
		t.Error("want error for negative rate")
	}
	if _, err := TrajectoryExpectation(c, nil, h, TrajectoryOptions{Trajectories: -5}); err == nil {
		t.Error("want error for negative trajectories")
	}
	h3 := pauli.NewHamiltonian(3)
	h3.MustAdd(1, pauli.ZZ(3, 0, 1))
	if _, err := TrajectoryExpectation(c, nil, h3, TrajectoryOptions{}); err == nil {
		t.Error("want error for dimension mismatch")
	}
}

func TestTrajectoryDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	c := randomCircuit(3, 10, rng)
	h := pauli.NewHamiltonian(3)
	h.MustAdd(1, pauli.SingleZ(3, 0))
	opt := TrajectoryOptions{P1: 0.05, P2: 0.1, Trajectories: 50, Seed: 9}
	v1, err := TrajectoryExpectation(c, nil, h, opt)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := TrajectoryExpectation(c, nil, h, opt)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("nondeterministic: %g vs %g", v1, v2)
	}
}
