package qsim

// fuse_test.go unit-tests the diagonal-fusion peephole pass: which runs
// collapse, which gates break them, how parameter buckets and table
// interning behave, and that the structural bookkeeping (gate counts,
// parameter arity, validation) stays truthful after fusion.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

// qaoaLikeCircuit hand-builds the QAOA gate stream the ansatz package emits:
// an H layer, then per layer one adjacent RZZP run (all bound to the same
// gamma) followed by an RXP mixer layer.
func qaoaLikeCircuit(n, p int, edges [][2]int, weights []float64) *Circuit {
	c := NewCircuit(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for l := 0; l < p; l++ {
		for i, e := range edges {
			c.RZZP(e[0], e[1], p+l, weights[i])
		}
		for q := 0; q < n; q++ {
			c.RXP(q, l, 2)
		}
	}
	return c
}

func ringEdges(n int) ([][2]int, []float64) {
	edges := make([][2]int, n)
	weights := make([]float64, n)
	for q := 0; q < n; q++ {
		edges[q] = [2]int{q, (q + 1) % n}
		weights[q] = 1 + 0.25*float64(q)
	}
	return edges, weights
}

func TestFuseDiagonalsQAOAStructure(t *testing.T) {
	const n, p = 5, 3
	edges, weights := ringEdges(n)
	c := qaoaLikeCircuit(n, p, edges, weights)
	f := c.FuseDiagonals()
	if f == c {
		t.Fatal("expected a fused copy, got the original circuit")
	}
	// Each cost layer (|E| RZZ gates, one shared gamma) collapses to exactly
	// one GateDiagonal: n H + p * (1 + n) gates total.
	want := n + p*(1+n)
	if got := len(f.Gates()); got != want {
		t.Fatalf("fused gate count = %d, want %d", got, want)
	}
	var diags []Gate
	for _, g := range f.Gates() {
		if g.Kind == GateDiagonal {
			diags = append(diags, g)
		}
	}
	if len(diags) != p {
		t.Fatalf("fused circuit has %d diagonal gates, want %d", len(diags), p)
	}
	for l, g := range diags {
		if g.Param != p+l {
			t.Fatalf("layer %d diagonal bound to param %d, want %d", l, g.Param, p+l)
		}
		if g.Scale != 1 {
			t.Fatalf("layer %d diagonal scale = %g, want 1", l, g.Scale)
		}
		// All p layers accumulate identical generators, so interning must
		// hand every layer the same *PhaseTable.
		if g.Diag != diags[0].Diag {
			t.Fatalf("layer %d has a distinct table; interning should share one", l)
		}
	}
	if f.NumParams() != c.NumParams() {
		t.Fatalf("fused NumParams = %d, want %d", f.NumParams(), c.NumParams())
	}
	// Gate-count satellite: the fused circuit reports zero two-qubit gates
	// (the cost layers are now 0-qubit table gates), the original |E|*p.
	if got := c.TwoQubitCount(); got != len(edges)*p {
		t.Fatalf("original TwoQubitCount = %d, want %d", got, len(edges)*p)
	}
	if got := f.TwoQubitCount(); got != 0 {
		t.Fatalf("fused TwoQubitCount = %d, want 0", got)
	}
	if got := f.OneQubitCount(); got != n+p*n {
		t.Fatalf("fused OneQubitCount = %d, want %d", got, n+p*n)
	}
}

func TestFuseDiagonalsMemoized(t *testing.T) {
	edges, weights := ringEdges(4)
	c := qaoaLikeCircuit(4, 1, edges, weights)
	if c.FuseDiagonals() != c.FuseDiagonals() {
		t.Fatal("FuseDiagonals not memoized")
	}
}

func TestFuseDiagonalsBreaksOnNonDiagonal(t *testing.T) {
	// RX, H, and CNOT each split a would-be run; every surviving fragment
	// has one gate, so nothing fuses and the original circuit is returned.
	c := NewCircuit(3)
	c.RZ(0, 0.3)
	c.RX(1, 0.7)
	c.RZZ(0, 1, 0.9)
	c.H(2)
	c.CZ(1, 2)
	c.CNOT(0, 2)
	c.Z(1)
	if f := c.FuseDiagonals(); f != c {
		t.Fatalf("singleton runs should leave the circuit unfused (got %d gates, had %d)",
			len(f.Gates()), len(c.Gates()))
	}
}

func TestFuseDiagonalsMixedRun(t *testing.T) {
	// One run mixing fixed-angle Cliffords, fixed rotations, and gates bound
	// to two different parameters: fusion emits one constant table plus one
	// table per parameter, in ascending order.
	c := NewCircuit(3)
	c.H(0).H(1).H(2)
	c.Z(0)
	c.S(1)
	c.T(2)
	c.CZ(0, 1)
	c.RZ(2, 0.4)
	c.RZZ(0, 2, 1.1)
	c.RZZP(0, 1, 1, 0.8)
	c.RZZP(1, 2, 0, -0.5)
	c.RZP(0, 1, 2.0)
	f := c.FuseDiagonals()
	if f == c {
		t.Fatal("expected fusion")
	}
	fused := f.Gates()[3:]
	if len(fused) != 3 {
		t.Fatalf("run fused into %d gates, want 3 (const + param0 + param1)", len(fused))
	}
	if fused[0].Param != -1 || fused[0].Theta != 1 {
		t.Fatalf("first fused gate should be the constant bucket, got param %d theta %g",
			fused[0].Param, fused[0].Theta)
	}
	if fused[1].Param != 0 || fused[2].Param != 1 {
		t.Fatalf("param buckets out of order: %d, %d", fused[1].Param, fused[2].Param)
	}

	rng := rand.New(rand.NewSource(42))
	params := []float64{rng.Float64() * math.Pi, rng.Float64() * math.Pi}
	orig, err := Run(c, params)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(f, params)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.amp {
		if d := cabs(got.amp[i] - orig.amp[i]); d > 1e-12 {
			t.Fatalf("amp[%d]: fused %v vs original %v (|diff| %g)", i, got.amp[i], orig.amp[i], d)
		}
	}
}

func cabs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }

func TestFuseDiagonalsPauliRotRuns(t *testing.T) {
	// Diagonal (X-free) Pauli rotations fuse; any X/Y in the string blocks.
	c := NewCircuit(3)
	c.H(0).H(1).H(2)
	c.PauliRot(pauli.MustString("ZZI"), 0.7)
	c.PauliRot(pauli.MustString("IZZ"), 0.3)
	c.PauliRot(pauli.MustString("ZIZ"), 1.2)
	f := c.FuseDiagonals()
	if f == c || len(f.Gates()) != 4 {
		t.Fatalf("ZZ rotations should fuse to one table gate, got %d gates", len(f.Gates()))
	}
	c2 := NewCircuit(3)
	c2.PauliRot(pauli.MustString("ZZI"), 0.7)
	c2.PauliRot(pauli.MustString("XZI"), 0.3)
	c2.PauliRot(pauli.MustString("ZIZ"), 1.2)
	if f2 := c2.FuseDiagonals(); f2 != c2 {
		t.Fatal("X-bearing Pauli rotation should break the run")
	}
}

func TestDiagonalValidation(t *testing.T) {
	tbl := NewPhaseTable(make([]float64, 8))
	c := NewCircuit(3)
	c.Diagonal(tbl, 0.5)
	if err := c.Validate(nil); err != nil {
		t.Fatalf("valid diagonal circuit rejected: %v", err)
	}
	short := NewPhaseTable(make([]float64, 4))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("builder accepted a wrong-length table")
			}
		}()
		NewCircuit(3).Diagonal(short, 0.5)
	}()
	// ApplyGate re-checks hand-built gates on both engines.
	if err := NewState(3).ApplyGate(Gate{Kind: GateDiagonal}, nil); err == nil {
		t.Fatal("state ApplyGate accepted a nil table")
	}
	if err := NewState(3).ApplyGate(Gate{Kind: GateDiagonal, Diag: short}, nil); err == nil {
		t.Fatal("state ApplyGate accepted a wrong-length table")
	}
	if err := NewDensityMatrix(3).ApplyGate(Gate{Kind: GateDiagonal, Diag: short}, nil); err == nil {
		t.Fatal("density ApplyGate accepted a wrong-length table")
	}
	if got := GateDiagonal.String(); got != "diagonal" {
		t.Fatalf("GateDiagonal name = %q", got)
	}
}
