package qsim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/pauli"
)

// DensityMatrix is an n-qubit mixed state rho stored row-major as a
// 2^n x 2^n complex matrix. It supports exact simulation of Kraus noise
// channels (depolarizing, amplitude damping, readout error), which backs the
// "noisy sim" device profiles in the paper reproduction.
//
// A DensityMatrix owns up to two scratch matrices of the same 4^n size,
// allocated lazily and reused across gates and channels, so re-running
// circuits through a reused matrix (RunDensityInto) allocates nothing in
// steady state.
type DensityMatrix struct {
	n   int
	dim int
	rho []complex128
	// scratch and acc are reusable 4^n work buffers for the permutation /
	// Pauli-rotation / Kraus-channel kernels. They hold no state between
	// operations; buffers are swapped with rho rather than copied.
	scratch []complex128
	acc     []complex128
	// diagPhase is the reused 2^n phase vector for diagonal-unitary
	// conjugation (see applyDiagonal) — precomputing it once turns the old
	// O(4^n) closure evaluations into O(2^n) plus a pure sweep.
	diagPhase []complex128
	// phaseLUT is the reused per-application LUT for phase-table gates,
	// mirroring State.phaseLUT.
	phaseLUT []complex128
}

// NewDensityMatrix prepares |0...0><0...0| on n qubits. Density-matrix
// simulation costs 4^n memory, so n is capped at 13.
func NewDensityMatrix(n int) *DensityMatrix {
	if n <= 0 || n > 13 {
		panic(fmt.Sprintf("qsim: unsupported density-matrix qubit count %d", n))
	}
	dim := 1 << uint(n)
	d := &DensityMatrix{n: n, dim: dim, rho: make([]complex128, dim*dim)}
	d.rho[0] = 1
	return d
}

// N reports the qubit count.
func (d *DensityMatrix) N() int { return d.n }

// Reset returns the state to |0...0><0...0|.
func (d *DensityMatrix) Reset() {
	for i := range d.rho {
		d.rho[i] = 0
	}
	d.rho[0] = 1
}

// getScratch returns the (lazily allocated) primary scratch matrix.
func (d *DensityMatrix) getScratch() []complex128 {
	if d.scratch == nil {
		d.scratch = make([]complex128, len(d.rho))
	}
	return d.scratch
}

// getAcc returns the (lazily allocated) secondary scratch matrix.
func (d *DensityMatrix) getAcc() []complex128 {
	if d.acc == nil {
		d.acc = make([]complex128, len(d.rho))
	}
	return d.acc
}

// Trace returns Tr(rho), which unitary evolution and trace-preserving
// channels keep at 1.
func (d *DensityMatrix) Trace() float64 {
	var t complex128
	for i := 0; i < d.dim; i++ {
		t += d.rho[i*d.dim+i]
	}
	return real(t)
}

// Clone deep-copies the state (scratch buffers are not carried over).
func (d *DensityMatrix) Clone() *DensityMatrix {
	c := &DensityMatrix{n: d.n, dim: d.dim, rho: make([]complex128, len(d.rho))}
	copy(c.rho, d.rho)
	return c
}

// leftMul1Q computes rho <- (U on qubit q) rho.
func (d *DensityMatrix) leftMul1Q(q int, m [2][2]complex128) {
	bit := 1 << uint(q)
	for col := 0; col < d.dim; col++ {
		for r := 0; r < d.dim; r += bit << 1 {
			for i := r; i < r+bit; i++ {
				a0 := d.rho[i*d.dim+col]
				a1 := d.rho[(i|bit)*d.dim+col]
				d.rho[i*d.dim+col] = m[0][0]*a0 + m[0][1]*a1
				d.rho[(i|bit)*d.dim+col] = m[1][0]*a0 + m[1][1]*a1
			}
		}
	}
}

// rightMul1QDagger computes rho <- rho (U on qubit q)^dagger.
func (d *DensityMatrix) rightMul1QDagger(q int, m [2][2]complex128) {
	bit := 1 << uint(q)
	// (rho U^dagger)_{r,c} = sum_k rho_{r,k} conj(U_{c,k}).
	for row := 0; row < d.dim; row++ {
		base := row * d.dim
		for c0 := 0; c0 < d.dim; c0 += bit << 1 {
			for j := c0; j < c0+bit; j++ {
				a0 := d.rho[base+j]
				a1 := d.rho[base+(j|bit)]
				d.rho[base+j] = a0*complexConj(m[0][0]) + a1*complexConj(m[0][1])
				d.rho[base+(j|bit)] = a0*complexConj(m[1][0]) + a1*complexConj(m[1][1])
			}
		}
	}
}

// applyUnitary1Q conjugates rho by a single-qubit unitary.
func (d *DensityMatrix) applyUnitary1Q(q int, m [2][2]complex128) {
	d.leftMul1Q(q, m)
	d.rightMul1QDagger(q, m)
}

// phase returns the scalar c(i) with P|i> = c(i) |i^x> for a Pauli given by
// masks and Y count.
func pauliPhase(i uint64, z uint64, iPow complex128) complex128 {
	return iPow * signC(i&z)
}

// yCount counts the Y positions of a Pauli string: exactly the qubits with
// both the X and Z mask bits set.
func yCount(p pauli.String) int {
	return bits.OnesCount64(p.XMask() & p.ZMask())
}

// conjugatePauli computes rho <- P rho P^dagger for a Pauli string.
// Because P|i> = c(i)|i^x|, the map is an index permutation with phases:
// rho'_{i^x, j^x} = c(i) conj(c(j)) rho_{i,j}. The result is built in the
// reusable scratch matrix and swapped into place.
func (d *DensityMatrix) conjugatePauli(p pauli.String) {
	x := int(p.XMask())
	z := p.ZMask()
	iPow := iPower(yCount(p))
	out := d.getScratch()
	for i := 0; i < d.dim; i++ {
		ci := pauliPhase(uint64(i), z, iPow)
		for j := 0; j < d.dim; j++ {
			cj := pauliPhase(uint64(j), z, iPow)
			out[(i^x)*d.dim+(j^x)] = ci * complexConj(cj) * d.rho[i*d.dim+j]
		}
	}
	d.rho, d.scratch = out, d.rho
}

// accumPauli adds w * (P src P^dagger) into acc without touching src — the
// copy-free kernel the depolarizing channels sum their Pauli orbit with.
func (d *DensityMatrix) accumPauli(acc, src []complex128, p pauli.String, w complex128) {
	x := int(p.XMask())
	z := p.ZMask()
	iPow := iPower(yCount(p))
	for i := 0; i < d.dim; i++ {
		ci := pauliPhase(uint64(i), z, iPow)
		for j := 0; j < d.dim; j++ {
			cj := pauliPhase(uint64(j), z, iPow)
			t := ci * complexConj(cj) * src[i*d.dim+j]
			acc[(i^x)*d.dim+(j^x)] += w * t
		}
	}
}

// getDiagPhase returns the (lazily allocated) reusable 2^n phase vector.
func (d *DensityMatrix) getDiagPhase() []complex128 {
	if d.diagPhase == nil {
		d.diagPhase = make([]complex128, d.dim)
	}
	return d.diagPhase
}

// applyDiagonal conjugates rho by a diagonal unitary with entries phase(i).
// The 2^n phases are evaluated once into reused scratch and then swept over
// rho, instead of re-evaluating phase(j) in the inner loop (which cost
// O(4^n) closure calls); the per-element arithmetic is unchanged, so results
// are bit-identical to the old sweep.
func (d *DensityMatrix) applyDiagonal(phase func(i int) complex128) {
	pv := d.getDiagPhase()
	for i := range pv {
		pv[i] = phase(i)
	}
	d.applyDiagonalVec(pv)
}

// applyDiagonalVec conjugates rho by the diagonal unitary diag(pv):
// rho_{i,j} *= pv[i] * conj(pv[j]).
func (d *DensityMatrix) applyDiagonalVec(pv []complex128) {
	for i := 0; i < d.dim; i++ {
		pi := pv[i]
		row := d.rho[i*d.dim : (i+1)*d.dim]
		for j := range row {
			row[j] *= pi * complexConj(pv[j])
		}
	}
}

// applyPhaseTableDM conjugates rho by the GateDiagonal unitary
// diag(exp(-i theta table[b])), reusing the same lazy value compression as
// the statevector kernel to build the 2^n phase vector.
func (d *DensityMatrix) applyPhaseTableDM(t *PhaseTable, theta float64) {
	pv := d.getDiagPhase()
	if idx, unique, ok := t.compressed(); ok {
		if cap(d.phaseLUT) < len(unique) {
			d.phaseLUT = make([]complex128, len(unique))
		}
		lut := d.phaseLUT[:len(unique)]
		buildPhaseLUT(lut, theta, unique)
		for b := range pv {
			pv[b] = lut[idx[b]]
		}
	} else {
		vals := t.Values()
		for b := range pv {
			sn, cs := math.Sincos(theta * vals[b])
			pv[b] = complex(cs, -sn)
		}
	}
	d.applyDiagonalVec(pv)
}

// applyPermutation conjugates rho by a basis permutation perm (unitary with
// one 1 per row), building the result in scratch and swapping.
func (d *DensityMatrix) applyPermutation(perm func(i int) int) {
	out := d.getScratch()
	for i := 0; i < d.dim; i++ {
		pi := perm(i)
		for j := 0; j < d.dim; j++ {
			out[pi*d.dim+perm(j)] = d.rho[i*d.dim+j]
		}
	}
	d.rho, d.scratch = out, d.rho
}

// ApplyGate applies one circuit gate with resolved parameters.
func (d *DensityMatrix) ApplyGate(g Gate, params []float64) error {
	theta, err := g.Angle(params)
	if err != nil {
		return err
	}
	if g.Kind == GateDiagonal && (g.Diag == nil || g.Diag.Len() != d.dim) {
		return fmt.Errorf("qsim: diagonal gate table does not match %d-qubit density matrix", d.n)
	}
	d.applyGateKind(&g, theta)
	return nil
}

// applyGateKind dispatches one gate with its angle already resolved.
func (d *DensityMatrix) applyGateKind(g *Gate, theta float64) {
	switch g.Kind {
	case GateCNOT:
		cb := 1 << uint(g.Qubits[0])
		tb := 1 << uint(g.Qubits[1])
		d.applyPermutation(func(i int) int {
			if i&cb != 0 {
				return i ^ tb
			}
			return i
		})
	case GateSWAP:
		ab := 1 << uint(g.Qubits[0])
		bb := 1 << uint(g.Qubits[1])
		d.applyPermutation(func(i int) int {
			b1 := i&ab != 0
			b2 := i&bb != 0
			if b1 == b2 {
				return i
			}
			return i ^ ab ^ bb
		})
	case GateCZ:
		ab := 1 << uint(g.Qubits[0])
		bb := 1 << uint(g.Qubits[1])
		d.applyDiagonal(func(i int) complex128 {
			if i&ab != 0 && i&bb != 0 {
				return -1
			}
			return 1
		})
	case GateRZZ:
		ab := 1 << uint(g.Qubits[0])
		bb := 1 << uint(g.Qubits[1])
		plus := complex(math.Cos(theta/2), -math.Sin(theta/2))
		minus := complex(math.Cos(theta/2), math.Sin(theta/2))
		d.applyDiagonal(func(i int) complex128 {
			if (i&ab != 0) == (i&bb != 0) {
				return plus
			}
			return minus
		})
	case GatePauliRot:
		if g.Pauli.XMask() == 0 {
			// Diagonal (X-free) string: exp(-i theta/2 sign(b)) per basis
			// state — a phase sweep instead of the four-term conjugation.
			z := g.Pauli.ZMask()
			plus := complex(math.Cos(theta/2), -math.Sin(theta/2))
			minus := complex(math.Cos(theta/2), math.Sin(theta/2))
			d.applyDiagonal(func(i int) complex128 {
				if bits.OnesCount64(uint64(i)&z)&1 == 0 {
					return plus
				}
				return minus
			})
			return
		}
		d.applyPauliRotDM(g.Pauli, theta)
	case GateDiagonal:
		d.applyPhaseTableDM(g.Diag, theta)
	default:
		d.applyUnitary1Q(g.Qubits[0], gateMatrix(g.Kind, theta))
	}
}

// applyPauliRotDM conjugates rho by exp(-i theta/2 P) using
// U rho U^dag = cos^2 rho + sin^2 P rho P - i sin cos [P, rho].
func (d *DensityMatrix) applyPauliRotDM(p pauli.String, theta float64) {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	// P rho and rho P share structure with conjugatePauli; build them.
	x := int(p.XMask())
	z := p.ZMask()
	iPow := iPower(yCount(p))
	dim := d.dim
	out := d.getScratch()
	for i := range out {
		out[i] = 0
	}
	cc := complex(c*c, 0)
	ss := complex(s*s, 0)
	isc := complex(0, -s*c)
	for i := 0; i < dim; i++ {
		ci := pauliPhase(uint64(i), z, iPow)
		for j := 0; j < dim; j++ {
			cj := pauliPhase(uint64(j), z, iPow)
			rij := d.rho[i*dim+j]
			// Contributions to out from rho_{i,j}:
			// cos^2 rho at (i,j)
			out[i*dim+j] += cc * rij
			// sin^2 P rho P^dag at (i^x, j^x)
			out[(i^x)*dim+(j^x)] += ss * ci * complexConj(cj) * rij
			// -i sin cos (P rho) at (i^x, j): (P rho)_{i^x,j} = c(i) rho_{i,j}
			out[(i^x)*dim+j] += isc * ci * rij
			// +i sin cos (rho P) at (i, j^x): (rho P)_{i,j^x} = rho_{i,j} c(j)... note P^dag = P.
			// U rho U^dag = (cI - isP) rho (cI + isP) = c^2 rho + s^2 PrhoP - isc(P rho - rho P).
			out[i*dim+(j^x)] += (-isc) * complexConj(cj) * rij
		}
	}
	d.rho, d.scratch = out, d.rho
}

// RunDensity executes a circuit on a density matrix, interleaving the given
// noise hook after every gate (pass nil for ideal evolution).
func RunDensity(c *Circuit, params []float64, afterGate func(d *DensityMatrix, g Gate) error) (*DensityMatrix, error) {
	if err := c.Validate(params); err != nil {
		return nil, err
	}
	d := NewDensityMatrix(c.N())
	if err := d.runGates(c, params, afterGate); err != nil {
		return nil, err
	}
	return d, nil
}

// RunDensityInto executes a circuit from |0...0><0...0| into dst, reusing
// its rho and scratch buffers — the zero-allocation path the noisy batch
// evaluator re-runs circuits through.
func RunDensityInto(dst *DensityMatrix, c *Circuit, params []float64, afterGate func(d *DensityMatrix, g Gate) error) error {
	if dst.n != c.N() {
		return fmt.Errorf("qsim: %d-qubit circuit into %d-qubit density matrix", c.N(), dst.n)
	}
	if err := c.Validate(params); err != nil {
		return err
	}
	dst.Reset()
	return dst.runGates(c, params, afterGate)
}

// runGates applies every gate of a validated circuit, skipping the per-gate
// angle error path (Validate already proved it cannot fail). The afterGate
// hook can still fail, so the error return remains.
func (d *DensityMatrix) runGates(c *Circuit, params []float64, afterGate func(d *DensityMatrix, g Gate) error) error {
	for i := range c.gates {
		g := &c.gates[i]
		d.applyGateKind(g, g.resolveAngle(params))
		if afterGate != nil {
			if err := afterGate(d, *g); err != nil {
				return err
			}
		}
	}
	return nil
}

// Depolarize1Q applies the single-qubit depolarizing channel with
// probability p on qubit q: rho <- (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z).
// The Pauli orbit is accumulated directly from rho into a reused scratch
// matrix — no per-call copies or allocations.
func (d *DensityMatrix) Depolarize1Q(q int, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("qsim: depolarizing probability %g out of [0,1]", p)
	}
	if p == 0 {
		return nil
	}
	acc := d.getAcc()
	for i := range acc {
		acc[i] = complex(1-p, 0) * d.rho[i]
	}
	w := complex(p/3, 0)
	for _, op := range []pauli.Op{pauli.X, pauli.Y, pauli.Z} {
		d.accumPauli(acc, d.rho, singleOp(d.n, q, op), w)
	}
	d.rho, d.acc = acc, d.rho
	return nil
}

// Depolarize2Q applies the two-qubit depolarizing channel with probability p
// on qubits a and b: rho <- (1-p) rho + p/15 sum_{P != II} P rho P.
func (d *DensityMatrix) Depolarize2Q(a, b int, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("qsim: depolarizing probability %g out of [0,1]", p)
	}
	if p == 0 {
		return nil
	}
	acc := d.getAcc()
	for i := range acc {
		acc[i] = complex(1-p, 0) * d.rho[i]
	}
	ops := []pauli.Op{pauli.I, pauli.X, pauli.Y, pauli.Z}
	w := complex(p/15, 0)
	for _, oa := range ops {
		for _, ob := range ops {
			if oa == pauli.I && ob == pauli.I {
				continue
			}
			d.accumPauli(acc, d.rho, doubleOp(d.n, a, b, oa, ob), w)
		}
	}
	d.rho, d.acc = acc, d.rho
	return nil
}

// AmplitudeDamp applies the amplitude-damping channel with rate gamma on
// qubit q, modeling T1 relaxation.
func (d *DensityMatrix) AmplitudeDamp(q int, gamma float64) error {
	if gamma < 0 || gamma > 1 {
		return fmt.Errorf("qsim: damping rate %g out of [0,1]", gamma)
	}
	if gamma == 0 {
		return nil
	}
	// Kraus: K0 = [[1,0],[0,sqrt(1-g)]], K1 = [[0,sqrt(g)],[0,0]].
	k0 := [2][2]complex128{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}}
	k1 := [2][2]complex128{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}}
	orig := d.getScratch()
	copy(orig, d.rho)
	d.leftMul1Q(q, k0)
	d.rightMul1QDagger(q, k0)
	acc := d.getAcc()
	copy(acc, d.rho) // K0 rho K0^dagger
	copy(d.rho, orig)
	d.leftMul1Q(q, k1)
	d.rightMul1QDagger(q, k1)
	for i := range acc {
		acc[i] += d.rho[i]
	}
	d.rho, d.acc = acc, d.rho
	return nil
}

func singleOp(n, q int, op pauli.Op) pauli.String {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'I'
	}
	b[q] = byte(op)
	return pauli.MustString(string(b))
}

func doubleOp(n, a, b int, oa, ob pauli.Op) pauli.String {
	s := make([]byte, n)
	for i := range s {
		s[i] = 'I'
	}
	s[a] = byte(oa)
	s[b] = byte(ob)
	return pauli.MustString(string(s))
}

// ExpectationPauli computes Tr(rho P).
func (d *DensityMatrix) ExpectationPauli(p pauli.String) (float64, error) {
	if p.N() != d.n {
		return 0, fmt.Errorf("qsim: %d-qubit observable on %d-qubit density matrix", p.N(), d.n)
	}
	x := int(p.XMask())
	z := p.ZMask()
	iPow := iPower(yCount(p))
	var acc complex128
	for i := 0; i < d.dim; i++ {
		// Tr(rho P) = Tr(P rho) = sum_i c(i) rho_{i, i^x}.
		acc += d.rho[i*d.dim+(i^x)] * pauliPhase(uint64(i), z, iPow)
	}
	return real(acc), nil
}

// Expectation computes Tr(rho H) for a Pauli-sum Hamiltonian.
func (d *DensityMatrix) Expectation(h *pauli.Hamiltonian) (float64, error) {
	if h.N() != d.n {
		return 0, fmt.Errorf("qsim: %d-qubit Hamiltonian on %d-qubit density matrix", h.N(), d.n)
	}
	var total float64
	for _, t := range h.Terms() {
		e, err := d.ExpectationPauli(t.P)
		if err != nil {
			return 0, err
		}
		total += t.Coeff * e
	}
	return total, nil
}

// ExpectationDiagonal computes Tr(rho H) for a diagonal Hamiltonian from its
// precomputed energy table (table[b] = <b|H|b>): one fused pass over the
// diagonal of rho, independent of the term count.
func (d *DensityMatrix) ExpectationDiagonal(table []float64) (float64, error) {
	if len(table) != d.dim {
		return 0, fmt.Errorf("qsim: energy table length %d for %d-qubit density matrix", len(table), d.n)
	}
	var acc float64
	for i := 0; i < d.dim; i++ {
		acc += real(d.rho[i*d.dim+i]) * table[i]
	}
	return acc, nil
}

// Probabilities returns the computational-basis measurement distribution,
// the diagonal of rho.
func (d *DensityMatrix) Probabilities() []float64 {
	p := make([]float64, d.dim)
	for i := 0; i < d.dim; i++ {
		p[i] = real(d.rho[i*d.dim+i])
		if p[i] < 0 {
			p[i] = 0 // numerical cleanup
		}
	}
	return p
}

// ApplyReadoutError maps measurement probabilities through independent
// per-qubit confusion matrices: p01 = P(read 1 | true 0),
// p10 = P(read 0 | true 1). It returns a new distribution.
func ApplyReadoutError(probs []float64, n int, p01, p10 float64) ([]float64, error) {
	if len(probs) != 1<<uint(n) {
		return nil, fmt.Errorf("qsim: distribution length %d for %d qubits", len(probs), n)
	}
	if p01 < 0 || p01 > 1 || p10 < 0 || p10 > 1 {
		return nil, fmt.Errorf("qsim: readout error rates out of range: p01=%g p10=%g", p01, p10)
	}
	cur := append([]float64(nil), probs...)
	next := make([]float64, len(probs))
	for q := 0; q < n; q++ {
		bit := 1 << uint(q)
		for i := range next {
			next[i] = 0
		}
		for i, p := range cur {
			if p == 0 {
				continue
			}
			if i&bit == 0 {
				next[i] += p * (1 - p01)
				next[i|bit] += p * p01
			} else {
				next[i] += p * (1 - p10)
				next[i&^bit] += p * p10
			}
		}
		cur, next = next, cur
	}
	return cur, nil
}

// SampleDistribution draws shots samples from an arbitrary distribution.
// Repeated draws from the same distribution should build a Sampler once.
func SampleDistribution(probs []float64, shots int, rng *rand.Rand) map[uint64]int {
	return NewSampler(probs).Sample(shots, rng)
}

// ExpectationFromDistribution evaluates a diagonal Hamiltonian against an
// explicit probability distribution.
func ExpectationFromDistribution(h *pauli.Hamiltonian, probs []float64) (float64, error) {
	vals, err := h.DiagonalValues()
	if err != nil {
		return 0, err
	}
	return ExpectationFromDistributionTable(vals, probs)
}

// ExpectationFromDistributionTable is ExpectationFromDistribution with the
// Hamiltonian's energy table precomputed, so repeated evaluations skip the
// O(terms * 2^n) table construction.
func ExpectationFromDistributionTable(table []float64, probs []float64) (float64, error) {
	if len(table) != len(probs) {
		return 0, fmt.Errorf("qsim: Hamiltonian dimension %d vs distribution %d", len(table), len(probs))
	}
	var e float64
	for i, p := range probs {
		e += p * table[i]
	}
	return e, nil
}

// Purity returns Tr(rho^2): 1 for pure states, 1/2^n for the maximally
// mixed state — a convenient scalar summary of accumulated noise.
func (d *DensityMatrix) Purity() float64 {
	var t float64
	// Tr(rho^2) = sum_{ij} rho_ij rho_ji = sum_{ij} |rho_ij|^2 (Hermitian).
	for _, v := range d.rho {
		t += real(v)*real(v) + imag(v)*imag(v)
	}
	return t
}
