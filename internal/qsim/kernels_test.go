package qsim

// kernels_test.go pins the rebuilt strided gate kernels to the seed
// implementations they replaced: every kernel is compared amplitude-by-
// amplitude against a literal copy of the seed's branchy full-scan loops,
// across gate kinds, qubit counts, and worker counts. Elementwise kernels
// must match bit-for-bit (they perform the same multiplies on the same
// elements, only enumerated differently); expectation reductions, whose
// summation order legitimately changed, are held to 1e-12.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

// --- seed reference implementations (verbatim semantics) ---

func refParity(x uint64) bool {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x&1 == 1
}

func refSignC(masked uint64) complex128 {
	if refParity(masked) {
		return -1
	}
	return 1
}

func refApply1Q(amp []complex128, q int, m [2][2]complex128) {
	bit := 1 << uint(q)
	dim := len(amp)
	for base := 0; base < dim; base += bit << 1 {
		for i := base; i < base+bit; i++ {
			a0 := amp[i]
			a1 := amp[i|bit]
			amp[i] = m[0][0]*a0 + m[0][1]*a1
			amp[i|bit] = m[1][0]*a0 + m[1][1]*a1
		}
	}
}

func refApplyCNOT(amp []complex128, ctl, tgt int) {
	cb := 1 << uint(ctl)
	tb := 1 << uint(tgt)
	for i := range amp {
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			amp[i], amp[j] = amp[j], amp[i]
		}
	}
}

func refApplyCZ(amp []complex128, a, b int) {
	ab := 1 << uint(a)
	bb := 1 << uint(b)
	for i := range amp {
		if i&ab != 0 && i&bb != 0 {
			amp[i] = -amp[i]
		}
	}
}

func refApplySWAP(amp []complex128, a, b int) {
	ab := 1 << uint(a)
	bb := 1 << uint(b)
	for i := range amp {
		if i&ab != 0 && i&bb == 0 {
			j := i&^ab | bb
			amp[i], amp[j] = amp[j], amp[i]
		}
	}
}

func refApplyRZZ(amp []complex128, a, b int, theta float64) {
	ab := 1 << uint(a)
	bb := 1 << uint(b)
	pPlus := complex(math.Cos(theta/2), -math.Sin(theta/2))
	pMinus := complex(math.Cos(theta/2), math.Sin(theta/2))
	for i := range amp {
		even := (i&ab != 0) == (i&bb != 0)
		if even {
			amp[i] *= pPlus
		} else {
			amp[i] *= pMinus
		}
	}
}

func refApplyPauliRot(amp []complex128, p pauli.String, theta float64) {
	x := p.XMask()
	z := p.ZMask()
	nY := 0
	for q := 0; q < p.N(); q++ {
		if p.At(q) == pauli.Y {
			nY++
		}
	}
	cosT := complex(math.Cos(theta/2), 0)
	minusISin := complex(0, -math.Sin(theta/2))
	iPow := iPower(nY)
	if x == 0 {
		for b := range amp {
			sign := complex(1, 0)
			if refParity(uint64(b) & z) {
				sign = -1
			}
			amp[b] *= cosT + minusISin*iPow*sign
		}
		return
	}
	xi := int(x)
	for b := range amp {
		b2 := b ^ xi
		if b > b2 {
			continue
		}
		cb := iPow * refSignC(uint64(b)&z)
		cb2 := iPow * refSignC(uint64(b2)&z)
		a, a2 := amp[b], amp[b2]
		amp[b] = cosT*a + minusISin*cb2*a2
		amp[b2] = cosT*a2 + minusISin*cb*a
	}
}

// refApplyGate dispatches one resolved gate through the seed kernels.
func refApplyGate(amp []complex128, g Gate, params []float64) {
	theta, err := g.Angle(params)
	if err != nil {
		panic(err)
	}
	switch g.Kind {
	case GateCNOT:
		refApplyCNOT(amp, g.Qubits[0], g.Qubits[1])
	case GateCZ:
		refApplyCZ(amp, g.Qubits[0], g.Qubits[1])
	case GateSWAP:
		refApplySWAP(amp, g.Qubits[0], g.Qubits[1])
	case GateRZZ:
		refApplyRZZ(amp, g.Qubits[0], g.Qubits[1], theta)
	case GatePauliRot:
		refApplyPauliRot(amp, g.Pauli, theta)
	default:
		refApply1Q(amp, g.Qubits[0], gateMatrix(g.Kind, theta))
	}
}

// refExpectationPauli is the seed full-scan expectation (every index
// visited, each pair's cross terms computed twice).
func refExpectationPauli(amp []complex128, p pauli.String) float64 {
	x := p.XMask()
	z := p.ZMask()
	nY := 0
	for q := 0; q < p.N(); q++ {
		if p.At(q) == pauli.Y {
			nY++
		}
	}
	iPow := iPower(nY)
	var acc complex128
	xi := int(x)
	for b := range amp {
		cb := iPow * refSignC(uint64(b)&z)
		acc += complexConj(amp[b^xi]) * cb * amp[b]
	}
	return real(acc)
}

// allKindsCircuit builds a random fixed-angle circuit that exercises every
// gate kind, including the diagonal 1Q fast paths and SWAP.
func allKindsCircuit(n, depth int, rng *rand.Rand) *Circuit {
	c := NewCircuit(n)
	pick2 := func() (int, int) {
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		return a, b
	}
	for d := 0; d < depth; d++ {
		switch k := rng.Intn(15); k {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.X(rng.Intn(n))
		case 2:
			c.Y(rng.Intn(n))
		case 3:
			c.Z(rng.Intn(n))
		case 4:
			c.S(rng.Intn(n))
		case 5:
			c.Sdg(rng.Intn(n))
		case 6:
			c.T(rng.Intn(n))
		case 7:
			c.RX(rng.Intn(n), rng.Float64()*4*math.Pi)
		case 8:
			c.RY(rng.Intn(n), rng.Float64()*4*math.Pi)
		case 9:
			c.RZ(rng.Intn(n), rng.Float64()*4*math.Pi)
		case 10, 11, 12, 13:
			if n == 1 {
				c.H(0)
				continue
			}
			a, b := pick2()
			switch k {
			case 10:
				c.CNOT(a, b)
			case 11:
				c.CZ(a, b)
			case 12:
				c.SWAP(a, b)
			default:
				c.RZZ(a, b, rng.Float64()*4*math.Pi)
			}
		default:
			ops := []byte{'I', 'X', 'Y', 'Z'}
			b := make([]byte, n)
			nonI := false
			for i := range b {
				b[i] = ops[rng.Intn(4)]
				if b[i] != 'I' {
					nonI = true
				}
			}
			if !nonI {
				b[rng.Intn(n)] = ops[1+rng.Intn(3)]
			}
			c.PauliRot(pauli.MustString(string(b)), rng.Float64()*4*math.Pi)
		}
	}
	return c
}

// TestKernelsBitIdenticalToSeed drives random circuits gate-by-gate through
// the strided kernels and the seed reference loops, requiring exact
// amplitude equality after every gate, for several qubit counts and worker
// settings.
func TestKernelsBitIdenticalToSeed(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 10} {
		for _, workers := range []int{1, 3} {
			rng := rand.New(rand.NewSource(int64(100*n + workers)))
			c := allKindsCircuit(n, 60, rng)
			s := NewState(n).SetWorkers(workers)
			ref := make([]complex128, 1<<uint(n))
			ref[0] = 1
			for gi, g := range c.Gates() {
				if err := s.ApplyGate(g, nil); err != nil {
					t.Fatal(err)
				}
				refApplyGate(ref, g, nil)
				for i := range ref {
					if s.amp[i] != ref[i] {
						t.Fatalf("n=%d workers=%d gate %d (%s): amp[%d] = %v, seed %v",
							n, workers, gi, g.Kind, i, s.amp[i], ref[i])
					}
				}
			}
		}
	}
}

// TestKernelShardingBitIdentical runs a 15-qubit circuit — large enough
// that every kernel actually shards — under several worker counts and
// requires exact equality with the serial result.
func TestKernelShardingBitIdentical(t *testing.T) {
	const n = 15
	rng := rand.New(rand.NewSource(99))
	c := allKindsCircuit(n, 25, rng)
	serial, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		s := NewState(n).SetWorkers(workers)
		if err := RunInto(s, c, nil); err != nil {
			t.Fatal(err)
		}
		for i := range serial.amp {
			if s.amp[i] != serial.amp[i] {
				t.Fatalf("workers=%d: amp[%d] = %v, serial %v", workers, i, s.amp[i], serial.amp[i])
			}
		}
	}
}

// TestRunIntoReuse re-runs different circuits through one reused state and
// requires exact equality with fresh runs.
func TestRunIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewState(5)
	for trial := 0; trial < 10; trial++ {
		c := allKindsCircuit(5, 40, rng)
		if err := RunInto(s, c, nil); err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fresh.amp {
			if s.amp[i] != fresh.amp[i] {
				t.Fatalf("trial %d: amp[%d] = %v, fresh %v", trial, i, s.amp[i], fresh.amp[i])
			}
		}
	}
	if err := RunInto(s, allKindsCircuit(3, 5, rng), nil); err == nil {
		t.Fatal("want dimension mismatch error")
	}
}

// TestExpectationPauliMatchesSeed compares the pair-once expectation against
// the seed full scan. Diagonal strings keep the seed's exact summation
// (bit-identical); off-diagonal strings halve the visits, which reorders the
// floating-point sum, so they are held to 1e-12.
func TestExpectationPauliMatchesSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 4, 6} {
		s, err := Run(allKindsCircuit(n, 50, rng), nil)
		if err != nil {
			t.Fatal(err)
		}
		ops := []byte{'I', 'X', 'Y', 'Z'}
		for trial := 0; trial < 50; trial++ {
			b := make([]byte, n)
			for i := range b {
				b[i] = ops[rng.Intn(4)]
			}
			p := pauli.MustString(string(b))
			got, err := s.ExpectationPauli(p)
			if err != nil {
				t.Fatal(err)
			}
			want := refExpectationPauli(s.amp, p)
			if p.XMask() == 0 {
				if got != want {
					t.Fatalf("n=%d %s: diagonal expectation %v, seed %v", n, p, got, want)
				}
				continue
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d %s: expectation %v, seed %v", n, p, got, want)
			}
		}
	}
}

// TestExpectationDiagonalMatchesPerTerm checks the fused table pass against
// the per-term path and pins the table itself to EvalBitstring bit-for-bit.
func TestExpectationDiagonalMatchesPerTerm(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 6
	s, err := Run(allKindsCircuit(n, 60, rng), nil)
	if err != nil {
		t.Fatal(err)
	}
	h := pauli.NewHamiltonian(n)
	h.MustAdd(0.75, pauli.Identity(n))
	for trial := 0; trial < 12; trial++ {
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		h.MustAdd(rng.NormFloat64(), pauli.ZZ(n, a, b))
		h.MustAdd(rng.NormFloat64(), pauli.SingleZ(n, rng.Intn(n)))
	}
	table, err := h.DiagonalTable()
	if err != nil {
		t.Fatal(err)
	}
	for b := range table {
		want, err := h.EvalBitstring(uint64(b))
		if err != nil {
			t.Fatal(err)
		}
		if table[b] != want {
			t.Fatalf("table[%d] = %v, EvalBitstring %v", b, table[b], want)
		}
	}
	fused, err := s.ExpectationDiagonal(table)
	if err != nil {
		t.Fatal(err)
	}
	perTerm, err := s.Expectation(h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fused-perTerm) > 1e-10*(1+math.Abs(perTerm)) {
		t.Fatalf("fused %v vs per-term %v", fused, perTerm)
	}
	if _, err := s.ExpectationDiagonal(make([]float64, 4)); err == nil {
		t.Fatal("want table length error")
	}
}

// TestSamplerMatchesSample pins the amortized Sampler to State.Sample: same
// rng stream, same draws.
func TestSamplerMatchesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	s, err := Run(allKindsCircuit(4, 30, rng), nil)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 4000
	direct := s.Sample(shots, rand.New(rand.NewSource(9)))
	sp := s.Sampler()
	amortized := sp.Sample(shots, rand.New(rand.NewSource(9)))
	if len(direct) != len(amortized) {
		t.Fatalf("outcome sets differ: %d vs %d", len(direct), len(amortized))
	}
	for b, c := range direct {
		if amortized[b] != c {
			t.Fatalf("counts[%d] = %d vs %d", b, amortized[b], c)
		}
	}
	// Repeated draws reuse the table and stay consistent with the state.
	h := pauli.NewHamiltonian(4)
	h.MustAdd(1, pauli.ZZ(4, 0, 2))
	h.MustAdd(-0.5, pauli.SingleZ(4, 1))
	exact, _ := s.Expectation(h)
	est, err := sp.Expectation(h, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > 0.05 {
		t.Fatalf("sampler expectation %g, exact %g", est, exact)
	}
	if _, err := sp.Expectation(h, 0, rng); err == nil {
		t.Fatal("want shots error")
	}
	hx := pauli.NewHamiltonian(4)
	hx.MustAdd(1, pauli.MustString("XIII"))
	if _, err := sp.Expectation(hx, 10, rng); err == nil {
		t.Fatal("want off-diagonal error")
	}
}

// --- fused diagonal phase-table pins ---

// refApplyPhaseTable is the reference phase-table sweep: one Sincos per
// amplitude, no compression, no sharding.
func refApplyPhaseTable(amp []complex128, vals []float64, theta float64) {
	for b := range amp {
		sn, cs := math.Sincos(theta * vals[b])
		amp[b] *= complex(cs, -sn)
	}
}

// TestPhaseTableKernelMatchesReference pins applyPhaseTable against the
// reference sweep on both the LUT path (few distinct values) and the direct
// path (all-distinct values), serial and sharded. Equality is exact: the
// value compression is bit-preserving and both paths evaluate the identical
// Sincos argument per amplitude.
func TestPhaseTableKernelMatchesReference(t *testing.T) {
	for _, n := range []int{4, 8, 15} {
		for _, distinct := range []bool{false, true} {
			rng := rand.New(rand.NewSource(int64(7*n + 1)))
			dim := 1 << uint(n)
			vals := make([]float64, dim)
			for b := range vals {
				if distinct {
					vals[b] = rng.NormFloat64() * 3
				} else {
					// Two distinct values keeps the LUT path engaged even at
					// n=4, where the compression limit is dim/8 = 2.
					vals[b] = float64(rng.Intn(2)*3 - 1)
				}
			}
			tbl := NewPhaseTable(vals)
			if _, _, lut := tbl.compressed(); lut == distinct {
				t.Fatalf("n=%d distinct=%v: unexpected compression choice %v", n, distinct, lut)
			}
			for _, workers := range []int{1, 3} {
				rs := rand.New(rand.NewSource(int64(n)))
				s := NewState(n).SetWorkers(workers)
				ref := make([]complex128, dim)
				for b := range ref {
					s.amp[b] = complex(rs.NormFloat64(), rs.NormFloat64())
					ref[b] = s.amp[b]
				}
				theta := 0.37
				s.applyPhaseTable(tbl, theta)
				refApplyPhaseTable(ref, vals, theta)
				for b := range ref {
					if s.amp[b] != ref[b] {
						t.Fatalf("n=%d distinct=%v workers=%d: amp[%d] = %v, ref %v",
							n, distinct, workers, b, s.amp[b], ref[b])
					}
				}
			}
		}
	}
}

// fusedPinCase builds the frozen-seed QAOA-shaped circuit and parameters the
// fused-vs-edge-by-edge pins run.
func fusedPinCase(t *testing.T, n, p int) (*Circuit, *Circuit, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(1000*n + p)))
	edges := make([][2]int, 0, n*2)
	weights := make([]float64, 0, n*2)
	for q := 0; q < n; q++ {
		edges = append(edges, [2]int{q, (q + 1) % n})
		weights = append(weights, 0.5+rng.Float64())
		if q+3 < n {
			edges = append(edges, [2]int{q, q + 3})
			weights = append(weights, 0.5+rng.Float64())
		}
	}
	c := qaoaLikeCircuit(n, p, edges, weights)
	f := c.FuseDiagonals()
	if f == c {
		t.Fatal("pin circuit did not fuse")
	}
	params := make([]float64, 2*p)
	for i := range params {
		params[i] = (rng.Float64() - 0.5) * math.Pi
	}
	return c, f, params
}

// TestFusedMatchesEdgeByEdgeStateVector pins the fused statevector path to
// the edge-by-edge kernels on frozen-seed QAOA circuits, p=1 and stacked
// p=2, serial and sharded. Fusion legitimately reorders the phase
// arithmetic (exp of a summed generator instead of a product of per-gate
// phases), so amplitudes are held to 1e-12 — the file's tolerance for
// reordered floating point — while serial and sharded fused runs of the
// same circuit must agree exactly.
func TestFusedMatchesEdgeByEdgeStateVector(t *testing.T) {
	for _, p := range []int{1, 2} {
		const n = 10
		c, f, params := fusedPinCase(t, n, p)
		edge, err := Run(c, params)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := Run(f, params)
		if err != nil {
			t.Fatal(err)
		}
		for i := range edge.amp {
			d := fused.amp[i] - edge.amp[i]
			if math.Hypot(real(d), imag(d)) > 1e-12 {
				t.Fatalf("p=%d: amp[%d] fused %v, edge-by-edge %v", p, i, fused.amp[i], edge.amp[i])
			}
		}
		for _, workers := range []int{2, 3, 8} {
			s := NewState(n).SetWorkers(workers)
			if err := RunInto(s, f, params); err != nil {
				t.Fatal(err)
			}
			for i := range fused.amp {
				if s.amp[i] != fused.amp[i] {
					t.Fatalf("p=%d workers=%d: fused amp[%d] = %v, serial %v",
						p, workers, i, s.amp[i], fused.amp[i])
				}
			}
		}
	}
}

// TestFusedMatchesEdgeByEdgeDensity pins the fused density-matrix path the
// same way: ideal evolution of the fused circuit must match the edge-by-edge
// circuit entrywise to the reordered-arithmetic tolerance.
func TestFusedMatchesEdgeByEdgeDensity(t *testing.T) {
	for _, p := range []int{1, 2} {
		const n = 6
		c, f, params := fusedPinCase(t, n, p)
		edge, err := RunDensity(c, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := RunDensity(f, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range edge.rho {
			d := fused.rho[i] - edge.rho[i]
			if math.Hypot(real(d), imag(d)) > 1e-12 {
				t.Fatalf("p=%d: rho[%d] fused %v, edge-by-edge %v", p, i, fused.rho[i], edge.rho[i])
			}
		}
	}
}

// TestDensityDiagonalPrecomputeBitIdentical pins the precomputed-phase-vector
// applyDiagonal (the O(4^n)-closure-call fix) plus the diagonal PauliRot fast
// path against the statevector evolution of the same pure circuit.
func TestDensityDiagonalPrecomputeBitIdentical(t *testing.T) {
	const n = 5
	rng := rand.New(rand.NewSource(31))
	c := NewCircuit(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.CZ(0, 1)
	c.RZZ(1, 2, 0.8)
	c.PauliRot(pauli.MustString("ZZIZZ"), 1.3)
	c.RX(3, rng.Float64())
	c.CZ(2, 4)
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunDensity(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	dim := 1 << uint(n)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			want := s.amp[i] * complexConj(s.amp[j])
			diff := d.rho[i*dim+j] - want
			if math.Hypot(real(diff), imag(diff)) > 1e-12 {
				t.Fatalf("rho[%d,%d] = %v, |psi><psi| %v", i, j, d.rho[i*dim+j], want)
			}
		}
	}
}
