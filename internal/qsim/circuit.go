// Package qsim is a from-scratch quantum circuit simulator: a state-vector
// backend for ideal execution, a density-matrix backend with Kraus noise
// channels for exact noisy execution at small qubit counts, and measurement
// sampling for finite-shot estimates. It executes the parameterized circuits
// (ansatzes) whose cost landscapes OSCAR reconstructs.
package qsim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/pauli"
)

// Kind identifies a gate type.
type Kind int

// Supported gate kinds.
const (
	GateH Kind = iota
	GateX
	GateY
	GateZ
	GateS
	GateSdg
	GateT
	GateRX
	GateRY
	GateRZ
	GateCNOT
	GateCZ
	GateRZZ
	GateSWAP
	GatePauliRot
	// GateDiagonal multiplies amplitude b by exp(-i * theta * Diag[b]): an
	// n-qubit diagonal unitary driven by a shared phase table, the target
	// representation of FuseDiagonals. theta resolves like any parametric
	// angle, so one angle-independent table serves every parameter value.
	GateDiagonal
)

var kindNames = map[Kind]string{
	GateH: "h", GateX: "x", GateY: "y", GateZ: "z", GateS: "s",
	GateSdg: "sdg", GateT: "t", GateRX: "rx", GateRY: "ry", GateRZ: "rz",
	GateCNOT: "cx", GateCZ: "cz", GateRZZ: "rzz", GateSWAP: "swap",
	GatePauliRot: "pauli-rot", GateDiagonal: "diagonal",
}

// String returns the gate mnemonic.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// qubitCount returns how many qubit operands the kind takes; 0 means
// variable (PauliRot) or whole-register (Diagonal).
func (k Kind) qubitCount() int {
	switch k {
	case GateCNOT, GateCZ, GateRZZ, GateSWAP:
		return 2
	case GatePauliRot, GateDiagonal:
		return 0
	default:
		return 1
	}
}

func (k Kind) parametric() bool {
	switch k {
	case GateRX, GateRY, GateRZ, GateRZZ, GatePauliRot, GateDiagonal:
		return true
	default:
		return false
	}
}

// Gate is one operation in a circuit. Parametric gates either carry a fixed
// angle (Param < 0) or bind angle = Scale*params[Param] at execution time.
type Gate struct {
	Kind   Kind
	Qubits []int
	Theta  float64 // fixed angle when Param < 0
	Param  int     // parameter index, or -1
	Scale  float64 // multiplier applied to the bound parameter
	Pauli  pauli.String
	Diag   *PhaseTable // phase table for GateDiagonal (shared, not owned)
}

// Angle resolves the gate angle against a parameter vector.
func (g Gate) Angle(params []float64) (float64, error) {
	if g.Kind.parametric() && g.Param >= len(params) {
		return 0, fmt.Errorf("qsim: gate %s needs parameter %d, only %d bound", g.Kind, g.Param, len(params))
	}
	return g.resolveAngle(params), nil
}

// resolveAngle is Angle without the bounds check — the single source of the
// resolution rule, shared with the post-Validate gate loops (Validate
// guarantees every bound parameter index is in range, so resolution cannot
// fail there).
func (g *Gate) resolveAngle(params []float64) float64 {
	if !g.Kind.parametric() {
		return 0
	}
	if g.Param < 0 {
		return g.Theta
	}
	return g.Scale*params[g.Param] + g.Theta
}

// Circuit is an ordered gate list on a fixed register. NumParams is the size
// of the parameter vector the circuit expects at execution time.
type Circuit struct {
	n         int
	numParams int
	gates     []Gate

	// fused memoizes FuseDiagonals so every evaluator sharing this circuit
	// (the landscape-batch regime) shares one fused copy and its tables.
	fuseOnce sync.Once
	fused    *Circuit
}

// NewCircuit creates an empty circuit on n qubits.
func NewCircuit(n int) *Circuit {
	if n <= 0 || n > 30 {
		panic(fmt.Sprintf("qsim: unsupported qubit count %d", n))
	}
	return &Circuit{n: n}
}

// N reports the qubit count.
func (c *Circuit) N() int { return c.n }

// NumParams reports the number of circuit parameters.
func (c *Circuit) NumParams() int { return c.numParams }

// Gates returns the gate list (do not mutate).
func (c *Circuit) Gates() []Gate { return c.gates }

// Len reports the gate count.
func (c *Circuit) Len() int { return len(c.gates) }

// CountKind counts gates of a specific kind.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for _, g := range c.gates {
		if g.Kind == k {
			n++
		}
	}
	return n
}

// TwoQubitCount counts all two-qubit gates, the dominant error source on
// hardware. GateDiagonal counts as zero: it is a simulator-level fusion
// artifact, not a hardware gate, so depth/cost reporting should be taken
// from the unfused circuit (FuseDiagonals keeps the original intact).
func (c *Circuit) TwoQubitCount() int {
	n := 0
	for _, g := range c.gates {
		switch g.Kind {
		case GateCNOT, GateCZ, GateRZZ, GateSWAP:
			n++
		case GatePauliRot:
			if g.Pauli.Weight() > 1 {
				n += g.Pauli.Weight() - 1 // CX ladder cost
			}
		}
	}
	return n
}

// OneQubitCount counts single-qubit gates (PauliRot counts its basis
// rotations; GateDiagonal, like the two-qubit kinds, contributes none).
func (c *Circuit) OneQubitCount() int {
	n := 0
	for _, g := range c.gates {
		switch g.Kind {
		case GateCNOT, GateCZ, GateRZZ, GateSWAP, GateDiagonal:
		case GatePauliRot:
			n += g.Pauli.Weight() + 1
		default:
			n++
		}
	}
	return n
}

func (c *Circuit) checkQubit(qs ...int) {
	for _, q := range qs {
		if q < 0 || q >= c.n {
			panic(fmt.Sprintf("qsim: qubit %d out of range [0,%d)", q, c.n))
		}
	}
	if len(qs) == 2 && qs[0] == qs[1] {
		panic(fmt.Sprintf("qsim: duplicate qubit %d in two-qubit gate", qs[0]))
	}
}

func (c *Circuit) add(g Gate) *Circuit {
	c.gates = append(c.gates, g)
	return c
}

// H appends a Hadamard on q.
func (c *Circuit) H(q int) *Circuit {
	c.checkQubit(q)
	return c.add(Gate{Kind: GateH, Qubits: []int{q}, Param: -1})
}

// X appends a Pauli-X on q.
func (c *Circuit) X(q int) *Circuit {
	c.checkQubit(q)
	return c.add(Gate{Kind: GateX, Qubits: []int{q}, Param: -1})
}

// Y appends a Pauli-Y on q.
func (c *Circuit) Y(q int) *Circuit {
	c.checkQubit(q)
	return c.add(Gate{Kind: GateY, Qubits: []int{q}, Param: -1})
}

// Z appends a Pauli-Z on q.
func (c *Circuit) Z(q int) *Circuit {
	c.checkQubit(q)
	return c.add(Gate{Kind: GateZ, Qubits: []int{q}, Param: -1})
}

// S appends the phase gate on q.
func (c *Circuit) S(q int) *Circuit {
	c.checkQubit(q)
	return c.add(Gate{Kind: GateS, Qubits: []int{q}, Param: -1})
}

// Sdg appends the inverse phase gate on q.
func (c *Circuit) Sdg(q int) *Circuit {
	c.checkQubit(q)
	return c.add(Gate{Kind: GateSdg, Qubits: []int{q}, Param: -1})
}

// T appends the T gate on q.
func (c *Circuit) T(q int) *Circuit {
	c.checkQubit(q)
	return c.add(Gate{Kind: GateT, Qubits: []int{q}, Param: -1})
}

// RX appends a fixed-angle X rotation.
func (c *Circuit) RX(q int, theta float64) *Circuit {
	c.checkQubit(q)
	return c.add(Gate{Kind: GateRX, Qubits: []int{q}, Theta: theta, Param: -1})
}

// RY appends a fixed-angle Y rotation.
func (c *Circuit) RY(q int, theta float64) *Circuit {
	c.checkQubit(q)
	return c.add(Gate{Kind: GateRY, Qubits: []int{q}, Theta: theta, Param: -1})
}

// RZ appends a fixed-angle Z rotation.
func (c *Circuit) RZ(q int, theta float64) *Circuit {
	c.checkQubit(q)
	return c.add(Gate{Kind: GateRZ, Qubits: []int{q}, Theta: theta, Param: -1})
}

// RXP appends a parameter-bound X rotation with angle scale*params[param].
func (c *Circuit) RXP(q, param int, scale float64) *Circuit {
	c.checkQubit(q)
	c.trackParam(param)
	return c.add(Gate{Kind: GateRX, Qubits: []int{q}, Param: param, Scale: scale})
}

// RYP appends a parameter-bound Y rotation.
func (c *Circuit) RYP(q, param int, scale float64) *Circuit {
	c.checkQubit(q)
	c.trackParam(param)
	return c.add(Gate{Kind: GateRY, Qubits: []int{q}, Param: param, Scale: scale})
}

// RZP appends a parameter-bound Z rotation.
func (c *Circuit) RZP(q, param int, scale float64) *Circuit {
	c.checkQubit(q)
	c.trackParam(param)
	return c.add(Gate{Kind: GateRZ, Qubits: []int{q}, Param: param, Scale: scale})
}

// CNOT appends a controlled-X with control ctl and target tgt.
func (c *Circuit) CNOT(ctl, tgt int) *Circuit {
	c.checkQubit(ctl, tgt)
	return c.add(Gate{Kind: GateCNOT, Qubits: []int{ctl, tgt}, Param: -1})
}

// CZ appends a controlled-Z.
func (c *Circuit) CZ(a, b int) *Circuit {
	c.checkQubit(a, b)
	return c.add(Gate{Kind: GateCZ, Qubits: []int{a, b}, Param: -1})
}

// SWAP appends a swap gate.
func (c *Circuit) SWAP(a, b int) *Circuit {
	c.checkQubit(a, b)
	return c.add(Gate{Kind: GateSWAP, Qubits: []int{a, b}, Param: -1})
}

// RZZ appends a fixed-angle ZZ rotation exp(-i theta/2 Z_a Z_b).
func (c *Circuit) RZZ(a, b int, theta float64) *Circuit {
	c.checkQubit(a, b)
	return c.add(Gate{Kind: GateRZZ, Qubits: []int{a, b}, Theta: theta, Param: -1})
}

// RZZP appends a parameter-bound ZZ rotation.
func (c *Circuit) RZZP(a, b, param int, scale float64) *Circuit {
	c.checkQubit(a, b)
	c.trackParam(param)
	return c.add(Gate{Kind: GateRZZ, Qubits: []int{a, b}, Param: param, Scale: scale})
}

// Diagonal appends a fixed-angle phase-table gate: amplitude b is
// multiplied by exp(-i theta t[b]). The table is shared, not copied.
func (c *Circuit) Diagonal(t *PhaseTable, theta float64) *Circuit {
	c.checkDiag(t)
	return c.add(Gate{Kind: GateDiagonal, Diag: t, Theta: theta, Param: -1})
}

// DiagonalP appends a parameter-bound phase-table gate with angle
// scale*params[param]: the table is angle-independent, so one table serves
// every parameter value (e.g. every gamma of a QAOA cost-layer sweep).
func (c *Circuit) DiagonalP(t *PhaseTable, param int, scale float64) *Circuit {
	c.checkDiag(t)
	c.trackParam(param)
	return c.add(Gate{Kind: GateDiagonal, Diag: t, Param: param, Scale: scale})
}

func (c *Circuit) checkDiag(t *PhaseTable) {
	if t == nil {
		panic("qsim: nil phase table")
	}
	if t.Len() != 1<<uint(c.n) {
		panic(fmt.Sprintf("qsim: phase table length %d on %d-qubit circuit", t.Len(), c.n))
	}
}

// PauliRot appends exp(-i theta/2 P) with fixed angle.
func (c *Circuit) PauliRot(p pauli.String, theta float64) *Circuit {
	c.checkPauli(p)
	return c.add(Gate{Kind: GatePauliRot, Pauli: p, Theta: theta, Param: -1})
}

// PauliRotP appends a parameter-bound exp(-i scale*params[param]/2 P).
func (c *Circuit) PauliRotP(p pauli.String, param int, scale float64) *Circuit {
	c.checkPauli(p)
	c.trackParam(param)
	return c.add(Gate{Kind: GatePauliRot, Pauli: p, Param: param, Scale: scale})
}

func (c *Circuit) checkPauli(p pauli.String) {
	if p.N() != c.n {
		panic(fmt.Sprintf("qsim: %d-qubit Pauli rotation on %d-qubit circuit", p.N(), c.n))
	}
}

func (c *Circuit) trackParam(param int) {
	if param < 0 {
		panic("qsim: negative parameter index")
	}
	if param+1 > c.numParams {
		c.numParams = param + 1
	}
}

// Validate checks that a parameter vector has the right arity and that
// every GateDiagonal carries a full-register phase table (length 2^n) —
// hand-built gate lists can miss the builder-time checks.
func (c *Circuit) Validate(params []float64) error {
	if len(params) < c.numParams {
		return fmt.Errorf("qsim: circuit needs %d parameters, got %d", c.numParams, len(params))
	}
	for _, p := range params {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("qsim: non-finite parameter %g", p)
		}
	}
	for i := range c.gates {
		if g := &c.gates[i]; g.Kind == GateDiagonal {
			if g.Diag == nil {
				return fmt.Errorf("qsim: diagonal gate %d has no phase table", i)
			}
			if g.Diag.Len() != 1<<uint(c.n) {
				return fmt.Errorf("qsim: diagonal gate %d table length %d, want %d", i, g.Diag.Len(), 1<<uint(c.n))
			}
		}
	}
	return nil
}
