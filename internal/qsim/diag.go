package qsim

import (
	"fmt"
	"math"
	"sync"
)

// PhaseTable is a shared per-basis phase generator for GateDiagonal gates:
// applying the gate with resolved angle theta multiplies amplitude b by
// exp(-i * theta * table[b]). Because the table itself is angle-independent,
// one table serves every parameter value a landscape batch visits — the
// cost-layer table of a QAOA circuit is built once and reused for every
// gamma on the grid (and, via FuseDiagonals' interning, across all p layers).
//
// Tables are shared by pointer between gates, circuits, and evaluators and
// must not be mutated after construction.
type PhaseTable struct {
	vals []float64

	// Value compression, built lazily on first kernel use: vals[b] ==
	// unique[idx[b]] with exact float64 equality. When the table has few
	// distinct values (MaxCut/SK cost spectra have O(|E|) of them, not
	// O(2^n)), kernels evaluate one Sincos per unique value instead of one
	// per amplitude, and stream 4-byte indices instead of 8-byte floats.
	once   sync.Once
	unique []float64
	idx    []uint32
}

// phaseLUTFactor gates the compressed path: the LUT pays off only when the
// distinct-value count is well below the table length (the LUT must stay
// cache-resident while the index stream is traversed).
const phaseLUTFactor = 8

// NewPhaseTable wraps a per-basis phase generator. The table length must be
// a power of two (2^n for an n-qubit gate); the slice is retained, not
// copied, and must not be mutated afterwards.
func NewPhaseTable(vals []float64) *PhaseTable {
	if len(vals) == 0 || len(vals)&(len(vals)-1) != 0 {
		panic(fmt.Sprintf("qsim: phase table length %d is not a power of two", len(vals)))
	}
	return &PhaseTable{vals: vals}
}

// Len reports the table length (2^n).
func (t *PhaseTable) Len() int { return len(t.vals) }

// Values returns the per-basis generator (do not mutate).
func (t *PhaseTable) Values() []float64 { return t.vals }

// compressed returns the value-compressed form (idx, unique, true) when the
// distinct-value count is small enough for the LUT path, or (nil, nil,
// false) when the kernel should evaluate phases directly. The compression is
// built once and shared by every worker and evaluator using the table.
func (t *PhaseTable) compressed() ([]uint32, []float64, bool) {
	t.once.Do(func() {
		limit := len(t.vals) / phaseLUTFactor
		if limit < 1 {
			return
		}
		seen := make(map[uint64]uint32, limit+1)
		idx := make([]uint32, len(t.vals))
		unique := make([]float64, 0, limit)
		for b, v := range t.vals {
			key := math.Float64bits(v)
			k, ok := seen[key]
			if !ok {
				if len(unique) >= limit {
					return // too many distinct values: direct path
				}
				k = uint32(len(unique))
				seen[key] = k
				unique = append(unique, v)
			}
			idx[b] = k
		}
		t.idx, t.unique = idx, unique
	})
	if t.idx == nil {
		return nil, nil, false
	}
	return t.idx, t.unique, true
}

// buildPhaseLUT fills dst[k] = exp(-i * theta * unique[k]). Both the LUT and
// the direct kernel path evaluate exactly Sincos(theta * value), and the
// compression preserves values bit-for-bit, so the two paths produce
// identical amplitudes.
func buildPhaseLUT(dst []complex128, theta float64, unique []float64) {
	for k, v := range unique {
		sn, cs := math.Sincos(theta * v)
		dst[k] = complex(cs, -sn)
	}
}
