package qsim

import (
	"hash/fnv"
	"math"
	"math/bits"
	"sort"
)

// fuse.go implements the circuit-level diagonal-fusion peephole pass: every
// maximal run of adjacent diagonal gates (RZ/Z/S/Sdg/T/CZ/RZZ, diagonal
// Pauli rotations, and existing GateDiagonal gates) collapses into at most
// one GateDiagonal per parameter index. A diagonal unitary is exp(-i f(b))
// for a real per-basis exponent f, and diagonal gates commute, so a run's
// exponents simply add: fixed-angle gates accumulate into one constant
// table, and every gate bound to parameter p accumulates scale * gen(b)
// into p's table, applied later as exp(-i * params[p] * table[b]). A QAOA
// cost layer — one RZZ per edge, all bound to the same gamma — becomes a
// single O(2^n) phase pass instead of |E| kernel sweeps.

// IsDiagonal reports whether the gate acts diagonally in the computational
// basis (multiplies each amplitude by a phase), making it fusible.
func (g *Gate) IsDiagonal() bool {
	switch g.Kind {
	case GateZ, GateS, GateSdg, GateT, GateRZ, GateCZ, GateRZZ, GateDiagonal:
		return true
	case GatePauliRot:
		return g.Pauli.XMask() == 0
	}
	return false
}

// FuseDiagonals returns an equivalent circuit with adjacent diagonal-gate
// runs collapsed into GateDiagonal phase-table gates. The result is
// memoized: evaluators sharing one circuit (the batch-landscape regime)
// share one fused circuit and its interned tables, so each table's
// O(run * 2^n) construction is paid once per circuit, not once per
// evaluator or per point. Do not mutate the circuit after the first call.
//
// The fused circuit computes each collapsed run as exp(-i * theta *
// table[b]) rather than as a product of per-gate phases, which reorders the
// floating-point phase arithmetic: amplitudes agree with the unfused
// circuit to rounding (~1e-15 per gate), not bit-for-bit. Runs that would
// not shrink (fewer than two gates, or as many tables as gates) are emitted
// unchanged. Parameter arity is preserved.
func (c *Circuit) FuseDiagonals() *Circuit {
	c.fuseOnce.Do(func() { c.fused = c.fuseDiagonals() })
	return c.fused
}

// tableDedup interns phase tables by content so identical runs (the p cost
// layers of a QAOA circuit) share one *PhaseTable — one memoized table, one
// lazy compression, for every layer and every gamma.
type tableDedup map[uint64][]*PhaseTable

func (d tableDedup) intern(vals []float64) *PhaseTable {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vals {
		putFloatLE(&buf, v)
		h.Write(buf[:])
	}
	key := h.Sum64()
	for _, t := range d[key] {
		if equalFloats(t.vals, vals) {
			return t
		}
	}
	t := NewPhaseTable(vals)
	d[key] = append(d[key], t)
	return t
}

func putFloatLE(buf *[8]byte, v float64) {
	b := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		buf[i] = byte(b >> (8 * i))
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func (c *Circuit) fuseDiagonals() *Circuit {
	out := &Circuit{n: c.n, numParams: c.numParams}
	dedup := tableDedup{}
	var run []*Gate
	for i := range c.gates {
		g := &c.gates[i]
		if g.IsDiagonal() {
			run = append(run, g)
			continue
		}
		out.flushRun(run, dedup)
		run = run[:0]
		out.gates = append(out.gates, *g)
	}
	out.flushRun(run, dedup)
	if len(out.gates) == len(c.gates) {
		return c // nothing fused: share the original
	}
	return out
}

// flushRun collapses one run of adjacent diagonal gates into per-parameter
// GateDiagonal gates (constant contributions first, then parameters in
// ascending index order), or emits the run unchanged when fusion would not
// reduce the gate count.
func (out *Circuit) flushRun(run []*Gate, dedup tableDedup) {
	if len(run) < 2 {
		for _, g := range run {
			out.gates = append(out.gates, *g)
		}
		return
	}
	dim := 1 << uint(out.n)
	// tables[p] accumulates parameter p's generator; -1 keys the constant
	// (fixed-angle) contributions, applied with angle 1.
	tables := map[int][]float64{}
	get := func(param int) []float64 {
		t := tables[param]
		if t == nil {
			t = make([]float64, dim)
			tables[param] = t
		}
		return t
	}
	for _, g := range run {
		switch {
		case !g.Kind.parametric(): // Z, S, Sdg, T, CZ: fixed phases
			accumDiagGen(get(-1), 1, g)
		case g.Param < 0:
			accumDiagGen(get(-1), g.Theta, g)
		default:
			accumDiagGen(get(g.Param), g.Scale, g)
			if g.Theta != 0 {
				accumDiagGen(get(-1), g.Theta, g)
			}
		}
	}
	if len(tables) >= len(run) {
		for _, g := range run {
			out.gates = append(out.gates, *g)
		}
		return
	}
	params := make([]int, 0, len(tables))
	for p := range tables {
		params = append(params, p)
	}
	sort.Ints(params)
	for _, p := range params {
		g := Gate{Kind: GateDiagonal, Diag: dedup.intern(tables[p]), Param: p}
		if p < 0 {
			g.Theta = 1
		} else {
			g.Scale = 1
		}
		out.gates = append(out.gates, g)
	}
}

// accumDiagGen adds w times gate g's per-basis phase generator into table,
// where g applied with angle theta multiplies amplitude b by
// exp(-i * theta * gen(b)) (theta taken as 1 for the non-parametric
// Cliffords, whose full phase lives in the generator).
func accumDiagGen(table []float64, w float64, g *Gate) {
	if w == 0 {
		return
	}
	switch g.Kind {
	case GateZ: // diag(1, -1) = exp(-i pi) on |1>
		accumBit(table, g.Qubits[0], w*math.Pi)
	case GateS: // diag(1, i) = exp(-i (-pi/2)) on |1>
		accumBit(table, g.Qubits[0], -w*math.Pi/2)
	case GateSdg: // diag(1, -i)
		accumBit(table, g.Qubits[0], w*math.Pi/2)
	case GateT: // diag(1, e^{i pi/4})
		accumBit(table, g.Qubits[0], -w*math.Pi/4)
	case GateRZ: // diag(e^{-i theta/2}, e^{+i theta/2})
		half := w / 2
		bit := 1 << uint(g.Qubits[0])
		for b := range table {
			if b&bit == 0 {
				table[b] += half
			} else {
				table[b] -= half
			}
		}
	case GateCZ: // -1 on |11>
		ab, bb := 1<<uint(g.Qubits[0]), 1<<uint(g.Qubits[1])
		wpi := w * math.Pi
		for b := range table {
			if b&ab != 0 && b&bb != 0 {
				table[b] += wpi
			}
		}
	case GateRZZ: // exp(-i theta/2) on even parity, exp(+i theta/2) on odd
		ab, bb := 1<<uint(g.Qubits[0]), 1<<uint(g.Qubits[1])
		half := w / 2
		for b := range table {
			if (b&ab != 0) == (b&bb != 0) {
				table[b] += half
			} else {
				table[b] -= half
			}
		}
	case GatePauliRot: // diagonal (X-free) string: exp(-i theta/2 * sign(b))
		z := g.Pauli.ZMask()
		half := w / 2
		for b := range table {
			if bits.OnesCount64(uint64(b)&z)&1 == 0 {
				table[b] += half
			} else {
				table[b] -= half
			}
		}
	case GateDiagonal:
		vals := g.Diag.Values()
		for b := range table {
			table[b] += w * vals[b]
		}
	default:
		panic("qsim: accumDiagGen on non-diagonal gate " + g.Kind.String())
	}
}

// accumBit adds v to every basis state with qubit q set.
func accumBit(table []float64, q int, v float64) {
	bit := 1 << uint(q)
	for b := range table {
		if b&bit != 0 {
			table[b] += v
		}
	}
}
