package qsim

import (
	"fmt"
	"math/rand"

	"repro/internal/pauli"
)

// Trajectory simulation: noisy expectation values by averaging pure-state
// runs with stochastically inserted Pauli errors. This is the standard
// middle ground between the exact density-matrix simulator (4^n memory,
// <= 13 qubits) and the analytic damping model: memory stays 2^n while the
// channel converges to the exact depolarizing channel as trajectories grow.

// TrajectoryOptions configures a stochastic noisy simulation.
type TrajectoryOptions struct {
	// P1 and P2 are the depolarizing probabilities per one- and two-qubit
	// gate.
	P1, P2 float64
	// Trajectories is the number of pure-state samples to average
	// (default 200).
	Trajectories int
	// Seed drives error insertion.
	Seed int64
}

func (o *TrajectoryOptions) fill() error {
	if o.P1 < 0 || o.P1 > 1 || o.P2 < 0 || o.P2 > 1 {
		return fmt.Errorf("qsim: trajectory error rates out of range: p1=%g p2=%g", o.P1, o.P2)
	}
	if o.Trajectories == 0 {
		o.Trajectories = 200
	}
	if o.Trajectories < 1 {
		return fmt.Errorf("qsim: need >= 1 trajectory, got %d", o.Trajectories)
	}
	return nil
}

// pauliOn applies one random non-identity Pauli on qubit q.
func pauliOn(s *State, q int, which int) {
	switch which {
	case 0:
		s.apply1Q(q, gateMatrix(GateX, 0))
	case 1:
		s.apply1Q(q, gateMatrix(GateY, 0))
	default:
		s.apply1Q(q, gateMatrix(GateZ, 0))
	}
}

// runTrajectory executes one noisy pure-state run: after every gate, each
// touched qubit suffers a uniformly random non-identity Pauli with the
// channel probability. For the two-qubit channel, one of the 15 non-identity
// two-qubit Paulis is applied.
func runTrajectory(c *Circuit, params []float64, opt TrajectoryOptions, rng *rand.Rand) (*State, error) {
	s := NewState(c.N())
	for _, g := range c.Gates() {
		if err := s.ApplyGate(g, params); err != nil {
			return nil, err
		}
		switch {
		case len(g.Qubits) == 1:
			if opt.P1 > 0 && rng.Float64() < opt.P1 {
				pauliOn(s, g.Qubits[0], rng.Intn(3))
			}
		case len(g.Qubits) == 2:
			if opt.P2 > 0 && rng.Float64() < opt.P2 {
				// Pick one of the 15 non-identity pairs.
				k := 1 + rng.Intn(15)
				a, b := k/4, k%4
				if a > 0 {
					pauliOn(s, g.Qubits[0], a-1)
				}
				if b > 0 {
					pauliOn(s, g.Qubits[1], b-1)
				}
			}
		case g.Kind == GatePauliRot:
			if opt.P1 > 0 {
				for q := 0; q < g.Pauli.N(); q++ {
					if g.Pauli.At(q) != pauli.I && rng.Float64() < opt.P1 {
						pauliOn(s, q, rng.Intn(3))
					}
				}
			}
		}
	}
	return s, nil
}

// TrajectoryExpectation estimates Tr(rho H) under per-gate depolarizing
// noise by averaging pure-state trajectories.
func TrajectoryExpectation(c *Circuit, params []float64, h *pauli.Hamiltonian, opt TrajectoryOptions) (float64, error) {
	if err := opt.fill(); err != nil {
		return 0, err
	}
	if h.N() != c.N() {
		return 0, fmt.Errorf("qsim: %d-qubit Hamiltonian for %d-qubit circuit", h.N(), c.N())
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	var total float64
	for t := 0; t < opt.Trajectories; t++ {
		s, err := runTrajectory(c, params, opt, rng)
		if err != nil {
			return 0, err
		}
		e, err := s.Expectation(h)
		if err != nil {
			return 0, err
		}
		total += e
	}
	return total / float64(opt.Trajectories), nil
}
