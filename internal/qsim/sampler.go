package qsim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/pauli"
)

// Sampler draws basis-state measurements from a fixed probability
// distribution. Building one precomputes the 2^n cumulative table once, so
// repeated draws from the same state (shot-noise studies, sampled
// expectations at many shot budgets) pay the O(2^n) scan a single time
// instead of on every call.
type Sampler struct {
	cum   []float64
	total float64
}

// NewSampler builds a sampler over an explicit distribution (need not be
// normalized; draws are taken against the accumulated total, which also
// absorbs float accumulation error).
func NewSampler(probs []float64) *Sampler {
	cum := make([]float64, len(probs))
	var acc float64
	for i, p := range probs {
		acc += p
		cum[i] = acc
	}
	return &Sampler{cum: cum, total: acc}
}

// Sampler builds a measurement sampler for the state's current amplitudes,
// accumulating |amp|^2 directly with no intermediate probability slice. The
// sampler snapshots the distribution: later gates on s do not affect it.
func (s *State) Sampler() *Sampler {
	cum := make([]float64, len(s.amp))
	var acc float64
	for i, a := range s.amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		cum[i] = acc
	}
	return &Sampler{cum: cum, total: acc}
}

// Sample draws shots basis states and returns the observed bitstring counts.
func (sp *Sampler) Sample(shots int, rng *rand.Rand) map[uint64]int {
	counts := make(map[uint64]int)
	for i := 0; i < shots; i++ {
		counts[sp.Draw(rng)]++
	}
	return counts
}

// Draw samples a single basis state.
func (sp *Sampler) Draw(rng *rand.Rand) uint64 {
	r := rng.Float64() * sp.total
	idx := sort.SearchFloat64s(sp.cum, r)
	if idx >= len(sp.cum) {
		idx = len(sp.cum) - 1
	}
	return uint64(idx)
}

// Expectation estimates <H> for a diagonal Hamiltonian from shots draws —
// SampledExpectation with the cumulative table amortized across calls.
func (sp *Sampler) Expectation(h *pauli.Hamiltonian, shots int, rng *rand.Rand) (float64, error) {
	if !h.IsDiagonal() {
		return 0, fmt.Errorf("qsim: sampled expectation requires a diagonal Hamiltonian")
	}
	if shots <= 0 {
		return 0, fmt.Errorf("qsim: shots must be positive, got %d", shots)
	}
	var total float64
	for b, c := range sp.Sample(shots, rng) {
		v, err := h.EvalBitstring(b)
		if err != nil {
			return 0, err
		}
		total += v * float64(c)
	}
	return total / float64(shots), nil
}
