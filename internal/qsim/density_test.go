package qsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

func TestDensityMatchesStateVector(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(4)
		c := randomCircuit(n, 20, rng)
		sv, err := Run(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := RunDensity(c, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(dm.Trace(), 1, 1e-9) {
			t.Fatalf("trace %g", dm.Trace())
		}
		// Compare expectations of a few observables.
		obs := []pauli.String{
			pauli.SingleZ(n, 0),
			pauli.Identity(n),
		}
		if n > 1 {
			obs = append(obs, pauli.ZZ(n, 0, n-1))
		}
		obs = append(obs, randomPauli(n, rng))
		for _, p := range obs {
			want, err := sv.ExpectationPauli(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dm.ExpectationPauli(p)
			if err != nil {
				t.Fatal(err)
			}
			if !approx(got, want, 1e-8) {
				t.Fatalf("n=%d %s: dm %g vs sv %g", n, p, got, want)
			}
		}
		// Probabilities should match too.
		pd := dm.Probabilities()
		ps := sv.Probabilities()
		for i := range pd {
			if !approx(pd[i], ps[i], 1e-9) {
				t.Fatalf("prob[%d] %g vs %g", i, pd[i], ps[i])
			}
		}
	}
}

func randomPauli(n int, rng *rand.Rand) pauli.String {
	ops := []byte{'I', 'X', 'Y', 'Z'}
	b := make([]byte, n)
	for i := range b {
		b[i] = ops[rng.Intn(4)]
	}
	return pauli.MustString(string(b))
}

func TestDepolarize1QDampsZ(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.5, 0.75} {
		d := NewDensityMatrix(1)
		if err := d.Depolarize1Q(0, p); err != nil {
			t.Fatal(err)
		}
		z, _ := d.ExpectationPauli(pauli.MustString("Z"))
		want := 1 - 4*p/3
		if !approx(z, want, 1e-9) {
			t.Fatalf("p=%g: <Z>=%g want %g", p, z, want)
		}
		if !approx(d.Trace(), 1, 1e-9) {
			t.Fatalf("p=%g: trace %g", p, d.Trace())
		}
	}
	d := NewDensityMatrix(1)
	if err := d.Depolarize1Q(0, 1.5); err == nil {
		t.Fatal("want error for p>1")
	}
}

func TestDepolarize2QDampsZZ(t *testing.T) {
	d := NewDensityMatrix(2)
	zz0, _ := d.ExpectationPauli(pauli.MustString("ZZ"))
	if !approx(zz0, 1, 1e-12) {
		t.Fatalf("<ZZ> before: %g", zz0)
	}
	p := 0.3
	if err := d.Depolarize2Q(0, 1, p); err != nil {
		t.Fatal(err)
	}
	// Under 2q depolarizing, a weight-2 Pauli expectation scales by
	// (1 - 16p/15): of the 15 non-identity conjugations, ZZ commutes with
	// {ZZ, ZI, IZ} minus sign structure; the closed form for the twirl is
	// E -> (1-p)E + p/15 * sum_P s_P E with sum of signs = -1 for ZZ.
	zz, _ := d.ExpectationPauli(pauli.MustString("ZZ"))
	want := (1-p)*1 + p/15*(-1)
	if !approx(zz, want, 1e-9) {
		t.Fatalf("<ZZ> after: %g want %g", zz, want)
	}
	if !approx(d.Trace(), 1, 1e-9) {
		t.Fatalf("trace %g", d.Trace())
	}
}

func TestAmplitudeDamp(t *testing.T) {
	// Prepare |1> and damp.
	c := NewCircuit(1).X(0)
	d, err := RunDensity(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	gamma := 0.25
	if err := d.AmplitudeDamp(0, gamma); err != nil {
		t.Fatal(err)
	}
	z, _ := d.ExpectationPauli(pauli.MustString("Z"))
	want := 2*gamma - 1
	if !approx(z, want, 1e-9) {
		t.Fatalf("<Z>=%g want %g", z, want)
	}
	if !approx(d.Trace(), 1, 1e-9) {
		t.Fatalf("trace %g", d.Trace())
	}
	if err := d.AmplitudeDamp(0, -0.1); err == nil {
		t.Fatal("want error for negative gamma")
	}
}

func TestNoiseHookRuns(t *testing.T) {
	c := NewCircuit(2).H(0).CNOT(0, 1)
	nCalls := 0
	d, err := RunDensity(c, nil, func(d *DensityMatrix, g Gate) error {
		nCalls++
		if len(g.Qubits) == 1 {
			return d.Depolarize1Q(g.Qubits[0], 0.01)
		}
		if err := d.Depolarize2Q(g.Qubits[0], g.Qubits[1], 0.05); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if nCalls != 2 {
		t.Fatalf("hook called %d times", nCalls)
	}
	zz, _ := d.ExpectationPauli(pauli.MustString("ZZ"))
	if zz >= 1 {
		t.Fatalf("noise did not reduce <ZZ>: %g", zz)
	}
	if !approx(d.Trace(), 1, 1e-9) {
		t.Fatalf("trace %g", d.Trace())
	}
}

func TestApplyReadoutError(t *testing.T) {
	// Deterministic |00> distribution through a confusion channel.
	probs := []float64{1, 0, 0, 0}
	out, err := ApplyReadoutError(probs, 2, 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range out {
		sum += p
	}
	if !approx(sum, 1, 1e-12) {
		t.Fatalf("distribution sum %g", sum)
	}
	if !approx(out[0], 0.81, 1e-12) { // (1-p01)^2
		t.Fatalf("P(00)=%g want 0.81", out[0])
	}
	if !approx(out[3], 0.01, 1e-12) { // p01^2
		t.Fatalf("P(11)=%g want 0.01", out[3])
	}
	if _, err := ApplyReadoutError(probs, 3, 0.1, 0.1); err == nil {
		t.Fatal("want error for dimension mismatch")
	}
	if _, err := ApplyReadoutError(probs, 2, 1.5, 0); err == nil {
		t.Fatal("want error for invalid rate")
	}
}

func TestDensityPauliRotMatchesState(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(2)
		pre := randomCircuit(n, 10, rng)
		p := randomPauli(n, rng)
		theta := rng.Float64() * 2 * math.Pi
		c := NewCircuit(n)
		c.gates = append(c.gates, pre.gates...)
		c.PauliRot(p, theta)

		sv, _ := Run(c, nil)
		dm, _ := RunDensity(c, nil, nil)
		obs := randomPauli(n, rng)
		want, _ := sv.ExpectationPauli(obs)
		got, _ := dm.ExpectationPauli(obs)
		if !approx(got, want, 1e-8) {
			t.Fatalf("rot %s obs %s: dm %g vs sv %g", p, obs, got, want)
		}
	}
}

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	probs := []float64{0.25, 0.25, 0.5, 0}
	counts := SampleDistribution(probs, 40000, rng)
	if counts[3] != 0 {
		t.Fatal("sampled zero-probability outcome")
	}
	f2 := float64(counts[2]) / 40000
	if math.Abs(f2-0.5) > 0.02 {
		t.Fatalf("frequency %g want 0.5", f2)
	}
}

func TestDensityClone(t *testing.T) {
	d := NewDensityMatrix(2)
	c := d.Clone()
	if err := d.Depolarize1Q(0, 0.5); err != nil {
		t.Fatal(err)
	}
	z, _ := c.ExpectationPauli(pauli.MustString("ZI"))
	if !approx(z, 1, 1e-12) {
		t.Fatal("clone mutated by channel on original")
	}
}
