package qsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pauli"
)

const tol = 1e-10

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// randomCircuit builds a random fixed-angle circuit touching every gate kind.
func randomCircuit(n, depth int, rng *rand.Rand) *Circuit {
	c := NewCircuit(n)
	for d := 0; d < depth; d++ {
		switch rng.Intn(10) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.X(rng.Intn(n))
		case 2:
			c.RX(rng.Intn(n), rng.Float64()*2*math.Pi)
		case 3:
			c.RY(rng.Intn(n), rng.Float64()*2*math.Pi)
		case 4:
			c.RZ(rng.Intn(n), rng.Float64()*2*math.Pi)
		case 5:
			if n > 1 {
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.CNOT(a, b)
			}
		case 6:
			if n > 1 {
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.CZ(a, b)
			}
		case 7:
			if n > 1 {
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.RZZ(a, b, rng.Float64()*2*math.Pi)
			}
		case 8:
			c.S(rng.Intn(n)).T(rng.Intn(n))
		default:
			ops := []byte{'I', 'X', 'Y', 'Z'}
			b := make([]byte, n)
			nonI := false
			for i := range b {
				b[i] = ops[rng.Intn(4)]
				if b[i] != 'I' {
					nonI = true
				}
			}
			if !nonI {
				b[0] = 'X'
			}
			c.PauliRot(pauli.MustString(string(b)), rng.Float64()*2*math.Pi)
		}
	}
	return c
}

func TestStateInitial(t *testing.T) {
	s := NewState(3)
	if s.N() != 3 {
		t.Fatalf("N=%d", s.N())
	}
	if !approx(s.Norm(), 1, tol) {
		t.Fatalf("norm %g", s.Norm())
	}
	if s.Amplitudes()[0] != 1 {
		t.Fatal("not |000>")
	}
}

func TestHadamardSuperposition(t *testing.T) {
	c := NewCircuit(1).H(0)
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Probabilities()
	if !approx(p[0], 0.5, tol) || !approx(p[1], 0.5, tol) {
		t.Fatalf("probs %v", p)
	}
}

func TestBellState(t *testing.T) {
	c := NewCircuit(2).H(0).CNOT(0, 1)
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Probabilities()
	if !approx(p[0], 0.5, tol) || !approx(p[3], 0.5, tol) || !approx(p[1], 0, tol) || !approx(p[2], 0, tol) {
		t.Fatalf("probs %v", p)
	}
	zz, err := s.ExpectationPauli(pauli.MustString("ZZ"))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(zz, 1, tol) {
		t.Fatalf("<ZZ>=%g want 1", zz)
	}
	xx, _ := s.ExpectationPauli(pauli.MustString("XX"))
	if !approx(xx, 1, tol) {
		t.Fatalf("<XX>=%g want 1", xx)
	}
	yy, _ := s.ExpectationPauli(pauli.MustString("YY"))
	if !approx(yy, -1, tol) {
		t.Fatalf("<YY>=%g want -1", yy)
	}
}

// TestUnitarity is a property test: any random circuit preserves the norm.
func TestUnitarity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		c := randomCircuit(n, 20, rng)
		s, err := Run(c, nil)
		if err != nil {
			return false
		}
		return approx(s.Norm(), 1, 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRZZMatchesDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		theta := rng.Float64() * 4 * math.Pi
		pre := randomCircuit(3, 8, rng)

		c1 := NewCircuit(3)
		c1.gates = append(c1.gates, pre.gates...)
		c1.RZZ(0, 2, theta)

		c2 := NewCircuit(3)
		c2.gates = append(c2.gates, pre.gates...)
		c2.CNOT(0, 2).RZ(2, theta).CNOT(0, 2)

		s1, err := Run(c1, nil)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Run(c2, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s1.amp {
			if cmplx.Abs(s1.amp[i]-s2.amp[i]) > 1e-9 {
				t.Fatalf("trial %d: amp[%d] %v vs %v", trial, i, s1.amp[i], s2.amp[i])
			}
		}
	}
}

func TestPauliRotMatchesNamedRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := []struct {
		p     string
		build func(c *Circuit, theta float64)
	}{
		{"ZII", func(c *Circuit, th float64) { c.RZ(0, th) }},
		{"IXI", func(c *Circuit, th float64) { c.RX(1, th) }},
		{"IIY", func(c *Circuit, th float64) { c.RY(2, th) }},
		{"ZIZ", func(c *Circuit, th float64) { c.RZZ(0, 2, th) }},
	}
	for _, tc := range cases {
		theta := rng.Float64() * 4 * math.Pi
		pre := randomCircuit(3, 10, rng)

		c1 := NewCircuit(3)
		c1.gates = append(c1.gates, pre.gates...)
		c1.PauliRot(pauli.MustString(tc.p), theta)

		c2 := NewCircuit(3)
		c2.gates = append(c2.gates, pre.gates...)
		tc.build(c2, theta)

		s1, _ := Run(c1, nil)
		s2, _ := Run(c2, nil)
		for i := range s1.amp {
			if cmplx.Abs(s1.amp[i]-s2.amp[i]) > 1e-9 {
				t.Fatalf("%s: amp[%d] %v vs %v", tc.p, i, s1.amp[i], s2.amp[i])
			}
		}
	}
}

func TestPauliRotXYGenerators(t *testing.T) {
	// exp(-i pi/2 X) = -i X up to global phase: |0> -> -i|1>.
	c := NewCircuit(1).PauliRot(pauli.MustString("X"), math.Pi)
	s, _ := Run(c, nil)
	if cmplx.Abs(s.amp[1]-complex(0, -1)) > 1e-9 {
		t.Fatalf("exp(-i pi X/2)|0> amp1 = %v", s.amp[1])
	}
	// exp(-i pi/2 Y)|0> = |1> (up to sign conventions: RY(pi)|0> = |1>).
	c2 := NewCircuit(1).PauliRot(pauli.MustString("Y"), math.Pi)
	s2, _ := Run(c2, nil)
	if cmplx.Abs(s2.amp[1]-1) > 1e-9 {
		t.Fatalf("RY(pi)|0> amp1 = %v", s2.amp[1])
	}
}

func TestParametricBinding(t *testing.T) {
	c := NewCircuit(2)
	c.RXP(0, 0, 1.0).RZZP(0, 1, 1, 2.0)
	if c.NumParams() != 2 {
		t.Fatalf("NumParams=%d", c.NumParams())
	}
	if _, err := Run(c, []float64{0.3}); err == nil {
		t.Fatal("want error for missing parameter")
	}
	if _, err := Run(c, []float64{0.3, math.NaN()}); err == nil {
		t.Fatal("want error for NaN parameter")
	}
	s1, err := Run(c, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Run(NewCircuit(2).RX(0, 0.3).RZZ(0, 1, 1.4), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.amp {
		if cmplx.Abs(s1.amp[i]-s2.amp[i]) > 1e-9 {
			t.Fatalf("amp[%d] %v vs %v", i, s1.amp[i], s2.amp[i])
		}
	}
}

func TestExpectationDiagonalAgainstDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := 4
	c := randomCircuit(n, 25, rng)
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := pauli.NewHamiltonian(n)
	h.MustAdd(0.5, pauli.Identity(n))
	h.MustAdd(-0.5, pauli.ZZ(n, 0, 2))
	h.MustAdd(1.25, pauli.ZZ(n, 1, 3))
	h.MustAdd(-0.75, pauli.SingleZ(n, 2))

	direct, err := s.Expectation(h)
	if err != nil {
		t.Fatal(err)
	}
	viaDist, err := ExpectationFromDistribution(h, s.Probabilities())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(direct, viaDist, 1e-9) {
		t.Fatalf("direct %g vs distribution %g", direct, viaDist)
	}
}

func TestSampleStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	c := NewCircuit(2).H(0).CNOT(0, 1)
	s, _ := Run(c, nil)
	shots := 20000
	counts := s.Sample(shots, rng)
	total := 0
	for _, v := range counts {
		total += v
	}
	if total != shots {
		t.Fatalf("counts sum %d want %d", total, shots)
	}
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("impossible outcomes sampled: %v", counts)
	}
	f00 := float64(counts[0]) / float64(shots)
	if math.Abs(f00-0.5) > 0.02 {
		t.Fatalf("frequency of 00 = %g", f00)
	}
}

func TestSampledExpectationConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	n := 3
	c := randomCircuit(n, 15, rng)
	s, _ := Run(c, nil)
	h := pauli.NewHamiltonian(n)
	h.MustAdd(1, pauli.ZZ(n, 0, 1))
	h.MustAdd(-0.5, pauli.SingleZ(n, 2))
	exact, _ := s.Expectation(h)
	est, err := s.SampledExpectation(h, 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > 0.03 {
		t.Fatalf("sampled %g exact %g", est, exact)
	}
	if _, err := s.SampledExpectation(h, 0, rng); err == nil {
		t.Fatal("want error for zero shots")
	}
	hx := pauli.NewHamiltonian(n)
	hx.MustAdd(1, pauli.MustString("XII"))
	if _, err := s.SampledExpectation(hx, 10, rng); err == nil {
		t.Fatal("want error for off-diagonal Hamiltonian")
	}
}

func TestCloneAndReset(t *testing.T) {
	c := NewCircuit(2).H(0).CNOT(0, 1)
	s, _ := Run(c, nil)
	cl := s.Clone()
	s.Reset()
	if !approx(real(s.amp[0]), 1, tol) {
		t.Fatal("reset failed")
	}
	if !approx(real(cl.amp[0]*cmplx.Conj(cl.amp[0])), 0.5, tol) {
		t.Fatal("clone mutated by reset")
	}
}

func TestCircuitValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range qubit")
		}
	}()
	NewCircuit(2).H(5)
}

func TestCircuitDuplicateQubitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for duplicate qubits in CNOT")
		}
	}()
	NewCircuit(2).CNOT(1, 1)
}

func TestGateCounts(t *testing.T) {
	c := NewCircuit(4)
	c.H(0).H(1).CNOT(0, 1).RZZ(1, 2, 0.5).RX(3, 0.1)
	c.PauliRot(pauli.MustString("XYZI"), 0.2)
	if got := c.TwoQubitCount(); got != 4 { // CNOT + RZZ + (weight3 rot = 2 CX)
		t.Errorf("TwoQubitCount=%d want 4", got)
	}
	if got := c.CountKind(GateH); got != 2 {
		t.Errorf("CountKind(H)=%d want 2", got)
	}
	if c.OneQubitCount() == 0 {
		t.Error("OneQubitCount=0")
	}
}

func TestKindString(t *testing.T) {
	if GateH.String() != "h" || GateRZZ.String() != "rzz" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func TestExpectationDimensionMismatch(t *testing.T) {
	s := NewState(2)
	if _, err := s.ExpectationPauli(pauli.MustString("ZZZ")); err == nil {
		t.Fatal("want error for dimension mismatch")
	}
	h := pauli.NewHamiltonian(3)
	h.MustAdd(1, pauli.Identity(3))
	if _, err := s.Expectation(h); err == nil {
		t.Fatal("want error for Hamiltonian mismatch")
	}
}

func TestFidelity(t *testing.T) {
	c := NewCircuit(2).H(0).CNOT(0, 1)
	s1, _ := Run(c, nil)
	s2, _ := Run(c, nil)
	f, err := Fidelity(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(f, 1, 1e-12) {
		t.Fatalf("self fidelity %g", f)
	}
	// Orthogonal states.
	z := NewState(2)
	x := NewState(2)
	x.apply1Q(0, gateMatrix(GateX, 0))
	f, _ = Fidelity(z, x)
	if !approx(f, 0, 1e-12) {
		t.Fatalf("orthogonal fidelity %g", f)
	}
	if _, err := Fidelity(NewState(1), NewState(2)); err == nil {
		t.Fatal("want dimension error")
	}
}

func TestPurity(t *testing.T) {
	d := NewDensityMatrix(2)
	if !approx(d.Purity(), 1, 1e-12) {
		t.Fatalf("pure state purity %g", d.Purity())
	}
	// Strong depolarizing pushes purity down.
	if err := d.Depolarize1Q(0, 0.75); err != nil {
		t.Fatal(err)
	}
	if err := d.Depolarize1Q(1, 0.75); err != nil {
		t.Fatal(err)
	}
	if d.Purity() >= 0.5 {
		t.Fatalf("mixed purity %g should drop below 0.5", d.Purity())
	}
	if d.Purity() < 0.25-1e-9 {
		t.Fatalf("purity %g below the 2-qubit floor", d.Purity())
	}
}
