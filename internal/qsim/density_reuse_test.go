package qsim

// density_reuse_test.go pins the buffer-reusing density-matrix kernels to
// the seed's allocate-per-call implementations: the accumulate-in-place
// depolarizing channels perform exactly the seed's per-element operations in
// the seed's order, so results must match bit-for-bit, and re-running
// circuits through a reused matrix must equal fresh runs exactly.

import (
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

// refConjugatePauli is the seed P rho P^dagger on a raw matrix.
func refConjugatePauli(rho []complex128, dim int, p pauli.String) []complex128 {
	x := int(p.XMask())
	z := p.ZMask()
	nY := 0
	for q := 0; q < p.N(); q++ {
		if p.At(q) == pauli.Y {
			nY++
		}
	}
	iPow := iPower(nY)
	out := make([]complex128, len(rho))
	for i := 0; i < dim; i++ {
		ci := pauliPhase(uint64(i), z, iPow)
		for j := 0; j < dim; j++ {
			cj := pauliPhase(uint64(j), z, iPow)
			out[(i^x)*dim+(j^x)] = ci * complexConj(cj) * rho[i*dim+j]
		}
	}
	return out
}

// refDepolarize1Q is the seed copy-conjugate-accumulate channel.
func refDepolarize1Q(rho []complex128, dim, n, q int, p float64) []complex128 {
	acc := make([]complex128, len(rho))
	for i := range acc {
		acc[i] = complex(1-p, 0) * rho[i]
	}
	for _, op := range []pauli.Op{pauli.X, pauli.Y, pauli.Z} {
		out := refConjugatePauli(rho, dim, singleOp(n, q, op))
		w := complex(p/3, 0)
		for i := range acc {
			acc[i] += w * out[i]
		}
	}
	return acc
}

func TestDepolarizeBitIdenticalToSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const n = 4
	c := allKindsCircuit(n, 20, rng)
	d, err := RunDensity(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := refDepolarize1Q(append([]complex128(nil), d.rho...), d.dim, n, 2, 0.03)
	if err := d.Depolarize1Q(2, 0.03); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d.rho[i] != want[i] {
			t.Fatalf("rho[%d] = %v, seed %v", i, d.rho[i], want[i])
		}
	}
}

func TestRunDensityIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const n = 3
	hook := func(d *DensityMatrix, g Gate) error {
		switch len(g.Qubits) {
		case 1:
			return d.Depolarize1Q(g.Qubits[0], 0.01)
		case 2:
			return d.Depolarize2Q(g.Qubits[0], g.Qubits[1], 0.02)
		default:
			return nil
		}
	}
	dst := NewDensityMatrix(n)
	for trial := 0; trial < 6; trial++ {
		c := allKindsCircuit(n, 15, rng)
		if err := RunDensityInto(dst, c, nil, hook); err != nil {
			t.Fatal(err)
		}
		fresh, err := RunDensity(c, nil, hook)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fresh.rho {
			if dst.rho[i] != fresh.rho[i] {
				t.Fatalf("trial %d: rho[%d] = %v, fresh %v", trial, i, dst.rho[i], fresh.rho[i])
			}
		}
	}
	if err := RunDensityInto(dst, allKindsCircuit(2, 4, rng), nil, nil); err == nil {
		t.Fatal("want dimension mismatch error")
	}
}

func TestAmplitudeDampReuseStillTracePreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	d, err := RunDensity(allKindsCircuit(3, 15, rng), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.AmplitudeDamp(i%3, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if tr := d.Trace(); !approx(tr, 1, 1e-9) {
		t.Fatalf("trace %g after repeated damping", tr)
	}
}

func TestDensityExpectationDiagonalMatchesPerTerm(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const n = 4
	d, err := RunDensity(allKindsCircuit(n, 25, rng), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := pauli.NewHamiltonian(n)
	h.MustAdd(0.5, pauli.Identity(n))
	h.MustAdd(-1.25, pauli.ZZ(n, 0, 3))
	h.MustAdd(0.75, pauli.SingleZ(n, 1))
	table, err := h.DiagonalTable()
	if err != nil {
		t.Fatal(err)
	}
	fused, err := d.ExpectationDiagonal(table)
	if err != nil {
		t.Fatal(err)
	}
	perTerm, err := d.Expectation(h)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fused, perTerm, 1e-10) {
		t.Fatalf("fused %v vs per-term %v", fused, perTerm)
	}
	if _, err := d.ExpectationDiagonal(make([]float64, 3)); err == nil {
		t.Fatal("want table length error")
	}
}
