package qsim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/pauli"
	"repro/internal/shard"
)

// State is a pure quantum state on n qubits: 2^n complex amplitudes with
// qubit q addressed by bit q of the basis index.
type State struct {
	n   int
	amp []complex128
	// workers bounds how many goroutines elementwise gate kernels shard
	// their amplitude range across (<= 1 means serial). See SetWorkers.
	workers int
	// phaseLUT is the reused scratch for applyPhaseTable's per-application
	// complex phase LUT (one entry per distinct table value), so fused
	// diagonal layers allocate nothing in steady state.
	phaseLUT []complex128
}

// NewState prepares |0...0> on n qubits.
func NewState(n int) *State {
	if n <= 0 || n > 30 {
		panic(fmt.Sprintf("qsim: unsupported qubit count %d", n))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// N reports the qubit count.
func (s *State) N() int { return s.n }

// Amplitudes returns the raw amplitude slice (do not mutate).
func (s *State) Amplitudes() []complex128 { return s.amp }

// SetWorkers lets elementwise gate kernels shard their amplitude range over
// up to w goroutines (w <= 1, or states too small to amortize the goroutine
// overhead, run serially). Sharded execution is bit-identical to serial for
// every worker count: each amplitude is produced by exactly one shard with
// exactly the operations the serial loop would perform, and reductions
// (Norm, expectations, Fidelity) always run serially so floating-point sums
// keep a fixed order. Returns s for chaining.
func (s *State) SetWorkers(w int) *State {
	s.workers = w
	return s
}

// minShardIters is the per-kernel iteration count below which amplitude
// sharding is not worth the goroutine overhead.
const minShardIters = 1 << 13

// kernelWorkers resolves the shard count for a kernel with iters iterations.
func (s *State) kernelWorkers(iters int) int {
	if s.workers <= 1 || iters < minShardIters {
		return 1
	}
	return s.workers
}

// KernelShardable reports whether gate kernels on an n-qubit state are
// large enough for SetWorkers sharding to actually engage: the smallest
// kernel iteration count (2^n/4 for the two-qubit gates) must reach the
// goroutine-amortization threshold. Batch evaluators use it to decide
// between point-level and amplitude-level sharding.
func KernelShardable(n int) bool {
	return n >= 2 && (1<<uint(n))>>2 >= minShardIters
}

// Norm returns the 2-norm of the state (1 for any unitary evolution).
func (s *State) Norm() float64 {
	var t float64
	for _, a := range s.amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp)), workers: s.workers}
	copy(c.amp, s.amp)
	return c
}

// Reset returns the state to |0...0>.
func (s *State) Reset() {
	for i := range s.amp {
		s.amp[i] = 0
	}
	s.amp[0] = 1
}

// base2 expands a compressed index k in [0, 2^n/4) into the basis index
// whose bits at the two gate-qubit positions are zero, given the low mask
// lm = loBit-1 and the compressed-space high mask hm = hiBit/2 - 1. This is
// how the two-qubit kernels enumerate exactly the 2^n/4 index groups a gate
// touches, with no per-index mask tests.
func base2(k, lm, hm int) int {
	return k&lm | (k&(hm&^lm))<<1 | (k&^hm)<<2
}

// masks2 returns (lm, hm) for two distinct qubit bits.
func masks2(a, b int) (lm, hm int) {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo - 1, hi>>1 - 1
}

// The gate kernels below come in pairs: a range method that performs the
// actual strided loop over a compressed-index interval, and a dispatcher
// that runs the whole range inline when serial or fans shards out across
// goroutines when the state is large and SetWorkers allows. Closures are
// only created on the parallel path, so the serial hot path (the batch
// evaluators' per-point regime) allocates nothing.

// phase1Q multiplies the |1> half by m11 (Z, S, Sdg, T: m00 = 1).
func (s *State) phase1Q(klo, khi, bit, lm int, m11 complex128) {
	amp := s.amp
	for k := klo; k < khi; k++ {
		amp[(k&^lm)<<1|k&lm|bit] *= m11
	}
}

// diag1Q multiplies both halves by their phases (RZ).
func (s *State) diag1Q(klo, khi, bit, lm int, m00, m11 complex128) {
	amp := s.amp
	for k := klo; k < khi; k++ {
		i := (k&^lm)<<1 | k&lm
		amp[i] *= m00
		amp[i|bit] *= m11
	}
}

// dense1Q applies a full 2x2 matrix.
func (s *State) dense1Q(klo, khi, bit, lm int, m00, m01, m10, m11 complex128) {
	amp := s.amp
	for k := klo; k < khi; k++ {
		i := (k&^lm)<<1 | k&lm
		j := i | bit
		a0, a1 := amp[i], amp[j]
		amp[i] = m00*a0 + m01*a1
		amp[j] = m10*a0 + m11*a1
	}
}

// realDense1Q applies an all-real 2x2 matrix (H, X, RY) with half the
// multiplies of the generic complex path: exactly the operations the full
// complex arithmetic performs on the nonzero components, so results match
// the generic kernel bit-for-bit (up to the sign of exact zeros).
func (s *State) realDense1Q(klo, khi, bit, lm int, m00, m01, m10, m11 float64) {
	amp := s.amp
	for k := klo; k < khi; k++ {
		i := (k&^lm)<<1 | k&lm
		j := i | bit
		a0, a1 := amp[i], amp[j]
		a0r, a0i := real(a0), imag(a0)
		a1r, a1i := real(a1), imag(a1)
		amp[i] = complex(m00*a0r+m01*a1r, m00*a0i+m01*a1i)
		amp[j] = complex(m10*a0r+m11*a1r, m10*a0i+m11*a1i)
	}
}

// mixedDense1Q applies a matrix with real diagonal and purely imaginary
// off-diagonal entries (RX, Y), again performing exactly the generic
// path's nonzero-component operations.
func (s *State) mixedDense1Q(klo, khi, bit, lm int, m00, m01i, m10i, m11 float64) {
	amp := s.amp
	for k := klo; k < khi; k++ {
		i := (k&^lm)<<1 | k&lm
		j := i | bit
		a0, a1 := amp[i], amp[j]
		a0r, a0i := real(a0), imag(a0)
		a1r, a1i := real(a1), imag(a1)
		amp[i] = complex(m00*a0r-m01i*a1i, m00*a0i+m01i*a1r)
		amp[j] = complex(m11*a1r-m10i*a0i, m10i*a0r+m11*a1i)
	}
}

// apply1Q applies the 2x2 matrix m to qubit q as a strided two-level loop
// over compressed indices. Diagonal matrices (RZ, Z, S, Sdg, T) take a pure
// phase path, and phase gates with m00 = 1 touch only the |1> half.
func (s *State) apply1Q(q int, m [2][2]complex128) {
	bit := 1 << uint(q)
	lm := bit - 1
	half := len(s.amp) >> 1
	w := s.kernelWorkers(half)
	switch {
	case m[0][1] == 0 && m[1][0] == 0 && m[0][0] == 1:
		if w > 1 {
			shard.ForRange(w, half, func(lo, hi int) { s.phase1Q(lo, hi, bit, lm, m[1][1]) })
			return
		}
		s.phase1Q(0, half, bit, lm, m[1][1])
	case m[0][1] == 0 && m[1][0] == 0:
		if w > 1 {
			shard.ForRange(w, half, func(lo, hi int) { s.diag1Q(lo, hi, bit, lm, m[0][0], m[1][1]) })
			return
		}
		s.diag1Q(0, half, bit, lm, m[0][0], m[1][1])
	case imag(m[0][0]) == 0 && imag(m[0][1]) == 0 && imag(m[1][0]) == 0 && imag(m[1][1]) == 0:
		// All-real matrix (H, X, RY).
		r00, r01, r10, r11 := real(m[0][0]), real(m[0][1]), real(m[1][0]), real(m[1][1])
		if w > 1 {
			shard.ForRange(w, half, func(lo, hi int) { s.realDense1Q(lo, hi, bit, lm, r00, r01, r10, r11) })
			return
		}
		s.realDense1Q(0, half, bit, lm, r00, r01, r10, r11)
	case imag(m[0][0]) == 0 && imag(m[1][1]) == 0 && real(m[0][1]) == 0 && real(m[1][0]) == 0:
		// Real diagonal with imaginary off-diagonal (RX, Y).
		r00, i01, i10, r11 := real(m[0][0]), imag(m[0][1]), imag(m[1][0]), real(m[1][1])
		if w > 1 {
			shard.ForRange(w, half, func(lo, hi int) { s.mixedDense1Q(lo, hi, bit, lm, r00, i01, i10, r11) })
			return
		}
		s.mixedDense1Q(0, half, bit, lm, r00, i01, i10, r11)
	default:
		if w > 1 {
			shard.ForRange(w, half, func(lo, hi int) {
				s.dense1Q(lo, hi, bit, lm, m[0][0], m[0][1], m[1][0], m[1][1])
			})
			return
		}
		s.dense1Q(0, half, bit, lm, m[0][0], m[0][1], m[1][0], m[1][1])
	}
}

func (s *State) cnotRange(klo, khi, lm, hm, cb, tb int) {
	amp := s.amp
	for k := klo; k < khi; k++ {
		i := base2(k, lm, hm) | cb
		j := i | tb
		amp[i], amp[j] = amp[j], amp[i]
	}
}

// applyCNOT swaps the target pair in every |ctl=1> group: a branch-free
// strided loop over the 2^n/4 groups the gate touches.
func (s *State) applyCNOT(ctl, tgt int) {
	cb, tb := 1<<uint(ctl), 1<<uint(tgt)
	lm, hm := masks2(cb, tb)
	quarter := len(s.amp) >> 2
	if w := s.kernelWorkers(quarter); w > 1 {
		shard.ForRange(w, quarter, func(lo, hi int) { s.cnotRange(lo, hi, lm, hm, cb, tb) })
		return
	}
	s.cnotRange(0, quarter, lm, hm, cb, tb)
}

func (s *State) czRange(klo, khi, lm, hm, mask int) {
	amp := s.amp
	for k := klo; k < khi; k++ {
		i := base2(k, lm, hm) | mask
		amp[i] = -amp[i]
	}
}

// applyCZ negates the |11> amplitude of every group.
func (s *State) applyCZ(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	lm, hm := masks2(ab, bb)
	quarter := len(s.amp) >> 2
	if w := s.kernelWorkers(quarter); w > 1 {
		shard.ForRange(w, quarter, func(lo, hi int) { s.czRange(lo, hi, lm, hm, ab|bb) })
		return
	}
	s.czRange(0, quarter, lm, hm, ab|bb)
}

func (s *State) swapRange(klo, khi, lm, hm, ab, bb int) {
	amp := s.amp
	for k := klo; k < khi; k++ {
		base := base2(k, lm, hm)
		i, j := base|ab, base|bb
		amp[i], amp[j] = amp[j], amp[i]
	}
}

// applySWAP exchanges the |01> and |10> amplitudes of every group.
func (s *State) applySWAP(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	lm, hm := masks2(ab, bb)
	quarter := len(s.amp) >> 2
	if w := s.kernelWorkers(quarter); w > 1 {
		shard.ForRange(w, quarter, func(lo, hi int) { s.swapRange(lo, hi, lm, hm, ab, bb) })
		return
	}
	s.swapRange(0, quarter, lm, hm, ab, bb)
}

func (s *State) rzzRange(klo, khi, lm, hm, ab, bb int, pPlus, pMinus complex128) {
	amp := s.amp
	for k := klo; k < khi; k++ {
		base := base2(k, lm, hm)
		amp[base] *= pPlus
		amp[base|ab] *= pMinus
		amp[base|bb] *= pMinus
		amp[base|ab|bb] *= pPlus
	}
}

// applyRZZ applies exp(-i theta/2 Z_a Z_b), a diagonal phase, as four
// branch-free parity streams per group.
func (s *State) applyRZZ(a, b int, theta float64) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	lm, hm := masks2(ab, bb)
	pPlus := complex(math.Cos(theta/2), -math.Sin(theta/2)) // parity even
	pMinus := complex(math.Cos(theta/2), math.Sin(theta/2)) // parity odd
	quarter := len(s.amp) >> 2
	if w := s.kernelWorkers(quarter); w > 1 {
		shard.ForRange(w, quarter, func(lo, hi int) { s.rzzRange(lo, hi, lm, hm, ab, bb, pPlus, pMinus) })
		return
	}
	s.rzzRange(0, quarter, lm, hm, ab, bb, pPlus, pMinus)
}

// phaseLUTRange multiplies each amplitude by its value-compressed table
// phase: a single unit-stride streaming pass over (amp, idx) with the LUT
// resident in L1 — the cache-optimal traversal for a fused diagonal layer.
func (s *State) phaseLUTRange(lo, hi int, idx []uint32, lut []complex128) {
	amp := s.amp
	for b := lo; b < hi; b++ {
		amp[b] *= lut[idx[b]]
	}
}

// phaseDirectRange is the uncompressed fallback: one Sincos per amplitude.
func (s *State) phaseDirectRange(lo, hi int, theta float64, vals []float64) {
	amp := s.amp
	for b := lo; b < hi; b++ {
		sn, cs := math.Sincos(theta * vals[b])
		amp[b] *= complex(cs, -sn)
	}
}

// lutScratch returns the reused phase-LUT buffer, grown on demand.
func (s *State) lutScratch(n int) []complex128 {
	if cap(s.phaseLUT) < n {
		s.phaseLUT = make([]complex128, n)
	}
	return s.phaseLUT[:n]
}

// applyPhaseTable applies a GateDiagonal with resolved angle theta:
// amp[b] *= exp(-i theta t[b]), one O(2^n) pass for a whole fused diagonal
// layer regardless of how many gates were collapsed into it. Tables with few
// distinct values (MaxCut/SK cost spectra) take the compressed path — one
// Sincos per distinct value, then a streamed index lookup per amplitude.
// Both paths evaluate the identical Sincos per amplitude value, and shards
// own disjoint contiguous ranges, so results are bit-identical across
// compression choices and worker counts.
func (s *State) applyPhaseTable(t *PhaseTable, theta float64) {
	n := len(s.amp)
	if idx, unique, ok := t.compressed(); ok {
		lut := s.lutScratch(len(unique))
		buildPhaseLUT(lut, theta, unique)
		if w := s.kernelWorkers(n); w > 1 {
			shard.ForRange(w, n, func(lo, hi int) { s.phaseLUTRange(lo, hi, idx, lut) })
			return
		}
		s.phaseLUTRange(0, n, idx, lut)
		return
	}
	vals := t.Values()
	if w := s.kernelWorkers(n); w > 1 {
		shard.ForRange(w, n, func(lo, hi int) { s.phaseDirectRange(lo, hi, theta, vals) })
		return
	}
	s.phaseDirectRange(0, n, theta, vals)
}

func (s *State) rotDiagRange(lo, hi int, z uint64, phasePlus, phaseMinus complex128) {
	amp := s.amp
	for b := lo; b < hi; b++ {
		if bits.OnesCount64(uint64(b)&z)&1 == 1 {
			amp[b] *= phaseMinus
		} else {
			amp[b] *= phasePlus
		}
	}
}

func (s *State) rotPairRange(klo, khi, xi, hm int, z uint64, iPow, cosT, minusISin complex128) {
	amp := s.amp
	for k := klo; k < khi; k++ {
		b := (k&^hm)<<1 | k&hm
		b2 := b ^ xi
		// c(b) carries the phase of P|b> = c(b)|b^x>.
		cb := iPow * signC(uint64(b)&z)
		cb2 := iPow * signC(uint64(b2)&z)
		a, a2 := amp[b], amp[b2]
		// (P psi)[b] = c(b^x) psi[b^x]; new = cos*psi - i sin * P psi.
		amp[b] = cosT*a + minusISin*cb2*a2
		amp[b2] = cosT*a2 + minusISin*cb*a
	}
}

// applyPauliRot applies exp(-i theta/2 P) = cos(theta/2) I - i sin(theta/2) P.
func (s *State) applyPauliRot(p pauli.String, theta float64) {
	x := p.XMask()
	z := p.ZMask()
	cosT := complex(math.Cos(theta/2), 0)
	minusISin := complex(0, -math.Sin(theta/2))
	iPow := iPower(bits.OnesCount64(x & z)) // Y positions have both masks set
	if x == 0 {
		// Diagonal: amp[b] *= cos - i sin * (-1)^{parity(b&z)}.
		phasePlus := cosT + minusISin*iPow
		phaseMinus := cosT + minusISin*iPow*complex(-1, 0)
		n := len(s.amp)
		if w := s.kernelWorkers(n); w > 1 {
			shard.ForRange(w, n, func(lo, hi int) { s.rotDiagRange(lo, hi, z, phasePlus, phaseMinus) })
			return
		}
		s.rotDiagRange(0, n, z, phasePlus, phaseMinus)
		return
	}
	// Off-diagonal: every basis index pairs with its x-flip. Enumerating the
	// half-space where the highest x bit is clear visits each (b, b^x) pair
	// exactly once, at its smaller index, with no per-index skip test. The
	// partner index always lives in the other half-space, so shard writes
	// stay disjoint.
	xi := int(x)
	hm := 1<<(63-bits.LeadingZeros64(x)) - 1
	half := len(s.amp) >> 1
	if w := s.kernelWorkers(half); w > 1 {
		shard.ForRange(w, half, func(lo, hi int) { s.rotPairRange(lo, hi, xi, hm, z, iPow, cosT, minusISin) })
		return
	}
	s.rotPairRange(0, half, xi, hm, z, iPow, cosT, minusISin)
}

func signC(masked uint64) complex128 {
	if bits.OnesCount64(masked)&1 == 1 {
		return -1
	}
	return 1
}

func iPower(k int) complex128 {
	switch k % 4 {
	case 0:
		return 1
	case 1:
		return complex(0, 1)
	case 2:
		return -1
	default:
		return complex(0, -1)
	}
}

// gateMatrix returns the 2x2 matrix of a single-qubit gate kind.
func gateMatrix(k Kind, theta float64) [2][2]complex128 {
	inv := complex(1/math.Sqrt2, 0)
	c := complex(math.Cos(theta/2), 0)
	sI := complex(0, math.Sin(theta/2))
	switch k {
	case GateH:
		return [2][2]complex128{{inv, inv}, {inv, -inv}}
	case GateX:
		return [2][2]complex128{{0, 1}, {1, 0}}
	case GateY:
		return [2][2]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}}
	case GateZ:
		return [2][2]complex128{{1, 0}, {0, -1}}
	case GateS:
		return [2][2]complex128{{1, 0}, {0, complex(0, 1)}}
	case GateSdg:
		return [2][2]complex128{{1, 0}, {0, complex(0, -1)}}
	case GateT:
		return [2][2]complex128{{1, 0}, {0, complex(math.Cos(math.Pi/4), math.Sin(math.Pi/4))}}
	case GateRX:
		return [2][2]complex128{{c, -sI}, {-sI, c}}
	case GateRY:
		sR := complex(math.Sin(theta/2), 0)
		return [2][2]complex128{{c, -sR}, {sR, c}}
	case GateRZ:
		return [2][2]complex128{
			{complex(math.Cos(theta/2), -math.Sin(theta/2)), 0},
			{0, complex(math.Cos(theta/2), math.Sin(theta/2))},
		}
	default:
		panic(fmt.Sprintf("qsim: %v is not a single-qubit matrix gate", k))
	}
}

// applyKind dispatches one gate with its angle already resolved.
func (s *State) applyKind(g *Gate, theta float64) {
	switch g.Kind {
	case GateCNOT:
		s.applyCNOT(g.Qubits[0], g.Qubits[1])
	case GateCZ:
		s.applyCZ(g.Qubits[0], g.Qubits[1])
	case GateSWAP:
		s.applySWAP(g.Qubits[0], g.Qubits[1])
	case GateRZZ:
		s.applyRZZ(g.Qubits[0], g.Qubits[1], theta)
	case GatePauliRot:
		s.applyPauliRot(g.Pauli, theta)
	case GateDiagonal:
		s.applyPhaseTable(g.Diag, theta)
	default:
		s.apply1Q(g.Qubits[0], gateMatrix(g.Kind, theta))
	}
}

// ApplyGate applies one gate with resolved parameters.
func (s *State) ApplyGate(g Gate, params []float64) error {
	theta, err := g.Angle(params)
	if err != nil {
		return err
	}
	if g.Kind == GateDiagonal && (g.Diag == nil || g.Diag.Len() != len(s.amp)) {
		return fmt.Errorf("qsim: diagonal gate table does not match %d-qubit state", s.n)
	}
	s.applyKind(&g, theta)
	return nil
}

// runGates applies every gate of a validated circuit. Validate has already
// checked parameter arity and finiteness, so angle resolution cannot fail
// and the per-gate error path is skipped entirely.
func (s *State) runGates(c *Circuit, params []float64) {
	for i := range c.gates {
		g := &c.gates[i]
		s.applyKind(g, g.resolveAngle(params))
	}
}

// Run executes a circuit from |0...0> and returns the final state.
func Run(c *Circuit, params []float64) (*State, error) {
	if err := c.Validate(params); err != nil {
		return nil, err
	}
	s := NewState(c.N())
	s.runGates(c, params)
	return s, nil
}

// RunInto executes a circuit from |0...0> into dst, reusing its amplitude
// buffer — the zero-allocation path batch evaluators re-run circuits
// through. dst keeps its worker setting, so large states can shard their
// gate kernels across goroutines.
func RunInto(dst *State, c *Circuit, params []float64) error {
	if dst.n != c.N() {
		return fmt.Errorf("qsim: %d-qubit circuit into %d-qubit state", c.N(), dst.n)
	}
	if err := c.Validate(params); err != nil {
		return err
	}
	dst.Reset()
	dst.runGates(c, params)
	return nil
}

// Probabilities returns |amp|^2 for every basis state.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.amp))
	for i, a := range s.amp {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// ExpectationPauli computes <psi|P|psi> for a single Pauli string. The
// off-diagonal case walks each (b, b^x) pair once, accumulating both
// cross terms, so it does half the index visits of the naive full scan.
func (s *State) ExpectationPauli(p pauli.String) (float64, error) {
	if p.N() != s.n {
		return 0, fmt.Errorf("qsim: %d-qubit observable on %d-qubit state", p.N(), s.n)
	}
	x := p.XMask()
	z := p.ZMask()
	iPow := iPower(bits.OnesCount64(x & z))
	var acc complex128
	if x == 0 {
		// Diagonal string: <psi|P|psi> = sum_b |psi[b]|^2 (+-1).
		for b := range s.amp {
			cb := iPow * signC(uint64(b)&z)
			acc += complexConj(s.amp[b]) * cb * s.amp[b]
		}
		return real(acc), nil
	}
	xi := int(x)
	hm := 1<<(63-bits.LeadingZeros64(x)) - 1
	half := len(s.amp) >> 1
	for k := 0; k < half; k++ {
		b := (k&^hm)<<1 | k&hm
		b2 := b ^ xi
		// <psi|P|psi> = sum_b conj(psi[b^x]) c(b) psi[b]; the pair (b, b^x)
		// contributes both cross terms, collected in one visit.
		cb := iPow * signC(uint64(b)&z)
		cb2 := iPow * signC(uint64(b2)&z)
		a, a2 := s.amp[b], s.amp[b2]
		acc += complexConj(a2)*cb*a + complexConj(a)*cb2*a2
	}
	return real(acc), nil
}

func complexConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// Expectation computes <psi|H|psi> for a Pauli-sum Hamiltonian, one term at
// a time. Diagonal Hamiltonians evaluated repeatedly on re-used states
// should precompute an energy table and call ExpectationDiagonal instead —
// one fused pass for the whole Hamiltonian instead of one pass per term.
func (s *State) Expectation(h *pauli.Hamiltonian) (float64, error) {
	if h.N() != s.n {
		return 0, fmt.Errorf("qsim: %d-qubit Hamiltonian on %d-qubit state", h.N(), s.n)
	}
	var total float64
	for _, t := range h.Terms() {
		e, err := s.ExpectationPauli(t.P)
		if err != nil {
			return 0, err
		}
		total += t.Coeff * e
	}
	return total, nil
}

// ExpectationDiagonal computes <psi|H|psi> for a diagonal Hamiltonian from
// its precomputed energy table (table[b] = <b|H|b>, see
// pauli.Hamiltonian.DiagonalTable): a single fused |amp|^2 * E pass,
// independent of the term count. The sum runs serially in ascending index
// order, so the value is reproducible for every worker setting.
func (s *State) ExpectationDiagonal(table []float64) (float64, error) {
	if len(table) != len(s.amp) {
		return 0, fmt.Errorf("qsim: energy table length %d for %d-qubit state", len(table), s.n)
	}
	var acc float64
	for b, a := range s.amp {
		acc += (real(a)*real(a) + imag(a)*imag(a)) * table[b]
	}
	return acc, nil
}

// Sample draws shots basis-state measurements and returns the observed
// bitstring counts. Repeated draws from the same state should build a
// Sampler once instead — Sample rebuilds the cumulative table every call.
func (s *State) Sample(shots int, rng *rand.Rand) map[uint64]int {
	return s.Sampler().Sample(shots, rng)
}

// SampledExpectation estimates <H> for a diagonal Hamiltonian from a finite
// number of measurement shots, reproducing hardware-style shot noise.
func (s *State) SampledExpectation(h *pauli.Hamiltonian, shots int, rng *rand.Rand) (float64, error) {
	if !h.IsDiagonal() {
		return 0, fmt.Errorf("qsim: sampled expectation requires a diagonal Hamiltonian")
	}
	if shots <= 0 {
		return 0, fmt.Errorf("qsim: shots must be positive, got %d", shots)
	}
	counts := s.Sample(shots, rng)
	var total float64
	for b, c := range counts {
		v, err := h.EvalBitstring(b)
		if err != nil {
			return 0, err
		}
		total += v * float64(c)
	}
	return total / float64(shots), nil
}

// Fidelity returns |<a|b>|^2, the state overlap used to compare noisy
// against ideal evolutions.
func Fidelity(a, b *State) (float64, error) {
	if a.n != b.n {
		return 0, fmt.Errorf("qsim: fidelity of %d- and %d-qubit states", a.n, b.n)
	}
	var ip complex128
	for i := range a.amp {
		ip += complexConj(a.amp[i]) * b.amp[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip), nil
}
