package qsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/pauli"
)

// State is a pure quantum state on n qubits: 2^n complex amplitudes with
// qubit q addressed by bit q of the basis index.
type State struct {
	n   int
	amp []complex128
}

// NewState prepares |0...0> on n qubits.
func NewState(n int) *State {
	if n <= 0 || n > 30 {
		panic(fmt.Sprintf("qsim: unsupported qubit count %d", n))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// N reports the qubit count.
func (s *State) N() int { return s.n }

// Amplitudes returns the raw amplitude slice (do not mutate).
func (s *State) Amplitudes() []complex128 { return s.amp }

// Norm returns the 2-norm of the state (1 for any unitary evolution).
func (s *State) Norm() float64 {
	var t float64
	for _, a := range s.amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

// Reset returns the state to |0...0>.
func (s *State) Reset() {
	for i := range s.amp {
		s.amp[i] = 0
	}
	s.amp[0] = 1
}

// apply1Q applies the 2x2 matrix m to qubit q.
func (s *State) apply1Q(q int, m [2][2]complex128) {
	bit := 1 << uint(q)
	dim := len(s.amp)
	for base := 0; base < dim; base += bit << 1 {
		for i := base; i < base+bit; i++ {
			a0 := s.amp[i]
			a1 := s.amp[i|bit]
			s.amp[i] = m[0][0]*a0 + m[0][1]*a1
			s.amp[i|bit] = m[1][0]*a0 + m[1][1]*a1
		}
	}
}

func (s *State) applyCNOT(ctl, tgt int) {
	cb := 1 << uint(ctl)
	tb := 1 << uint(tgt)
	for i := range s.amp {
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

func (s *State) applyCZ(a, b int) {
	ab := 1 << uint(a)
	bb := 1 << uint(b)
	for i := range s.amp {
		if i&ab != 0 && i&bb != 0 {
			s.amp[i] = -s.amp[i]
		}
	}
}

func (s *State) applySWAP(a, b int) {
	ab := 1 << uint(a)
	bb := 1 << uint(b)
	for i := range s.amp {
		if i&ab != 0 && i&bb == 0 {
			j := i&^ab | bb
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// applyRZZ applies exp(-i theta/2 Z_a Z_b), a diagonal phase.
func (s *State) applyRZZ(a, b int, theta float64) {
	ab := 1 << uint(a)
	bb := 1 << uint(b)
	pPlus := complex(math.Cos(theta/2), -math.Sin(theta/2)) // parity even
	pMinus := complex(math.Cos(theta/2), math.Sin(theta/2)) // parity odd
	for i := range s.amp {
		even := (i&ab != 0) == (i&bb != 0)
		if even {
			s.amp[i] *= pPlus
		} else {
			s.amp[i] *= pMinus
		}
	}
}

// applyPauliRot applies exp(-i theta/2 P) = cos(theta/2) I - i sin(theta/2) P.
func (s *State) applyPauliRot(p pauli.String, theta float64) {
	x := p.XMask()
	z := p.ZMask()
	nY := 0
	for q := 0; q < p.N(); q++ {
		if p.At(q) == pauli.Y {
			nY++
		}
	}
	cosT := complex(math.Cos(theta/2), 0)
	minusISin := complex(0, -math.Sin(theta/2))
	iPow := iPower(nY)
	if x == 0 {
		// Diagonal: amp[b] *= cos - i sin * (-1)^{parity(b&z)}.
		for b := range s.amp {
			sign := complex(1, 0)
			if parity(uint64(b) & z) {
				sign = -1
			}
			s.amp[b] *= cosT + minusISin*iPow*sign
		}
		return
	}
	xi := int(x)
	for b := range s.amp {
		b2 := b ^ xi
		if b > b2 {
			continue // each pair is processed once, at its smaller index
		}
		// c(b) carries the phase of P|b> = c(b)|b^x>.
		cb := iPow * signC(uint64(b)&z)
		cb2 := iPow * signC(uint64(b2)&z)
		a, a2 := s.amp[b], s.amp[b2]
		// (P psi)[b] = c(b^x) psi[b^x]; new = cos*psi - i sin * P psi.
		s.amp[b] = cosT*a + minusISin*cb2*a2
		s.amp[b2] = cosT*a2 + minusISin*cb*a
	}
}

func signC(masked uint64) complex128 {
	if parity(masked) {
		return -1
	}
	return 1
}

func iPower(k int) complex128 {
	switch k % 4 {
	case 0:
		return 1
	case 1:
		return complex(0, 1)
	case 2:
		return -1
	default:
		return complex(0, -1)
	}
}

func parity(x uint64) bool {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x&1 == 1
}

// gateMatrix returns the 2x2 matrix of a single-qubit gate kind.
func gateMatrix(k Kind, theta float64) [2][2]complex128 {
	inv := complex(1/math.Sqrt2, 0)
	c := complex(math.Cos(theta/2), 0)
	sI := complex(0, math.Sin(theta/2))
	switch k {
	case GateH:
		return [2][2]complex128{{inv, inv}, {inv, -inv}}
	case GateX:
		return [2][2]complex128{{0, 1}, {1, 0}}
	case GateY:
		return [2][2]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}}
	case GateZ:
		return [2][2]complex128{{1, 0}, {0, -1}}
	case GateS:
		return [2][2]complex128{{1, 0}, {0, complex(0, 1)}}
	case GateSdg:
		return [2][2]complex128{{1, 0}, {0, complex(0, -1)}}
	case GateT:
		return [2][2]complex128{{1, 0}, {0, complex(math.Cos(math.Pi/4), math.Sin(math.Pi/4))}}
	case GateRX:
		return [2][2]complex128{{c, -sI}, {-sI, c}}
	case GateRY:
		sR := complex(math.Sin(theta/2), 0)
		return [2][2]complex128{{c, -sR}, {sR, c}}
	case GateRZ:
		return [2][2]complex128{
			{complex(math.Cos(theta/2), -math.Sin(theta/2)), 0},
			{0, complex(math.Cos(theta/2), math.Sin(theta/2))},
		}
	default:
		panic(fmt.Sprintf("qsim: %v is not a single-qubit matrix gate", k))
	}
}

// ApplyGate applies one gate with resolved parameters.
func (s *State) ApplyGate(g Gate, params []float64) error {
	theta, err := g.Angle(params)
	if err != nil {
		return err
	}
	switch g.Kind {
	case GateCNOT:
		s.applyCNOT(g.Qubits[0], g.Qubits[1])
	case GateCZ:
		s.applyCZ(g.Qubits[0], g.Qubits[1])
	case GateSWAP:
		s.applySWAP(g.Qubits[0], g.Qubits[1])
	case GateRZZ:
		s.applyRZZ(g.Qubits[0], g.Qubits[1], theta)
	case GatePauliRot:
		s.applyPauliRot(g.Pauli, theta)
	default:
		s.apply1Q(g.Qubits[0], gateMatrix(g.Kind, theta))
	}
	return nil
}

// Run executes a circuit from |0...0> and returns the final state.
func Run(c *Circuit, params []float64) (*State, error) {
	if err := c.Validate(params); err != nil {
		return nil, err
	}
	s := NewState(c.N())
	for _, g := range c.Gates() {
		if err := s.ApplyGate(g, params); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Probabilities returns |amp|^2 for every basis state.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.amp))
	for i, a := range s.amp {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// ExpectationPauli computes <psi|P|psi> for a single Pauli string.
func (s *State) ExpectationPauli(p pauli.String) (float64, error) {
	if p.N() != s.n {
		return 0, fmt.Errorf("qsim: %d-qubit observable on %d-qubit state", p.N(), s.n)
	}
	x := p.XMask()
	z := p.ZMask()
	nY := 0
	for q := 0; q < p.N(); q++ {
		if p.At(q) == pauli.Y {
			nY++
		}
	}
	iPow := iPower(nY)
	var acc complex128
	xi := int(x)
	for b := range s.amp {
		// <psi|P|psi> = sum_b conj(psi[b^x]) c(b) psi[b].
		cb := iPow * signC(uint64(b)&z)
		acc += complexConj(s.amp[b^xi]) * cb * s.amp[b]
	}
	return real(acc), nil
}

func complexConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// Expectation computes <psi|H|psi> for a Pauli-sum Hamiltonian.
func (s *State) Expectation(h *pauli.Hamiltonian) (float64, error) {
	if h.N() != s.n {
		return 0, fmt.Errorf("qsim: %d-qubit Hamiltonian on %d-qubit state", h.N(), s.n)
	}
	var total float64
	for _, t := range h.Terms() {
		e, err := s.ExpectationPauli(t.P)
		if err != nil {
			return 0, err
		}
		total += t.Coeff * e
	}
	return total, nil
}

// Sample draws shots basis-state measurements and returns the observed
// bitstring counts.
func (s *State) Sample(shots int, rng *rand.Rand) map[uint64]int {
	probs := s.Probabilities()
	cum := make([]float64, len(probs))
	var acc float64
	for i, p := range probs {
		acc += p
		cum[i] = acc
	}
	// Normalize against accumulated float error.
	total := cum[len(cum)-1]
	counts := make(map[uint64]int)
	for i := 0; i < shots; i++ {
		r := rng.Float64() * total
		idx := sort.SearchFloat64s(cum, r)
		if idx >= len(cum) {
			idx = len(cum) - 1
		}
		counts[uint64(idx)]++
	}
	return counts
}

// SampledExpectation estimates <H> for a diagonal Hamiltonian from a finite
// number of measurement shots, reproducing hardware-style shot noise.
func (s *State) SampledExpectation(h *pauli.Hamiltonian, shots int, rng *rand.Rand) (float64, error) {
	if !h.IsDiagonal() {
		return 0, fmt.Errorf("qsim: sampled expectation requires a diagonal Hamiltonian")
	}
	if shots <= 0 {
		return 0, fmt.Errorf("qsim: shots must be positive, got %d", shots)
	}
	counts := s.Sample(shots, rng)
	var total float64
	for b, c := range counts {
		v, err := h.EvalBitstring(b)
		if err != nil {
			return 0, err
		}
		total += v * float64(c)
	}
	return total / float64(shots), nil
}

// Fidelity returns |<a|b>|^2, the state overlap used to compare noisy
// against ideal evolutions.
func Fidelity(a, b *State) (float64, error) {
	if a.n != b.n {
		return 0, fmt.Errorf("qsim: fidelity of %d- and %d-qubit states", a.n, b.n)
	}
	var ip complex128
	for i := range a.amp {
		ip += complexConj(a.amp[i]) * b.amp[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip), nil
}
