// Package shard provides the one deterministic range-sharding primitive
// shared by the execution engine (exec.ForRange), the simulators' gate
// kernels (qsim), and the backend batch paths. It sits at the bottom of the
// dependency graph — importing only sync — so every layer splits work with
// identical boundaries: a future change to the split or the scheduling is a
// change for all of them at once.
package shard

import "sync"

// ForRange splits the index range [0, n) into at most workers contiguous
// shards and invokes fn(lo, hi) once per shard, concurrently when more than
// one shard results. Shard boundaries are the fixed i*n/w split, so a given
// (workers, n) pair always yields the same shards, and fn must only write
// state that is disjoint across shards (e.g. dst[lo:hi]), making the
// combined result independent of scheduling order.
//
// workers <= 1, n <= 1, or a single resulting shard runs fn inline on the
// calling goroutine with no synchronization.
func ForRange(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
