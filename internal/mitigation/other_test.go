package mitigation

import (
	"math"
	"testing"

	"repro/internal/qsim"
)

func TestReadoutMitigatorInvertsChannel(t *testing.T) {
	n := 3
	rm, err := NewReadoutMitigator(n, 0.04, 0.09)
	if err != nil {
		t.Fatal(err)
	}
	// A known distribution pushed through the confusion channel then
	// mitigated should come back.
	truth := []float64{0.5, 0, 0, 0.25, 0, 0.25, 0, 0}
	noisy, err := qsim.ApplyReadoutError(truth, n, 0.04, 0.09)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := rm.Apply(noisy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(recovered[i]-truth[i]) > 1e-9 {
			t.Fatalf("recovered[%d]=%g want %g", i, recovered[i], truth[i])
		}
	}
}

func TestReadoutMitigatorClipsNegatives(t *testing.T) {
	rm, err := NewReadoutMitigator(1, 0.2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// A distribution inconsistent with the channel produces
	// quasi-probabilities; the result must still be a distribution.
	out, err := rm.Apply([]float64{0.02, 0.98})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range out {
		if p < 0 {
			t.Fatalf("negative probability %g", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum %g", sum)
	}
}

func TestReadoutMitigatorValidation(t *testing.T) {
	if _, err := NewReadoutMitigator(0, 0.1, 0.1); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewReadoutMitigator(2, 0.6, 0.5); err == nil {
		t.Error("want error for non-invertible confusion")
	}
	rm, _ := NewReadoutMitigator(2, 0.05, 0.05)
	if _, err := rm.Apply([]float64{1, 0}); err == nil {
		t.Error("want error for wrong distribution size")
	}
}

func TestMitigateExpectation(t *testing.T) {
	rm, _ := NewReadoutMitigator(4, 0.05, 0.05)
	raw := 0.81 // a weight-2 observable damped by 0.9 per qubit
	if got := rm.MitigateExpectation(raw, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("mitigated %g want 1", got)
	}
	if got := rm.MitigateExpectation(raw, 0); got != raw {
		t.Fatalf("weight-0 should be unchanged, got %g", got)
	}
}

func TestInsertDD(t *testing.T) {
	// Circuit touching qubits 0 and 1 of a 4-qubit register: qubits 2,3
	// idle, so two echo pairs are inserted.
	c := qsim.NewCircuit(4).H(0).CNOT(0, 1)
	padded, pairs := InsertDD(c)
	if pairs != 2 {
		t.Fatalf("pairs %d want 2", pairs)
	}
	if padded.Len() != c.Len()+4 {
		t.Fatalf("padded len %d", padded.Len())
	}
	// The padded circuit must implement the same state.
	s0, err := qsim.Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := qsim.Run(padded, nil)
	if err != nil {
		t.Fatal(err)
	}
	p0 := s0.Probabilities()
	p1 := s1.Probabilities()
	for i := range p0 {
		if math.Abs(p0[i]-p1[i]) > 1e-12 {
			t.Fatalf("DD changed the circuit at %d", i)
		}
	}
	// All qubits busy: nothing inserted.
	busy := qsim.NewCircuit(2).H(0).H(1)
	_, pairs = InsertDD(busy)
	if pairs != 0 {
		t.Fatalf("pairs %d want 0", pairs)
	}
}
