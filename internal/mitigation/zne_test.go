package mitigation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ansatz"
	"repro/internal/backend"
	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/problem"
	"repro/internal/qsim"
)

// scalableDensity adapts a (problem, ansatz, profile) to ScalableEvaluator
// by scaling the profile.
type scalableDensity struct {
	p    *problem.Problem
	a    *ansatz.Ansatz
	prof noise.Profile
}

func (s *scalableDensity) NumParams() int { return s.a.NumParams }

func (s *scalableDensity) EvaluateScaled(params []float64, c float64) (float64, error) {
	ev, err := backend.NewDensity(s.p, s.a, s.prof.Scaled(c))
	if err != nil {
		return 0, err
	}
	return ev.Evaluate(params)
}

func TestExtrapolateRichardsonExactForQuadratic(t *testing.T) {
	// y(x) = 2 - 0.3x + 0.05x^2: Richardson through 3 points recovers
	// y(0) exactly.
	f := func(x float64) float64 { return 2 - 0.3*x + 0.05*x*x }
	xs := []float64{1, 2, 3}
	ys := []float64{f(1), f(2), f(3)}
	got, err := Extrapolate(xs, ys, Richardson)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("Richardson %g want 2", got)
	}
}

func TestExtrapolateLinear(t *testing.T) {
	// Exact line: intercept recovered.
	xs := []float64{1, 3}
	ys := []float64{1.7, 1.1} // y = 2 - 0.3x
	got, err := Extrapolate(xs, ys, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("Linear %g want 2", got)
	}
	if _, err := Extrapolate(xs, ys[:1], Linear); err == nil {
		t.Error("want error for mismatched input")
	}
}

func TestRichardsonWeightsSum(t *testing.T) {
	// Lagrange-at-zero weights for {1,2,3} are {3,-3,1}.
	got := lagrangeAtZero([]float64{1, 2, 3}, []float64{1, 0, 0})
	if math.Abs(got-3) > 1e-12 {
		t.Fatalf("w1=%g want 3", got)
	}
	got = lagrangeAtZero([]float64{1, 2, 3}, []float64{0, 1, 0})
	if math.Abs(got+3) > 1e-12 {
		t.Fatalf("w2=%g want -3", got)
	}
	got = lagrangeAtZero([]float64{1, 2, 3}, []float64{0, 0, 1})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("w3=%g want 1", got)
	}
}

func TestVarianceAmplification(t *testing.T) {
	rich, err := VarianceAmplification([]float64{1, 2, 3}, Richardson)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rich-19) > 1e-9 {
		t.Fatalf("Richardson amplification %g want 19", rich)
	}
	lin, err := VarianceAmplification([]float64{1, 3}, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lin-2.5) > 1e-9 {
		t.Fatalf("Linear amplification %g want 2.5", lin)
	}
	if rich <= lin {
		t.Fatal("Richardson must amplify more than linear — the Figure 9 jaggedness")
	}
}

func TestZNERecoversIdealExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	p, err := problem.Random3RegularMaxCut(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ansatz.QAOA(p.Graph, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof := noise.Profile{Name: "mild", P1: 0.001, P2: 0.004}
	sc := &scalableDensity{p: p, a: a, prof: prof}

	sv, _ := backend.NewStateVector(p, a)
	params := []float64{0.35, -0.55}
	ideal, _ := sv.Evaluate(params)
	noisy, err := sc.EvaluateScaled(params, 1)
	if err != nil {
		t.Fatal(err)
	}

	zne, err := NewZNE(sc, []float64{1, 2, 3}, Richardson)
	if err != nil {
		t.Fatal(err)
	}
	mitigated, err := zne.Evaluate(params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mitigated-ideal) >= math.Abs(noisy-ideal)/3 {
		t.Fatalf("ZNE barely helped: ideal %g noisy %g mitigated %g", ideal, noisy, mitigated)
	}
	if zne.CircuitMultiplier() != 3 {
		t.Fatalf("multiplier %d", zne.CircuitMultiplier())
	}

	lin, err := NewZNE(sc, []float64{1, 3}, Linear)
	if err != nil {
		t.Fatal(err)
	}
	linMit, err := lin.Evaluate(params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(linMit-ideal) >= math.Abs(noisy-ideal) {
		t.Fatalf("linear ZNE did not improve: ideal %g noisy %g mitigated %g", ideal, noisy, linMit)
	}
}

func TestNewZNEValidation(t *testing.T) {
	sc := &scalableDensity{}
	if _, err := NewZNE(sc, []float64{1}, Richardson); err == nil {
		t.Error("want error for single scale")
	}
	if _, err := NewZNE(sc, []float64{1, -2}, Richardson); err == nil {
		t.Error("want error for negative scale")
	}
	if _, err := NewZNE(sc, []float64{1, 1}, Richardson); err == nil {
		t.Error("want error for duplicate scales")
	}
	if _, err := NewZNE(sc, []float64{1, 2, 3, 4, 5, 6, 7}, Richardson); err == nil {
		t.Error("want error for unstable Richardson order")
	}
}

func TestExtrapolationString(t *testing.T) {
	if Richardson.String() != "richardson" || Linear.String() != "linear" {
		t.Error("names wrong")
	}
	if Extrapolation(9).String() == "" {
		t.Error("unknown model should stringify")
	}
}

func TestFoldGatesPreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	p, _ := problem.Random3RegularMaxCut(4, rng)
	a, _ := ansatz.QAOA(p.Graph, 1)
	params := []float64{0.3, -0.7}
	s0, err := qsim.Run(a.Circuit, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []int{1, 3, 5} {
		folded, err := FoldGates(a.Circuit, scale)
		if err != nil {
			t.Fatal(err)
		}
		if scale == 1 && folded.Len() != a.Circuit.Len() {
			t.Fatal("scale 1 should not change the circuit")
		}
		if scale > 1 && folded.Len() != scale*a.Circuit.Len() {
			t.Fatalf("scale %d: %d gates want %d", scale, folded.Len(), scale*a.Circuit.Len())
		}
		s1, err := qsim.Run(folded, params)
		if err != nil {
			t.Fatal(err)
		}
		e0, _ := s0.Expectation(p.Hamiltonian)
		e1, _ := s1.Expectation(p.Hamiltonian)
		if math.Abs(e0-e1) > 1e-9 {
			t.Fatalf("scale %d changed expectation: %g vs %g", scale, e0, e1)
		}
	}
	if _, err := FoldGates(a.Circuit, 2); err == nil {
		t.Error("want error for even scale")
	}
	if _, err := FoldGates(a.Circuit, 0); err == nil {
		t.Error("want error for zero scale")
	}
}

func TestFoldGatesIncreaseNoiseSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	p, _ := problem.Random3RegularMaxCut(4, rng)
	a, _ := ansatz.QAOA(p.Graph, 1)
	prof := noise.Profile{Name: "m", P1: 0.002, P2: 0.008}
	params := []float64{0.3, -0.7}
	sv, _ := backend.NewStateVector(p, a)
	ideal, _ := sv.Evaluate(params)
	var prevDev float64
	for i, scale := range []int{1, 3} {
		folded, err := FoldGates(a.Circuit, scale)
		if err != nil {
			t.Fatal(err)
		}
		fa := &ansatz.Ansatz{Name: "folded", Circuit: folded, NumParams: a.NumParams}
		dm, err := backend.NewDensity(p, fa, prof)
		if err != nil {
			t.Fatal(err)
		}
		v, err := dm.Evaluate(params)
		if err != nil {
			t.Fatal(err)
		}
		dev := math.Abs(v - ideal)
		if i > 0 && dev <= prevDev {
			t.Fatalf("folding did not increase noise: dev %g <= %g", dev, prevDev)
		}
		prevDev = dev
	}
}

// TestFoldGatesProperty: for random parameterized circuits and any odd
// scale, folding preserves the final state distribution.
func TestFoldGatesProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(144))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.Random3Regular(4, rng)
		if err != nil {
			return false
		}
		a, err := ansatz.QAOA(g, 1+rng.Intn(2))
		if err != nil {
			return false
		}
		params := make([]float64, a.NumParams)
		for i := range params {
			params[i] = rng.NormFloat64()
		}
		folded, err := FoldGates(a.Circuit, 3)
		if err != nil {
			return false
		}
		s0, err := qsim.Run(a.Circuit, params)
		if err != nil {
			return false
		}
		s1, err := qsim.Run(folded, params)
		if err != nil {
			return false
		}
		p0, p1 := s0.Probabilities(), s1.Probabilities()
		for i := range p0 {
			if math.Abs(p0[i]-p1[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
