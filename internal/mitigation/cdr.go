package mitigation

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/backend"
)

// CDR implements Clifford Data Regression (Czarnik et al., 2021), the third
// mitigation family the paper surveys. The method trains a linear map from
// noisy to exact expectation values on circuits that are classically
// simulable — parameter vectors snapped to Clifford angles (multiples of
// pi/2) — and applies the map to the target circuit's noisy value.
type CDR struct {
	name  string
	noisy backend.Evaluator
	slope float64
	icept float64
	r2    float64
	pairs int
}

// CDROptions configures training.
type CDROptions struct {
	// TrainingCircuits is the number of near-Clifford training points
	// (default 16).
	TrainingCircuits int
	// Seed drives training-point selection.
	Seed int64
	// AngleGrid is the near-Clifford angle spacing (default pi/4). Exact
	// Clifford points (multiples of pi/2) sit where QAOA landscapes are
	// identically flat, giving a degenerate training set, so the default
	// follows the standard near-Clifford practice of admitting one
	// T-gate-like angle per rotation.
	AngleGrid float64
}

func (o *CDROptions) fill() {
	if o.TrainingCircuits == 0 {
		o.TrainingCircuits = 16
	}
	if o.AngleGrid == 0 {
		o.AngleGrid = math.Pi / 4
	}
}

// NewCDR trains a CDR mitigator. exact evaluates training circuits without
// noise (classically cheap at Clifford points); noisy is the device. Both
// must share parameter arity.
func NewCDR(exact, noisy backend.Evaluator, opt CDROptions) (*CDR, error) {
	if exact.NumParams() != noisy.NumParams() {
		return nil, fmt.Errorf("mitigation: exact (%d params) and noisy (%d params) evaluators disagree",
			exact.NumParams(), noisy.NumParams())
	}
	opt.fill()
	if opt.TrainingCircuits < 2 {
		return nil, fmt.Errorf("mitigation: CDR needs >= 2 training circuits, got %d", opt.TrainingCircuits)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	n := exact.NumParams()
	var xs, ys []float64
	for k := 0; k < opt.TrainingCircuits; k++ {
		params := make([]float64, n)
		for i := range params {
			// Clifford points in [-pi, pi].
			params[i] = float64(rng.Intn(5)-2) * opt.AngleGrid
		}
		yNoisy, err := noisy.Evaluate(params)
		if err != nil {
			return nil, fmt.Errorf("mitigation: CDR training (noisy): %w", err)
		}
		yExact, err := exact.Evaluate(params)
		if err != nil {
			return nil, fmt.Errorf("mitigation: CDR training (exact): %w", err)
		}
		xs = append(xs, yNoisy)
		ys = append(ys, yExact)
	}
	slope, icept := leastSquaresLine(xs, ys)
	if slope == 0 {
		// Degenerate training set (constant noisy values): fall back to
		// the identity map rather than collapsing everything to a point.
		slope = 1
		icept = 0
	}
	// Fit quality.
	var meanY float64
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + icept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return &CDR{
		name:  fmt.Sprintf("cdr(%s)", noisy.Name()),
		noisy: noisy,
		slope: slope,
		icept: icept,
		r2:    r2,
		pairs: opt.TrainingCircuits,
	}, nil
}

// Name implements backend.Evaluator.
func (c *CDR) Name() string { return c.name }

// NumParams implements backend.Evaluator.
func (c *CDR) NumParams() int { return c.noisy.NumParams() }

// R2 reports the training fit quality.
func (c *CDR) R2() float64 { return c.r2 }

// Model returns the fitted (slope, intercept).
func (c *CDR) Model() (slope, intercept float64) { return c.slope, c.icept }

// Evaluate implements backend.Evaluator: run the noisy device and apply the
// learned correction.
func (c *CDR) Evaluate(params []float64) (float64, error) {
	v, err := c.noisy.Evaluate(params)
	if err != nil {
		return 0, err
	}
	return c.slope*v + c.icept, nil
}

var _ backend.Evaluator = (*CDR)(nil)
