// Package mitigation implements the noise-mitigation methods of the paper's
// Section 6: Zero-Noise Extrapolation with configurable noise scaling and
// extrapolation models (Richardson, linear), measurement readout mitigation,
// and a dynamical-decoupling circuit pass. OSCAR reconstructs mitigated
// landscapes to let users compare configurations without the heavy extra
// circuit cost mitigation normally incurs.
package mitigation

import (
	"context"
	"fmt"
	"math"

	"repro/internal/backend"
	"repro/internal/qsim"
)

// Extrapolation selects the ZNE extrapolation model.
type Extrapolation int

const (
	// Richardson fits an exact polynomial through all scale points and
	// evaluates it at zero noise. With scales {1,2,3} it is the paper's
	// "Richardson" configuration: accurate in expectation but with
	// heavily amplified shot noise (the "salt-like" landscapes of
	// Figure 9).
	Richardson Extrapolation = iota
	// Linear fits a least-squares line through the scale points. With
	// scales {1,3} it is the paper's "linear" configuration: smoother but
	// biased.
	Linear
)

// String names the model.
func (e Extrapolation) String() string {
	switch e {
	case Richardson:
		return "richardson"
	case Linear:
		return "linear"
	default:
		return fmt.Sprintf("extrapolation(%d)", int(e))
	}
}

// ScalableEvaluator evaluates a cost at a scaled noise level. Scale 1 is the
// device's native noise; scale 0 would be noiseless. On hardware, scaling is
// implemented by gate folding; the simulator backends scale channel
// probabilities, which is equivalent for weak depolarizing noise.
type ScalableEvaluator interface {
	// EvaluateScaled returns the cost at params with noise scaled by c.
	EvaluateScaled(params []float64, c float64) (float64, error)
	// NumParams reports the parameter arity.
	NumParams() int
}

// ZNE is an Evaluator that performs zero-noise extrapolation around a
// scalable evaluator: it runs the circuit at each scale factor and
// extrapolates the results to zero noise.
type ZNE struct {
	inner  ScalableEvaluator
	scales []float64
	model  Extrapolation
	name   string
}

// NewZNE builds a ZNE evaluator. scales must be >= 2 distinct positive
// factors; the paper uses {1,2,3} with Richardson and {1,3} with Linear.
func NewZNE(inner ScalableEvaluator, scales []float64, model Extrapolation) (*ZNE, error) {
	if len(scales) < 2 {
		return nil, fmt.Errorf("mitigation: need >= 2 scale factors, got %d", len(scales))
	}
	seen := map[float64]bool{}
	for _, s := range scales {
		if s <= 0 {
			return nil, fmt.Errorf("mitigation: scale factor %g must be positive", s)
		}
		if seen[s] {
			return nil, fmt.Errorf("mitigation: duplicate scale factor %g", s)
		}
		seen[s] = true
	}
	if model == Richardson && len(scales) > 6 {
		return nil, fmt.Errorf("mitigation: Richardson with %d nodes is numerically unstable", len(scales))
	}
	return &ZNE{
		inner:  inner,
		scales: append([]float64(nil), scales...),
		model:  model,
		name:   fmt.Sprintf("zne-%s%v", model, scales),
	}, nil
}

// Name implements backend.Evaluator.
func (z *ZNE) Name() string { return z.name }

// NumParams implements backend.Evaluator.
func (z *ZNE) NumParams() int { return z.inner.NumParams() }

// CircuitMultiplier reports how many circuit executions one mitigated
// expectation costs (the paper's 10x-100x overhead discussion).
func (z *ZNE) CircuitMultiplier() int { return len(z.scales) }

// ScalableBatchEvaluator is a ScalableEvaluator that can execute a whole
// (point x scale) sweep in one submission. The returned slice is point-major:
// value[i*len(scales)+j] is point i at scale j.
type ScalableBatchEvaluator interface {
	ScalableEvaluator
	EvaluateScaledBatch(ctx context.Context, params [][]float64, scales []float64) ([]float64, error)
}

// Evaluate implements backend.Evaluator: measure at every scale, then
// extrapolate to zero.
func (z *ZNE) Evaluate(params []float64) (float64, error) {
	ys := make([]float64, len(z.scales))
	for i, s := range z.scales {
		v, err := z.inner.EvaluateScaled(params, s)
		if err != nil {
			return 0, err
		}
		ys[i] = v
	}
	return Extrapolate(z.scales, ys, z.model)
}

// EvaluateBatch implements exec.BatchEvaluator: the full fold-factor sweep —
// every point at every noise scale — is submitted as one batch when the
// inner evaluator supports it, so a landscape of mitigated expectations
// costs one queue round-trip instead of len(params)*len(scales).
func (z *ZNE) EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error) {
	k := len(z.scales)
	var ys []float64
	if sb, ok := z.inner.(ScalableBatchEvaluator); ok {
		vs, err := sb.EvaluateScaledBatch(ctx, params, z.scales)
		if err != nil {
			return nil, err
		}
		if len(vs) != len(params)*k {
			return nil, fmt.Errorf("mitigation: scaled batch returned %d values, want %d", len(vs), len(params)*k)
		}
		ys = vs
	} else {
		ys = make([]float64, len(params)*k)
		for i, p := range params {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for j, s := range z.scales {
				v, err := z.inner.EvaluateScaled(p, s)
				if err != nil {
					return nil, err
				}
				ys[i*k+j] = v
			}
		}
	}
	out := make([]float64, len(params))
	for i := range params {
		v, err := Extrapolate(z.scales, ys[i*k:(i+1)*k], z.model)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Extrapolate combines measurements ys at noise scales xs into a zero-noise
// estimate using the given model.
func Extrapolate(xs, ys []float64, model Extrapolation) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, fmt.Errorf("mitigation: bad extrapolation input (%d xs, %d ys)", len(xs), len(ys))
	}
	switch model {
	case Richardson:
		return lagrangeAtZero(xs, ys), nil
	case Linear:
		slope, icept := leastSquaresLine(xs, ys)
		_ = slope
		return icept, nil
	default:
		return 0, fmt.Errorf("mitigation: unknown model %v", model)
	}
}

// lagrangeAtZero evaluates the interpolating polynomial at x=0, the
// Richardson extrapolation. The weights for scales {1,2,3} are {3,-3,1},
// which is why Richardson amplifies shot variance by 9+9+1 = 19x.
func lagrangeAtZero(xs, ys []float64) float64 {
	var total float64
	for i := range xs {
		w := 1.0
		for j := range xs {
			if i == j {
				continue
			}
			w *= -xs[j] / (xs[i] - xs[j])
		}
		total += w * ys[i]
	}
	return total
}

// leastSquaresLine fits y = slope*x + icept.
func leastSquaresLine(xs, ys []float64) (slope, icept float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	icept = (sy - slope*sx) / n
	return slope, icept
}

// VarianceAmplification returns the factor by which extrapolation amplifies
// independent per-scale shot variance: sum of squared extrapolation weights.
// Richardson{1,2,3} gives 19, Linear{1,3} gives 2.5 — the quantitative root
// of Figure 9's jaggedness difference.
func VarianceAmplification(xs []float64, model Extrapolation) (float64, error) {
	switch model {
	case Richardson:
		var s float64
		for i := range xs {
			w := 1.0
			for j := range xs {
				if i == j {
					continue
				}
				w *= -xs[j] / (xs[i] - xs[j])
			}
			s += w * w
		}
		return s, nil
	case Linear:
		// Weights of the intercept estimator.
		n := float64(len(xs))
		var sx, sxx float64
		for _, x := range xs {
			sx += x
			sxx += x * x
		}
		den := n*sxx - sx*sx
		if den == 0 {
			return 0, fmt.Errorf("mitigation: degenerate scales")
		}
		var s float64
		for _, x := range xs {
			w := (sxx - sx*x) / den
			s += w * w
		}
		return s, nil
	default:
		return 0, fmt.Errorf("mitigation: unknown model %v", model)
	}
}

var _ backend.Evaluator = (*ZNE)(nil)

// FoldGates implements the hardware-style noise scaling used when channel
// probabilities cannot be adjusted directly: every gate G is replaced by
// G (G† G)^k so the circuit performs the same unitary with (2k+1)x the
// physical gate count. Only odd integer scale factors are representable;
// scale must be 1, 3, 5, ...
func FoldGates(c *qsim.Circuit, scale int) (*qsim.Circuit, error) {
	if scale < 1 || scale%2 == 0 {
		return nil, fmt.Errorf("mitigation: fold scale must be odd and >= 1, got %d", scale)
	}
	out := qsim.NewCircuit(c.N())
	k := (scale - 1) / 2
	for _, g := range c.Gates() {
		appendGate(out, g)
		for fold := 0; fold < k; fold++ {
			appendInverse(out, g)
			appendGate(out, g)
		}
	}
	return out, nil
}

func appendGate(c *qsim.Circuit, g qsim.Gate) {
	switch g.Kind {
	case qsim.GateH:
		c.H(g.Qubits[0])
	case qsim.GateX:
		c.X(g.Qubits[0])
	case qsim.GateY:
		c.Y(g.Qubits[0])
	case qsim.GateZ:
		c.Z(g.Qubits[0])
	case qsim.GateS:
		c.S(g.Qubits[0])
	case qsim.GateSdg:
		c.Sdg(g.Qubits[0])
	case qsim.GateT:
		c.T(g.Qubits[0])
	case qsim.GateRX:
		appendRot(c, g, qsim.GateRX, 1)
	case qsim.GateRY:
		appendRot(c, g, qsim.GateRY, 1)
	case qsim.GateRZ:
		appendRot(c, g, qsim.GateRZ, 1)
	case qsim.GateCNOT:
		c.CNOT(g.Qubits[0], g.Qubits[1])
	case qsim.GateCZ:
		c.CZ(g.Qubits[0], g.Qubits[1])
	case qsim.GateSWAP:
		c.SWAP(g.Qubits[0], g.Qubits[1])
	case qsim.GateRZZ:
		if g.Param >= 0 {
			c.RZZP(g.Qubits[0], g.Qubits[1], g.Param, g.Scale)
		} else {
			c.RZZ(g.Qubits[0], g.Qubits[1], g.Theta)
		}
	case qsim.GatePauliRot:
		if g.Param >= 0 {
			c.PauliRotP(g.Pauli, g.Param, g.Scale)
		} else {
			c.PauliRot(g.Pauli, g.Theta)
		}
	case qsim.GateDiagonal:
		if g.Param >= 0 {
			c.DiagonalP(g.Diag, g.Param, g.Scale)
		} else {
			c.Diagonal(g.Diag, g.Theta)
		}
	}
}

func appendRot(c *qsim.Circuit, g qsim.Gate, kind qsim.Kind, sign float64) {
	add := func(q int, param int, scale, theta float64) {
		switch kind {
		case qsim.GateRX:
			if param >= 0 {
				c.RXP(q, param, scale)
			} else {
				c.RX(q, theta)
			}
		case qsim.GateRY:
			if param >= 0 {
				c.RYP(q, param, scale)
			} else {
				c.RY(q, theta)
			}
		default:
			if param >= 0 {
				c.RZP(q, param, scale)
			} else {
				c.RZ(q, theta)
			}
		}
	}
	add(g.Qubits[0], g.Param, sign*g.Scale, sign*g.Theta)
}

// appendInverse appends the inverse of g.
func appendInverse(c *qsim.Circuit, g qsim.Gate) {
	switch g.Kind {
	case qsim.GateH, qsim.GateX, qsim.GateY, qsim.GateZ, qsim.GateCNOT, qsim.GateCZ, qsim.GateSWAP:
		appendGate(c, g) // self-inverse
	case qsim.GateS:
		c.Sdg(g.Qubits[0])
	case qsim.GateSdg:
		c.S(g.Qubits[0])
	case qsim.GateT:
		c.RZ(g.Qubits[0], -math.Pi/4) // T† up to global phase
	case qsim.GateRX, qsim.GateRY, qsim.GateRZ:
		appendRot(c, g, g.Kind, -1)
	case qsim.GateRZZ:
		if g.Param >= 0 {
			c.RZZP(g.Qubits[0], g.Qubits[1], g.Param, -g.Scale)
		} else {
			c.RZZ(g.Qubits[0], g.Qubits[1], -g.Theta)
		}
	case qsim.GatePauliRot:
		if g.Param >= 0 {
			c.PauliRotP(g.Pauli, g.Param, -g.Scale)
		} else {
			c.PauliRot(g.Pauli, -g.Theta)
		}
	case qsim.GateDiagonal:
		// diag(exp(-i theta t[b])) inverts by negating the angle.
		if g.Param >= 0 {
			c.DiagonalP(g.Diag, g.Param, -g.Scale)
		} else {
			c.Diagonal(g.Diag, -g.Theta)
		}
	}
}
