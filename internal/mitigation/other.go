package mitigation

import (
	"fmt"

	"repro/internal/qsim"
)

// ReadoutMitigator inverts per-qubit measurement confusion matrices — the
// paper's "shot frugal" Qubit Readout Mitigation: a post-processing step
// that filters measurement errors without extra circuit executions.
type ReadoutMitigator struct {
	n        int
	p01, p10 float64
}

// NewReadoutMitigator builds a mitigator for n qubits with confusion rates
// p01 = P(read 1 | true 0) and p10 = P(read 0 | true 1).
func NewReadoutMitigator(n int, p01, p10 float64) (*ReadoutMitigator, error) {
	if n < 1 {
		return nil, fmt.Errorf("mitigation: invalid qubit count %d", n)
	}
	if p01 < 0 || p10 < 0 || p01+p10 >= 1 {
		return nil, fmt.Errorf("mitigation: confusion matrix p01=%g p10=%g not invertible", p01, p10)
	}
	return &ReadoutMitigator{n: n, p01: p01, p10: p10}, nil
}

// Apply inverts the confusion channel on a measured distribution. The
// inverse can produce small negative quasi-probabilities, which are clipped
// and renormalized (the standard practice).
func (r *ReadoutMitigator) Apply(probs []float64) ([]float64, error) {
	if len(probs) != 1<<uint(r.n) {
		return nil, fmt.Errorf("mitigation: distribution length %d for %d qubits", len(probs), r.n)
	}
	// Per-qubit inverse of [[1-p01, p10], [p01, 1-p10]].
	det := 1 - r.p01 - r.p10
	inv00 := (1 - r.p10) / det
	inv01 := -r.p10 / det
	inv10 := -r.p01 / det
	inv11 := (1 - r.p01) / det

	cur := append([]float64(nil), probs...)
	next := make([]float64, len(probs))
	for q := 0; q < r.n; q++ {
		bit := 1 << uint(q)
		for i := range next {
			next[i] = 0
		}
		for i, p := range cur {
			if p == 0 {
				continue
			}
			if i&bit == 0 {
				next[i] += p * inv00
				next[i|bit] += p * inv10
			} else {
				next[i&^bit] += p * inv01
				next[i] += p * inv11
			}
		}
		cur, next = next, cur
	}
	// Clip negatives and renormalize.
	var sum float64
	for i, p := range cur {
		if p < 0 {
			cur[i] = 0
		}
		sum += cur[i]
	}
	if sum > 0 {
		for i := range cur {
			cur[i] /= sum
		}
	}
	return cur, nil
}

// MitigateExpectation applies Z-basis readout mitigation to a raw diagonal
// expectation: for symmetric confusion the Z damping factor is
// (1 - p01 - p10) per measured qubit, so the inverse rescales each weight-w
// term by (1-p01-p10)^-w. weight is the Pauli weight of the observable.
func (r *ReadoutMitigator) MitigateExpectation(raw float64, weight int) float64 {
	f := 1 - r.p01 - r.p10
	scale := 1.0
	for i := 0; i < weight; i++ {
		scale /= f
	}
	return raw * scale
}

// InsertDD implements the paper's shot-frugal Dynamical Decoupling pass:
// it appends an X-X echo pair on every idle qubit (a qubit not touched by
// any gate) so idle spectator qubits are refocused. The inserted pairs are
// identity in the noiseless circuit, so correctness is unchanged; on
// hardware (and in our density-matrix model with dephasing-dominated noise)
// they suppress idle-qubit error. It returns the padded circuit and the
// number of echo pairs inserted.
func InsertDD(c *qsim.Circuit) (*qsim.Circuit, int) {
	touched := make([]bool, c.N())
	for _, g := range c.Gates() {
		for _, q := range g.Qubits {
			touched[q] = true
		}
		if g.Kind == qsim.GatePauliRot {
			for q := 0; q < g.Pauli.N(); q++ {
				if g.Pauli.At(q) != 'I' {
					touched[q] = true
				}
			}
		}
		if g.Kind == qsim.GateDiagonal {
			// A fused phase table can act on any subset of qubits;
			// conservatively treat all of them as busy.
			for q := range touched {
				touched[q] = true
			}
		}
	}
	out := qsim.NewCircuit(c.N())
	for _, g := range c.Gates() {
		appendGate(out, g)
	}
	pairs := 0
	for q := 0; q < c.N(); q++ {
		if !touched[q] {
			out.X(q)
			out.X(q)
			pairs++
		}
	}
	return out, pairs
}
