package mitigation

import (
	"context"
	"errors"
	"math"
	"testing"
)

// polyScalable is a deterministic ScalableEvaluator: cost = base(params) +
// slope*scale, so the zero-noise limit is base(params) exactly.
type polyScalable struct{}

func (polyScalable) NumParams() int { return 2 }

func (polyScalable) EvaluateScaled(params []float64, c float64) (float64, error) {
	return params[0] + 2*params[1] + 0.25*c, nil
}

// batchScalable adds a native sweep implementation and records batch sizes.
type batchScalable struct {
	polyScalable
	batches [][2]int // (points, scales) per call
}

func (b *batchScalable) EvaluateScaledBatch(ctx context.Context, params [][]float64, scales []float64) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.batches = append(b.batches, [2]int{len(params), len(scales)})
	out := make([]float64, 0, len(params)*len(scales))
	for _, p := range params {
		for _, c := range scales {
			v, err := b.EvaluateScaled(p, c)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

func znePoints() [][]float64 {
	pts := make([][]float64, 15)
	for i := range pts {
		pts[i] = []float64{0.1 * float64(i), -0.05 * float64(i)}
	}
	return pts
}

// TestZNEBatchMatchesPointwise checks EvaluateBatch extrapolates to the same
// values as point-at-a-time Evaluate, via both the fallback loop and a
// native scaled-batch inner evaluator.
func TestZNEBatchMatchesPointwise(t *testing.T) {
	pts := znePoints()
	for name, inner := range map[string]ScalableEvaluator{
		"fallback": polyScalable{},
		"native":   &batchScalable{},
	} {
		z, err := NewZNE(inner, []float64{1, 2, 3}, Richardson)
		if err != nil {
			t.Fatal(err)
		}
		got, err := z.EvaluateBatch(context.Background(), pts)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			want, err := z.Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got[i]-want) > 1e-12 {
				t.Fatalf("%s: point %d: batch %g pointwise %g", name, i, got[i], want)
			}
			// Richardson on a linear-in-scale cost is exact.
			if zero := p[0] + 2*p[1]; math.Abs(got[i]-zero) > 1e-12 {
				t.Fatalf("%s: point %d: extrapolated %g want %g", name, i, got[i], zero)
			}
		}
	}
}

// TestZNEBatchSingleSweep checks the whole (point x scale) sweep arrives at
// a native inner evaluator as one submission.
func TestZNEBatchSingleSweep(t *testing.T) {
	inner := &batchScalable{}
	z, err := NewZNE(inner, []float64{1, 3}, Linear)
	if err != nil {
		t.Fatal(err)
	}
	pts := znePoints()
	if _, err := z.EvaluateBatch(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if len(inner.batches) != 1 {
		t.Fatalf("%d sweep submissions, want 1", len(inner.batches))
	}
	if inner.batches[0] != [2]int{len(pts), 2} {
		t.Fatalf("sweep shape %v, want [%d 2]", inner.batches[0], len(pts))
	}
}

func TestZNEBatchCancellation(t *testing.T) {
	z, err := NewZNE(polyScalable{}, []float64{1, 3}, Linear)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := z.EvaluateBatch(ctx, znePoints()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
