package mitigation

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/backend"
	"repro/internal/noise"
	"repro/internal/problem"
)

func TestCDRCorrectsDepolarizingBias(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	p, err := problem.Random3RegularMaxCut(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := backend.NewAnalyticQAOA(p, noise.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := backend.NewAnalyticQAOA(p, noise.Fig9())
	if err != nil {
		t.Fatal(err)
	}
	cdr, err := NewCDR(exact, noisy, CDROptions{TrainingCircuits: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cdr.R2() < 0.99 {
		t.Fatalf("depolarizing devices are affinely related; CDR R2=%g", cdr.R2())
	}
	// On held-out target parameters, CDR must beat raw noisy values.
	var rawErr, cdrErr float64
	for i := 0; i < 30; i++ {
		params := []float64{(rng.Float64() - 0.5) * math.Pi / 2, (rng.Float64() - 0.5) * math.Pi}
		truth, _ := exact.Evaluate(params)
		raw, _ := noisy.Evaluate(params)
		corrected, err := cdr.Evaluate(params)
		if err != nil {
			t.Fatal(err)
		}
		rawErr += math.Abs(raw - truth)
		cdrErr += math.Abs(corrected - truth)
	}
	if cdrErr >= rawErr/3 {
		t.Fatalf("CDR barely helped: corrected error %g vs raw %g", cdrErr, rawErr)
	}
}

func TestCDRValidation(t *testing.T) {
	f2 := &backend.Func{Label: "a", Params: 2, F: func(p []float64) (float64, error) { return p[0], nil }}
	f3 := &backend.Func{Label: "b", Params: 3, F: func(p []float64) (float64, error) { return p[0], nil }}
	if _, err := NewCDR(f2, f3, CDROptions{}); err == nil {
		t.Error("want error for arity mismatch")
	}
	if _, err := NewCDR(f2, f2, CDROptions{TrainingCircuits: 1}); err == nil {
		t.Error("want error for single training circuit")
	}
}

func TestCDRDegenerateTrainingFallsBackToIdentity(t *testing.T) {
	constEval := &backend.Func{Label: "const", Params: 2, F: func(p []float64) (float64, error) { return 1.0, nil }}
	varying := &backend.Func{Label: "vary", Params: 2, F: func(p []float64) (float64, error) { return p[0], nil }}
	cdr, err := NewCDR(varying, constEval, CDROptions{TrainingCircuits: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	slope, icept := cdr.Model()
	if slope != 1 || icept != 0 {
		t.Fatalf("degenerate training should fall back to identity, got %g, %g", slope, icept)
	}
	v, err := cdr.Evaluate([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("identity fallback should pass through: %g", v)
	}
}

func TestCDRMetadata(t *testing.T) {
	rng := rand.New(rand.NewSource(192))
	p, _ := problem.Random3RegularMaxCut(8, rng)
	exact, _ := backend.NewAnalyticQAOA(p, noise.Ideal())
	noisy, _ := backend.NewAnalyticQAOA(p, noise.QPU2())
	cdr, err := NewCDR(exact, noisy, CDROptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cdr.NumParams() != 2 {
		t.Fatalf("NumParams %d", cdr.NumParams())
	}
	if cdr.Name() == "" {
		t.Fatal("empty name")
	}
}

// TestCDRWorksWithDensityBackend exercises CDR against the exact
// density-matrix device, the configuration a real user would run.
func TestCDRWorksWithDensityBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	p, err := problem.Random3RegularMaxCut(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ansatz.QAOA(p.Graph, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := backend.NewStateVector(p, a)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := backend.NewDensity(p, a, noise.Profile{Name: "dev", P1: 0.004, P2: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	cdr, err := NewCDR(exact, noisy, CDROptions{TrainingCircuits: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{0.3, -0.5}
	truth, _ := exact.Evaluate(params)
	raw, _ := noisy.Evaluate(params)
	corrected, err := cdr.Evaluate(params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(corrected-truth) >= math.Abs(raw-truth) {
		t.Fatalf("CDR did not improve: truth %g raw %g corrected %g", truth, raw, corrected)
	}
}
