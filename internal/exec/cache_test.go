package exec

import (
	"bytes"
	"context"
	"math"
	"sync/atomic"
	"testing"
)

// TestCacheKeyOverflowDistinct is the regression test for the int64 key
// overflow: coordinates beyond ~9.2e18*quantum used to collapse onto one
// key, so distinct parameter vectors returned each other's cached values.
func TestCacheKeyOverflowDistinct(t *testing.T) {
	c := NewCache(1e-9)
	// Both quantize far beyond int64 range; before the fix they shared the
	// unspecified overflow sentinel key.
	a := []float64{1e19}
	b := []float64{2e19}
	c.Store(a, 1)
	if _, ok := c.Lookup(b); ok {
		t.Fatal("lookup of a distinct overflowing vector hit another vector's entry")
	}
	// Overflowing vectors are never stored at all: even the exact same
	// vector must miss, because its key is not collision-free.
	if _, ok := c.Lookup(a); ok {
		t.Fatal("overflowing vector was cached despite having no collision-free key")
	}
	if c.Len() != 0 {
		t.Fatalf("cache stored %d entries for uncacheable vectors", c.Len())
	}
}

func TestCacheNonFiniteBypass(t *testing.T) {
	c := NewCache(0)
	for _, p := range [][]float64{
		{math.NaN()},
		{math.Inf(1)},
		{math.Inf(-1)},
		{0.5, math.NaN()},
	} {
		c.Store(p, 7)
		if _, ok := c.Lookup(p); ok {
			t.Fatalf("non-finite vector %v was cached", p)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("cache stored %d non-finite entries", c.Len())
	}
	// Finite vectors keep working, and are not aliased by the bypassed
	// stores above.
	c.Store([]float64{0.5, 0.25}, 3)
	if v, ok := c.Lookup([]float64{0.5, 0.25}); !ok || v != 3 {
		t.Fatalf("finite lookup = %g, %v", v, ok)
	}
}

// TestEngineCacheBypassesUncacheable checks the engine executes uncacheable
// points every time — no dedup, no store — while finite points still
// memoize.
func TestEngineCacheBypassesUncacheable(t *testing.T) {
	var calls atomic.Int64
	inner := Lift(func(p []float64) (float64, error) {
		calls.Add(1)
		if math.IsNaN(p[0]) {
			return -1, nil
		}
		return p[0] * 2, nil
	})
	cache := NewCache(0)
	en := New(inner, Options{Workers: 1, Cache: cache})

	batch := [][]float64{{math.NaN()}, {1}, {math.NaN()}, {1}}
	out, err := en.EvaluateBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != -1 || out[2] != -1 || out[1] != 2 || out[3] != 2 {
		t.Fatalf("results %v", out)
	}
	// Two NaN executions (no dedup) + one finite execution (deduped).
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d executions, want 3 (NaN points must not deduplicate)", got)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want only the finite point", cache.Len())
	}

	// A second batch re-executes the NaN point but hits the finite one.
	calls.Store(0)
	if _, err := en.EvaluateBatch(context.Background(), [][]float64{{math.NaN()}, {1}}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d executions on second batch, want 1 (NaN re-executes, finite hits)", got)
	}
}

func TestCacheSnapshotRestoreRoundTrip(t *testing.T) {
	src := NewCache(1e-6)
	src.Store([]float64{0.1, 0.2}, 1.5)
	src.Store([]float64{0.3, 0.4}, -2.5)
	src.Store([]float64{0.3}, 9) // different arity coexists

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := NewCache(1e-6)
	dst.Store([]float64{0.1, 0.2}, 100) // existing entries win over the snapshot
	if err := dst.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 3 {
		t.Fatalf("restored cache has %d entries, want 3", dst.Len())
	}
	if v, ok := dst.Lookup([]float64{0.3, 0.4}); !ok || v != -2.5 {
		t.Fatalf("restored lookup = %g, %v", v, ok)
	}
	if v, ok := dst.Lookup([]float64{0.1, 0.2}); !ok || v != 100 {
		t.Fatalf("existing entry overwritten by snapshot: %g, %v", v, ok)
	}
	if v, ok := dst.Lookup([]float64{0.3}); !ok || v != 9 {
		t.Fatalf("restored 1-d lookup = %g, %v", v, ok)
	}
}

func TestCacheRestoreQuantumMismatch(t *testing.T) {
	src := NewCache(1e-6)
	src.Store([]float64{1}, 1)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewCache(1e-3)
	if err := dst.Restore(&buf); err == nil {
		t.Fatal("want error restoring a snapshot with a different quantum")
	}
	if dst.Len() != 0 {
		t.Fatalf("mismatched restore left %d entries", dst.Len())
	}
}

func TestCacheRestoreGarbage(t *testing.T) {
	c := NewCache(0)
	if err := c.Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("want error decoding garbage")
	}
}
