package exec

import "repro/internal/shard"

// ForRange splits the index range [0, n) into at most workers contiguous
// shards and invokes fn(lo, hi) once per shard, concurrently when more than
// one shard results. It is the data-parallel sibling of the engine's batch
// chunking and follows the same determinism conventions: shard boundaries are
// the fixed i*n/w split, so a given (workers, n) pair always yields the same
// shards, and fn must only write state that is disjoint across shards (e.g.
// dst[lo:hi]), making the combined result independent of scheduling order.
//
// workers <= 1, n <= 1, or a single resulting shard runs fn inline on the
// calling goroutine with no synchronization. The compressed-sensing solver
// uses ForRange for its per-element vector kernels; the implementation is
// the shared shard.ForRange primitive the simulators' gate kernels and the
// backend batch paths also run on.
func ForRange(workers, n int, fn func(lo, hi int)) {
	shard.ForRange(workers, n, fn)
}
