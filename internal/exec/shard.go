package exec

import "sync"

// ForRange splits the index range [0, n) into at most workers contiguous
// shards and invokes fn(lo, hi) once per shard, concurrently when more than
// one shard results. It is the data-parallel sibling of the engine's batch
// chunking and follows the same determinism conventions: shard boundaries are
// the fixed i*n/w split, so a given (workers, n) pair always yields the same
// shards, and fn must only write state that is disjoint across shards (e.g.
// dst[lo:hi]), making the combined result independent of scheduling order.
//
// workers <= 1, n <= 1, or a single resulting shard runs fn inline on the
// calling goroutine with no synchronization. The compressed-sensing solver
// uses ForRange for its per-element vector kernels.
func ForRange(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
