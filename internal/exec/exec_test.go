package exec

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/backend"
)

// batch builds n 2-parameter points with distinct coordinates.
func batch(n int) [][]float64 {
	ps := make([][]float64, n)
	for i := range ps {
		ps[i] = []float64{float64(i) * 0.01, -float64(i) * 0.02}
	}
	return ps
}

func costOf(p []float64) float64 { return math.Sin(p[0]) + 2*math.Cos(p[1]) }

func pointEval(p []float64) (float64, error) { return costOf(p), nil }

func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	params := batch(937) // non-multiple of any chunk size
	var want []float64
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, chunkSize := range []int{0, 1, 7, 1024} {
			en := New(Lift(pointEval), Options{Workers: workers, ChunkSize: chunkSize})
			got, err := en.EvaluateBatch(context.Background(), params)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(params) {
				t.Fatalf("workers=%d: %d results for %d points", workers, len(got), len(params))
			}
			if want == nil {
				want = got
				for i, p := range params {
					if got[i] != costOf(p) {
						t.Fatalf("result %d = %g, want %g", i, got[i], costOf(p))
					}
				}
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d chunk=%d: result %d differs: %g vs %g",
						workers, chunkSize, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEngineSequentialWithOneWorker checks the Workers=1 ordering contract
// that evaluators with a shared random stream rely on.
func TestEngineSequentialWithOneWorker(t *testing.T) {
	params := batch(100)
	var order []int
	en := New(Lift(func(p []float64) (float64, error) {
		order = append(order, int(math.Round(p[0]/0.01)))
		return 0, nil
	}), Options{Workers: 1, ChunkSize: 7})
	if _, err := en.EvaluateBatch(context.Background(), params); err != nil {
		t.Fatal(err)
	}
	if len(order) != len(params) {
		t.Fatalf("evaluated %d of %d points", len(order), len(params))
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("evaluation order[%d] = %d, want ascending", i, idx)
		}
	}
}

func TestEngineCacheAccounting(t *testing.T) {
	var execs atomic.Int64
	cache := NewCache(0)
	en := New(Lift(func(p []float64) (float64, error) {
		execs.Add(1)
		return costOf(p), nil
	}), Options{Workers: 4, Cache: cache})

	params := batch(200)
	// First pass: all misses.
	first, err := en.EvaluateBatch(context.Background(), params)
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 200 {
		t.Fatalf("first pass executed %d points, want 200", got)
	}
	if cache.Hits() != 0 || cache.Misses() != 200 {
		t.Fatalf("first pass hits=%d misses=%d, want 0/200", cache.Hits(), cache.Misses())
	}
	// Second pass: all hits, zero executions, identical values.
	second, err := en.EvaluateBatch(context.Background(), params)
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 200 {
		t.Fatalf("second pass re-executed: %d total execs", got)
	}
	if cache.Hits() != 200 {
		t.Fatalf("second pass hits=%d, want 200", cache.Hits())
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cached value %d differs: %g vs %g", i, first[i], second[i])
		}
	}
	if cache.Len() != 200 {
		t.Fatalf("cache holds %d entries, want 200", cache.Len())
	}
}

// TestEngineCacheDedupWithinBatch submits the same point many times in one
// batch and checks it executes once.
func TestEngineCacheDedupWithinBatch(t *testing.T) {
	var execs atomic.Int64
	cache := NewCache(0)
	en := New(Lift(func(p []float64) (float64, error) {
		execs.Add(1)
		return costOf(p), nil
	}), Options{Workers: 4, Cache: cache})

	params := make([][]float64, 64)
	for i := range params {
		params[i] = []float64{0.25, -0.5} // same point, fresh slice each time
	}
	vals, err := en.EvaluateBatch(context.Background(), params)
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("duplicate point executed %d times", got)
	}
	// One execution: 1 miss, the 63 duplicates are hits.
	if cache.Misses() != 1 || cache.Hits() != 63 {
		t.Fatalf("dedup accounting hits=%d misses=%d, want 63/1", cache.Hits(), cache.Misses())
	}
	want := costOf(params[0])
	for i, v := range vals {
		if v != want {
			t.Fatalf("result %d = %g, want %g", i, v, want)
		}
	}
}

// TestEngineCacheQuantization checks that sub-quantum jitter shares an entry
// while supra-quantum separation does not.
func TestEngineCacheQuantization(t *testing.T) {
	cache := NewCache(1e-6)
	cache.Store([]float64{0.5}, 42)
	if v, ok := cache.Lookup([]float64{0.5 + 1e-9}); !ok || v != 42 {
		t.Fatalf("sub-quantum jitter missed the cache (ok=%v v=%g)", ok, v)
	}
	if _, ok := cache.Lookup([]float64{0.5 + 1e-4}); ok {
		t.Fatal("distinct point hit the cache")
	}
}

func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	en := New(Lift(func(p []float64) (float64, error) {
		if seen.Add(1) == 10 {
			cancel() // cancel mid-batch from inside an evaluation
		}
		return 0, nil
	}), Options{Workers: 2, ChunkSize: 4})
	_, err := en.EvaluateBatch(ctx, batch(10_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := seen.Load(); n >= 10_000 {
		t.Fatalf("cancellation did not stop the batch (%d points ran)", n)
	}
}

func TestEnginePreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	en := New(Lift(pointEval), Options{})
	if _, err := en.EvaluateBatch(ctx, batch(5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEngineErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var seen atomic.Int64
	en := New(Lift(func(p []float64) (float64, error) {
		if seen.Add(1) == 5 {
			return 0, boom
		}
		return 0, nil
	}), Options{Workers: 3, ChunkSize: 2})
	if _, err := en.EvaluateBatch(context.Background(), batch(1000)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestEngineEmptyBatch(t *testing.T) {
	en := New(Lift(pointEval), Options{})
	vals, err := en.EvaluateBatch(context.Background(), nil)
	if err != nil || len(vals) != 0 {
		t.Fatalf("empty batch: vals=%v err=%v", vals, err)
	}
}

// TestFromEvaluator checks native batch implementations are picked up while
// plain evaluators are lifted.
func TestFromEvaluator(t *testing.T) {
	plain := &backend.Func{Label: "plain", Params: 1, F: func(p []float64) (float64, error) { return p[0], nil }}
	be := FromEvaluator(plain)
	vals, err := be.EvaluateBatch(context.Background(), [][]float64{{1}, {2}})
	if err != nil || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("lifted evaluator: vals=%v err=%v", vals, err)
	}
	if _, native := backend.Evaluator(plain).(BatchEvaluator); !native {
		// backend.Func implements EvaluateBatch natively; if that changes
		// this test documents that FromEvaluator still works via Lift.
		t.Log("backend.Func has no native batch path; using Lift")
	}
}

func TestChunkSize(t *testing.T) {
	cases := []struct {
		n, w, conf, want int
	}{
		{n: 10, w: 4, conf: 3, want: 3},
		{n: 10, w: 4, conf: 0, want: 1},
		{n: 5000, w: 8, conf: 0, want: 78},
		{n: 1 << 20, w: 1, conf: 0, want: 512},
	}
	for _, c := range cases {
		if got := chunkSize(c.n, c.w, c.conf); got != c.want {
			t.Errorf("chunkSize(%d,%d,%d) = %d, want %d", c.n, c.w, c.conf, got, c.want)
		}
	}
}
