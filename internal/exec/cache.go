package exec

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
)

// DefaultQuantum is the default parameter quantization step for cache keys.
// Grid axes and optimizer stencils place points far coarser than 1e-9, so
// the default collapses floating-point jitter without ever merging distinct
// landscape points.
const DefaultQuantum = 1e-9

// maxEntries bounds the cache: once full, new points still execute and
// existing entries still hit, but nothing new is stored. This keeps
// long-lived engines (optimizers wandering through fresh points, servers
// reusing one cache across many requests) from growing without bound; at
// ~1M entries a 2-parameter cache holds ~32MB.
const maxEntries = 1 << 20

// Cache memoizes evaluation results keyed on quantized parameter vectors, so
// repeated visits to the same point — optimizer stencils re-probing a
// neighborhood, ZNE sweeps sharing scale-1 measurements, overlapping
// landscape samples — never re-execute a circuit. It is safe for concurrent
// use and only meaningful for evaluators that are pure functions of their
// parameters. Storage is capped at maxEntries (hits keep working; new
// points simply stop being stored); call Reset to reclaim a full cache.
type Cache struct {
	quantum float64

	mu sync.RWMutex
	m  map[string]float64

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache builds a cache with the given quantization step (<= 0 selects
// DefaultQuantum). Two parameter vectors share an entry iff every coordinate
// rounds to the same multiple of the step.
func NewCache(quantum float64) *Cache {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &Cache{quantum: quantum, m: make(map[string]float64)}
}

// key encodes the quantized coordinates of params.
func (c *Cache) key(params []float64) string {
	buf := make([]byte, 8*len(params))
	for i, p := range params {
		q := int64(math.Round(p / c.quantum))
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(q))
	}
	return string(buf)
}

// peek returns the cached value for a key without touching the counters.
func (c *Cache) peek(k string) (float64, bool) {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	return v, ok
}

// lookup returns the cached value for a key, counting the hit or miss.
func (c *Cache) lookup(k string) (float64, bool) {
	v, ok := c.peek(k)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// store records a value for a key, unless the cache is full.
func (c *Cache) store(k string, v float64) {
	c.mu.Lock()
	if len(c.m) < maxEntries {
		c.m[k] = v
	}
	c.mu.Unlock()
}

// Lookup returns the cached value at params, if present. Hit/miss accounting
// matches the engine's.
func (c *Cache) Lookup(params []float64) (float64, bool) {
	return c.lookup(c.key(params))
}

// Store records a value at params.
func (c *Cache) Store(params []float64, v float64) {
	c.store(c.key(params), v)
}

// Hits returns the number of lookups served without an execution — stored
// entries plus intra-batch duplicates of a pending point.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of lookups that fell through to execution.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Len returns the number of stored points.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Reset drops all entries and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.m = make(map[string]float64)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}
