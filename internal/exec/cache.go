package exec

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// DefaultQuantum is the default parameter quantization step for cache keys.
// Grid axes and optimizer stencils place points far coarser than 1e-9, so
// the default collapses floating-point jitter without ever merging distinct
// landscape points.
const DefaultQuantum = 1e-9

// maxEntries bounds the cache: once full, new points still execute and
// existing entries still hit, but nothing new is stored. This keeps
// long-lived engines (optimizers wandering through fresh points, servers
// reusing one cache across many requests) from growing without bound; at
// ~1M entries a 2-parameter cache holds ~32MB.
const maxEntries = 1 << 20

// Cache memoizes evaluation results keyed on quantized parameter vectors, so
// repeated visits to the same point — optimizer stencils re-probing a
// neighborhood, ZNE sweeps sharing scale-1 measurements, overlapping
// landscape samples — never re-execute a circuit. It is safe for concurrent
// use and only meaningful for evaluators that are pure functions of their
// parameters. Storage is capped at maxEntries (hits keep working; new
// points simply stop being stored); call Reset to reclaim a full cache.
type Cache struct {
	quantum float64

	mu sync.RWMutex
	m  map[string]float64

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache builds a cache with the given quantization step (<= 0 selects
// DefaultQuantum). Two parameter vectors share an entry iff every coordinate
// rounds to the same multiple of the step.
func NewCache(quantum float64) *Cache {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &Cache{quantum: quantum, m: make(map[string]float64)}
}

// maxQuantized bounds the quantized coordinate magnitude the key encoding
// accepts. int64 covers ±9.22e18, but float64-to-int64 conversion of values
// at or beyond the boundary is unspecified in Go, so the cache stops one
// power of two short — any real parameter grid sits many orders of magnitude
// inside it.
const maxQuantized = 1 << 62

// key encodes the quantized coordinates of params. ok is false when any
// coordinate is NaN, infinite, or quantizes outside the int64-safe range —
// such vectors have no collision-free encoding (the conversion would
// overflow and collapse distinct points onto one key), so callers must
// bypass the cache for them.
func (c *Cache) key(params []float64) (_ string, ok bool) {
	buf := make([]byte, 8*len(params))
	for i, p := range params {
		q := math.Round(p / c.quantum)
		// NaN compares false against everything, so the range checks
		// alone would let it through to the unspecified conversion.
		if math.IsNaN(q) || q > maxQuantized || q < -maxQuantized {
			return "", false
		}
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(int64(q)))
	}
	return string(buf), true
}

// peek returns the cached value for a key without touching the counters.
func (c *Cache) peek(k string) (float64, bool) {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	return v, ok
}

// lookup returns the cached value for a key, counting the hit or miss.
func (c *Cache) lookup(k string) (float64, bool) {
	v, ok := c.peek(k)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// store records a value for a key, unless the cache is full.
func (c *Cache) store(k string, v float64) {
	c.mu.Lock()
	if len(c.m) < maxEntries {
		c.m[k] = v
	}
	c.mu.Unlock()
}

// Lookup returns the cached value at params, if present. Hit/miss accounting
// matches the engine's. Vectors with non-finite or out-of-range coordinates
// are never cached and always miss.
func (c *Cache) Lookup(params []float64) (float64, bool) {
	k, ok := c.key(params)
	if !ok {
		c.misses.Add(1)
		return 0, false
	}
	return c.lookup(k)
}

// Store records a value at params. Vectors with non-finite or out-of-range
// coordinates are dropped: they have no collision-free key, and storing them
// would return their value for unrelated parameter vectors.
func (c *Cache) Store(params []float64, v float64) {
	k, ok := c.key(params)
	if !ok {
		return
	}
	c.store(k, v)
}

// Hits returns the number of lookups served without an execution — stored
// entries plus intra-batch duplicates of a pending point.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of lookups that fell through to execution.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Len returns the number of stored points.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Reset drops all entries and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.m = make(map[string]float64)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// Quantum returns the parameter quantization step keys are built with.
func (c *Cache) Quantum() float64 { return c.quantum }

// cacheSnapshot is the on-disk form of a Cache: the quantization step (keys
// are only meaningful relative to it) plus the stored entries. Counters are
// deliberately not persisted — a restored cache starts its hit/miss
// accounting fresh.
type cacheSnapshot struct {
	Version int
	Quantum float64
	Entries map[string]float64
}

// snapshotVersion guards the wire format of Snapshot/Restore.
const snapshotVersion = 1

// Snapshot writes the cache contents (quantization step and all stored
// entries, not the hit/miss counters) to w in a self-describing binary
// format, so a long-running service can spill its memoized executions to
// disk on shutdown and warm-start from them later via Restore.
func (c *Cache) Snapshot(w io.Writer) error {
	c.mu.RLock()
	snap := cacheSnapshot{
		Version: snapshotVersion,
		Quantum: c.quantum,
		Entries: make(map[string]float64, len(c.m)),
	}
	for k, v := range c.m {
		snap.Entries[k] = v
	}
	c.mu.RUnlock()
	return gob.NewEncoder(w).Encode(snap)
}

// Restore merges a Snapshot into the cache. The snapshot must have been
// taken with the same quantization step — keys are quantized coordinates, so
// entries written under a different step would decode to different points.
// Existing entries win over snapshot entries with the same key, and the
// merge respects the maxEntries cap. Counters are left untouched.
func (c *Cache) Restore(r io.Reader) error {
	var snap cacheSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("exec: decoding cache snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("exec: cache snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if snap.Quantum != c.quantum {
		return fmt.Errorf("exec: cache snapshot quantum %g does not match cache quantum %g", snap.Quantum, c.quantum)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range snap.Entries {
		if len(c.m) >= maxEntries {
			break
		}
		if _, ok := c.m[k]; !ok {
			c.m[k] = v
		}
	}
	return nil
}
