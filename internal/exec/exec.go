// Package exec is the batched execution engine every evaluation fan-out in
// this repository runs on. The paper's phase-2 "circuit execution" is
// embarrassingly parallel, and real cloud QPUs reward job batching — a fixed
// queue latency amortized across a batch — so the engine models exactly that
// shape: callers submit whole batches of parameter vectors, the engine chunks
// them across a worker pool, and the underlying evaluator sees contiguous
// sub-batches it can execute natively.
//
// The engine guarantees:
//
//   - Deterministic result ordering: result[i] always corresponds to
//     params[i], regardless of worker count or chunk size.
//   - Sequential evaluation order under Workers=1 (ascending index), so
//     evaluators that consume a shared random stream stay reproducible.
//   - Context cancellation: a canceled ctx stops the run between chunks and
//     the engine returns ctx.Err().
//   - Optional memoization: with a Cache, quantized parameter vectors are
//     executed at most once — across calls and within a batch — so
//     optimizers re-visiting stencil points and ZNE sweeps never pay twice.
package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/backend"
	"repro/internal/obs"
)

// BatchEvaluator computes costs for a batch of parameter vectors. The
// returned slice must have one value per input vector, in input order.
// Implementations must be safe for concurrent use: the engine calls
// EvaluateBatch from multiple workers on disjoint chunks.
type BatchEvaluator interface {
	EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error)
}

// BatchFunc adapts a function into a BatchEvaluator.
type BatchFunc func(ctx context.Context, params [][]float64) ([]float64, error)

// EvaluateBatch implements BatchEvaluator.
func (f BatchFunc) EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error) {
	return f(ctx, params)
}

// Lift adapts a point evaluator into a BatchEvaluator that loops over the
// batch, checking ctx between points.
func Lift(eval func(params []float64) (float64, error)) BatchEvaluator {
	return BatchFunc(func(ctx context.Context, params [][]float64) ([]float64, error) {
		out := make([]float64, len(params))
		for i, p := range params {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := eval(p)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	})
}

// FromEvaluator lifts a backend evaluator into a BatchEvaluator, using its
// native batch implementation when it has one.
func FromEvaluator(e backend.Evaluator) BatchEvaluator {
	if b, ok := e.(BatchEvaluator); ok {
		return b
	}
	return Lift(e.Evaluate)
}

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent chunk evaluations (0 = GOMAXPROCS).
	Workers int
	// ChunkSize is the number of points handed to the inner evaluator per
	// call (0 = automatic: batches are split so every worker gets several
	// chunks, bounding both scheduling overhead and load imbalance).
	ChunkSize int
	// Cache optionally memoizes results by quantized parameter vector.
	Cache *Cache
}

// Engine schedules batch evaluations over a chunking worker pool. An Engine
// is itself a BatchEvaluator, so engines compose (e.g. a cache-backed engine
// wrapping a ZNE evaluator that batches its own noise-scale sweep).
type Engine struct {
	inner BatchEvaluator
	opts  Options
}

// New builds an engine around inner.
func New(inner BatchEvaluator, opts Options) *Engine {
	return &Engine{inner: inner, opts: opts}
}

// chunkSize resolves the chunk size for a batch of n points on w workers.
func chunkSize(n, w, configured int) int {
	if configured > 0 {
		return configured
	}
	// Aim for ~8 chunks per worker so stragglers rebalance, but never less
	// than 1 point or more than 512 per inner call.
	c := n / (w * 8)
	if c < 1 {
		c = 1
	}
	if c > 512 {
		c = 512
	}
	return c
}

type chunk struct {
	lo, hi int // half-open range into the (deduplicated) work list
}

// EvaluateBatch implements BatchEvaluator: evaluate every parameter vector,
// returning values in input order.
func (e *Engine) EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := len(params)
	results := make([]float64, n)
	if n == 0 {
		return results, nil
	}
	span, ctx := obs.Start(ctx, "exec.batch")
	defer span.End()
	span.SetAttr("points", n)

	c := e.opts.Cache
	if c == nil {
		// No cache: results is index-aligned with params, so the pool
		// writes into it directly.
		span.SetAttr("executed", n)
		if err := e.run(ctx, params, results); err != nil {
			span.SetError(err)
			return nil, err
		}
		return results, nil
	}

	// Cache pass: satisfy hits immediately and deduplicate the misses so
	// each distinct point is executed once even within a single batch.
	// Points whose coordinates cannot be quantized into a collision-free
	// key (NaN, ±Inf, beyond the int64-safe range) bypass the cache: they
	// always execute and are never stored or deduplicated, so a degenerate
	// coordinate can never alias a legitimate cached point.
	work := make([][]float64, 0, n)  // unique points to execute
	workPos := make([][]int, 0, n)   // result positions per unique point
	workKeys := make([]string, 0, n) // cache keys per unique point
	workOK := make([]bool, 0, n)     // whether the point is cacheable
	seen := make(map[string]int, n)
	for i, p := range params {
		k, kok := c.key(p)
		if !kok {
			c.misses.Add(1)
			work = append(work, p)
			workPos = append(workPos, []int{i})
			workKeys = append(workKeys, "")
			workOK = append(workOK, false)
			continue
		}
		if v, ok := c.peek(k); ok {
			c.hits.Add(1)
			results[i] = v
			continue
		}
		if j, ok := seen[k]; ok {
			// Duplicate of a pending point in this batch: served by its
			// single execution, so it counts as a hit.
			c.hits.Add(1)
			workPos[j] = append(workPos[j], i)
			continue
		}
		c.misses.Add(1)
		seen[k] = len(work)
		work = append(work, p)
		workPos = append(workPos, []int{i})
		workKeys = append(workKeys, k)
		workOK = append(workOK, true)
	}
	span.SetAttr("cache_hits", n-len(work))
	span.SetAttr("executed", len(work))
	if len(work) == 0 {
		return results, nil
	}

	values := make([]float64, len(work))
	if err := e.run(ctx, work, values); err != nil {
		span.SetError(err)
		return nil, err
	}
	for j, v := range values {
		if workOK[j] {
			c.store(workKeys[j], v)
		}
		for _, i := range workPos[j] {
			results[i] = v
		}
	}
	return results, nil
}

// run executes work into values (index-aligned) on the worker pool.
func (e *Engine) run(ctx context.Context, work [][]float64, values []float64) error {
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}
	size := chunkSize(len(work), workers, e.opts.ChunkSize)

	if workers <= 1 {
		// Serial fast path: no channel, no goroutines, no derived context —
		// chunks run inline in ascending order (the order the engine already
		// guarantees under Workers=1), so native zero-allocation backends
		// see no scheduling overhead at all.
		for lo := 0; lo < len(work); lo += size {
			hi := lo + size
			if hi > len(work) {
				hi = len(work)
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			vals, err := e.inner.EvaluateBatch(ctx, work[lo:hi])
			if err != nil {
				return err
			}
			if len(vals) != hi-lo {
				return errors.New("exec: inner evaluator returned wrong batch length")
			}
			copy(values[lo:hi], vals)
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	chunks := make(chan chunk, workers)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ch := range chunks {
				if cctx.Err() != nil {
					return
				}
				vals, err := e.inner.EvaluateBatch(cctx, work[ch.lo:ch.hi])
				if err != nil {
					fail(err)
					return
				}
				if len(vals) != ch.hi-ch.lo {
					fail(errors.New("exec: inner evaluator returned wrong batch length"))
					return
				}
				copy(values[ch.lo:ch.hi], vals)
			}
		}()
	}
feed:
	for lo := 0; lo < len(work); lo += size {
		hi := lo + size
		if hi > len(work) {
			hi = len(work)
		}
		select {
		case chunks <- chunk{lo, hi}:
		case <-cctx.Done():
			break feed
		}
	}
	close(chunks)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	// The parent context may have been canceled after the last chunk was
	// fed but before workers drained; surface that as an error rather than
	// returning a partially-filled batch.
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}
