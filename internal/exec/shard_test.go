package exec

import (
	"sync/atomic"
	"testing"
)

func TestForRangeCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 16, 100, 4097} {
			hits := make([]int32, n)
			ForRange(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad shard [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForRangeMoreWorkersThanItems(t *testing.T) {
	var calls int32
	ForRange(64, 3, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if hi-lo != 1 {
			t.Errorf("shard [%d,%d) should be a single index", lo, hi)
		}
	})
	if calls != 3 {
		t.Fatalf("got %d shards, want 3", calls)
	}
}

func TestForRangeDeterministicBoundaries(t *testing.T) {
	collect := func() [][2]int {
		ch := make(chan [2]int, 4)
		ForRange(4, 10, func(lo, hi int) { ch <- [2]int{lo, hi} })
		close(ch)
		var shards [][2]int
		for b := range ch {
			shards = append(shards, b)
		}
		return shards
	}
	a, b := collect(), collect()
	seen := func(shards [][2]int) map[[2]int]bool {
		m := map[[2]int]bool{}
		for _, s := range shards {
			m[s] = true
		}
		return m
	}
	sa, sb := seen(a), seen(b)
	if len(sa) != len(sb) {
		t.Fatalf("shard sets differ in size: %v vs %v", a, b)
	}
	for s := range sa {
		if !sb[s] {
			t.Fatalf("shard %v missing from second run (%v vs %v)", s, a, b)
		}
	}
	// The i*n/w rule for (4, 10): [0,2) [2,5) [5,7) [7,10).
	want := map[[2]int]bool{{0, 2}: true, {2, 5}: true, {5, 7}: true, {7, 10}: true}
	for s := range want {
		if !sa[s] {
			t.Fatalf("expected shard %v, got %v", s, a)
		}
	}
}

func TestForRangeSerialInline(t *testing.T) {
	var got [][2]int
	// workers=1 must run inline (appending without synchronization is the
	// proof: the race detector would flag a goroutine).
	ForRange(1, 50, func(lo, hi int) { got = append(got, [2]int{lo, hi}) })
	if len(got) != 1 || got[0] != [2]int{0, 50} {
		t.Fatalf("serial ForRange shards = %v, want one [0,50)", got)
	}
}
