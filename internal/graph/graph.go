// Package graph provides the problem graphs used by the paper's evaluation:
// random 3-regular graphs (MaxCut), two-dimensional mesh graphs (MaxCut on
// Sycamore-style hardware graphs), and complete weighted graphs
// (Sherrington-Kirkpatrick model).
package graph

import (
	"fmt"
	"math/rand"
)

// Edge is an undirected weighted edge between vertices U < V.
type Edge struct {
	U, V   int
	Weight float64
}

// Graph is a simple undirected weighted graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges []Edge
}

// Degree returns the per-vertex degrees.
func (g *Graph) Degree() []int {
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}

// AdjacencySet returns, for each vertex, the set of its neighbors.
func (g *Graph) AdjacencySet() []map[int]bool {
	adj := make([]map[int]bool, g.N)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for _, e := range g.Edges {
		adj[e.U][e.V] = true
		adj[e.V][e.U] = true
	}
	return adj
}

// CommonNeighbors returns the number of triangles through each edge, indexed
// like Edges. The analytic depth-1 QAOA formula needs it.
func (g *Graph) CommonNeighbors() []int {
	adj := g.AdjacencySet()
	out := make([]int, len(g.Edges))
	for i, e := range g.Edges {
		n := 0
		small, large := adj[e.U], adj[e.V]
		if len(small) > len(large) {
			small, large = large, small
		}
		for v := range small {
			if large[v] {
				n++
			}
		}
		out[i] = n
	}
	return out
}

// CutValue evaluates the weighted cut of the ±1 assignment. assignment[i]
// must be 0 or 1; an edge contributes its weight when its endpoints differ.
func (g *Graph) CutValue(assignment []int) float64 {
	var cut float64
	for _, e := range g.Edges {
		if assignment[e.U] != assignment[e.V] {
			cut += e.Weight
		}
	}
	return cut
}

// MaxCutBrute computes the exact MaxCut value by exhaustive search. It is
// exponential in N and intended for tests and for normalizing approximation
// ratios on small instances (N <= ~24).
func (g *Graph) MaxCutBrute() float64 {
	if g.N > 30 {
		panic(fmt.Sprintf("graph: MaxCutBrute on %d vertices", g.N))
	}
	best := 0.0
	assign := make([]int, g.N)
	for mask := 0; mask < 1<<uint(g.N-1); mask++ { // fix vertex N-1 = 0 (symmetry)
		for i := 0; i < g.N-1; i++ {
			assign[i] = (mask >> uint(i)) & 1
		}
		assign[g.N-1] = 0
		if c := g.CutValue(assign); c > best {
			best = c
		}
	}
	return best
}

// Random3Regular generates a random 3-regular simple graph on n vertices
// (n must be even and >= 4) by pairing half-edge stubs and retrying on
// collisions, the standard configuration-model construction.
func Random3Regular(n int, rng *rand.Rand) (*Graph, error) {
	return RandomRegular(n, 3, rng)
}

// RandomRegular generates a random d-regular simple graph via the
// configuration model with restarts.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d must be even, got n=%d d=%d", n, d)
	}
	if d >= n {
		return nil, fmt.Errorf("graph: degree %d too large for %d vertices", d, n)
	}
	if d < 1 {
		return nil, fmt.Errorf("graph: degree %d < 1", d)
	}
	for attempt := 0; attempt < 2000; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		seen := make(map[[2]int]bool, n*d/2)
		edges := make([]Edge, 0, n*d/2)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			if u > v {
				u, v = v, u
			}
			key := [2]int{u, v}
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			edges = append(edges, Edge{U: u, V: v, Weight: 1})
		}
		if ok {
			return &Graph{N: n, Edges: edges}, nil
		}
	}
	return nil, fmt.Errorf("graph: failed to build %d-regular graph on %d vertices", d, n)
}

// Mesh builds a rows×cols 2-D grid (mesh) graph with unit weights, the
// hardware-native topology used in the Google Sycamore QAOA dataset.
func Mesh(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: invalid mesh %dx%d", rows, cols)
	}
	g := &Graph{N: rows * cols}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.Edges = append(g.Edges, Edge{U: id(r, c), V: id(r, c+1), Weight: 1})
			}
			if r+1 < rows {
				g.Edges = append(g.Edges, Edge{U: id(r, c), V: id(r+1, c), Weight: 1})
			}
		}
	}
	return g, nil
}

// SK builds a Sherrington-Kirkpatrick instance: a complete graph on n
// vertices with i.i.d. ±1 couplings (the discrete SK ensemble used in the
// Google dataset).
func SK(n int, rng *rand.Rand) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: SK needs >= 2 vertices, got %d", n)
	}
	g := &Graph{N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			w := 1.0
			if rng.Intn(2) == 0 {
				w = -1.0
			}
			g.Edges = append(g.Edges, Edge{U: u, V: v, Weight: w})
		}
	}
	return g, nil
}

// Ring builds the n-cycle, a handy small regular test graph.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs >= 3 vertices, got %d", n)
	}
	g := &Graph{N: n}
	for i := 0; i < n; i++ {
		u, v := i, (i+1)%n
		if u > v {
			u, v = v, u
		}
		g.Edges = append(g.Edges, Edge{U: u, V: v, Weight: 1})
	}
	return g, nil
}

// Complete builds the unweighted complete graph K_n.
func Complete(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: complete graph needs >= 2 vertices, got %d", n)
	}
	g := &Graph{N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.Edges = append(g.Edges, Edge{U: u, V: v, Weight: 1})
		}
	}
	return g, nil
}
