package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandom3Regular(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{4, 6, 8, 12, 16, 20} {
		g, err := Random3Regular(n, rng)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if g.N != n {
			t.Fatalf("n=%d: got N=%d", n, g.N)
		}
		if len(g.Edges) != 3*n/2 {
			t.Fatalf("n=%d: %d edges, want %d", n, len(g.Edges), 3*n/2)
		}
		for _, d := range g.Degree() {
			if d != 3 {
				t.Fatalf("n=%d: degree %d", n, d)
			}
		}
		seen := map[[2]int]bool{}
		for _, e := range g.Edges {
			if e.U >= e.V {
				t.Fatalf("edge not normalized: %v", e)
			}
			key := [2]int{e.U, e.V}
			if seen[key] {
				t.Fatalf("duplicate edge %v", e)
			}
			seen[key] = true
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("want error for odd n*d")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("want error for d >= n")
	}
	if _, err := RandomRegular(4, 0, rng); err == nil {
		t.Error("want error for d=0")
	}
}

func TestMesh(t *testing.T) {
	g, err := Mesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 12 {
		t.Fatalf("N=%d", g.N)
	}
	// rows*(cols-1) + (rows-1)*cols edges.
	want := 3*3 + 2*4
	if len(g.Edges) != want {
		t.Fatalf("%d edges, want %d", len(g.Edges), want)
	}
	if _, err := Mesh(0, 3); err == nil {
		t.Error("want error for empty mesh")
	}
}

func TestSK(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := SK(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 15 {
		t.Fatalf("%d edges, want 15", len(g.Edges))
	}
	for _, e := range g.Edges {
		if e.Weight != 1 && e.Weight != -1 {
			t.Fatalf("weight %g not ±1", e.Weight)
		}
	}
	if _, err := SK(1, rng); err == nil {
		t.Error("want error for n=1")
	}
}

func TestRingAndComplete(t *testing.T) {
	r, err := Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != 5 {
		t.Fatalf("ring edges %d", len(r.Edges))
	}
	for _, d := range r.Degree() {
		if d != 2 {
			t.Fatalf("ring degree %d", d)
		}
	}
	k, err := Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Edges) != 6 {
		t.Fatalf("K4 edges %d", len(k.Edges))
	}
	if _, err := Ring(2); err == nil {
		t.Error("want error for tiny ring")
	}
	if _, err := Complete(1); err == nil {
		t.Error("want error for K1")
	}
}

func TestCutValue(t *testing.T) {
	g, _ := Ring(4)
	if c := g.CutValue([]int{0, 1, 0, 1}); c != 4 {
		t.Fatalf("alternating cut %g want 4", c)
	}
	if c := g.CutValue([]int{0, 0, 0, 0}); c != 0 {
		t.Fatalf("trivial cut %g want 0", c)
	}
}

func TestMaxCutBrute(t *testing.T) {
	g, _ := Ring(5)
	// Odd cycle: max cut = n-1 = 4.
	if c := g.MaxCutBrute(); c != 4 {
		t.Fatalf("C5 maxcut %g want 4", c)
	}
	k, _ := Complete(4)
	// K4 maxcut = 4 (2-2 split).
	if c := k.MaxCutBrute(); c != 4 {
		t.Fatalf("K4 maxcut %g want 4", c)
	}
}

// TestMaxCutUpperBound is a property test: the brute-force optimum never
// exceeds the total positive edge weight and is never negative for graphs
// with a nonnegative-cut option.
func TestMaxCutUpperBound(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(43))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + 2*rng.Intn(4)
		g, err := Random3Regular(n, rng)
		if err != nil {
			return false
		}
		best := g.MaxCutBrute()
		return best >= 0 && best <= float64(len(g.Edges))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCommonNeighbors(t *testing.T) {
	k, _ := Complete(4)
	for i, c := range k.CommonNeighbors() {
		if c != 2 {
			t.Fatalf("K4 edge %d common neighbors %d want 2", i, c)
		}
	}
	r, _ := Ring(6)
	for i, c := range r.CommonNeighbors() {
		if c != 0 {
			t.Fatalf("C6 edge %d common neighbors %d want 0", i, c)
		}
	}
}
