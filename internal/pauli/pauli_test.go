package pauli

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewString(t *testing.T) {
	p, err := NewString("IZXY")
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 4 {
		t.Fatalf("N=%d", p.N())
	}
	if p.At(0) != I || p.At(1) != Z || p.At(2) != X || p.At(3) != Y {
		t.Fatalf("ops wrong: %s", p)
	}
	if p.String() != "IZXY" {
		t.Fatalf("String=%q", p.String())
	}
	if _, err := NewString(""); err == nil {
		t.Error("want error for empty")
	}
	if _, err := NewString("IZQ"); err == nil {
		t.Error("want error for invalid op")
	}
}

func TestMustStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MustString("AB")
}

func TestMasksAndWeight(t *testing.T) {
	p := MustString("IZXY")
	if p.Weight() != 3 {
		t.Fatalf("weight %d", p.Weight())
	}
	if p.ZMask() != 0b1010 { // Z on qubit 1, Y on qubit 3
		t.Fatalf("zmask %b", p.ZMask())
	}
	if p.XMask() != 0b1100 { // X on qubit 2, Y on qubit 3
		t.Fatalf("xmask %b", p.XMask())
	}
	if p.IsDiagonal() {
		t.Fatal("IZXY is not diagonal")
	}
	if !MustString("IZZI").IsDiagonal() {
		t.Fatal("IZZI is diagonal")
	}
}

func TestConstructors(t *testing.T) {
	if Identity(3).String() != "III" {
		t.Error("Identity wrong")
	}
	if SingleZ(3, 1).String() != "IZI" {
		t.Error("SingleZ wrong")
	}
	if ZZ(4, 0, 3).String() != "ZIIZ" {
		t.Error("ZZ wrong")
	}
}

func TestHamiltonianAddMerges(t *testing.T) {
	h := NewHamiltonian(2)
	h.MustAdd(1.0, MustString("ZZ"))
	h.MustAdd(0.5, MustString("ZZ"))
	h.MustAdd(-0.25, MustString("XI"))
	if len(h.Terms()) != 2 {
		t.Fatalf("terms %d want 2 (merged)", len(h.Terms()))
	}
	if h.Terms()[0].Coeff != 1.5 {
		t.Fatalf("merged coeff %g", h.Terms()[0].Coeff)
	}
	if err := h.Add(1, MustString("ZZZ")); err == nil {
		t.Fatal("want error for dimension mismatch")
	}
}

func TestDiagonalValues(t *testing.T) {
	h := NewHamiltonian(2)
	h.MustAdd(1, MustString("ZZ"))
	vals, err := h.DiagonalValues()
	if err != nil {
		t.Fatal(err)
	}
	// |00>:+1 |01>:-1 |10>:-1 |11>:+1  (bit 0 = qubit 0)
	want := []float64{1, -1, -1, 1}
	for i, v := range vals {
		if v != want[i] {
			t.Fatalf("vals[%d]=%g want %g", i, v, want[i])
		}
	}
	h2 := NewHamiltonian(2)
	h2.MustAdd(1, MustString("XI"))
	if _, err := h2.DiagonalValues(); err == nil {
		t.Fatal("want error for off-diagonal")
	}
}

func TestEvalBitstringMatchesDiagonalValues(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	h := NewHamiltonian(4)
	h.MustAdd(0.5, Identity(4))
	for trial := 0; trial < 6; trial++ {
		a, b := rng.Intn(4), rng.Intn(4)
		if a == b {
			continue
		}
		h.MustAdd(rng.NormFloat64(), ZZ(4, min(a, b), max(a, b)))
	}
	vals, err := h.DiagonalValues()
	if err != nil {
		t.Fatal(err)
	}
	for bits := uint64(0); bits < 16; bits++ {
		v, err := h.EvalBitstring(bits)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-vals[bits]) > 1e-12 {
			t.Fatalf("bits=%b: %g vs %g", bits, v, vals[bits])
		}
	}
}

func TestIdentityCoeffAndBounds(t *testing.T) {
	h := NewHamiltonian(2)
	h.MustAdd(3, Identity(2))
	h.MustAdd(1, MustString("ZZ"))
	h.MustAdd(-2, MustString("XI"))
	if h.IdentityCoeff() != 3 {
		t.Fatalf("identity coeff %g", h.IdentityCoeff())
	}
	lo, hi := h.Bounds()
	if lo != 0 || hi != 6 {
		t.Fatalf("bounds [%g,%g] want [0,6]", lo, hi)
	}
}

// TestBoundsContainDiagonalSpectrum is a property test on diagonal
// Hamiltonians: every basis-state energy lies within Bounds().
func TestBoundsContainDiagonalSpectrum(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(52))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		h := NewHamiltonian(n)
		for k := 0; k < 5; k++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b {
				h.MustAdd(rng.NormFloat64(), SingleZ(n, a))
			} else {
				h.MustAdd(rng.NormFloat64(), ZZ(n, min(a, b), max(a, b)))
			}
		}
		vals, err := h.DiagonalValues()
		if err != nil {
			return false
		}
		lo, hi := h.Bounds()
		for _, v := range vals {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHamiltonianString(t *testing.T) {
	h := NewHamiltonian(2)
	h.MustAdd(1, MustString("ZZ"))
	h.MustAdd(-0.5, MustString("XI"))
	s := h.String()
	if !strings.Contains(s, "ZZ") || !strings.Contains(s, "XI") {
		t.Fatalf("String=%q", s)
	}
	if NewHamiltonian(1).String() != "0" {
		t.Error("empty Hamiltonian should render as 0")
	}
}

func TestParity(t *testing.T) {
	cases := map[uint64]bool{0: false, 1: true, 3: false, 7: true, 0xFF: false, 1 << 40: true}
	for x, want := range cases {
		if parity(x) != want {
			t.Errorf("parity(%x)=%v want %v", x, parity(x), want)
		}
	}
}

func TestDiagonalTableMatchesEvalBitstring(t *testing.T) {
	h := NewHamiltonian(5)
	h.MustAdd(0.5, Identity(5))
	h.MustAdd(-1.25, ZZ(5, 0, 3))
	h.MustAdd(2, ZZ(5, 1, 4))
	h.MustAdd(-0.75, SingleZ(5, 2))
	table, err := h.DiagonalTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 1<<5 {
		t.Fatalf("table length %d", len(table))
	}
	for b := range table {
		want, err := h.EvalBitstring(uint64(b))
		if err != nil {
			t.Fatal(err)
		}
		if table[b] != want {
			t.Fatalf("table[%d] = %v, EvalBitstring %v", b, table[b], want)
		}
	}
	hx := NewHamiltonian(2)
	hx.MustAdd(1, MustString("XI"))
	if _, err := hx.DiagonalTable(); err == nil {
		t.Fatal("want error for off-diagonal Hamiltonian")
	}
}
