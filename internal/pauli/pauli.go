// Package pauli implements Pauli-string observables and Hamiltonians
// (weighted sums of Pauli strings). VQA cost functions are expectation values
// of such Hamiltonians, so this package is the observable layer shared by the
// problem definitions and the simulators.
package pauli

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Op is a single-qubit Pauli operator.
type Op byte

// The four single-qubit Pauli operators.
const (
	I Op = 'I'
	X Op = 'X'
	Y Op = 'Y'
	Z Op = 'Z'
)

// String is a Pauli string over n qubits, stored as one Op per qubit with
// qubit 0 first (e.g. "ZZI" acts with Z on qubits 0 and 1 of a 3-qubit
// register).
type String struct {
	ops []Op
}

// NewString parses a Pauli string such as "IZZX". Only characters I, X, Y, Z
// are allowed.
func NewString(s string) (String, error) {
	if len(s) == 0 {
		return String{}, fmt.Errorf("pauli: empty string")
	}
	ops := make([]Op, len(s))
	for i := 0; i < len(s); i++ {
		switch c := Op(s[i]); c {
		case I, X, Y, Z:
			ops[i] = c
		default:
			return String{}, fmt.Errorf("pauli: invalid operator %q at position %d", s[i], i)
		}
	}
	return String{ops: ops}, nil
}

// MustString is NewString that panics on error, for literals in tests and
// problem tables.
func MustString(s string) String {
	p, err := NewString(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Identity returns the n-qubit identity string.
func Identity(n int) String {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = I
	}
	return String{ops: ops}
}

// SingleZ returns the n-qubit string with Z on qubit q.
func SingleZ(n, q int) String {
	s := Identity(n)
	s.ops[q] = Z
	return s
}

// ZZ returns the n-qubit string with Z on qubits a and b.
func ZZ(n, a, b int) String {
	s := Identity(n)
	s.ops[a] = Z
	s.ops[b] = Z
	return s
}

// N reports the number of qubits.
func (p String) N() int { return len(p.ops) }

// At returns the operator on qubit q.
func (p String) At(q int) Op { return p.ops[q] }

// Weight counts the non-identity positions.
func (p String) Weight() int {
	w := 0
	for _, o := range p.ops {
		if o != I {
			w++
		}
	}
	return w
}

// IsDiagonal reports whether the string contains only I and Z, i.e. is
// diagonal in the computational basis.
func (p String) IsDiagonal() bool {
	for _, o := range p.ops {
		if o == X || o == Y {
			return false
		}
	}
	return true
}

// ZMask returns a bitmask with bit q set when the string has Z (or Y) on
// qubit q; used by fast diagonal expectation paths.
func (p String) ZMask() uint64 {
	var m uint64
	for q, o := range p.ops {
		if o == Z || o == Y {
			m |= 1 << uint(q)
		}
	}
	return m
}

// XMask returns a bitmask with bit q set when the string has X (or Y) on
// qubit q.
func (p String) XMask() uint64 {
	var m uint64
	for q, o := range p.ops {
		if o == X || o == Y {
			m |= 1 << uint(q)
		}
	}
	return m
}

// String renders the Pauli string.
func (p String) String() string {
	b := make([]byte, len(p.ops))
	for i, o := range p.ops {
		b[i] = byte(o)
	}
	return string(b)
}

// Term is a weighted Pauli string in a Hamiltonian.
type Term struct {
	Coeff float64
	P     String
}

// Hamiltonian is a real-weighted sum of Pauli strings on a fixed qubit
// count, H = Σ_k c_k P_k.
type Hamiltonian struct {
	n     int
	terms []Term
}

// NewHamiltonian creates an empty Hamiltonian on n qubits.
func NewHamiltonian(n int) *Hamiltonian {
	if n <= 0 {
		panic(fmt.Sprintf("pauli: invalid qubit count %d", n))
	}
	return &Hamiltonian{n: n}
}

// N reports the qubit count.
func (h *Hamiltonian) N() int { return h.n }

// Terms returns the term list (do not mutate).
func (h *Hamiltonian) Terms() []Term { return h.terms }

// Add appends coeff*P, merging with an existing identical string if present.
func (h *Hamiltonian) Add(coeff float64, p String) error {
	if p.N() != h.n {
		return fmt.Errorf("pauli: term on %d qubits added to %d-qubit Hamiltonian", p.N(), h.n)
	}
	key := p.String()
	for i := range h.terms {
		if h.terms[i].P.String() == key {
			h.terms[i].Coeff += coeff
			return nil
		}
	}
	h.terms = append(h.terms, Term{Coeff: coeff, P: p})
	return nil
}

// MustAdd is Add that panics on error.
func (h *Hamiltonian) MustAdd(coeff float64, p String) {
	if err := h.Add(coeff, p); err != nil {
		panic(err)
	}
}

// IsDiagonal reports whether every term is diagonal.
func (h *Hamiltonian) IsDiagonal() bool {
	for _, t := range h.terms {
		if !t.P.IsDiagonal() {
			return false
		}
	}
	return true
}

// IdentityCoeff returns the coefficient of the identity term (the trace part
// of the Hamiltonian divided by 2^n), which noise channels leave untouched.
func (h *Hamiltonian) IdentityCoeff() float64 {
	var c float64
	for _, t := range h.terms {
		if t.P.Weight() == 0 {
			c += t.Coeff
		}
	}
	return c
}

// DiagonalValues evaluates a diagonal Hamiltonian on every computational
// basis state, returning a vector of length 2^n with entry b equal to
// <b|H|b>. It errors if the Hamiltonian has off-diagonal terms.
func (h *Hamiltonian) DiagonalValues() ([]float64, error) {
	if !h.IsDiagonal() {
		return nil, fmt.Errorf("pauli: Hamiltonian has off-diagonal terms")
	}
	dim := 1 << uint(h.n)
	out := make([]float64, dim)
	for _, t := range h.terms {
		mask := t.P.ZMask()
		for b := 0; b < dim; b++ {
			if parity(uint64(b) & mask) {
				out[b] -= t.Coeff
			} else {
				out[b] += t.Coeff
			}
		}
	}
	return out, nil
}

// DiagonalTable is DiagonalValues under the name the simulator's fused
// expectation path uses: the precomputed 2^n energy vector that turns a
// per-term O(terms * 2^n) expectation into a single O(2^n) pass (see
// qsim.State.ExpectationDiagonal). Entry b accumulates terms in term order,
// exactly like EvalBitstring, so the two agree bit-for-bit. The table is
// worth caching — problem.Problem memoizes one per Hamiltonian.
func (h *Hamiltonian) DiagonalTable() ([]float64, error) {
	return h.DiagonalValues()
}

// EvalBitstring evaluates a diagonal Hamiltonian on a single basis state
// given as a bitmask (bit q = qubit q).
func (h *Hamiltonian) EvalBitstring(b uint64) (float64, error) {
	if !h.IsDiagonal() {
		return 0, fmt.Errorf("pauli: Hamiltonian has off-diagonal terms")
	}
	var v float64
	for _, t := range h.terms {
		if parity(b & t.P.ZMask()) {
			v -= t.Coeff
		} else {
			v += t.Coeff
		}
	}
	return v, nil
}

// Bounds returns a crude interval [lo, hi] containing all eigenvalues:
// identity coefficient ± sum of |coeff| of non-identity terms.
func (h *Hamiltonian) Bounds() (lo, hi float64) {
	id := h.IdentityCoeff()
	var r float64
	for _, t := range h.terms {
		if t.P.Weight() > 0 {
			r += math.Abs(t.Coeff)
		}
	}
	return id - r, id + r
}

// String renders the Hamiltonian in a stable, human-readable order.
func (h *Hamiltonian) String() string {
	parts := make([]string, 0, len(h.terms))
	terms := append([]Term(nil), h.terms...)
	sort.Slice(terms, func(i, j int) bool { return terms[i].P.String() < terms[j].P.String() })
	for _, t := range terms {
		parts = append(parts, fmt.Sprintf("%+.6g*%s", t.Coeff, t.P))
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " ")
}

// parity reports whether x has odd population count, via the hardware
// popcount instruction rather than a hand-rolled xor-fold chain.
func parity(x uint64) bool {
	return bits.OnesCount64(x)&1 == 1
}
