package pauli

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulSingleTable(t *testing.T) {
	cases := []struct {
		a, b Op
		out  Op
		iPow int
	}{
		{I, X, X, 0}, {X, I, X, 0}, {X, X, I, 0},
		{X, Y, Z, 1}, {Y, X, Z, 3},
		{Y, Z, X, 1}, {Z, Y, X, 3},
		{Z, X, Y, 1}, {X, Z, Y, 3},
		{Z, Z, I, 0}, {Y, Y, I, 0},
	}
	for _, tc := range cases {
		out, k := mulSingle(tc.a, tc.b)
		if out != tc.out || k != tc.iPow {
			t.Errorf("%c*%c = (%c, i^%d), want (%c, i^%d)", tc.a, tc.b, out, k, tc.out, tc.iPow)
		}
	}
}

func TestMulStrings(t *testing.T) {
	p := MustString("XYI")
	q := MustString("YXZ")
	out, k, err := Mul(p, q)
	if err != nil {
		t.Fatal(err)
	}
	// XY = iZ, YX = -iZ, IZ = Z: phases i * -i = 1, k=0; result ZZZ.
	if out.String() != "ZZZ" || k != 0 {
		t.Fatalf("got (%s, i^%d), want (ZZZ, i^0)", out, k)
	}
	if _, _, err := Mul(MustString("X"), MustString("XX")); err == nil {
		t.Fatal("want dimension error")
	}
}

// TestMulInvolution is a property test: every Pauli string squares to
// identity with phase 1.
func TestMulInvolution(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(171))}
	ops := []byte{'I', 'X', 'Y', 'Z'}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = ops[rng.Intn(4)]
		}
		p := MustString(string(b))
		out, k, err := Mul(p, p)
		if err != nil {
			return false
		}
		return out.Weight() == 0 && k == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMulAssociativePhases is a property test: (pq)r and p(qr) give the same
// operator and phase.
func TestMulAssociativePhases(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(172))}
	ops := []byte{'I', 'X', 'Y', 'Z'}
	mk := func(rng *rand.Rand, n int) String {
		b := make([]byte, n)
		for i := range b {
			b[i] = ops[rng.Intn(4)]
		}
		return MustString(string(b))
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		p, q, r := mk(rng, n), mk(rng, n), mk(rng, n)
		pq, k1, _ := Mul(p, q)
		left, k2, _ := Mul(pq, r)
		qr, k3, _ := Mul(q, r)
		right, k4, _ := Mul(p, qr)
		return left.String() == right.String() && (k1+k2)%4 == (k3+k4)%4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCommutes(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"XX", "ZZ", true},  // anticommute on both positions -> commute
		{"XI", "ZI", false}, // anticommute on one position
		{"XI", "IZ", true},  // disjoint supports
		{"ZZ", "ZI", true},
		{"XYZ", "YXZ", true}, // two anticommuting positions
	}
	for _, tc := range cases {
		got, err := Commutes(MustString(tc.p), MustString(tc.q))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Commutes(%s, %s) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
	if _, err := Commutes(MustString("X"), MustString("XX")); err == nil {
		t.Fatal("want dimension error")
	}
}

// TestCommutesMatchesMulPhases: p and q commute iff pq and qp have equal
// phase exponent.
func TestCommutesMatchesMulPhases(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(173))}
	ops := []byte{'I', 'X', 'Y', 'Z'}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		b1 := make([]byte, n)
		b2 := make([]byte, n)
		for i := range b1 {
			b1[i] = ops[rng.Intn(4)]
			b2[i] = ops[rng.Intn(4)]
		}
		p, q := MustString(string(b1)), MustString(string(b2))
		c, err := Commutes(p, q)
		if err != nil {
			return false
		}
		_, k1, _ := Mul(p, q)
		_, k2, _ := Mul(q, p)
		if c {
			return k1 == k2
		}
		return (k1+2)%4 == k2 // anticommuting: phases differ by i^2 = -1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCommutesWithAll(t *testing.T) {
	h := NewHamiltonian(2)
	h.MustAdd(1, MustString("ZZ"))
	h.MustAdd(0.5, MustString("ZI"))
	ok, err := CommutesWithAll(MustString("ZZ"), h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ZZ should commute with a diagonal Hamiltonian")
	}
	ok, err = CommutesWithAll(MustString("XI"), h)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("XI anticommutes with ZI")
	}
}

func TestConjugate(t *testing.T) {
	sign, err := Conjugate(MustString("Z"), MustString("X"))
	if err != nil {
		t.Fatal(err)
	}
	if sign != -1 {
		t.Fatalf("XZX should flip Z: sign %d", sign)
	}
	sign, err = Conjugate(MustString("Z"), MustString("Z"))
	if err != nil {
		t.Fatal(err)
	}
	if sign != 1 {
		t.Fatalf("ZZZ = Z: sign %d", sign)
	}
	if _, err := Conjugate(MustString("Z"), MustString("ZZ")); err == nil {
		t.Fatal("want dimension error")
	}
}
