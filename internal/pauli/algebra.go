package pauli

import "fmt"

// mulTable gives, for a pair of single-qubit Paulis (a, b), the product
// operator and its phase exponent k with a*b = i^k * out.
func mulSingle(a, b Op) (out Op, iPow int) {
	if a == I {
		return b, 0
	}
	if b == I {
		return a, 0
	}
	if a == b {
		return I, 0
	}
	// XY=iZ, YZ=iX, ZX=iY; reversed order picks up -i (k=3).
	switch {
	case a == X && b == Y:
		return Z, 1
	case a == Y && b == Z:
		return X, 1
	case a == Z && b == X:
		return Y, 1
	case a == Y && b == X:
		return Z, 3
	case a == Z && b == Y:
		return X, 3
	default: // a == X && b == Z
		return Y, 3
	}
}

// Mul multiplies two Pauli strings: p*q = i^k * out. The phase exponent k is
// returned modulo 4.
func Mul(p, q String) (out String, iPow int, err error) {
	if p.N() != q.N() {
		return String{}, 0, fmt.Errorf("pauli: product of %d- and %d-qubit strings", p.N(), q.N())
	}
	ops := make([]Op, p.N())
	k := 0
	for i := 0; i < p.N(); i++ {
		o, ki := mulSingle(p.At(i), q.At(i))
		ops[i] = o
		k += ki
	}
	return String{ops: ops}, k % 4, nil
}

// Commutes reports whether two Pauli strings commute. Two strings commute
// exactly when they anticommute on an even number of qubit positions.
func Commutes(p, q String) (bool, error) {
	if p.N() != q.N() {
		return false, fmt.Errorf("pauli: commutator of %d- and %d-qubit strings", p.N(), q.N())
	}
	anti := 0
	for i := 0; i < p.N(); i++ {
		a, b := p.At(i), q.At(i)
		if a != I && b != I && a != b {
			anti++
		}
	}
	return anti%2 == 0, nil
}

// CommutesWithAll reports whether p commutes with every term of h — the
// symmetry check used by symmetry-verification style mitigation.
func CommutesWithAll(p String, h *Hamiltonian) (bool, error) {
	for _, t := range h.Terms() {
		ok, err := Commutes(p, t.P)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Conjugate computes q P q^dagger for Pauli q (up to the global sign):
// since q P q = ±P' with P' = qPq having the same support pattern as P when
// q is Pauli, the result is P itself with a sign = +1 if [p,q]=0 else -1.
// It returns the sign.
func Conjugate(p, q String) (sign int, err error) {
	ok, err := Commutes(p, q)
	if err != nil {
		return 0, err
	}
	if ok {
		return 1, nil
	}
	return -1, nil
}
