// Package fleet schedules landscape sampling across a heterogeneous
// multi-QPU fleet and streams the results into an eager, incremental
// reconstruction — the end-to-end overlap of phase 2 (circuit execution)
// and phase 3 (reconstruction) that the paper's Section 5 speedup rests on.
//
// Three ideas compose:
//
//   - Adaptive batch sizing. qpu.RunBatched amortizes one queue delay per
//     batch but takes the batch size as a caller-fixed argument. The fleet
//     scheduler instead learns a per-device size online: every completed
//     batch reports its queue/execution decomposition (the split real cloud
//     QPUs expose through queue timestamps), the scheduler maintains an
//     EWMA of the queue/exec-per-job ratio, and the next batch for that
//     device carries Aggressiveness×ratio jobs — enough to amortize the
//     queue delay without turning the device into a straggler.
//
//   - Streaming eager reconstruction. Completed batches feed a
//     core.Incremental accumulator; as sample coverage crosses the
//     configured thresholds the compressed-sensing solve is re-triggered,
//     warm-started from the previous solution, and a batch-boundary eager
//     cut (qpu.EagerCutBatched's policy) drops tail-latency batches
//     entirely.
//
//   - A shared execution cache. With Options.Cache set, sampled points that
//     some earlier run already measured are served instantly — before any
//     device pays queue latency — and fresh measurements are stored for the
//     next run, across every device in the fleet.
//
// Scheduling happens in virtual time (latencies are drawn from the seeded
// per-device models; values are real evaluations), so experiments measure
// fleet dynamics deterministically and instantly. Runs are bit-reproducible
// for a fixed seed regardless of Options.Workers: each device draws from
// its own RNG stream, the dispatch plan is computed serially, and completed
// batches merge in virtual-completion order.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/exec"
	"repro/internal/landscape"
	"repro/internal/qpu"
)

// Progress is a point-in-time view of a streaming run, delivered to
// Options.OnProgress after every batch merged and every interim solve.
type Progress struct {
	// SamplesDone / SamplesTotal count measurements merged into the
	// reconstruction accumulator versus the run's kept total.
	SamplesDone, SamplesTotal int
	// VirtualTime is the completion time of the latest merged batch.
	VirtualTime float64
	// Solves counts completed reconstructions (interim and final).
	Solves int
	// Residual is the last completed solve's residual (0 before the
	// first).
	Residual float64
	// BatchSizes are the per-device learned batch sizes as of the latest
	// merged batch.
	BatchSizes []int
	// Quarantined flags the devices that were benched as of the latest
	// merged batch (risk-aware runs; all false otherwise).
	Quarantined []bool
	// Retries and QuarantineEvents are the run's planned totals: failed
	// dispatches that were retried or re-dispatched, and quarantine
	// transitions (bench + re-admit).
	Retries, QuarantineEvents int
}

// Options configures a Scheduler.
type Options struct {
	// Seed drives the per-device latency streams and the serial baseline.
	// Runs are bit-reproducible given (seed, call sequence), independent
	// of Workers.
	Seed int64
	// InitialBatch is the batch size every device starts from, before any
	// latency has been observed (default 4).
	InitialBatch int
	// MinBatch and MaxBatch clamp the learned size (defaults 1 and 256).
	MinBatch, MaxBatch int
	// FixedBatch, when positive, disables adaptation and uses this size
	// on every device — the fixed-batching baseline the experiments
	// compare against.
	FixedBatch int
	// Aggressiveness scales the learned size: a device whose EWMA
	// queue/exec-per-job ratio is r gets batches of Aggressiveness×r
	// jobs, bounding the amortization overhead to 1/Aggressiveness of
	// execution time (default 2).
	Aggressiveness float64
	// Alpha is the EWMA smoothing factor over completed-batch
	// observations, in (0,1] (default 0.4).
	Alpha float64
	// Workers bounds concurrent batch evaluations during the streaming
	// phase (0 = GOMAXPROCS). Results are bit-identical for every value.
	Workers int
	// Cache optionally memoizes evaluations across the whole fleet:
	// cached points are served at virtual time zero without occupying a
	// device, and fresh measurements are stored for later runs.
	Cache *exec.Cache
	// Thresholds are the coverage fractions (of the kept samples, in
	// (0,1), ascending) at which interim reconstructions are triggered
	// during streaming. Empty means no interim solves — only the final
	// one.
	Thresholds []float64
	// KeepFraction enables the eager cut: a value q in (0,1) keeps whole
	// batches in completion order until at least q of the samples are
	// covered and drops the rest, trading a small sample loss for the
	// tail-latency win. 0 or 1 waits for everything.
	KeepFraction float64
	// OnProgress, when set, is called from the streaming goroutine after
	// every merged batch and interim solve.
	OnProgress func(Progress)

	// RiskAware enables the robustness policy layer on top of adaptive
	// scheduling: per-device tail estimators cap batch sizes so expected
	// tail exposure per batch stays bounded, failed batches retry with
	// exponential backoff in virtual time before being re-dispatched to a
	// different device, and a device whose failures cross the quarantine
	// thresholds is benched and periodically re-probed with a single small
	// batch. Off by default — the tail-blind adaptive scheduler is the
	// baseline the adversarial experiments compare against.
	RiskAware bool
	// TailBudget bounds a batch's expected tail exposure — learned tail
	// probability × (magnitude−1) × batch latency — to TailBudget× the
	// fleet's typical non-tail batch duration (default 6). Smaller is more
	// conservative. RiskAware only.
	TailBudget float64
	// MaxRetries bounds in-place retries of a failed batch on one device
	// before it is re-dispatched to a different device (default 1).
	// RiskAware only.
	MaxRetries int
	// RetryBackoff is the initial virtual-time backoff in seconds after a
	// failed batch, doubling per consecutive in-place retry (default 15).
	// RiskAware only.
	RetryBackoff float64
	// QuarantineAfter benches a device after this many consecutive failed
	// dispatches (default 3). RiskAware only.
	QuarantineAfter int
	// QuarantineFailRate benches a device whose EWMA dispatch-failure rate
	// reaches this threshold (default 0.9). RiskAware only.
	QuarantineFailRate float64
	// QuarantineTailRate, when positive, benches a device whose EWMA
	// tail-event rate reaches this threshold. Default 0 (disabled): tail-
	// heavy devices are throttled through batch caps and dispatch
	// penalties instead, since a probe batch succeeding says nothing about
	// the tail having passed. RiskAware only.
	QuarantineTailRate float64
	// ProbeBackoff is the virtual-time interval in seconds at which a
	// benched device is re-probed with a single small batch (default 60).
	// RiskAware only.
	ProbeBackoff float64
}

func (o Options) withDefaults() (Options, error) {
	if o.InitialBatch <= 0 {
		o.InitialBatch = 4
	}
	if o.MinBatch <= 0 {
		o.MinBatch = 1
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxBatch < o.MinBatch {
		return o, fmt.Errorf("fleet: max batch %d below min batch %d", o.MaxBatch, o.MinBatch)
	}
	if o.FixedBatch < 0 {
		return o, fmt.Errorf("fleet: negative fixed batch %d", o.FixedBatch)
	}
	if o.Aggressiveness < 0 || math.IsNaN(o.Aggressiveness) {
		return o, fmt.Errorf("fleet: aggressiveness %g is not a non-negative number", o.Aggressiveness)
	}
	if o.Aggressiveness == 0 {
		o.Aggressiveness = 2
	}
	if o.Alpha < 0 || o.Alpha > 1 || math.IsNaN(o.Alpha) {
		return o, fmt.Errorf("fleet: EWMA alpha %g out of [0,1]", o.Alpha)
	}
	if o.Alpha == 0 {
		o.Alpha = 0.4
	}
	if o.KeepFraction < 0 || o.KeepFraction > 1 || math.IsNaN(o.KeepFraction) {
		return o, fmt.Errorf("fleet: keep fraction %g out of [0,1]", o.KeepFraction)
	}
	if len(o.Thresholds) > 0 {
		ts := append([]float64(nil), o.Thresholds...)
		sort.Float64s(ts)
		for _, th := range ts {
			if !(th > 0 && th < 1) {
				return o, fmt.Errorf("fleet: coverage threshold %g out of (0,1)", th)
			}
		}
		o.Thresholds = ts
	}
	if o.TailBudget < 0 || math.IsNaN(o.TailBudget) {
		return o, fmt.Errorf("fleet: tail budget %g is not a non-negative number", o.TailBudget)
	}
	if o.MaxRetries < 0 {
		return o, fmt.Errorf("fleet: negative max retries %d", o.MaxRetries)
	}
	if o.RetryBackoff < 0 || math.IsNaN(o.RetryBackoff) {
		return o, fmt.Errorf("fleet: retry backoff %g is not a non-negative number", o.RetryBackoff)
	}
	if o.QuarantineAfter < 0 {
		return o, fmt.Errorf("fleet: negative quarantine-after %d", o.QuarantineAfter)
	}
	if o.QuarantineFailRate < 0 || o.QuarantineFailRate > 1 || math.IsNaN(o.QuarantineFailRate) {
		return o, fmt.Errorf("fleet: quarantine failure rate %g out of [0,1]", o.QuarantineFailRate)
	}
	if o.QuarantineTailRate < 0 || o.QuarantineTailRate > 1 || math.IsNaN(o.QuarantineTailRate) {
		return o, fmt.Errorf("fleet: quarantine tail rate %g out of [0,1]", o.QuarantineTailRate)
	}
	if o.ProbeBackoff < 0 || math.IsNaN(o.ProbeBackoff) {
		return o, fmt.Errorf("fleet: probe backoff %g is not a non-negative number", o.ProbeBackoff)
	}
	if o.TailBudget == 0 {
		o.TailBudget = 6
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 1
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 15
	}
	if o.QuarantineAfter == 0 {
		o.QuarantineAfter = 3
	}
	if o.QuarantineFailRate == 0 {
		o.QuarantineFailRate = 0.9
	}
	if o.ProbeBackoff == 0 {
		o.ProbeBackoff = 60
	}
	return o, nil
}

// devState is one device's learned scheduling state.
type devState struct {
	rng *rand.Rand
	// queueEst and execEst are EWMAs of the observed queue delay per
	// batch and execution time per job; their ratio drives batch sizing
	// and their sum drives earliest-completion-time dispatch.
	queueEst, execEst float64
	observed          bool
	// batch is the size the next dispatch to this device will carry.
	batch   int
	batches int
	jobs    int

	// tailProb and tailMag are EWMAs of the tail behavior observed on this
	// device: the probability a batch's latency blows past its expectation
	// and the magnitude (observed/expected) when it does. Always tracked;
	// they only influence scheduling under Options.RiskAware, and only
	// once the evidence is sustained (see tailSignificant).
	tailProb, tailMag float64
	tailSeen          bool
	tailCount         int
	// failRate is an EWMA over dispatch outcomes (1 = failed), consecFails
	// the current consecutive-failure streak, fails the total count.
	failRate    float64
	consecFails int
	fails       int
	// quarantined marks the device benched; probeAt is the virtual time of
	// its next probe, probeWait the probe interval, and quarantines counts
	// how many times it has been benched.
	quarantined bool
	probeAt     float64
	probeWait   float64
	quarantines int
}

// Scheduler dispatches sampled grid points across a device fleet with
// adaptive per-device batch sizes.
//
// Like qpu.Executor, the latency streams are persistent: successive runs on
// one scheduler continue the same seeded per-device RNGs (fresh queue
// dynamics every run, the whole sequence deterministic given the seed), and
// the learned batch sizes carry across runs too — a long-lived scheduler
// keeps its calibration. Runs on one scheduler are serialized during their
// virtual-time planning phase; use separate schedulers for independent
// concurrent fleets.
type Scheduler struct {
	devices []qpu.Device
	opt     Options

	mu        sync.Mutex
	states    []devState
	serialRng *rand.Rand
	// meanBatch is an EWMA of non-tail batch durations across the whole
	// fleet — the "typical batch" yardstick the risk-aware tail caps are
	// expressed against.
	meanBatch float64
	meanSeen  bool
}

// New builds a scheduler over the given devices.
func New(opt Options, devices ...qpu.Device) (*Scheduler, error) {
	if len(devices) == 0 {
		return nil, errors.New("fleet: no devices")
	}
	for _, d := range devices {
		if d.Eval == nil {
			return nil, fmt.Errorf("fleet: device %q has no evaluator", d.Name)
		}
		if err := d.Latency.Validate(); err != nil {
			return nil, err
		}
		if d.FailureProb < 0 || d.FailureProb >= 1 {
			return nil, fmt.Errorf("fleet: device %q failure probability %g out of [0,1)", d.Name, d.FailureProb)
		}
	}
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		devices:   devices,
		opt:       opt,
		states:    make([]devState, len(devices)),
		serialRng: rand.New(rand.NewSource(opt.Seed - 1)),
	}
	first := opt.InitialBatch
	if opt.FixedBatch > 0 {
		first = opt.FixedBatch
	}
	for d := range s.states {
		// Distinct odd-stride offsets keep the per-device streams
		// independent of each other and of the serial baseline.
		s.states[d] = devState{
			rng:   rand.New(rand.NewSource(opt.Seed + int64(d+1)*0x9E3779B9)),
			batch: first,
		}
	}
	return s, nil
}

// DeviceState is one device's learned scheduling state, for inspection and
// metrics export.
type DeviceState struct {
	// Name is the device name.
	Name string
	// BatchSize is the size the next batch for this device would carry.
	BatchSize int
	// Ratio is the learned EWMA queue/exec-per-job ratio (0 before any
	// observation).
	Ratio float64
	// Batches and Jobs count successful dispatches so far.
	Batches, Jobs int
	// TailProb and TailMag are the learned tail EWMAs: the probability a
	// batch blows past its expected latency and the observed/expected
	// magnitude when it does (both 0 before any tail event).
	TailProb, TailMag float64
	// FailRate is the EWMA dispatch-failure rate; Fails the total count of
	// failed dispatches.
	FailRate float64
	Fails    int
	// Quarantined reports whether the device is currently benched;
	// Quarantines counts how many times it has been benched.
	Quarantined bool
	Quarantines int
}

// States returns the per-device learned state.
func (s *Scheduler) States() []DeviceState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeviceState, len(s.devices))
	for d := range s.devices {
		st := &s.states[d]
		out[d] = DeviceState{
			Name:        s.devices[d].Name,
			BatchSize:   st.batch,
			Ratio:       st.ratio(),
			Batches:     st.batches,
			Jobs:        st.jobs,
			TailProb:    st.tailProb,
			TailMag:     st.tailMag,
			FailRate:    st.failRate,
			Fails:       st.fails,
			Quarantined: st.quarantined,
			Quarantines: st.quarantines,
		}
	}
	return out
}

// tailDetectFactor is how far past its expected latency a batch must land
// to count as a tail event for the risk estimators.
const tailDetectFactor = 3

// observe folds one completed batch's latency decomposition into the
// device's EWMAs and recomputes its next batch size. It is called for every
// dispatch, failed ones included — failed batches still report their timing,
// and the learner uses every observation.
func (s *Scheduler) observe(st *devState, size int, queue, execT float64) {
	if s.opt.FixedBatch > 0 {
		return
	}
	perJob := execT / float64(size)
	a := s.opt.Alpha
	// Tail detection compares the observation against the pre-update
	// expectation; magnitude is the overshoot ratio. The fleet-wide typical
	// batch duration excludes tail events so the yardstick is not dragged
	// by the excursions it is meant to bound.
	if st.observed {
		expected := st.queueEst + float64(size)*st.execEst
		obs := queue + execT
		if expected > 0 {
			tail := obs > tailDetectFactor*expected
			ind := 0.0
			if tail {
				ind = 1
				st.tailCount++
				mag := obs / expected
				if !st.tailSeen {
					st.tailMag, st.tailSeen = mag, true
				} else {
					st.tailMag = (1-a)*st.tailMag + a*mag
				}
			} else if s.meanSeen {
				s.meanBatch = (1-a)*s.meanBatch + a*obs
			} else {
				s.meanBatch, s.meanSeen = obs, true
			}
			st.tailProb = (1-a)*st.tailProb + a*ind
		}
	}
	if st.observed {
		st.queueEst = (1-a)*st.queueEst + a*queue
		st.execEst = (1-a)*st.execEst + a*perJob
	} else {
		st.queueEst, st.execEst, st.observed = queue, perJob, true
	}
	if st.execEst <= 0 {
		// A queue-only device (Exec = 0): amortize maximally.
		st.batch = s.opt.MaxBatch
		return
	}
	next := int(math.Round(s.opt.Aggressiveness * st.queueEst / st.execEst))
	if next < s.opt.MinBatch {
		next = s.opt.MinBatch
	}
	if next > s.opt.MaxBatch {
		next = s.opt.MaxBatch
	}
	st.batch = next
}

// ratio returns the learned queue/exec-per-job ratio (0 before any
// observation, +Inf-free: a queue-only device reports MaxBatch-driving 0
// exec as a very large ratio capped for display).
func (st *devState) ratio() float64 {
	if !st.observed || st.execEst <= 0 {
		if st.observed {
			return math.Inf(1)
		}
		return 0
	}
	return st.queueEst / st.execEst
}

// group is one planned batch: the qpu-level record plus the grid indices it
// carries, the values once evaluated, and a snapshot of the learned batch
// sizes and quarantine state at its completion.
type group struct {
	qpu.BatchGroup
	indices []int
	values  []float64
	sizes   []int
	quar    []bool
}

// retryEvent records one failed dispatch during planning: the device that
// failed and the virtual time the failure was observed. Traced as
// instantaneous markers so a span tree shows where a plan lost time.
type retryEvent struct {
	dev  int
	time float64
}

// planOutcome is everything the virtual-time scheduling pass produces.
type planOutcome struct {
	groups      []group
	serial      float64
	makespan    float64
	retries     int
	retryEvents []retryEvent
	events      []QuarantineEvent
	cacheHits   int
}

// plan runs the virtual-time scheduling simulation: cache probe, adaptive
// list scheduling with failure rescheduling (risk-aware retry/backoff and
// quarantine when Options.RiskAware), and the single-device serial baseline.
// It holds the scheduler lock (the RNG streams and learned sizes are shared
// across runs) and performs no circuit evaluation.
func (s *Scheduler) plan(g *landscape.Grid, indices []int, cache *exec.Cache) (*planOutcome, error) {
	if len(indices) == 0 {
		return nil, errors.New("fleet: no jobs")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &planOutcome{}

	// Serial baseline: the shared one-device no-batching baseline
	// qpu.RunBatched also reports, so Speedup stays comparable.
	const maxAttempts = 8
	// The consecutive-failure budget for one batch scales with fleet size
	// (each failure already moves the work to a different device), and the
	// risk-aware policy gets extra room: its backoff and probe waits mean
	// attempts are spread over time and eventual success is the expected
	// outcome, not a lucky draw.
	budget := maxAttempts
	if n := len(s.devices); n > 1 {
		budget *= n
	}
	if s.opt.RiskAware {
		budget *= 4
	}
	out.serial = qpu.SerialBaseline(s.devices[0], s.serialRng, len(indices))

	// Cache probe: points an earlier run already measured are served at
	// virtual time zero, before any device pays queue latency. Lookup
	// counts hits and misses exactly once per point.
	pending := indices
	if cache != nil {
		var hitIdx []int
		var hitVals []float64
		misses := make([]int, 0, len(indices))
		for _, gi := range indices {
			if v, ok := cache.Lookup(g.Point(gi)); ok {
				hitIdx = append(hitIdx, gi)
				hitVals = append(hitVals, v)
			} else {
				misses = append(misses, gi)
			}
		}
		if len(hitIdx) > 0 {
			out.cacheHits = len(hitIdx)
			out.groups = append(out.groups, group{
				BatchGroup: qpu.BatchGroup{Device: -1, Size: len(hitIdx)},
				indices:    hitIdx,
				values:     hitVals,
				sizes:      s.sizesLocked(),
				quar:       s.quarLocked(),
			})
		}
		pending = misses
	}

	free := make([]float64, len(s.devices))
	// failStreak counts consecutive failed dispatches across the whole plan
	// (risk-aware runs re-queue failed remnants rather than re-dispatching
	// them as a unit, so the give-up budget must span batches).
	failStreak := 0
	for head := 0; head < len(pending); {
		remaining := len(pending) - head
		dev := s.pickLocked(free, 0, -1, remaining, 0)
		k := s.batchFor(dev, remaining)
		batch := pending[head : head+k]
		head += k

		avail := 0.0
		exclude := -1
		onDev := 0
		backoff := s.opt.RetryBackoff
		for attempt := 0; ; attempt++ {
			if attempt > 0 && (!s.opt.RiskAware || onDev == 0) {
				// The failed batch keeps its size; re-pick by expected
				// completion for exactly k jobs. (Risk-aware in-place
				// retries skip the re-pick and stay on the device.)
				dev = s.pickLocked(free, avail, exclude, remaining, k)
			}
			st := &s.states[dev]
			start := free[dev]
			if avail > start {
				start = avail
			}
			if s.opt.RiskAware && st.quarantined && st.probeAt > start {
				// A benched device only sees work again at its probe time.
				start = st.probeAt
			}
			cond := s.devices[dev].ConditionAt(start)
			queue, execT := cond.Latency.SampleBatchParts(st.rng, k)
			done := start + queue + execT
			free[dev] = done
			s.observe(st, k, queue, execT)
			failed := cond.Down || (cond.FailureProb > 0 && st.rng.Float64() < cond.FailureProb)
			a := s.opt.Alpha
			if failed {
				st.failRate = (1-a)*st.failRate + a
				st.fails++
				st.consecFails++
				failStreak++
				if !s.opt.RiskAware {
					if attempt+1 >= budget {
						return nil, fmt.Errorf("fleet: batch of %d jobs failed %d times in a row", k, budget)
					}
					out.retries++
					out.retryEvents = append(out.retryEvents, retryEvent{dev: dev, time: done})
					exclude = dev
					avail = done
					continue
				}
				if failStreak >= budget {
					return nil, fmt.Errorf("fleet: batch of %d jobs failed %d times in a row", k, budget)
				}
				out.retries++
				out.retryEvents = append(out.retryEvents, retryEvent{dev: dev, time: done})
				if st.quarantined {
					// A failed probe schedules the next one a fixed backoff
					// out. Probes are cheap — one MinBatch dispatch on the
					// benched device's own timeline — while every extra
					// second of bench time on a device that has recovered
					// costs real throughput, so the interval does not
					// escalate.
					st.probeAt = done + st.probeWait
				} else if st.consecFails >= s.opt.QuarantineAfter || st.failRate >= s.opt.QuarantineFailRate {
					s.benchLocked(out, dev, done, "failures")
				}
				if !st.quarantined && onDev < s.opt.MaxRetries && st.consecFails <= 1 {
					// Bounded in-place retry with exponential backoff — but
					// only against a device whose last outcome before this
					// batch was a success. A consecutive-failure streak means
					// the fault is persistent (a storm window, a dropout),
					// and waiting out a backoff to retry the same device
					// just pays a second failed dispatch.
					onDev++
					avail = done + backoff
					backoff *= 2
					continue
				}
				// Retries exhausted (or the device was just benched): the
				// remnant returns to the pending queue and re-batches at
				// whatever size its next device has learned — a failed
				// mega-batch from a fast device must not land on a slower
				// one (or on a benched one as an oversized "probe") as a
				// single unit.
				head -= k
				break
			}
			failStreak = 0
			st.failRate = (1 - a) * st.failRate
			st.consecFails = 0
			if s.opt.RiskAware && st.quarantined {
				// A successful probe re-admits the device.
				st.quarantined = false
				st.probeWait = 0
				out.events = append(out.events, QuarantineEvent{
					Device: dev, Name: s.devices[dev].Name, Time: done, Reason: "probe-succeeded",
				})
			} else if s.opt.RiskAware && s.opt.QuarantineTailRate > 0 &&
				st.tailSeen && st.tailProb >= s.opt.QuarantineTailRate {
				s.benchLocked(out, dev, done, "tail-rate")
			}
			st.batches++
			st.jobs += k
			out.groups = append(out.groups, group{
				BatchGroup: qpu.BatchGroup{
					Device: dev, Size: k, Queue: queue, Exec: execT,
					Start: start, Done: done,
				},
				indices: batch,
				sizes:   s.sizesLocked(),
				quar:    s.quarLocked(),
			})
			break
		}
	}

	sort.SliceStable(out.groups, func(i, j int) bool { return out.groups[i].Done < out.groups[j].Done })
	for _, g := range out.groups {
		if g.Done > out.makespan {
			out.makespan = g.Done
		}
	}
	return out, nil
}

// sizesLocked snapshots the current per-device batch sizes.
func (s *Scheduler) sizesLocked() []int {
	sizes := make([]int, len(s.states))
	for d := range s.states {
		sizes[d] = s.states[d].batch
	}
	return sizes
}

// batchFor resolves the batch size device d would carry with remaining jobs
// left: the learned (or fixed) size, tapered in adaptive mode so no device
// takes more than its learned-throughput share of what is left — the
// guided-self-scheduling rule, weighted by observed speed, that keeps the
// steady-state size from turning the end of a run into a single-device
// straggler (or a huge final batch into a tail-latency hostage) without
// starving the fastest device of its amortization.
func (s *Scheduler) batchFor(d, remaining int) int {
	if s.opt.RiskAware && s.states[d].quarantined {
		// A benched device is only probed with a single small batch.
		k := s.opt.MinBatch
		if k > remaining {
			k = remaining
		}
		return k
	}
	k := s.states[d].batch
	if s.opt.FixedBatch == 0 {
		if s.opt.RiskAware {
			if cap := s.riskCapLocked(d); k > cap {
				k = cap
			}
		}
		if share := int(math.Ceil(s.shareLocked(d) * float64(remaining))); k > share {
			k = share
		}
		if k < s.opt.MinBatch {
			k = s.opt.MinBatch
		}
	}
	if k > remaining {
		k = remaining
	}
	return k
}

// shareLocked estimates device d's share of the fleet's throughput from the
// learned per-job times (execution plus amortized queue at the current batch
// size). Unobserved devices count as an even split.
func (s *Scheduler) shareLocked(d int) float64 {
	perJob := func(i int) float64 {
		st := &s.states[i]
		if !st.observed {
			return -1
		}
		k := st.batch
		if k < 1 {
			k = 1
		}
		return st.execEst + st.queueEst/float64(k)
	}
	mine := perJob(d)
	if mine <= 0 {
		return 1 / float64(len(s.devices))
	}
	total := 0.0
	for i := range s.states {
		if t := perJob(i); t > 0 {
			total += 1 / t
		}
	}
	return (1 / mine) / total
}

// pickLocked selects the device for the next batch. Adaptive mode dispatches
// by earliest expected completion: each candidate's learned queue estimate
// plus its batch-size-worth of learned execution time on top of when it (and
// the work) becomes available — so a slow device stops receiving work the
// moment a faster one would finish the same batch sooner, instead of being
// fed by virtue of being idle. Unobserved devices count as instant, which
// probes every device early. Fixed-batch mode keeps qpu.RunBatched's
// earliest-free policy — it is the status-quo baseline. fixedK > 0 estimates
// for a batch of exactly that size (failure retries, where the batch content
// is already set); otherwise each candidate is judged by the size it would
// itself carry. Ties go to the lowest index, keeping plans deterministic.
func (s *Scheduler) pickLocked(free []float64, avail float64, exclude, remaining, fixedK int) int {
	if s.opt.FixedBatch > 0 {
		dev := -1
		for d := range free {
			if d == exclude && len(free) > 1 {
				continue
			}
			if dev < 0 || free[d] < free[dev] {
				dev = d
			}
		}
		return dev
	}
	dev := -1
	best := math.Inf(1)
	for d := range s.devices {
		if d == exclude && len(s.devices) > 1 {
			continue
		}
		st := &s.states[d]
		est := free[d]
		if avail > est {
			est = avail
		}
		if s.opt.RiskAware && st.quarantined && st.probeAt > est {
			// A benched device becomes available again at its probe time;
			// it competes for dispatch from there, so probes happen as a
			// natural consequence of the fleet catching up to probeAt.
			est = st.probeAt
		}
		if st.observed {
			k := fixedK
			if k <= 0 {
				k = s.batchFor(d, remaining)
			}
			est += st.queueEst + float64(k)*st.execEst
			if s.opt.RiskAware && st.tailSignificant() {
				// Expected tail exposure penalizes tail-heavy devices so
				// work drifts toward calmer ones before a tail strikes.
				est += st.tailProb * (st.tailMag - 1) * (st.queueEst + float64(k)*st.execEst)
			}
		}
		if est < best {
			dev, best = d, est
		}
	}
	return dev
}
