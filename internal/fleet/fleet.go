// Package fleet schedules landscape sampling across a heterogeneous
// multi-QPU fleet and streams the results into an eager, incremental
// reconstruction — the end-to-end overlap of phase 2 (circuit execution)
// and phase 3 (reconstruction) that the paper's Section 5 speedup rests on.
//
// Three ideas compose:
//
//   - Adaptive batch sizing. qpu.RunBatched amortizes one queue delay per
//     batch but takes the batch size as a caller-fixed argument. The fleet
//     scheduler instead learns a per-device size online: every completed
//     batch reports its queue/execution decomposition (the split real cloud
//     QPUs expose through queue timestamps), the scheduler maintains an
//     EWMA of the queue/exec-per-job ratio, and the next batch for that
//     device carries Aggressiveness×ratio jobs — enough to amortize the
//     queue delay without turning the device into a straggler.
//
//   - Streaming eager reconstruction. Completed batches feed a
//     core.Incremental accumulator; as sample coverage crosses the
//     configured thresholds the compressed-sensing solve is re-triggered,
//     warm-started from the previous solution, and a batch-boundary eager
//     cut (qpu.EagerCutBatched's policy) drops tail-latency batches
//     entirely.
//
//   - A shared execution cache. With Options.Cache set, sampled points that
//     some earlier run already measured are served instantly — before any
//     device pays queue latency — and fresh measurements are stored for the
//     next run, across every device in the fleet.
//
// Scheduling happens in virtual time (latencies are drawn from the seeded
// per-device models; values are real evaluations), so experiments measure
// fleet dynamics deterministically and instantly. Runs are bit-reproducible
// for a fixed seed regardless of Options.Workers: each device draws from
// its own RNG stream, the dispatch plan is computed serially, and completed
// batches merge in virtual-completion order.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/exec"
	"repro/internal/landscape"
	"repro/internal/qpu"
)

// Progress is a point-in-time view of a streaming run, delivered to
// Options.OnProgress after every batch merged and every interim solve.
type Progress struct {
	// SamplesDone / SamplesTotal count measurements merged into the
	// reconstruction accumulator versus the run's kept total.
	SamplesDone, SamplesTotal int
	// VirtualTime is the completion time of the latest merged batch.
	VirtualTime float64
	// Solves counts completed reconstructions (interim and final).
	Solves int
	// Residual is the last completed solve's residual (0 before the
	// first).
	Residual float64
	// BatchSizes are the per-device learned batch sizes as of the latest
	// merged batch.
	BatchSizes []int
}

// Options configures a Scheduler.
type Options struct {
	// Seed drives the per-device latency streams and the serial baseline.
	// Runs are bit-reproducible given (seed, call sequence), independent
	// of Workers.
	Seed int64
	// InitialBatch is the batch size every device starts from, before any
	// latency has been observed (default 4).
	InitialBatch int
	// MinBatch and MaxBatch clamp the learned size (defaults 1 and 256).
	MinBatch, MaxBatch int
	// FixedBatch, when positive, disables adaptation and uses this size
	// on every device — the fixed-batching baseline the experiments
	// compare against.
	FixedBatch int
	// Aggressiveness scales the learned size: a device whose EWMA
	// queue/exec-per-job ratio is r gets batches of Aggressiveness×r
	// jobs, bounding the amortization overhead to 1/Aggressiveness of
	// execution time (default 2).
	Aggressiveness float64
	// Alpha is the EWMA smoothing factor over completed-batch
	// observations, in (0,1] (default 0.4).
	Alpha float64
	// Workers bounds concurrent batch evaluations during the streaming
	// phase (0 = GOMAXPROCS). Results are bit-identical for every value.
	Workers int
	// Cache optionally memoizes evaluations across the whole fleet:
	// cached points are served at virtual time zero without occupying a
	// device, and fresh measurements are stored for later runs.
	Cache *exec.Cache
	// Thresholds are the coverage fractions (of the kept samples, in
	// (0,1), ascending) at which interim reconstructions are triggered
	// during streaming. Empty means no interim solves — only the final
	// one.
	Thresholds []float64
	// KeepFraction enables the eager cut: a value q in (0,1) keeps whole
	// batches in completion order until at least q of the samples are
	// covered and drops the rest, trading a small sample loss for the
	// tail-latency win. 0 or 1 waits for everything.
	KeepFraction float64
	// OnProgress, when set, is called from the streaming goroutine after
	// every merged batch and interim solve.
	OnProgress func(Progress)
}

func (o Options) withDefaults() (Options, error) {
	if o.InitialBatch <= 0 {
		o.InitialBatch = 4
	}
	if o.MinBatch <= 0 {
		o.MinBatch = 1
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxBatch < o.MinBatch {
		return o, fmt.Errorf("fleet: max batch %d below min batch %d", o.MaxBatch, o.MinBatch)
	}
	if o.FixedBatch < 0 {
		return o, fmt.Errorf("fleet: negative fixed batch %d", o.FixedBatch)
	}
	if o.Aggressiveness < 0 || math.IsNaN(o.Aggressiveness) {
		return o, fmt.Errorf("fleet: aggressiveness %g is not a non-negative number", o.Aggressiveness)
	}
	if o.Aggressiveness == 0 {
		o.Aggressiveness = 2
	}
	if o.Alpha < 0 || o.Alpha > 1 || math.IsNaN(o.Alpha) {
		return o, fmt.Errorf("fleet: EWMA alpha %g out of [0,1]", o.Alpha)
	}
	if o.Alpha == 0 {
		o.Alpha = 0.4
	}
	if o.KeepFraction < 0 || o.KeepFraction > 1 || math.IsNaN(o.KeepFraction) {
		return o, fmt.Errorf("fleet: keep fraction %g out of [0,1]", o.KeepFraction)
	}
	if len(o.Thresholds) > 0 {
		ts := append([]float64(nil), o.Thresholds...)
		sort.Float64s(ts)
		for _, th := range ts {
			if !(th > 0 && th < 1) {
				return o, fmt.Errorf("fleet: coverage threshold %g out of (0,1)", th)
			}
		}
		o.Thresholds = ts
	}
	return o, nil
}

// devState is one device's learned scheduling state.
type devState struct {
	rng *rand.Rand
	// queueEst and execEst are EWMAs of the observed queue delay per
	// batch and execution time per job; their ratio drives batch sizing
	// and their sum drives earliest-completion-time dispatch.
	queueEst, execEst float64
	observed          bool
	// batch is the size the next dispatch to this device will carry.
	batch   int
	batches int
	jobs    int
}

// Scheduler dispatches sampled grid points across a device fleet with
// adaptive per-device batch sizes.
//
// Like qpu.Executor, the latency streams are persistent: successive runs on
// one scheduler continue the same seeded per-device RNGs (fresh queue
// dynamics every run, the whole sequence deterministic given the seed), and
// the learned batch sizes carry across runs too — a long-lived scheduler
// keeps its calibration. Runs on one scheduler are serialized during their
// virtual-time planning phase; use separate schedulers for independent
// concurrent fleets.
type Scheduler struct {
	devices []qpu.Device
	opt     Options

	mu        sync.Mutex
	states    []devState
	serialRng *rand.Rand
}

// New builds a scheduler over the given devices.
func New(opt Options, devices ...qpu.Device) (*Scheduler, error) {
	if len(devices) == 0 {
		return nil, errors.New("fleet: no devices")
	}
	for _, d := range devices {
		if d.Eval == nil {
			return nil, fmt.Errorf("fleet: device %q has no evaluator", d.Name)
		}
		if err := d.Latency.Validate(); err != nil {
			return nil, err
		}
		if d.FailureProb < 0 || d.FailureProb >= 1 {
			return nil, fmt.Errorf("fleet: device %q failure probability %g out of [0,1)", d.Name, d.FailureProb)
		}
	}
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		devices:   devices,
		opt:       opt,
		states:    make([]devState, len(devices)),
		serialRng: rand.New(rand.NewSource(opt.Seed - 1)),
	}
	first := opt.InitialBatch
	if opt.FixedBatch > 0 {
		first = opt.FixedBatch
	}
	for d := range s.states {
		// Distinct odd-stride offsets keep the per-device streams
		// independent of each other and of the serial baseline.
		s.states[d] = devState{
			rng:   rand.New(rand.NewSource(opt.Seed + int64(d+1)*0x9E3779B9)),
			batch: first,
		}
	}
	return s, nil
}

// DeviceState is one device's learned scheduling state, for inspection and
// metrics export.
type DeviceState struct {
	// Name is the device name.
	Name string
	// BatchSize is the size the next batch for this device would carry.
	BatchSize int
	// Ratio is the learned EWMA queue/exec-per-job ratio (0 before any
	// observation).
	Ratio float64
	// Batches and Jobs count successful dispatches so far.
	Batches, Jobs int
}

// States returns the per-device learned state.
func (s *Scheduler) States() []DeviceState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeviceState, len(s.devices))
	for d := range s.devices {
		st := &s.states[d]
		out[d] = DeviceState{
			Name:      s.devices[d].Name,
			BatchSize: st.batch,
			Ratio:     st.ratio(),
			Batches:   st.batches,
			Jobs:      st.jobs,
		}
	}
	return out
}

// observe folds one completed batch's latency decomposition into the
// device's EWMAs and recomputes its next batch size.
func (s *Scheduler) observe(st *devState, size int, queue, execT float64) {
	if s.opt.FixedBatch > 0 {
		return
	}
	perJob := execT / float64(size)
	if st.observed {
		a := s.opt.Alpha
		st.queueEst = (1-a)*st.queueEst + a*queue
		st.execEst = (1-a)*st.execEst + a*perJob
	} else {
		st.queueEst, st.execEst, st.observed = queue, perJob, true
	}
	if st.execEst <= 0 {
		// A queue-only device (Exec = 0): amortize maximally.
		st.batch = s.opt.MaxBatch
		return
	}
	next := int(math.Round(s.opt.Aggressiveness * st.queueEst / st.execEst))
	if next < s.opt.MinBatch {
		next = s.opt.MinBatch
	}
	if next > s.opt.MaxBatch {
		next = s.opt.MaxBatch
	}
	st.batch = next
}

// ratio returns the learned queue/exec-per-job ratio (0 before any
// observation, +Inf-free: a queue-only device reports MaxBatch-driving 0
// exec as a very large ratio capped for display).
func (st *devState) ratio() float64 {
	if !st.observed || st.execEst <= 0 {
		if st.observed {
			return math.Inf(1)
		}
		return 0
	}
	return st.queueEst / st.execEst
}

// group is one planned batch: the qpu-level record plus the grid indices it
// carries, the values once evaluated, and a snapshot of the learned batch
// sizes at its completion.
type group struct {
	qpu.BatchGroup
	indices []int
	values  []float64
	sizes   []int
}

// plan runs the virtual-time scheduling simulation: cache probe, adaptive
// list scheduling with failure rescheduling, and the single-device serial
// baseline. It holds the scheduler lock (the RNG streams and learned sizes
// are shared across runs) and performs no circuit evaluation.
func (s *Scheduler) plan(g *landscape.Grid, indices []int, cache *exec.Cache) (groups []group, serial, makespan float64, retries int, err error) {
	if len(indices) == 0 {
		return nil, 0, 0, 0, errors.New("fleet: no jobs")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Serial baseline: the shared one-device no-batching baseline
	// qpu.RunBatched also reports, so Speedup stays comparable.
	const maxAttempts = 8
	serial = qpu.SerialBaseline(s.devices[0], s.serialRng, len(indices))

	// Cache probe: points an earlier run already measured are served at
	// virtual time zero, before any device pays queue latency. Lookup
	// counts hits and misses exactly once per point.
	pending := indices
	if cache != nil {
		var hitIdx []int
		var hitVals []float64
		misses := make([]int, 0, len(indices))
		for _, gi := range indices {
			if v, ok := cache.Lookup(g.Point(gi)); ok {
				hitIdx = append(hitIdx, gi)
				hitVals = append(hitVals, v)
			} else {
				misses = append(misses, gi)
			}
		}
		if len(hitIdx) > 0 {
			groups = append(groups, group{
				BatchGroup: qpu.BatchGroup{Device: -1, Size: len(hitIdx)},
				indices:    hitIdx,
				values:     hitVals,
				sizes:      s.sizesLocked(),
			})
		}
		pending = misses
	}

	free := make([]float64, len(s.devices))
	for head := 0; head < len(pending); {
		remaining := len(pending) - head
		dev := s.pickLocked(free, 0, -1, remaining, 0)
		k := s.batchFor(dev, remaining)
		batch := pending[head : head+k]
		head += k

		avail := 0.0
		exclude := -1
		for attempt := 0; ; attempt++ {
			if attempt > 0 {
				// The failed batch keeps its size; re-pick by expected
				// completion for exactly k jobs.
				dev = s.pickLocked(free, avail, exclude, remaining, k)
			}
			st := &s.states[dev]
			start := free[dev]
			if avail > start {
				start = avail
			}
			queue, execT := s.devices[dev].Latency.SampleBatchParts(st.rng, k)
			done := start + queue + execT
			free[dev] = done
			// Failed batches still report their timing; the learner
			// uses every observation.
			s.observe(st, k, queue, execT)
			if s.devices[dev].FailureProb > 0 && st.rng.Float64() < s.devices[dev].FailureProb {
				if attempt+1 >= maxAttempts {
					return nil, 0, 0, 0, fmt.Errorf("fleet: batch of %d jobs failed %d times in a row", k, maxAttempts)
				}
				retries++
				exclude = dev
				avail = done
				continue
			}
			st.batches++
			st.jobs += k
			groups = append(groups, group{
				BatchGroup: qpu.BatchGroup{
					Device: dev, Size: k, Queue: queue, Exec: execT,
					Start: start, Done: done,
				},
				indices: batch,
				sizes:   s.sizesLocked(),
			})
			break
		}
	}

	sort.SliceStable(groups, func(i, j int) bool { return groups[i].Done < groups[j].Done })
	for _, g := range groups {
		if g.Done > makespan {
			makespan = g.Done
		}
	}
	return groups, serial, makespan, retries, nil
}

// sizesLocked snapshots the current per-device batch sizes.
func (s *Scheduler) sizesLocked() []int {
	sizes := make([]int, len(s.states))
	for d := range s.states {
		sizes[d] = s.states[d].batch
	}
	return sizes
}

// batchFor resolves the batch size device d would carry with remaining jobs
// left: the learned (or fixed) size, tapered in adaptive mode so no device
// takes more than its learned-throughput share of what is left — the
// guided-self-scheduling rule, weighted by observed speed, that keeps the
// steady-state size from turning the end of a run into a single-device
// straggler (or a huge final batch into a tail-latency hostage) without
// starving the fastest device of its amortization.
func (s *Scheduler) batchFor(d, remaining int) int {
	k := s.states[d].batch
	if s.opt.FixedBatch == 0 {
		if share := int(math.Ceil(s.shareLocked(d) * float64(remaining))); k > share {
			k = share
		}
		if k < s.opt.MinBatch {
			k = s.opt.MinBatch
		}
	}
	if k > remaining {
		k = remaining
	}
	return k
}

// shareLocked estimates device d's share of the fleet's throughput from the
// learned per-job times (execution plus amortized queue at the current batch
// size). Unobserved devices count as an even split.
func (s *Scheduler) shareLocked(d int) float64 {
	perJob := func(i int) float64 {
		st := &s.states[i]
		if !st.observed {
			return -1
		}
		k := st.batch
		if k < 1 {
			k = 1
		}
		return st.execEst + st.queueEst/float64(k)
	}
	mine := perJob(d)
	if mine <= 0 {
		return 1 / float64(len(s.devices))
	}
	total := 0.0
	for i := range s.states {
		if t := perJob(i); t > 0 {
			total += 1 / t
		}
	}
	return (1 / mine) / total
}

// pickLocked selects the device for the next batch. Adaptive mode dispatches
// by earliest expected completion: each candidate's learned queue estimate
// plus its batch-size-worth of learned execution time on top of when it (and
// the work) becomes available — so a slow device stops receiving work the
// moment a faster one would finish the same batch sooner, instead of being
// fed by virtue of being idle. Unobserved devices count as instant, which
// probes every device early. Fixed-batch mode keeps qpu.RunBatched's
// earliest-free policy — it is the status-quo baseline. fixedK > 0 estimates
// for a batch of exactly that size (failure retries, where the batch content
// is already set); otherwise each candidate is judged by the size it would
// itself carry. Ties go to the lowest index, keeping plans deterministic.
func (s *Scheduler) pickLocked(free []float64, avail float64, exclude, remaining, fixedK int) int {
	if s.opt.FixedBatch > 0 {
		dev := -1
		for d := range free {
			if d == exclude && len(free) > 1 {
				continue
			}
			if dev < 0 || free[d] < free[dev] {
				dev = d
			}
		}
		return dev
	}
	dev := -1
	best := math.Inf(1)
	for d := range s.devices {
		if d == exclude && len(s.devices) > 1 {
			continue
		}
		st := &s.states[d]
		est := free[d]
		if avail > est {
			est = avail
		}
		if st.observed {
			k := fixedK
			if k <= 0 {
				k = s.batchFor(d, remaining)
			}
			est += st.queueEst + float64(k)*st.execEst
		}
		if est < best {
			dev, best = d, est
		}
	}
	return dev
}
