package fleet

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/landscape"
	"repro/internal/qpu"
)

func testGrid(t *testing.T) *landscape.Grid {
	t.Helper()
	g, err := landscape.NewGrid(
		landscape.Axis{Name: "b", Min: -1, Max: 1, N: 20},
		landscape.Axis{Name: "g", Min: -2, Max: 2, N: 30},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testEval() backend.Evaluator {
	return &backend.Func{Label: "f", Params: 2, F: func(p []float64) (float64, error) {
		return p[0]*p[0] - 0.5*p[1], nil
	}}
}

// heterogeneousFleet is the 3-device configuration the adaptive-vs-fixed
// claims are tested on: one queue-dominated device (wants big batches), one
// balanced, one execution-dominated (wants small batches).
func heterogeneousFleet(tailProb, tailFactor float64) []qpu.Device {
	ev := testEval()
	return []qpu.Device{
		{Name: "hiq", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 120, Sigma: 0.5, Exec: 1, TailProb: tailProb, TailFactor: tailFactor}},
		{Name: "mid", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 30, Sigma: 0.5, Exec: 5, TailProb: tailProb, TailFactor: tailFactor}},
		{Name: "slow", Eval: ev, Latency: qpu.LatencyModel{QueueMedian: 10, Sigma: 0.5, Exec: 12, TailProb: tailProb, TailFactor: tailFactor}},
	}
}

func allIndices(g *landscape.Grid) []int {
	idx := make([]int, g.Size())
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestFleetRunValuesAndInvariants(t *testing.T) {
	g := testGrid(t)
	s, err := New(Options{Seed: 3}, heterogeneousFleet(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	idx := allIndices(g)
	rep, err := s.Run(context.Background(), g, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(idx) {
		t.Fatalf("%d results, want %d", len(rep.Results), len(idx))
	}
	seen := map[int]bool{}
	for _, r := range rep.Results {
		p := g.Point(r.Index)
		if want := p[0]*p[0] - 0.5*p[1]; math.Abs(r.Value-want) > 1e-12 {
			t.Fatalf("index %d: value %g want %g", r.Index, r.Value, want)
		}
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
		if r.Done > rep.Makespan {
			t.Fatalf("result done %g past makespan %g", r.Done, rep.Makespan)
		}
	}
	for i := 1; i < len(rep.Results); i++ {
		if rep.Results[i].Done < rep.Results[i-1].Done {
			t.Fatal("results not sorted by completion")
		}
	}
	perDevice := 0
	for _, c := range rep.PerDevice {
		perDevice += c
	}
	if perDevice != len(idx) {
		t.Fatalf("per-device counts sum to %d, want %d", perDevice, len(idx))
	}
	batchJobs := 0
	for i, b := range rep.Batches {
		batchJobs += b.Size
		if i > 0 && b.Done < rep.Batches[i-1].Done {
			t.Fatal("batch groups not sorted by completion")
		}
	}
	if batchJobs != len(idx) {
		t.Fatalf("batch groups carry %d jobs, want %d", batchJobs, len(idx))
	}
	if sp := rep.Speedup(); sp <= 1 {
		t.Fatalf("fleet speedup %g, want > 1", sp)
	}
}

// TestFleetLearnsHeterogeneity: after a run, the queue-dominated device must
// have learned a much larger batch size than the execution-dominated one,
// and learned ratios should sit near the true queue/exec ratios.
func TestFleetLearnsHeterogeneity(t *testing.T) {
	g := testGrid(t)
	s, err := New(Options{Seed: 8}, heterogeneousFleet(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), g, allIndices(g)); err != nil {
		t.Fatal(err)
	}
	st := s.States()
	if st[0].Name != "hiq" || st[2].Name != "slow" {
		t.Fatalf("unexpected device order %+v", st)
	}
	if st[0].BatchSize <= 4*st[2].BatchSize {
		t.Errorf("queue-dominated device learned batch %d, exec-dominated %d — no separation",
			st[0].BatchSize, st[2].BatchSize)
	}
	// True ratios: hiq 120/1, mid 30/5, slow 10/12 (medians; lognormal
	// spread and EWMA smoothing allow generous slack).
	if st[0].Ratio < 40 || st[0].Ratio > 400 {
		t.Errorf("hiq learned ratio %g, true median ratio 120", st[0].Ratio)
	}
	if st[2].Ratio > 5 {
		t.Errorf("slow learned ratio %g, true median ratio 0.83", st[2].Ratio)
	}
	if st[0].Batches == 0 || st[0].Jobs == 0 {
		t.Error("no dispatch accounting")
	}
}

// TestFleetDeterministicAcrossWorkers is the acceptance pin: a streaming
// reconstruction is bit-identical for every scheduler worker count.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	g := testGrid(t)
	opt := core.Options{SamplingFraction: 0.4, Seed: 5}
	run := func(workers int) *StreamResult {
		s, err := New(Options{
			Seed:       11,
			Workers:    workers,
			Thresholds: []float64{0.4, 0.7},
		}, heterogeneousFleet(0.1, 15)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.ReconstructStream(context.Background(), g, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if len(ref.Partials) == 0 {
		t.Fatal("no partial solves with thresholds configured")
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.Report.Makespan != ref.Report.Makespan ||
			got.Report.SerialTime != ref.Report.SerialTime {
			t.Fatalf("workers=%d: virtual time differs", workers)
		}
		if len(got.Report.Results) != len(ref.Report.Results) {
			t.Fatalf("workers=%d: %d results vs %d", workers, len(got.Report.Results), len(ref.Report.Results))
		}
		for i := range ref.Report.Results {
			if got.Report.Results[i] != ref.Report.Results[i] {
				t.Fatalf("workers=%d: result %d differs", workers, i)
			}
		}
		for i := range ref.Landscape.Data {
			if got.Landscape.Data[i] != ref.Landscape.Data[i] {
				t.Fatalf("workers=%d: reconstruction differs at %d", workers, i)
			}
		}
		if len(got.Partials) != len(ref.Partials) {
			t.Fatalf("workers=%d: %d partials vs %d", workers, len(got.Partials), len(ref.Partials))
		}
		for i := range ref.Partials {
			if got.Partials[i] != ref.Partials[i] {
				t.Fatalf("workers=%d: partial %d differs: %+v vs %+v",
					workers, i, got.Partials[i], ref.Partials[i])
			}
		}
	}
}

// TestFleetAdaptiveBeatsFixed is the acceptance criterion: on the 3-device
// heterogeneous fleet, adaptive batch sizing matches or beats the best fixed
// batch size in simulated total time, averaged over seeds.
func TestFleetAdaptiveBeatsFixed(t *testing.T) {
	g := testGrid(t)
	idx := allIndices(g) // 600 jobs
	seeds := []int64{1, 2, 3, 5, 8, 13}
	mean := func(fixed int) float64 {
		var sum float64
		for _, seed := range seeds {
			s, err := New(Options{Seed: seed, FixedBatch: fixed}, heterogeneousFleet(0, 1)...)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.Run(context.Background(), g, idx)
			if err != nil {
				t.Fatal(err)
			}
			sum += rep.Makespan
		}
		return sum / float64(len(seeds))
	}
	adaptive := mean(0)
	bestFixed := math.Inf(1)
	bestK := 0
	for _, k := range []int{8, 16, 32, 64, 128} {
		if m := mean(k); m < bestFixed {
			bestFixed, bestK = m, k
		}
	}
	t.Logf("adaptive mean makespan %.0f, best fixed (k=%d) %.0f", adaptive, bestK, bestFixed)
	if adaptive > bestFixed*1.02 {
		t.Errorf("adaptive mean makespan %.0f worse than best fixed k=%d at %.0f",
			adaptive, bestK, bestFixed)
	}
}

// TestFleetSharedCache: a second run over the same points is served from the
// shared cache at virtual time zero — no device pays queue latency — and
// cached values match the originals.
func TestFleetSharedCache(t *testing.T) {
	g := testGrid(t)
	cache := exec.NewCache(0)
	idx := allIndices(g)[:200]
	s1, err := New(Options{Seed: 21, Cache: cache}, heterogeneousFleet(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := s1.Run(context.Background(), g, idx)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Makespan == 0 {
		t.Fatal("first run paid no latency")
	}
	if cache.Len() != len(idx) {
		t.Fatalf("cache holds %d entries, want %d", cache.Len(), len(idx))
	}

	s2, err := New(Options{Seed: 22, Cache: cache}, heterogeneousFleet(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.Run(context.Background(), g, idx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Makespan != 0 {
		t.Fatalf("fully cached run has makespan %g, want 0", rep2.Makespan)
	}
	want := map[int]float64{}
	for _, r := range rep1.Results {
		want[r.Index] = r.Value
	}
	for _, r := range rep2.Results {
		if r.Device != -1 {
			t.Fatalf("cached result on device %d, want -1", r.Device)
		}
		if r.Value != want[r.Index] {
			t.Fatalf("cached value %g differs from measured %g", r.Value, want[r.Index])
		}
	}
	// Partially cached: new points still execute.
	more := allIndices(g)[:300]
	s3, err := New(Options{Seed: 23, Cache: cache}, heterogeneousFleet(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	rep3, err := s3.Run(context.Background(), g, more)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Makespan == 0 {
		t.Fatal("run with 100 fresh points paid no latency")
	}
	if cache.Len() != 300 {
		t.Fatalf("cache holds %d entries, want 300", cache.Len())
	}
	cached := 0
	for _, b := range rep3.Batches {
		if b.Device == -1 {
			cached += b.Size
		}
	}
	if cached != 200 {
		t.Fatalf("%d cache-served jobs, want 200", cached)
	}
}

// TestFleetEagerCutSavesTime: under heavy tails, a 90% keep fraction drops
// tail batches, reconstructs from the kept samples, and reports saved time.
func TestFleetEagerCutSavesTime(t *testing.T) {
	g := testGrid(t)
	saved := false
	for _, seed := range []int64{4, 9, 17} {
		s, err := New(Options{Seed: seed, KeepFraction: 0.9}, heterogeneousFleet(0.15, 25)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.ReconstructStream(context.Background(), g, core.Options{SamplingFraction: 0.5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, b := range res.Report.Batches {
			total += b.Size
		}
		if total != res.Stats.Samples {
			t.Fatalf("report carries %d jobs but stats says %d", total, res.Stats.Samples)
		}
		// The cut must keep at least the requested fraction of what was
		// scheduled (300 samples at 50% of 600).
		if res.Stats.Samples < int(0.9*300) {
			t.Fatalf("kept %d of 300 samples at keep=0.9", res.Stats.Samples)
		}
		if res.Timeout > res.Report.Makespan {
			t.Fatalf("timeout %g past makespan %g", res.Timeout, res.Report.Makespan)
		}
		if res.Saved != res.Report.Makespan-res.Timeout {
			t.Fatalf("saved %g != makespan-timeout %g", res.Saved, res.Report.Makespan-res.Timeout)
		}
		for _, r := range res.Report.Results {
			if r.Done > res.Timeout {
				t.Fatalf("kept a result past the cut: done %g > timeout %g", r.Done, res.Timeout)
			}
		}
		if res.Saved > 0 && res.Stats.Samples < 300 {
			saved = true
		}
	}
	if !saved {
		t.Error("no seed produced a tail cut that saved time — tails too mild for the test config")
	}
}

// TestFleetStreamingSolves: interim solves trigger at the configured
// coverage thresholds, warm-starting each next solve, and the final
// reconstruction matches a cold solve on the same samples to solver
// tolerance.
func TestFleetStreamingSolves(t *testing.T) {
	g := testGrid(t)
	var progress []Progress
	s, err := New(Options{
		Seed:       31,
		Thresholds: []float64{0.3, 0.6},
		OnProgress: func(p Progress) { progress = append(progress, p) },
	}, heterogeneousFleet(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{SamplingFraction: 0.5, Seed: 7}
	res, err := s.ReconstructStream(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partials) == 0 || len(res.Partials) > 2 {
		t.Fatalf("%d partial solves, want 1 or 2 (thresholds may collapse onto one batch)", len(res.Partials))
	}
	if res.Partials[0].Coverage < 0.3 {
		t.Fatalf("first partial coverage %g below the 0.3 threshold", res.Partials[0].Coverage)
	}
	for i := 1; i < len(res.Partials); i++ {
		if res.Partials[i].Samples <= res.Partials[i-1].Samples {
			t.Fatal("partial sample counts not increasing")
		}
	}
	if res.Partials[len(res.Partials)-1].Samples >= res.Stats.Samples {
		t.Fatal("final solve has no more samples than the last partial")
	}

	// Progress is monotone and ends at full coverage.
	if len(progress) == 0 {
		t.Fatal("no progress callbacks")
	}
	done := 0
	for _, p := range progress {
		if p.SamplesDone < done {
			t.Fatal("progress went backwards")
		}
		done = p.SamplesDone
		if len(p.BatchSizes) != 3 {
			t.Fatalf("progress carries %d batch sizes, want 3", len(p.BatchSizes))
		}
	}
	if done != res.Stats.Samples {
		t.Fatalf("final progress at %d samples, want %d", done, res.Stats.Samples)
	}

	// The streamed (warm-started) result agrees with a cold solve.
	cold, _, err := core.ReconstructFromSamples(g, res.Stats.Indices, res.Stats.Values, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nr, err := landscape.NRMSE(cold.Data, res.Landscape.Data)
	if err != nil {
		t.Fatal(err)
	}
	if nr > 1e-3 {
		t.Fatalf("streamed reconstruction diverges from cold solve: NRMSE %g", nr)
	}
	if len(res.BatchSizes) != 3 {
		t.Fatalf("result carries %d batch sizes, want 3", len(res.BatchSizes))
	}
}

// TestFleetFailureRescheduling: a flaky device forces retries but every job
// still lands, with correct values.
func TestFleetFailureRescheduling(t *testing.T) {
	g := testGrid(t)
	ev := testEval()
	lat := qpu.LatencyModel{QueueMedian: 10, Sigma: 0.3, Exec: 1}
	s, err := New(Options{Seed: 41},
		qpu.Device{Name: "flaky", Eval: ev, Latency: lat, FailureProb: 0.5},
		qpu.Device{Name: "solid", Eval: ev, Latency: lat},
	)
	if err != nil {
		t.Fatal(err)
	}
	idx := allIndices(g)[:150]
	rep, err := s.Run(context.Background(), g, idx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("no retries at 50% failure probability")
	}
	if len(rep.Results) != len(idx) {
		t.Fatalf("%d results, want %d", len(rep.Results), len(idx))
	}
	for _, r := range rep.Results {
		p := g.Point(r.Index)
		if want := p[0]*p[0] - 0.5*p[1]; math.Abs(r.Value-want) > 1e-12 {
			t.Fatalf("value corrupted after retry")
		}
	}
}

// TestFleetPersistentStreams: successive runs on one scheduler draw fresh
// queue dynamics; the whole sequence is reproducible on a same-seed
// scheduler.
func TestFleetPersistentStreams(t *testing.T) {
	g := testGrid(t)
	idx := allIndices(g)[:100]
	mk := func() *Scheduler {
		s, err := New(Options{Seed: 51}, heterogeneousFleet(0, 1)...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := mk()
	r1, err := s.Run(context.Background(), g, idx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(context.Background(), g, idx)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan == r2.Makespan && r1.SerialTime == r2.SerialTime {
		t.Fatal("second run replayed the first run's latency draws")
	}
	s2 := mk()
	q1, err := s2.Run(context.Background(), g, idx)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s2.Run(context.Background(), g, idx)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Makespan != r1.Makespan || q2.Makespan != r2.Makespan {
		t.Fatal("run sequence not reproducible given the seed")
	}
}

func TestFleetValidation(t *testing.T) {
	ev := testEval()
	dev := qpu.Device{Name: "a", Eval: ev, Latency: qpu.DefaultLatency()}
	if _, err := New(Options{}); err == nil {
		t.Error("want error for no devices")
	}
	if _, err := New(Options{}, qpu.Device{Name: "x"}); err == nil {
		t.Error("want error for missing evaluator")
	}
	if _, err := New(Options{}, qpu.Device{Name: "x", Eval: ev, FailureProb: 1}); err == nil {
		t.Error("want error for failure probability 1")
	}
	if _, err := New(Options{MinBatch: 8, MaxBatch: 4}, dev); err == nil {
		t.Error("want error for max < min batch")
	}
	if _, err := New(Options{FixedBatch: -1}, dev); err == nil {
		t.Error("want error for negative fixed batch")
	}
	if _, err := New(Options{Alpha: 1.5}, dev); err == nil {
		t.Error("want error for alpha > 1")
	}
	if _, err := New(Options{Alpha: math.NaN()}, dev); err == nil {
		t.Error("want error for NaN alpha")
	}
	if _, err := New(Options{Aggressiveness: math.NaN()}, dev); err == nil {
		t.Error("want error for NaN aggressiveness")
	}
	if _, err := New(Options{KeepFraction: 1.5}, dev); err == nil {
		t.Error("want error for keep fraction > 1")
	}
	if _, err := New(Options{Thresholds: []float64{0.5, 1.0}}, dev); err == nil {
		t.Error("want error for threshold at 1")
	}
	s, err := New(Options{}, dev)
	if err != nil {
		t.Fatal(err)
	}
	g := testGrid(t)
	if _, err := s.Run(context.Background(), g, nil); err == nil {
		t.Error("want error for no jobs")
	}
	if _, err := s.ReconstructStream(context.Background(), g, core.Options{}); err == nil {
		t.Error("want error for missing sampling fraction")
	}
}

// TestFleetDeviceErrorNotMaskedByCancellation: when one device's evaluator
// fails mid-run, the returned error must name that failure, not the
// context.Canceled that the abort inflicts on unrelated in-flight groups —
// the service layer classifies canceled-vs-failed from exactly this error.
func TestFleetDeviceErrorNotMaskedByCancellation(t *testing.T) {
	g := testGrid(t)
	good := testEval()
	bad := &backend.Func{Label: "bad", Params: 2, F: func(p []float64) (float64, error) {
		return 0, errors.New("calibration lost")
	}}
	lat := qpu.LatencyModel{QueueMedian: 10, Sigma: 0.3, Exec: 1}
	s, err := New(Options{Seed: 71, Workers: 4},
		qpu.Device{Name: "good", Eval: good, Latency: lat},
		qpu.Device{Name: "bad", Eval: bad, Latency: lat},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(context.Background(), g, allIndices(g))
	if err == nil {
		t.Fatal("want error from the failing device")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("device failure reported as cancellation: %v", err)
	}
	if !strings.Contains(err.Error(), `"bad"`) || !strings.Contains(err.Error(), "calibration lost") {
		t.Fatalf("error does not name the failing device: %v", err)
	}
}

// TestFleetHonorsCoreOptionsCache: a scheduler built without its own cache
// adopts core.Options.Cache, matching every other reconstruction entry
// point.
func TestFleetHonorsCoreOptionsCache(t *testing.T) {
	g := testGrid(t)
	cache := exec.NewCache(0)
	opt := core.Options{SamplingFraction: 0.3, Seed: 6, Cache: cache}
	s1, err := New(Options{Seed: 81}, heterogeneousFleet(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.ReconstructStream(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Report.Makespan == 0 || cache.Len() != r1.Stats.Samples {
		t.Fatalf("first run: makespan %g, %d cached of %d samples",
			r1.Report.Makespan, cache.Len(), r1.Stats.Samples)
	}
	s2, err := New(Options{Seed: 82}, heterogeneousFleet(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.ReconstructStream(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Report.Makespan != 0 {
		t.Fatalf("second run ignored core.Options.Cache: makespan %g", r2.Report.Makespan)
	}
}

// TestFleetCancellation: a canceled context stops the streaming run.
func TestFleetCancellation(t *testing.T) {
	g := testGrid(t)
	s, err := New(Options{Seed: 61}, heterogeneousFleet(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, g, allIndices(g)); err == nil {
		t.Error("want error from canceled context")
	}
}
