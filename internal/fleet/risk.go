package fleet

import "math"

// QuarantineEvent records one quarantine transition during planning: a
// device being benched after crossing a failure (or tail-rate) threshold, or
// re-admitted after a successful probe.
type QuarantineEvent struct {
	// Device is the device index; Name its configured name.
	Device int
	Name   string
	// Time is the virtual time of the transition.
	Time float64
	// Reason explains the transition: "failures" or "tail-rate" for a
	// bench, "probe-succeeded" for a re-admission.
	Reason string
}

// Benched reports whether the event benched the device (as opposed to
// re-admitting it).
func (e QuarantineEvent) Benched() bool { return e.Reason != "probe-succeeded" }

// benchLocked quarantines device dev at virtual time t: it stops receiving
// regular work and will be re-probed with a single small batch every probe
// backoff interval.
func (s *Scheduler) benchLocked(out *planOutcome, dev int, t float64, reason string) {
	st := &s.states[dev]
	st.quarantined = true
	st.quarantines++
	st.probeWait = s.opt.ProbeBackoff
	st.probeAt = t + st.probeWait
	out.events = append(out.events, QuarantineEvent{
		Device: dev, Name: s.devices[dev].Name, Time: t, Reason: reason,
	})
}

// quarLocked snapshots the current per-device quarantine flags.
func (s *Scheduler) quarLocked() []bool {
	quar := make([]bool, len(s.states))
	for d := range s.states {
		quar[d] = s.states[d].quarantined
	}
	return quar
}

// Acting on a single tail excursion would make the risk policy jumpy — a
// benign 5%-tail device would be penalized hard right after every isolated
// event (the EWMA overshoots before it decays) and scheduling would diverge
// from the tail-blind baseline on noise rather than evidence. The tail caps
// and dispatch penalties therefore only engage on sustained evidence: at
// least tailMinEvents observed tail events and a learned probability of at
// least tailMinProb.
const (
	tailMinEvents = 3
	tailMinProb   = 0.1
)

// tailSignificant reports whether the device's tail evidence is sustained
// enough for the risk policy to act on.
func (st *devState) tailSignificant() bool {
	return st.tailSeen && st.tailCount >= tailMinEvents && st.tailProb >= tailMinProb && st.tailMag > 1
}

// riskCapLocked bounds device d's next batch size so its expected tail
// exposure stays bounded: with learned tail probability p and magnitude m, a
// batch of k jobs is expected to lose p·(m−1)·(queue + k·exec) virtual
// seconds to tail excursions, and the cap keeps that below TailBudget× the
// fleet's typical non-tail batch duration — so one tail-struck mega-batch
// cannot hold the run hostage, while devices with benign tails keep their
// full amortization.
func (s *Scheduler) riskCapLocked(d int) int {
	st := &s.states[d]
	if !st.tailSignificant() || !s.meanSeen || st.execEst <= 0 {
		return math.MaxInt
	}
	excess := st.tailProb * (st.tailMag - 1)
	budget := s.opt.TailBudget * s.meanBatch
	k := (budget/excess - st.queueEst) / st.execEst
	if k < float64(s.opt.MinBatch) {
		return s.opt.MinBatch
	}
	if k > float64(s.opt.MaxBatch) {
		return s.opt.MaxBatch
	}
	return int(k)
}
