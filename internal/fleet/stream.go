package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/landscape"
	"repro/internal/obs"
	"repro/internal/qpu"
)

// Partial records one interim reconstruction of a streaming run.
type Partial struct {
	// Coverage is the fraction of the run's kept samples merged when the
	// solve triggered.
	Coverage float64
	// Samples is the merged sample count.
	Samples int
	// VirtualTime is the completion time of the batch that crossed the
	// threshold.
	VirtualTime float64
	// Iterations and Residual are the solve's diagnostics.
	Iterations int
	Residual   float64
}

// StreamResult is the outcome of a streaming fleet run.
type StreamResult struct {
	// Report is the fleet execution record: per-job results and batch
	// groups (kept ones only under an eager cut), the full-run makespan,
	// and the single-device serial baseline. Cache-served jobs carry
	// device index -1.
	Report *qpu.RunReport
	// Landscape and Stats are the final reconstruction.
	Landscape *landscape.Landscape
	Stats     *core.Stats
	// Partials lists the interim solves in trigger order.
	Partials []Partial
	// Timeout is the virtual time sampling stopped: the batch-boundary
	// eager cut under KeepFraction, otherwise the last batch's
	// completion.
	Timeout float64
	// Saved is Report.Makespan - Timeout: the tail latency the eager cut
	// avoided (0 without a cut).
	Saved float64
	// BatchSizes are the per-device learned batch sizes at the end of the
	// run.
	BatchSizes []int
	// Quarantines lists the run's quarantine transitions in time order
	// (risk-aware runs; empty otherwise).
	Quarantines []QuarantineEvent
	// DeviceStates is the per-device learned state at the end of the run,
	// including tail estimates and quarantine counters.
	DeviceStates []DeviceState
}

// Run executes the cost evaluations for the given flat grid indices across
// the fleet — adaptive batch sizes, shared cache, no reconstruction — and
// reports per-job results and batch groups in virtual-completion order.
func (s *Scheduler) Run(ctx context.Context, g *landscape.Grid, indices []int) (*qpu.RunReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan, err := s.tracePlan(ctx, g, indices, s.opt.Cache)
	if err != nil {
		return nil, err
	}
	if err := s.evaluate(ctx, g, plan.groups, s.opt.Cache, nil); err != nil {
		return nil, err
	}
	return s.report(plan.groups, plan.serial, plan.makespan, plan.retries), nil
}

// ReconstructStream runs the full streaming pipeline: draw the OSCAR
// sampling pattern, dispatch it across the fleet, and overlap circuit
// execution with incremental reconstruction — interim solves fire as
// coverage crosses Options.Thresholds, each warm-started from the previous
// solution, and KeepFraction applies the batch-boundary eager cut. opt
// carries the sampling and solver configuration (its Workers field drives
// the solver; the scheduler's own Workers bounds evaluation fan-out).
// opt.Cache is honored when the scheduler was built without its own:
// FleetOptions.Cache wins otherwise, since the scheduler may already have
// been sharing it across runs.
func (s *Scheduler) ReconstructStream(ctx context.Context, g *landscape.Grid, opt core.Options) (*StreamResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cache := s.opt.Cache
	if cache == nil {
		cache = opt.Cache
	}
	sspan, _ := obs.Start(ctx, "fleet.sample")
	indices, err := core.SampleGrid(g, opt.SamplingFraction, opt.Seed, opt.Stratified)
	sspan.SetAttr("samples", len(indices))
	sspan.SetAttr("grid_points", g.Size())
	sspan.SetError(err)
	sspan.End()
	if err != nil {
		return nil, err
	}
	plan, err := s.tracePlan(ctx, g, indices, cache)
	if err != nil {
		return nil, err
	}
	groups, makespan := plan.groups, plan.makespan

	// Eager cut at a batch boundary: keep whole groups in completion
	// order until KeepFraction of the samples are covered.
	timeout := makespan
	if q := s.opt.KeepFraction; q > 0 && q < 1 {
		batches := make([]qpu.BatchGroup, len(groups))
		for i := range groups {
			batches[i] = groups[i].BatchGroup
		}
		timeout = qpu.BatchTimeoutForFraction(batches, q)
		kept := groups[:0]
		for _, gr := range groups {
			if gr.Done <= timeout {
				kept = append(kept, gr)
			}
		}
		groups = kept
	}
	saved := makespan - timeout
	if saved < 0 {
		saved = 0
	}

	inc, err := core.NewIncremental(g, opt)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, gr := range groups {
		total += gr.Size
	}
	if total == 0 {
		return nil, fmt.Errorf("fleet: eager cut at keep fraction %g dropped every batch", s.opt.KeepFraction)
	}

	res := &StreamResult{Timeout: timeout, Saved: saved, Quarantines: plan.events}
	var lastResidual float64
	solves := 0
	fed := 0
	thresholds := s.opt.Thresholds
	progress := func(gr *group) {
		if s.opt.OnProgress == nil {
			return
		}
		s.opt.OnProgress(Progress{
			SamplesDone: fed, SamplesTotal: total,
			VirtualTime: gr.Done,
			Solves:      solves, Residual: lastResidual,
			BatchSizes:  gr.sizes,
			Quarantined: gr.quar,
			Retries:     plan.retries, QuarantineEvents: len(plan.events),
		})
	}

	// The merge callback runs on the streaming goroutine, in
	// virtual-completion order, while later batches are still evaluating.
	err = s.evaluate(ctx, g, groups, cache, func(gr *group) error {
		if err := inc.Append(gr.indices, gr.values); err != nil {
			return err
		}
		fed += gr.Size
		cov := float64(fed) / float64(total)
		// One batch can cross several thresholds at once; they collapse
		// into a single interim solve on the samples now available.
		crossed := false
		for len(thresholds) > 0 && cov >= thresholds[0] {
			thresholds = thresholds[1:]
			crossed = true
		}
		if crossed && fed < total { // the final solve covers fed == total
			vspan, vctx := obs.Start(ctx, "fleet.solve")
			vspan.SetAttr("samples", fed)
			vspan.SetAttr("coverage", cov)
			vspan.SetAttr("interim", true)
			_, st, err := inc.Reconstruct(vctx)
			vspan.SetError(err)
			vspan.End()
			if err != nil {
				return err
			}
			solves++
			lastResidual = st.Residual
			res.Partials = append(res.Partials, Partial{
				Coverage:    cov,
				Samples:     fed,
				VirtualTime: gr.Done,
				Iterations:  st.SolverIterations,
				Residual:    st.Residual,
			})
		}
		progress(gr)
		return nil
	})
	if err != nil {
		return nil, err
	}

	fspan, fctx := obs.Start(ctx, "fleet.solve")
	fspan.SetAttr("samples", fed)
	fspan.SetAttr("coverage", 1.0)
	recon, stats, err := inc.Reconstruct(fctx)
	fspan.SetError(err)
	fspan.End()
	if err != nil {
		return nil, err
	}
	solves++
	lastResidual = stats.Residual
	if len(groups) > 0 {
		progress(&groups[len(groups)-1])
	}
	res.Report = s.report(groups, plan.serial, makespan, plan.retries)
	res.Landscape = recon
	res.Stats = stats
	res.BatchSizes = s.sizesSnapshot()
	res.DeviceStates = s.States()
	return res, nil
}

// tracePlan runs the virtual-time planning pass under a "fleet.plan" span,
// attaching the plan's cache-probe hit, every retry, and every quarantine
// transition as instantaneous virtual-time markers — the trace shows where
// the plan lost (or saved) virtual seconds even though planning itself is a
// single wall-clock pass.
func (s *Scheduler) tracePlan(ctx context.Context, g *landscape.Grid, indices []int, cache *exec.Cache) (*planOutcome, error) {
	span, _ := obs.Start(ctx, "fleet.plan")
	plan, err := s.plan(g, indices, cache)
	if err != nil {
		span.SetError(err)
		span.End()
		return nil, err
	}
	span.SetAttr("jobs", len(indices))
	span.SetAttr("batches", len(plan.groups))
	span.SetAttr("retries", plan.retries)
	span.SetAttr("makespan_s", plan.makespan)
	span.SetVirtual(0, plan.makespan)
	if plan.cacheHits > 0 {
		m := span.Child("fleet.cache_probe")
		m.SetAttr("hits", plan.cacheHits)
		m.SetVirtual(0, 0)
		m.End()
	}
	for _, re := range plan.retryEvents {
		m := span.Child("fleet.retry")
		m.SetAttr("device", s.devices[re.dev].Name)
		m.SetVirtual(re.time, re.time)
		m.End()
	}
	for _, qe := range plan.events {
		m := span.Child("fleet.quarantine")
		m.SetAttr("device", qe.Name)
		m.SetAttr("reason", qe.Reason)
		m.SetVirtual(qe.Time, qe.Time)
		m.End()
	}
	span.End()
	return plan, nil
}

func (s *Scheduler) sizesSnapshot() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sizesLocked()
}

// evaluate runs every scheduled group's circuit evaluations on a bounded
// worker pool and, when merge is non-nil, delivers completed groups to it in
// virtual-completion order — group i+1's merge never starts before group
// i's, regardless of which evaluation finishes first, so the streaming
// reconstruction consumes a deterministic sequence. Cache-served groups
// (device -1) skip evaluation; fresh measurements are stored back into the
// shared cache as they merge.
func (s *Scheduler) evaluate(ctx context.Context, g *landscape.Grid, groups []group, cache *exec.Cache, merge func(*group) error) error {
	workers := s.opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	evals := make([]exec.BatchEvaluator, len(s.devices))
	for d := range s.devices {
		evals[d] = exec.FromEvaluator(s.devices[d].Eval)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, workers)
	done := make([]chan struct{}, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for i := range groups {
		gr := &groups[i]
		if gr.Device < 0 {
			continue // cache-served, values already present
		}
		ch := make(chan struct{})
		done[i] = ch
		wg.Add(1)
		go func(i int, gr *group) {
			defer wg.Done()
			defer close(ch)
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-cctx.Done():
				errs[i] = cctx.Err()
				return
			}
			bspan, bctx := obs.Start(cctx, "fleet.batch")
			bspan.SetAttr("device", s.devices[gr.Device].Name)
			bspan.SetAttr("size", gr.Size)
			bspan.SetVirtual(gr.Start, gr.Done)
			if qs := bspan.Child("queue"); qs != nil {
				qs.SetVirtual(gr.Start, gr.Start+gr.Queue)
				qs.End()
			}
			if xs := bspan.Child("exec"); xs != nil {
				xs.SetVirtual(gr.Start+gr.Queue, gr.Done)
				xs.End()
			}
			vals, err := evals[gr.Device].EvaluateBatch(bctx, g.Points(gr.indices))
			bspan.SetError(err)
			bspan.End()
			if err != nil {
				errs[i] = fmt.Errorf("fleet: device %q failed: %w", s.devices[gr.Device].Name, err)
				cancel()
				return
			}
			gr.values = vals
		}(i, gr)
	}
	// Wait for every in-flight evaluation before returning, so no
	// goroutine outlives an error path.
	defer wg.Wait()

	for i := range groups {
		gr := &groups[i]
		if done[i] != nil {
			<-done[i]
		}
		if errs[i] != nil {
			// A real device failure cancels cctx, which makes unrelated
			// in-flight groups fail with context errors too; scanning by
			// index alone could surface one of those first and misreport
			// a device error as a cancellation. Wait everything out and
			// prefer the first non-context error.
			wg.Wait()
			for _, e := range errs {
				if e != nil && !errors.Is(e, context.Canceled) && !errors.Is(e, context.DeadlineExceeded) {
					return e
				}
			}
			return errs[i]
		}
		if cache != nil && gr.Device >= 0 {
			for j, gi := range gr.indices {
				cache.Store(g.Point(gi), gr.values[j])
			}
		}
		if merge != nil {
			if err := merge(gr); err != nil {
				cancel()
				return err
			}
		}
	}
	return ctx.Err()
}

// report assembles the qpu.RunReport for evaluated groups.
func (s *Scheduler) report(groups []group, serial, makespan float64, retries int) *qpu.RunReport {
	perDevice := make([]int, len(s.devices))
	var results []qpu.Result
	batches := make([]qpu.BatchGroup, len(groups))
	for i, gr := range groups {
		batches[i] = gr.BatchGroup
		if gr.Device >= 0 {
			perDevice[gr.Device] += gr.Size
		}
		for j, gi := range gr.indices {
			results = append(results, qpu.Result{
				Index: gi, Value: gr.values[j], Device: gr.Device, Done: gr.Done,
			})
		}
	}
	return &qpu.RunReport{
		Results:    results,
		Batches:    batches,
		Makespan:   makespan,
		SerialTime: serial,
		PerDevice:  perDevice,
		Retries:    retries,
	}
}
