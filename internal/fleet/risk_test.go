package fleet

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/qpu"
)

// TestObserveFailedBatchKeepsRatioSane pins that observe on a failed batch
// (the learner folds in every dispatch, failed ones included) cannot corrupt
// the EWMA ratio: estimates stay finite, positive, and within the range of
// the observations.
func TestObserveFailedBatchKeepsRatioSane(t *testing.T) {
	s, err := New(Options{Seed: 1}, heterogeneousFleet(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	st := &s.states[0]
	// Interleave "successful" and "failed" observations — observe does not
	// distinguish them, which is the property under test.
	s.observe(st, 10, 100, 50)
	s.observe(st, 10, 90, 55) // a failed batch reports its timing too
	s.observe(st, 20, 110, 100)
	r := st.ratio()
	if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
		t.Fatalf("ratio corrupted: %g", r)
	}
	// Queue estimate must stay within the observed envelope.
	if st.queueEst < 90 || st.queueEst > 110 {
		t.Fatalf("queue estimate %g escaped the observation range [90,110]", st.queueEst)
	}
	if st.execEst < 5-1e-9 || st.execEst > 5.5+1e-9 {
		t.Fatalf("exec-per-job estimate %g escaped [5,5.5]", st.execEst)
	}
	if st.batch < s.opt.MinBatch || st.batch > s.opt.MaxBatch {
		t.Fatalf("batch size %d outside [%d,%d]", st.batch, s.opt.MinBatch, s.opt.MaxBatch)
	}
}

// failureFleet is heterogeneousFleet with a per-device failure probability.
func failureFleet(failProb float64) []qpu.Device {
	devs := heterogeneousFleet(0.05, 10)
	for i := range devs {
		devs[i].FailureProb = failProb
	}
	return devs
}

// TestFleetDeterministicWithFailuresAcrossWorkers pins that adaptive (and
// risk-aware) scheduling stays bit-reproducible per seed with FailureProb > 0
// regardless of worker count.
func TestFleetDeterministicWithFailuresAcrossWorkers(t *testing.T) {
	g := testGrid(t)
	for _, risk := range []bool{false, true} {
		type snapshot struct {
			makespan, serial float64
			retries, batches int
			sizes            string
		}
		var base *snapshot
		for _, workers := range []int{1, 4, 13} {
			s, err := New(Options{Seed: 42, Workers: workers, RiskAware: risk}, failureFleet(0.25)...)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.Run(context.Background(), g, allIndices(g))
			if err != nil {
				t.Fatalf("risk=%v workers=%d: %v", risk, workers, err)
			}
			if rep.Retries == 0 {
				t.Fatalf("risk=%v workers=%d: no retries at 25%% failure probability", risk, workers)
			}
			sizes := ""
			for _, ds := range s.States() {
				sizes += ds.Name + ":" + string(rune('0'+ds.BatchSize%10))
			}
			snap := &snapshot{rep.Makespan, rep.SerialTime, rep.Retries, len(rep.Batches), sizes}
			if base == nil {
				base = snap
			} else if *snap != *base {
				t.Fatalf("risk=%v workers=%d: run diverged: %+v vs %+v", risk, workers, snap, base)
			}
		}
	}
}

// TestRiskQuarantinesDropout pins the quarantine lifecycle under a
// permanently dark device: the run completes, the dark device is benched
// after a few failures, and the risk-aware makespan beats the tail-blind
// adaptive scheduler, which keeps paying full batch latencies to the dark
// device for the whole run.
func TestRiskQuarantinesDropout(t *testing.T) {
	g := testGrid(t)
	mk := func(risk bool) ([]qpu.Device, Options) {
		devs := heterogeneousFleet(0, 1)
		devs[1].Scenario = qpu.Dropout{Start: 0, Duration: 1e12}
		return devs, Options{Seed: 7, RiskAware: risk}
	}

	devs, opt := mk(true)
	s, err := New(opt, devs...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ReconstructStream(context.Background(), g, streamOpts(0.2, 5))
	if err != nil {
		t.Fatalf("risk-aware run under dropout: %v", err)
	}
	if res.Report.Retries == 0 {
		t.Fatal("no retries recorded under a dark device")
	}
	benched := 0
	for _, ev := range res.Quarantines {
		if ev.Benched() {
			benched++
			if ev.Name != "mid" {
				t.Fatalf("benched %q, want the dark device", ev.Name)
			}
		}
	}
	if benched == 0 {
		t.Fatal("dark device never quarantined")
	}
	states := res.DeviceStates
	if !states[1].Quarantined || states[1].Quarantines == 0 {
		t.Fatalf("dark device state not quarantined: %+v", states[1])
	}
	if states[1].Jobs != 0 {
		t.Fatalf("dark device completed %d jobs", states[1].Jobs)
	}

	devs, opt = mk(false)
	blind, err := New(opt, devs...)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := blind.ReconstructStream(context.Background(), g, streamOpts(0.2, 5))
	if err != nil {
		t.Fatalf("adaptive run under dropout: %v", err)
	}
	if res.Report.Makespan > bres.Report.Makespan {
		t.Fatalf("risk-aware makespan %g exceeds tail-blind %g under dropout",
			res.Report.Makespan, bres.Report.Makespan)
	}
}

// TestRiskProbeReadmission pins that a device recovering from a dropout
// window is re-probed and re-admitted: it carries jobs again after the
// window, and the event log shows bench followed by probe-succeeded.
func TestRiskProbeReadmission(t *testing.T) {
	g := testGrid(t)
	devs := heterogeneousFleet(0, 1)
	// Dark early, back well before the run can finish.
	devs[0].Scenario = qpu.Dropout{Start: 0, Duration: 800}
	s, err := New(Options{Seed: 11, RiskAware: true, ProbeBackoff: 100}, devs...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ReconstructStream(context.Background(), g, streamOpts(0.8, 3))
	if err != nil {
		t.Fatal(err)
	}
	var benchedAt, readmitAt float64 = -1, -1
	for _, ev := range res.Quarantines {
		if ev.Device != 0 {
			continue
		}
		if ev.Benched() && benchedAt < 0 {
			benchedAt = ev.Time
		}
		if !ev.Benched() {
			readmitAt = ev.Time
		}
	}
	if benchedAt < 0 {
		t.Fatal("dropout device never benched")
	}
	if readmitAt < 0 {
		t.Fatal("recovered device never re-admitted")
	}
	if readmitAt < 800 {
		t.Fatalf("re-admitted at %g while still dark (window ends at 800)", readmitAt)
	}
	if res.DeviceStates[0].Quarantined {
		t.Fatal("device still quarantined at end of run")
	}
	if res.DeviceStates[0].Jobs == 0 {
		t.Fatal("re-admitted device never carried jobs")
	}
}

// TestRiskCapBoundsTailExposure pins the cap formula on crafted state: a
// device with frequent large tails gets its batch capped, one with benign
// tails keeps its learned size.
func TestRiskCapBoundsTailExposure(t *testing.T) {
	s, err := New(Options{Seed: 1, RiskAware: true}, heterogeneousFleet(0, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	s.meanBatch, s.meanSeen = 200, true
	st := &s.states[0]
	st.observed = true
	st.queueEst, st.execEst = 120, 1
	st.batch = 240

	// No tails observed: no cap.
	if got := s.riskCapLocked(0); got != math.MaxInt {
		t.Fatalf("cap without tail observations: %d", got)
	}
	// Isolated events below the evidence gate: still no cap.
	st.tailSeen, st.tailCount, st.tailProb, st.tailMag = true, 1, 0.4, 20
	if got := s.riskCapLocked(0); got != math.MaxInt {
		t.Fatalf("cap engaged on a single tail event: %d", got)
	}
	// Benign rare tails: exposure 0.05*19*(120+k) ≤ 6*200 → no cap bite.
	st.tailCount, st.tailProb, st.tailMag = 5, 0.05, 20
	if got := s.riskCapLocked(0); got < 240 {
		t.Fatalf("benign tails over-capped: %d", got)
	}
	// Frequent heavy tails: 0.5*19*(120+k) ≤ 1200 → k ≤ ~6 → floor MinBatch.
	st.tailProb = 0.5
	got := s.riskCapLocked(0)
	if got >= 240 {
		t.Fatalf("heavy tails not capped: %d", got)
	}
	if got < s.opt.MinBatch {
		t.Fatalf("cap %d below MinBatch", got)
	}
}

// TestRiskOptionsValidation pins rejection of malformed risk options.
func TestRiskOptionsValidation(t *testing.T) {
	devs := heterogeneousFleet(0, 1)
	for _, opt := range []Options{
		{TailBudget: -1},
		{MaxRetries: -2},
		{RetryBackoff: -5},
		{QuarantineAfter: -1},
		{QuarantineFailRate: 1.5},
		{QuarantineTailRate: -0.1},
		{ProbeBackoff: math.NaN()},
	} {
		if _, err := New(opt, devs...); err == nil {
			t.Errorf("options %+v accepted, want error", opt)
		}
	}
}

// TestRiskRetryStormSurvives pins that correlated retry storms (all devices
// share one storm scenario) are survived by both schedulers with every
// sample delivered, and the risk-aware scheduler does not lose to the
// tail-blind one.
func TestRiskRetryStormSurvives(t *testing.T) {
	g := testGrid(t)
	run := func(risk bool) *StreamResult {
		devs := heterogeneousFleet(0, 1)
		storm := qpu.NewRetryStorm(21, 300, 400, 0.9)
		for i := range devs {
			devs[i].Scenario = storm
		}
		s, err := New(Options{Seed: 13, RiskAware: risk}, devs...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.ReconstructStream(context.Background(), g, streamOpts(0.3, 5))
		if err != nil {
			t.Fatalf("risk=%v: %v", risk, err)
		}
		return res
	}
	riskRes := run(true)
	blindRes := run(false)
	if riskRes.Report.Retries == 0 || blindRes.Report.Retries == 0 {
		t.Fatalf("storm produced no retries (risk %d, blind %d)",
			riskRes.Report.Retries, blindRes.Report.Retries)
	}
	if len(riskRes.Report.Results) != len(blindRes.Report.Results) {
		t.Fatalf("sample counts diverge: %d vs %d",
			len(riskRes.Report.Results), len(blindRes.Report.Results))
	}
}

// streamOpts builds minimal reconstruction options for streaming tests.
func streamOpts(fraction float64, seed int64) core.Options {
	return core.Options{SamplingFraction: fraction, Seed: seed}
}
