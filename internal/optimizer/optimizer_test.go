package optimizer

import (
	"errors"
	"math"
	"testing"
)

// quadratic has its minimum at (1, -2).
func quadratic(x []float64) (float64, error) {
	dx, dy := x[0]-1, x[1]+2
	return dx*dx + 2*dy*dy, nil
}

// rosenbrock is the classic banana function, minimum at (1,1).
func rosenbrock(x []float64) (float64, error) {
	a := 1 - x[0]
	b := x[1] - x[0]*x[0]
	return a*a + 100*b*b, nil
}

func TestADAMQuadratic(t *testing.T) {
	res, err := ADAM(quadratic, []float64{3, 3}, ADAMOptions{MaxIter: 800})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 0.05 || math.Abs(res.X[1]+2) > 0.05 {
		t.Fatalf("ADAM ended at %v (f=%g)", res.X, res.F)
	}
	if res.Queries < 100 {
		t.Fatalf("ADAM used suspiciously few queries: %d", res.Queries)
	}
	if len(res.Path) != len(res.FPath) {
		t.Fatal("path lengths differ")
	}
	// Queries per iteration: 2n finite-difference + 1 evaluation.
	wantQueries := 1 + res.Iterations*(2*2+1)
	if res.Queries != wantQueries {
		t.Fatalf("queries %d want %d", res.Queries, wantQueries)
	}
}

func TestCobylaQuadratic(t *testing.T) {
	res, err := Cobyla(quadratic, []float64{3, 3}, CobylaOptions{MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 0.05 || math.Abs(res.X[1]+2) > 0.05 {
		t.Fatalf("Cobyla ended at %v (f=%g)", res.X, res.F)
	}
}

// TestCobylaUsesFarFewerQueriesThanADAM is the qualitative Table 6 property.
func TestCobylaUsesFarFewerQueriesThanADAM(t *testing.T) {
	adam, err := ADAM(quadratic, []float64{2.5, 1}, ADAMOptions{MaxIter: 2000, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	cob, err := Cobyla(quadratic, []float64{2.5, 1}, CobylaOptions{MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !cob.Converged {
		t.Fatal("Cobyla did not converge")
	}
	if cob.Queries*3 > adam.Queries {
		t.Fatalf("expected COBYLA (%d queries) << ADAM (%d queries)", cob.Queries, adam.Queries)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	res, err := NelderMead(quadratic, []float64{4, 4}, NelderMeadOptions{MaxIter: 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 0.02 || math.Abs(res.X[1]+2) > 0.02 {
		t.Fatalf("NelderMead ended at %v", res.X)
	}
	if !res.Converged {
		t.Fatal("NelderMead did not converge")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	res, err := NelderMead(rosenbrock, []float64{-1, 1}, NelderMeadOptions{MaxIter: 4000, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-3 {
		t.Fatalf("NelderMead stuck at f=%g x=%v", res.F, res.X)
	}
}

func TestSPSAQuadratic(t *testing.T) {
	res, err := SPSA(quadratic, []float64{3, 3}, SPSAOptions{MaxIter: 2000, Seed: 7, A: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 0.2 || math.Abs(res.X[1]+2) > 0.2 {
		t.Fatalf("SPSA ended at %v", res.X)
	}
	// SPSA queries: 1 initial + 3 per iteration.
	if res.Queries != 1+3*res.Iterations {
		t.Fatalf("queries %d iterations %d", res.Queries, res.Iterations)
	}
}

func TestBoundsRespected(t *testing.T) {
	bounds := []Bounds{{Lo: 0, Hi: 0.5}, {Lo: -1, Hi: 0}}
	check := func(name string, res *Result, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, p := range res.Path {
			if p[0] < -1e-9 || p[0] > 0.5+1e-9 || p[1] < -1-1e-9 || p[1] > 1e-9 {
				t.Fatalf("%s: iterate %v violates bounds", name, p)
			}
		}
	}
	res, err := ADAM(quadratic, []float64{0.3, -0.5}, ADAMOptions{MaxIter: 50, Bounds: bounds})
	check("adam", res, err)
	res, err = Cobyla(quadratic, []float64{0.3, -0.5}, CobylaOptions{MaxIter: 80, Bounds: bounds})
	check("cobyla", res, err)
	res, err = NelderMead(quadratic, []float64{0.3, -0.5}, NelderMeadOptions{MaxIter: 80, Bounds: bounds})
	check("neldermead", res, err)
	res, err = SPSA(quadratic, []float64{0.3, -0.5}, SPSAOptions{MaxIter: 50, Seed: 2, Bounds: bounds})
	check("spsa", res, err)
	// The constrained optimum is at the boundary (0.5, 0)... f = 0.25+2*4=8.25
	// at corner; interior direction is blocked. Just confirm the best point
	// is the corner nearest the unconstrained optimum.
	if math.Abs(res.X[0]-0.5) > 0.1 {
		t.Fatalf("SPSA best %v, expected near x0=0.5 boundary", res.X)
	}
}

func TestValidation(t *testing.T) {
	if _, err := ADAM(quadratic, nil, ADAMOptions{}); err == nil {
		t.Error("want error for empty start")
	}
	if _, err := Cobyla(quadratic, []float64{math.NaN(), 0}, CobylaOptions{}); err == nil {
		t.Error("want error for NaN start")
	}
	if _, err := NelderMead(quadratic, []float64{0, 0}, NelderMeadOptions{Bounds: []Bounds{{0, 1}}}); err == nil {
		t.Error("want error for bounds arity mismatch")
	}
}

func TestObjectiveErrorPropagates(t *testing.T) {
	sentinel := errors.New("qpu offline")
	bad := func(x []float64) (float64, error) { return 0, sentinel }
	if _, err := ADAM(bad, []float64{0, 0}, ADAMOptions{MaxIter: 5}); !errors.Is(err, sentinel) {
		t.Errorf("adam err=%v", err)
	}
	if _, err := Cobyla(bad, []float64{0, 0}, CobylaOptions{MaxIter: 5}); !errors.Is(err, sentinel) {
		t.Errorf("cobyla err=%v", err)
	}
	if _, err := NelderMead(bad, []float64{0, 0}, NelderMeadOptions{MaxIter: 5}); !errors.Is(err, sentinel) {
		t.Errorf("neldermead err=%v", err)
	}
	if _, err := SPSA(bad, []float64{0, 0}, SPSAOptions{MaxIter: 5}); !errors.Is(err, sentinel) {
		t.Errorf("spsa err=%v", err)
	}
}

func TestEuclideanDistance(t *testing.T) {
	if d := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance %g want 5", d)
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := solveLinear(a, b)
	if !ok {
		t.Fatal("solve failed")
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x=%v want [1 3]", x)
	}
	// Singular system.
	a2 := [][]float64{{1, 1}, {2, 2}}
	if _, ok := solveLinear(a2, []float64{1, 2}); ok {
		t.Fatal("singular system should fail")
	}
}

func TestPathStartsAtInitialPoint(t *testing.T) {
	start := []float64{2, 2}
	res, err := ADAM(quadratic, start, ADAMOptions{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Path[0][0] != 2 || res.Path[0][1] != 2 {
		t.Fatalf("path starts at %v", res.Path[0])
	}
}
