package optimizer

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

func bowl(x []float64) (float64, error) {
	return (x[0]-0.3)*(x[0]-0.3) + 2*(x[1]+0.1)*(x[1]+0.1), nil
}

// TestADAMBatchMatchesADAM checks the batched stencil reproduces the serial
// optimizer exactly on a deterministic objective: same iterates, same best
// point, same query count.
func TestADAMBatchMatchesADAM(t *testing.T) {
	x0 := []float64{1, -1}
	opt := ADAMOptions{MaxIter: 200}
	serial, err := ADAM(bowl, x0, opt)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := ADAMBatch(SerialBatch(bowl), x0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Queries != batched.Queries {
		t.Fatalf("queries differ: %d vs %d", serial.Queries, batched.Queries)
	}
	if serial.Iterations != batched.Iterations || serial.Converged != batched.Converged {
		t.Fatalf("trajectories differ: %d/%v vs %d/%v",
			serial.Iterations, serial.Converged, batched.Iterations, batched.Converged)
	}
	if serial.F != batched.F {
		t.Fatalf("best cost differs: %g vs %g", serial.F, batched.F)
	}
	for i := range serial.X {
		if serial.X[i] != batched.X[i] {
			t.Fatalf("best point differs at %d: %g vs %g", i, serial.X[i], batched.X[i])
		}
	}
	if len(serial.Path) != len(batched.Path) {
		t.Fatalf("path lengths differ: %d vs %d", len(serial.Path), len(batched.Path))
	}
	if math.Abs(serial.X[0]-0.3) > 1e-2 || math.Abs(serial.X[1]+0.1) > 1e-2 {
		t.Fatalf("did not converge near (0.3,-0.1): %v", serial.X)
	}
}

// TestADAMBatchSubmitsWholeStencil checks each step's 2n probes arrive as
// one submission — the property a batch-aware QPU backend amortizes.
func TestADAMBatchSubmitsWholeStencil(t *testing.T) {
	var batches, points atomic.Int64
	f := func(xs [][]float64) ([]float64, error) {
		batches.Add(1)
		points.Add(int64(len(xs)))
		out := make([]float64, len(xs))
		for i, x := range xs {
			v, _ := bowl(x)
			out[i] = v
		}
		return out, nil
	}
	res, err := ADAMBatch(f, []float64{1, -1}, ADAMOptions{MaxIter: 10, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Per step: one 4-point stencil batch + one iterate evaluation, plus
	// the initial point: batches = 1 + 2*iters, points = 1 + 5*iters.
	iters := int64(res.Iterations)
	if got := batches.Load(); got != 1+2*iters {
		t.Fatalf("%d submissions for %d iterations, want %d", got, iters, 1+2*iters)
	}
	if got := points.Load(); got != 1+5*iters {
		t.Fatalf("%d points for %d iterations, want %d", got, iters, 1+5*iters)
	}
	if int64(res.Queries) != points.Load() {
		t.Fatalf("query accounting %d != submitted points %d", res.Queries, points.Load())
	}
}

func TestADAMBatchErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	f := func(xs [][]float64) ([]float64, error) {
		calls++
		if calls > 1 {
			return nil, boom
		}
		return make([]float64, len(xs)), nil
	}
	if _, err := ADAMBatch(f, []float64{0, 0}, ADAMOptions{MaxIter: 5}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
