package optimizer

import (
	"math"
	"math/rand"
	"sort"
)

// NelderMeadOptions configures the Nelder-Mead simplex optimizer.
type NelderMeadOptions struct {
	// Step is the initial simplex edge (default 0.25).
	Step float64
	// MaxIter caps objective evaluations (default 500).
	MaxIter int
	// Tol stops when the simplex function spread drops below it
	// (default 1e-6).
	Tol float64
	// Bounds optionally clips iterates.
	Bounds []Bounds
}

func (o *NelderMeadOptions) fill() {
	if o.Step == 0 {
		o.Step = 0.25
	}
	if o.MaxIter == 0 {
		o.MaxIter = 500
	}
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
}

// NelderMead minimizes f with the classic simplex method (reflection,
// expansion, contraction, shrink).
func NelderMead(f Objective, x0 []float64, opt NelderMeadOptions) (*Result, error) {
	if err := validateStart(x0, opt.Bounds); err != nil {
		return nil, err
	}
	opt.fill()
	c := &counter{f: f}
	n := len(x0)
	res := &Result{}

	type vertex struct {
		x []float64
		f float64
	}
	record := func(x []float64, fv float64) {
		res.Path = append(res.Path, append([]float64(nil), x...))
		res.FPath = append(res.FPath, fv)
	}
	evalAt := func(x []float64) (float64, error) {
		clampToBounds(x, opt.Bounds)
		v, err := c.eval(x)
		if err != nil {
			return 0, err
		}
		record(x, v)
		return v, nil
	}

	simplex := make([]vertex, n+1)
	base := append([]float64(nil), x0...)
	clampToBounds(base, opt.Bounds)
	fv, err := evalAt(base)
	if err != nil {
		return nil, err
	}
	simplex[0] = vertex{x: base, f: fv}
	for i := 1; i <= n; i++ {
		p := append([]float64(nil), base...)
		p[i-1] += opt.Step
		v, err := evalAt(p)
		if err != nil {
			return nil, err
		}
		simplex[i] = vertex{x: p, f: v}
	}

	for c.n < opt.MaxIter {
		res.Iterations++
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		if math.Abs(simplex[n].f-simplex[0].f) < opt.Tol {
			res.Converged = true
			break
		}
		// Centroid of all but the worst.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i].x[j] / float64(n)
			}
		}
		worst := simplex[n]
		reflect := make([]float64, n)
		for j := 0; j < n; j++ {
			reflect[j] = centroid[j] + (centroid[j] - worst.x[j])
		}
		fr, err := evalAt(reflect)
		if err != nil {
			return nil, err
		}
		switch {
		case fr < simplex[0].f:
			expand := make([]float64, n)
			for j := 0; j < n; j++ {
				expand[j] = centroid[j] + 2*(centroid[j]-worst.x[j])
			}
			fe, err := evalAt(expand)
			if err != nil {
				return nil, err
			}
			if fe < fr {
				simplex[n] = vertex{x: expand, f: fe}
			} else {
				simplex[n] = vertex{x: reflect, f: fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{x: reflect, f: fr}
		default:
			contract := make([]float64, n)
			for j := 0; j < n; j++ {
				contract[j] = centroid[j] + 0.5*(worst.x[j]-centroid[j])
			}
			fc, err := evalAt(contract)
			if err != nil {
				return nil, err
			}
			if fc < worst.f {
				simplex[n] = vertex{x: contract, f: fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + 0.5*(simplex[i].x[j]-simplex[0].x[j])
					}
					v, err := evalAt(simplex[i].x)
					if err != nil {
						return nil, err
					}
					simplex[i].f = v
				}
			}
		}
	}
	res.X, res.F = bestOf(res.Path, res.FPath)
	res.Queries = c.n
	return res, nil
}

// SPSAOptions configures simultaneous-perturbation stochastic approximation.
type SPSAOptions struct {
	// A, C are the gain scales (defaults 0.2, 0.1); Alpha and Gamma the
	// decay exponents (defaults 0.602, 0.101 — the standard Spall values).
	A, C, Alpha, Gamma float64
	// MaxIter caps iterations (default 200).
	MaxIter int
	// Seed drives the random perturbations.
	Seed int64
	// Bounds optionally clips iterates.
	Bounds []Bounds
}

func (o *SPSAOptions) fill() {
	if o.A == 0 {
		o.A = 0.2
	}
	if o.C == 0 {
		o.C = 0.1
	}
	if o.Alpha == 0 {
		o.Alpha = 0.602
	}
	if o.Gamma == 0 {
		o.Gamma = 0.101
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
}

// SPSA minimizes f with simultaneous-perturbation gradient estimates: two
// queries per iteration regardless of dimension, the standard choice for
// noisy VQA objectives.
func SPSA(f Objective, x0 []float64, opt SPSAOptions) (*Result, error) {
	if err := validateStart(x0, opt.Bounds); err != nil {
		return nil, err
	}
	opt.fill()
	rng := rand.New(rand.NewSource(opt.Seed))
	c := &counter{f: f}
	n := len(x0)
	x := append([]float64(nil), x0...)
	clampToBounds(x, opt.Bounds)
	res := &Result{}
	fx, err := c.eval(x)
	if err != nil {
		return nil, err
	}
	res.Path = append(res.Path, append([]float64(nil), x...))
	res.FPath = append(res.FPath, fx)

	delta := make([]float64, n)
	plus := make([]float64, n)
	minus := make([]float64, n)
	for it := 1; it <= opt.MaxIter; it++ {
		res.Iterations = it
		ak := opt.A / math.Pow(float64(it), opt.Alpha)
		ck := opt.C / math.Pow(float64(it), opt.Gamma)
		for i := range delta {
			if rng.Intn(2) == 0 {
				delta[i] = 1
			} else {
				delta[i] = -1
			}
			plus[i] = x[i] + ck*delta[i]
			minus[i] = x[i] - ck*delta[i]
		}
		clampToBounds(plus, opt.Bounds)
		clampToBounds(minus, opt.Bounds)
		fp, err := c.eval(plus)
		if err != nil {
			return nil, err
		}
		fm, err := c.eval(minus)
		if err != nil {
			return nil, err
		}
		for i := range x {
			g := (fp - fm) / (2 * ck * delta[i])
			x[i] -= ak * g
		}
		clampToBounds(x, opt.Bounds)
		fx, err = c.eval(x)
		if err != nil {
			return nil, err
		}
		res.Path = append(res.Path, append([]float64(nil), x...))
		res.FPath = append(res.FPath, fx)
	}
	res.X, res.F = bestOf(res.Path, res.FPath)
	res.Queries = c.n
	return res, nil
}

// EuclideanDistance returns ||a-b||_2, the endpoint-proximity measure of
// Figure 12.
func EuclideanDistance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
