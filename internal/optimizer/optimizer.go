// Package optimizer implements the classical optimizers of the VQA
// workflow: ADAM with finite-difference gradients (gradient-based, many
// queries), a COBYLA-style derivative-free linear-model trust-region method
// (few queries), Nelder-Mead, and SPSA. Each optimizer records its query
// count and the path it traverses, which OSCAR superimposes on reconstructed
// landscapes (Figures 2, 11, 13) and uses for the query accounting of
// Table 6.
package optimizer

import (
	"errors"
	"fmt"
	"math"
)

// Objective is a cost function over parameter vectors.
type Objective func(x []float64) (float64, error)

// BatchObjective evaluates many parameter vectors in one submission — the
// shape the batched execution engine (and a real QPU queue) rewards. The
// returned slice has one cost per input vector, in input order.
type BatchObjective func(xs [][]float64) ([]float64, error)

// SerialBatch lifts a point objective into a BatchObjective that loops.
func SerialBatch(f Objective) BatchObjective {
	return func(xs [][]float64) ([]float64, error) {
		out := make([]float64, len(xs))
		for i, x := range xs {
			v, err := f(x)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
}

// Bounds restricts a parameter to [Lo, Hi].
type Bounds struct {
	Lo, Hi float64
}

// Result reports an optimization run.
type Result struct {
	// X is the best parameter vector found and F its cost.
	X []float64
	F float64
	// Queries counts objective evaluations (QPU circuit runs in the real
	// workflow — the Table 6 budget).
	Queries int
	// Iterations counts optimizer steps.
	Iterations int
	// Converged reports whether the stopping tolerance was reached
	// (rather than the iteration cap).
	Converged bool
	// Path holds the iterate sequence (including the start), for
	// landscape overlays.
	Path [][]float64
	// FPath holds the cost at each Path entry.
	FPath []float64
}

type counter struct {
	f Objective
	n int
}

func (c *counter) eval(x []float64) (float64, error) {
	c.n++
	return c.f(x)
}

// batchCounter counts queries through a BatchObjective.
type batchCounter struct {
	f BatchObjective
	n int
}

func (c *batchCounter) eval(x []float64) (float64, error) {
	vs, err := c.evalBatch([][]float64{x})
	if err != nil {
		return 0, err
	}
	return vs[0], nil
}

func (c *batchCounter) evalBatch(xs [][]float64) ([]float64, error) {
	c.n += len(xs)
	return c.f(xs)
}

func clampToBounds(x []float64, bounds []Bounds) {
	if bounds == nil {
		return
	}
	for i := range x {
		if i >= len(bounds) {
			return
		}
		if x[i] < bounds[i].Lo {
			x[i] = bounds[i].Lo
		}
		if x[i] > bounds[i].Hi {
			x[i] = bounds[i].Hi
		}
	}
}

func validateStart(x0 []float64, bounds []Bounds) error {
	if len(x0) == 0 {
		return errors.New("optimizer: empty start point")
	}
	for _, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("optimizer: non-finite start coordinate %g", v)
		}
	}
	if bounds != nil && len(bounds) != len(x0) {
		return fmt.Errorf("optimizer: %d bounds for %d parameters", len(bounds), len(x0))
	}
	return nil
}

// ADAMOptions configures the ADAM optimizer.
type ADAMOptions struct {
	// LearningRate defaults to 0.05.
	LearningRate float64
	// Beta1, Beta2 and Eps default to 0.9, 0.999, 1e-8.
	Beta1, Beta2, Eps float64
	// FDStep is the central finite-difference step (default 0.05).
	FDStep float64
	// MaxIter caps iterations (default 500).
	MaxIter int
	// Tol stops when the parameter step drops below it (default 1e-4).
	Tol float64
	// Bounds optionally clips iterates.
	Bounds []Bounds
}

func (o *ADAMOptions) fill() {
	if o.LearningRate == 0 {
		o.LearningRate = 0.05
	}
	if o.Beta1 == 0 {
		o.Beta1 = 0.9
	}
	if o.Beta2 == 0 {
		o.Beta2 = 0.999
	}
	if o.Eps == 0 {
		o.Eps = 1e-8
	}
	if o.FDStep == 0 {
		o.FDStep = 0.05
	}
	if o.MaxIter == 0 {
		o.MaxIter = 500
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
}

// ADAM minimizes f from x0 using the ADAM update rule with central
// finite-difference gradients (2 queries per dimension per step, matching
// the high query counts the paper reports for gradient-based optimizers).
func ADAM(f Objective, x0 []float64, opt ADAMOptions) (*Result, error) {
	return ADAMBatch(SerialBatch(f), x0, opt)
}

// ADAMBatch is ADAM with the full central-difference stencil — all 2n
// probes of a step — submitted as a single batch, so a batch-aware backend
// (the execution engine, a QPU fleet) runs the stencil in one job. For a
// deterministic objective the iterates, query count, and result match ADAM
// exactly.
func ADAMBatch(f BatchObjective, x0 []float64, opt ADAMOptions) (*Result, error) {
	if err := validateStart(x0, opt.Bounds); err != nil {
		return nil, err
	}
	opt.fill()
	c := &batchCounter{f: f}
	n := len(x0)
	x := append([]float64(nil), x0...)
	clampToBounds(x, opt.Bounds)
	m := make([]float64, n)
	v := make([]float64, n)
	grad := make([]float64, n)
	stencil := make([][]float64, 2*n)
	for j := range stencil {
		stencil[j] = make([]float64, n)
	}

	res := &Result{}
	fx, err := c.eval(x)
	if err != nil {
		return nil, err
	}
	res.Path = append(res.Path, append([]float64(nil), x...))
	res.FPath = append(res.FPath, fx)

	for it := 1; it <= opt.MaxIter; it++ {
		res.Iterations = it
		// One batch per step: probes ordered (+0, -0, +1, -1, ...), the
		// same order the serial loop used. Rows are reused across steps.
		for i := 0; i < n; i++ {
			copy(stencil[2*i], x)
			stencil[2*i][i] = x[i] + opt.FDStep
			copy(stencil[2*i+1], x)
			stencil[2*i+1][i] = x[i] - opt.FDStep
		}
		fs, err := c.evalBatch(stencil)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			grad[i] = (fs[2*i] - fs[2*i+1]) / (2 * opt.FDStep)
		}
		var stepNorm float64
		for i := 0; i < n; i++ {
			m[i] = opt.Beta1*m[i] + (1-opt.Beta1)*grad[i]
			v[i] = opt.Beta2*v[i] + (1-opt.Beta2)*grad[i]*grad[i]
			mHat := m[i] / (1 - math.Pow(opt.Beta1, float64(it)))
			vHat := v[i] / (1 - math.Pow(opt.Beta2, float64(it)))
			step := opt.LearningRate * mHat / (math.Sqrt(vHat) + opt.Eps)
			x[i] -= step
			stepNorm += step * step
		}
		clampToBounds(x, opt.Bounds)
		fx, err = c.eval(x)
		if err != nil {
			return nil, err
		}
		res.Path = append(res.Path, append([]float64(nil), x...))
		res.FPath = append(res.FPath, fx)
		if math.Sqrt(stepNorm) < opt.Tol {
			res.Converged = true
			break
		}
	}
	res.X, res.F = bestOf(res.Path, res.FPath)
	res.Queries = c.n
	return res, nil
}

func bestOf(path [][]float64, fpath []float64) ([]float64, float64) {
	best := 0
	for i, f := range fpath {
		if f < fpath[best] {
			best = i
		}
	}
	return append([]float64(nil), path[best]...), fpath[best]
}

// CobylaOptions configures the COBYLA-style optimizer.
type CobylaOptions struct {
	// RhoBegin is the initial trust radius (default 0.2).
	RhoBegin float64
	// RhoEnd is the final trust radius; the run converges when the
	// radius shrinks below it (default 1e-4).
	RhoEnd float64
	// MaxIter caps objective evaluations (default 500).
	MaxIter int
	// Bounds optionally clips iterates.
	Bounds []Bounds
}

func (o *CobylaOptions) fill() {
	if o.RhoBegin == 0 {
		o.RhoBegin = 0.2
	}
	if o.RhoEnd == 0 {
		o.RhoEnd = 1e-4
	}
	if o.MaxIter == 0 {
		o.MaxIter = 500
	}
}

// Cobyla minimizes f with a derivative-free linear-approximation
// trust-region method in the spirit of Powell's COBYLA (without general
// nonlinear constraints — VQA parameter spaces are boxes). It maintains a
// simplex of n+1 points, fits the interpolating linear model, and steps to
// the model minimizer within the trust radius, shrinking the radius when the
// model stops predicting descent. Like COBYLA it uses very few objective
// queries per step (one), reproducing the paper's ADAM-vs-COBYLA query gap.
func Cobyla(f Objective, x0 []float64, opt CobylaOptions) (*Result, error) {
	if err := validateStart(x0, opt.Bounds); err != nil {
		return nil, err
	}
	opt.fill()
	c := &counter{f: f}
	n := len(x0)
	rho := opt.RhoBegin
	res := &Result{}

	// Initial simplex: x0 plus rho steps along each axis, stepping into
	// the feasible region when x0 sits on a bound (a clamped step toward
	// a bound would collapse the simplex).
	pts := make([][]float64, n+1)
	fvals := make([]float64, n+1)
	pts[0] = append([]float64(nil), x0...)
	clampToBounds(pts[0], opt.Bounds)
	for i := 1; i <= n; i++ {
		pts[i] = simplexStep(pts[0], i-1, rho, opt.Bounds)
	}
	for i := range pts {
		v, err := c.eval(pts[i])
		if err != nil {
			return nil, err
		}
		fvals[i] = v
		res.Path = append(res.Path, append([]float64(nil), pts[i]...))
		res.FPath = append(res.FPath, v)
	}

	for c.n < opt.MaxIter {
		res.Iterations++
		// Fit the linear model f ~ c0 + g.x through the simplex.
		g, ok := linearModel(pts, fvals)
		if !ok {
			// Degenerate simplex: rebuild around the best point.
			rebuildSimplex(pts, fvals, rho, opt.Bounds)
			if err := refresh(c, pts, fvals, res); err != nil {
				return nil, err
			}
			continue
		}
		gnorm := 0.0
		for _, gi := range g {
			gnorm += gi * gi
		}
		gnorm = math.Sqrt(gnorm)
		best := argmin(fvals)
		if gnorm < 1e-12 {
			rho /= 2
			if rho < opt.RhoEnd {
				res.Converged = true
				break
			}
			rebuildSimplex(pts, fvals, rho, opt.Bounds)
			if err := refresh(c, pts, fvals, res); err != nil {
				return nil, err
			}
			continue
		}
		// Candidate: steepest descent of the linear model, length rho.
		cand := append([]float64(nil), pts[best]...)
		for i := range cand {
			cand[i] -= rho * g[i] / gnorm
		}
		clampToBounds(cand, opt.Bounds)
		fc, err := c.eval(cand)
		if err != nil {
			return nil, err
		}
		res.Path = append(res.Path, append([]float64(nil), cand...))
		res.FPath = append(res.FPath, fc)
		if fc < fvals[best] {
			// Accept: replace the worst simplex point.
			worst := argmax(fvals)
			pts[worst] = cand
			fvals[worst] = fc
			continue
		}
		// Reject: shrink the trust region.
		rho /= 2
		if rho < opt.RhoEnd {
			res.Converged = true
			break
		}
		shrinkSimplex(pts, fvals, best)
		if err := refresh(c, pts, fvals, res); err != nil {
			return nil, err
		}
	}
	res.X, res.F = bestOf(res.Path, res.FPath)
	res.Queries = c.n
	return res, nil
}

// refresh re-evaluates any simplex point whose cached value is NaN.
func refresh(c *counter, pts [][]float64, fvals []float64, res *Result) error {
	for i := range pts {
		if !math.IsNaN(fvals[i]) {
			continue
		}
		v, err := c.eval(pts[i])
		if err != nil {
			return err
		}
		fvals[i] = v
		res.Path = append(res.Path, append([]float64(nil), pts[i]...))
		res.FPath = append(res.FPath, v)
	}
	return nil
}

func rebuildSimplex(pts [][]float64, fvals []float64, rho float64, bounds []Bounds) {
	best := argmin(fvals)
	base := append([]float64(nil), pts[best]...)
	fBase := fvals[best]
	for i := range pts {
		if i == 0 {
			pts[0] = base
			fvals[0] = fBase
			continue
		}
		pts[i] = simplexStep(base, i-1, rho, bounds)
		fvals[i] = math.NaN()
	}
}

// simplexStep returns base displaced by rho along axis, flipping the step
// direction if that would leave the feasible box.
func simplexStep(base []float64, axis int, rho float64, bounds []Bounds) []float64 {
	p := append([]float64(nil), base...)
	step := rho
	if bounds != nil && axis < len(bounds) && p[axis]+rho > bounds[axis].Hi {
		step = -rho
	}
	p[axis] += step
	clampToBounds(p, bounds)
	return p
}

func shrinkSimplex(pts [][]float64, fvals []float64, best int) {
	for i := range pts {
		if i == best {
			continue
		}
		for j := range pts[i] {
			pts[i][j] = pts[best][j] + (pts[i][j]-pts[best][j])/2
		}
		fvals[i] = math.NaN()
	}
}

func argmin(v []float64) int {
	best := 0
	for i := range v {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

func argmax(v []float64) int {
	// NaN-aware: prefer any NaN slot as "worst" so it gets replaced.
	for i := range v {
		if math.IsNaN(v[i]) {
			return i
		}
	}
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// linearModel solves the (n+1)x(n+1) interpolation system for the gradient
// of the affine model through the simplex. Returns ok=false when the simplex
// is degenerate.
func linearModel(pts [][]float64, fvals []float64) ([]float64, bool) {
	n := len(pts) - 1
	// Unknowns: [c0, g_1..g_n]; equations: c0 + g.p_i = f_i.
	a := make([][]float64, n+1)
	b := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		if math.IsNaN(fvals[i]) {
			return nil, false
		}
		a[i] = make([]float64, n+1)
		a[i][0] = 1
		copy(a[i][1:], pts[i])
		b[i] = fvals[i]
	}
	sol, ok := solveLinear(a, b)
	if !ok {
		return nil, false
	}
	return sol[1:], true
}

// solveLinear is Gaussian elimination with partial pivoting.
func solveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-14 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			w := a[r][col] / a[col][col]
			for k := col; k < n; k++ {
				a[r][k] -= w * a[col][k]
			}
			b[r] -= w * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for k := r + 1; k < n; k++ {
			s -= a[r][k] * x[k]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}
