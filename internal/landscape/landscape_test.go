package landscape

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustGrid(t *testing.T, axes ...Axis) *Grid {
	t.Helper()
	g, err := NewGrid(axes...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAxisValues(t *testing.T) {
	a := Axis{Name: "beta", Min: -1, Max: 1, N: 5}
	v := a.Values()
	want := []float64{-1, -0.5, 0, 0.5, 1}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("v[%d]=%g want %g", i, v[i], want[i])
		}
	}
	if math.Abs(a.Step()-0.5) > 1e-12 {
		t.Fatalf("step %g", a.Step())
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := mustGrid(t,
		Axis{Name: "a", Min: 0, Max: 1, N: 3},
		Axis{Name: "b", Min: 0, Max: 1, N: 4},
		Axis{Name: "c", Min: 0, Max: 1, N: 5},
	)
	if g.Size() != 60 {
		t.Fatalf("size %d", g.Size())
	}
	// Last axis fastest.
	if g.Index(0, 0, 1) != 1 {
		t.Fatalf("Index(0,0,1)=%d", g.Index(0, 0, 1))
	}
	if g.Index(1, 0, 0) != 20 {
		t.Fatalf("Index(1,0,0)=%d", g.Index(1, 0, 0))
	}
	// Point of flat index 27 = (1, 1, 2).
	p := g.Point(27)
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-1.0/3) > 1e-12 || math.Abs(p[2]-0.5) > 1e-12 {
		t.Fatalf("Point(27)=%v", p)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(); err == nil {
		t.Error("want error for no axes")
	}
	if _, err := NewGrid(Axis{Name: "x", Min: 0, Max: 1, N: 1}); err == nil {
		t.Error("want error for N=1")
	}
	if _, err := NewGrid(Axis{Name: "x", Min: 1, Max: 0, N: 5}); err == nil {
		t.Error("want error for inverted range")
	}
}

func TestGenerate(t *testing.T) {
	g := mustGrid(t,
		Axis{Name: "x", Min: 0, Max: 1, N: 11},
		Axis{Name: "y", Min: 0, Max: 2, N: 21},
	)
	f := func(p []float64) (float64, error) { return p[0] + 10*p[1], nil }
	l, err := Generate(g, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.At(5, 10); math.Abs(got-(0.5+10)) > 1e-12 {
		t.Fatalf("At(5,10)=%g", got)
	}
	minV, argmin := l.Min()
	if math.Abs(minV) > 1e-12 || argmin != 0 {
		t.Fatalf("min %g at %d", minV, argmin)
	}
	maxV, argmax := l.Max()
	if math.Abs(maxV-21) > 1e-12 || argmax != g.Size()-1 {
		t.Fatalf("max %g at %d", maxV, argmax)
	}
}

// TestMinMaxNaNTolerant is the regression test for NaN extrema: NaN entries
// used to poison the scan (every comparison false), returning arg=-1 with
// ±Inf so callers indexing the result panicked.
func TestMinMaxNaNTolerant(t *testing.T) {
	g := mustGrid(t, Axis{Name: "x", Min: 0, Max: 1, N: 2}, Axis{Name: "y", Min: 0, Max: 1, N: 3})
	l := New(g)
	copy(l.Data, []float64{math.NaN(), 3, -2, math.NaN(), 7, math.NaN()})

	minV, argmin := l.Min()
	if minV != -2 || argmin != 2 {
		t.Fatalf("Min = %g at %d, want -2 at 2", minV, argmin)
	}
	maxV, argmax := l.Max()
	if maxV != 7 || argmax != 4 {
		t.Fatalf("Max = %g at %d, want 7 at 4", maxV, argmax)
	}

	// NaN in the first position must not capture the extremum.
	l2 := New(g)
	copy(l2.Data, []float64{math.NaN(), 1, 2, 3, 4, 5})
	if v, i := l2.Min(); v != 1 || i != 1 {
		t.Fatalf("Min with leading NaN = %g at %d", v, i)
	}

	// ±Inf are legitimate values, not holes.
	l3 := New(g)
	copy(l3.Data, []float64{math.Inf(1), 1, 2, 3, 4, math.Inf(-1)})
	if v, i := l3.Min(); !math.IsInf(v, -1) || i != 5 {
		t.Fatalf("Min with -Inf = %g at %d", v, i)
	}
	if v, i := l3.Max(); !math.IsInf(v, 1) || i != 0 {
		t.Fatalf("Max with +Inf = %g at %d", v, i)
	}
}

func TestMinMaxAllNaNSentinel(t *testing.T) {
	g := mustGrid(t, Axis{Name: "x", Min: 0, Max: 1, N: 2}, Axis{Name: "y", Min: 0, Max: 1, N: 2})
	l := New(g)
	for i := range l.Data {
		l.Data[i] = math.NaN()
	}
	if v, i := l.Min(); !math.IsNaN(v) || i != -1 {
		t.Fatalf("all-NaN Min = %g at %d, want NaN at -1", v, i)
	}
	if v, i := l.Max(); !math.IsNaN(v) || i != -1 {
		t.Fatalf("all-NaN Max = %g at %d, want NaN at -1", v, i)
	}
	empty := &Landscape{Grid: g}
	if v, i := empty.Min(); !math.IsNaN(v) || i != -1 {
		t.Fatalf("empty Min = %g at %d, want NaN at -1", v, i)
	}
}

func TestGenerateError(t *testing.T) {
	g := mustGrid(t, Axis{Name: "x", Min: 0, Max: 1, N: 4}, Axis{Name: "y", Min: 0, Max: 1, N: 4})
	sentinel := errors.New("boom")
	_, err := Generate(g, func(p []float64) (float64, error) { return 0, sentinel }, 2)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err=%v", err)
	}
}

func TestSampleMatchesGenerate(t *testing.T) {
	g := mustGrid(t, Axis{Name: "x", Min: -1, Max: 1, N: 9}, Axis{Name: "y", Min: -1, Max: 1, N: 7})
	f := func(p []float64) (float64, error) { return math.Sin(p[0]) * math.Cos(p[1]), nil }
	full, err := Generate(g, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{0, 5, 17, 62}
	vals, err := Sample(g, f, idx, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j, i := range idx {
		if math.Abs(vals[j]-full.Data[i]) > 1e-12 {
			t.Fatalf("sample[%d]=%g want %g", j, vals[j], full.Data[i])
		}
	}
}

func TestReshape4DTo2DPreservesLayout(t *testing.T) {
	g := mustGrid(t,
		Axis{Name: "b1", Min: 0, Max: 1, N: 2},
		Axis{Name: "b2", Min: 0, Max: 1, N: 3},
		Axis{Name: "g1", Min: 0, Max: 1, N: 4},
		Axis{Name: "g2", Min: 0, Max: 1, N: 5},
	)
	l := New(g)
	for i := range l.Data {
		l.Data[i] = float64(i)
	}
	r, err := l.Reshape4DTo2D()
	if err != nil {
		t.Fatal(err)
	}
	rows, cols, err := r.Shape2D()
	if err != nil {
		t.Fatal(err)
	}
	if rows != 6 || cols != 20 {
		t.Fatalf("shape %dx%d want 6x20", rows, cols)
	}
	// (b1,b2,g1,g2) = (1,2,3,4) maps to row 1*3+2=5, col 3*5+4=19.
	if got := r.At(5, 19); got != float64(l.Grid.Index(1, 2, 3, 4)) {
		t.Fatalf("reshaped value %g", got)
	}
	if _, err := New(mustGrid(t, Axis{Name: "x", Min: 0, Max: 1, N: 3}, Axis{Name: "y", Min: 0, Max: 1, N: 3})).Reshape4DTo2D(); err == nil {
		t.Error("want error reshaping 2-D landscape")
	}
}

func TestNRMSE(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	y := append([]float64(nil), x...)
	v, err := NRMSE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("NRMSE of identical landscapes %g", v)
	}
	// Shift y by the IQR: NRMSE should equal 1.
	q1, q3 := quartiles(x)
	iqr := q3 - q1
	for i := range y {
		y[i] = x[i] + iqr
	}
	v, err = NRMSE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-12 {
		t.Fatalf("NRMSE %g want 1", v)
	}
	if _, err := NRMSE(x, y[:3]); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := NRMSE(nil, nil); err == nil {
		t.Error("want error for empty input")
	}
}

func TestNRMSEConstantLandscape(t *testing.T) {
	x := []float64{2, 2, 2, 2}
	if v, _ := NRMSE(x, x); v != 0 {
		t.Fatalf("NRMSE %g want 0", v)
	}
	y := []float64{2, 2, 2, 3}
	if v, _ := NRMSE(x, y); !math.IsInf(v, 1) {
		t.Fatalf("NRMSE %g want +Inf for zero IQR with error", v)
	}
}

// TestNRMSEScaleInvariance is the property the paper chose NRMSE for: the
// metric is invariant under affine rescaling of both landscapes.
func TestNRMSEScaleInvariance(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(91))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = x[i] + 0.1*rng.NormFloat64()
		}
		v1, err1 := NRMSE(x, y)
		scale := 1 + 10*rng.Float64()
		shift := rng.NormFloat64() * 5
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range x {
			xs[i] = scale*x[i] + shift
			ys[i] = scale*y[i] + shift
		}
		v2, err2 := NRMSE(xs, ys)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(v1-v2) < 1e-9*(1+v1)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsOnKnownLandscapes(t *testing.T) {
	g := mustGrid(t, Axis{Name: "x", Min: 0, Max: 1, N: 10}, Axis{Name: "y", Min: 0, Max: 1, N: 10})
	flat := New(g)
	for i := range flat.Data {
		flat.Data[i] = 3
	}
	if SecondDerivative(flat) != 0 || VarianceOfGradient(flat) != 0 || Variance(flat) != 0 {
		t.Fatal("constant landscape should have zero metrics")
	}

	// A linear ramp has zero second derivative and zero gradient variance
	// but nonzero variance.
	ramp := New(g)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			ramp.Data[i*10+j] = float64(i) + float64(j)
		}
	}
	if d2 := SecondDerivative(ramp); math.Abs(d2) > 1e-12 {
		t.Fatalf("ramp D2=%g", d2)
	}
	if vg := VarianceOfGradient(ramp); math.Abs(vg) > 1e-12 {
		t.Fatalf("ramp VoG=%g", vg)
	}
	if Variance(ramp) <= 0 {
		t.Fatal("ramp variance should be positive")
	}

	// A jagged alternating landscape has large D2.
	jag := New(g)
	for i := range jag.Data {
		if i%2 == 0 {
			jag.Data[i] = 1
		} else {
			jag.Data[i] = -1
		}
	}
	if SecondDerivative(jag) <= SecondDerivative(ramp) {
		t.Fatal("jagged landscape should be rougher than ramp")
	}
}

func TestDCTEnergyFractionSparseSignal(t *testing.T) {
	g := mustGrid(t, Axis{Name: "x", Min: 0, Max: 1, N: 20}, Axis{Name: "y", Min: 0, Max: 1, N: 20})
	l := New(g)
	// One pure 2-D cosine mode: energy fraction should be 1/(n-1).
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			l.Data[i*20+j] = math.Cos(math.Pi * (2*float64(i) + 1) * 3 / 40)
		}
	}
	frac, err := DCTEnergyFraction(l, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if frac > 2.0/400 {
		t.Fatalf("pure mode energy fraction %g too large", frac)
	}
	if _, err := DCTEnergyFraction(l, 0); err == nil {
		t.Error("want error for zero energy fraction")
	}
	if _, err := DCTEnergyFraction(l, 1.5); err == nil {
		t.Error("want error for >1 energy fraction")
	}
}

func TestDCTEnergyFractionNoisySignalIsDenser(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g := mustGrid(t, Axis{Name: "x", Min: 0, Max: 1, N: 16}, Axis{Name: "y", Min: 0, Max: 1, N: 16})
	smooth := New(g)
	noisy := New(g)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			v := math.Sin(float64(i)/4) * math.Cos(float64(j)/4)
			smooth.Data[i*16+j] = v
			noisy.Data[i*16+j] = v + 0.5*rng.NormFloat64()
		}
	}
	fs, _ := DCTEnergyFraction(smooth, 0.99)
	fn, _ := DCTEnergyFraction(noisy, 0.99)
	if fn <= fs {
		t.Fatalf("noisy fraction %g should exceed smooth %g", fn, fs)
	}
}

func TestClone(t *testing.T) {
	g := mustGrid(t, Axis{Name: "x", Min: 0, Max: 1, N: 3}, Axis{Name: "y", Min: 0, Max: 1, N: 3})
	l := New(g)
	l.Data[4] = 7
	c := l.Clone()
	c.Data[4] = 9
	if l.Data[4] != 7 {
		t.Fatal("clone aliased data")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := mustGrid(t,
		Axis{Name: "beta", Min: -1, Max: 1, N: 5},
		Axis{Name: "gamma", Min: -2, Max: 2, N: 7},
	)
	l := New(g)
	for i := range l.Data {
		l.Data[i] = float64(i) * 0.5
	}
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Grid.Axes) != 2 || back.Grid.Axes[0].Name != "beta" {
		t.Fatalf("axes lost: %+v", back.Grid.Axes)
	}
	for i := range l.Data {
		if back.Data[i] != l.Data[i] {
			t.Fatalf("data[%d] %g want %g", i, back.Data[i], l.Data[i])
		}
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("want error for bad json")
	}
	if _, err := Load(strings.NewReader(`{"axes":[{"Name":"x","Min":0,"Max":1,"N":4}],"data":[1,2]}`)); err == nil {
		t.Error("want error for shape mismatch")
	}
	if _, err := Load(strings.NewReader(`{"axes":[],"data":[]}`)); err == nil {
		t.Error("want error for no axes")
	}
}
