package landscape

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testArtifact(t *testing.T) *Artifact {
	t.Helper()
	g, err := NewGrid(
		Axis{Name: "gamma", Min: 0, Max: math.Pi, N: 5},
		Axis{Name: "beta", Min: 0, Max: math.Pi / 2, N: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	l := New(g)
	for i := range l.Data {
		l.Data[i] = float64(i)*0.25 - 1
	}
	a := NewArtifact(l)
	a.Fingerprint = `{"problem":{"kind":"maxcut"},"backend":{"kind":"statevector"}}`
	a.Solver = SolverMeta{
		Method:           "fista",
		SamplingFraction: 0.05,
		Seed:             42,
		Iterations:       180,
		Residual:         1.2e-6,
		Sparsity:         9,
	}
	a.CreatedAt = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	return a
}

// TestArtifactRoundTrip: a v2 artifact survives Save/Load with every
// metadata field intact, including the NaN "NRMSE unknown" sentinel.
func TestArtifactRoundTrip(t *testing.T) {
	a := testArtifact(t)
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "oscar-landscape-artifact 2\n") {
		t.Fatalf("missing header, got %q", buf.String()[:40])
	}
	got, err := LoadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != ArtifactVersion {
		t.Errorf("version %d, want %d", got.Version, ArtifactVersion)
	}
	if len(got.Axes) != 2 || got.Axes[0] != a.Axes[0] || got.Axes[1] != a.Axes[1] {
		t.Errorf("axes %+v, want %+v", got.Axes, a.Axes)
	}
	if got.Fingerprint != a.Fingerprint {
		t.Errorf("fingerprint %q, want %q", got.Fingerprint, a.Fingerprint)
	}
	if got.Solver != a.Solver {
		t.Errorf("solver %+v, want %+v", got.Solver, a.Solver)
	}
	if !math.IsNaN(got.NRMSE) {
		t.Errorf("NRMSE %v, want NaN (unknown)", got.NRMSE)
	}
	if !got.CreatedAt.Equal(a.CreatedAt) {
		t.Errorf("created %v, want %v", got.CreatedAt, a.CreatedAt)
	}
	for i := range a.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(a.Data[i]) {
			t.Fatalf("data[%d] = %g, want %g", i, got.Data[i], a.Data[i])
		}
	}
	if got.ID() != a.ID() {
		t.Errorf("ID changed across round trip: %s vs %s", got.ID(), a.ID())
	}

	// A known NRMSE round-trips as a number, not the sentinel.
	a.NRMSE = 0.0173
	buf.Reset()
	if err := SaveArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err = LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NRMSE != 0.0173 {
		t.Errorf("NRMSE %v, want 0.0173", got.NRMSE)
	}
}

// TestArtifactLegacyLoad: bare-JSON files written by the deprecated
// Landscape.Save still load, as format version 1 with unknown NRMSE.
func TestArtifactLegacyLoad(t *testing.T) {
	a := testArtifact(t)
	l, err := a.Landscape()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 {
		t.Errorf("legacy version %d, want 1", got.Version)
	}
	if !math.IsNaN(got.NRMSE) || got.Fingerprint != "" {
		t.Errorf("legacy load invented metadata: nrmse=%v fingerprint=%q", got.NRMSE, got.Fingerprint)
	}
	if len(got.Data) != len(a.Data) {
		t.Fatalf("legacy data length %d, want %d", len(got.Data), len(a.Data))
	}
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatalf("legacy data[%d] = %g, want %g", i, got.Data[i], a.Data[i])
		}
	}
}

// TestArtifactRejectsDamage: truncated, corrupted, wrong-version, and
// garbage-header inputs all fail with ErrBadArtifact.
func TestArtifactRejectsDamage(t *testing.T) {
	a := testArtifact(t)
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	full := buf.String()

	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"header only", "oscar-landscape-artifact 2\n"},
		{"truncated body", full[:len(full)/2]},
		{"truncated header", "oscar-landscape-art"},
		{"garbage header", "GIF89a totally a landscape\n{}"},
		{"future version", strings.Replace(full, "artifact 2\n", "artifact 3\n", 1)},
		{"flipped data bit", strings.Replace(full, "0.25", "0.26", 1)},
		{"doctored checksum", strings.Replace(full, `"checksum":"`, `"checksum":"00`, 1)},
		{"legacy size mismatch", `{"axes":[{"Name":"x","Min":0,"Max":1,"N":3}],"data":[1,2]}`},
		{"legacy bad axis", `{"axes":[{"Name":"x","Min":1,"Max":0,"N":3}],"data":[1,2,3]}`},
	}
	for _, c := range cases {
		_, err := LoadArtifact(strings.NewReader(c.input))
		if err == nil {
			t.Errorf("%s: load succeeded, want ErrBadArtifact", c.name)
			continue
		}
		if !errors.Is(err, ErrBadArtifact) {
			t.Errorf("%s: error %v does not wrap ErrBadArtifact", c.name, err)
		}
	}
}

// TestArtifactShapeHeaderMismatch: a shape header that disagrees with the
// axes is rejected even when the checksum would pass.
func TestArtifactShapeHeaderMismatch(t *testing.T) {
	a := testArtifact(t)
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(buf.String(), `"shape":[5,4]`, `"shape":[4,5]`, 1)
	if doctored == buf.String() {
		t.Fatal("test setup: shape header not found")
	}
	_, err := LoadArtifact(strings.NewReader(doctored))
	if !errors.Is(err, ErrBadArtifact) {
		t.Fatalf("got %v, want ErrBadArtifact", err)
	}
}

// TestArtifactFile: SaveArtifactFile is atomic-rename based and leaves no
// temp droppings; LoadArtifactFile reads it back.
func TestArtifactFile(t *testing.T) {
	a := testArtifact(t)
	dir := t.TempDir()
	path := filepath.Join(dir, a.ID()+".landscape")
	if err := SaveArtifactFile(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArtifactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != a.ID() {
		t.Errorf("ID %s, want %s", got.ID(), a.ID())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want only the artifact", len(entries))
	}
	if _, err := LoadArtifactFile(filepath.Join(dir, "missing.landscape")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

// TestArtifactID: the ID is a stable content address — identical content
// hashes identically, any content change (including the fingerprint) moves
// it, and provenance-only changes do not.
func TestArtifactID(t *testing.T) {
	a := testArtifact(t)
	b := testArtifact(t)
	if a.ID() != b.ID() {
		t.Fatalf("identical artifacts, different IDs: %s vs %s", a.ID(), b.ID())
	}
	if !strings.HasPrefix(a.ID(), "ls-") || len(a.ID()) != 19 {
		t.Fatalf("ID %q, want ls- + 16 hex digits", a.ID())
	}
	b.Solver.Iterations++
	b.NRMSE = 0.5
	if a.ID() != b.ID() {
		t.Error("provenance-only change moved the content ID")
	}
	b.Data[3] += 1e-9
	if a.ID() == b.ID() {
		t.Error("data change kept the same ID")
	}
	c := testArtifact(t)
	c.Fingerprint = "other-config"
	if a.ID() == c.ID() {
		t.Error("fingerprint change kept the same ID")
	}
}
