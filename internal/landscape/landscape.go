// Package landscape provides the cost-landscape data model of OSCAR: grids
// over circuit-parameter space, dense landscapes, generation by (parallel)
// grid scan, the evaluation metrics of the paper (NRMSE, roughness,
// variance-of-gradient, variance, DCT sparsity), and the 4-D -> 2-D reshape
// used for depth-2 QAOA.
package landscape

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/exec"
)

// Axis is one landscape dimension: N equidistant samples over [Min, Max]
// inclusive of both endpoints (N >= 2), matching the grid-search definition
// of Table 1.
type Axis struct {
	Name     string
	Min, Max float64
	N        int
}

// Values returns the axis sample positions.
func (a Axis) Values() []float64 {
	v := make([]float64, a.N)
	for i := range v {
		v[i] = a.Value(i)
	}
	return v
}

// Value returns the i-th sample position.
func (a Axis) Value(i int) float64 {
	if a.N == 1 {
		return a.Min
	}
	return a.Min + (a.Max-a.Min)*float64(i)/float64(a.N-1)
}

// Step returns the sample spacing.
func (a Axis) Step() float64 {
	if a.N <= 1 {
		return 0
	}
	return (a.Max - a.Min) / float64(a.N-1)
}

func (a Axis) validate() error {
	if a.N < 2 {
		return fmt.Errorf("landscape: axis %q needs >= 2 samples, got %d", a.Name, a.N)
	}
	if !(a.Max > a.Min) {
		return fmt.Errorf("landscape: axis %q has empty range [%g,%g]", a.Name, a.Min, a.Max)
	}
	return nil
}

// Grid is the Cartesian product of axes; flat indices are row-major with the
// last axis fastest.
type Grid struct {
	Axes []Axis
}

// NewGrid validates and builds a grid.
func NewGrid(axes ...Axis) (*Grid, error) {
	if len(axes) == 0 {
		return nil, errors.New("landscape: grid needs at least one axis")
	}
	for _, a := range axes {
		if err := a.validate(); err != nil {
			return nil, err
		}
	}
	return &Grid{Axes: axes}, nil
}

// Size returns the total number of grid points.
func (g *Grid) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= a.N
	}
	return n
}

// Dims returns the per-axis sample counts.
func (g *Grid) Dims() []int {
	d := make([]int, len(g.Axes))
	for i, a := range g.Axes {
		d[i] = a.N
	}
	return d
}

// Point returns the parameter vector of flat index idx.
func (g *Grid) Point(idx int) []float64 {
	p := make([]float64, len(g.Axes))
	g.pointInto(p, idx)
	return p
}

// pointInto writes the parameter vector of flat index idx into p.
func (g *Grid) pointInto(p []float64, idx int) {
	for i := len(g.Axes) - 1; i >= 0; i-- {
		a := g.Axes[i]
		p[i] = a.Value(idx % a.N)
		idx /= a.N
	}
}

// Index returns the flat index of multi-index mi.
func (g *Grid) Index(mi ...int) int {
	if len(mi) != len(g.Axes) {
		panic(fmt.Sprintf("landscape: %d indices for %d axes", len(mi), len(g.Axes)))
	}
	idx := 0
	for i, a := range g.Axes {
		if mi[i] < 0 || mi[i] >= a.N {
			panic(fmt.Sprintf("landscape: index %d out of range for axis %d", mi[i], i))
		}
		idx = idx*a.N + mi[i]
	}
	return idx
}

// Landscape couples a grid with its cost values.
type Landscape struct {
	Grid *Grid
	Data []float64
}

// New allocates an all-zero landscape on g.
func New(g *Grid) *Landscape {
	return &Landscape{Grid: g, Data: make([]float64, g.Size())}
}

// At returns the value at a multi-index.
func (l *Landscape) At(mi ...int) float64 { return l.Data[l.Grid.Index(mi...)] }

// Min returns the minimum value and its flat index, ignoring NaN entries
// (a reconstruction or hardware dataset can carry NaN holes). If the
// landscape has any non-NaN value the returned index is valid; otherwise —
// empty data or all-NaN — it returns (NaN, -1), and callers that index must
// check for the -1 sentinel.
func (l *Landscape) Min() (float64, int) {
	best, arg := math.NaN(), -1
	for i, v := range l.Data {
		if math.IsNaN(v) {
			continue
		}
		if arg < 0 || v < best {
			best, arg = v, i
		}
	}
	return best, arg
}

// Max returns the maximum value and its flat index, ignoring NaN entries;
// the sentinel contract matches Min.
func (l *Landscape) Max() (float64, int) {
	best, arg := math.NaN(), -1
	for i, v := range l.Data {
		if math.IsNaN(v) {
			continue
		}
		if arg < 0 || v > best {
			best, arg = v, i
		}
	}
	return best, arg
}

// Clone deep-copies the landscape (sharing the immutable grid).
func (l *Landscape) Clone() *Landscape {
	d := make([]float64, len(l.Data))
	copy(d, l.Data)
	return &Landscape{Grid: l.Grid, Data: d}
}

// Shape returns the per-axis lengths of the landscape (last axis fastest in
// Data's row-major layout) — the dims an N-dimensional DCT or reconstruction
// over Data expects. For a classic 2-axis landscape it returns the historical
// {rows, cols} pair.
func (l *Landscape) Shape() []int { return l.Grid.Dims() }

// Shape2D returns (rows, cols) for a 2-axis landscape.
//
// Deprecated: use Shape, which handles any axis count; Shape2D remains for
// callers hard-wired to the paper's 2-D (beta, gamma) layout and errors on
// anything else.
func (l *Landscape) Shape2D() (rows, cols int, err error) {
	if len(l.Grid.Axes) != 2 {
		return 0, 0, fmt.Errorf("landscape: %d axes, want 2", len(l.Grid.Axes))
	}
	return l.Grid.Axes[0].N, l.Grid.Axes[1].N, nil
}

// Reshape4DTo2D converts a 4-axis landscape with axes (b1, b2, g1, g2) into
// the (b1*b2) x (g1*g2) 2-D landscape the paper reconstructs for depth-2
// QAOA. Because flat indices are row-major with the last axis fastest, the
// data layout is unchanged — only the axes metadata is rewritten; the
// resulting synthetic axes record index positions rather than parameter
// values.
//
// Deprecated: the concatenation reshape predates N-dimensional
// reconstruction. Depth-2 grids now solve directly as 4-D tensors
// (cs.ReconstructND via core.Reconstruct), which preserves the real axes and
// their parameter values; nothing in the pipeline needs the 2-D relabeling
// anymore. Kept only so pre-ND analysis code keeps compiling.
func (l *Landscape) Reshape4DTo2D() (*Landscape, error) {
	if len(l.Grid.Axes) != 4 {
		return nil, fmt.Errorf("landscape: reshape needs 4 axes, got %d", len(l.Grid.Axes))
	}
	a := l.Grid.Axes
	rows := a[0].N * a[1].N
	cols := a[2].N * a[3].N
	g, err := NewGrid(
		Axis{Name: a[0].Name + "*" + a[1].Name, Min: 0, Max: float64(rows - 1), N: rows},
		Axis{Name: a[2].Name + "*" + a[3].Name, Min: 0, Max: float64(cols - 1), N: cols},
	)
	if err != nil {
		return nil, err
	}
	return &Landscape{Grid: g, Data: l.Data}, nil
}

// EvalFunc computes the cost at a parameter vector. Implementations must be
// safe for concurrent use (landscape generation fans out across workers).
type EvalFunc func(params []float64) (float64, error)

// Points materializes the parameter vectors of the given flat indices — the
// batch a grid scan submits to the execution engine. All vectors share one
// backing array (two allocations per batch instead of one per point).
func (g *Grid) Points(idx []int) [][]float64 {
	k := len(g.Axes)
	backing := make([]float64, len(idx)*k)
	pts := make([][]float64, len(idx))
	for j, i := range idx {
		p := backing[j*k : (j+1)*k : (j+1)*k]
		g.pointInto(p, i)
		pts[j] = p
	}
	return pts
}

// AllPoints materializes every grid point in flat-index order, sharing one
// backing array like Points.
func (g *Grid) AllPoints() [][]float64 {
	k := len(g.Axes)
	n := g.Size()
	backing := make([]float64, n*k)
	pts := make([][]float64, n)
	for i := range pts {
		p := backing[i*k : (i+1)*k : (i+1)*k]
		g.pointInto(p, i)
		pts[i] = p
	}
	return pts
}

// Generate scans the full grid — the expensive dense "ground truth"
// computation OSCAR avoids — running eval on workers goroutines (0 means
// GOMAXPROCS). It is a thin wrapper over the batched execution engine.
func Generate(g *Grid, eval EvalFunc, workers int) (*Landscape, error) {
	return GenerateContext(context.Background(), g, eval, workers)
}

// GenerateContext is Generate with cancellation.
func GenerateContext(ctx context.Context, g *Grid, eval EvalFunc, workers int) (*Landscape, error) {
	return GenerateBatch(ctx, g, exec.Lift(eval), workers)
}

// GenerateBatch scans the full grid through a batch evaluator, submitting
// every point as one batch so native batch backends and the engine's
// chunking worker pool do the fan-out.
func GenerateBatch(ctx context.Context, g *Grid, be exec.BatchEvaluator, workers int) (*Landscape, error) {
	en := exec.New(be, exec.Options{Workers: workers})
	data, err := en.EvaluateBatch(ctx, g.AllPoints())
	if err != nil {
		return nil, err
	}
	return &Landscape{Grid: g, Data: data}, nil
}

// Sample evaluates the grid at the given flat indices only — OSCAR's
// circuit-execution phase — in parallel.
func Sample(g *Grid, eval EvalFunc, idx []int, workers int) ([]float64, error) {
	return SampleContext(context.Background(), g, eval, idx, workers)
}

// SampleContext is Sample with cancellation.
func SampleContext(ctx context.Context, g *Grid, eval EvalFunc, idx []int, workers int) ([]float64, error) {
	return SampleBatch(ctx, g, exec.Lift(eval), idx, workers)
}

// SampleBatch evaluates the grid at the given flat indices through a batch
// evaluator, as one engine batch.
func SampleBatch(ctx context.Context, g *Grid, be exec.BatchEvaluator, idx []int, workers int) ([]float64, error) {
	en := exec.New(be, exec.Options{Workers: workers})
	return en.EvaluateBatch(ctx, g.Points(idx))
}

// quartiles returns (Q1, Q3) with linear interpolation.
func quartiles(x []float64) (q1, q3 float64) {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return quantile(s, 0.25), quantile(s, 0.75)
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// NRMSE is the paper's Equation 1: RMSE between the true landscape x and
// reconstruction y, normalized by the interquartile range of x.
func NRMSE(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("landscape: NRMSE length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) == 0 {
		return 0, errors.New("landscape: NRMSE of empty landscape")
	}
	var sum float64
	for i := range x {
		d := x[i] - y[i]
		sum += d * d
	}
	rmse := math.Sqrt(sum / float64(len(x)))
	q1, q3 := quartiles(x)
	iqr := q3 - q1
	if iqr == 0 {
		if rmse == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return rmse / iqr, nil
}
