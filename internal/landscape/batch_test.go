package landscape

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"

	"repro/internal/exec"
)

func testGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := NewGrid(
		Axis{Name: "x", Min: -1, Max: 1, N: 23},
		Axis{Name: "y", Min: 0, Max: 2, N: 31},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func wavyEval(p []float64) (float64, error) { return math.Sin(3*p[0]) * math.Cos(2*p[1]), nil }

// TestGenerateDeterministicAcrossWorkers is the tier-1 determinism contract:
// the same landscape bit-for-bit at any worker count, legacy or batch entry.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	g := testGrid(t)
	ref, err := Generate(g, wavyEval, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		l, err := Generate(g, wavyEval, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range l.Data {
			if l.Data[i] != ref.Data[i] {
				t.Fatalf("workers=%d: point %d differs", workers, i)
			}
		}
		lb, err := GenerateBatch(context.Background(), g, exec.Lift(wavyEval), workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range lb.Data {
			if lb.Data[i] != ref.Data[i] {
				t.Fatalf("batch workers=%d: point %d differs", workers, i)
			}
		}
	}
}

func TestSampleBatchMatchesSample(t *testing.T) {
	g := testGrid(t)
	idx := []int{0, 5, 700, 31, 712, 5} // includes a duplicate and both ends
	a, err := Sample(g, wavyEval, idx, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleBatch(context.Background(), g, exec.Lift(wavyEval), idx, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestGenerateContextCancellation(t *testing.T) {
	g := testGrid(t)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := GenerateContext(ctx, g, func(p []float64) (float64, error) {
		n++
		if n == 3 {
			cancel()
		}
		return 0, nil
	}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGridPointsHelpers(t *testing.T) {
	g := testGrid(t)
	all := g.AllPoints()
	if len(all) != g.Size() {
		t.Fatalf("AllPoints %d want %d", len(all), g.Size())
	}
	for _, i := range []int{0, 17, g.Size() - 1} {
		want := g.Point(i)
		for d := range want {
			if all[i][d] != want[d] {
				t.Fatalf("AllPoints[%d] mismatch", i)
			}
		}
	}
	some := g.Points([]int{3, 3, 9})
	if len(some) != 3 || some[0][0] != some[1][0] || some[0][1] != some[1][1] {
		t.Fatalf("Points duplicate handling wrong: %v", some)
	}
}
