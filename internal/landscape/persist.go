package landscape

import (
	"encoding/json"
	"fmt"
	"io"
)

// serialized is the on-disk JSON form of a landscape.
type serialized struct {
	Axes []Axis    `json:"axes"`
	Data []float64 `json:"data"`
}

// Save writes the landscape as JSON. Dense ground-truth landscapes are
// expensive to regenerate (the whole point of the paper), so debugging
// sessions persist them between runs.
func (l *Landscape) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(serialized{Axes: l.Grid.Axes, Data: l.Data})
}

// Load reads a landscape written by Save, validating shape consistency.
func Load(r io.Reader) (*Landscape, error) {
	var s serialized
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("landscape: decode: %w", err)
	}
	g, err := NewGrid(s.Axes...)
	if err != nil {
		return nil, err
	}
	if len(s.Data) != g.Size() {
		return nil, fmt.Errorf("landscape: %d values for a %d-point grid", len(s.Data), g.Size())
	}
	return &Landscape{Grid: g, Data: s.Data}, nil
}
