package landscape

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Dense ground-truth landscapes and compressed-sensing reconstructions are
// expensive to produce (the whole point of the paper), so they persist
// between runs — and, through the oscard artifact store, between processes
// and across restarts. The on-disk form is a self-describing, versioned
// Artifact: a one-line magic+version header followed by a JSON body carrying
// the grid axes, the ND shape, a problem/backend fingerprint, solver
// metadata, the reconstruction quality if known, and a content checksum that
// doubles as the artifact's identity.

// ArtifactVersion is the current on-disk artifact format version.
const ArtifactVersion = 2

// artifactMagic opens every versioned artifact file; the version number
// follows on the same line. Legacy (pre-versioning) files are bare JSON and
// are detected by their leading '{'.
const artifactMagic = "oscar-landscape-artifact"

// ErrBadArtifact marks an unreadable landscape artifact: truncated, corrupt
// (checksum or shape mismatch), or written by an unknown format version.
// Errors from LoadArtifact wrap it, so errors.Is(err, ErrBadArtifact)
// distinguishes "this file is damaged" from I/O failures.
var ErrBadArtifact = errors.New("landscape: bad artifact")

func badArtifactf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadArtifact, fmt.Sprintf(format, args...))
}

// SolverMeta records how an artifact's data was produced — the
// compressed-sensing solve behind a reconstruction. All fields are optional
// documentation; a dense ground-truth landscape leaves them zero.
type SolverMeta struct {
	// Method is the l1 solver ("fista", "ista", "omp"), empty for dense
	// scans.
	Method string `json:"method,omitempty"`
	// SamplingFraction is the fraction of grid points executed.
	SamplingFraction float64 `json:"sampling_fraction,omitempty"`
	// Seed drove the sampling pattern.
	Seed int64 `json:"seed,omitempty"`
	// Iterations and Residual are the solver's convergence diagnostics.
	Iterations int     `json:"iterations,omitempty"`
	Residual   float64 `json:"residual,omitempty"`
	// Sparsity is the reconstruction's DCT support size.
	Sparsity int `json:"sparsity,omitempty"`
}

// Artifact is a self-describing persisted landscape: the grid and values
// plus the provenance a serving system needs to answer "what is this and can
// I trust it" without re-deriving anything.
type Artifact struct {
	// Version is the format version the artifact was read from (or will be
	// written as — Save always writes ArtifactVersion). Legacy bare-JSON
	// files load as Version 1.
	Version int
	// Axes and Data are the landscape itself (row-major, last axis
	// fastest).
	Axes []Axis
	Data []float64
	// Fingerprint canonicalizes the (problem, backend) configuration that
	// produced the data — opaque to this package; oscard uses its cache
	// config key. Artifacts from identical content share an ID, and the
	// fingerprint is part of that identity.
	Fingerprint string
	// Solver records reconstruction provenance.
	Solver SolverMeta
	// NRMSE is the reconstruction error against ground truth when known,
	// NaN otherwise (ground truth usually does not exist — that is why the
	// reconstruction was run).
	NRMSE float64
	// CreatedAt is when the artifact was produced.
	CreatedAt time.Time
}

// NewArtifact wraps a landscape in an artifact with unknown NRMSE and no
// provenance; callers fill Fingerprint/Solver/CreatedAt as they know more.
func NewArtifact(l *Landscape) *Artifact {
	return &Artifact{
		Version: ArtifactVersion,
		Axes:    append([]Axis(nil), l.Grid.Axes...),
		Data:    l.Data,
		NRMSE:   math.NaN(),
	}
}

// Shape returns the per-axis sample counts (last axis fastest in Data).
func (a *Artifact) Shape() []int {
	d := make([]int, len(a.Axes))
	for i, ax := range a.Axes {
		d[i] = ax.N
	}
	return d
}

// Landscape validates the artifact's grid and returns its landscape view
// (sharing Data).
func (a *Artifact) Landscape() (*Landscape, error) {
	g, err := NewGrid(a.Axes...)
	if err != nil {
		return nil, err
	}
	if len(a.Data) != g.Size() {
		return nil, badArtifactf("%d values for a %d-point grid", len(a.Data), g.Size())
	}
	return &Landscape{Grid: g, Data: a.Data}, nil
}

// Checksum returns the hex SHA-256 over the artifact's content identity:
// axes (name, bounds, resolution), data bits, and fingerprint. Solver
// metadata and NRMSE are provenance, not content, and do not contribute —
// two runs that produced the same landscape for the same configuration hash
// identically.
func (a *Artifact) Checksum() string {
	h := sha256.New()
	var buf [8]byte
	writeF := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	writeI := func(n int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(n))
		h.Write(buf[:])
	}
	writeI(len(a.Axes))
	for _, ax := range a.Axes {
		writeI(len(ax.Name))
		io.WriteString(h, ax.Name)
		writeF(ax.Min)
		writeF(ax.Max)
		writeI(ax.N)
	}
	writeI(len(a.Data))
	for _, v := range a.Data {
		writeF(v)
	}
	io.WriteString(h, a.Fingerprint)
	return hex.EncodeToString(h.Sum(nil))
}

// ID returns the artifact's content-addressed identity: "ls-" plus the first
// 16 hex digits of its checksum. Identical content — same axes, data, and
// fingerprint — always yields the same ID, which is what lets a store
// deduplicate republished reconstructions.
func (a *Artifact) ID() string { return "ls-" + a.Checksum()[:16] }

// axisJSON pins the wire form of an axis independent of the Axis struct's
// Go field names.
type axisJSON struct {
	Name string  `json:"name"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	N    int     `json:"n"`
}

// artifactBody is the JSON payload following the header line. NRMSE is a
// pointer because encoding/json cannot represent NaN (the "unknown"
// sentinel); nil means unknown.
type artifactBody struct {
	Shape       []int       `json:"shape"`
	Axes        []axisJSON  `json:"axes"`
	Fingerprint string      `json:"fingerprint,omitempty"`
	Solver      *SolverMeta `json:"solver,omitempty"`
	NRMSE       *float64    `json:"nrmse,omitempty"`
	CreatedAt   time.Time   `json:"created_at,omitzero"`
	Checksum    string      `json:"checksum"`
	Data        []float64   `json:"data"`
}

// SaveArtifact writes the artifact in the current format: the magic+version
// header line, then the JSON body with the content checksum embedded.
func SaveArtifact(w io.Writer, a *Artifact) error {
	if _, err := fmt.Fprintf(w, "%s %d\n", artifactMagic, ArtifactVersion); err != nil {
		return err
	}
	body := artifactBody{
		Shape:       a.Shape(),
		Axes:        make([]axisJSON, len(a.Axes)),
		Fingerprint: a.Fingerprint,
		CreatedAt:   a.CreatedAt,
		Checksum:    a.Checksum(),
		Data:        a.Data,
	}
	for i, ax := range a.Axes {
		body.Axes[i] = axisJSON{Name: ax.Name, Min: ax.Min, Max: ax.Max, N: ax.N}
	}
	if a.Solver != (SolverMeta{}) {
		s := a.Solver
		body.Solver = &s
	}
	if !math.IsNaN(a.NRMSE) {
		v := a.NRMSE
		body.NRMSE = &v
	}
	return json.NewEncoder(w).Encode(body)
}

// LoadArtifact reads an artifact written by SaveArtifact, verifying the
// format version, shape consistency, and content checksum; damaged or
// unknown-version input fails with an error wrapping ErrBadArtifact. Legacy
// pre-versioning files (bare JSON, as written by Landscape.Save) still load,
// as Version 1 with unknown NRMSE and no provenance.
func LoadArtifact(r io.Reader) (*Artifact, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, badArtifactf("empty input")
	}
	if first[0] == '{' {
		return loadLegacy(br)
	}
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, badArtifactf("truncated header")
	}
	var version int
	if _, err := fmt.Sscanf(header, artifactMagic+" %d\n", &version); err != nil {
		return nil, badArtifactf("not a landscape artifact (header %q)", strings.TrimSpace(header))
	}
	if version != ArtifactVersion {
		return nil, badArtifactf("format version %d, this build reads versions 1 (legacy) and %d",
			version, ArtifactVersion)
	}
	var body artifactBody
	dec := json.NewDecoder(br)
	if err := dec.Decode(&body); err != nil {
		return nil, badArtifactf("decoding body: %v", err)
	}
	a := &Artifact{
		Version:     version,
		Axes:        make([]Axis, len(body.Axes)),
		Data:        body.Data,
		Fingerprint: body.Fingerprint,
		NRMSE:       math.NaN(),
		CreatedAt:   body.CreatedAt,
	}
	for i, ax := range body.Axes {
		a.Axes[i] = Axis{Name: ax.Name, Min: ax.Min, Max: ax.Max, N: ax.N}
	}
	if body.Solver != nil {
		a.Solver = *body.Solver
	}
	if body.NRMSE != nil {
		a.NRMSE = *body.NRMSE
	}
	if _, err := a.Landscape(); err != nil {
		return nil, wrapBadArtifact(err)
	}
	if got, want := a.Shape(), body.Shape; !equalInts(got, want) {
		return nil, badArtifactf("shape header %v disagrees with axes %v", want, got)
	}
	if sum := a.Checksum(); sum != body.Checksum {
		return nil, badArtifactf("checksum mismatch: stored %.16s…, computed %.16s…", body.Checksum, sum)
	}
	return a, nil
}

// loadLegacy decodes the pre-versioning bare-JSON format.
func loadLegacy(r io.Reader) (*Artifact, error) {
	var s serialized
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, badArtifactf("decode: %v", err)
	}
	a := &Artifact{Version: 1, Axes: s.Axes, Data: s.Data, NRMSE: math.NaN()}
	if _, err := a.Landscape(); err != nil {
		return nil, wrapBadArtifact(err)
	}
	return a, nil
}

// wrapBadArtifact tags validation failures with ErrBadArtifact without
// double-wrapping.
func wrapBadArtifact(err error) error {
	if errors.Is(err, ErrBadArtifact) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrBadArtifact, err)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SaveArtifactFile writes the artifact to path atomically: a temp file in
// the same directory is renamed over the target, so a reader (or a crash
// mid-write) never sees a torn artifact.
func SaveArtifactFile(path string, a *Artifact) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".landscape-artifact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := SaveArtifact(tmp, a); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadArtifactFile reads an artifact from path.
func LoadArtifactFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := LoadArtifact(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// serialized is the legacy (version 1) on-disk JSON form of a landscape.
type serialized struct {
	Axes []Axis    `json:"axes"`
	Data []float64 `json:"data"`
}

// Save writes the landscape in the legacy bare-JSON form.
//
// Deprecated: use SaveArtifact, which adds a format version, provenance
// metadata, and a content checksum. Save remains for tooling pinned to the
// old format; LoadArtifact (and Load) read both.
func (l *Landscape) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(serialized{Axes: l.Grid.Axes, Data: l.Data})
}

// Load reads a landscape written by Save or SaveArtifact (either format
// version), validating shape consistency. Artifact metadata, if present, is
// dropped; use LoadArtifact to keep it.
func Load(r io.Reader) (*Landscape, error) {
	a, err := LoadArtifact(r)
	if err != nil {
		return nil, err
	}
	return a.Landscape()
}
