package landscape

import (
	"fmt"
	"sort"

	"repro/internal/dct"
)

// rowsOf iterates a multi-dimensional landscape as 1-D lines along one axis,
// calling fn with each extracted line. Used by the directional metrics,
// which the paper defines on 1-D slices and averages across dimensions.
func rowsOf(dims []int, data []float64, axis int, fn func(line []float64)) {
	n := dims[axis]
	// stride of the axis, and count of lines.
	stride := 1
	for i := axis + 1; i < len(dims); i++ {
		stride *= dims[i]
	}
	total := len(data)
	lines := total / n
	line := make([]float64, n)
	for l := 0; l < lines; l++ {
		// Decompose l into (outer, inner) around the axis.
		inner := l % stride
		outer := l / stride
		base := outer*stride*n + inner
		for i := 0; i < n; i++ {
			line[i] = data[base+i*stride]
		}
		fn(line)
	}
}

// SecondDerivative is the paper's Equation 2 roughness metric,
// D2(x) = sum_i (x_i - 2 x_{i-1} + x_{i-2})^2 / 4 per 1-D line, averaged
// over all lines of all axes.
func SecondDerivative(l *Landscape) float64 {
	dims := l.Grid.Dims()
	var total float64
	var count int
	for axis := range dims {
		if dims[axis] < 3 {
			continue
		}
		rowsOf(dims, l.Data, axis, func(line []float64) {
			var s float64
			for i := 2; i < len(line); i++ {
				d := line[i] - 2*line[i-1] + line[i-2]
				s += d * d / 4
			}
			total += s
			count++
		})
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// VarianceOfGradient is the paper's Equation 3 flatness metric,
// VoG(x) = Var[x_i - x_{i-1}] per line, averaged over all lines of all axes.
// Near-zero VoG indicates a barren plateau.
func VarianceOfGradient(l *Landscape) float64 {
	dims := l.Grid.Dims()
	var total float64
	var count int
	for axis := range dims {
		if dims[axis] < 2 {
			continue
		}
		rowsOf(dims, l.Data, axis, func(line []float64) {
			diffs := make([]float64, len(line)-1)
			for i := 1; i < len(line); i++ {
				diffs[i-1] = line[i] - line[i-1]
			}
			total += variance(diffs)
			count++
		})
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Variance is the paper's Equation 4: the plain variance of the landscape.
func Variance(l *Landscape) float64 { return variance(l.Data) }

func variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var s float64
	for _, v := range x {
		d := v - mean
		s += d * d
	}
	return s / float64(len(x))
}

// DCTEnergyFraction computes the Table 4 sparsity measure: the smallest
// fraction of DCT coefficients whose squared magnitudes hold the given
// fraction (e.g. 0.99) of the landscape's total spectral energy. The DC
// coefficient is excluded from both numerator and denominator so the measure
// reflects the structure of the landscape rather than its mean offset. The
// transform matches the landscape's arity — 2-D for the paper's grids, a
// separable N-D DCT for p>1 landscapes.
func DCTEnergyFraction(l *Landscape, energy float64) (float64, error) {
	if energy <= 0 || energy > 1 {
		return 0, fmt.Errorf("landscape: energy fraction %g out of (0,1]", energy)
	}
	if len(l.Grid.Axes) == 0 || len(l.Data) != l.Grid.Size() {
		return 0, fmt.Errorf("landscape: data length %d does not match grid size %d", len(l.Data), l.Grid.Size())
	}
	coeffs := make([]float64, len(l.Data))
	dct.NewPlanND(l.Shape()).Forward(coeffs, l.Data)
	mags := make([]float64, 0, len(coeffs)-1)
	var total float64
	for i, c := range coeffs {
		if i == 0 {
			continue // DC
		}
		e := c * c
		mags = append(mags, e)
		total += e
	}
	if total == 0 {
		return 0, nil
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(mags)))
	var acc float64
	for k, e := range mags {
		acc += e
		if acc >= energy*total {
			return float64(k+1) / float64(len(coeffs)), nil
		}
	}
	return 1, nil
}
