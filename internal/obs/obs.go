// Package obs is the dependency-free observability layer: per-job tracing
// (parent/child spans with wall-clock and virtual-time durations, carried
// through context.Context) and per-stage latency histograms exported in the
// Prometheus text format. Every hot path in the repository threads a span
// through it, so the layer is built around two cost guarantees:
//
//   - Zero cost when disabled. Tracing is off whenever no span rides the
//     context: Start then costs one context.Value lookup and returns a nil
//     *Span, and every Span method is a nil-receiver no-op. A nil *Tracer
//     behaves the same way, so library callers never pay for plumbing they
//     do not use.
//
//   - Bounded cost when enabled. A Tracer caps the spans it will record
//     (MaxSpans); starts beyond the cap are counted in Dropped and return
//     nil spans, so a runaway loop cannot balloon a trace.
//
// Spans carry both wall-clock timing (always) and an optional virtual-time
// interval (SetVirtual) so fleet-simulation spans — whose interesting
// duration is simulated seconds, not host nanoseconds — stay meaningful.
// Snapshot serializes the tree at any moment: spans still open (a canceled
// or crashed job, a mid-run poll) are rendered with a provisional end and
// Open set, never dangling.
package obs

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSpans is the per-trace span cap when MaxSpans is unset.
const DefaultMaxSpans = 4096

// EndedSpan is the summary handed to a Tracer's OnEnd hook when a span
// ends: enough to feed per-stage latency histograms without retaining the
// span.
type EndedSpan struct {
	// Name is the span name (the stage).
	Name string
	// Wall is the wall-clock duration.
	Wall time.Duration
	// Virtual is the virtual-time duration in seconds; meaningful only
	// when HasVirtual is set.
	Virtual    float64
	HasVirtual bool
}

// Tracer collects the spans of one trace — one job, one request. The zero
// of its configuration is usable: NewTracer(id) with DefaultMaxSpans and no
// OnEnd hook. A nil *Tracer is the disabled tracer: Start returns nil and
// every derived span operation is a no-op.
type Tracer struct {
	// MaxSpans caps recorded spans (<=0 means DefaultMaxSpans). Set before
	// the first Start.
	MaxSpans int
	// OnEnd, when set, is called (outside the tracer lock) the first time
	// each span ends. Set before the first Start.
	OnEnd func(EndedSpan)

	id      string
	dropped atomic.Int64

	mu     sync.Mutex
	spans  []*Span
	nextID int64
}

// NewTracer builds a tracer for one trace id.
func NewTracer(id string) *Tracer {
	return &Tracer{id: id}
}

// ID returns the trace id ("" for a nil tracer).
func (t *Tracer) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Dropped returns how many span starts the cap rejected.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Start begins a root span. Returns nil on a nil tracer or past the cap.
func (t *Tracer) Start(name string) *Span {
	return t.newSpan(name, 0)
}

func (t *Tracer) newSpan(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	max := t.MaxSpans
	if max <= 0 {
		max = DefaultMaxSpans
	}
	t.mu.Lock()
	if len(t.spans) >= max {
		t.mu.Unlock()
		t.dropped.Add(1)
		return nil
	}
	t.nextID++
	s := &Span{t: t, id: t.nextID, parent: parent, name: name, start: time.Now()}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed operation inside a trace. All methods are safe on a nil
// receiver (the disabled fast path) and safe for concurrent use — parallel
// workers attribute sibling spans while a snapshot renders the tree.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time

	// Guarded by t.mu.
	end          time.Time
	ended        bool
	vstart, vend float64
	hasVirtual   bool
	attrs        []Attr
}

// Child begins a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, s.id)
}

// SetAttr records a key/value attribute. Values are sanitized for JSON:
// integers widen to int64, non-finite floats become their string names
// (encoding/json rejects NaN/±Inf outright).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	value = sanitizeAttr(value)
	s.t.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.t.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
}

// SetError records a non-nil error as the span's "error" attribute.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.SetAttr("error", err.Error())
}

// SetVirtual records the span's virtual-time interval in seconds — the
// simulated clock of fleet scheduling, where wall-clock duration is
// meaningless. start == end marks an instantaneous event.
func (s *Span) SetVirtual(start, end float64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.vstart, s.vend, s.hasVirtual = start, end, true
	s.t.mu.Unlock()
}

// End closes the span. Idempotent: only the first call records the end time
// and fires the tracer's OnEnd hook.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.ended {
		s.t.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	es := EndedSpan{
		Name:       s.name,
		Wall:       s.end.Sub(s.start),
		Virtual:    s.vend - s.vstart,
		HasVirtual: s.hasVirtual,
	}
	hook := s.t.OnEnd
	s.t.mu.Unlock()
	if hook != nil {
		hook(es)
	}
}

// sanitizeAttr makes an attribute value JSON-encodable.
func sanitizeAttr(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case float64:
		if math.IsNaN(x) {
			return "NaN"
		}
		if math.IsInf(x, 1) {
			return "+Inf"
		}
		if math.IsInf(x, -1) {
			return "-Inf"
		}
		return x
	case string, bool, int64, uint64:
		return x
	default:
		return x
	}
}

// spanKey carries the active span through a context.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span returns ctx unchanged,
// keeping the disabled path allocation-free.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span riding ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start begins a child of the span riding ctx and returns it along with a
// context carrying it. When no span rides ctx — tracing disabled — it
// returns (nil, ctx) after a single context lookup; every operation on the
// nil span is a no-op.
func Start(ctx context.Context, name string) (*Span, context.Context) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	s := parent.Child(name)
	if s == nil {
		// Span cap reached: record nothing, keep the parent in ctx.
		return nil, ctx
	}
	return s, ContextWithSpan(ctx, s)
}

// SpanNode is the serialized form of one span in a snapshot tree.
type SpanNode struct {
	ID       int64          `json:"id"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	End      time.Time      `json:"end"`
	DurMS    float64        `json:"duration_ms"`
	Open     bool           `json:"open,omitempty"`
	VStart   *float64       `json:"virtual_start_s,omitempty"`
	VEnd     *float64       `json:"virtual_end_s,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanNode    `json:"children,omitempty"`
}

// TraceTree is a serialized snapshot of a whole trace.
type TraceTree struct {
	TraceID      string      `json:"trace_id"`
	SpanCount    int         `json:"span_count"`
	DroppedSpans int64       `json:"dropped_spans"`
	Spans        []*SpanNode `json:"spans"`
}

// Snapshot serializes the span tree as of now. Open spans — a running job,
// or one that ended without closing them (cancellation, a recovered panic)
// — are rendered with end = now and Open set, so a partial trace always
// serializes cleanly. Snapshot does not mutate the trace; it can be taken
// repeatedly while the job runs. Returns nil on a nil tracer.
func (t *Tracer) Snapshot() *TraceTree {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	nodes := make([]*SpanNode, len(t.spans))
	byID := make(map[int64]*SpanNode, len(t.spans))
	for i, s := range t.spans {
		n := &SpanNode{ID: s.id, Name: s.name, Start: s.start, End: s.end}
		if !s.ended {
			n.End = now
			n.Open = true
		}
		n.DurMS = float64(n.End.Sub(s.start)) / float64(time.Millisecond)
		if s.hasVirtual {
			vs, ve := s.vstart, s.vend
			n.VStart, n.VEnd = &vs, &ve
		}
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[i] = n
		byID[s.id] = n
	}
	tree := &TraceTree{
		TraceID:      t.id,
		SpanCount:    len(t.spans),
		DroppedSpans: t.dropped.Load(),
	}
	for i, s := range t.spans {
		if p, ok := byID[s.parent]; ok && s.parent != s.id {
			p.Children = append(p.Children, nodes[i])
		} else {
			tree.Spans = append(tree.Spans, nodes[i])
		}
	}
	t.mu.Unlock()
	return tree
}
