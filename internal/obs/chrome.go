package obs

import (
	"sort"
	"time"
)

// ChromeEvent is one entry of the Chrome trace-event format ("X" complete
// events plus "M" metadata), loadable in about:tracing and Perfetto.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the object form of a Chrome trace file.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	chromeWallPID    = 1
	chromeVirtualPID = 2
)

// chromeSlice is one renderable interval before lane assignment.
type chromeSlice struct {
	name    string
	ts, dur float64 // microseconds
	args    map[string]any
}

// ChromeEvents converts a snapshot into Chrome trace events. Wall-clock
// spans render under pid 1 with ts relative to the earliest span; spans
// carrying virtual time additionally render under pid 2 with ts in virtual
// microseconds (1 virtual second = 1e6 ts units). Overlapping slices within
// a process are spread across tids greedily so parallel work stays legible.
func ChromeEvents(tree *TraceTree) *ChromeTrace {
	out := &ChromeTrace{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{
		{Name: "process_name", Ph: "M", PID: chromeWallPID, TID: 0,
			Args: map[string]any{"name": "wall clock"}},
		{Name: "process_name", Ph: "M", PID: chromeVirtualPID, TID: 0,
			Args: map[string]any{"name": "virtual time (1s = 1e6us)"}},
	}}
	if tree == nil {
		return out
	}
	var walls, virts []chromeSlice
	var t0 time.Time
	var walk func(n *SpanNode)
	collect := func(n *SpanNode) {
		args := map[string]any{"span_id": n.ID}
		for k, v := range n.Attrs {
			args[k] = v
		}
		if n.Open {
			args["open"] = true
		}
		walls = append(walls, chromeSlice{
			name: n.Name,
			ts:   float64(n.Start.Sub(t0)) / float64(time.Microsecond),
			dur:  float64(n.End.Sub(n.Start)) / float64(time.Microsecond),
			args: args,
		})
		if n.VStart != nil && n.VEnd != nil {
			virts = append(virts, chromeSlice{
				name: n.Name,
				ts:   *n.VStart * 1e6,
				dur:  (*n.VEnd - *n.VStart) * 1e6,
				args: args,
			})
		}
	}
	walk = func(n *SpanNode) {
		collect(n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	// The earliest span start anchors ts 0.
	var scan func(n *SpanNode)
	scan = func(n *SpanNode) {
		if t0.IsZero() || n.Start.Before(t0) {
			t0 = n.Start
		}
		for _, c := range n.Children {
			scan(c)
		}
	}
	for _, n := range tree.Spans {
		scan(n)
	}
	for _, n := range tree.Spans {
		walk(n)
	}
	for _, ev := range assignLanes(walls, chromeWallPID) {
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	for _, ev := range assignLanes(virts, chromeVirtualPID) {
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	return out
}

// assignLanes spreads possibly-overlapping slices across tids: each slice
// takes the lowest lane whose previous slice has ended, so a lane renders a
// clean nesting-free timeline. Ties keep input order for determinism.
func assignLanes(slices []chromeSlice, pid int) []ChromeEvent {
	idx := make([]int, len(slices))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := slices[idx[a]], slices[idx[b]]
		if sa.ts != sb.ts {
			return sa.ts < sb.ts
		}
		// Longer slices first so a parent occupies a lower lane than the
		// children it encloses.
		return sa.dur > sb.dur
	})
	var laneEnd []float64
	events := make([]ChromeEvent, 0, len(slices))
	for _, i := range idx {
		s := slices[i]
		lane := -1
		for l, end := range laneEnd {
			if s.ts >= end {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = s.ts + s.dur
		events = append(events, ChromeEvent{
			Name: s.name, Ph: "X", TS: s.ts, Dur: s.dur,
			PID: pid, TID: lane + 1, Args: s.args,
		})
	}
	return events
}
