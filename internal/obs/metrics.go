package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// histShards is the number of counter stripes per histogram. Observations
// hash across stripes so concurrent hot paths rarely contend on one cache
// line; scrapes sum all stripes.
const histShards = 8

// ExpBuckets returns n exponentially-spaced upper bounds starting at start
// with the given growth factor — the fixed bucket layout every stage
// histogram shares, so scrapes stay mergeable across processes.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// DefaultWallBuckets spans 100µs to ~52s — the wall-clock latency range of
// job stages from a cache-served validate to a large sharded solve.
func DefaultWallBuckets() []float64 { return ExpBuckets(1e-4, 2, 20) }

// DefaultVirtualBuckets spans 0.5s to ~2400h of simulated time — fleet
// batch latencies and makespans.
func DefaultVirtualBuckets() []float64 { return ExpBuckets(0.5, 2, 24) }

// histShard is one stripe of counters, padded to its own cache lines.
type histShard struct {
	counts  []atomic.Int64
	sumBits atomic.Uint64
	_       [40]byte
}

// Histogram is a fixed-bucket latency histogram with lock-free sharded
// counters: Observe is two atomic adds on a hashed stripe, never a mutex.
type Histogram struct {
	name   string
	labels string // rendered constant labels, e.g. `stage="solve"`
	bounds []float64
	shards [histShards]histShard
}

func newHistogram(name, labels string, bounds []float64) *Histogram {
	h := &Histogram{name: name, labels: labels, bounds: bounds}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return h
}

// Observe records one value. Safe for a nil receiver (disabled metrics) and
// for unbounded concurrency.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) {
		return
	}
	// Stripe selection hashes the value bits — cheap, allocation-free, and
	// spreads distinct observations across cache lines.
	bits := math.Float64bits(v)
	bits ^= bits >> 33
	bits *= 0xff51afd7ed558ccd
	sh := &h.shards[bits%histShards]
	// Linear scan: bucket counts are small (~20) and the comparison loop is
	// branch-predictable, beating binary search at this size.
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	sh.counts[idx].Add(1)
	for {
		old := sh.sumBits.Load()
		niu := math.Float64bits(math.Float64frombits(old) + v)
		if sh.sumBits.CompareAndSwap(old, niu) {
			return
		}
	}
}

// snapshot sums the stripes: per-bucket counts (not cumulative), total
// count, and value sum.
func (h *Histogram) snapshot() (counts []int64, total int64, sum float64) {
	counts = make([]int64, len(h.bounds)+1)
	for s := range h.shards {
		sh := &h.shards[s]
		for i := range counts {
			counts[i] += sh.counts[i].Load()
		}
		sum += math.Float64frombits(sh.sumBits.Load())
	}
	for _, c := range counts {
		total += c
	}
	return counts, total, sum
}

// Registry holds named histogram families for Prometheus export.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*histFamily
}

type histFamily struct {
	name, help string
	bounds     []float64
	series     map[string]*Histogram // by rendered labels
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*histFamily)}
}

// Histogram returns the histogram for (name, labels), creating it — and its
// family — on first use. All series of one family share the first-seen help
// text and bucket bounds. Safe on a nil registry (returns a nil histogram,
// whose Observe is a no-op).
func (r *Registry) Histogram(name, help string, labels map[string]string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &histFamily{name: name, help: help, bounds: bounds, series: make(map[string]*Histogram)}
		r.fams[name] = f
	}
	h, ok := f.series[key]
	if !ok {
		h = newHistogram(name, key, f.bounds)
		f.series[key] = h
	}
	return h
}

// PromFamily is one rendered metric family: its name (for global sorting
// across exporters) and its full text block including # HELP/# TYPE.
type PromFamily struct {
	Name string
	Text string
}

// Families renders every histogram family in the Prometheus text format,
// one PromFamily per name, series sorted by label set — deterministic
// output for stable scrapes and diffable smoke tests.
func (r *Registry) Families() []PromFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]PromFamily, 0, len(names))
	for _, n := range names {
		f := r.fams[n]
		var b strings.Builder
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := f.series[k]
			counts, total, sum := h.snapshot()
			cum := int64(0)
			for i, bound := range f.bounds {
				cum += counts[i]
				fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", f.name, seriesPrefix(k), formatFloat(bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, seriesPrefix(k), total)
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, braced(k), formatFloat(sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, braced(k), total)
		}
		out = append(out, PromFamily{Name: f.name, Text: b.String()})
	}
	r.mu.Unlock()
	return out
}

// braced wraps rendered labels in braces, or returns "" for the empty set.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// seriesPrefix turns rendered labels into a prefix for appending the le
// label: “ stays “, `stage="x"` becomes `stage="x",`.
func seriesPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// renderLabels renders a label map deterministically: keys sorted, values
// escaped per the text exposition format.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(EscapeLabel(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// EscapeLabel escapes a label value for the Prometheus text format, which
// permits exactly three escapes inside quoted values: \\, \", and \n. Other
// control characters are replaced with spaces.
func EscapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch {
		case r == '\\':
			b.WriteString(`\\`)
		case r == '"':
			b.WriteString(`\"`)
		case r == '\n':
			b.WriteString(`\n`)
		case r < 0x20 || r == 0x7f:
			b.WriteByte(' ')
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
