package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-4, 2, 4)
	want := []float64{1e-4, 2e-4, 4e-4, 8e-4}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad ExpBuckets args should panic")
		}
	}()
	ExpBuckets(0, 2, 4)
}

func TestHistogramObserveAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help text", map[string]string{"stage": "solve"}, []float64{1, 10})
	h.Observe(0.5)        // bucket le=1
	h.Observe(5)          // bucket le=10
	h.Observe(50)         // +Inf
	h.Observe(math.NaN()) // dropped
	counts, total, sum := h.snapshot()
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if math.Abs(sum-55.5) > 1e-12 {
		t.Fatalf("sum = %g, want 55.5", sum)
	}
	fams := r.Families()
	if len(fams) != 1 || fams[0].Name != "test_seconds" {
		t.Fatalf("families = %+v", fams)
	}
	text := fams[0].Text
	for _, want := range []string{
		"# HELP test_seconds help text",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{stage="solve",le="1"} 1`,
		`test_seconds_bucket{stage="solve",le="10"} 2`,
		`test_seconds_bucket{stage="solve",le="+Inf"} 3`,
		`test_seconds_sum{stage="solve"} 55.5`,
		`test_seconds_count{stage="solve"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("family text missing %q:\n%s", want, text)
		}
	}
}

func TestRegistryGetOrCreateAndSortedOutput(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("zz_seconds", "z", map[string]string{"stage": "b"}, []float64{1})
	h2 := r.Histogram("zz_seconds", "z", map[string]string{"stage": "b"}, []float64{1})
	if h1 != h2 {
		t.Fatal("same (name,labels) must return the same histogram")
	}
	r.Histogram("aa_seconds", "a", nil, []float64{1}).Observe(0.5)
	r.Histogram("zz_seconds", "z", map[string]string{"stage": "a"}, []float64{1})
	fams := r.Families()
	if len(fams) != 2 || fams[0].Name != "aa_seconds" || fams[1].Name != "zz_seconds" {
		t.Fatalf("families must sort by name: %+v", fams)
	}
	// Series within a family sort by label set.
	zz := fams[1].Text
	ia := strings.Index(zz, `stage="a"`)
	ib := strings.Index(zz, `stage="b"`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("series not sorted by labels:\n%s", zz)
	}
	// Unlabeled series render without empty braces.
	if strings.Contains(fams[0].Text, "{}") {
		t.Fatalf("empty label braces in output:\n%s", fams[0].Text)
	}
	if !strings.Contains(fams[0].Text, "aa_seconds_sum 0.5") {
		t.Fatalf("unlabeled sum missing:\n%s", fams[0].Text)
	}
}

func TestNilRegistryAndHistogram(t *testing.T) {
	var r *Registry
	h := r.Histogram("x", "h", nil, []float64{1})
	if h != nil {
		t.Fatal("nil registry should return nil histogram")
	}
	h.Observe(1) // must not panic
	if r.Families() != nil {
		t.Fatal("nil registry families should be nil")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram("c", "", ExpBuckets(1, 2, 10))
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%512) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	_, total, sum := h.snapshot()
	if total != workers*per {
		t.Fatalf("total = %d, want %d", total, workers*per)
	}
	wantSum := 0.0
	for i := 0; i < per; i++ {
		wantSum += float64(i%512) + 0.5
	}
	wantSum *= workers
	if math.Abs(sum-wantSum)/wantSum > 1e-9 {
		t.Fatalf("sum = %g, want %g", sum, wantSum)
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := EscapeLabel(`a"b\c` + "\nd\x01e"); got != `a\"b\\c\nd e` {
		t.Fatalf("EscapeLabel = %q", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram("b", "", DefaultWallBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.001
		for pb.Next() {
			h.Observe(v)
			v *= 1.000001
		}
	})
}
