package obs

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.ID() != "" || tr.Dropped() != 0 || tr.Len() != 0 {
		t.Fatal("nil tracer accessors should be zero")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot should be nil")
	}
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer Start should return nil")
	}
	// Every span method must be callable on nil.
	s.SetAttr("k", 1)
	s.SetError(errors.New("boom"))
	s.SetVirtual(0, 1)
	s.End()
	if c := s.Child("y"); c != nil {
		t.Fatal("nil span Child should return nil")
	}
}

func TestStartWithoutSpanInContext(t *testing.T) {
	ctx := context.Background()
	s, ctx2 := Start(ctx, "op")
	if s != nil {
		t.Fatal("Start without a span in ctx must return nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a span must return ctx unchanged")
	}
}

func TestContextCarriesSpan(t *testing.T) {
	tr := NewTracer("t1")
	root := tr.Start("job")
	ctx := ContextWithSpan(context.Background(), root)
	if got := SpanFromContext(ctx); got != root {
		t.Fatal("SpanFromContext should return the carried span")
	}
	child, cctx := Start(ctx, "stage")
	if child == nil {
		t.Fatal("Start with a span in ctx should create a child")
	}
	if got := SpanFromContext(cctx); got != child {
		t.Fatal("returned ctx should carry the child")
	}
	child.End()
	root.End()
	tree := tr.Snapshot()
	if len(tree.Spans) != 1 || tree.Spans[0].Name != "job" {
		t.Fatalf("want one root 'job', got %+v", tree.Spans)
	}
	kids := tree.Spans[0].Children
	if len(kids) != 1 || kids[0].Name != "stage" {
		t.Fatalf("want child 'stage', got %+v", kids)
	}
	if tree.TraceID != "t1" || tree.SpanCount != 2 || tree.DroppedSpans != 0 {
		t.Fatalf("bad tree header: %+v", tree)
	}
}

func TestSpanCapAndDropCounter(t *testing.T) {
	tr := NewTracer("cap")
	tr.MaxSpans = 3
	root := tr.Start("r")
	for i := 0; i < 10; i++ {
		root.Child("c").End()
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("span count = %d, want 3", got)
	}
	if got := tr.Dropped(); got != 8 {
		t.Fatalf("dropped = %d, want 8", got)
	}
	// Start through context past the cap keeps the parent riding ctx.
	ctx := ContextWithSpan(context.Background(), root)
	s, ctx2 := Start(ctx, "over")
	if s != nil {
		t.Fatal("span past cap should be nil")
	}
	if SpanFromContext(ctx2) != root {
		t.Fatal("ctx should still carry the parent after a dropped start")
	}
	tree := tr.Snapshot()
	if tree.DroppedSpans != 9 {
		t.Fatalf("tree dropped = %d, want 9", tree.DroppedSpans)
	}
}

func TestSnapshotOpenSpans(t *testing.T) {
	tr := NewTracer("open")
	root := tr.Start("job")
	child := root.Child("stage")
	_ = child
	time.Sleep(2 * time.Millisecond)
	tree := tr.Snapshot()
	n := tree.Spans[0]
	if !n.Open || !n.Children[0].Open {
		t.Fatal("unended spans must render Open")
	}
	if n.End.Before(n.Start) || n.DurMS <= 0 {
		t.Fatal("open span must get a provisional end after start")
	}
	// Snapshot must not mutate: ending afterwards still works and a second
	// snapshot sees the closed state.
	child.End()
	root.End()
	tree2 := tr.Snapshot()
	if tree2.Spans[0].Open || tree2.Spans[0].Children[0].Open {
		t.Fatal("ended spans must not render Open")
	}
}

func TestAttrsSanitizedAndSerializable(t *testing.T) {
	tr := NewTracer("attr")
	s := tr.Start("x")
	s.SetAttr("int", 42)
	s.SetAttr("nan", math.NaN())
	s.SetAttr("pinf", math.Inf(1))
	s.SetAttr("ninf", math.Inf(-1))
	s.SetAttr("str", "v")
	s.SetAttr("str", "v2") // overwrite, not duplicate
	s.SetError(errors.New("kaput"))
	s.End()
	tree := tr.Snapshot()
	attrs := tree.Spans[0].Attrs
	if attrs["int"] != int64(42) {
		t.Fatalf("int attr = %#v, want int64(42)", attrs["int"])
	}
	if attrs["nan"] != "NaN" || attrs["pinf"] != "+Inf" || attrs["ninf"] != "-Inf" {
		t.Fatalf("non-finite floats must become strings: %#v", attrs)
	}
	if attrs["str"] != "v2" {
		t.Fatalf("attr overwrite failed: %#v", attrs["str"])
	}
	if attrs["error"] != "kaput" {
		t.Fatalf("error attr = %#v", attrs["error"])
	}
	if _, err := json.Marshal(tree); err != nil {
		t.Fatalf("tree must JSON-encode: %v", err)
	}
}

func TestEndIdempotentAndOnEndHook(t *testing.T) {
	var mu sync.Mutex
	var ends []EndedSpan
	tr := NewTracer("hook")
	tr.OnEnd = func(e EndedSpan) {
		mu.Lock()
		ends = append(ends, e)
		mu.Unlock()
	}
	s := tr.Start("stage")
	s.SetVirtual(10, 35)
	s.End()
	s.End()
	s.End()
	if len(ends) != 1 {
		t.Fatalf("OnEnd fired %d times, want 1", len(ends))
	}
	e := ends[0]
	if e.Name != "stage" || !e.HasVirtual || e.Virtual != 25 {
		t.Fatalf("bad EndedSpan: %+v", e)
	}
	if e.Wall < 0 {
		t.Fatalf("negative wall duration: %v", e.Wall)
	}
}

func TestConcurrentSpansAndSnapshot(t *testing.T) {
	tr := NewTracer("conc")
	root := tr.Start("job")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Child("work")
				c.SetAttr("w", w)
				c.SetVirtual(float64(i), float64(i+1))
				c.End()
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		tr.Snapshot() // concurrent reads while writers run
	}
	wg.Wait()
	root.End()
	tree := tr.Snapshot()
	if tree.SpanCount != 401 {
		t.Fatalf("span count = %d, want 401", tree.SpanCount)
	}
	if len(tree.Spans[0].Children) != 400 {
		t.Fatalf("children = %d, want 400", len(tree.Spans[0].Children))
	}
}

func TestChromeEvents(t *testing.T) {
	tr := NewTracer("chrome")
	root := tr.Start("job")
	a := root.Child("a")
	a.SetVirtual(0, 2)
	time.Sleep(time.Millisecond)
	a.End()
	b := root.Child("b")
	b.SetVirtual(2, 5)
	b.End()
	root.End()
	ct := ChromeEvents(tr.Snapshot())
	if ct.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", ct.DisplayTimeUnit)
	}
	var meta, wall, virt int
	for _, ev := range ct.TraceEvents {
		switch {
		case ev.Ph == "M":
			meta++
		case ev.PID == chromeWallPID:
			wall++
			if ev.Ph != "X" || ev.TS < 0 {
				t.Fatalf("bad wall event: %+v", ev)
			}
		case ev.PID == chromeVirtualPID:
			virt++
		}
	}
	if meta != 2 {
		t.Fatalf("metadata events = %d, want 2", meta)
	}
	if wall != 3 {
		t.Fatalf("wall events = %d, want 3 (job,a,b)", wall)
	}
	if virt != 2 {
		t.Fatalf("virtual events = %d, want 2 (a,b)", virt)
	}
	// Virtual slices: a at ts 0 dur 2e6, b at ts 2e6 dur 3e6 — non-overlapping,
	// so both land in lane/tid 1.
	for _, ev := range ct.TraceEvents {
		if ev.PID == chromeVirtualPID && ev.Ph == "X" && ev.TID != 1 {
			t.Fatalf("non-overlapping virtual slices should share tid 1: %+v", ev)
		}
	}
	if _, err := json.Marshal(ct); err != nil {
		t.Fatalf("chrome trace must JSON-encode: %v", err)
	}
	if ChromeEvents(nil) == nil {
		t.Fatal("nil tree should yield an empty, non-nil trace")
	}
}

func TestChromeLaneAssignmentOverlap(t *testing.T) {
	slices := []chromeSlice{
		{name: "p", ts: 0, dur: 10},
		{name: "c1", ts: 0, dur: 4},
		{name: "c2", ts: 5, dur: 4},
		{name: "q", ts: 12, dur: 2},
	}
	evs := assignLanes(slices, 1)
	byName := map[string]ChromeEvent{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	// Longest-first at equal ts: parent p gets lane 1; c1 overlaps → lane 2;
	// c2 overlaps p but not c1 → lane 2; q starts after everything → lane 1.
	if byName["p"].TID != 1 || byName["c1"].TID != 2 || byName["c2"].TID != 2 || byName["q"].TID != 1 {
		t.Fatalf("lane assignment wrong: p=%d c1=%d c2=%d q=%d",
			byName["p"].TID, byName["c1"].TID, byName["c2"].TID, byName["q"].TID)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, ctx2 := Start(ctx, "op")
		s.SetAttr("k", i)
		s.End()
		_ = ctx2
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer("bench")
	tr.MaxSpans = b.N + 2
	root := tr.Start("job")
	ctx := ContextWithSpan(context.Background(), root)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := Start(ctx, "op")
		s.SetAttr("k", i)
		s.End()
	}
}
