package problem

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/qsim"
)

func TestMaxCutMinimumEqualsNegatedBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{4, 6, 8} {
		p, err := Random3RegularMaxCut(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := p.Hamiltonian.DiagonalValues()
		if err != nil {
			t.Fatal(err)
		}
		minV := vals[0]
		for _, v := range vals {
			if v < minV {
				minV = v
			}
		}
		brute := p.Graph.MaxCutBrute()
		if math.Abs(minV+brute) > 1e-9 {
			t.Fatalf("n=%d: Hamiltonian min %g, -MaxCut %g", n, minV, -brute)
		}
	}
}

func TestSKMinimumEqualsNegatedBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	p, err := SK(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := p.Hamiltonian.DiagonalValues()
	if err != nil {
		t.Fatal(err)
	}
	minV := vals[0]
	for _, v := range vals {
		if v < minV {
			minV = v
		}
	}
	brute := p.Graph.MaxCutBrute()
	if math.Abs(minV+brute) > 1e-9 {
		t.Fatalf("Hamiltonian min %g, -MaxCut %g", minV, -brute)
	}
}

func TestMeshMaxCut(t *testing.T) {
	p, err := MeshMaxCut(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 6 {
		t.Fatalf("N=%d", p.N())
	}
	// Mesh graphs are bipartite: the optimum cuts every edge, so the
	// minimum of H is -|E|.
	vals, _ := p.Hamiltonian.DiagonalValues()
	minV := vals[0]
	for _, v := range vals {
		if v < minV {
			minV = v
		}
	}
	if math.Abs(minV+float64(len(p.Graph.Edges))) > 1e-9 {
		t.Fatalf("bipartite mesh min %g want %g", minV, -float64(len(p.Graph.Edges)))
	}
}

func TestH2SpectrumBottom(t *testing.T) {
	p := H2()
	if p.N() != 2 {
		t.Fatalf("N=%d", p.N())
	}
	// The exact ground energy of this standard reduced Hamiltonian is
	// -1.85727503 Ha; check the diagonal HF energy of |q1=1> (the XX term
	// has zero expectation on any basis state).
	c := qsim.NewCircuit(2).X(1)
	s, err := qsim.Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := s.Expectation(p.Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hf-(-1.8369679)) > 1e-6 {
		t.Fatalf("HF energy %g", hf)
	}
	if p.Hamiltonian.IsDiagonal() {
		t.Fatal("H2 must have off-diagonal XX term")
	}
}

func TestLiHStructure(t *testing.T) {
	p := LiH()
	if p.N() != 4 {
		t.Fatalf("N=%d", p.N())
	}
	if len(p.Hamiltonian.Terms()) < 15 {
		t.Fatalf("LiH-like Hamiltonian too small: %d terms", len(p.Hamiltonian.Terms()))
	}
	if p.Hamiltonian.IdentityCoeff() > -7 {
		t.Fatalf("identity offset %g should be large and negative", p.Hamiltonian.IdentityCoeff())
	}
}

func TestMaxCutValidation(t *testing.T) {
	if _, err := MaxCut("nil", nil); err == nil {
		t.Error("want error for nil graph")
	}
	big := &graph.Graph{N: 31}
	if _, err := MaxCut("big", big); err == nil {
		t.Error("want error for >30 qubits")
	}
}

func TestProblemDiagonalTableCached(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, err := Random3RegularMaxCut(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := p.DiagonalTable()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p.DiagonalTable()
	if err != nil {
		t.Fatal(err)
	}
	if &t1[0] != &t2[0] {
		t.Fatal("DiagonalTable should be memoized, got distinct slices")
	}
	want, err := p.Hamiltonian.DiagonalValues()
	if err != nil {
		t.Fatal(err)
	}
	for b := range want {
		if t1[b] != want[b] {
			t.Fatalf("table[%d] = %v, DiagonalValues %v", b, t1[b], want[b])
		}
	}
	if _, err := H2().DiagonalTable(); err == nil {
		t.Fatal("want error for off-diagonal H2")
	}
}
