// Package problem defines the benchmark problems of the paper's evaluation:
// MaxCut on 3-regular and mesh graphs, the Sherrington-Kirkpatrick model,
// and the H2 / LiH molecular ground-state problems. Each problem is a qubit
// Hamiltonian whose expectation value is the VQA cost to minimize.
package problem

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/graph"
	"repro/internal/pauli"
)

// Problem couples a cost Hamiltonian with its metadata. Cost convention:
// lower <H> is better (minimization), so for MaxCut the Hamiltonian is
// H = sum_e w_e/2 (Z_u Z_v - 1), whose minimum is -MaxCut.
//
// Problems are shared by pointer (evaluators hold *Problem) and must not be
// copied by value: the lazily built diagonal energy table is guarded by a
// sync.Once.
type Problem struct {
	Name        string
	Hamiltonian *pauli.Hamiltonian
	// Graph is the underlying graph for cut problems; nil for molecules.
	Graph *graph.Graph

	// diagOnce guards the lazily computed diagonal energy table shared by
	// every evaluator on this problem (the O(terms * 2^n) construction is
	// paid once per problem, then each landscape point is a single fused
	// pass — see qsim.State.ExpectationDiagonal).
	diagOnce sync.Once
	diag     []float64
	diagErr  error
}

// N reports the qubit count.
func (p *Problem) N() int { return p.Hamiltonian.N() }

// DiagonalTable returns the memoized 2^n energy vector of a diagonal
// Hamiltonian (entry b is <b|H|b>), computing it on first use. Callers must
// not mutate the returned slice. Off-diagonal Hamiltonians (H2, LiH) return
// an error; their expectations go through the per-term path instead.
func (p *Problem) DiagonalTable() ([]float64, error) {
	p.diagOnce.Do(func() {
		p.diag, p.diagErr = p.Hamiltonian.DiagonalTable()
	})
	return p.diag, p.diagErr
}

// MaxCut builds the MaxCut minimization problem on g.
func MaxCut(name string, g *graph.Graph) (*Problem, error) {
	if g == nil || g.N < 2 {
		return nil, fmt.Errorf("problem: invalid graph")
	}
	if g.N > 30 {
		return nil, fmt.Errorf("problem: %d qubits exceeds simulator limit", g.N)
	}
	h := pauli.NewHamiltonian(g.N)
	for _, e := range g.Edges {
		h.MustAdd(e.Weight/2, pauli.ZZ(g.N, e.U, e.V))
		h.MustAdd(-e.Weight/2, pauli.Identity(g.N))
	}
	return &Problem{Name: name, Hamiltonian: h, Graph: g}, nil
}

// Random3RegularMaxCut builds MaxCut on a random 3-regular graph.
func Random3RegularMaxCut(n int, rng *rand.Rand) (*Problem, error) {
	g, err := graph.Random3Regular(n, rng)
	if err != nil {
		return nil, err
	}
	return MaxCut(fmt.Sprintf("3reg-maxcut-n%d", n), g)
}

// MeshMaxCut builds MaxCut on a rows×cols mesh graph.
func MeshMaxCut(rows, cols int) (*Problem, error) {
	g, err := graph.Mesh(rows, cols)
	if err != nil {
		return nil, err
	}
	return MaxCut(fmt.Sprintf("mesh-maxcut-%dx%d", rows, cols), g)
}

// SK builds the Sherrington-Kirkpatrick spin-glass minimization problem:
// H = sum_{i<j} J_ij Z_i Z_j with J_ij = ±1 (normalized by 1/sqrt(n) is left
// to callers; the paper's landscapes use unnormalized couplings).
func SK(n int, rng *rand.Rand) (*Problem, error) {
	g, err := graph.SK(n, rng)
	if err != nil {
		return nil, err
	}
	if n > 30 {
		return nil, fmt.Errorf("problem: %d qubits exceeds simulator limit", n)
	}
	h := pauli.NewHamiltonian(n)
	for _, e := range g.Edges {
		h.MustAdd(e.Weight/2, pauli.ZZ(n, e.U, e.V))
		h.MustAdd(-e.Weight/2, pauli.Identity(n))
	}
	return &Problem{Name: fmt.Sprintf("sk-n%d", n), Hamiltonian: h, Graph: g}, nil
}

// H2 returns the 2-qubit hydrogen-molecule Hamiltonian at the equilibrium
// bond length (0.735 Å) in the standard parity-reduced encoding. The
// coefficients are the widely published STO-3G values.
func H2() *Problem {
	h := pauli.NewHamiltonian(2)
	h.MustAdd(-1.052373245772859, pauli.MustString("II"))
	h.MustAdd(0.39793742484318045, pauli.MustString("IZ"))
	h.MustAdd(-0.39793742484318045, pauli.MustString("ZI"))
	h.MustAdd(-0.01128010425623538, pauli.MustString("ZZ"))
	h.MustAdd(0.18093119978423156, pauli.MustString("XX"))
	return &Problem{Name: "h2", Hamiltonian: h}
}

// LiH returns a 4-qubit lithium-hydride-like Hamiltonian.
//
// Substitution note (see DESIGN.md): the paper used a chemistry package to
// produce the frozen-core 4-qubit LiH Hamiltonian. We build a documented
// Pauli-sum with the same structure — a dominant identity offset, single-Z
// terms with LiH-scale coefficients, ZZ couplings, and weak XX/YY/XZ exchange
// terms — which yields the same kind of smooth, DCT-sparse landscape that
// Tables 3 and 4 measure.
func LiH() *Problem {
	h := pauli.NewHamiltonian(4)
	h.MustAdd(-7.49894690201071, pauli.MustString("IIII"))
	h.MustAdd(-0.0029329964409502266, pauli.MustString("ZIII"))
	h.MustAdd(0.42173056396437425, pauli.MustString("IZII"))
	h.MustAdd(-0.0029329964409502266, pauli.MustString("IIZI"))
	h.MustAdd(0.42173056396437425, pauli.MustString("IIIZ"))
	h.MustAdd(0.12357087224898309, pauli.MustString("ZZII"))
	h.MustAdd(0.05575552226867875, pauli.MustString("ZIZI"))
	h.MustAdd(0.05575552226867875, pauli.MustString("IZIZ"))
	h.MustAdd(0.12357087224898309, pauli.MustString("IIZZ"))
	h.MustAdd(0.0839593064396937, pauli.MustString("ZIIZ"))
	h.MustAdd(0.0839593064396937, pauli.MustString("IZZI"))
	h.MustAdd(0.060240981898215784, pauli.MustString("XXII"))
	h.MustAdd(0.060240981898215784, pauli.MustString("IIXX"))
	h.MustAdd(0.011582875157105372, pauli.MustString("YYII"))
	h.MustAdd(0.011582875157105372, pauli.MustString("IIYY"))
	h.MustAdd(0.0181312211755805, pauli.MustString("XZXI"))
	h.MustAdd(0.0181312211755805, pauli.MustString("IXZX"))
	h.MustAdd(0.003930301178426152, pauli.MustString("YZYI"))
	h.MustAdd(0.003930301178426152, pauli.MustString("IYZY"))
	return &Problem{Name: "lih", Hamiltonian: h}
}
