package backend

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/noise"
	"repro/internal/problem"
)

func TestStateVectorEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	p, err := problem.Random3RegularMaxCut(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ansatz.QAOA(p.Graph, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewStateVector(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if ev.NumParams() != 2 {
		t.Fatalf("NumParams=%d", ev.NumParams())
	}
	v, err := ev.Evaluate([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-(-float64(len(p.Graph.Edges))/2)) > 1e-9 {
		t.Fatalf("cost at origin %g", v)
	}
}

func TestStateVectorDimensionMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	p, _ := problem.Random3RegularMaxCut(6, rng)
	a, _ := ansatz.TwoLocal(4, 1)
	if _, err := NewStateVector(p, a); err == nil {
		t.Fatal("want error for qubit mismatch")
	}
}

func TestDensityMatchesStateVectorWhenIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	p, _ := problem.Random3RegularMaxCut(4, rng)
	a, _ := ansatz.QAOA(p.Graph, 1)
	sv, _ := NewStateVector(p, a)
	dm, err := NewDensity(p, a, noise.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		params := []float64{rng.NormFloat64() / 2, rng.NormFloat64() / 2}
		v1, err := sv.Evaluate(params)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := dm.Evaluate(params)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v1-v2) > 1e-8 {
			t.Fatalf("ideal dm %g vs sv %g", v2, v1)
		}
	}
}

func TestDensityNoiseShrinksCostMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	p, _ := problem.Random3RegularMaxCut(4, rng)
	a, _ := ansatz.QAOA(p.Graph, 1)
	sv, _ := NewStateVector(p, a)
	dm, _ := NewDensity(p, a, noise.Fig9())
	params := []float64{0.3, -0.6}
	ideal, _ := sv.Evaluate(params)
	noisy, _ := dm.Evaluate(params)
	// H = sum w/2 (ZZ - 1): the -1 offset is noise-invariant, so the
	// noisy cost sits between the ideal cost and the offset.
	offset := -float64(len(p.Graph.Edges)) / 2
	lo, hi := math.Min(ideal, offset), math.Max(ideal, offset)
	if noisy < lo-1e-9 || noisy > hi+1e-9 {
		t.Fatalf("noisy %g outside [%g, %g]", noisy, lo, hi)
	}
	if math.Abs(noisy-ideal) < 1e-6 {
		t.Fatal("noise had no effect")
	}
}

func TestDensityReadoutError(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	p, _ := problem.Random3RegularMaxCut(4, rng)
	a, _ := ansatz.QAOA(p.Graph, 1)
	clean, _ := NewDensity(p, a, noise.Profile{Name: "depol-only", P1: 0.001, P2: 0.005})
	dirty, _ := NewDensity(p, a, noise.Profile{Name: "with-readout", P1: 0.001, P2: 0.005, Readout01: 0.05, Readout10: 0.05})
	params := []float64{0.3, -0.6}
	v1, err := clean.Evaluate(params)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := dirty.Evaluate(params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-v2) < 1e-9 {
		t.Fatal("readout error had no effect")
	}
}

func TestDensityRejectsLargeProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(116))
	p, _ := problem.Random3RegularMaxCut(16, rng)
	a, _ := ansatz.QAOA(p.Graph, 1)
	if _, err := NewDensity(p, a, noise.Ideal()); err == nil {
		t.Fatal("want error for 16-qubit density evaluator")
	}
}

func TestAnalyticMatchesStateVectorEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	p, _ := problem.Random3RegularMaxCut(8, rng)
	a, _ := ansatz.QAOA(p.Graph, 1)
	sv, _ := NewStateVector(p, a)
	an, err := NewAnalyticQAOA(p, noise.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		params := []float64{rng.NormFloat64() / 3, rng.NormFloat64() / 2}
		v1, _ := sv.Evaluate(params)
		v2, err := an.Evaluate(params)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v1-v2) > 1e-9 {
			t.Fatalf("analytic %g vs sv %g", v2, v1)
		}
	}
	if _, err := an.Evaluate([]float64{1}); err == nil {
		t.Fatal("want error for missing gamma")
	}
	if _, err := NewAnalyticQAOA(problem.H2(), noise.Ideal()); err == nil {
		t.Fatal("want error for graphless problem")
	}
}

// TestAnalyticDampingApproximatesDensity checks that the analytic damping
// model tracks the exact density-matrix noisy expectation to first order:
// same sign of deviation and magnitude within a factor of two.
func TestAnalyticDampingApproximatesDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(118))
	p, _ := problem.Random3RegularMaxCut(4, rng)
	a, _ := ansatz.QAOA(p.Graph, 1)
	prof := noise.Profile{Name: "weak", P1: 0.001, P2: 0.005}
	dm, _ := NewDensity(p, a, prof)
	an, _ := NewAnalyticQAOA(p, prof)
	sv, _ := NewStateVector(p, a)
	params := []float64{0.35, -0.55}
	exact, _ := dm.Evaluate(params)
	approx, _ := an.Evaluate(params)
	ideal, _ := sv.Evaluate(params)
	devExact := exact - ideal
	devApprox := approx - ideal
	if devExact == 0 {
		t.Skip("degenerate point")
	}
	ratio := devApprox / devExact
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("damping model deviation ratio %g (exact dev %g, model dev %g)", ratio, devExact, devApprox)
	}
}

func TestWithShots(t *testing.T) {
	inner := &Func{Label: "const", Params: 2, F: func(p []float64) (float64, error) { return 1.5, nil }}
	ws, err := NewWithShots(inner, 1024, 2.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ws.NumParams() != 2 {
		t.Fatalf("NumParams=%d", ws.NumParams())
	}
	var sum, sumSq float64
	n := 4000
	for i := 0; i < n; i++ {
		v, err := ws.Evaluate([]float64{0, 0})
		if err != nil {
			t.Fatal(err)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	stdev := math.Sqrt(sumSq/float64(n) - mean*mean)
	wantStd := 2.0 / math.Sqrt(1024)
	if math.Abs(mean-1.5) > 0.01 {
		t.Fatalf("mean %g want 1.5", mean)
	}
	if math.Abs(stdev-wantStd) > 0.01 {
		t.Fatalf("stdev %g want %g", stdev, wantStd)
	}
	if _, err := NewWithShots(inner, 0, 1, 1); err == nil {
		t.Error("want error for zero shots")
	}
	if _, err := NewWithShots(inner, 10, -1, 1); err == nil {
		t.Error("want error for negative spread")
	}
}

func TestWithShotsConcurrent(t *testing.T) {
	inner := &Func{Label: "c", Params: 1, F: func(p []float64) (float64, error) { return 0, nil }}
	ws, _ := NewWithShots(inner, 100, 1, 3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := ws.Evaluate([]float64{0}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestShotSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(119))
	p, _ := problem.Random3RegularMaxCut(6, rng)
	s := ShotSpread(p.Hamiltonian)
	// 9 edges with coefficient 1/2 each: sqrt(9*0.25) = 1.5.
	if math.Abs(s-1.5) > 1e-12 {
		t.Fatalf("spread %g want 1.5", s)
	}
}

func TestCounting(t *testing.T) {
	inner := &Func{Label: "c", Params: 1, F: func(p []float64) (float64, error) { return p[0], nil }}
	ce := NewCounting(inner)
	if ce.Count() != 0 {
		t.Fatal("fresh counter nonzero")
	}
	for i := 0; i < 5; i++ {
		if _, err := ce.Evaluate([]float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if ce.Count() != 5 {
		t.Fatalf("count %d", ce.Count())
	}
	ce.Reset()
	if ce.Count() != 0 {
		t.Fatal("reset failed")
	}
	if ce.Name() != "c" || ce.NumParams() != 1 {
		t.Fatal("wrapper metadata wrong")
	}
}

func TestDiagonalFusionOption(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	p, err := problem.Random3RegularMaxCut(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ansatz.QAOA(p.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := NewStateVector(p, a)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewStateVector(p, a, WithoutDiagonalFusion())
	if err != nil {
		t.Fatal(err)
	}
	if fused.circ == a.Circuit {
		t.Fatal("default StateVector should run the fused circuit")
	}
	if plain.circ != a.Circuit {
		t.Fatal("WithoutDiagonalFusion should run the original circuit")
	}
	for trial := 0; trial < 20; trial++ {
		params := make([]float64, 4)
		for i := range params {
			params[i] = (rng.Float64() - 0.5) * math.Pi
		}
		vf, err := fused.Evaluate(params)
		if err != nil {
			t.Fatal(err)
		}
		vp, err := plain.Evaluate(params)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vf-vp) > 1e-11 {
			t.Fatalf("trial %d: fused %g vs unfused %g", trial, vf, vp)
		}
	}
}

func TestDensityFusionGating(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	p, err := problem.Random3RegularMaxCut(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ansatz.QAOA(p.Graph, 1)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := NewDensity(p, a, noise.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	if ideal.circ == a.Circuit {
		t.Fatal("ideal Density should fuse")
	}
	// Readout-only noise attaches at measurement, so fusion still applies.
	ro := noise.Profile{Name: "ro", Readout01: 0.02, Readout10: 0.03}
	roEv, err := NewDensity(p, a, ro)
	if err != nil {
		t.Fatal(err)
	}
	if roEv.circ == a.Circuit {
		t.Fatal("readout-only Density should fuse")
	}
	// Gate noise is defined per physical gate: fusion must stay off so the
	// depolarizing channels see the original gate structure.
	gateNoise := noise.Profile{Name: "dep", P1: 0.003, P2: 0.007}
	noisy, err := NewDensity(p, a, gateNoise)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.circ != a.Circuit {
		t.Fatal("gate-noise Density must not fuse")
	}
	// Ideal fused density agrees with the (fused) statevector evaluator.
	sv, err := NewStateVector(p, a)
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{0.4, -0.7}
	vd, err := ideal.Evaluate(params)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := sv.Evaluate(params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vd-vs) > 1e-9 {
		t.Fatalf("ideal fused density %g vs statevector %g", vd, vs)
	}
}
