package backend

// sv_batch_test.go covers the zero-allocation simulator batch paths: the
// sharded StateVector/Density EvaluateBatch must reproduce point-at-a-time
// Evaluate bit-for-bit for every worker count, Evaluate must agree with the
// seed path (fresh state + per-term expectation), and the pooled scratch
// must not allocate per point in steady state.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/noise"
	"repro/internal/problem"
	"repro/internal/qsim"
)

func svFixture(t *testing.T, n int) (*problem.Problem, *ansatz.Ansatz, *StateVector) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(1000 + n)))
	p, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ansatz.QAOA(p.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewStateVector(p, a)
	if err != nil {
		t.Fatal(err)
	}
	return p, a, sv
}

func randParams(rng *rand.Rand, m, k int) [][]float64 {
	pts := make([][]float64, m)
	for i := range pts {
		p := make([]float64, k)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// TestStateVectorBatchMatchesEvaluate requires EvaluateBatch to equal
// pointwise Evaluate exactly, for every worker setting (including the
// small-batch branch that shards gate kernels instead of points).
func TestStateVectorBatchMatchesEvaluate(t *testing.T) {
	_, a, sv := svFixture(t, 8)
	rng := rand.New(rand.NewSource(5))
	pts := randParams(rng, 37, a.NumParams)
	want := make([]float64, len(pts))
	for i, p := range pts {
		v, err := sv.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	for _, workers := range []int{1, 2, 3, 0} {
		got, err := sv.SetWorkers(workers).EvaluateBatch(context.Background(), pts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: batch[%d] = %v, evaluate %v", workers, i, got[i], want[i])
			}
		}
	}
	// Small batch under a large budget: 8-qubit states are below the
	// kernel-sharding threshold, so the budget clamps to the point level.
	small, err := sv.SetWorkers(8).EvaluateBatch(context.Background(), pts[:2])
	if err != nil {
		t.Fatal(err)
	}
	for i := range small {
		if small[i] != want[i] {
			t.Fatalf("small-batch branch: batch[%d] = %v, evaluate %v", i, small[i], want[i])
		}
	}
}

// TestStateVectorKernelShardBranch covers the amplitude-sharding branch: a
// 15-qubit state (above the kernel threshold) evaluated as a batch smaller
// than the worker budget must hand the budget to the gate kernels and still
// match serial evaluation exactly.
func TestStateVectorKernelShardBranch(t *testing.T) {
	if !qsim.KernelShardable(16) {
		t.Fatal("16 qubits should be kernel-shardable")
	}
	_, a, sv := svFixture(t, 16)
	rng := rand.New(rand.NewSource(12))
	pts := randParams(rng, 2, a.NumParams)
	want := make([]float64, len(pts))
	for i, p := range pts {
		v, err := sv.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	got, err := sv.SetWorkers(8).EvaluateBatch(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kernel-shard branch: batch[%d] = %v, evaluate %v", i, got[i], want[i])
		}
	}
}

// TestStateVectorMatchesSeedPath compares the pooled, table-driven Evaluate
// against the seed path: a fresh qsim.Run plus per-term Expectation.
func TestStateVectorMatchesSeedPath(t *testing.T) {
	p, a, sv := svFixture(t, 8)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		params := randParams(rng, 1, a.NumParams)[0]
		got, err := sv.Evaluate(params)
		if err != nil {
			t.Fatal(err)
		}
		s, err := qsim.Run(a.Circuit, params)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Expectation(p.Hamiltonian)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-11*(1+math.Abs(want)) {
			t.Fatalf("trial %d: evaluate %v, seed path %v", trial, got, want)
		}
	}
}

// TestStateVectorOffDiagonalHamiltonian exercises the per-term fallback
// (H2 has XX terms, so there is no diagonal table).
func TestStateVectorOffDiagonalHamiltonian(t *testing.T) {
	h2 := problem.H2()
	a, err := ansatz.UCCSDH2()
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewStateVector(h2, a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	pts := randParams(rng, 9, a.NumParams)
	got, err := sv.SetWorkers(3).EvaluateBatch(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, params := range pts {
		s, err := qsim.Run(a.Circuit, params)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Expectation(h2.Hamiltonian)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("point %d: batch %v, seed %v", i, got[i], want)
		}
	}
}

// TestStateVectorBatchCancellation checks ctx stops a sharded batch.
func TestStateVectorBatchCancellation(t *testing.T) {
	_, a, sv := svFixture(t, 8)
	rng := rand.New(rand.NewSource(9))
	pts := randParams(rng, 64, a.NumParams)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sv.SetWorkers(4).EvaluateBatch(ctx, pts); err == nil {
		t.Fatal("want cancellation error")
	}
}

// TestStateVectorBatchSteadyStateAllocs verifies the pooled scratch: a warm
// EvaluateBatch allocates O(1) per batch (the result slice and shard
// bookkeeping), not O(points) — i.e. zero allocations per evaluated point.
func TestStateVectorBatchSteadyStateAllocs(t *testing.T) {
	_, a, sv := svFixture(t, 8)
	rng := rand.New(rand.NewSource(10))
	pts := randParams(rng, 100, a.NumParams)
	sv.SetWorkers(1)
	if _, err := sv.EvaluateBatch(context.Background(), pts); err != nil {
		t.Fatal(err) // warm the pool
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := sv.EvaluateBatch(context.Background(), pts); err != nil {
			t.Fatal(err)
		}
	})
	// 100 points; the seed path allocated >= 1 state per point. Allow slack
	// for the result slice, closures, and occasional pool eviction by GC.
	if allocs > 20 {
		t.Fatalf("EvaluateBatch allocates %.1f objects per 100-point batch; scratch is not being reused", allocs)
	}
}

// TestDensityBatchMatchesEvaluate requires the noisy batch path to equal
// pointwise Evaluate exactly across worker counts, with readout error
// engaged so the cached-table distribution path is covered too.
func TestDensityBatchMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, err := problem.Random3RegularMaxCut(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ansatz.QAOA(p.Graph, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof := noise.Profile{Name: "test", P1: 0.002, P2: 0.01, Readout01: 0.01, Readout10: 0.02}
	dm, err := NewDensity(p, a, prof)
	if err != nil {
		t.Fatal(err)
	}
	pts := randParams(rng, 11, a.NumParams)
	want := make([]float64, len(pts))
	for i, params := range pts {
		v, err := dm.Evaluate(params)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	for _, workers := range []int{1, 3, 0} {
		got, err := dm.SetWorkers(workers).EvaluateBatch(context.Background(), pts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: batch[%d] = %v, evaluate %v", workers, i, got[i], want[i])
			}
		}
	}
}
