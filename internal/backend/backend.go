// Package backend provides cost-function evaluators: the bridge between a
// (problem, ansatz, noise profile, shot budget) configuration and the
// scalar-valued cost function whose landscape OSCAR reconstructs. Evaluators
// stand in for QPUs; the qpu package adds queuing/latency behavior on top.
package backend

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ansatz"
	"repro/internal/noise"
	"repro/internal/pauli"
	"repro/internal/problem"
	"repro/internal/qaoa"
	"repro/internal/qsim"
	"repro/internal/shard"
)

// Evaluator computes the VQA cost at a parameter vector. Implementations
// must be safe for concurrent use.
type Evaluator interface {
	// Name identifies the evaluator in experiment output.
	Name() string
	// NumParams reports the expected parameter arity.
	NumParams() int
	// Evaluate returns the cost <H> at params.
	Evaluate(params []float64) (float64, error)
}

// batchEvaluator mirrors exec.BatchEvaluator structurally (backend cannot
// import exec — exec imports backend) so wrappers can forward whole batches
// to an inner evaluator's native batch path.
type batchEvaluator interface {
	EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error)
}

// evaluateBatch runs a batch on e, using its native batch implementation
// when present and otherwise looping with ctx checks.
func evaluateBatch(ctx context.Context, e Evaluator, params [][]float64) ([]float64, error) {
	if b, ok := e.(batchEvaluator); ok {
		return b.EvaluateBatch(ctx, params)
	}
	return evalPointwise(ctx, e.Evaluate, params)
}

// evalPointwise is the shared batch fallback: evaluate each point in order,
// checking ctx between points.
func evalPointwise(ctx context.Context, eval func([]float64) (float64, error), params [][]float64) ([]float64, error) {
	out := make([]float64, len(params))
	for i, p := range params {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := eval(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// shardRange runs fn over the deterministic contiguous shards of [0, n)
// (the shared shard.ForRange split — backend cannot import exec, which
// imports backend, so it reaches the primitive directly), adding the error
// and cancellation handling batch evaluation needs: fn owns [lo, hi)
// exclusively, must honor ctx, and the first error cancels the remaining
// shards. Serial budgets run fn inline.
func shardRange(ctx context.Context, workers, n int, fn func(ctx context.Context, lo, hi int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 1 || n <= 1 {
		return fn(ctx, 0, n)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	shard.ForRange(workers, n, func(lo, hi int) {
		if err := fn(cctx, lo, hi); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			cancel()
		}
	})
	// Prefer the parent context's error: a shard that observed the derived
	// cancellation should not mask the caller's ctx.Err().
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// Option tunes evaluator construction.
type Option func(*evalOptions)

type evalOptions struct {
	noFusion bool
}

// WithoutDiagonalFusion disables the automatic FuseDiagonals pass on the
// ansatz circuit, forcing edge-by-edge gate kernels. This is the debugging
// escape hatch for isolating fusion from a numerical question (fused runs
// agree with unfused to phase rounding, ~1e-15 per gate, not bit-for-bit)
// and the baseline leg of the fused-vs-unfused benchmarks.
func WithoutDiagonalFusion() Option {
	return func(o *evalOptions) { o.noFusion = true }
}

func applyOptions(opts []Option) evalOptions {
	var o evalOptions
	for _, f := range opts {
		f(&o)
	}
	return o
}

// StateVector is the exact (infinite-shot) ideal evaluator. It re-runs the
// ansatz circuit into pooled scratch states (zero allocations per point in
// steady state) and, for diagonal Hamiltonians (MaxCut, SK), evaluates the
// cost as one fused |amp|^2 * E pass over the problem's precomputed energy
// table instead of one full-state pass per Hamiltonian term.
//
// The circuit itself is run through qsim's diagonal-fusion pass at
// construction (see Circuit.FuseDiagonals): every QAOA cost layer becomes
// one O(2^n) phase-table sweep instead of one kernel sweep per edge, and —
// because FuseDiagonals is memoized on the circuit and the pass interns
// tables by content — all evaluators sharing the ansatz, all p layers, and
// every gamma on a landscape grid share the same table.
type StateVector struct {
	name    string
	prob    *problem.Problem
	ans     *ansatz.Ansatz
	circ    *qsim.Circuit // ansatz circuit, diagonal-fused unless opted out
	diag    []float64     // cached diagonal energy table; nil for off-diagonal H
	workers int
	pool    sync.Pool // *qsim.State scratch, one live per concurrent shard
}

// NewStateVector builds an exact evaluator for an ansatz on a problem.
func NewStateVector(p *problem.Problem, a *ansatz.Ansatz, opts ...Option) (*StateVector, error) {
	if p.N() != a.Circuit.N() {
		return nil, fmt.Errorf("backend: %d-qubit ansatz for %d-qubit problem", a.Circuit.N(), p.N())
	}
	e := &StateVector{
		name:    fmt.Sprintf("sv(%s,%s)", p.Name, a.Name),
		prob:    p,
		ans:     a,
		circ:    a.Circuit,
		workers: 1,
	}
	if !applyOptions(opts).noFusion {
		e.circ = a.Circuit.FuseDiagonals()
	}
	if p.Hamiltonian.IsDiagonal() {
		diag, err := p.DiagonalTable()
		if err != nil {
			return nil, err
		}
		e.diag = diag
	}
	n := a.Circuit.N()
	e.pool.New = func() any { return qsim.NewState(n) }
	return e, nil
}

// Name implements Evaluator.
func (e *StateVector) Name() string { return e.name }

// NumParams implements Evaluator.
func (e *StateVector) NumParams() int { return e.ans.NumParams }

// SetWorkers sets the worker budget for direct EvaluateBatch calls
// (0 = GOMAXPROCS; the constructor default of 1 runs points serially, which
// is right when an exec.Engine already fans chunks out across workers).
// Large batches shard deterministically across points; batches smaller than
// the budget instead shard each point's gate kernels over their amplitude
// ranges. Both layouts are bit-identical to a serial run. Returns e.
func (e *StateVector) SetWorkers(w int) *StateVector {
	e.workers = w
	return e
}

// resolveWorkers maps the configured budget onto a batch of n points,
// returning the point-level and kernel-level worker counts. Batches smaller
// than the budget hand the whole budget to amplitude-level kernel sharding
// instead — but only when the evaluator's states are big enough for that to
// engage (kernelShardable); otherwise the budget stays at the point level,
// clamped to the batch.
func resolveWorkers(configured, n int, kernelShardable bool) (points, kernels int) {
	w := configured
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n >= w || !kernelShardable {
		if w > n && n > 0 {
			w = n
		}
		return w, 1
	}
	return 1, w
}

// evaluateInto runs the circuit into the reused scratch state and measures
// the cost, allocating nothing.
func (e *StateVector) evaluateInto(s *qsim.State, params []float64) (float64, error) {
	if err := qsim.RunInto(s, e.circ, params); err != nil {
		return 0, err
	}
	if e.diag != nil {
		return s.ExpectationDiagonal(e.diag)
	}
	return s.Expectation(e.prob.Hamiltonian)
}

// Evaluate implements Evaluator.
func (e *StateVector) Evaluate(params []float64) (float64, error) {
	s := e.pool.Get().(*qsim.State)
	defer e.pool.Put(s)
	return e.evaluateInto(s.SetWorkers(1), params)
}

// EvaluateBatch implements exec.BatchEvaluator natively: deterministic
// contiguous shards across the batch, one pooled scratch state per shard,
// ctx checked between points. Values are bit-identical to point-at-a-time
// Evaluate for every worker count.
func (e *StateVector) EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]float64, len(params))
	pw, kw := resolveWorkers(e.workers, len(params), qsim.KernelShardable(e.ans.Circuit.N()))
	err := shardRange(ctx, pw, len(params), func(ctx context.Context, lo, hi int) error {
		s := e.pool.Get().(*qsim.State)
		defer e.pool.Put(s)
		s.SetWorkers(kw)
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			v, err := e.evaluateInto(s, params[i])
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Density is the exact noisy evaluator: density-matrix simulation with
// per-gate depolarizing channels and readout error. Cost is 4^n, so it is
// reserved for small problems (n <= 13); larger noisy landscapes use the
// analytic damping model. Like StateVector, it re-runs circuits into pooled
// density matrices whose 4^n buffers (state plus channel scratch) are reused
// across every point, and evaluates diagonal Hamiltonians against the
// problem's cached energy table.
type Density struct {
	name    string
	prob    *problem.Problem
	ans     *ansatz.Ansatz
	circ    *qsim.Circuit // ansatz circuit, fused only when gate noise is off
	profile noise.Profile
	hook    func(d *qsim.DensityMatrix, g qsim.Gate) error
	diag    []float64 // cached diagonal energy table; nil for off-diagonal H
	workers int
	pool    sync.Pool // *qsim.DensityMatrix scratch
}

// NewDensity builds an exact noisy evaluator.
//
// Diagonal fusion applies only when the profile's gate-error rates are zero:
// the depolarizing channels are defined per physical gate, so collapsing a
// cost layer would change the noise model. Readout error attaches at
// measurement and does not block fusion.
func NewDensity(p *problem.Problem, a *ansatz.Ansatz, prof noise.Profile, opts ...Option) (*Density, error) {
	if p.N() != a.Circuit.N() {
		return nil, fmt.Errorf("backend: %d-qubit ansatz for %d-qubit problem", a.Circuit.N(), p.N())
	}
	if p.N() > 13 {
		return nil, fmt.Errorf("backend: density-matrix evaluator limited to 13 qubits, got %d", p.N())
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	e := &Density{
		name:    fmt.Sprintf("dm(%s,%s,%s)", p.Name, a.Name, prof.Name),
		prob:    p,
		ans:     a,
		circ:    a.Circuit,
		profile: prof,
		workers: 1,
	}
	if prof.P1 == 0 && prof.P2 == 0 && !applyOptions(opts).noFusion {
		e.circ = a.Circuit.FuseDiagonals()
	}
	if p.Hamiltonian.IsDiagonal() {
		diag, err := p.DiagonalTable()
		if err != nil {
			return nil, err
		}
		e.diag = diag
	}
	e.hook = func(d *qsim.DensityMatrix, g qsim.Gate) error {
		switch len(g.Qubits) {
		case 1:
			return d.Depolarize1Q(g.Qubits[0], prof.P1)
		case 2:
			return d.Depolarize2Q(g.Qubits[0], g.Qubits[1], prof.P2)
		default:
			// Pauli rotations: depolarize every touched qubit.
			for q := 0; q < g.Pauli.N(); q++ {
				if g.Pauli.At(q) != pauli.I {
					if err := d.Depolarize1Q(q, prof.P1); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	n := a.Circuit.N()
	e.pool.New = func() any { return qsim.NewDensityMatrix(n) }
	return e, nil
}

// Name implements Evaluator.
func (e *Density) Name() string { return e.name }

// NumParams implements Evaluator.
func (e *Density) NumParams() int { return e.ans.NumParams }

// Profile returns the evaluator's noise profile.
func (e *Density) Profile() noise.Profile { return e.profile }

// SetWorkers sets the worker budget for direct EvaluateBatch calls
// (0 = GOMAXPROCS, constructor default 1); see StateVector.SetWorkers.
func (e *Density) SetWorkers(w int) *Density {
	e.workers = w
	return e
}

// evaluateInto runs the noisy circuit into the reused density matrix and
// measures the cost.
func (e *Density) evaluateInto(dm *qsim.DensityMatrix, params []float64) (float64, error) {
	prof := e.profile
	if err := qsim.RunDensityInto(dm, e.circ, params, e.hook); err != nil {
		return 0, err
	}
	if prof.Readout01 == 0 && prof.Readout10 == 0 {
		if e.diag != nil {
			return dm.ExpectationDiagonal(e.diag)
		}
		return dm.Expectation(e.prob.Hamiltonian)
	}
	if e.diag != nil {
		probs, err := qsim.ApplyReadoutError(dm.Probabilities(), e.prob.N(), prof.Readout01, prof.Readout10)
		if err != nil {
			return 0, err
		}
		return qsim.ExpectationFromDistributionTable(e.diag, probs)
	}
	// Off-diagonal Hamiltonians: apply the standard per-qubit Z damping of
	// the confusion matrix to each term's expectation.
	ro := 1 - prof.Readout01 - prof.Readout10
	var total float64
	for _, t := range e.prob.Hamiltonian.Terms() {
		v, err := dm.ExpectationPauli(t.P)
		if err != nil {
			return 0, err
		}
		total += t.Coeff * v * math.Pow(ro, float64(t.P.Weight()))
	}
	return total, nil
}

// Evaluate implements Evaluator.
func (e *Density) Evaluate(params []float64) (float64, error) {
	dm := e.pool.Get().(*qsim.DensityMatrix)
	defer e.pool.Put(dm)
	return e.evaluateInto(dm, params)
}

// EvaluateBatch implements exec.BatchEvaluator natively. Density-matrix
// evaluations are the heaviest per-point cost in the repo (4^n state), so
// mid-batch cancellation matters most here: ctx is checked between points
// in every shard.
func (e *Density) EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]float64, len(params))
	// Density matrices have no amplitude-level sharding, so the budget
	// always applies at the point level.
	pw, _ := resolveWorkers(e.workers, len(params), false)
	err := shardRange(ctx, pw, len(params), func(ctx context.Context, lo, hi int) error {
		dm := e.pool.Get().(*qsim.DensityMatrix)
		defer e.pool.Put(dm)
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			v, err := e.evaluateInto(dm, params[i])
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AnalyticQAOA evaluates depth-1 QAOA cut costs through the closed-form
// engine, optionally with analytic depolarizing damping. It makes the
// paper's 16-30 qubit landscapes cheap.
type AnalyticQAOA struct {
	name   string
	engine *qaoa.Engine
	damp   []float64 // nil for ideal

	// gammaCache memoizes the beta-independent factors per gamma for the
	// batch path: grid batches revisit each gamma once per beta row, so
	// the O(|E|*n) neighbor products are paid once per gamma instead of
	// once per point. Keys are float bits; the size cap keeps pathological
	// workloads (optimizers wandering through fresh gammas) bounded.
	gammaCache sync.Map
	gammaLen   atomic.Int64
}

// maxGammaEntries bounds the gamma-factor cache (a Table 1 grid needs 100).
const maxGammaEntries = 4096

// NewAnalyticQAOA builds the analytic evaluator for a cut problem. The
// profile's depolarizing rates are folded into per-edge damping factors;
// pass noise.Ideal() for exact ideal expectations.
func NewAnalyticQAOA(p *problem.Problem, prof noise.Profile) (*AnalyticQAOA, error) {
	if p.Graph == nil {
		return nil, fmt.Errorf("backend: analytic evaluator needs a graph problem")
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	en, err := qaoa.NewEngine(p.Graph)
	if err != nil {
		return nil, err
	}
	var damp []float64
	if !prof.IsIdeal() {
		damp = noise.EdgeDampingFactors(p.Graph, prof)
	}
	return &AnalyticQAOA{
		name:   fmt.Sprintf("analytic(%s,%s)", p.Name, prof.Name),
		engine: en,
		damp:   damp,
	}, nil
}

// Name implements Evaluator.
func (e *AnalyticQAOA) Name() string { return e.name }

// NumParams implements Evaluator: depth-1 QAOA has (beta, gamma).
func (e *AnalyticQAOA) NumParams() int { return 2 }

// Evaluate implements Evaluator. params = [beta, gamma].
func (e *AnalyticQAOA) Evaluate(params []float64) (float64, error) {
	if len(params) < 2 {
		return 0, fmt.Errorf("backend: analytic QAOA needs [beta, gamma], got %d params", len(params))
	}
	return e.engine.Cost(params[0], params[1], e.damp), nil
}

// gammaFactors returns the memoized beta-independent factors at gamma.
func (e *AnalyticQAOA) gammaFactors(gamma float64) *qaoa.GammaFactors {
	key := math.Float64bits(gamma)
	if v, ok := e.gammaCache.Load(key); ok {
		return v.(*qaoa.GammaFactors)
	}
	gf := e.engine.Gamma(gamma)
	if e.gammaLen.Load() < maxGammaEntries {
		if _, loaded := e.gammaCache.LoadOrStore(key, gf); !loaded {
			e.gammaLen.Add(1)
		}
	}
	return gf
}

// EvaluateBatch implements exec.BatchEvaluator natively: the per-gamma
// neighbor products are computed once and shared across every beta in the
// batch (and across batches), so a grid scan costs O(|E|) per point instead
// of O(|E|*n) — the fast path for the paper's 16-30 qubit landscape sweeps.
// Values are bit-identical to Evaluate.
func (e *AnalyticQAOA) EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, len(params))
	for i, p := range params {
		if len(p) < 2 {
			return nil, fmt.Errorf("backend: analytic QAOA needs [beta, gamma], got %d params", len(p))
		}
		out[i] = e.engine.CostAt(p[0], e.gammaFactors(p[1]), e.damp)
	}
	return out, nil
}

// WithShots wraps an evaluator with finite-shot sampling noise: Gaussian
// noise with standard deviation spread/sqrt(shots), the leading-order
// statistics of averaging `shots` measurement outcomes. spread should be the
// per-shot standard deviation scale of the cost observable (callers can use
// ShotSpread for Hamiltonians).
//
// Sampling is seeded, thread-safe, and lock-free. Point-at-a-time Evaluate
// calls draw from per-call RNG streams derived from (seed, call number) via
// an atomic counter, so parallel samplers never serialize on a shared lock.
// EvaluateBatch instead derives each point's stream from (seed, epoch,
// params): within an epoch the noise is a pure function of the point, which
// makes batched landscapes bit-reproducible across worker counts and
// chunkings and keeps the memoizing execution cache semantically sound —
// but it also means re-running the same batch returns identical values.
// Callers that repeat sweeps to average shot noise must call Resample
// between sweeps to advance the epoch (and must not reuse a cache across
// epochs). The two paths use different streams: for the same seed, Evaluate
// and EvaluateBatch produce different (equally distributed) noise.
type WithShots struct {
	inner  Evaluator
	shots  int
	spread float64
	seed   int64
	calls  atomic.Uint64
	epoch  atomic.Uint64
}

// NewWithShots wraps inner with shot noise. See the WithShots type comment
// for the determinism contract of the point and batch paths.
func NewWithShots(inner Evaluator, shots int, spread float64, seed int64) (*WithShots, error) {
	if shots <= 0 {
		return nil, fmt.Errorf("backend: shots must be positive, got %d", shots)
	}
	if spread < 0 {
		return nil, fmt.Errorf("backend: negative spread %g", spread)
	}
	return &WithShots{
		inner:  inner,
		shots:  shots,
		spread: spread,
		seed:   seed,
	}, nil
}

// Name implements Evaluator.
func (e *WithShots) Name() string { return fmt.Sprintf("%s@%dshots", e.inner.Name(), e.shots) }

// NumParams implements Evaluator.
func (e *WithShots) NumParams() int { return e.inner.NumParams() }

// splitmix64 is the SplitMix64 finalizer, used to whiten derived seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// noiseAt draws one standard normal from the stream derived from e.seed and
// a stream discriminator, via Box-Muller on two splitmix64 outputs — a few
// integer mixes per draw, so the lock-free path stays cheaper than the
// evaluation it decorates.
func (e *WithShots) noiseAt(stream uint64) float64 {
	s := splitmix64(uint64(e.seed) ^ splitmix64(stream))
	// Uniforms in (0,1]: the +1 keeps u1 away from log(0).
	u1 := float64(splitmix64(s)>>11+1) / (1 << 53)
	u2 := float64(splitmix64(s+0x9e3779b97f4a7c15)>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// paramStream hashes a parameter vector into a stream discriminator.
func paramStream(params []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range params {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Evaluate implements Evaluator: independent noise per call, lock-free.
func (e *WithShots) Evaluate(params []float64) (float64, error) {
	v, err := e.inner.Evaluate(params)
	if err != nil {
		return 0, err
	}
	g := e.noiseAt(e.calls.Add(1))
	return v + g*e.spread/math.Sqrt(float64(e.shots)), nil
}

// Resample advances the batch noise epoch: subsequent EvaluateBatch calls
// draw fresh (still deterministic) noise for every point. Use it between
// repeated sweeps that average shot noise.
func (e *WithShots) Resample() { e.epoch.Add(1) }

// EvaluateBatch implements exec.BatchEvaluator: the inner evaluator runs the
// whole batch (natively when it can), then each point receives noise from
// its (epoch, params)-derived stream — deterministic however the batch is
// chunked; call Resample to redraw.
func (e *WithShots) EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error) {
	vs, err := evaluateBatch(ctx, e.inner, params)
	if err != nil {
		return nil, err
	}
	scale := e.spread / math.Sqrt(float64(e.shots))
	ep := splitmix64(e.epoch.Load())
	for i, p := range params {
		vs[i] += e.noiseAt(ep^paramStream(p)) * scale
	}
	return vs, nil
}

// ShotSpread estimates the per-shot standard deviation scale of a
// Hamiltonian: the root-sum-square of non-identity coefficients, the
// worst-case single-shot variance of a Pauli-sum estimate.
func ShotSpread(h *pauli.Hamiltonian) float64 {
	var s float64
	for _, t := range h.Terms() {
		if t.P.Weight() > 0 {
			s += t.Coeff * t.Coeff
		}
	}
	return math.Sqrt(s)
}

// Counting wraps an evaluator and counts queries — used to reproduce the
// QPU-query accounting of Table 6. The counter is a single atomic, so heavy
// parallel sampling never contends on a lock.
//
// Count reports *submitted* evaluations: a point counts when Evaluate is
// called and a batch counts all its points when the batch job is submitted,
// whether or not execution completes — the same budget a QPU queue charges.
// Both entry points therefore agree for identical submitted work.
type Counting struct {
	inner Evaluator
	n     atomic.Int64
}

// NewCounting wraps inner with a query counter.
func NewCounting(inner Evaluator) *Counting { return &Counting{inner: inner} }

// Name implements Evaluator.
func (e *Counting) Name() string { return e.inner.Name() }

// NumParams implements Evaluator.
func (e *Counting) NumParams() int { return e.inner.NumParams() }

// Evaluate implements Evaluator.
func (e *Counting) Evaluate(params []float64) (float64, error) {
	e.n.Add(1)
	return e.inner.Evaluate(params)
}

// EvaluateBatch implements exec.BatchEvaluator: one atomic add for the whole
// batch, forwarding to the inner evaluator's native batch path when present.
func (e *Counting) EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error) {
	e.n.Add(int64(len(params)))
	return evaluateBatch(ctx, e.inner, params)
}

// Count returns the number of submitted evaluations so far (batch points
// included; see the type comment for the submission semantics).
func (e *Counting) Count() int { return int(e.n.Load()) }

// Reset zeroes the counter.
func (e *Counting) Reset() { e.n.Store(0) }

// Func adapts a plain function into an Evaluator.
type Func struct {
	Label  string
	Params int
	F      func(params []float64) (float64, error)
	// BatchF optionally provides a native batch implementation.
	BatchF func(ctx context.Context, params [][]float64) ([]float64, error)
}

// Name implements Evaluator.
func (e *Func) Name() string { return e.Label }

// NumParams implements Evaluator.
func (e *Func) NumParams() int { return e.Params }

// Evaluate implements Evaluator.
func (e *Func) Evaluate(params []float64) (float64, error) { return e.F(params) }

// EvaluateBatch implements exec.BatchEvaluator, preferring BatchF.
func (e *Func) EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error) {
	if e.BatchF != nil {
		return e.BatchF(ctx, params)
	}
	return evalPointwise(ctx, e.F, params)
}
