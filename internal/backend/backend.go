// Package backend provides cost-function evaluators: the bridge between a
// (problem, ansatz, noise profile, shot budget) configuration and the
// scalar-valued cost function whose landscape OSCAR reconstructs. Evaluators
// stand in for QPUs; the qpu package adds queuing/latency behavior on top.
package backend

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/ansatz"
	"repro/internal/noise"
	"repro/internal/pauli"
	"repro/internal/problem"
	"repro/internal/qaoa"
	"repro/internal/qsim"
)

// Evaluator computes the VQA cost at a parameter vector. Implementations
// must be safe for concurrent use.
type Evaluator interface {
	// Name identifies the evaluator in experiment output.
	Name() string
	// NumParams reports the expected parameter arity.
	NumParams() int
	// Evaluate returns the cost <H> at params.
	Evaluate(params []float64) (float64, error)
}

// StateVector is the exact (infinite-shot) ideal evaluator.
type StateVector struct {
	name string
	prob *problem.Problem
	ans  *ansatz.Ansatz
}

// NewStateVector builds an exact evaluator for an ansatz on a problem.
func NewStateVector(p *problem.Problem, a *ansatz.Ansatz) (*StateVector, error) {
	if p.N() != a.Circuit.N() {
		return nil, fmt.Errorf("backend: %d-qubit ansatz for %d-qubit problem", a.Circuit.N(), p.N())
	}
	return &StateVector{
		name: fmt.Sprintf("sv(%s,%s)", p.Name, a.Name),
		prob: p,
		ans:  a,
	}, nil
}

// Name implements Evaluator.
func (e *StateVector) Name() string { return e.name }

// NumParams implements Evaluator.
func (e *StateVector) NumParams() int { return e.ans.NumParams }

// Evaluate implements Evaluator.
func (e *StateVector) Evaluate(params []float64) (float64, error) {
	s, err := qsim.Run(e.ans.Circuit, params)
	if err != nil {
		return 0, err
	}
	return s.Expectation(e.prob.Hamiltonian)
}

// Density is the exact noisy evaluator: density-matrix simulation with
// per-gate depolarizing channels and readout error. Cost is 4^n, so it is
// reserved for small problems (n <= 13); larger noisy landscapes use the
// analytic damping model.
type Density struct {
	name    string
	prob    *problem.Problem
	ans     *ansatz.Ansatz
	profile noise.Profile
}

// NewDensity builds an exact noisy evaluator.
func NewDensity(p *problem.Problem, a *ansatz.Ansatz, prof noise.Profile) (*Density, error) {
	if p.N() != a.Circuit.N() {
		return nil, fmt.Errorf("backend: %d-qubit ansatz for %d-qubit problem", a.Circuit.N(), p.N())
	}
	if p.N() > 13 {
		return nil, fmt.Errorf("backend: density-matrix evaluator limited to 13 qubits, got %d", p.N())
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &Density{
		name:    fmt.Sprintf("dm(%s,%s,%s)", p.Name, a.Name, prof.Name),
		prob:    p,
		ans:     a,
		profile: prof,
	}, nil
}

// Name implements Evaluator.
func (e *Density) Name() string { return e.name }

// NumParams implements Evaluator.
func (e *Density) NumParams() int { return e.ans.NumParams }

// Profile returns the evaluator's noise profile.
func (e *Density) Profile() noise.Profile { return e.profile }

// Evaluate implements Evaluator.
func (e *Density) Evaluate(params []float64) (float64, error) {
	prof := e.profile
	dm, err := qsim.RunDensity(e.ans.Circuit, params, func(d *qsim.DensityMatrix, g qsim.Gate) error {
		switch len(g.Qubits) {
		case 1:
			return d.Depolarize1Q(g.Qubits[0], prof.P1)
		case 2:
			return d.Depolarize2Q(g.Qubits[0], g.Qubits[1], prof.P2)
		default:
			// Pauli rotations: depolarize every touched qubit.
			for q := 0; q < g.Pauli.N(); q++ {
				if g.Pauli.At(q) != pauli.I {
					if err := d.Depolarize1Q(q, prof.P1); err != nil {
						return err
					}
				}
			}
			return nil
		}
	})
	if err != nil {
		return 0, err
	}
	if prof.Readout01 == 0 && prof.Readout10 == 0 {
		return dm.Expectation(e.prob.Hamiltonian)
	}
	if e.prob.Hamiltonian.IsDiagonal() {
		probs, err := qsim.ApplyReadoutError(dm.Probabilities(), e.prob.N(), prof.Readout01, prof.Readout10)
		if err != nil {
			return 0, err
		}
		return qsim.ExpectationFromDistribution(e.prob.Hamiltonian, probs)
	}
	// Off-diagonal Hamiltonians: apply the standard per-qubit Z damping of
	// the confusion matrix to each term's expectation.
	ro := 1 - prof.Readout01 - prof.Readout10
	var total float64
	for _, t := range e.prob.Hamiltonian.Terms() {
		v, err := dm.ExpectationPauli(t.P)
		if err != nil {
			return 0, err
		}
		total += t.Coeff * v * math.Pow(ro, float64(t.P.Weight()))
	}
	return total, nil
}

// AnalyticQAOA evaluates depth-1 QAOA cut costs through the closed-form
// engine, optionally with analytic depolarizing damping. It makes the
// paper's 16-30 qubit landscapes cheap.
type AnalyticQAOA struct {
	name   string
	engine *qaoa.Engine
	damp   []float64 // nil for ideal
}

// NewAnalyticQAOA builds the analytic evaluator for a cut problem. The
// profile's depolarizing rates are folded into per-edge damping factors;
// pass noise.Ideal() for exact ideal expectations.
func NewAnalyticQAOA(p *problem.Problem, prof noise.Profile) (*AnalyticQAOA, error) {
	if p.Graph == nil {
		return nil, fmt.Errorf("backend: analytic evaluator needs a graph problem")
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	en, err := qaoa.NewEngine(p.Graph)
	if err != nil {
		return nil, err
	}
	var damp []float64
	if !prof.IsIdeal() {
		damp = noise.EdgeDampingFactors(p.Graph, prof)
	}
	return &AnalyticQAOA{
		name:   fmt.Sprintf("analytic(%s,%s)", p.Name, prof.Name),
		engine: en,
		damp:   damp,
	}, nil
}

// Name implements Evaluator.
func (e *AnalyticQAOA) Name() string { return e.name }

// NumParams implements Evaluator: depth-1 QAOA has (beta, gamma).
func (e *AnalyticQAOA) NumParams() int { return 2 }

// Evaluate implements Evaluator. params = [beta, gamma].
func (e *AnalyticQAOA) Evaluate(params []float64) (float64, error) {
	if len(params) < 2 {
		return 0, fmt.Errorf("backend: analytic QAOA needs [beta, gamma], got %d params", len(params))
	}
	return e.engine.Cost(params[0], params[1], e.damp), nil
}

// WithShots wraps an evaluator with finite-shot sampling noise: Gaussian
// noise with standard deviation spread/sqrt(shots), the leading-order
// statistics of averaging `shots` measurement outcomes. spread should be the
// per-shot standard deviation scale of the cost observable (callers can use
// ShotSpread for Hamiltonians). Sampling is seeded and thread-safe.
type WithShots struct {
	inner  Evaluator
	shots  int
	spread float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewWithShots wraps inner with shot noise.
func NewWithShots(inner Evaluator, shots int, spread float64, seed int64) (*WithShots, error) {
	if shots <= 0 {
		return nil, fmt.Errorf("backend: shots must be positive, got %d", shots)
	}
	if spread < 0 {
		return nil, fmt.Errorf("backend: negative spread %g", spread)
	}
	return &WithShots{
		inner:  inner,
		shots:  shots,
		spread: spread,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Name implements Evaluator.
func (e *WithShots) Name() string { return fmt.Sprintf("%s@%dshots", e.inner.Name(), e.shots) }

// NumParams implements Evaluator.
func (e *WithShots) NumParams() int { return e.inner.NumParams() }

// Evaluate implements Evaluator.
func (e *WithShots) Evaluate(params []float64) (float64, error) {
	v, err := e.inner.Evaluate(params)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	g := e.rng.NormFloat64()
	e.mu.Unlock()
	return v + g*e.spread/math.Sqrt(float64(e.shots)), nil
}

// ShotSpread estimates the per-shot standard deviation scale of a
// Hamiltonian: the root-sum-square of non-identity coefficients, the
// worst-case single-shot variance of a Pauli-sum estimate.
func ShotSpread(h *pauli.Hamiltonian) float64 {
	var s float64
	for _, t := range h.Terms() {
		if t.P.Weight() > 0 {
			s += t.Coeff * t.Coeff
		}
	}
	return math.Sqrt(s)
}

// Counting wraps an evaluator and counts queries — used to reproduce the
// QPU-query accounting of Table 6.
type Counting struct {
	inner Evaluator
	mu    sync.Mutex
	n     int
}

// NewCounting wraps inner with a query counter.
func NewCounting(inner Evaluator) *Counting { return &Counting{inner: inner} }

// Name implements Evaluator.
func (e *Counting) Name() string { return e.inner.Name() }

// NumParams implements Evaluator.
func (e *Counting) NumParams() int { return e.inner.NumParams() }

// Evaluate implements Evaluator.
func (e *Counting) Evaluate(params []float64) (float64, error) {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
	return e.inner.Evaluate(params)
}

// Count returns the number of Evaluate calls so far.
func (e *Counting) Count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Reset zeroes the counter.
func (e *Counting) Reset() {
	e.mu.Lock()
	e.n = 0
	e.mu.Unlock()
}

// Func adapts a plain function into an Evaluator.
type Func struct {
	Label  string
	Params int
	F      func(params []float64) (float64, error)
}

// Name implements Evaluator.
func (e *Func) Name() string { return e.Label }

// NumParams implements Evaluator.
func (e *Func) NumParams() int { return e.Params }

// Evaluate implements Evaluator.
func (e *Func) Evaluate(params []float64) (float64, error) { return e.F(params) }
