package backend

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/noise"
	"repro/internal/problem"
)

// testPoints builds n in-range (beta, gamma) points.
func testPoints(n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{0.3 * math.Sin(float64(i)), 0.7 * math.Cos(float64(i))}
	}
	return pts
}

// TestNativeBatchMatchesPointwise checks every native EvaluateBatch returns
// exactly what point-at-a-time Evaluate does.
func TestNativeBatchMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p, err := problem.Random3RegularMaxCut(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ansatz.QAOA(p.Graph, 1)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewStateVector(p, a)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := NewDensity(p, a, noise.Profile{Name: "w", P1: 0.002, P2: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyticQAOA(p, noise.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	pts := testPoints(9)
	for _, e := range []Evaluator{sv, dm, an} {
		be, ok := e.(interface {
			EvaluateBatch(context.Context, [][]float64) ([]float64, error)
		})
		if !ok {
			t.Fatalf("%s has no native batch path", e.Name())
		}
		got, err := be.EvaluateBatch(context.Background(), pts)
		if err != nil {
			t.Fatal(err)
		}
		for i, pt := range pts {
			want, err := e.Evaluate(pt)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("%s: batch[%d]=%g, pointwise=%g", e.Name(), i, got[i], want)
			}
		}
	}
}

// TestWithShotsBatchDeterministic checks the batch path's noise is a pure
// function of (seed, params): any chunking of the same points yields
// bit-identical values, and different seeds yield different noise.
func TestWithShotsBatchDeterministic(t *testing.T) {
	inner := &Func{Label: "c", Params: 2, F: func(p []float64) (float64, error) { return p[0] + p[1], nil }}
	ws, err := NewWithShots(inner, 256, 1.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	pts := testPoints(40)
	whole, err := ws.EvaluateBatch(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	// Re-run chunked in odd pieces, out of order.
	chunked := make([]float64, len(pts))
	for _, r := range [][2]int{{25, 40}, {0, 7}, {7, 25}} {
		vs, err := ws.EvaluateBatch(context.Background(), pts[r[0]:r[1]])
		if err != nil {
			t.Fatal(err)
		}
		copy(chunked[r[0]:], vs)
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("point %d: whole=%g chunked=%g", i, whole[i], chunked[i])
		}
	}
	// Noise is present and seed-dependent.
	ws2, _ := NewWithShots(inner, 256, 1.0, 12)
	other, err := ws2.EvaluateBatch(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range whole {
		clean := pts[i][0] + pts[i][1]
		if whole[i] == clean {
			t.Fatalf("point %d received no shot noise", i)
		}
		if whole[i] == other[i] {
			same++
		}
	}
	if same == len(whole) {
		t.Fatal("seeds 11 and 12 produced identical noise")
	}
}

// TestWithShotsResample checks Resample advances the batch noise epoch:
// identical batches differ across epochs but stay reproducible within one.
func TestWithShotsResample(t *testing.T) {
	inner := &Func{Label: "c", Params: 2, F: func(p []float64) (float64, error) { return 0, nil }}
	ws, _ := NewWithShots(inner, 64, 1.0, 3)
	pts := testPoints(30)
	a1, err := ws.EvaluateBatch(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := ws.EvaluateBatch(context.Background(), pts)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same epoch not reproducible at %d", i)
		}
	}
	ws.Resample()
	b, _ := ws.EvaluateBatch(context.Background(), pts)
	same := 0
	for i := range a1 {
		if a1[i] == b[i] {
			same++
		}
	}
	if same == len(a1) {
		t.Fatal("Resample did not redraw batch noise")
	}
}

// TestWithShotsBatchStats checks batch noise has the advertised spread.
func TestWithShotsBatchStats(t *testing.T) {
	inner := &Func{Label: "c", Params: 1, F: func(p []float64) (float64, error) { return 0, nil }}
	ws, _ := NewWithShots(inner, 1024, 2.0, 5)
	n := 4000
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i)} // distinct points, distinct streams
	}
	vs, err := ws.EvaluateBatch(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, v := range vs {
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	stdev := math.Sqrt(sumSq/float64(n) - mean*mean)
	wantStd := 2.0 / math.Sqrt(1024)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("mean %g want 0", mean)
	}
	if math.Abs(stdev-wantStd) > 0.01 {
		t.Fatalf("stdev %g want %g", stdev, wantStd)
	}
}

// TestCountingBatchAndConcurrency checks the atomic counter counts batch
// points and parallel point evaluations without loss.
func TestCountingBatchAndConcurrency(t *testing.T) {
	inner := &Func{Label: "c", Params: 1, F: func(p []float64) (float64, error) { return 0, nil }}
	ce := NewCounting(inner)
	if _, err := ce.EvaluateBatch(context.Background(), testPoints(17)); err != nil {
		t.Fatal(err)
	}
	if ce.Count() != 17 {
		t.Fatalf("batch count %d want 17", ce.Count())
	}
	ce.Reset()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if _, err := ce.Evaluate([]float64{0}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ce.Count() != 16*500 {
		t.Fatalf("concurrent count %d want %d", ce.Count(), 16*500)
	}
}
