package interp

import (
	"math"
	"math/rand"
	"testing"
)

// randomPoints draws n points of the given arity, roughly half inside the
// per-axis ranges and the rest beyond the hull on both sides, so batch tests
// exercise the clamp path too.
func randomPoints(rng *rand.Rand, n, arity int, lo, hi []float64) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, arity)
		for k := 0; k < arity; k++ {
			span := hi[k] - lo[k]
			p[k] = lo[k] - 0.5*span + 2*span*rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// TestClampToHull: queries beyond an axis range return exactly the value at
// the nearest hull point — no extrapolation — for Spline, Bicubic, and
// NDSpline.
func TestClampToHull(t *testing.T) {
	xs := knots(0, 2, 9)
	ys := make([]float64, len(xs))
	rng := rand.New(rand.NewSource(11))
	for i := range ys {
		ys[i] = rng.NormFloat64()
	}
	sp, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sp.At(-5), sp.At(0); got != want {
		t.Fatalf("At(-5)=%g, want hull value %g", got, want)
	}
	if got, want := sp.At(99), sp.At(2); got != want {
		t.Fatalf("At(99)=%g, want hull value %g", got, want)
	}
	if got, want := sp.At(-5), ys[0]; got != want {
		t.Fatalf("At(-5)=%g, want first knot value %g", got, want)
	}
	if got, want := sp.At(99), ys[len(ys)-1]; got != want {
		t.Fatalf("At(99)=%g, want last knot value %g", got, want)
	}

	gx, gy := knots(0, 1, 7), knots(-1, 1, 8)
	data := make([]float64, len(gx)*len(gy))
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	bi, err := NewBicubic(gx, gy, data)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := NewNDSpline([][]float64{gx, gy}, data)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][2][]float64{
		{{-3, 0.5}, {0, 0.5}},      // below the x hull
		{{2, 0.5}, {1, 0.5}},       // above the x hull
		{{0.5, -9}, {0.5, -1}},     // below the y hull
		{{0.5, 9}, {0.5, 1}},       // above the y hull
		{{-3, 42}, {0, 1}},         // both out, opposite corners
		{{1e300, -1e300}, {1, -1}}, // extreme magnitudes clamp too
	}
	for _, c := range cases {
		out, hull := c[0], c[1]
		if got, want := bi.At(out[0], out[1]), bi.At(hull[0], hull[1]); got != want {
			t.Fatalf("bicubic At(%v)=%g, want hull value %g", out, got, want)
		}
		if got, want := nd.At(out), nd.At(hull); got != want {
			t.Fatalf("ndspline At(%v)=%g, want hull value %g", out, got, want)
		}
	}
}

// TestBicubicAtPointsMatchesAt: the batch path is bit-identical to pointwise
// At for every worker count, including out-of-hull points.
func TestBicubicAtPointsMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	xs, ys := knots(0, 3, 13), knots(-2, 2, 17)
	data := make([]float64, len(xs)*len(ys))
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	bi, err := NewBicubic(xs, ys, data)
	if err != nil {
		t.Fatal(err)
	}
	pts := randomPoints(rng, 257, 2, []float64{0, -2}, []float64{3, 2})
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = bi.At(p[0], p[1])
	}
	wantG := make([][]float64, len(pts))
	for i, p := range pts {
		dx, dy := bi.Gradient(p[0], p[1])
		wantG[i] = []float64{dx, dy}
	}
	for _, workers := range []int{1, 2, 3, 7, 64} {
		bi.SetWorkers(workers)
		got := make([]float64, len(pts))
		if err := bi.AtPoints(got, pts); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: point %d: batch %g != pointwise %g", workers, i, got[i], want[i])
			}
		}
		gotG := make([][]float64, len(pts))
		for i := range gotG {
			gotG[i] = make([]float64, 2)
		}
		if err := bi.GradientAtPoints(gotG, pts); err != nil {
			t.Fatal(err)
		}
		for i := range gotG {
			for k := 0; k < 2; k++ {
				if math.Float64bits(gotG[i][k]) != math.Float64bits(wantG[i][k]) {
					t.Fatalf("workers=%d: gradient %d[%d]: batch %g != pointwise %g",
						workers, i, k, gotG[i][k], wantG[i][k])
				}
			}
		}
	}
}

// TestNDSplineAtPointsMatchesAt: same contract on a 3-axis grid.
func TestNDSplineAtPointsMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	axes := [][]float64{knots(0, 1, 6), knots(0, 2, 7), knots(-1, 1, 8)}
	data := make([]float64, 6*7*8)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	nd, err := NewNDSpline(axes, data)
	if err != nil {
		t.Fatal(err)
	}
	pts := randomPoints(rng, 129, 3, []float64{0, 0, -1}, []float64{1, 2, 1})
	want := make([]float64, len(pts))
	wantG := make([][]float64, len(pts))
	for i, p := range pts {
		want[i] = nd.At(p)
		wantG[i] = nd.Gradient(p)
	}
	for _, workers := range []int{1, 2, 5, 32} {
		nd.SetWorkers(workers)
		got := make([]float64, len(pts))
		if err := nd.AtPoints(got, pts); err != nil {
			t.Fatal(err)
		}
		gotG := make([][]float64, len(pts))
		for i := range gotG {
			gotG[i] = make([]float64, 3)
		}
		if err := nd.GradientAtPoints(gotG, pts); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: point %d: batch %g != pointwise %g", workers, i, got[i], want[i])
			}
			for k := 0; k < 3; k++ {
				if math.Float64bits(gotG[i][k]) != math.Float64bits(wantG[i][k]) {
					t.Fatalf("workers=%d: gradient %d[%d] mismatch", workers, i, k)
				}
			}
		}
	}
}

// TestBatchValidation: misaligned dst, wrong-arity points, and short
// gradient vectors are rejected before any evaluation.
func TestBatchValidation(t *testing.T) {
	xs := knots(0, 1, 4)
	data := make([]float64, 16)
	bi, err := NewBicubic(xs, xs, data)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := NewNDSpline([][]float64{xs, xs}, data)
	if err != nil {
		t.Fatal(err)
	}
	good := [][]float64{{0.5, 0.5}}
	if err := bi.AtPoints(make([]float64, 2), good); err == nil {
		t.Error("bicubic: want error for dst/pts length mismatch")
	}
	if err := nd.AtPoints(make([]float64, 2), good); err == nil {
		t.Error("ndspline: want error for dst/pts length mismatch")
	}
	bad := [][]float64{{0.5, 0.5, 0.5}}
	if err := bi.AtPoints(make([]float64, 1), bad); err == nil {
		t.Error("bicubic: want error for 3-coordinate point")
	}
	if err := nd.AtPoints(make([]float64, 1), bad); err == nil {
		t.Error("ndspline: want error for 3-coordinate point")
	}
	if err := bi.GradientAtPoints([][]float64{{0}}, good); err == nil {
		t.Error("bicubic: want error for short gradient vector")
	}
	if err := nd.GradientAtPoints([][]float64{{0}}, good); err == nil {
		t.Error("ndspline: want error for short gradient vector")
	}
}

// TestFitChoosesByArity: Fit returns the Bicubic fast path for 2 axes and
// NDSpline otherwise, both satisfying Interpolator.
func TestFitChoosesByArity(t *testing.T) {
	xs := knots(0, 1, 4)
	ip2, err := Fit([][]float64{xs, xs}, make([]float64, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ip2.(*Bicubic); !ok {
		t.Fatalf("2-axis fit is %T, want *Bicubic", ip2)
	}
	ip3, err := Fit([][]float64{xs, xs, xs}, make([]float64, 64))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ip3.(*NDSpline); !ok {
		t.Fatalf("3-axis fit is %T, want *NDSpline", ip3)
	}
	if ip2.Arity() != 2 || ip3.Arity() != 3 {
		t.Fatalf("arity %d/%d, want 2/3", ip2.Arity(), ip3.Arity())
	}
}

// BenchmarkAtPoints measures the vectorized hot path on the paper's 50x100
// grid shape.
func BenchmarkAtPoints(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	xs, ys := knots(0, 1, 50), knots(0, 1, 100)
	data := make([]float64, 50*100)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	bi, err := NewBicubic(xs, ys, data)
	if err != nil {
		b.Fatal(err)
	}
	pts := randomPoints(rng, 4096, 2, []float64{0, 0}, []float64{1, 1})
	dst := make([]float64, len(pts))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bi.AtPoints(dst, pts); err != nil {
			b.Fatal(err)
		}
	}
}
