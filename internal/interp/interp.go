// Package interp implements natural cubic spline interpolation in one, two,
// and N dimensions. OSCAR interpolates reconstructed landscapes so classical
// optimizers can query arbitrary continuous parameter values without running
// circuits (Section 7 of the paper uses rectangular bivariate splines; the
// tensor-product NDSpline extends the same construction to p>1 QAOA
// landscapes with 2p parameter axes).
package interp

import (
	"fmt"
	"math"
	"sort"
)

// Spline is a natural cubic spline through (x_i, y_i) knots.
type Spline struct {
	x, y []float64
	m    []float64 // second derivatives at knots
}

// NewSpline fits a natural cubic spline. xs must be strictly increasing and
// len(xs) == len(ys) >= 2.
func NewSpline(xs, ys []float64) (*Spline, error) {
	n := len(xs)
	if n != len(ys) {
		return nil, fmt.Errorf("interp: %d xs but %d ys", n, len(ys))
	}
	if n < 2 {
		return nil, fmt.Errorf("interp: need >= 2 knots, got %d", n)
	}
	for i := 1; i < n; i++ {
		if !(xs[i] > xs[i-1]) {
			return nil, fmt.Errorf("interp: xs not strictly increasing at %d", i)
		}
	}
	s := &Spline{
		x: append([]float64(nil), xs...),
		y: append([]float64(nil), ys...),
		m: make([]float64, n),
	}
	if n == 2 {
		return s, nil // linear
	}
	// Solve the tridiagonal system for natural boundary conditions.
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	b[0], b[n-1] = 1, 1
	for i := 1; i < n-1; i++ {
		hPrev := xs[i] - xs[i-1]
		hNext := xs[i+1] - xs[i]
		a[i] = hPrev
		b[i] = 2 * (hPrev + hNext)
		c[i] = hNext
		d[i] = 6 * ((ys[i+1]-ys[i])/hNext - (ys[i]-ys[i-1])/hPrev)
	}
	// Thomas algorithm.
	for i := 1; i < n; i++ {
		w := a[i] / b[i-1]
		b[i] -= w * c[i-1]
		d[i] -= w * d[i-1]
	}
	s.m[n-1] = d[n-1] / b[n-1]
	for i := n - 2; i >= 0; i-- {
		s.m[i] = (d[i] - c[i]*s.m[i+1]) / b[i]
	}
	return s, nil
}

// At evaluates the spline, clamping queries outside the knot range to the
// boundary segments (constant extrapolation of position is avoided — the
// boundary cubic is extended).
func (s *Spline) At(x float64) float64 {
	n := len(s.x)
	if n == 2 {
		t := (x - s.x[0]) / (s.x[1] - s.x[0])
		return s.y[0]*(1-t) + s.y[1]*t
	}
	i := sort.SearchFloat64s(s.x, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	lo, hi := i-1, i
	h := s.x[hi] - s.x[lo]
	A := (s.x[hi] - x) / h
	B := (x - s.x[lo]) / h
	return A*s.y[lo] + B*s.y[hi] +
		((A*A*A-A)*s.m[lo]+(B*B*B-B)*s.m[hi])*h*h/6
}

// Bicubic is a tensor-product natural cubic spline on a rectangular grid,
// the "rectangular bivariate spline" of the paper's Section 7.
type Bicubic struct {
	xs, ys []float64 // row coordinates (len rows), column coordinates (len cols)
	rows   []*Spline // one spline per grid row, along the column axis
}

// NewBicubic fits a bicubic interpolant to row-major data of shape
// len(xs) x len(ys). xs are the row-axis coordinates and ys the column-axis
// coordinates, both strictly increasing.
func NewBicubic(xs, ys, data []float64) (*Bicubic, error) {
	rows, cols := len(xs), len(ys)
	if rows*cols != len(data) {
		return nil, fmt.Errorf("interp: %d values for %dx%d grid", len(data), rows, cols)
	}
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("interp: grid must be at least 2x2, got %dx%d", rows, cols)
	}
	b := &Bicubic{
		xs:   append([]float64(nil), xs...),
		ys:   append([]float64(nil), ys...),
		rows: make([]*Spline, rows),
	}
	for r := 0; r < rows; r++ {
		sp, err := NewSpline(ys, data[r*cols:(r+1)*cols])
		if err != nil {
			return nil, err
		}
		b.rows[r] = sp
	}
	return b, nil
}

// At evaluates the surface at (x, y): spline along columns within each row,
// then a spline across rows.
func (b *Bicubic) At(x, y float64) float64 {
	col := make([]float64, len(b.rows))
	for r, sp := range b.rows {
		col[r] = sp.At(y)
	}
	cross, err := NewSpline(b.xs, col)
	if err != nil {
		// Unreachable: xs was validated at construction.
		return math.NaN()
	}
	return cross.At(x)
}

// Gradient estimates the surface gradient at (x, y) by central differences
// with steps proportional to the grid spacing.
func (b *Bicubic) Gradient(x, y float64) (dx, dy float64) {
	hx := (b.xs[len(b.xs)-1] - b.xs[0]) / float64(len(b.xs)-1) / 10
	hy := (b.ys[len(b.ys)-1] - b.ys[0]) / float64(len(b.ys)-1) / 10
	dx = (b.At(x+hx, y) - b.At(x-hx, y)) / (2 * hx)
	dy = (b.At(x, y+hy) - b.At(x, y-hy)) / (2 * hy)
	return dx, dy
}
