// Package interp implements natural cubic spline interpolation in one, two,
// and N dimensions. OSCAR interpolates reconstructed landscapes so classical
// optimizers can query arbitrary continuous parameter values without running
// circuits (Section 7 of the paper uses rectangular bivariate splines; the
// tensor-product NDSpline extends the same construction to p>1 QAOA
// landscapes with 2p parameter axes).
//
// Out-of-domain queries clamp to the grid hull: every coordinate is clamped
// into its axis's knot range before evaluation, so an interpolant never
// extrapolates beyond the data it was fitted to. A query outside the hull
// returns exactly the value at the nearest hull point along each axis — the
// behavior a public query endpoint can expose without serving polynomial
// extrapolation garbage.
//
// All per-axis tridiagonal systems are factorized once at construction
// (the factorization depends only on the knot positions), so queries — and
// in particular the vectorized AtPoints/GradientAtPoints batch read path —
// never re-run the Thomas elimination on the matrix, only the O(n)
// substitution for the right-hand side. The batch methods shard across
// workers via exec.ForRange with the engine's usual determinism convention:
// results are bit-identical for every worker count.
package interp

import (
	"fmt"
	"sort"
)

// tri is the precomputed Thomas-algorithm factorization of the natural-cubic-
// spline tridiagonal system for a fixed knot vector. The elimination of the
// (a, b, c) bands does not depend on the right-hand side, so it runs once at
// construction; fitting values against the same knots afterwards is two O(n)
// substitution sweeps with zero allocations. The arithmetic — operation by
// operation, in order — matches a from-scratch Thomas solve, so fits through
// a tri are bit-identical to the historical per-query NewSpline path.
type tri struct {
	xs []float64
	c  []float64 // superdiagonal of the original system (nil for 2 knots)
	w  []float64 // forward-elimination multipliers a[i]/b'[i-1]
	b  []float64 // diagonal after forward elimination
}

// newTri factorizes the natural-spline system over xs (len >= 2, strictly
// increasing — validated by the caller). Two knots need no system: the
// segment is linear and fit leaves the second derivatives at zero.
func newTri(xs []float64) *tri {
	n := len(xs)
	t := &tri{xs: xs}
	if n == 2 {
		return t
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	w := make([]float64, n)
	b[0], b[n-1] = 1, 1
	for i := 1; i < n-1; i++ {
		hPrev := xs[i] - xs[i-1]
		hNext := xs[i+1] - xs[i]
		a[i] = hPrev
		b[i] = 2 * (hPrev + hNext)
		c[i] = hNext
	}
	for i := 1; i < n; i++ {
		w[i] = a[i] / b[i-1]
		b[i] -= w[i] * c[i-1]
	}
	t.c, t.w, t.b = c, w, b
	return t
}

// fit computes the natural-spline second derivatives m (len n) for knot
// values ys, using d (len n) as right-hand-side scratch. No allocations.
func (t *tri) fit(ys, m, d []float64) {
	xs := t.xs
	n := len(xs)
	if n == 2 {
		m[0], m[1] = 0, 0
		return
	}
	d[0], d[n-1] = 0, 0
	for i := 1; i < n-1; i++ {
		hPrev := xs[i] - xs[i-1]
		hNext := xs[i+1] - xs[i]
		d[i] = 6 * ((ys[i+1]-ys[i])/hNext - (ys[i]-ys[i-1])/hPrev)
	}
	for i := 1; i < n; i++ {
		d[i] -= t.w[i] * d[i-1]
	}
	m[n-1] = d[n-1] / t.b[n-1]
	for i := n - 2; i >= 0; i-- {
		m[i] = (d[i] - t.c[i]*m[i+1]) / t.b[i]
	}
}

// evalClamped evaluates the natural cubic spline with knots xs, values ys,
// and second derivatives m at x, clamping x into [xs[0], xs[n-1]] first so
// the interpolant never extrapolates beyond the grid hull. Two-knot splines
// keep their dedicated linear form (it is not the same floating-point
// expression as the general segment formula, and callers rely on bit
// stability).
func evalClamped(xs, ys, m []float64, x float64) float64 {
	n := len(xs)
	if x < xs[0] {
		x = xs[0]
	} else if x > xs[n-1] {
		x = xs[n-1]
	}
	if n == 2 {
		t := (x - xs[0]) / (xs[1] - xs[0])
		return ys[0]*(1-t) + ys[1]*t
	}
	i := sort.SearchFloat64s(xs, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	lo, hi := i-1, i
	h := xs[hi] - xs[lo]
	A := (xs[hi] - x) / h
	B := (x - xs[lo]) / h
	return A*ys[lo] + B*ys[hi] +
		((A*A*A-A)*m[lo]+(B*B*B-B)*m[hi])*h*h/6
}

// Spline is a natural cubic spline through (x_i, y_i) knots.
type Spline struct {
	x, y []float64
	m    []float64 // second derivatives at knots
}

// NewSpline fits a natural cubic spline. xs must be strictly increasing and
// len(xs) == len(ys) >= 2.
func NewSpline(xs, ys []float64) (*Spline, error) {
	n := len(xs)
	if n != len(ys) {
		return nil, fmt.Errorf("interp: %d xs but %d ys", n, len(ys))
	}
	if n < 2 {
		return nil, fmt.Errorf("interp: need >= 2 knots, got %d", n)
	}
	for i := 1; i < n; i++ {
		if !(xs[i] > xs[i-1]) {
			return nil, fmt.Errorf("interp: xs not strictly increasing at %d", i)
		}
	}
	s := &Spline{
		x: append([]float64(nil), xs...),
		y: append([]float64(nil), ys...),
		m: make([]float64, n),
	}
	newTri(s.x).fit(s.y, s.m, make([]float64, n))
	return s, nil
}

// At evaluates the spline, clamping queries outside the knot range to the
// hull: At(x) for x beyond the first or last knot returns the boundary knot's
// value, never an extrapolation.
func (s *Spline) At(x float64) float64 {
	return evalClamped(s.x, s.y, s.m, x)
}

// Bicubic is a tensor-product natural cubic spline on a rectangular grid,
// the "rectangular bivariate spline" of the paper's Section 7. Queries
// outside the grid clamp to the hull coordinate-wise. The zero worker budget
// means GOMAXPROCS for the batch methods; see SetWorkers.
type Bicubic struct {
	xs, ys  []float64 // row coordinates (len rows), column coordinates (len cols)
	rows    []*Spline // one spline per grid row, along the column axis
	cross   *tri      // factorized row-axis system, shared by every query
	workers int
}

// NewBicubic fits a bicubic interpolant to row-major data of shape
// len(xs) x len(ys). xs are the row-axis coordinates and ys the column-axis
// coordinates, both strictly increasing.
func NewBicubic(xs, ys, data []float64) (*Bicubic, error) {
	rows, cols := len(xs), len(ys)
	if rows*cols != len(data) {
		return nil, fmt.Errorf("interp: %d values for %dx%d grid", len(data), rows, cols)
	}
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("interp: grid must be at least 2x2, got %dx%d", rows, cols)
	}
	b := &Bicubic{
		xs:   append([]float64(nil), xs...),
		ys:   append([]float64(nil), ys...),
		rows: make([]*Spline, rows),
	}
	for r := 0; r < rows; r++ {
		sp, err := NewSpline(ys, data[r*cols:(r+1)*cols])
		if err != nil {
			return nil, err
		}
		b.rows[r] = sp
	}
	for i := 1; i < rows; i++ {
		if !(xs[i] > xs[i-1]) {
			return nil, fmt.Errorf("interp: xs not strictly increasing at %d", i)
		}
	}
	b.cross = newTri(b.xs)
	return b, nil
}

// bicubicScratch is the per-worker evaluation state of a Bicubic: the
// column-collapse vector plus the cross-spline fit buffers. One scratch
// serves any number of sequential queries with zero allocations.
type bicubicScratch struct {
	col, m, d []float64
}

func (b *Bicubic) newScratch() *bicubicScratch {
	n := len(b.rows)
	return &bicubicScratch{
		col: make([]float64, n),
		m:   make([]float64, n),
		d:   make([]float64, n),
	}
}

// at evaluates the surface at (x, y) using s for scratch: spline along
// columns within each row, then the prefactorized cross spline across rows.
func (b *Bicubic) at(x, y float64, s *bicubicScratch) float64 {
	for r, sp := range b.rows {
		s.col[r] = sp.At(y)
	}
	b.cross.fit(s.col, s.m, s.d)
	return evalClamped(b.xs, s.col, s.m, x)
}

// At evaluates the surface at (x, y), clamping out-of-domain coordinates to
// the grid hull.
func (b *Bicubic) At(x, y float64) float64 {
	return b.at(x, y, b.newScratch())
}

// grad estimates the gradient at (x, y) by central differences with steps
// proportional to the grid spacing, reusing s for every probe. Because
// evaluation clamps to the hull, the estimate degrades gracefully to a
// one-sided difference at the boundary (and to zero outside it).
func (b *Bicubic) grad(x, y float64, s *bicubicScratch) (dx, dy float64) {
	hx := (b.xs[len(b.xs)-1] - b.xs[0]) / float64(len(b.xs)-1) / 10
	hy := (b.ys[len(b.ys)-1] - b.ys[0]) / float64(len(b.ys)-1) / 10
	dx = (b.at(x+hx, y, s) - b.at(x-hx, y, s)) / (2 * hx)
	dy = (b.at(x, y+hy, s) - b.at(x, y-hy, s)) / (2 * hy)
	return dx, dy
}

// Gradient estimates the surface gradient at (x, y) by central differences
// with steps proportional to the grid spacing.
func (b *Bicubic) Gradient(x, y float64) (dx, dy float64) {
	return b.grad(x, y, b.newScratch())
}
