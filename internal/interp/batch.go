package interp

import (
	"fmt"

	"repro/internal/exec"
)

// SetWorkers sets the worker budget for the batch methods (0 = GOMAXPROCS,
// 1 = serial) and returns the receiver for chaining. Results are
// bit-identical for every worker count: points shard contiguously via
// exec.ForRange and each output element depends only on its own input.
func (b *Bicubic) SetWorkers(w int) *Bicubic {
	b.workers = w
	return b
}

// SetWorkers sets the worker budget for the batch methods (0 = GOMAXPROCS,
// 1 = serial) and returns the receiver for chaining; see Bicubic.SetWorkers.
func (s *NDSpline) SetWorkers(w int) *NDSpline {
	s.workers = w
	return s
}

// checkBatch validates one batch request: dst and pts index-aligned, every
// point of the interpolant's arity. Finite-ness is not checked here — NaN
// coordinates propagate NaN values, and serving layers reject them earlier.
func checkBatch(dstLen int, pts [][]float64, arity int) error {
	if dstLen != len(pts) {
		return fmt.Errorf("interp: dst holds %d values but batch has %d points", dstLen, len(pts))
	}
	for i, p := range pts {
		if len(p) != arity {
			return fmt.Errorf("interp: point %d has %d coordinates, want %d", i, len(p), arity)
		}
	}
	return nil
}

// checkGradBatch additionally requires every dst vector to have the
// interpolant's arity.
func checkGradBatch(dst [][]float64, pts [][]float64, arity int) error {
	if err := checkBatch(len(dst), pts, arity); err != nil {
		return err
	}
	for i, g := range dst {
		if len(g) != arity {
			return fmt.Errorf("interp: gradient %d has %d components, want %d", i, len(g), arity)
		}
	}
	return nil
}

// AtPoints evaluates the surface at every pts[i] = (x, y) into dst[i],
// sharded across the worker budget. Each worker reuses one scratch for its
// whole contiguous shard, so the hot path allocates nothing per point, and
// results are bit-identical to calling At point by point — for any worker
// count.
func (b *Bicubic) AtPoints(dst []float64, pts [][]float64) error {
	if err := checkBatch(len(dst), pts, 2); err != nil {
		return err
	}
	exec.ForRange(b.workers, len(pts), func(lo, hi int) {
		s := b.newScratch()
		for i := lo; i < hi; i++ {
			dst[i] = b.at(pts[i][0], pts[i][1], s)
		}
	})
	return nil
}

// GradientAtPoints estimates the gradient at every pts[i] into dst[i] (each
// a caller-allocated 2-vector), under the same sharding and determinism
// contract as AtPoints.
func (b *Bicubic) GradientAtPoints(dst [][]float64, pts [][]float64) error {
	if err := checkGradBatch(dst, pts, 2); err != nil {
		return err
	}
	exec.ForRange(b.workers, len(pts), func(lo, hi int) {
		s := b.newScratch()
		for i := lo; i < hi; i++ {
			dst[i][0], dst[i][1] = b.grad(pts[i][0], pts[i][1], s)
		}
	})
	return nil
}

// AtPoints evaluates the interpolant at every pts[i] into dst[i], sharded
// across the worker budget with per-shard scratch reuse; see
// Bicubic.AtPoints for the determinism and allocation contract.
func (s *NDSpline) AtPoints(dst []float64, pts [][]float64) error {
	if err := checkBatch(len(dst), pts, s.Arity()); err != nil {
		return err
	}
	exec.ForRange(s.workers, len(pts), func(lo, hi int) {
		sc := s.newScratch()
		for i := lo; i < hi; i++ {
			dst[i] = s.at(pts[i], sc)
		}
	})
	return nil
}

// GradientAtPoints estimates the gradient at every pts[i] into dst[i] (each
// a caller-allocated vector of length Arity), under the same sharding and
// determinism contract as AtPoints.
func (s *NDSpline) GradientAtPoints(dst [][]float64, pts [][]float64) error {
	if err := checkGradBatch(dst, pts, s.Arity()); err != nil {
		return err
	}
	exec.ForRange(s.workers, len(pts), func(lo, hi int) {
		sc := s.newScratch()
		for i := lo; i < hi; i++ {
			s.grad(pts[i], dst[i], sc)
		}
	})
	return nil
}
