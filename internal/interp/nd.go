package interp

import (
	"fmt"
	"math"
)

// NDSpline is a tensor-product natural cubic spline on an N-dimensional
// rectangular grid — the ND generalization of Bicubic. Evaluation collapses
// one axis at a time from the last to the first: prefitted splines along the
// last axis reduce the data to an (N-1)-dimensional slab, and each remaining
// axis is collapsed with a freshly fitted cross spline, exactly the
// "column splines, then a row spline" scheme Bicubic uses. On a 2-axis grid
// every operation matches Bicubic step for step, so the two agree
// bit-for-bit; Bicubic remains the 2-D fast path with its (x, y) signature.
type NDSpline struct {
	axes [][]float64
	last []*Spline // one prefit spline per line along the last axis
}

// NewNDSpline fits a tensor-product spline to row-major data (last axis
// fastest) over the given per-axis knot coordinates. Every axis needs at
// least 2 strictly increasing knots and the knot counts must multiply to
// len(data).
func NewNDSpline(axes [][]float64, data []float64) (*NDSpline, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("interp: no axes")
	}
	size := 1
	for _, ax := range axes {
		size *= len(ax)
	}
	if size != len(data) {
		return nil, fmt.Errorf("interp: %d values for a %d-point grid", len(data), size)
	}
	s := &NDSpline{axes: make([][]float64, len(axes))}
	for k, ax := range axes {
		s.axes[k] = append([]float64(nil), ax...)
	}
	d := len(axes[len(axes)-1])
	lines := size / d
	s.last = make([]*Spline, lines)
	for l := 0; l < lines; l++ {
		sp, err := NewSpline(s.axes[len(axes)-1], data[l*d:(l+1)*d])
		if err != nil {
			return nil, err
		}
		s.last[l] = sp
	}
	// Validate the remaining axes eagerly so At never fails: fitting a
	// cross spline over constant zeros exercises the same knot checks.
	zero := make([]float64, 0)
	for k := 0; k < len(axes)-1; k++ {
		if cap(zero) < len(axes[k]) {
			zero = make([]float64, len(axes[k]))
		}
		if _, err := NewSpline(s.axes[k], zero[:len(axes[k])]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Arity reports the number of parameter axes.
func (s *NDSpline) Arity() int { return len(s.axes) }

// At evaluates the interpolant at an N-vector p (len(p) == Arity), clamping
// out-of-range coordinates to the boundary segments like Spline.At.
func (s *NDSpline) At(p []float64) float64 {
	k := len(s.axes)
	cur := make([]float64, len(s.last))
	for l, sp := range s.last {
		cur[l] = sp.At(p[k-1])
	}
	for ax := k - 2; ax >= 0; ax-- {
		d := len(s.axes[ax])
		lines := len(cur) / d
		for l := 0; l < lines; l++ {
			cross, err := NewSpline(s.axes[ax], cur[l*d:(l+1)*d])
			if err != nil {
				// Unreachable: axes were validated at construction.
				return math.NaN()
			}
			cur[l] = cross.At(p[ax])
		}
		cur = cur[:lines]
	}
	return cur[0]
}

// Gradient estimates the gradient at p by central differences with steps
// proportional to each axis's grid spacing — the same step rule as
// Bicubic.Gradient, so the two agree exactly on 2-axis grids.
func (s *NDSpline) Gradient(p []float64) []float64 {
	g := make([]float64, len(s.axes))
	pp := append([]float64(nil), p...)
	for k, ax := range s.axes {
		h := (ax[len(ax)-1] - ax[0]) / float64(len(ax)-1) / 10
		pp[k] = p[k] + h
		hi := s.At(pp)
		pp[k] = p[k] - h
		lo := s.At(pp)
		pp[k] = p[k]
		g[k] = (hi - lo) / (2 * h)
	}
	return g
}

// AtPoint evaluates at a parameter vector; it is At under the name the
// oscar.Interpolator interface uses.
func (s *NDSpline) AtPoint(p []float64) float64 { return s.At(p) }

// GradientAt is Gradient under the oscar.Interpolator interface name.
func (s *NDSpline) GradientAt(p []float64) []float64 { return s.Gradient(p) }

// Arity reports the number of parameter axes (always 2), making Bicubic
// satisfy the oscar.Interpolator interface alongside NDSpline.
func (b *Bicubic) Arity() int { return 2 }

// AtPoint evaluates the surface at p = (x, y).
func (b *Bicubic) AtPoint(p []float64) float64 { return b.At(p[0], p[1]) }

// GradientAt estimates the gradient at p = (x, y).
func (b *Bicubic) GradientAt(p []float64) []float64 {
	dx, dy := b.Gradient(p[0], p[1])
	return []float64{dx, dy}
}
