package interp

import "fmt"

// NDSpline is a tensor-product natural cubic spline on an N-dimensional
// rectangular grid — the ND generalization of Bicubic. Evaluation collapses
// one axis at a time from the last to the first: prefitted splines along the
// last axis reduce the data to an (N-1)-dimensional slab, and each remaining
// axis is collapsed with a cross spline fitted through that axis's
// prefactorized tridiagonal system, exactly the "column splines, then a row
// spline" scheme Bicubic uses. On a 2-axis grid every operation matches
// Bicubic step for step, so the two agree bit-for-bit; Bicubic remains the
// 2-D fast path with its (x, y) signature. Queries outside the grid clamp to
// the hull coordinate-wise.
type NDSpline struct {
	axes    [][]float64
	last    []*Spline // one prefit spline per line along the last axis
	cross   []*tri    // factorized per-axis systems for axes 0..k-2
	maxN    int       // largest cross-axis knot count (scratch sizing)
	workers int
}

// NewNDSpline fits a tensor-product spline to row-major data (last axis
// fastest) over the given per-axis knot coordinates. Every axis needs at
// least 2 strictly increasing knots and the knot counts must multiply to
// len(data).
func NewNDSpline(axes [][]float64, data []float64) (*NDSpline, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("interp: no axes")
	}
	size := 1
	for _, ax := range axes {
		size *= len(ax)
	}
	if size != len(data) {
		return nil, fmt.Errorf("interp: %d values for a %d-point grid", len(data), size)
	}
	s := &NDSpline{axes: make([][]float64, len(axes))}
	for k, ax := range axes {
		s.axes[k] = append([]float64(nil), ax...)
	}
	d := len(axes[len(axes)-1])
	lines := size / d
	s.last = make([]*Spline, lines)
	for l := 0; l < lines; l++ {
		sp, err := NewSpline(s.axes[len(axes)-1], data[l*d:(l+1)*d])
		if err != nil {
			return nil, err
		}
		s.last[l] = sp
	}
	// Validate and factorize the remaining axes eagerly so at never fails.
	s.cross = make([]*tri, len(axes)-1)
	for k := 0; k < len(axes)-1; k++ {
		ax := s.axes[k]
		if len(ax) < 2 {
			return nil, fmt.Errorf("interp: need >= 2 knots, got %d", len(ax))
		}
		for i := 1; i < len(ax); i++ {
			if !(ax[i] > ax[i-1]) {
				return nil, fmt.Errorf("interp: xs not strictly increasing at %d", i)
			}
		}
		s.cross[k] = newTri(ax)
		if len(ax) > s.maxN {
			s.maxN = len(ax)
		}
	}
	return s, nil
}

// Arity reports the number of parameter axes.
func (s *NDSpline) Arity() int { return len(s.axes) }

// ndScratch is the per-worker evaluation state of an NDSpline: the axis
// collapse vector, cross-fit buffers, and a probe vector for gradients. One
// scratch serves any number of sequential queries with zero allocations.
type ndScratch struct {
	cur, m, d, pp []float64
}

func (s *NDSpline) newScratch() *ndScratch {
	return &ndScratch{
		cur: make([]float64, len(s.last)),
		m:   make([]float64, s.maxN),
		d:   make([]float64, s.maxN),
		pp:  make([]float64, len(s.axes)),
	}
}

// at evaluates the interpolant at p using sc for scratch.
func (s *NDSpline) at(p []float64, sc *ndScratch) float64 {
	k := len(s.axes)
	cur := sc.cur[:len(s.last)]
	for l, sp := range s.last {
		cur[l] = sp.At(p[k-1])
	}
	for ax := k - 2; ax >= 0; ax-- {
		d := len(s.axes[ax])
		lines := len(cur) / d
		for l := 0; l < lines; l++ {
			line := cur[l*d : (l+1)*d]
			s.cross[ax].fit(line, sc.m, sc.d)
			cur[l] = evalClamped(s.axes[ax], line, sc.m, p[ax])
		}
		cur = cur[:lines]
	}
	return cur[0]
}

// At evaluates the interpolant at an N-vector p (len(p) == Arity), clamping
// out-of-range coordinates to the grid hull like Spline.At.
func (s *NDSpline) At(p []float64) float64 {
	return s.at(p, s.newScratch())
}

// grad estimates the gradient at p into g, reusing sc for every probe.
func (s *NDSpline) grad(p, g []float64, sc *ndScratch) {
	pp := sc.pp
	copy(pp, p)
	for k, ax := range s.axes {
		h := (ax[len(ax)-1] - ax[0]) / float64(len(ax)-1) / 10
		pp[k] = p[k] + h
		hi := s.at(pp, sc)
		pp[k] = p[k] - h
		lo := s.at(pp, sc)
		pp[k] = p[k]
		g[k] = (hi - lo) / (2 * h)
	}
}

// Gradient estimates the gradient at p by central differences with steps
// proportional to each axis's grid spacing — the same step rule as
// Bicubic.Gradient, so the two agree exactly on 2-axis grids. Near the hull
// boundary the clamped probes degrade the estimate to a one-sided
// difference; outside the hull it is zero along the clamped axes.
func (s *NDSpline) Gradient(p []float64) []float64 {
	g := make([]float64, len(s.axes))
	s.grad(p, g, s.newScratch())
	return g
}

// AtPoint evaluates at a parameter vector; it is At under the name the
// Interpolator interface uses.
func (s *NDSpline) AtPoint(p []float64) float64 { return s.At(p) }

// GradientAt is Gradient under the Interpolator interface name.
func (s *NDSpline) GradientAt(p []float64) []float64 { return s.Gradient(p) }

// Arity reports the number of parameter axes (always 2), making Bicubic
// satisfy the Interpolator interface alongside NDSpline.
func (b *Bicubic) Arity() int { return 2 }

// AtPoint evaluates the surface at p = (x, y).
func (b *Bicubic) AtPoint(p []float64) float64 { return b.At(p[0], p[1]) }

// GradientAt estimates the gradient at p = (x, y).
func (b *Bicubic) GradientAt(p []float64) []float64 {
	dx, dy := b.Gradient(p[0], p[1])
	return []float64{dx, dy}
}

// Interpolator is a continuously queryable surrogate of a fitted landscape,
// independent of its dimensionality. Bicubic (2-D fast path) and NDSpline
// (any arity) both satisfy it; Fit picks between them by axis count.
// Out-of-domain queries clamp to the grid hull on every method.
type Interpolator interface {
	// Arity reports the number of parameter axes.
	Arity() int
	// AtPoint evaluates the surrogate at a parameter vector of length
	// Arity (out-of-range coordinates clamp to the grid hull).
	AtPoint(p []float64) float64
	// GradientAt estimates the gradient at p by central differences with
	// grid-spacing-proportional steps.
	GradientAt(p []float64) []float64
	// AtPoints evaluates the surrogate at every pts[i] into dst[i] —
	// len(dst) == len(pts), every point of length Arity — sharded across
	// the worker budget, bit-identically for every worker count, with no
	// per-point allocations.
	AtPoints(dst []float64, pts [][]float64) error
	// GradientAtPoints estimates the gradient at every pts[i] into dst[i]
	// (each dst[i] a caller-allocated vector of length Arity), under the
	// same sharding and determinism contract as AtPoints.
	GradientAtPoints(dst [][]float64, pts [][]float64) error
}

// Fit fits the canonical surrogate for an axis count: the paper's
// rectangular bivariate spline (Bicubic) for 2 axes — the historical fast
// path — and the tensor-product NDSpline for any other arity. data is
// row-major with the last axis fastest, matching landscape.Grid's layout.
func Fit(axes [][]float64, data []float64) (Interpolator, error) {
	if len(axes) == 2 {
		return NewBicubic(axes[0], axes[1], data)
	}
	return NewNDSpline(axes, data)
}
