package interp

import (
	"math"
	"math/rand"
	"testing"
)

func knots(lo, hi float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return xs
}

// TestNDSplineMatchesSpline1D: a 1-axis NDSpline is exactly the 1-D Spline.
func TestNDSplineMatchesSpline1D(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	xs := knots(-1, 2, 17)
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = rng.NormFloat64()
	}
	sp, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := NewNDSpline([][]float64{xs}, ys)
	if err != nil {
		t.Fatal(err)
	}
	for q := -1.3; q <= 2.3; q += 0.037 {
		a, b := sp.At(q), nd.At([]float64{q})
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("at %g: spline %g != ndspline %g", q, a, b)
		}
	}
}

// TestNDSplineMatchesBicubic2D: on a 2-axis grid NDSpline and Bicubic are
// the same operation sequence, so values and gradients agree bit for bit.
func TestNDSplineMatchesBicubic2D(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	xs := knots(0, 3, 11)
	ys := knots(-2, 2, 14)
	data := make([]float64, len(xs)*len(ys))
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	bi, err := NewBicubic(xs, ys, data)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := NewNDSpline([][]float64{xs, ys}, data)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Arity() != 2 || bi.Arity() != 2 {
		t.Fatalf("arity %d/%d, want 2/2", nd.Arity(), bi.Arity())
	}
	rq := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		x := -0.5 + 4*rq.Float64()
		y := -2.5 + 5*rq.Float64()
		a, b := bi.At(x, y), nd.At([]float64{x, y})
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("at (%g, %g): bicubic %g != ndspline %g", x, y, a, b)
		}
		gx, gy := bi.Gradient(x, y)
		g := nd.Gradient([]float64{x, y})
		if math.Float64bits(gx) != math.Float64bits(g[0]) || math.Float64bits(gy) != math.Float64bits(g[1]) {
			t.Fatalf("gradient at (%g, %g): (%g,%g) != %v", x, y, gx, gy, g)
		}
		// The Interpolator-shaped adapters agree too.
		if bi.AtPoint([]float64{x, y}) != a || nd.AtPoint([]float64{x, y}) != a {
			t.Fatal("AtPoint adapter disagrees with At")
		}
		bg := bi.GradientAt([]float64{x, y})
		if bg[0] != gx || bg[1] != gy {
			t.Fatal("GradientAt adapter disagrees with Gradient")
		}
	}
}

// TestNDSplineReproducesKnots3D: the interpolant passes through every knot
// of a 3-axis grid and recovers a smooth separable function between knots.
func TestNDSplineReproducesKnots3D(t *testing.T) {
	axes := [][]float64{knots(0, 1, 8), knots(0, 2, 9), knots(-1, 1, 10)}
	fn := func(x, y, z float64) float64 {
		return math.Sin(2*x) + math.Cos(y)*z
	}
	data := make([]float64, 8*9*10)
	i := 0
	for _, x := range axes[0] {
		for _, y := range axes[1] {
			for _, z := range axes[2] {
				data[i] = fn(x, y, z)
				i++
			}
		}
	}
	nd, err := NewNDSpline(axes, data)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Arity() != 3 {
		t.Fatalf("arity %d", nd.Arity())
	}
	i = 0
	for _, x := range axes[0] {
		for _, y := range axes[1] {
			for _, z := range axes[2] {
				if got := nd.At([]float64{x, y, z}); math.Abs(got-data[i]) > 1e-10 {
					t.Fatalf("knot (%g,%g,%g): %g, want %g", x, y, z, got, data[i])
				}
				i++
			}
		}
	}
	// Off-knot queries track the smooth function closely.
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 100; trial++ {
		x, y, z := rng.Float64(), 2*rng.Float64(), -1+2*rng.Float64()
		got := nd.At([]float64{x, y, z})
		want := fn(x, y, z)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("(%g,%g,%g): %g vs %g", x, y, z, got, want)
		}
	}
	// Gradient roughly matches the analytic partials mid-grid.
	p := []float64{0.5, 1.0, 0.25}
	g := nd.Gradient(p)
	want := []float64{2 * math.Cos(2*p[0]), -math.Sin(p[1]) * p[2], math.Cos(p[1])}
	for k := range g {
		if math.Abs(g[k]-want[k]) > 0.05 {
			t.Fatalf("gradient[%d] = %g, want ~%g", k, g[k], want[k])
		}
	}
}

func TestNDSplineValidation(t *testing.T) {
	good := knots(0, 1, 4)
	cases := []struct {
		name string
		axes [][]float64
		n    int
	}{
		{"no axes", nil, 0},
		{"size mismatch", [][]float64{good}, 5},
		{"one knot", [][]float64{{0}}, 1},
		{"non-increasing", [][]float64{{0, 1, 1, 2}}, 4},
		{"bad inner axis", [][]float64{{0, 0}, good}, 8},
	}
	for _, c := range cases {
		if _, err := NewNDSpline(c.axes, make([]float64, c.n)); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}
