package interp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSplineInterpolatesKnots(t *testing.T) {
	xs := []float64{0, 1, 2.5, 4, 5}
	ys := []float64{1, -2, 0.5, 3, 2}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := s.At(xs[i]); math.Abs(got-ys[i]) > 1e-10 {
			t.Fatalf("At(%g)=%g want %g", xs[i], got, ys[i])
		}
	}
}

func TestSplineReproducesLinearFunction(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, 5)
	for i, x := range xs {
		ys[i] = 2*x - 1
	}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 4; x += 0.13 {
		if got := s.At(x); math.Abs(got-(2*x-1)) > 1e-9 {
			t.Fatalf("At(%g)=%g want %g", x, got, 2*x-1)
		}
	}
}

func TestSplineApproximatesSmoothFunction(t *testing.T) {
	n := 30
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / float64(n-1) * 2 * math.Pi
		ys[i] = math.Sin(xs[i])
	}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.1; x < 2*math.Pi; x += 0.037 {
		if got := s.At(x); math.Abs(got-math.Sin(x)) > 1e-3 {
			t.Fatalf("At(%g)=%g want %g", x, got, math.Sin(x))
		}
	}
}

func TestSplineTwoKnotsIsLinear(t *testing.T) {
	s, err := NewSpline([]float64{0, 2}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(1); math.Abs(got-3) > 1e-12 {
		t.Fatalf("At(1)=%g want 3", got)
	}
}

func TestSplineValidation(t *testing.T) {
	if _, err := NewSpline([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := NewSpline([]float64{0}, []float64{1}); err == nil {
		t.Error("want error for single knot")
	}
	if _, err := NewSpline([]float64{0, 0, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for non-increasing xs")
	}
}

func TestBicubicInterpolatesGrid(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 0.5, 1, 1.5, 2}
	data := make([]float64, len(xs)*len(ys))
	f := func(x, y float64) float64 { return x*x - 2*y + x*y }
	for i, x := range xs {
		for j, y := range ys {
			data[i*len(ys)+j] = f(x, y)
		}
	}
	b, err := NewBicubic(xs, ys, data)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		for j, y := range ys {
			if got := b.At(x, y); math.Abs(got-data[i*len(ys)+j]) > 1e-9 {
				t.Fatalf("At(%g,%g)=%g want %g", x, y, got, data[i*len(ys)+j])
			}
		}
	}
}

func TestBicubicApproximatesSmoothSurface(t *testing.T) {
	n, m := 25, 30
	xs := make([]float64, n)
	ys := make([]float64, m)
	for i := range xs {
		xs[i] = float64(i) / float64(n-1) * math.Pi
	}
	for j := range ys {
		ys[j] = float64(j) / float64(m-1) * math.Pi
	}
	f := func(x, y float64) float64 { return math.Sin(x) * math.Cos(y) }
	data := make([]float64, n*m)
	for i := range xs {
		for j := range ys {
			data[i*m+j] = f(xs[i], ys[j])
		}
	}
	b, err := NewBicubic(xs, ys, data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 200; trial++ {
		x := rng.Float64() * math.Pi
		y := rng.Float64() * math.Pi
		if got := b.At(x, y); math.Abs(got-f(x, y)) > 2e-3 {
			t.Fatalf("At(%g,%g)=%g want %g", x, y, got, f(x, y))
		}
	}
}

func TestBicubicGradient(t *testing.T) {
	// f = x^2 + 3y on a fine grid: gradient ~ (2x, 3).
	n := 40
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / float64(n-1) * 2
		ys[i] = xs[i]
	}
	data := make([]float64, n*n)
	for i := range xs {
		for j := range ys {
			data[i*n+j] = xs[i]*xs[i] + 3*ys[j]
		}
	}
	b, err := NewBicubic(xs, ys, data)
	if err != nil {
		t.Fatal(err)
	}
	dx, dy := b.Gradient(1, 1)
	if math.Abs(dx-2) > 0.02 || math.Abs(dy-3) > 0.02 {
		t.Fatalf("gradient (%g,%g) want (2,3)", dx, dy)
	}
}

func TestBicubicValidation(t *testing.T) {
	if _, err := NewBicubic([]float64{0, 1}, []float64{0, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for data size mismatch")
	}
	if _, err := NewBicubic([]float64{0}, []float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("want error for 1-row grid")
	}
}
