package noise

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{Ideal(), Fig4(), Fig9(), QPU1(), QPU2(), PerthLike(), LagosLike()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if !Ideal().IsIdeal() {
		t.Error("Ideal() not ideal")
	}
	if Fig4().IsIdeal() {
		t.Error("Fig4() should not be ideal")
	}
	bad := Profile{Name: "bad", P1: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("want error for P1>1")
	}
}

func TestScaled(t *testing.T) {
	p := QPU1()
	s := p.Scaled(3)
	if math.Abs(s.P1-0.003) > 1e-12 || math.Abs(s.P2-0.015) > 1e-12 {
		t.Fatalf("scaled rates %g %g", s.P1, s.P2)
	}
	// Clamping.
	big := Profile{Name: "big", P2: 0.6}.Scaled(2)
	if big.P2 != 1 {
		t.Fatalf("clamped P2 %g", big.P2)
	}
	z := p.Scaled(0)
	if !z.IsIdeal() {
		t.Error("zero scaling should be ideal")
	}
}

func TestDampingFactors(t *testing.T) {
	if d := Damping1Q(0); d != 1 {
		t.Fatalf("Damping1Q(0)=%g", d)
	}
	if d := Damping1Q(0.75); math.Abs(d) > 1e-12 {
		t.Fatalf("Damping1Q(0.75)=%g want 0", d)
	}
	if d := Damping2Q(0.3); math.Abs(d-(1-16*0.3/15)) > 1e-12 {
		t.Fatalf("Damping2Q(0.3)=%g", d)
	}
}

func TestEdgeDampingFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	g, err := graph.Random3Regular(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := EdgeDampingFactors(g, Fig4())
	if len(f) != len(g.Edges) {
		t.Fatalf("%d factors for %d edges", len(f), len(g.Edges))
	}
	for i, v := range f {
		if v <= 0 || v >= 1 {
			t.Fatalf("factor[%d]=%g out of (0,1)", i, v)
		}
	}
	// 3-regular: every edge has the same light cone size, so all factors
	// are equal.
	for i := 1; i < len(f); i++ {
		if math.Abs(f[i]-f[0]) > 1e-15 {
			t.Fatalf("3-regular factors differ: %g vs %g", f[i], f[0])
		}
	}
	// Stronger noise damps more.
	f2 := EdgeDampingFactors(g, Fig9())
	if f2[0] >= f[0] {
		t.Fatalf("Fig9 (p2=0.02) should damp more than Fig4 (p2=0.007): %g vs %g", f2[0], f[0])
	}
	// Ideal profile gives unit factors... modulo readout: Ideal has none.
	fi := EdgeDampingFactors(g, Ideal())
	for _, v := range fi {
		if v != 1 {
			t.Fatalf("ideal factor %g", v)
		}
	}
}

func TestEdgeDampingMonotoneInScale(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	g, _ := graph.Random3Regular(8, rng)
	base := QPU1()
	prev := 1.0
	for _, c := range []float64{1, 2, 3} {
		f := EdgeDampingFactors(g, base.Scaled(c))
		if f[0] >= prev {
			t.Fatalf("damping not monotone at scale %g: %g >= %g", c, f[0], prev)
		}
		prev = f[0]
	}
}
