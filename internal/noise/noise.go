// Package noise defines device noise profiles and the analytic depolarizing
// damping model. Profiles parameterize both the exact density-matrix
// simulator (per-gate Kraus channels) and the fast expectation-damping model
// used with the analytic depth-1 QAOA engine at large qubit counts.
package noise

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Profile describes a device's error rates. The zero value is an ideal
// (noise-free) device.
type Profile struct {
	// Name identifies the device configuration in experiment output.
	Name string
	// P1 and P2 are the depolarizing probabilities applied after every
	// one- and two-qubit gate.
	P1, P2 float64
	// Readout01 is P(read 1 | prepared 0); Readout10 is P(read 0 |
	// prepared 1). Applied per qubit at measurement.
	Readout01, Readout10 float64
}

// Ideal is the noise-free profile.
func Ideal() Profile { return Profile{Name: "ideal"} }

// Fig4 is the depolarizing configuration of Figure 4: 1q error 0.003 and 2q
// error 0.007.
func Fig4() Profile { return Profile{Name: "depol-fig4", P1: 0.003, P2: 0.007} }

// Fig9 is the configuration of Figure 9: 1q error 0.001 and 2q error 0.02.
func Fig9() Profile { return Profile{Name: "depol-fig9", P1: 0.001, P2: 0.02} }

// QPU1 is the first simulated device of Section 5.1: 1q 0.1%, 2q 0.5%.
func QPU1() Profile { return Profile{Name: "qpu1", P1: 0.001, P2: 0.005} }

// QPU2 is the second simulated device of Section 5.1: 1q 0.3%, 2q 0.7%.
func QPU2() Profile { return Profile{Name: "qpu2", P1: 0.003, P2: 0.007} }

// PerthLike is a device profile standing in for IBM Perth (see the
// substitution table in DESIGN.md): comparatively high two-qubit and readout
// error.
func PerthLike() Profile {
	return Profile{Name: "perth-like", P1: 0.0023, P2: 0.0121, Readout01: 0.02, Readout10: 0.035}
}

// LagosLike is a device profile standing in for IBM Lagos: lower error rates
// than PerthLike.
func LagosLike() Profile {
	return Profile{Name: "lagos-like", P1: 0.0011, P2: 0.0078, Readout01: 0.012, Readout10: 0.021}
}

// IsIdeal reports whether the profile applies no noise at all.
func (p Profile) IsIdeal() bool {
	return p.P1 == 0 && p.P2 == 0 && p.Readout01 == 0 && p.Readout10 == 0
}

// Validate checks the rates are probabilities.
func (p Profile) Validate() error {
	for _, v := range []float64{p.P1, p.P2, p.Readout01, p.Readout10} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("noise: rate %g out of [0,1] in profile %q", v, p.Name)
		}
	}
	return nil
}

// Scaled returns the profile with all error rates multiplied by factor,
// clamped to [0,1]. Zero-noise extrapolation evaluates circuits at scaled
// noise levels; on hardware this is done by gate folding, and on a simulator
// by scaling the channel probabilities directly (the two are equivalent for
// depolarizing noise in the weak-noise regime).
func (p Profile) Scaled(factor float64) Profile {
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	return Profile{
		Name:      fmt.Sprintf("%s-x%.3g", p.Name, factor),
		P1:        clamp(p.P1 * factor),
		P2:        clamp(p.P2 * factor),
		Readout01: clamp(p.Readout01 * factor),
		Readout10: clamp(p.Readout10 * factor),
	}
}

// Damping1Q returns the factor by which one depolarizing channel of
// probability p damps a traceless observable supported on the qubit:
// 1 - 4p/3.
func Damping1Q(p float64) float64 { return 1 - 4*p/3 }

// Damping2Q returns the damping factor of the two-qubit depolarizing channel
// for any traceless observable intersecting its support: 1 - 16p/15.
func Damping2Q(p float64) float64 { return 1 - 16*p/15 }

// EdgeDampingFactors computes, for every edge of a depth-1 QAOA circuit on
// g, the multiplicative damping of <Z_u Z_v> under the profile's
// depolarizing noise. The model damps each correlator by the channels in its
// light cone: one two-qubit channel per RZZ gate incident to u or v
// (including the edge itself) and one single-qubit channel per H and RX on u
// and v (four total). Readout error contributes an additional
// (1-p01-p10) factor per endpoint, the standard symmetric-confusion damping
// of a Z expectation.
func EdgeDampingFactors(g *graph.Graph, p Profile) []float64 {
	deg := g.Degree()
	d1 := Damping1Q(p.P1)
	d2 := Damping2Q(p.P2)
	ro := 1 - p.Readout01 - p.Readout10
	if ro < 0 {
		ro = 0
	}
	out := make([]float64, len(g.Edges))
	for i, e := range g.Edges {
		n2 := deg[e.U] + deg[e.V] - 1
		f := math.Pow(d2, float64(n2)) * math.Pow(d1, 4)
		f *= ro * ro
		out[i] = f
	}
	return out
}
