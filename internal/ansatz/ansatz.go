// Package ansatz builds the parameterized circuits evaluated in the paper:
// QAOA, the hardware-efficient Two-local ansatz, and a UCCSD-style
// excitation ansatz for molecules. Every ansatz produces a qsim.Circuit with
// parameter-bound gates, so the same circuit object is reused across all
// landscape points.
package ansatz

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/pauli"
	"repro/internal/qsim"
)

// Ansatz is a named parameterized circuit family instance.
type Ansatz struct {
	Name      string
	Circuit   *qsim.Circuit
	NumParams int
}

// QAOA builds the depth-p QAOA circuit for a cut problem on g.
//
// Parameter layout: params[0..p-1] are the mixer angles beta_1..beta_p and
// params[p..2p-1] are the cost angles gamma_1..gamma_p, matching the (beta,
// gamma) grids of Table 1. Layer l applies exp(-i gamma_l H_ZZ) via
// RZZ(gamma_l * w_e) per edge, then exp(-i beta_l X) per qubit via
// RX(2 beta_l).
//
// Each cost layer is emitted as one adjacent run of RZZ gates bound to the
// same gamma — exactly the shape Circuit.FuseDiagonals collapses into a
// single phase-table gate. The simulator backends fuse automatically; use
// QAOAFused to hand other consumers a pre-fused circuit.
func QAOA(g *graph.Graph, p int) (*Ansatz, error) {
	if g == nil || g.N < 2 {
		return nil, fmt.Errorf("ansatz: invalid graph")
	}
	if p < 1 {
		return nil, fmt.Errorf("ansatz: QAOA depth %d < 1", p)
	}
	c := qsim.NewCircuit(g.N)
	for q := 0; q < g.N; q++ {
		c.H(q)
	}
	for l := 0; l < p; l++ {
		gammaIdx := p + l
		betaIdx := l
		for _, e := range g.Edges {
			c.RZZP(e.U, e.V, gammaIdx, e.Weight)
		}
		for q := 0; q < g.N; q++ {
			c.RXP(q, betaIdx, 2)
		}
	}
	return &Ansatz{
		Name:      fmt.Sprintf("qaoa-p%d", p),
		Circuit:   c,
		NumParams: 2 * p,
	}, nil
}

// QAOAFused builds the depth-p QAOA circuit with its cost layers already
// collapsed into phase-table gates: one O(2^n) diagonal pass per layer
// instead of one RZZ kernel sweep per edge, with all p layers sharing one
// interned table. The parameter layout is identical to QAOA.
func QAOAFused(g *graph.Graph, p int) (*Ansatz, error) {
	a, err := QAOA(g, p)
	if err != nil {
		return nil, err
	}
	return &Ansatz{
		Name:      fmt.Sprintf("qaoa-fused-p%d", p),
		Circuit:   a.Circuit.FuseDiagonals(),
		NumParams: a.NumParams,
	}, nil
}

// QAOAGridAxes returns the paper's Table 1 parameter ranges for depth-p
// QAOA: beta in [-pi/4, pi/4] and gamma in [-pi/2, pi/2] for p=1, halved for
// p=2 (the ranges shrink with depth because of the landscape's periodicity).
func QAOAGridAxes(p int) (betaMin, betaMax, gammaMin, gammaMax float64) {
	scale := 1.0
	if p >= 2 {
		scale = 0.5
	}
	return -math.Pi / 4 * scale, math.Pi / 4 * scale,
		-math.Pi / 2 * scale, math.Pi / 2 * scale
}

// TwoLocal builds the hardware-efficient Two-local ansatz: alternating RY
// rotation layers and CZ ring entanglement, with reps entangling blocks.
// NumParams = n*(reps+1). reps may be 0 (a single rotation layer), which is
// how the paper reaches 6 parameters at n=6.
func TwoLocal(n, reps int) (*Ansatz, error) {
	if n < 1 {
		return nil, fmt.Errorf("ansatz: invalid qubit count %d", n)
	}
	if reps < 0 {
		return nil, fmt.Errorf("ansatz: negative reps %d", reps)
	}
	c := qsim.NewCircuit(n)
	param := 0
	for q := 0; q < n; q++ {
		c.RYP(q, param, 1)
		param++
	}
	for r := 0; r < reps; r++ {
		if n > 1 {
			for q := 0; q+1 < n; q++ {
				c.CZ(q, q+1)
			}
			if n > 2 {
				c.CZ(n-1, 0)
			}
		}
		for q := 0; q < n; q++ {
			c.RYP(q, param, 1)
			param++
		}
	}
	return &Ansatz{
		Name:      fmt.Sprintf("two-local-n%d-r%d", n, reps),
		Circuit:   c,
		NumParams: param,
	}, nil
}

// UCCSDH2 builds the 3-parameter UCCSD-style ansatz for the 2-qubit H2
// Hamiltonian: Hartree-Fock preparation (|01>) followed by two single
// excitations and one double excitation implemented as Pauli rotations.
func UCCSDH2() (*Ansatz, error) {
	c := qsim.NewCircuit(2)
	c.X(1) // Hartree-Fock reference (|q1=1> minimizes the diagonal part)
	// Single excitations: exp(-i theta/2 Y_q) style rotations per qubit.
	c.PauliRotP(pauli.MustString("YI"), 0, 1)
	c.PauliRotP(pauli.MustString("IY"), 1, 1)
	// Double excitation: exp(-i theta/2 XY) entangling rotation.
	c.PauliRotP(pauli.MustString("XY"), 2, 1)
	return &Ansatz{Name: "uccsd-h2", Circuit: c, NumParams: 3}, nil
}

// UCCSDLiH builds the 8-parameter UCCSD-style ansatz for the 4-qubit LiH
// Hamiltonian: Hartree-Fock preparation, four single excitations, and four
// double excitations as weight-2/weight-4 Pauli rotations.
func UCCSDLiH() (*Ansatz, error) {
	c := qsim.NewCircuit(4)
	c.X(1).X(3) // Hartree-Fock reference (qubits with positive Z coefficients)
	singles := []string{"YIII", "IYII", "IIYI", "IIIY"}
	for i, s := range singles {
		c.PauliRotP(pauli.MustString(s), i, 1)
	}
	doubles := []string{"XYII", "IIXY", "YXXX", "XXYX"}
	for i, s := range doubles {
		c.PauliRotP(pauli.MustString(s), 4+i, 1)
	}
	return &Ansatz{Name: "uccsd-lih", Circuit: c, NumParams: 8}, nil
}
