package ansatz

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/problem"
	"repro/internal/qsim"
)

func TestQAOAStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g, err := graph.Random3Regular(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 3; p++ {
		a, err := QAOA(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumParams != 2*p {
			t.Fatalf("p=%d: NumParams=%d", p, a.NumParams)
		}
		if a.Circuit.CountKind(qsim.GateH) != 8 {
			t.Fatalf("p=%d: H count %d", p, a.Circuit.CountKind(qsim.GateH))
		}
		if a.Circuit.CountKind(qsim.GateRZZ) != p*len(g.Edges) {
			t.Fatalf("p=%d: RZZ count %d", p, a.Circuit.CountKind(qsim.GateRZZ))
		}
		if a.Circuit.CountKind(qsim.GateRX) != p*8 {
			t.Fatalf("p=%d: RX count %d", p, a.Circuit.CountKind(qsim.GateRX))
		}
	}
	if _, err := QAOA(nil, 1); err == nil {
		t.Error("want error for nil graph")
	}
	if _, err := QAOA(g, 0); err == nil {
		t.Error("want error for p=0")
	}
}

func TestQAOAGridAxes(t *testing.T) {
	bMin, bMax, gMin, gMax := QAOAGridAxes(1)
	if bMin != -math.Pi/4 || bMax != math.Pi/4 || gMin != -math.Pi/2 || gMax != math.Pi/2 {
		t.Fatalf("p=1 axes wrong: %g %g %g %g", bMin, bMax, gMin, gMax)
	}
	bMin2, bMax2, _, _ := QAOAGridAxes(2)
	if bMin2 != -math.Pi/8 || bMax2 != math.Pi/8 {
		t.Fatalf("p=2 beta range wrong: %g %g", bMin2, bMax2)
	}
}

func TestQAOAAtOriginIsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	g, _ := graph.Random3Regular(6, rng)
	a, _ := QAOA(g, 1)
	s, err := qsim.Run(a.Circuit, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 64
	for i, p := range s.Probabilities() {
		if math.Abs(p-want) > 1e-12 {
			t.Fatalf("prob[%d]=%g want uniform %g", i, p, want)
		}
	}
}

func TestTwoLocalParamCounts(t *testing.T) {
	cases := []struct{ n, reps, want int }{
		{4, 1, 8}, // paper: 8 params at n=4
		{6, 0, 6}, // paper: 6 params at n=6
		{3, 2, 9},
	}
	for _, tc := range cases {
		a, err := TwoLocal(tc.n, tc.reps)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumParams != tc.want {
			t.Fatalf("n=%d reps=%d: params %d want %d", tc.n, tc.reps, a.NumParams, tc.want)
		}
		if a.Circuit.NumParams() != tc.want {
			t.Fatalf("circuit params %d want %d", a.Circuit.NumParams(), tc.want)
		}
	}
	if _, err := TwoLocal(0, 1); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := TwoLocal(4, -1); err == nil {
		t.Error("want error for negative reps")
	}
}

func TestTwoLocalExpressibility(t *testing.T) {
	// RY(pi) on every qubit flips |0000> to |1111>.
	a, _ := TwoLocal(4, 0)
	params := []float64{math.Pi, math.Pi, math.Pi, math.Pi}
	s, err := qsim.Run(a.Circuit, params)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Probabilities()
	if math.Abs(p[15]-1) > 1e-9 {
		t.Fatalf("P(1111)=%g", p[15])
	}
}

func TestUCCSDH2ReachesGroundState(t *testing.T) {
	a, err := UCCSDH2()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumParams != 3 {
		t.Fatalf("params %d", a.NumParams)
	}
	h2 := problem.H2()
	// Sweep the double-excitation angle with singles at zero: the block
	// containing the HF state must reach the exact ground energy
	// -1.857275 Ha at the optimal rotation.
	best := math.Inf(1)
	for k := 0; k <= 400; k++ {
		theta := -math.Pi + 2*math.Pi*float64(k)/400
		s, err := qsim.Run(a.Circuit, []float64{0, 0, theta})
		if err != nil {
			t.Fatal(err)
		}
		e, err := s.Expectation(h2.Hamiltonian)
		if err != nil {
			t.Fatal(err)
		}
		if e < best {
			best = e
		}
	}
	if best > -1.8570 {
		t.Fatalf("best energy %g, want < -1.8570 (exact -1.857275)", best)
	}
}

func TestUCCSDLiHStructure(t *testing.T) {
	a, err := UCCSDLiH()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumParams != 8 {
		t.Fatalf("params %d want 8", a.NumParams)
	}
	// HF reference: at zero parameters the energy must equal the diagonal
	// energy of the |q0=1,q2=1> state.
	lih := problem.LiH()
	s, err := qsim.Run(a.Circuit, make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Expectation(lih.Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(e) || e > -7 {
		t.Fatalf("HF energy %g not LiH-scale", e)
	}
}

func TestQAOAFusedMatchesQAOA(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g, err := graph.Random3Regular(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2} {
		plain, err := QAOA(g, p)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := QAOAFused(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if fused.NumParams != plain.NumParams {
			t.Fatalf("p=%d: fused NumParams %d, plain %d", p, fused.NumParams, plain.NumParams)
		}
		// Each cost layer (|E| two-qubit RZZ gates) becomes one table gate.
		if got := fused.Circuit.TwoQubitCount(); got != 0 {
			t.Fatalf("p=%d: fused TwoQubitCount %d, want 0", p, got)
		}
		wantGates := g.N + p*(1+g.N)
		if got := len(fused.Circuit.Gates()); got != wantGates {
			t.Fatalf("p=%d: fused gate count %d, want %d", p, got, wantGates)
		}
		params := make([]float64, 2*p)
		for i := range params {
			params[i] = (rng.Float64() - 0.5) * math.Pi
		}
		sp, err := qsim.Run(plain.Circuit, params)
		if err != nil {
			t.Fatal(err)
		}
		sf, err := qsim.Run(fused.Circuit, params)
		if err != nil {
			t.Fatal(err)
		}
		for b, want := range sp.Amplitudes() {
			got := sf.Amplitudes()[b]
			d := got - want
			if math.Hypot(real(d), imag(d)) > 1e-12 {
				t.Fatalf("p=%d: amp[%d] fused %v, plain %v", p, b, got, want)
			}
		}
	}
}
