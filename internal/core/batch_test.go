package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/backend"
	"repro/internal/exec"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/problem"
)

func analyticEvaluator(t *testing.T) (*landscape.Grid, *backend.AnalyticQAOA) {
	t.Helper()
	rng := rand.New(rand.NewSource(404))
	p, err := problem.Random3RegularMaxCut(12, rng)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := backend.NewAnalyticQAOA(p, noise.Profile{Name: "d", P1: 0.001, P2: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	g, err := landscape.NewGrid(
		landscape.Axis{Name: "beta", Min: -0.8, Max: 0.8, N: 24},
		landscape.Axis{Name: "gamma", Min: -1.6, Max: 1.6, N: 48},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g, ev
}

// TestReconstructBatchBitMatchesLegacy is the acceptance equivalence: for a
// fixed seed the batch path (any worker count, native batch evaluator, with
// or without cache) reproduces the legacy point-at-a-time path bit-for-bit.
func TestReconstructBatchBitMatchesLegacy(t *testing.T) {
	g, ev := analyticEvaluator(t)
	opt := Options{SamplingFraction: 0.1, Seed: 42, Workers: 1}
	ref, refStats, err := Reconstruct(g, ev.Evaluate, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, withCache := range []bool{false, true} {
			o := opt
			o.Workers = workers
			if withCache {
				o.Cache = exec.NewCache(0)
			}
			got, stats, err := ReconstructBatch(context.Background(), g, exec.FromEvaluator(ev), o)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Samples != refStats.Samples {
				t.Fatalf("workers=%d cache=%v: %d samples want %d", workers, withCache, stats.Samples, refStats.Samples)
			}
			for i := range got.Data {
				if got.Data[i] != ref.Data[i] {
					t.Fatalf("workers=%d cache=%v: point %d differs: %g vs %g",
						workers, withCache, i, got.Data[i], ref.Data[i])
				}
			}
		}
	}
}

// TestReconstructCacheSharedAcrossRuns checks a shared cache eliminates
// re-execution when the same points are sampled again.
func TestReconstructCacheSharedAcrossRuns(t *testing.T) {
	g, ev := analyticEvaluator(t)
	cache := exec.NewCache(0)
	counted := backend.NewCounting(ev)
	opt := Options{SamplingFraction: 0.1, Seed: 7, Cache: cache}
	if _, _, err := ReconstructBatch(context.Background(), g, exec.FromEvaluator(counted), opt); err != nil {
		t.Fatal(err)
	}
	first := counted.Count()
	if first == 0 {
		t.Fatal("no executions on first run")
	}
	if _, _, err := ReconstructBatch(context.Background(), g, exec.FromEvaluator(counted), opt); err != nil {
		t.Fatal(err)
	}
	if counted.Count() != first {
		t.Fatalf("second run re-executed: %d -> %d", first, counted.Count())
	}
	if cache.Hits() == 0 {
		t.Fatal("cache recorded no hits")
	}
}

func TestReconstructContextCancellation(t *testing.T) {
	g, _ := analyticEvaluator(t)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, _, err := ReconstructContext(ctx, g, func(p []float64) (float64, error) {
		n++
		if n == 5 {
			cancel()
		}
		return 0, nil
	}, Options{SamplingFraction: 0.5, Seed: 1, Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
