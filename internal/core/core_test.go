package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/backend"
	"repro/internal/cs"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/problem"
)

func qaoaGrid(t *testing.T, nb, ng int) *landscape.Grid {
	t.Helper()
	g, err := landscape.NewGrid(
		landscape.Axis{Name: "beta", Min: -math.Pi / 4, Max: math.Pi / 4, N: nb},
		landscape.Axis{Name: "gamma", Min: -math.Pi / 2, Max: math.Pi / 2, N: ng},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func qaoaEval(t *testing.T, n int, seed int64, prof noise.Profile) landscape.EvalFunc {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p, err := problem.Random3RegularMaxCut(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := backend.NewAnalyticQAOA(p, prof)
	if err != nil {
		t.Fatal(err)
	}
	return ev.Evaluate
}

func TestReconstructQAOALandscape(t *testing.T) {
	grid := qaoaGrid(t, 30, 60)
	eval := qaoaEval(t, 16, 121, noise.Ideal())
	truth, err := landscape.Generate(grid, eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	recon, stats, err := Reconstruct(grid, eval, Options{SamplingFraction: 0.08, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples != int(0.08*30*60) {
		t.Fatalf("samples %d", stats.Samples)
	}
	if stats.Speedup < 12 {
		t.Fatalf("speedup %g", stats.Speedup)
	}
	nrmse, err := landscape.NRMSE(truth.Data, recon.Data)
	if err != nil {
		t.Fatal(err)
	}
	if nrmse > 0.05 {
		t.Fatalf("NRMSE %g too high for 8%% sampling of an ideal p=1 landscape", nrmse)
	}
}

func TestReconstructNoisyLandscapePreservesNoiseShape(t *testing.T) {
	grid := qaoaGrid(t, 24, 48)
	eval := qaoaEval(t, 12, 122, noise.Fig4())
	truth, err := landscape.Generate(grid, eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := Reconstruct(grid, eval, Options{SamplingFraction: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	nrmse, _ := landscape.NRMSE(truth.Data, recon.Data)
	if nrmse > 0.08 {
		t.Fatalf("NRMSE %g", nrmse)
	}
	// The noisy landscape's variance (damped) should be preserved, not
	// inflated back to the ideal value.
	vTruth := landscape.Variance(truth)
	vRecon := landscape.Variance(recon)
	if math.Abs(vTruth-vRecon) > 0.15*vTruth {
		t.Fatalf("variance not preserved: truth %g recon %g", vTruth, vRecon)
	}
}

func TestReconstructValidation(t *testing.T) {
	grid := qaoaGrid(t, 10, 10)
	eval := func(p []float64) (float64, error) { return 0, nil }
	if _, _, err := Reconstruct(grid, eval, Options{SamplingFraction: 0}); err == nil {
		t.Error("want error for zero fraction")
	}
	if _, _, err := Reconstruct(grid, eval, Options{SamplingFraction: 1.2}); err == nil {
		t.Error("want error for >1 fraction")
	}
	if _, _, err := ReconstructFromSamples(grid, nil, nil, Options{}); err == nil {
		t.Error("want error for no samples")
	}
}

// TestReconstructWorkersBitIdentical: the Workers option shards the solver
// without changing a single bit of the reconstruction.
func TestReconstructWorkersBitIdentical(t *testing.T) {
	grid := qaoaGrid(t, 64, 70) // above the solver's 4096-point serial floor
	eval := qaoaEval(t, 12, 33, noise.Ideal())
	serial := Options{SamplingFraction: 0.06, Seed: 9, Workers: 1}
	serial.Solver = cs.DefaultOptions()
	serial.Solver.MaxIter = 50
	serial.Solver.Workers = 1
	want, _, err := Reconstruct(grid, eval, serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		opt := serial
		opt.Workers = workers
		opt.Solver.Workers = 0 // inherit opt.Workers
		got, _, err := Reconstruct(grid, eval, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d: Data[%d]=%v, serial %v", workers, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestSolverOptionsWorkersOnly: picking just a solver worker count must not
// defeat the zero-value-means-DefaultOptions sentinel (continuation and
// debias stay on), and an unset solver inherits the execution workers.
func TestSolverOptionsWorkersOnly(t *testing.T) {
	o := Options{SamplingFraction: 0.05, Workers: 4, Solver: cs.Options{Workers: 1}}
	want := cs.DefaultOptions()
	want.Workers = 1
	got := o.solverOptions()
	if got.Workers != want.Workers || !got.Continuation || !got.Debias ||
		got.MaxIter != want.MaxIter || got.LambdaRel != want.LambdaRel ||
		got.Tol != want.Tol || got.Method != want.Method || got.Warm != nil {
		t.Fatalf("Workers-only Solver resolved to %+v, want DefaultOptions with Workers=1", got)
	}
	inherit := Options{SamplingFraction: 0.05, Workers: 3}
	got = inherit.solverOptions()
	if got.Workers != 3 {
		t.Fatalf("solver Workers = %d, want inherited 3", got.Workers)
	}
	if !got.Continuation || !got.Debias {
		t.Fatal("unset Solver lost the DefaultOptions configuration")
	}
}

// TestReconstructFromSamplesContextCanceled: cancellation reaches the solver
// phase, not just circuit execution.
func TestReconstructFromSamplesContextCanceled(t *testing.T) {
	grid := qaoaGrid(t, 20, 20)
	eval := qaoaEval(t, 12, 34, noise.Ideal())
	idx, err := SampleGrid(grid, 0.2, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, len(idx))
	for j, i := range idx {
		v, err := eval(grid.Point(i))
		if err != nil {
			t.Fatal(err)
		}
		values[j] = v
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = ReconstructFromSamplesContext(ctx, grid, idx, values, Options{SamplingFraction: 0.2, Seed: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReconstructDeterministicGivenSeed(t *testing.T) {
	grid := qaoaGrid(t, 20, 20)
	eval := qaoaEval(t, 8, 123, noise.Ideal())
	r1, s1, err := Reconstruct(grid, eval, Options{SamplingFraction: 0.2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := Reconstruct(grid, eval, Options{SamplingFraction: 0.2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Samples != s2.Samples {
		t.Fatal("sample counts differ")
	}
	for i := range r1.Data {
		if r1.Data[i] != r2.Data[i] {
			t.Fatalf("nondeterministic at %d: %g vs %g", i, r1.Data[i], r2.Data[i])
		}
	}
}

func TestReconstruct4DGrid(t *testing.T) {
	// Depth-2 style 4-axis grid, reconstructed through the concatenation
	// reshape. Use a smooth synthetic separable cost.
	g4, err := landscape.NewGrid(
		landscape.Axis{Name: "b1", Min: -1, Max: 1, N: 8},
		landscape.Axis{Name: "b2", Min: -1, Max: 1, N: 8},
		landscape.Axis{Name: "g1", Min: -1, Max: 1, N: 9},
		landscape.Axis{Name: "g2", Min: -1, Max: 1, N: 9},
	)
	if err != nil {
		t.Fatal(err)
	}
	eval := func(p []float64) (float64, error) {
		return math.Cos(p[0])*math.Cos(p[2]) + 0.5*math.Sin(p[1])*math.Sin(p[3]), nil
	}
	truth, err := landscape.Generate(g4, eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	recon, stats, err := Reconstruct(g4, eval, Options{SamplingFraction: 0.25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if stats.GridSize != 8*8*9*9 {
		t.Fatalf("grid size %d", stats.GridSize)
	}
	nrmse, _ := landscape.NRMSE(truth.Data, recon.Data)
	// The paper observes reduced accuracy for reshaped 4-D landscapes;
	// accept a looser bound but demand real signal recovery.
	if nrmse > 0.3 {
		t.Fatalf("4-D NRMSE %g", nrmse)
	}
}

func TestStratifiedSampling(t *testing.T) {
	grid := qaoaGrid(t, 20, 20)
	eval := qaoaEval(t, 8, 124, noise.Ideal())
	_, stats, err := Reconstruct(grid, eval, Options{SamplingFraction: 0.15, Seed: 3, Stratified: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples == 0 || stats.Samples > 60 {
		t.Fatalf("stratified samples %d", stats.Samples)
	}
}

func TestSampleGrid(t *testing.T) {
	grid := qaoaGrid(t, 10, 10)
	idx, err := SampleGrid(grid, 0.3, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 30 {
		t.Fatalf("%d indices", len(idx))
	}
	if _, err := SampleGrid(grid, 0, 7, false); err == nil {
		t.Error("want error for zero fraction")
	}
}

// TestErrorDecreasesWithSampling reproduces the qualitative Figure 4 trend
// at test scale.
func TestErrorDecreasesWithSampling(t *testing.T) {
	grid := qaoaGrid(t, 25, 50)
	eval := qaoaEval(t, 16, 125, noise.Fig4())
	truth, err := landscape.Generate(grid, eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for _, frac := range []float64{0.03, 0.06, 0.09} {
		recon, _, err := Reconstruct(grid, eval, Options{SamplingFraction: frac, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		e, _ := landscape.NRMSE(truth.Data, recon.Data)
		errs = append(errs, e)
	}
	if !(errs[2] < errs[0]) {
		t.Fatalf("error not decreasing: %v", errs)
	}
}

func TestReconstruct6DGrid(t *testing.T) {
	// Depth-3-style 6-axis grid through the generalized concatenation.
	axes := make([]landscape.Axis, 6)
	for i := range axes {
		axes[i] = landscape.Axis{Name: string(rune('a' + i)), Min: -1, Max: 1, N: 4}
	}
	g6, err := landscape.NewGrid(axes...)
	if err != nil {
		t.Fatal(err)
	}
	eval := func(p []float64) (float64, error) {
		return math.Cos(p[0]+p[3]) + 0.5*math.Sin(p[1]-p[4]) + 0.25*math.Cos(p[2]*p[5]), nil
	}
	truth, err := landscape.Generate(g6, eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	recon, stats, err := Reconstruct(g6, eval, Options{SamplingFraction: 0.35, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if stats.GridSize != 4096 {
		t.Fatalf("grid size %d", stats.GridSize)
	}
	nrmse, _ := landscape.NRMSE(truth.Data, recon.Data)
	if nrmse > 0.4 {
		t.Fatalf("6-D NRMSE %g", nrmse)
	}
}

// TestReconstructOddAxes: the ND redesign lifted the historical even-axes
// restriction — a 3-axis grid reconstructs through a true 3-D DCT solve.
func TestReconstructOddAxes(t *testing.T) {
	g3, err := landscape.NewGrid(
		landscape.Axis{Name: "a", Min: 0, Max: 1, N: 6},
		landscape.Axis{Name: "b", Min: 0, Max: 1, N: 6},
		landscape.Axis{Name: "c", Min: 0, Max: 1, N: 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	eval := func(p []float64) (float64, error) {
		return math.Cos(2*math.Pi*p[0]) + math.Cos(2*math.Pi*p[1])*math.Cos(2*math.Pi*p[2]), nil
	}
	l, st, err := Reconstruct(g3, eval, Options{SamplingFraction: 0.6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Grid.Size(); got != 216 || len(l.Data) != 216 {
		t.Fatalf("3-axis landscape size %d, data %d", got, len(l.Data))
	}
	if st.Samples == 0 {
		t.Fatal("no samples recorded")
	}
}

// TestFullSamplingIsNearExact: measuring every grid point must reproduce the
// landscape almost exactly (the l1 problem becomes fully determined).
func TestFullSamplingIsNearExact(t *testing.T) {
	grid := qaoaGrid(t, 16, 24)
	eval := qaoaEval(t, 10, 321, noise.Ideal())
	truth, err := landscape.Generate(grid, eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := Reconstruct(grid, eval, Options{SamplingFraction: 1.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nr, _ := landscape.NRMSE(truth.Data, recon.Data)
	// The l1 penalty leaves a small shrinkage bias even at full sampling;
	// the debias pass removes most but not all of it.
	if nr > 0.02 {
		t.Fatalf("full sampling NRMSE %g", nr)
	}
}
