package core

import (
	"context"
	"testing"

	"repro/internal/landscape"
)

func incrGrid(t *testing.T) *landscape.Grid {
	t.Helper()
	g, err := landscape.NewGrid(
		landscape.Axis{Name: "b", Min: -1, Max: 1, N: 20},
		landscape.Axis{Name: "g", Min: -2, Max: 2, N: 30},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func incrEval(p []float64) float64 { return p[0]*p[0] - 0.5*p[1] }

// TestIncrementalMatchesOneShot streams samples in three batches with an
// interim solve, and checks the final warm-started solve recovers the same
// landscape (to solver tolerance) as a single cold solve on the full set.
func TestIncrementalMatchesOneShot(t *testing.T) {
	g := incrGrid(t)
	idx, err := SampleGrid(g, 0.4, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, len(idx))
	for i, gi := range idx {
		values[i] = incrEval(g.Point(gi))
	}

	inc, err := NewIncremental(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	third := len(idx) / 3
	if err := inc.Append(idx[:third], values[:third]); err != nil {
		t.Fatal(err)
	}
	if _, st, err := inc.Reconstruct(ctx); err != nil {
		t.Fatal(err)
	} else if st.Samples != third {
		t.Fatalf("interim stats report %d samples, want %d", st.Samples, third)
	}
	if err := inc.Append(idx[third:2*third], values[third:2*third]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := inc.Reconstruct(ctx); err != nil {
		t.Fatal(err)
	}
	if err := inc.Append(idx[2*third:], values[2*third:]); err != nil {
		t.Fatal(err)
	}
	streamed, st, err := inc.Reconstruct(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Solves() != 3 || st.Samples != len(idx) || inc.Samples() != len(idx) {
		t.Fatalf("solves %d samples %d", inc.Solves(), inc.Samples())
	}

	oneShot, _, err := ReconstructFromSamples(g, idx, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nr, err := landscape.NRMSE(oneShot.Data, streamed.Data)
	if err != nil {
		t.Fatal(err)
	}
	if nr > 1e-3 {
		t.Fatalf("streamed reconstruction diverges from one-shot: NRMSE %g", nr)
	}
}

// TestIncrementalDeterministic pins bit-reproducibility: the same append
// and solve sequence yields identical bits.
func TestIncrementalDeterministic(t *testing.T) {
	g := incrGrid(t)
	idx, err := SampleGrid(g, 0.3, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, len(idx))
	for i, gi := range idx {
		values[i] = incrEval(g.Point(gi))
	}
	run := func() []float64 {
		inc, err := NewIncremental(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		half := len(idx) / 2
		if err := inc.Append(idx[:half], values[:half]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := inc.Reconstruct(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := inc.Append(idx[half:], values[half:]); err != nil {
			t.Fatal(err)
		}
		l, _, err := inc.Reconstruct(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return l.Data
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streamed solve not deterministic at %d", i)
		}
	}
}

// TestIncrementalValidation covers append misuse and empty solves.
func TestIncrementalValidation(t *testing.T) {
	g := incrGrid(t)
	inc, err := NewIncremental(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := inc.Reconstruct(context.Background()); err == nil {
		t.Error("want error for solve with no samples")
	}
	if err := inc.Append([]int{1, 2}, []float64{1}); err == nil {
		t.Error("want error for length mismatch")
	}
	if err := inc.Append([]int{-1}, []float64{0}); err == nil {
		t.Error("want error for out-of-range index")
	}
	if err := inc.Append([]int{g.Size()}, []float64{0}); err == nil {
		t.Error("want error for out-of-range index")
	}
	if err := inc.Append([]int{5, 6}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := inc.Append([]int{6}, []float64{3}); err == nil {
		t.Error("want error for duplicate index across appends")
	}
	if err := inc.Append([]int{7, 7}, []float64{1, 1}); err == nil {
		t.Error("want error for duplicate index within an append")
	}
	if inc.Samples() != 2 {
		t.Fatalf("rejected appends mutated state: %d samples", inc.Samples())
	}
	// The ND redesign accepts any axis count, including a 1-axis line cut.
	g1, err := landscape.NewGrid(landscape.Axis{Name: "x", Min: 0, Max: 1, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIncremental(g1, Options{}); err != nil {
		t.Errorf("1-axis grid rejected: %v", err)
	}
}
