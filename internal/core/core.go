// Package core implements OSCAR — compressed-sensing based cost-landscape
// reconstruction — the paper's primary contribution. The workflow has three
// phases (Figure 3):
//
//  1. Parameter sampling: draw a small random subset of grid points.
//  2. Circuit execution: evaluate the cost function at the sampled points
//     (embarrassingly parallel; see package qpu for the multi-QPU fabric).
//  3. Landscape reconstruction: recover the full grid by l1-minimization in
//     the DCT domain (package cs).
//
// Reconstruction is N-dimensional: a depth-p QAOA landscape over 2p parameter
// axes is recovered by a true 2p-dimensional DCT solve (cs.ReconstructND).
// Earlier releases flattened depth-2 grids through the paper's concatenation
// reshape — (b1,b2,g1,g2) treated as a (b1*b2)x(g1*g2) image — which the ND
// solver supersedes: a separable per-axis basis is strictly sparser on
// separable QAOA structure than the concatenated 2-D basis.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/cs"
	"repro/internal/exec"
	"repro/internal/landscape"
	"repro/internal/obs"
)

// Options configures a reconstruction run.
type Options struct {
	// SamplingFraction is the fraction of grid points to execute,
	// e.g. 0.05 for the 20x saving of Figure 4. Required, in (0, 1].
	SamplingFraction float64
	// Seed drives parameter sampling. Runs are deterministic given a seed.
	Seed int64
	// Workers bounds parallel circuit execution (the engine fans batch
	// chunks out to the evaluator's native batch path, e.g. the
	// zero-allocation StateVector simulator) and, unless Solver.Workers is
	// set explicitly, also shards the reconstruction solver
	// (0 = GOMAXPROCS). Sharding the solver is bit-identical to a serial
	// solve for every worker count.
	Workers int
	// Solver configures the compressed-sensing solver; zero value means
	// cs.DefaultOptions.
	Solver cs.Options
	// Stratified switches parameter sampling from uniform-random to
	// jittered stratified sampling (ablation).
	Stratified bool
	// Cache optionally memoizes circuit executions across reconstructions
	// sharing the same deterministic evaluator.
	Cache *exec.Cache
}

// Stats reports what a reconstruction cost and how the solver behaved.
type Stats struct {
	// GridSize is the number of points a full grid search would run.
	GridSize int
	// Samples is the number of circuit evaluations actually executed.
	Samples int
	// Speedup is GridSize/Samples, the paper's headline saving.
	Speedup float64
	// SolverIterations, Residual and Sparsity are solver diagnostics.
	SolverIterations int
	Residual         float64
	Sparsity         int
	// Indices are the sampled flat grid indices (sorted).
	Indices []int
	// Values are the measured costs at Indices.
	Values []float64
}

// sampleIndices draws the phase-1 sampling pattern for a grid. Uniform
// sampling is shape-blind; stratified sampling keeps the seed flat-bucket
// scheme on 1-D/2-D grids (bit-compatible with earlier releases) and uses the
// ND box-splitting sampler on 3+ axes, where flat buckets would stripe along
// the last axis instead of covering the volume.
func sampleIndices(rng *rand.Rand, g *landscape.Grid, m int, stratified bool) ([]int, error) {
	if !stratified {
		return cs.SampleIndices(rng, g.Size(), m)
	}
	dims := g.Dims()
	if len(dims) >= 3 {
		return cs.StratifiedIndicesND(rng, dims, m)
	}
	return cs.StratifiedIndices(rng, g.Size(), m)
}

func (o *Options) solverOptions() cs.Options {
	s := o.Solver.WithDefaults()
	// The reconstruction phase inherits the execution worker budget unless
	// the solver was given its own (Solver.Workers = 1 forces a serial
	// solve under parallel execution).
	if s.Workers == 0 {
		s.Workers = o.Workers
	}
	return s
}

// Reconstruct runs the full OSCAR pipeline against a cost evaluator.
func Reconstruct(g *landscape.Grid, eval landscape.EvalFunc, opt Options) (*landscape.Landscape, *Stats, error) {
	return ReconstructContext(context.Background(), g, eval, opt)
}

// ReconstructContext is Reconstruct with cancellation threaded through the
// circuit-execution phase.
func ReconstructContext(ctx context.Context, g *landscape.Grid, eval landscape.EvalFunc, opt Options) (*landscape.Landscape, *Stats, error) {
	return ReconstructBatch(ctx, g, exec.Lift(eval), opt)
}

// ReconstructBatch runs the OSCAR pipeline with the circuit-execution phase
// submitted as one batch to the execution engine — the entry point that lets
// native batch backends, the memoizing cache, and batch-aware QPU fleets
// carry the embarrassingly-parallel phase 2.
func ReconstructBatch(ctx context.Context, g *landscape.Grid, be exec.BatchEvaluator, opt Options) (*landscape.Landscape, *Stats, error) {
	if opt.SamplingFraction <= 0 || opt.SamplingFraction > 1 {
		return nil, nil, fmt.Errorf("core: sampling fraction %g out of (0,1]", opt.SamplingFraction)
	}
	total := g.Size()
	m := int(opt.SamplingFraction * float64(total))
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	sspan, _ := obs.Start(ctx, "core.sample")
	idx, err := sampleIndices(rng, g, m, opt.Stratified)
	sspan.SetAttr("samples", len(idx))
	sspan.SetAttr("grid_points", total)
	sspan.End()
	if err != nil {
		return nil, nil, err
	}
	en := exec.New(be, exec.Options{Workers: opt.Workers, Cache: opt.Cache})
	values, err := en.EvaluateBatch(ctx, g.Points(idx))
	if err != nil {
		return nil, nil, err
	}
	return ReconstructFromSamplesContext(ctx, g, idx, values, opt)
}

// ReconstructFromSamples runs only the reconstruction phase on
// already-measured values — the entry point used by the multi-QPU executor,
// eager reconstruction, and pre-collected hardware datasets.
func ReconstructFromSamples(g *landscape.Grid, idx []int, values []float64, opt Options) (*landscape.Landscape, *Stats, error) {
	return ReconstructFromSamplesContext(context.Background(), g, idx, values, opt)
}

// ReconstructFromSamplesContext is ReconstructFromSamples with cancellation
// threaded through the solver: a canceled ctx stops FISTA between iterations.
func ReconstructFromSamplesContext(ctx context.Context, g *landscape.Grid, idx []int, values []float64, opt Options) (*landscape.Landscape, *Stats, error) {
	if len(idx) == 0 {
		return nil, nil, errors.New("core: no samples")
	}
	res, err := cs.ReconstructNDContext(ctx, g.Dims(), idx, values, opt.solverOptions())
	if err != nil {
		return nil, nil, err
	}
	l := &landscape.Landscape{Grid: g, Data: res.X}
	st := &Stats{
		GridSize:         g.Size(),
		Samples:          len(idx),
		Speedup:          float64(g.Size()) / float64(len(idx)),
		SolverIterations: res.Iterations,
		Residual:         res.Residual,
		Sparsity:         res.Sparsity,
		Indices:          idx,
		Values:           values,
	}
	return l, st, nil
}

// SampleGrid draws the OSCAR sampling pattern without executing anything —
// used by callers that schedule execution themselves (package qpu).
func SampleGrid(g *landscape.Grid, fraction float64, seed int64, stratified bool) ([]int, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("core: sampling fraction %g out of (0,1]", fraction)
	}
	total := g.Size()
	m := int(fraction * float64(total))
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	return sampleIndices(rng, g, m, stratified)
}
