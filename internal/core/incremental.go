package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cs"
	"repro/internal/landscape"
)

// Incremental accumulates landscape samples as they stream in — batch by
// batch from a device fleet — and re-solves the reconstruction on demand,
// warm-starting every solve after the first from the previous solution's
// DCT coefficients. This is the reconstruction half of eager/streaming
// OSCAR: instead of one cold solve after the last sample lands, the solver
// is re-triggered as coverage grows, and each re-solve starts from an
// iterate that is already close.
//
// Incremental is not safe for concurrent use; the streaming loop that owns
// it appends and solves from one goroutine.
type Incremental struct {
	grid *landscape.Grid
	dims []int
	opt  Options

	idx    []int
	values []float64
	seen   map[int]struct{}

	coeffs []float64 // last solution, the next solve's warm start
	solves int
}

// NewIncremental builds an accumulator for streaming reconstruction on g.
// opt carries the solver configuration and worker budget; its sampling
// fields (SamplingFraction, Seed, Stratified) are unused — the caller
// decides what to sample and appends what was measured.
func NewIncremental(g *landscape.Grid, opt Options) (*Incremental, error) {
	if len(g.Axes) == 0 {
		return nil, errors.New("core: grid has no axes")
	}
	return &Incremental{
		grid: g,
		dims: g.Dims(),
		opt:  opt,
		seen: make(map[int]struct{}),
	}, nil
}

// Append adds measured values at flat grid indices. Indices must be in range
// and never repeat across appends — streamed batches partition the sampled
// set, so a duplicate means the caller double-delivered a batch.
func (inc *Incremental) Append(idx []int, values []float64) error {
	if len(idx) != len(values) {
		return fmt.Errorf("core: %d indices but %d values", len(idx), len(values))
	}
	n := inc.grid.Size()
	// Validate the whole batch — including duplicates within it — before
	// mutating anything, so a rejected append leaves the accumulator
	// untouched.
	batch := make(map[int]struct{}, len(idx))
	for _, i := range idx {
		if i < 0 || i >= n {
			return fmt.Errorf("core: index %d out of range [0,%d)", i, n)
		}
		if _, dup := inc.seen[i]; dup {
			return fmt.Errorf("core: index %d already appended", i)
		}
		if _, dup := batch[i]; dup {
			return fmt.Errorf("core: index %d repeated within the append", i)
		}
		batch[i] = struct{}{}
	}
	for _, i := range idx {
		inc.seen[i] = struct{}{}
	}
	inc.idx = append(inc.idx, idx...)
	inc.values = append(inc.values, values...)
	return nil
}

// Samples returns the number of accumulated measurements.
func (inc *Incremental) Samples() int { return len(inc.idx) }

// Solves returns the number of completed reconstructions.
func (inc *Incremental) Solves() int { return inc.solves }

// Reconstruct solves on everything appended so far. The first solve starts
// cold; later solves warm-start from the previous solution. Stats carries
// the usual solver diagnostics over the current sample set.
func (inc *Incremental) Reconstruct(ctx context.Context) (*landscape.Landscape, *Stats, error) {
	if len(inc.idx) == 0 {
		return nil, nil, errors.New("core: no samples")
	}
	opt := inc.opt.solverOptions()
	opt.Warm = inc.coeffs
	res, err := cs.ReconstructNDContext(ctx, inc.dims, inc.idx, inc.values, opt)
	if err != nil {
		return nil, nil, err
	}
	inc.coeffs = res.Coeffs
	inc.solves++
	l := &landscape.Landscape{Grid: inc.grid, Data: res.X}
	st := &Stats{
		GridSize:         inc.grid.Size(),
		Samples:          len(inc.idx),
		Speedup:          float64(inc.grid.Size()) / float64(len(inc.idx)),
		SolverIterations: res.Iterations,
		Residual:         res.Residual,
		Sparsity:         res.Sparsity,
		Indices:          inc.idx,
		Values:           inc.values,
	}
	return l, st, nil
}
