// Package cs implements the compressed-sensing reconstruction at the heart
// of OSCAR.
//
// A landscape X (a row-major N-dimensional grid, last axis fastest) is
// assumed sparse in the separable DCT domain: X = IDCT(S) with S mostly
// zero. Given measurements y of X at a small set of grid indices Ω (the
// measurement operator A s = subsample_Ω(IDCT(s))), the solver recovers S by
// l1-regularized least squares
//
//	min_s 1/2 ||y - A s||_2^2 + λ ||s||_1
//
// using FISTA (accelerated proximal gradient). Because the orthonormal DCT is
// an isometry and subsampling is a contraction, ||A||_2 <= 1 and a unit step
// size is always valid. ISTA and OMP solvers are provided for the ablation
// study in DESIGN.md.
package cs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dct"
	"repro/internal/exec"
	"repro/internal/obs"
)

// Method selects the sparse-recovery algorithm.
type Method int

const (
	// FISTA is the accelerated proximal-gradient method (default).
	FISTA Method = iota
	// ISTA is the unaccelerated proximal-gradient method.
	ISTA
	// OMP is orthogonal matching pursuit (greedy support recovery).
	OMP
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case FISTA:
		return "fista"
	case ISTA:
		return "ista"
	case OMP:
		return "omp"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Options configures a reconstruction.
type Options struct {
	// Method selects the solver (default FISTA).
	Method Method
	// Lambda is the l1 penalty. When zero, it is set automatically to
	// LambdaRel * max|A^T y|, the standard relative scaling.
	Lambda float64
	// LambdaRel is the relative penalty used when Lambda is zero.
	// Defaults to 0.001, matching DefaultOptions: VQA landscapes are
	// extremely sparse, so a light penalty keeps shrinkage bias small.
	LambdaRel float64
	// MaxIter bounds the iteration count. Defaults to 500.
	MaxIter int
	// Tol stops iteration when the relative change of the iterate drops
	// below it. Defaults to 1e-6.
	Tol float64
	// Continuation, when true (default via DefaultOptions), starts from a
	// large penalty and geometrically decreases it to Lambda, which
	// speeds up convergence on poorly conditioned sampling sets.
	Continuation bool
	// Debias, when true, follows l1 recovery with a least-squares polish
	// restricted to the recovered support.
	Debias bool
	// OMPSparsity bounds the support size for OMP. When zero it defaults
	// to len(y)/4.
	OMPSparsity int
	// Warm optionally seeds the proximal solvers (FISTA/ISTA) with an
	// initial DCT-coefficient estimate of the full grid length — typically the
	// previous solve of a growing sample set, the streaming-reconstruction
	// regime. A warm start begins iteration at the target penalty instead
	// of running the continuation schedule (continuation exists to escape
	// the zero start, which a warm start already has). OMP ignores it.
	// The slice is read, never written.
	Warm []float64
	// Workers shards the solver — the per-axis DCT passes and the
	// per-element FISTA kernels — across a worker pool: any non-positive
	// value selects GOMAXPROCS, 1 forces the serial solver, and n > 1
	// uses n workers (dct.NewPlanNDWorkers owns this resolution). Grids
	// smaller than 4096 points always solve serially. Sharding is
	// bit-identical to the serial solver for every worker count.
	Workers int
}

// DefaultOptions returns the options used throughout the paper
// reproduction: FISTA with continuation, a light penalty (VQA landscapes are
// extremely sparse, so shrinkage bias dominates the error budget), and a
// least-squares debias pass.
func DefaultOptions() Options {
	return Options{
		Method:       FISTA,
		LambdaRel:    0.001,
		MaxIter:      500,
		Tol:          1e-6,
		Continuation: true,
		Debias:       true,
	}
}

// WithDefaults applies the zero-value-means-DefaultOptions sentinel: an
// Options whose only set fields are the carry-through ones — Workers and
// Warm — becomes DefaultOptions carrying them, so picking a pool size or
// warm-starting never silently drops the paper configuration (continuation,
// debias). Any other set field disables the promotion. ReconstructNDContext
// applies it to every solve, so direct calls, the 2D/1D wrappers,
// core.Options.Solver, and ReconstructMany jobs all follow this one rule.
func (o Options) WithDefaults() Options {
	// Keep the probe in sync with the field list: every non-carry-through
	// field must be checked here, or a caller setting it would be promoted
	// over.
	if o.Method == FISTA && o.Lambda == 0 && o.LambdaRel == 0 &&
		o.MaxIter == 0 && o.Tol == 0 && !o.Continuation && !o.Debias &&
		o.OMPSparsity == 0 {
		w, warm := o.Workers, o.Warm
		o = DefaultOptions()
		o.Workers = w
		o.Warm = warm
	}
	return o
}

func (o *Options) fill() {
	if o.LambdaRel == 0 {
		// Keep in sync with DefaultOptions: a zero-valued Options must
		// behave like the paper configuration's penalty.
		o.LambdaRel = 0.001
	}
	if o.MaxIter == 0 {
		o.MaxIter = 500
	}
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
}

// Result carries the reconstruction and solver diagnostics.
type Result struct {
	// X is the reconstructed row-major landscape (last axis fastest).
	X []float64
	// Coeffs is the recovered DCT coefficient tensor (same layout).
	Coeffs []float64
	// Iterations is the number of solver iterations performed.
	Iterations int
	// Residual is the final ||y - A s||_2.
	Residual float64
	// Sparsity is the number of nonzero recovered coefficients.
	Sparsity int
}

// ReconstructND recovers an N-dimensional landscape of the given per-axis
// lengths (row-major, last axis fastest) from values y observed at the flat
// grid indices idx. idx entries must be unique and in [0, prod(dims)). This
// is the primary reconstruction entry point; Reconstruct2D and Reconstruct1D
// are thin compatibility wrappers over it.
func ReconstructND(dims []int, idx []int, y []float64, opt Options) (*Result, error) {
	return ReconstructNDContext(context.Background(), dims, idx, y, opt)
}

// ReconstructNDContext is ReconstructND with cancellation: a canceled ctx
// stops the solver between iterations and returns ctx.Err().
func ReconstructNDContext(ctx context.Context, dims []int, idx []int, y []float64, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(dims) == 0 {
		return nil, errors.New("cs: empty shape")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("cs: invalid shape %v", dims)
		}
		n *= d
	}
	if len(idx) != len(y) {
		return nil, fmt.Errorf("cs: %d indices but %d values", len(idx), len(y))
	}
	if len(idx) == 0 {
		return nil, errors.New("cs: no measurements")
	}
	seen := make(map[int]struct{}, len(idx))
	for _, i := range idx {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("cs: index %d out of range [0,%d)", i, n)
		}
		if _, dup := seen[i]; dup {
			return nil, fmt.Errorf("cs: duplicate index %d", i)
		}
		seen[i] = struct{}{}
	}
	opt = opt.WithDefaults()
	opt.fill()
	if opt.Warm != nil && len(opt.Warm) != n {
		return nil, fmt.Errorf("cs: warm start has %d coefficients, want %d", len(opt.Warm), n)
	}
	op := newPartialDCT(dims, idx, opt.Workers)
	span, ctx := obs.Start(ctx, "cs.solve")
	defer span.End()
	span.SetAttr("samples", len(idx))
	span.SetAttr("points", n)
	span.SetAttr("method", opt.Method.String())
	var res *Result
	var err error
	switch opt.Method {
	case FISTA, ISTA:
		res, err = solveProx(ctx, op, y, opt)
	case OMP:
		res, err = solveOMP(ctx, op, y, opt)
	default:
		return nil, fmt.Errorf("cs: unknown method %v", opt.Method)
	}
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	span.SetAttr("iterations", res.Iterations)
	span.SetAttr("residual", res.Residual)
	span.SetAttr("sparsity", res.Sparsity)
	return res, nil
}

// Reconstruct2D recovers a rows×cols landscape from values y observed at the
// row-major grid indices idx. idx entries must be unique and in
// [0, rows*cols). It is the 2-axis special case of ReconstructND and remains
// bit-identical to the pre-ND solver (the ND DCT's two-axis passes are
// exactly the old row/column sweep).
func Reconstruct2D(rows, cols int, idx []int, y []float64, opt Options) (*Result, error) {
	return Reconstruct2DContext(context.Background(), rows, cols, idx, y, opt)
}

// Reconstruct2DContext is Reconstruct2D with cancellation: a canceled ctx
// stops the solver between iterations and returns ctx.Err().
func Reconstruct2DContext(ctx context.Context, rows, cols int, idx []int, y []float64, opt Options) (*Result, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("cs: invalid shape %dx%d", rows, cols)
	}
	return ReconstructNDContext(ctx, []int{rows, cols}, idx, y, opt)
}

// partialDCT is the measurement operator A and its adjoint, sharded across
// workers goroutines (1 = serial).
type partialDCT struct {
	workers int
	idx     []int
	plan    *dct.PlanND
	grid    []float64 // scratch, length prod(dims)
}

func newPartialDCT(dims []int, idx []int, workers int) *partialDCT {
	plan := dct.NewPlanNDWorkers(dims, workers)
	return &partialDCT{
		// The plan owns worker resolution (GOMAXPROCS default, small-grid
		// serial fallback); adopting its effective count keeps the vector
		// kernels and the transforms under one rule.
		workers: plan.Workers(),
		idx:     idx,
		plan:    plan,
		grid:    make([]float64, plan.Size()),
	}
}

func (op *partialDCT) n() int { return len(op.grid) }
func (op *partialDCT) m() int { return len(op.idx) }

// forward computes A s = subsample(IDCT(s)) into out (length m).
func (op *partialDCT) forward(out, s []float64) {
	op.plan.Inverse(op.grid, s)
	for j, gi := range op.idx {
		out[j] = op.grid[gi]
	}
}

// adjoint computes A^T r = DCT(scatter(r)) into out (length n). The zeroing
// stays serial: it compiles to a memclr that is far cheaper than goroutine
// fan-out at these grid sizes.
func (op *partialDCT) adjoint(out, r []float64) {
	for i := range op.grid {
		op.grid[i] = 0
	}
	for j, gi := range op.idx {
		op.grid[gi] = r[j]
	}
	op.plan.Forward(out, op.grid)
}

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// solveProx runs FISTA (or ISTA) on the lasso objective. The per-element
// vector kernels (gradient step, soft threshold, extrapolation) run over
// contiguous shards on op's worker pool; reductions (penalty scaling and the
// convergence test) stay serial so that floating-point summation order — and
// therefore the result — is bit-identical for every worker count.
func solveProx(ctx context.Context, op *partialDCT, y []float64, opt Options) (*Result, error) {
	n, m := op.n(), op.m()
	aty := make([]float64, n)
	op.adjoint(aty, y)
	maxAbs := 0.0
	for _, v := range aty {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	lambda := opt.Lambda
	if lambda == 0 {
		lambda = opt.LambdaRel * maxAbs
	}
	if maxAbs == 0 {
		// All-zero measurements: the zero landscape is exact.
		return &Result{X: make([]float64, n), Coeffs: make([]float64, n)}, nil
	}

	s := make([]float64, n)     // current iterate
	z := make([]float64, n)     // extrapolation point (FISTA)
	prev := make([]float64, n)  // previous iterate
	grad := make([]float64, n)  // A^T (A z - y)
	resid := make([]float64, m) // A z - y
	az := make([]float64, m)
	if opt.Warm != nil {
		copy(s, opt.Warm)
		copy(z, opt.Warm)
	}

	// Continuation schedule: geometric decay from a large penalty. A warm
	// start begins near a solution already, so it iterates at the target
	// penalty directly — re-running the schedule would shrink the warm
	// iterate back toward zero and discard the head start.
	lam := lambda
	if opt.Continuation && opt.Warm == nil {
		lam = 0.5 * maxAbs
		if lam < lambda {
			lam = lambda
		}
	}
	tk := 1.0
	iters := 0
	for it := 0; it < opt.MaxIter; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iters++
		op.forward(az, z)
		for j := range resid {
			resid[j] = az[j] - y[j]
		}
		op.adjoint(grad, resid)
		copy(prev, s)
		// Fused gradient step + soft-threshold prox over worker shards:
		// s = shrink(z - grad, lam). One fan-out and one memory sweep per
		// iteration instead of two; elementwise, so sharding stays
		// bit-identical to a serial pass.
		lamIt := lam
		exec.ForRange(op.workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := z[i] - grad[i]
				switch {
				case v > lamIt:
					s[i] = v - lamIt
				case v < -lamIt:
					s[i] = v + lamIt
				default:
					s[i] = 0
				}
			}
		})

		if opt.Method == FISTA {
			tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
			beta := (tk - 1) / tNext
			exec.ForRange(op.workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					z[i] = s[i] + beta*(s[i]-prev[i])
				}
			})
			tk = tNext
		} else {
			copy(z, s)
		}

		// Convergence: relative step size, once the continuation
		// schedule has reached the target penalty.
		var diff, base float64
		for i := range s {
			d := s[i] - prev[i]
			diff += d * d
			base += s[i] * s[i]
		}
		atTarget := lam <= lambda*1.0000001
		if atTarget && diff <= opt.Tol*opt.Tol*(base+1e-30) {
			break
		}
		if opt.Continuation && lam > lambda {
			lam *= 0.7
			if lam < lambda {
				lam = lambda
			}
		}
	}

	if opt.Debias {
		debias(op, s, y)
	}

	op.forward(az, s)
	for j := range resid {
		resid[j] = az[j] - y[j]
	}
	x := make([]float64, n)
	op.plan.Inverse(x, s)
	return &Result{
		X:          x,
		Coeffs:     s,
		Iterations: iters,
		Residual:   norm2(resid),
		Sparsity:   countNonzero(s),
	}, nil
}

func countNonzero(s []float64) int {
	c := 0
	for _, v := range s {
		if v != 0 {
			c++
		}
	}
	return c
}

// debias polishes the solution with conjugate-gradient least squares
// restricted to the recovered support.
func debias(op *partialDCT, s, y []float64) {
	support := make([]int, 0, 64)
	for i, v := range s {
		if v != 0 {
			support = append(support, i)
		}
	}
	if len(support) == 0 || len(support) > op.m() {
		return
	}
	// Solve min over coefficients on the support via gradient descent with
	// a fixed number of CG-like steps (the operator restricted to the
	// support still has spectral norm <= 1).
	grad := make([]float64, op.n())
	resid := make([]float64, op.m())
	as := make([]float64, op.m())
	for it := 0; it < 50; it++ {
		op.forward(as, s)
		for j := range resid {
			resid[j] = as[j] - y[j]
		}
		op.adjoint(grad, resid)
		var gnorm float64
		for _, i := range support {
			gnorm += grad[i] * grad[i]
		}
		if gnorm < 1e-24 {
			return
		}
		for _, i := range support {
			s[i] -= grad[i]
		}
	}
}

// solveOMP runs orthogonal matching pursuit: greedily grow the support,
// refitting by least squares (gradient polish) after each addition. The
// support size is tracked incrementally — exactly one index joins per greedy
// step — instead of rescanning the n-length support mask every iteration.
func solveOMP(ctx context.Context, op *partialDCT, y []float64, opt Options) (*Result, error) {
	n, m := op.n(), op.m()
	k := opt.OMPSparsity
	if k <= 0 {
		k = m / 4
	}
	if k > m {
		k = m
	}
	s := make([]float64, n)
	inSupport := make([]bool, n)
	supportSize := 0
	resid := make([]float64, m)
	copy(resid, y)
	corr := make([]float64, n)
	as := make([]float64, m)
	iters := 0
	for supportSize < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iters++
		op.adjoint(corr, resid)
		best, bestAbs := -1, 0.0
		for i, v := range corr {
			if inSupport[i] {
				continue
			}
			if a := math.Abs(v); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if best < 0 || bestAbs < 1e-12 {
			break
		}
		inSupport[best] = true
		supportSize++
		// Least-squares refit on the support by projected gradient.
		for polish := 0; polish < 25; polish++ {
			op.forward(as, s)
			for j := range resid {
				resid[j] = as[j] - y[j]
			}
			op.adjoint(corr, resid)
			var gnorm float64
			for i := range corr {
				if inSupport[i] {
					gnorm += corr[i] * corr[i]
				}
			}
			if gnorm < 1e-24 {
				break
			}
			for i := range corr {
				if inSupport[i] {
					s[i] -= corr[i]
				}
			}
		}
		op.forward(as, s)
		for j := range resid {
			resid[j] = y[j] - as[j]
		}
		if norm2(resid) < 1e-10*(1+norm2(y)) {
			break
		}
		// resid currently holds y - A s; adjoint correlation expects
		// that orientation for the next greedy pick.
	}
	op.forward(as, s)
	for j := range resid {
		resid[j] = as[j] - y[j]
	}
	x := make([]float64, n)
	op.plan.Inverse(x, s)
	return &Result{
		X:          x,
		Coeffs:     s,
		Iterations: iters,
		Residual:   norm2(resid),
		Sparsity:   countNonzero(s),
	}, nil
}

// SampleIndices draws m distinct row-major indices uniformly at random from
// an n-point grid — OSCAR's parameter-sampling phase. The result is sorted.
func SampleIndices(rng *rand.Rand, n, m int) ([]int, error) {
	if m <= 0 || m > n {
		return nil, fmt.Errorf("cs: cannot sample %d of %d points", m, n)
	}
	// Partial Fisher-Yates over an index permutation.
	perm := rng.Perm(n)
	out := append([]int(nil), perm[:m]...)
	sort.Ints(out)
	return out, nil
}

// StratifiedIndices draws approximately m indices using jittered stratified
// sampling over the grid: the grid is divided into m nearly equal buckets and
// one point is drawn per bucket. Used by the sampling-pattern ablation.
func StratifiedIndices(rng *rand.Rand, n, m int) ([]int, error) {
	if m <= 0 || m > n {
		return nil, fmt.Errorf("cs: cannot sample %d of %d points", m, n)
	}
	out := make([]int, 0, m)
	seen := make(map[int]struct{}, m)
	for b := 0; b < m; b++ {
		lo := b * n / m
		hi := (b + 1) * n / m
		if hi <= lo {
			hi = lo + 1
		}
		i := lo + rng.Intn(hi-lo)
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, i)
	}
	sort.Ints(out)
	return out, nil
}

// StratifiedIndicesND draws exactly m flat row-major indices stratified over
// an N-dimensional grid. The grid is split by recursive bisection of the
// widest remaining axis, dividing the quota between the two halves in
// proportion to their volumes, until each box holds a quota of one; a single
// jittered point is then drawn uniformly inside each box. Boxes are disjoint,
// so the m indices are distinct, and the split schedule depends only on
// (dims, m), so identical rng state yields identical samples.
//
// For 1-D and 2-D grids core keeps the flat-bucket StratifiedIndices scheme
// for bit-compatibility with earlier releases; this sampler is the ND
// generalization used for 3+ axes.
func StratifiedIndicesND(rng *rand.Rand, dims []int, m int) ([]int, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("cs: empty shape")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("cs: invalid shape %v", dims)
		}
		n *= d
	}
	if m <= 0 || m > n {
		return nil, fmt.Errorf("cs: cannot sample %d of %d points", m, n)
	}
	strides := make([]int, len(dims))
	s := 1
	for k := len(dims) - 1; k >= 0; k-- {
		strides[k] = s
		s *= dims[k]
	}
	out := make([]int, 0, m)
	// walk recursively bisects the box [lo, hi) along its widest axis.
	var walk func(lo, hi []int, quota int)
	walk = func(lo, hi []int, quota int) {
		if quota == 1 {
			idx := 0
			for k := range dims {
				idx += (lo[k] + rng.Intn(hi[k]-lo[k])) * strides[k]
			}
			out = append(out, idx)
			return
		}
		axis, widest := 0, 0
		vol := 1
		for k := range dims {
			w := hi[k] - lo[k]
			vol *= w
			if w > widest {
				axis, widest = k, w
			}
		}
		mid := lo[axis] + widest/2
		volA := vol / widest * (mid - lo[axis])
		volB := vol - volA
		// Split the quota in proportion to volume, clamped so each half's
		// quota fits inside its half.
		qa := quota * volA / vol
		if qa < quota-volB {
			qa = quota - volB
		}
		if qa > volA {
			qa = volA
		}
		qb := quota - qa
		loB := append([]int(nil), lo...)
		hiA := append([]int(nil), hi...)
		hiA[axis], loB[axis] = mid, mid
		if qa > 0 {
			walk(lo, hiA, qa)
		}
		if qb > 0 {
			walk(loB, hi, qb)
		}
	}
	lo := make([]int, len(dims))
	walk(lo, append([]int(nil), dims...), m)
	sort.Ints(out)
	return out, nil
}

// Reconstruct1D recovers a length-n signal from samples at the given
// indices. One-dimensional landscapes arise when OSCAR scans a single
// circuit parameter (line cuts for quick diagnostics). It routes through
// ReconstructND with a single axis — bit-identical to the historical 1xN
// Reconstruct2D routing, because a length-1 leading axis is an exact
// identity pass the transform skips.
func Reconstruct1D(n int, idx []int, y []float64, opt Options) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cs: invalid length %d", n)
	}
	return ReconstructND([]int{n}, idx, y, opt)
}
