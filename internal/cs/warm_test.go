package cs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dct"
)

// sparseScene builds a rows×cols landscape that is exactly sparse in the DCT
// domain, plus a sampled measurement set.
func sparseScene(t *testing.T, rows, cols, m int, seed int64) (x []float64, idx []int, y []float64) {
	t.Helper()
	n := rows * cols
	rng := rand.New(rand.NewSource(seed))
	coeffs := make([]float64, n)
	for k := 0; k < 6; k++ {
		coeffs[rng.Intn(n/8)] = rng.NormFloat64() * 3
	}
	x = make([]float64, n)
	dct.NewPlan2D(rows, cols).Inverse(x, coeffs)
	idx, err := SampleIndices(rng, n, m)
	if err != nil {
		t.Fatal(err)
	}
	y = make([]float64, len(idx))
	for j, gi := range idx {
		y[j] = x[gi]
	}
	return x, idx, y
}

// TestWarmStartConverges checks a warm-started solve recovers the same
// landscape as a cold solve on the same data, in no more iterations.
func TestWarmStartConverges(t *testing.T) {
	rows, cols := 24, 32
	x, idx, y := sparseScene(t, rows, cols, 200, 31)

	cold, err := Reconstruct2D(rows, cols, idx, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-start from the cold solution itself: the solver should accept
	// it nearly unchanged.
	opt := Options{Warm: cold.Coeffs}
	warm, err := Reconstruct2D(rows, cols, idx, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm solve took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
	var maxDiff, maxErr float64
	for i := range x {
		maxDiff = math.Max(maxDiff, math.Abs(warm.X[i]-cold.X[i]))
		maxErr = math.Max(maxErr, math.Abs(warm.X[i]-x[i]))
	}
	if maxDiff > 1e-6 {
		t.Errorf("warm and cold reconstructions differ by %g", maxDiff)
	}
	if maxErr > 1e-4 {
		t.Errorf("warm reconstruction off the truth by %g", maxErr)
	}
}

// TestWarmStartGrowingSamples is the streaming regime: solve on a prefix of
// the samples, then warm-start the full-set solve from it. The warm solve
// must match the truth and converge faster than the cold full-set solve.
func TestWarmStartGrowingSamples(t *testing.T) {
	rows, cols := 24, 32
	x, idx, y := sparseScene(t, rows, cols, 260, 57)

	half := len(idx) / 2
	first, err := Reconstruct2D(rows, cols, idx[:half], y[:half], Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldFull, err := Reconstruct2D(rows, cols, idx, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warmFull, err := Reconstruct2D(rows, cols, idx, y, Options{Warm: first.Coeffs})
	if err != nil {
		t.Fatal(err)
	}
	if warmFull.Iterations >= coldFull.Iterations {
		t.Errorf("warm full solve took %d iterations, cold full %d — no head start",
			warmFull.Iterations, coldFull.Iterations)
	}
	var maxErr float64
	for i := range x {
		maxErr = math.Max(maxErr, math.Abs(warmFull.X[i]-x[i]))
	}
	if maxErr > 1e-4 {
		t.Errorf("warm full reconstruction off the truth by %g", maxErr)
	}
	// Determinism: repeating the same warm solve reproduces it bit for bit.
	again, err := Reconstruct2D(rows, cols, idx, y, Options{Warm: first.Coeffs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range warmFull.X {
		if warmFull.X[i] != again.X[i] {
			t.Fatalf("warm solve not deterministic at %d", i)
		}
	}
}

// TestWarmStartValidation rejects warm starts of the wrong shape, and the
// promotion rule carries Warm through to the default configuration.
func TestWarmStartValidation(t *testing.T) {
	_, idx, y := sparseScene(t, 8, 8, 20, 3)
	if _, err := Reconstruct2D(8, 8, idx, y, Options{Warm: make([]float64, 7)}); err == nil {
		t.Error("want error for wrong warm-start length")
	}
	warm := make([]float64, 64)
	opt := Options{Warm: warm, Workers: 1}.WithDefaults()
	if !opt.Debias || !opt.Continuation || opt.MaxIter != 500 {
		t.Errorf("Warm-only options not promoted to defaults: %+v", opt)
	}
	if opt.Workers != 1 || len(opt.Warm) != 64 {
		t.Error("promotion dropped the carry-through fields")
	}
	// Any other set field disables the promotion, as before.
	if opt := (Options{Warm: warm, Tol: 1e-3}).WithDefaults(); opt.Debias {
		t.Error("promotion fired despite an explicitly-set field")
	}
}
