package cs

import (
	"context"
	"runtime"
	"sync"
)

// Job describes one independent reconstruction: recover a Rows×Cols
// landscape from the values Y observed at row-major grid indices Idx, solved
// with Opt. An Opt whose only set field is Workers is promoted to
// DefaultOptions (keeping that worker count), matching every other
// reconstruction entry point.
type Job struct {
	Rows, Cols int
	Idx        []int
	Y          []float64
	Opt        Options
}

// JobResult pairs a job's reconstruction with its error. Exactly one of
// Result and Err is set.
type JobResult struct {
	Result *Result
	Err    error
}

// ReconstructMany solves independent reconstruction jobs concurrently on a
// worker pool and returns one JobResult per job, index-aligned with jobs (the
// engine's deterministic-ordering convention). Errors are isolated per job: a
// failing job does not stop the others. A canceled ctx stops in-flight
// solves between iterations and marks every unfinished job with ctx.Err().
//
// Jobs themselves are the unit of parallelism here, so a job whose
// Opt.Workers is not positive (which Reconstruct2D would resolve to
// GOMAXPROCS) is solved serially to avoid oversubscribing the pool; set
// Opt.Workers > 1 explicitly to shard inside a job too.
func ReconstructMany(ctx context.Context, jobs ...Job) []JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					out[i] = JobResult{Err: err}
					continue
				}
				job := jobs[i]
				opt := job.Opt
				if opt.Workers <= 0 {
					// Jobs are the unit of parallelism here; keep
					// unset-Workers jobs serial instead of letting
					// the solver resolve non-positive values to
					// GOMAXPROCS.
					opt.Workers = 1
				}
				res, err := Reconstruct2DContext(ctx, job.Rows, job.Cols, job.Idx, job.Y, opt)
				out[i] = JobResult{Result: res, Err: err}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
