package cs

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dct"
)

// sparseLandscape builds a rows×cols signal with k active DCT modes.
func sparseLandscape(rng *rand.Rand, rows, cols, k int) ([]float64, []float64) {
	n := rows * cols
	coeffs := make([]float64, n)
	for i := 0; i < k; i++ {
		// Keep modes low-frequency, like real VQA landscapes.
		r := rng.Intn(rows/3 + 1)
		c := rng.Intn(cols/3 + 1)
		coeffs[r*cols+c] = 2*rng.Float64() + 1
	}
	x := make([]float64, n)
	dct.NewPlan2D(rows, cols).Inverse(x, coeffs)
	return x, coeffs
}

func relErr(got, want []float64) float64 {
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

func TestReconstructExactSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows, cols := 30, 40
	x, _ := sparseLandscape(rng, rows, cols, 5)
	idx, err := SampleIndices(rng, rows*cols, rows*cols/5)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	res, err := Reconstruct2D(rows, cols, idx, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.X, x); e > 0.02 {
		t.Fatalf("relative error %g too high for 20%% sampling of 5-sparse signal", e)
	}
}

func TestReconstructMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rows, cols := 24, 24
	x, _ := sparseLandscape(rng, rows, cols, 4)
	idx, _ := SampleIndices(rng, rows*cols, 160)
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	for _, m := range []Method{FISTA, ISTA, OMP} {
		opt := DefaultOptions()
		opt.Method = m
		if m == ISTA {
			opt.MaxIter = 2000
		}
		if m == OMP {
			opt.OMPSparsity = 16
		}
		res, err := Reconstruct2D(rows, cols, idx, y, opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if e := relErr(res.X, x); e > 0.1 {
			t.Errorf("%v: relative error %g too high", m, e)
		}
	}
}

func TestReconstructNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows, cols := 30, 30
	x, _ := sparseLandscape(rng, rows, cols, 4)
	idx, _ := SampleIndices(rng, rows*cols, 300)
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i] + 0.01*rng.NormFloat64()
	}
	opt := DefaultOptions()
	opt.LambdaRel = 0.02
	res, err := Reconstruct2D(rows, cols, idx, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.X, x); e > 0.1 {
		t.Fatalf("relative error %g too high under measurement noise", e)
	}
}

func TestReconstructDebias(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	rows, cols := 20, 20
	x, _ := sparseLandscape(rng, rows, cols, 3)
	idx, _ := SampleIndices(rng, rows*cols, 120)
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	plain := DefaultOptions()
	plain.Debias = false
	deb := DefaultOptions()
	deb.Debias = true
	r1, err := Reconstruct2D(rows, cols, idx, y, plain)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Reconstruct2D(rows, cols, idx, y, deb)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(r2.X, x) > relErr(r1.X, x)+1e-9 {
		t.Errorf("debiasing made recovery worse: %g vs %g", relErr(r2.X, x), relErr(r1.X, x))
	}
}

func TestReconstructValidation(t *testing.T) {
	cases := []struct {
		name string
		rows int
		cols int
		idx  []int
		y    []float64
	}{
		{"bad shape", 0, 5, []int{0}, []float64{1}},
		{"length mismatch", 4, 4, []int{0, 1}, []float64{1}},
		{"empty", 4, 4, nil, nil},
		{"out of range", 4, 4, []int{16}, []float64{1}},
		{"negative", 4, 4, []int{-1}, []float64{1}},
		{"duplicate", 4, 4, []int{3, 3}, []float64{1, 1}},
	}
	for _, tc := range cases {
		if _, err := Reconstruct2D(tc.rows, tc.cols, tc.idx, tc.y, DefaultOptions()); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

func TestReconstructZeroSignal(t *testing.T) {
	idx := []int{0, 5, 10, 15}
	y := []float64{0, 0, 0, 0}
	res, err := Reconstruct2D(4, 4, idx, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if v != 0 {
			t.Fatalf("X[%d]=%g, want 0", i, v)
		}
	}
}

// TestAdjointProperty verifies <A s, r> == <s, A^T r> for random vectors, the
// defining property the proximal solver relies on.
func TestAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	rows, cols := 9, 13
	n := rows * cols
	idx, _ := SampleIndices(rng, n, 40)
	op := newPartialDCT([]int{rows, cols}, idx, 1)
	f := func(seed int64) bool {
		r2 := rand.New(rand.NewSource(seed))
		s := make([]float64, n)
		for i := range s {
			s[i] = r2.NormFloat64()
		}
		r := make([]float64, len(idx))
		for i := range r {
			r[i] = r2.NormFloat64()
		}
		as := make([]float64, len(idx))
		op.forward(as, s)
		atr := make([]float64, n)
		op.adjoint(atr, r)
		var lhs, rhs float64
		for i := range as {
			lhs += as[i] * r[i]
		}
		for i := range s {
			rhs += s[i] * atr[i]
		}
		return math.Abs(lhs-rhs) <= 1e-8*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOperatorContraction verifies ||A s|| <= ||s||, which justifies the unit
// FISTA step size.
func TestOperatorContraction(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	rows, cols := 10, 14
	n := rows * cols
	idx, _ := SampleIndices(rng, n, 50)
	op := newPartialDCT([]int{rows, cols}, idx, 1)
	for trial := 0; trial < 30; trial++ {
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		as := make([]float64, len(idx))
		op.forward(as, s)
		var ns, nas float64
		for _, v := range s {
			ns += v * v
		}
		for _, v := range as {
			nas += v * v
		}
		if nas > ns*(1+1e-9) {
			t.Fatalf("||As||^2=%g > ||s||^2=%g", nas, ns)
		}
	}
}

func TestSampleIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	idx, err := SampleIndices(rng, 100, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 30 {
		t.Fatalf("got %d indices, want 30", len(idx))
	}
	seen := map[int]bool{}
	last := -1
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		if i <= last {
			t.Fatalf("indices not sorted at %d", i)
		}
		seen[i] = true
		last = i
	}
	if _, err := SampleIndices(rng, 10, 11); err == nil {
		t.Error("want error sampling 11 of 10")
	}
	if _, err := SampleIndices(rng, 10, 0); err == nil {
		t.Error("want error sampling 0")
	}
}

func TestStratifiedIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	idx, err := StratifiedIndices(rng, 100, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) == 0 || len(idx) > 25 {
		t.Fatalf("got %d indices", len(idx))
	}
	// Every bucket of 4 should hold at most one point by construction.
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
	}
	if _, err := StratifiedIndices(rng, 10, 0); err == nil {
		t.Error("want error for m=0")
	}
}

// TestStratifiedIndicesBucketCoverage checks the defining stratification
// property: with n divisible by m every bucket [b*n/m, (b+1)*n/m) contributes
// exactly one point, so coverage is uniform across the grid.
func TestStratifiedIndicesBucketCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n, m := 120, 24 // bucket width 5
	idx, err := StratifiedIndices(rng, n, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != m {
		t.Fatalf("got %d indices, want %d (equal buckets cannot collide)", len(idx), m)
	}
	perBucket := make([]int, m)
	for _, i := range idx {
		if i < 0 || i >= n {
			t.Fatalf("index %d out of range", i)
		}
		perBucket[i*m/n]++
	}
	for b, c := range perBucket {
		if c != 1 {
			t.Fatalf("bucket %d holds %d points, want exactly 1 (got %v)", b, c, idx)
		}
	}
	// Uneven buckets (n not divisible by m) may skip duplicates but never
	// place two points in one bucket.
	idx2, err := StratifiedIndices(rng, 103, 10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range idx2 {
		b := 0
		for !(b*103/10 <= i && i < (b+1)*103/10) {
			b++
		}
		if seen[b] {
			t.Fatalf("bucket %d holds two points: %v", b, idx2)
		}
		seen[b] = true
	}
}

// TestStratifiedIndicesDeterministic: a fixed seed reproduces the exact
// sampling pattern, the property reconstruction reproducibility rests on.
func TestStratifiedIndicesDeterministic(t *testing.T) {
	a, err := StratifiedIndices(rand.New(rand.NewSource(42)), 500, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StratifiedIndices(rand.New(rand.NewSource(42)), 500, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ under the same seed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d differs under the same seed: %d vs %d", i, a[i], b[i])
		}
	}
	c, err := StratifiedIndices(rand.New(rand.NewSource(43)), 500, 60)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical stratified samples")
	}
}

// TestReconstructParallelBitIdentical is the acceptance contract for the
// sharded solver: every worker count must reproduce the serial solve
// bit-for-bit (coefficients and landscape), for the proximal methods and OMP,
// on a grid large enough to defeat the serial fallback.
func TestReconstructParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rows, cols := 64, 70 // 4480 points: above the 4096 serial-fallback floor
	x, _ := sparseLandscape(rng, rows, cols, 6)
	idx, err := SampleIndices(rng, rows*cols, 500)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	for _, m := range []Method{FISTA, ISTA, OMP} {
		base := DefaultOptions()
		base.Method = m
		// Bit-identity does not need convergence; a short run keeps the
		// race-instrumented CI pass fast while still exercising the
		// continuation schedule and the sharded prox/extrapolation
		// kernels. Debias (50 extra operator applications per solve) is
		// covered once, on the FISTA path.
		base.MaxIter = 50
		base.Debias = m == FISTA
		if m == ISTA {
			base.MaxIter = 40
		}
		if m == OMP {
			base.OMPSparsity = 8
		}
		serialOpt := base
		serialOpt.Workers = 1
		want, err := Reconstruct2D(rows, cols, idx, y, serialOpt)
		if err != nil {
			t.Fatalf("%v serial: %v", m, err)
		}
		for _, workers := range []int{0, 2, 3, 8} {
			opt := base
			opt.Workers = workers
			got, err := Reconstruct2D(rows, cols, idx, y, opt)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", m, workers, err)
			}
			if got.Iterations != want.Iterations {
				t.Fatalf("%v workers=%d: %d iterations, serial %d", m, workers, got.Iterations, want.Iterations)
			}
			if got.Residual != want.Residual || got.Sparsity != want.Sparsity {
				t.Fatalf("%v workers=%d: diagnostics diverged from serial", m, workers)
			}
			for i := range want.X {
				if got.X[i] != want.X[i] {
					t.Fatalf("%v workers=%d: X[%d]=%v, serial %v", m, workers, i, got.X[i], want.X[i])
				}
				if got.Coeffs[i] != want.Coeffs[i] {
					t.Fatalf("%v workers=%d: Coeffs[%d]=%v, serial %v", m, workers, i, got.Coeffs[i], want.Coeffs[i])
				}
			}
		}
	}
}

// TestReconstruct1DParallelBitIdentical covers the degenerate 1xN shape,
// where only the column pass and the vector kernels can shard.
func TestReconstruct1DParallelBitIdentical(t *testing.T) {
	n := 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(math.Pi*(2*float64(i)+1)*5/(2*float64(n))) +
			0.25*math.Cos(math.Pi*(2*float64(i)+1)*11/(2*float64(n)))
	}
	rng := rand.New(rand.NewSource(24))
	idx, err := SampleIndices(rng, n, 400)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	serialOpt := DefaultOptions()
	serialOpt.Workers = 1
	serialOpt.MaxIter = 120
	want, err := Reconstruct1D(n, idx, y, serialOpt)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(want.X, x); e > 0.01 {
		t.Fatalf("1-D relative error %g", e)
	}
	for _, workers := range []int{0, 3, 8} {
		opt := serialOpt
		opt.Workers = workers
		got, err := Reconstruct1D(n, idx, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.X {
			if got.X[i] != want.X[i] {
				t.Fatalf("workers=%d: X[%d]=%v, serial %v", workers, i, got.X[i], want.X[i])
			}
		}
	}
}

func TestReconstructCanceledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	rows, cols := 20, 20
	x, _ := sparseLandscape(rng, rows, cols, 3)
	idx, _ := SampleIndices(rng, rows*cols, 100)
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{FISTA, OMP} {
		opt := DefaultOptions()
		opt.Method = m
		if _, err := Reconstruct2DContext(ctx, rows, cols, idx, y, opt); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", m, err)
		}
	}
}

func TestReconstructManyMatchesIndividual(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	var jobs []Job
	var want []*Result
	for k := 0; k < 6; k++ {
		rows, cols := 20+k, 25+2*k
		x, _ := sparseLandscape(rng, rows, cols, 4)
		idx, err := SampleIndices(rng, rows*cols, rows*cols/4)
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, len(idx))
		for j, i := range idx {
			y[j] = x[i]
		}
		jobs = append(jobs, Job{Rows: rows, Cols: cols, Idx: idx, Y: y, Opt: DefaultOptions()})
		opt := DefaultOptions()
		opt.Workers = 1 // ReconstructMany solves zero-Workers jobs serially
		res, err := Reconstruct2D(rows, cols, idx, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	got := ReconstructMany(context.Background(), jobs...)
	if len(got) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(got), len(jobs))
	}
	for k, jr := range got {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", k, jr.Err)
		}
		for i := range want[k].X {
			if jr.Result.X[i] != want[k].X[i] {
				t.Fatalf("job %d: X[%d] differs from individual solve", k, i)
			}
		}
	}
}

// TestReconstructManyZeroOptUsesDefaults: a job whose Opt is zero (or sets
// only Workers) solves with DefaultOptions, like every other entry point.
func TestReconstructManyZeroOptUsesDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rows, cols := 18, 22
	x, _ := sparseLandscape(rng, rows, cols, 3)
	idx, _ := SampleIndices(rng, rows*cols, 100)
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	opt := DefaultOptions()
	opt.Workers = 1
	want, err := Reconstruct2D(rows, cols, idx, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	out := ReconstructMany(context.Background(),
		Job{Rows: rows, Cols: cols, Idx: idx, Y: y},
		Job{Rows: rows, Cols: cols, Idx: idx, Y: y, Opt: Options{Workers: 1}},
		// Negative Workers must also stay serial inside the pool, not
		// resolve to GOMAXPROCS.
		Job{Rows: rows, Cols: cols, Idx: idx, Y: y, Opt: Options{Workers: -2}})
	for k, jr := range out {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", k, jr.Err)
		}
		for i := range want.X {
			if jr.Result.X[i] != want.X[i] {
				t.Fatalf("job %d: X[%d] differs from a DefaultOptions solve — zero Opt was not promoted", k, i)
			}
		}
	}
}

// TestReconstructManyErrorIsolation: one malformed job must fail alone.
func TestReconstructManyErrorIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	rows, cols := 16, 16
	x, _ := sparseLandscape(rng, rows, cols, 2)
	idx, _ := SampleIndices(rng, rows*cols, 80)
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	good := Job{Rows: rows, Cols: cols, Idx: idx, Y: y, Opt: DefaultOptions()}
	bad := Job{Rows: 0, Cols: cols, Idx: idx, Y: y, Opt: DefaultOptions()}
	out := ReconstructMany(context.Background(), good, bad, good)
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("good jobs failed: %v / %v", out[0].Err, out[2].Err)
	}
	if out[1].Err == nil {
		t.Fatal("malformed job did not report an error")
	}
	if out[0].Result == nil || out[2].Result == nil || out[1].Result != nil {
		t.Fatal("result/error pairing wrong")
	}
}

func TestReconstructManyCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	rows, cols := 16, 16
	x, _ := sparseLandscape(rng, rows, cols, 2)
	idx, _ := SampleIndices(rng, rows*cols, 80)
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Rows: rows, Cols: cols, Idx: idx, Y: y, Opt: DefaultOptions()}
	}
	out := ReconstructMany(ctx, jobs...)
	for i, jr := range out {
		if !errors.Is(jr.Err, context.Canceled) {
			t.Fatalf("job %d: err = %v, want context.Canceled", i, jr.Err)
		}
	}
	if out := ReconstructMany(context.Background()); len(out) != 0 {
		t.Fatalf("zero jobs returned %d results", len(out))
	}
}

// TestLambdaRelDefault pins the documented default penalty: a zero-valued
// Options must use the same LambdaRel as DefaultOptions (0.001).
func TestLambdaRelDefault(t *testing.T) {
	if got := DefaultOptions().LambdaRel; got != 0.001 {
		t.Fatalf("DefaultOptions().LambdaRel = %g, want 0.001", got)
	}
	var opt Options
	opt.fill()
	if opt.LambdaRel != DefaultOptions().LambdaRel {
		t.Fatalf("zero Options fills LambdaRel=%g, DefaultOptions uses %g — defaults diverged",
			opt.LambdaRel, DefaultOptions().LambdaRel)
	}
	explicit := Options{LambdaRel: 0.05}
	explicit.fill()
	if explicit.LambdaRel != 0.05 {
		t.Fatalf("fill clobbered an explicit LambdaRel: %g", explicit.LambdaRel)
	}
}

func TestMethodString(t *testing.T) {
	if FISTA.String() != "fista" || ISTA.String() != "ista" || OMP.String() != "omp" {
		t.Error("method names wrong")
	}
	if Method(42).String() == "" {
		t.Error("unknown method should still stringify")
	}
}

// TestRecoveryImprovesWithSamples is the qualitative Figure 4 property:
// reconstruction error decreases as the sampling fraction grows.
func TestRecoveryImprovesWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	rows, cols := 25, 25
	x, _ := sparseLandscape(rng, rows, cols, 6)
	errs := make([]float64, 0, 3)
	for _, m := range []int{40, 120, 320} {
		idx, _ := SampleIndices(rand.New(rand.NewSource(99)), rows*cols, m)
		y := make([]float64, len(idx))
		for j, i := range idx {
			y[j] = x[i]
		}
		res, err := Reconstruct2D(rows, cols, idx, y, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, relErr(res.X, x))
	}
	if !(errs[2] <= errs[0]) {
		t.Fatalf("error did not improve with samples: %v", errs)
	}
	if errs[2] > 0.05 {
		t.Fatalf("error at 51%% sampling too high: %g", errs[2])
	}
}

func TestReconstruct1D(t *testing.T) {
	n := 200
	x := make([]float64, n)
	for i := range x {
		// Two cosine modes: 2-sparse in the DCT basis.
		x[i] = math.Cos(math.Pi*(2*float64(i)+1)*3/(2*float64(n))) +
			0.5*math.Cos(math.Pi*(2*float64(i)+1)*7/(2*float64(n)))
	}
	rng := rand.New(rand.NewSource(20))
	idx, err := SampleIndices(rng, n, 40)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	res, err := Reconstruct1D(n, idx, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.X, x); e > 0.01 {
		t.Fatalf("1-D relative error %g", e)
	}
	if len(res.X) != n || len(res.Coeffs) != n {
		t.Fatalf("1-D result shape %d/%d, want %d", len(res.X), len(res.Coeffs), n)
	}
}

// TestReconstruct1DValidation: the 1-D entry point inherits 2-D validation.
func TestReconstruct1DValidation(t *testing.T) {
	if _, err := Reconstruct1D(0, []int{0}, []float64{1}, DefaultOptions()); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := Reconstruct1D(10, []int{10}, []float64{1}, DefaultOptions()); err == nil {
		t.Error("want error for out-of-range index")
	}
	if _, err := Reconstruct1D(10, []int{1, 1}, []float64{1, 1}, DefaultOptions()); err == nil {
		t.Error("want error for duplicate index")
	}
}
