package cs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dct"
)

// sparseLandscape builds a rows×cols signal with k active DCT modes.
func sparseLandscape(rng *rand.Rand, rows, cols, k int) ([]float64, []float64) {
	n := rows * cols
	coeffs := make([]float64, n)
	for i := 0; i < k; i++ {
		// Keep modes low-frequency, like real VQA landscapes.
		r := rng.Intn(rows/3 + 1)
		c := rng.Intn(cols/3 + 1)
		coeffs[r*cols+c] = 2*rng.Float64() + 1
	}
	x := make([]float64, n)
	dct.NewPlan2D(rows, cols).Inverse(x, coeffs)
	return x, coeffs
}

func relErr(got, want []float64) float64 {
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

func TestReconstructExactSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows, cols := 30, 40
	x, _ := sparseLandscape(rng, rows, cols, 5)
	idx, err := SampleIndices(rng, rows*cols, rows*cols/5)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	res, err := Reconstruct2D(rows, cols, idx, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.X, x); e > 0.02 {
		t.Fatalf("relative error %g too high for 20%% sampling of 5-sparse signal", e)
	}
}

func TestReconstructMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rows, cols := 24, 24
	x, _ := sparseLandscape(rng, rows, cols, 4)
	idx, _ := SampleIndices(rng, rows*cols, 160)
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	for _, m := range []Method{FISTA, ISTA, OMP} {
		opt := DefaultOptions()
		opt.Method = m
		if m == ISTA {
			opt.MaxIter = 2000
		}
		if m == OMP {
			opt.OMPSparsity = 16
		}
		res, err := Reconstruct2D(rows, cols, idx, y, opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if e := relErr(res.X, x); e > 0.1 {
			t.Errorf("%v: relative error %g too high", m, e)
		}
	}
}

func TestReconstructNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows, cols := 30, 30
	x, _ := sparseLandscape(rng, rows, cols, 4)
	idx, _ := SampleIndices(rng, rows*cols, 300)
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i] + 0.01*rng.NormFloat64()
	}
	opt := DefaultOptions()
	opt.LambdaRel = 0.02
	res, err := Reconstruct2D(rows, cols, idx, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.X, x); e > 0.1 {
		t.Fatalf("relative error %g too high under measurement noise", e)
	}
}

func TestReconstructDebias(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	rows, cols := 20, 20
	x, _ := sparseLandscape(rng, rows, cols, 3)
	idx, _ := SampleIndices(rng, rows*cols, 120)
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	plain := DefaultOptions()
	plain.Debias = false
	deb := DefaultOptions()
	deb.Debias = true
	r1, err := Reconstruct2D(rows, cols, idx, y, plain)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Reconstruct2D(rows, cols, idx, y, deb)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(r2.X, x) > relErr(r1.X, x)+1e-9 {
		t.Errorf("debiasing made recovery worse: %g vs %g", relErr(r2.X, x), relErr(r1.X, x))
	}
}

func TestReconstructValidation(t *testing.T) {
	cases := []struct {
		name string
		rows int
		cols int
		idx  []int
		y    []float64
	}{
		{"bad shape", 0, 5, []int{0}, []float64{1}},
		{"length mismatch", 4, 4, []int{0, 1}, []float64{1}},
		{"empty", 4, 4, nil, nil},
		{"out of range", 4, 4, []int{16}, []float64{1}},
		{"negative", 4, 4, []int{-1}, []float64{1}},
		{"duplicate", 4, 4, []int{3, 3}, []float64{1, 1}},
	}
	for _, tc := range cases {
		if _, err := Reconstruct2D(tc.rows, tc.cols, tc.idx, tc.y, DefaultOptions()); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

func TestReconstructZeroSignal(t *testing.T) {
	idx := []int{0, 5, 10, 15}
	y := []float64{0, 0, 0, 0}
	res, err := Reconstruct2D(4, 4, idx, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if v != 0 {
			t.Fatalf("X[%d]=%g, want 0", i, v)
		}
	}
}

// TestAdjointProperty verifies <A s, r> == <s, A^T r> for random vectors, the
// defining property the proximal solver relies on.
func TestAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	rows, cols := 9, 13
	n := rows * cols
	idx, _ := SampleIndices(rng, n, 40)
	op := newPartialDCT(rows, cols, idx)
	f := func(seed int64) bool {
		r2 := rand.New(rand.NewSource(seed))
		s := make([]float64, n)
		for i := range s {
			s[i] = r2.NormFloat64()
		}
		r := make([]float64, len(idx))
		for i := range r {
			r[i] = r2.NormFloat64()
		}
		as := make([]float64, len(idx))
		op.forward(as, s)
		atr := make([]float64, n)
		op.adjoint(atr, r)
		var lhs, rhs float64
		for i := range as {
			lhs += as[i] * r[i]
		}
		for i := range s {
			rhs += s[i] * atr[i]
		}
		return math.Abs(lhs-rhs) <= 1e-8*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOperatorContraction verifies ||A s|| <= ||s||, which justifies the unit
// FISTA step size.
func TestOperatorContraction(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	rows, cols := 10, 14
	n := rows * cols
	idx, _ := SampleIndices(rng, n, 50)
	op := newPartialDCT(rows, cols, idx)
	for trial := 0; trial < 30; trial++ {
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		as := make([]float64, len(idx))
		op.forward(as, s)
		var ns, nas float64
		for _, v := range s {
			ns += v * v
		}
		for _, v := range as {
			nas += v * v
		}
		if nas > ns*(1+1e-9) {
			t.Fatalf("||As||^2=%g > ||s||^2=%g", nas, ns)
		}
	}
}

func TestSampleIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	idx, err := SampleIndices(rng, 100, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 30 {
		t.Fatalf("got %d indices, want 30", len(idx))
	}
	seen := map[int]bool{}
	last := -1
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		if i <= last {
			t.Fatalf("indices not sorted at %d", i)
		}
		seen[i] = true
		last = i
	}
	if _, err := SampleIndices(rng, 10, 11); err == nil {
		t.Error("want error sampling 11 of 10")
	}
	if _, err := SampleIndices(rng, 10, 0); err == nil {
		t.Error("want error sampling 0")
	}
}

func TestStratifiedIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	idx, err := StratifiedIndices(rng, 100, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) == 0 || len(idx) > 25 {
		t.Fatalf("got %d indices", len(idx))
	}
	// Every bucket of 4 should hold at most one point by construction.
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
	}
	if _, err := StratifiedIndices(rng, 10, 0); err == nil {
		t.Error("want error for m=0")
	}
}

func TestMethodString(t *testing.T) {
	if FISTA.String() != "fista" || ISTA.String() != "ista" || OMP.String() != "omp" {
		t.Error("method names wrong")
	}
	if Method(42).String() == "" {
		t.Error("unknown method should still stringify")
	}
}

// TestRecoveryImprovesWithSamples is the qualitative Figure 4 property:
// reconstruction error decreases as the sampling fraction grows.
func TestRecoveryImprovesWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	rows, cols := 25, 25
	x, _ := sparseLandscape(rng, rows, cols, 6)
	errs := make([]float64, 0, 3)
	for _, m := range []int{40, 120, 320} {
		idx, _ := SampleIndices(rand.New(rand.NewSource(99)), rows*cols, m)
		y := make([]float64, len(idx))
		for j, i := range idx {
			y[j] = x[i]
		}
		res, err := Reconstruct2D(rows, cols, idx, y, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, relErr(res.X, x))
	}
	if !(errs[2] <= errs[0]) {
		t.Fatalf("error did not improve with samples: %v", errs)
	}
	if errs[2] > 0.05 {
		t.Fatalf("error at 51%% sampling too high: %g", errs[2])
	}
}

func TestReconstruct1D(t *testing.T) {
	n := 200
	x := make([]float64, n)
	for i := range x {
		// Two cosine modes: 2-sparse in the DCT basis.
		x[i] = math.Cos(math.Pi*(2*float64(i)+1)*3/(2*float64(n))) +
			0.5*math.Cos(math.Pi*(2*float64(i)+1)*7/(2*float64(n)))
	}
	rng := rand.New(rand.NewSource(20))
	idx, err := SampleIndices(rng, n, 40)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	res, err := Reconstruct1D(n, idx, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.X, x); e > 0.01 {
		t.Fatalf("1-D relative error %g", e)
	}
}
