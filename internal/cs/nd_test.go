package cs

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dct"
)

// hashFloats is an FNV-1a hash over the exact bit patterns of a float
// slice — one changed bit anywhere changes the hash.
func hashFloats(xs []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, x := range xs {
		b := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			h ^= (b >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// Golden outputs of the seed (pre-ND) 2-D solver, captured before the
// refactor routed Reconstruct2D/Reconstruct1D through ReconstructND. These
// pin the acceptance criterion that the existing entry points stay
// bit-identical across the redesign.
//
// 2-D fixture: the Table-1 50x100 grid, 8 modes, seed 17, 20% sampling.
// 1-D fixture: a 5000-point line cut, 6 modes, seed 19, 10% sampling.
const (
	golden2DIters     = 76
	golden2DSparsity  = 8
	golden2DResidBits = 0x3e72c9b49ee3ba0f
	golden2DXHash     = 0x61c34d81172abe1b
	golden2DCoeffHash = 0xf52f66aacf3dad2a

	golden1DIters     = 173
	golden1DSparsity  = 6
	golden1DResidBits = 0x3eece8e226c7fc60
	golden1DXHash     = 0xadaae335c99a0555
	golden1DCoeffHash = 0x663e12865ce86d95
)

func TestReconstruct2DGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows, cols := 50, 100
	x, _ := sparseLandscape(rng, rows, cols, 8)
	idx, err := SampleIndices(rng, rows*cols, 1000)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	res, err := Reconstruct2D(rows, cols, idx, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != golden2DIters || res.Sparsity != golden2DSparsity {
		t.Errorf("iters=%d sparsity=%d, want %d/%d", res.Iterations, res.Sparsity, golden2DIters, golden2DSparsity)
	}
	if bits := math.Float64bits(res.Residual); bits != golden2DResidBits {
		t.Errorf("residual bits %#016x, want %#016x", bits, uint64(golden2DResidBits))
	}
	if h := hashFloats(res.X); h != golden2DXHash {
		t.Errorf("X hash %#016x, want %#016x", h, uint64(golden2DXHash))
	}
	if h := hashFloats(res.Coeffs); h != golden2DCoeffHash {
		t.Errorf("coeff hash %#016x, want %#016x", h, uint64(golden2DCoeffHash))
	}
}

// TestReconstruct1DGolden pins Reconstruct1D — which historically routed
// through Reconstruct2D(1, n, ...) and now routes through ReconstructND — to
// the seed solver's exact output.
func TestReconstruct1DGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 5000
	x, _ := sparseLandscape(rng, 1, n, 6)
	idx, err := SampleIndices(rng, n, 500)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	res, err := Reconstruct1D(n, idx, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != golden1DIters || res.Sparsity != golden1DSparsity {
		t.Errorf("iters=%d sparsity=%d, want %d/%d", res.Iterations, res.Sparsity, golden1DIters, golden1DSparsity)
	}
	if bits := math.Float64bits(res.Residual); bits != golden1DResidBits {
		t.Errorf("residual bits %#016x, want %#016x", bits, uint64(golden1DResidBits))
	}
	if h := hashFloats(res.X); h != golden1DXHash {
		t.Errorf("X hash %#016x, want %#016x", h, uint64(golden1DXHash))
	}
	if h := hashFloats(res.Coeffs); h != golden1DCoeffHash {
		t.Errorf("coeff hash %#016x, want %#016x", h, uint64(golden1DCoeffHash))
	}
}

// sparseND builds an ND signal with k active low-frequency DCT modes.
func sparseND(rng *rand.Rand, dims []int, k int) []float64 {
	size := 1
	for _, d := range dims {
		size *= d
	}
	strides := make([]int, len(dims))
	s := 1
	for a := len(dims) - 1; a >= 0; a-- {
		strides[a] = s
		s *= dims[a]
	}
	coeffs := make([]float64, size)
	for i := 0; i < k; i++ {
		idx := 0
		for a, d := range dims {
			idx += rng.Intn(d/3+1) * strides[a]
		}
		coeffs[idx] = 2*rng.Float64() + 1
	}
	x := make([]float64, size)
	dct.NewPlanND(dims).Inverse(x, coeffs)
	return x
}

// TestReconstructNDExactSparse: a sparse 4-D signal (the p=2 QAOA shape)
// recovers almost exactly from 20% sampling.
func TestReconstructNDExactSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	dims := []int{10, 10, 12, 12}
	x := sparseND(rng, dims, 6)
	n := len(x)
	idx, err := SampleIndices(rng, n, n/5)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	res, err := ReconstructND(dims, idx, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.X, x); e > 0.02 {
		t.Fatalf("relative error %g too high for 20%% sampling of 6-sparse 4-D signal", e)
	}
}

// TestReconstructNDWorkersBitIdentical: the sharded ND solver matches the
// serial one bit for bit at every worker count.
func TestReconstructNDWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dims := []int{9, 11, 8, 10} // 7920 points, above the serial floor
	x := sparseND(rng, dims, 5)
	idx, err := SampleIndices(rng, len(x), len(x)/4)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	opt := DefaultOptions()
	opt.MaxIter = 60
	opt.Workers = 1
	ref, err := ReconstructND(dims, idx, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	refX, refC := hashFloats(ref.X), hashFloats(ref.Coeffs)
	for _, workers := range []int{2, 3, 7, 0} {
		opt.Workers = workers
		res, err := ReconstructND(dims, idx, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != ref.Iterations {
			t.Fatalf("workers %d: %d iterations, serial did %d", workers, res.Iterations, ref.Iterations)
		}
		if hashFloats(res.X) != refX || hashFloats(res.Coeffs) != refC {
			t.Fatalf("workers %d: output differs from serial solve", workers)
		}
		if math.Float64bits(res.Residual) != math.Float64bits(ref.Residual) {
			t.Fatalf("workers %d: residual differs", workers)
		}
	}
}

// TestReconstruct2DEqualsND: the 2-D wrapper and a direct ND call on the
// same shape are the same solve.
func TestReconstruct2DEqualsND(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	rows, cols := 20, 30
	x, _ := sparseLandscape(rng, rows, cols, 4)
	idx, _ := SampleIndices(rng, rows*cols, 150)
	y := make([]float64, len(idx))
	for j, i := range idx {
		y[j] = x[i]
	}
	a, err := Reconstruct2D(rows, cols, idx, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReconstructND([]int{rows, cols}, idx, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if hashFloats(a.X) != hashFloats(b.X) || hashFloats(a.Coeffs) != hashFloats(b.Coeffs) {
		t.Fatal("Reconstruct2D and ReconstructND disagree on the same shape")
	}
}

func TestReconstructNDValidation(t *testing.T) {
	y := []float64{1}
	cases := []struct {
		name string
		dims []int
		idx  []int
		y    []float64
	}{
		{"empty shape", nil, []int{0}, y},
		{"bad dim", []int{4, 0}, []int{0}, y},
		{"negative dim", []int{-2}, []int{0}, y},
		{"len mismatch", []int{8}, []int{0, 1}, y},
		{"no samples", []int{8}, nil, nil},
		{"out of range", []int{8}, []int{8}, y},
		{"negative index", []int{8}, []int{-1}, y},
		{"duplicate", []int{8}, []int{2, 2}, []float64{1, 1}},
	}
	for _, c := range cases {
		if _, err := ReconstructND(c.dims, c.idx, c.y, DefaultOptions()); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestStratifiedIndicesND(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	dims := []int{6, 7, 8}
	n := 6 * 7 * 8
	for _, m := range []int{1, 5, 37, 100, n} {
		idx, err := StratifiedIndicesND(rng, dims, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) != m {
			t.Fatalf("m=%d: got %d indices", m, len(idx))
		}
		if !sort.IntsAreSorted(idx) {
			t.Fatalf("m=%d: indices not sorted", m)
		}
		seen := make(map[int]struct{}, len(idx))
		for _, i := range idx {
			if i < 0 || i >= n {
				t.Fatalf("m=%d: index %d out of range", m, i)
			}
			if _, dup := seen[i]; dup {
				t.Fatalf("m=%d: duplicate index %d", m, i)
			}
			seen[i] = struct{}{}
		}
	}
	// Coverage: with one point per octant-sized box, every half of every
	// axis must receive samples.
	idx, err := StratifiedIndicesND(rand.New(rand.NewSource(36)), []int{8, 8, 8}, 64)
	if err != nil {
		t.Fatal(err)
	}
	var counts [3][2]int
	for _, i := range idx {
		mi := [3]int{i / 64, (i / 8) % 8, i % 8}
		for a := 0; a < 3; a++ {
			counts[a][mi[a]/4]++
		}
	}
	for a := 0; a < 3; a++ {
		for h := 0; h < 2; h++ {
			if got := counts[a][h]; got < 24 || got > 40 {
				t.Errorf("axis %d half %d: %d of 64 samples (want near 32)", a, h, got)
			}
		}
	}
	// Determinism: same seed, same samples.
	a, _ := StratifiedIndicesND(rand.New(rand.NewSource(37)), dims, 50)
	b, _ := StratifiedIndicesND(rand.New(rand.NewSource(37)), dims, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	// Validation.
	for _, c := range []struct {
		dims []int
		m    int
	}{{nil, 1}, {[]int{0}, 1}, {[]int{4}, 0}, {[]int{4}, 5}} {
		if _, err := StratifiedIndicesND(rng, c.dims, c.m); err == nil {
			t.Errorf("dims %v m %d: no error", c.dims, c.m)
		}
	}
}
