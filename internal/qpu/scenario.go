package qpu

import (
	"math/rand"
	"sort"
	"sync"
)

// Condition is a device's effective behavior at one instant of virtual time:
// the latency model jobs sample from, the probability a submission fails, and
// whether the device is accepting work at all.
type Condition struct {
	// Latency is the effective latency model at this instant.
	Latency LatencyModel
	// FailureProb is the effective per-submission failure probability.
	FailureProb float64
	// Down marks the device dark: a submission made at this time pays its
	// sampled latency (the job sits in the queue until evicted) and then
	// fails deterministically. Schedulers learn about dropouts only through
	// these observed failures — they get no side channel.
	Down bool
}

// Scenario perturbs a device's condition as a function of virtual time —
// deterministic fault injection for validating schedulers against adversarial
// device behavior rather than benign averages. Implementations must be
// reproducible: the same construction parameters yield the same condition at
// every queried time, regardless of query order. Scenarios may be shared
// across devices (that is how correlated disturbances are modeled) and must
// be safe for concurrent use.
type Scenario interface {
	// Kind names the scenario class ("drift", "dropout", ...).
	Kind() string
	// At returns the effective condition at virtual time t, derived from
	// the device's configured base condition.
	At(t float64, base Condition) Condition
}

// Drift models calibration drift: execution time ramps up linearly once the
// drift starts, as a device's error rates (and hence shot counts or re-runs)
// grow between calibrations.
type Drift struct {
	// Start is the virtual time the drift begins.
	Start float64
	// Rate is the fractional execution-time growth per second of drift:
	// at time t > Start the exec multiplier is 1 + Rate*(t-Start).
	Rate float64
	// Max caps the exec multiplier (0 means a default cap of 10x).
	Max float64
}

// Kind implements Scenario.
func (d Drift) Kind() string { return "drift" }

// At implements Scenario.
func (d Drift) At(t float64, base Condition) Condition {
	if t <= d.Start || d.Rate <= 0 {
		return base
	}
	m := 1 + d.Rate*(t-d.Start)
	max := d.Max
	if max <= 0 {
		max = 10
	}
	if m > max {
		m = max
	}
	base.Latency.Exec *= m
	return base
}

// Dropout takes the device dark for one window of virtual time — a mid-run
// calibration outage. Submissions inside the window pay their latency and
// fail; outside it the device behaves normally.
type Dropout struct {
	// Start is when the device goes dark.
	Start float64
	// Duration is how long it stays dark.
	Duration float64
}

// Kind implements Scenario.
func (d Dropout) Kind() string { return "dropout" }

// At implements Scenario.
func (d Dropout) At(t float64, base Condition) Condition {
	if t >= d.Start && t < d.Start+d.Duration {
		base.Down = true
	}
	return base
}

// windows is a reproducible stream of disturbance windows: inter-window gaps
// are exponentially distributed with mean Spacing, each window lasts
// Duration. Windows are materialized lazily from the seeded stream in window
// order, so membership of any time t is a pure function of the seed and
// parameters — query order does not matter. Safe for concurrent use.
type windows struct {
	spacing  float64
	duration float64

	mu     sync.Mutex
	rng    *rand.Rand
	starts []float64
}

func newWindows(seed int64, spacing, duration float64) *windows {
	return &windows{
		spacing:  spacing,
		duration: duration,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// in reports whether t falls inside a disturbance window.
func (w *windows) in(t float64) bool {
	if w.spacing <= 0 || w.duration <= 0 || t < 0 {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// Extend the materialized window list until it covers t. Each new
	// window starts an Exp(spacing) gap after the previous one ends, so
	// windows never overlap and the sequence only ever extends.
	for len(w.starts) == 0 || w.starts[len(w.starts)-1] <= t {
		prevEnd := 0.0
		if n := len(w.starts); n > 0 {
			prevEnd = w.starts[n-1] + w.duration
		}
		w.starts = append(w.starts, prevEnd+w.spacing*w.rng.ExpFloat64())
	}
	i := sort.SearchFloat64s(w.starts, t)
	// starts[i-1] <= t < starts[i]; t is disturbed iff it falls within
	// Duration of the window starting at starts[i-1].
	return i > 0 && t < w.starts[i-1]+w.duration
}

// QueueSpikes models congestion bursts: during seeded windows the queue
// delay is multiplied by Factor. Sharing one *QueueSpikes across several
// devices makes them spike together — the correlated-disturbance case that
// defeats purely per-device mitigation.
type QueueSpikes struct {
	// Factor multiplies the queue median inside a spike window.
	Factor float64
	w      *windows
}

// NewQueueSpikes builds a spike scenario: windows of the given duration
// (seconds of virtual time) recur with exponentially distributed gaps of
// mean spacing, multiplying queue delay by factor while active.
func NewQueueSpikes(seed int64, spacing, duration, factor float64) *QueueSpikes {
	return &QueueSpikes{Factor: factor, w: newWindows(seed, spacing, duration)}
}

// Kind implements Scenario.
func (s *QueueSpikes) Kind() string { return "queue_spikes" }

// At implements Scenario.
func (s *QueueSpikes) At(t float64, base Condition) Condition {
	if s.Factor > 1 && s.w != nil && s.w.in(t) {
		base.Latency.QueueMedian *= s.Factor
	}
	return base
}

// RetryStorm models transient failure bursts: during seeded windows the
// failure probability is raised to Prob (when that exceeds the device's
// base rate), as happens when a control-stack hiccup bounces a stretch of
// submissions.
type RetryStorm struct {
	// Prob is the failure probability inside a storm window.
	Prob float64
	w    *windows
}

// NewRetryStorm builds a storm scenario: windows of the given duration recur
// with exponentially distributed gaps of mean spacing, raising failure
// probability to prob while active.
func NewRetryStorm(seed int64, spacing, duration, prob float64) *RetryStorm {
	return &RetryStorm{Prob: prob, w: newWindows(seed, spacing, duration)}
}

// Kind implements Scenario.
func (s *RetryStorm) Kind() string { return "retry_storm" }

// At implements Scenario.
func (s *RetryStorm) At(t float64, base Condition) Condition {
	if s.w != nil && s.w.in(t) && s.Prob > base.FailureProb {
		base.FailureProb = s.Prob
	}
	return base
}

// Compose chains scenarios: each one's perturbation feeds the next. Kind
// reports the first scenario's kind joined with "+" for the rest.
func Compose(scenarios ...Scenario) Scenario { return composite(scenarios) }

type composite []Scenario

// Kind implements Scenario.
func (c composite) Kind() string {
	kind := ""
	for i, s := range c {
		if i > 0 {
			kind += "+"
		}
		kind += s.Kind()
	}
	return kind
}

// At implements Scenario.
func (c composite) At(t float64, base Condition) Condition {
	for _, s := range c {
		base = s.At(t, base)
	}
	return base
}

// ConditionAt resolves the device's effective condition at virtual time t,
// applying its Scenario (when set) to the configured base model.
func (d Device) ConditionAt(t float64) Condition {
	base := Condition{Latency: d.Latency, FailureProb: d.FailureProb}
	if d.Scenario == nil {
		return base
	}
	return d.Scenario.At(t, base)
}
