package qpu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/backend"
	"repro/internal/landscape"
)

func testGrid(t *testing.T) *landscape.Grid {
	t.Helper()
	g, err := landscape.NewGrid(
		landscape.Axis{Name: "x", Min: -1, Max: 1, N: 10},
		landscape.Axis{Name: "y", Min: -1, Max: 1, N: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func evalFunc(label string) backend.Evaluator {
	return &backend.Func{Label: label, Params: 2, F: func(p []float64) (float64, error) {
		return p[0]*p[0] + p[1], nil
	}}
}

func TestLatencyModel(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	m := DefaultLatency()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 5000
	tails := 0
	for i := 0; i < n; i++ {
		l := m.Sample(rng)
		if l <= 0 {
			t.Fatalf("latency %g", l)
		}
		if l > 10*m.QueueMedian {
			tails++
		}
		sum += l
	}
	if tails == 0 {
		t.Fatal("no tail events in 5000 samples at 5% tail probability")
	}
	mean := sum / float64(n)
	if mean < m.QueueMedian {
		t.Fatalf("mean %g below median %g (lognormal + tail should exceed)", mean, m.QueueMedian)
	}
	bad := LatencyModel{QueueMedian: -1}
	if err := bad.Validate(); err == nil {
		t.Error("want error for negative median")
	}
	bad2 := LatencyModel{TailProb: 0.5, TailFactor: 0.5}
	if err := bad2.Validate(); err == nil {
		t.Error("want error for tail factor < 1")
	}
}

func TestExecutorRunParallelSpeedup(t *testing.T) {
	g := testGrid(t)
	lat := LatencyModel{QueueMedian: 10, Sigma: 0.3, Exec: 1}
	devices := make([]Device, 4)
	for i := range devices {
		devices[i] = Device{Name: "qpu", Eval: evalFunc("f"), Latency: lat}
	}
	ex, err := NewExecutor(7, devices...)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 60)
	for i := range idx {
		idx[i] = i
	}
	rep, err := ex.Run(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 60 {
		t.Fatalf("%d results", len(rep.Results))
	}
	// 4 identical devices: speedup should approach 4.
	if sp := rep.Speedup(); sp < 2.5 || sp > 6 {
		t.Fatalf("speedup %g, want near 4", sp)
	}
	// Load balance.
	for d, c := range rep.PerDevice {
		if c < 10 || c > 20 {
			t.Fatalf("device %d ran %d jobs", d, c)
		}
	}
	// Values are real evaluations.
	for _, r := range rep.Results {
		p := g.Point(r.Index)
		want := p[0]*p[0] + p[1]
		if math.Abs(r.Value-want) > 1e-12 {
			t.Fatalf("value %g want %g", r.Value, want)
		}
	}
	// Results sorted by completion.
	for i := 1; i < len(rep.Results); i++ {
		if rep.Results[i].Done < rep.Results[i-1].Done {
			t.Fatal("results not sorted by completion time")
		}
	}
}

func TestExecutorValidation(t *testing.T) {
	if _, err := NewExecutor(1); err == nil {
		t.Error("want error for no devices")
	}
	if _, err := NewExecutor(1, Device{Name: "x"}); err == nil {
		t.Error("want error for missing evaluator")
	}
	ex, _ := NewExecutor(1, Device{Name: "a", Eval: evalFunc("f"), Latency: DefaultLatency()})
	if _, err := ex.Run(testGrid(t), nil); err == nil {
		t.Error("want error for no jobs")
	}
}

func TestEagerCutDropsTail(t *testing.T) {
	g := testGrid(t)
	// Heavy tail: 10% of jobs at 30x latency.
	lat := LatencyModel{QueueMedian: 10, Sigma: 0.2, Exec: 1, TailProb: 0.1, TailFactor: 30}
	ex, err := NewExecutor(11,
		Device{Name: "a", Eval: evalFunc("f"), Latency: lat},
		Device{Name: "b", Eval: evalFunc("f"), Latency: lat},
	)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	rep, err := ex.Run(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	timeout := TimeoutForFraction(rep, 0.9)
	kept, saved := EagerCut(rep, timeout)
	if len(kept) < 85 || len(kept) > 95 {
		t.Fatalf("kept %d of 100 at q=0.9", len(kept))
	}
	if saved <= 0 {
		t.Fatalf("eager cut saved %g (tail should push makespan past the 90%% quantile)", saved)
	}
	// Completion times of kept jobs all within timeout.
	for _, r := range kept {
		if r.Done > timeout {
			t.Fatal("kept a job past the timeout")
		}
	}
	// Full-fraction timeout equals makespan.
	if TimeoutForFraction(rep, 1) != rep.Makespan {
		t.Fatal("q=1 timeout should be the makespan")
	}
	if TimeoutForFraction(rep, 0) != 0 {
		t.Fatal("q=0 timeout should be 0")
	}
}

func TestSplitIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i * 3
	}
	first, second, err := SplitIndices(idx, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 20 || len(second) != 80 {
		t.Fatalf("split %d/%d", len(first), len(second))
	}
	seen := map[int]bool{}
	for _, v := range append(first, second...) {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatal("split lost indices")
	}
	if _, _, err := SplitIndices(idx, 1.5, rng); err == nil {
		t.Error("want error for bad fraction")
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	g := testGrid(t)
	lat := DefaultLatency()
	mk := func() *RunReport {
		ex, _ := NewExecutor(99,
			Device{Name: "a", Eval: evalFunc("f"), Latency: lat},
			Device{Name: "b", Eval: evalFunc("f"), Latency: lat},
		)
		idx := []int{0, 5, 10, 15, 20, 25}
		rep, err := ex.Run(g, idx)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := mk(), mk()
	if r1.Makespan != r2.Makespan || r1.SerialTime != r2.SerialTime {
		t.Fatal("virtual time not deterministic")
	}
}

// TestRunAdvancesStreamAcrossCalls: one executor must not replay identical
// latency draws on successive runs (the service bug), while staying
// deterministic as a whole sequence given the seed.
func TestRunAdvancesStreamAcrossCalls(t *testing.T) {
	g := testGrid(t)
	idx := []int{0, 5, 10, 15, 20, 25}
	mk := func() *Executor {
		ex, err := NewExecutor(99,
			Device{Name: "a", Eval: evalFunc("f"), Latency: DefaultLatency()},
			Device{Name: "b", Eval: evalFunc("f"), Latency: DefaultLatency()},
		)
		if err != nil {
			t.Fatal(err)
		}
		return ex
	}
	ex := mk()
	r1, err := ex.Run(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ex.Run(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan == r2.Makespan && r1.SerialTime == r2.SerialTime {
		t.Fatal("second run on one executor replayed the first run's latency draws")
	}
	// The two-call sequence itself is reproducible on a fresh executor.
	ex2 := mk()
	s1, err := ex2.Run(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ex2.Run(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan != r1.Makespan || s2.Makespan != r2.Makespan {
		t.Fatalf("call sequence not deterministic given seed: %g/%g vs %g/%g",
			s1.Makespan, s2.Makespan, r1.Makespan, r2.Makespan)
	}
}

func TestFailureInjection(t *testing.T) {
	g := testGrid(t)
	lat := LatencyModel{QueueMedian: 10, Sigma: 0.2, Exec: 1}
	flaky := Device{Name: "flaky", Eval: evalFunc("f"), Latency: lat, FailureProb: 0.3}
	solid := Device{Name: "solid", Eval: evalFunc("f"), Latency: lat}
	ex, err := NewExecutor(21, flaky, solid)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 80)
	for i := range idx {
		idx[i] = i
	}
	rep, err := ex.Run(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 80 {
		t.Fatalf("%d results", len(rep.Results))
	}
	if rep.Retries == 0 {
		t.Fatal("no retries with a 30% flaky device")
	}
	// Every value still correct despite rescheduling.
	for _, r := range rep.Results {
		p := g.Point(r.Index)
		if math.Abs(r.Value-(p[0]*p[0]+p[1])) > 1e-12 {
			t.Fatalf("value corrupted after retry: %g", r.Value)
		}
	}
	// Failed attempts pay latency: serial time covers retries too.
	if rep.SerialTime <= 80*lat.Exec {
		t.Fatalf("serial time %g too small", rep.SerialTime)
	}
}

func TestFailureValidation(t *testing.T) {
	d := Device{Name: "x", Eval: evalFunc("f"), FailureProb: 1.0}
	if _, err := NewExecutor(1, d); err == nil {
		t.Fatal("want error for failure probability 1")
	}
}

func TestSingleDeviceRetriesInPlace(t *testing.T) {
	g := testGrid(t)
	d := Device{Name: "only", Eval: evalFunc("f"), Latency: LatencyModel{QueueMedian: 5, Sigma: 0.1, Exec: 1}, FailureProb: 0.2}
	ex, err := NewExecutor(31, d)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(g, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 10 {
		t.Fatalf("%d results", len(rep.Results))
	}
}
