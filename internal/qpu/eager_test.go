package qpu

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// TestTimeoutForFractionEdges pins the quantile-timeout policy on its
// degenerate inputs: empty reports, q at and beyond both ends, and a report
// whose jobs all completed at the same instant.
func TestTimeoutForFractionEdges(t *testing.T) {
	empty := &RunReport{}
	if got := TimeoutForFraction(empty, 0.5); got != 0 {
		t.Errorf("empty report timeout = %g, want 0", got)
	}
	rep := &RunReport{
		Results: []Result{
			{Index: 0, Done: 10},
			{Index: 1, Done: 20},
			{Index: 2, Done: 30},
			{Index: 3, Done: 40},
		},
		Makespan: 40,
	}
	if got := TimeoutForFraction(rep, 0); got != 0 {
		t.Errorf("q=0 timeout = %g, want 0", got)
	}
	if got := TimeoutForFraction(rep, -0.5); got != 0 {
		t.Errorf("q<0 timeout = %g, want 0", got)
	}
	if got := TimeoutForFraction(rep, 1); got != rep.Makespan {
		t.Errorf("q=1 timeout = %g, want makespan %g", got, rep.Makespan)
	}
	if got := TimeoutForFraction(rep, 2); got != rep.Makespan {
		t.Errorf("q>1 timeout = %g, want makespan %g", got, rep.Makespan)
	}
	// Tiny q still keeps at least one job.
	if got := TimeoutForFraction(rep, 1e-9); got != 10 {
		t.Errorf("tiny q timeout = %g, want first completion 10", got)
	}
	if got := TimeoutForFraction(rep, 0.5); got != 20 {
		t.Errorf("q=0.5 timeout = %g, want 20", got)
	}

	// All-equal completion times: every quantile is that time, and the cut
	// keeps everything.
	flat := &RunReport{
		Results:  []Result{{Done: 7}, {Done: 7}, {Done: 7}},
		Makespan: 7,
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if got := TimeoutForFraction(flat, q); got != 7 {
			t.Errorf("flat q=%g timeout = %g, want 7", q, got)
		}
	}
	kept, saved := EagerCut(flat, TimeoutForFraction(flat, 0.5))
	if len(kept) != 3 {
		t.Errorf("flat cut kept %d of 3", len(kept))
	}
	if saved != 0 {
		t.Errorf("flat cut saved %g, want 0", saved)
	}
}

// TestEagerCutEdges pins EagerCut on empty reports and timeouts outside the
// completion range.
func TestEagerCutEdges(t *testing.T) {
	empty := &RunReport{}
	kept, saved := EagerCut(empty, 10)
	if len(kept) != 0 {
		t.Errorf("empty report kept %d jobs", len(kept))
	}
	if saved != 0 {
		t.Errorf("empty report saved %g, want 0 (makespan 0)", saved)
	}
	rep := &RunReport{
		Results:  []Result{{Done: 10}, {Done: 20}},
		Makespan: 20,
	}
	if kept, _ := EagerCut(rep, 0); len(kept) != 0 {
		t.Errorf("timeout 0 kept %d jobs", len(kept))
	}
	kept, saved = EagerCut(rep, 100)
	if len(kept) != 2 || saved != 0 {
		t.Errorf("timeout past makespan: kept %d saved %g, want 2 and 0", len(kept), saved)
	}
}

func TestBatchTimeoutForFraction(t *testing.T) {
	if got := BatchTimeoutForFraction(nil, 0.5); got != 0 {
		t.Errorf("no batches timeout = %g, want 0", got)
	}
	batches := []BatchGroup{
		{Size: 4, Done: 10},
		{Size: 4, Done: 20},
		{Size: 2, Done: 30},
	}
	if got := BatchTimeoutForFraction(batches, 0); got != 0 {
		t.Errorf("q=0 timeout = %g, want 0", got)
	}
	// 40% of 10 jobs = 4: the first group covers it.
	if got := BatchTimeoutForFraction(batches, 0.4); got != 10 {
		t.Errorf("q=0.4 timeout = %g, want 10", got)
	}
	// 50% needs 5 jobs: the cut moves to the second group's boundary.
	if got := BatchTimeoutForFraction(batches, 0.5); got != 20 {
		t.Errorf("q=0.5 timeout = %g, want 20", got)
	}
	if got := BatchTimeoutForFraction(batches, 1); got != 30 {
		t.Errorf("q=1 timeout = %g, want 30", got)
	}
	if got := BatchTimeoutForFraction(batches, 5); got != 30 {
		t.Errorf("q>1 timeout = %g, want last boundary 30", got)
	}
	// Unsorted input: the function orders by completion itself.
	shuffled := []BatchGroup{batches[2], batches[0], batches[1]}
	if got := BatchTimeoutForFraction(shuffled, 0.5); got != 20 {
		t.Errorf("unsorted q=0.5 timeout = %g, want 20", got)
	}
}

// TestEagerCutBatchedKeepsWholeGroups runs a real batched execution and
// checks the batch-aware cut never splits a group: the kept count is always a
// sum of whole group sizes, and covers at least the requested fraction.
func TestEagerCutBatchedKeepsWholeGroups(t *testing.T) {
	g := testGrid(t)
	lat := LatencyModel{QueueMedian: 20, Sigma: 0.5, Exec: 1, TailProb: 0.15, TailFactor: 25}
	ex, err := NewExecutor(77,
		Device{Name: "a", Eval: evalFunc("a"), Latency: lat},
		Device{Name: "b", Eval: evalFunc("b"), Latency: lat},
	)
	if err != nil {
		t.Fatal(err)
	}
	indices := make([]int, g.Size())
	for i := range indices {
		indices[i] = i
	}
	rep, err := ex.RunBatched(context.Background(), g, indices, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Batches) != (len(indices)+6)/7 {
		t.Fatalf("%d batch groups, want %d", len(rep.Batches), (len(indices)+6)/7)
	}
	sizes := 0
	for i, b := range rep.Batches {
		if b.Size <= 0 || b.Queue < 0 || b.Exec <= 0 {
			t.Fatalf("degenerate batch group %+v", b)
		}
		if math.Abs(b.Done-b.Start-b.Queue-b.Exec) > 1e-9 {
			t.Fatalf("group %+v: done != start+queue+exec", b)
		}
		if i > 0 && b.Done < rep.Batches[i-1].Done {
			t.Fatal("batch groups not sorted by completion")
		}
		sizes += b.Size
	}
	if sizes != len(indices) {
		t.Fatalf("groups carry %d jobs, want %d", sizes, len(indices))
	}

	for _, q := range []float64{0.25, 0.5, 0.8, 0.95} {
		kept, timeout, saved := EagerCutBatched(rep, q)
		if len(kept) < int(math.Ceil(q*float64(len(indices)))) {
			t.Fatalf("q=%g kept %d of %d, below the requested fraction", q, len(kept), len(indices))
		}
		// The kept count must be expressible as whole groups completed by
		// the timeout.
		whole := 0
		for _, b := range rep.Batches {
			if b.Done <= timeout {
				whole += b.Size
			}
		}
		if len(kept) != whole {
			t.Fatalf("q=%g kept %d jobs but whole groups under the timeout carry %d", q, len(kept), whole)
		}
		if saved < 0 || saved > rep.Makespan {
			t.Fatalf("q=%g saved %g out of makespan %g", q, saved, rep.Makespan)
		}
	}

	// q=1 keeps everything and saves nothing.
	kept, timeout, saved := EagerCutBatched(rep, 1)
	if len(kept) != len(indices) || saved != 0 {
		t.Fatalf("q=1 kept %d saved %g", len(kept), saved)
	}
	if timeout != rep.Batches[len(rep.Batches)-1].Done {
		t.Fatalf("q=1 timeout %g, want last group completion %g", timeout, rep.Batches[len(rep.Batches)-1].Done)
	}

	// A report without batch records falls back to the per-job policy.
	single, err := ex.Run(g, indices[:20])
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Batches) != 0 {
		t.Fatalf("single-job run recorded %d batch groups", len(single.Batches))
	}
	keptS, timeoutS, _ := EagerCutBatched(single, 0.9)
	if want := TimeoutForFraction(single, 0.9); timeoutS != want {
		t.Fatalf("fallback timeout %g, want per-job quantile %g", timeoutS, want)
	}
	if len(keptS) == 0 || len(keptS) > 20 {
		t.Fatalf("fallback kept %d", len(keptS))
	}
}

// TestSampleBatchParts checks the decomposition sums to the plain draw and
// that both components scale under a forced tail.
func TestSampleBatchParts(t *testing.T) {
	m := LatencyModel{QueueMedian: 30, Sigma: 0.4, Exec: 2, TailProb: 0.1, TailFactor: 20}
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		q, e := m.SampleBatchParts(r1, 8)
		if q <= 0 || e <= 0 {
			t.Fatalf("non-positive parts %g %g", q, e)
		}
		if lat := m.SampleBatch(r2, 8); math.Abs(lat-(q+e)) > 1e-12 {
			t.Fatalf("parts %g+%g != total %g", q, e, lat)
		}
	}
	// Certain tail: exec component must carry the tail factor too.
	sure := LatencyModel{QueueMedian: 1, Sigma: 0, Exec: 1, TailProb: 1, TailFactor: 10}
	_, e := sure.SampleBatchParts(rand.New(rand.NewSource(1)), 3)
	if e != 30 {
		t.Fatalf("tail-scaled exec %g, want 30", e)
	}
}
