// Package qpu models the execution fabric of Section 5: multiple quantum
// processing units with queuing delays and heavy-tailed latency, OSCAR's
// parallel sampling across them, and eager reconstruction (Section 5.2),
// which sidesteps Amdahl's law by dropping tail-latency samples.
//
// Time is virtual: job latencies are drawn from a seeded heavy-tailed model
// and accumulated per device, so experiments measure the same queue dynamics
// a real fleet exhibits while running deterministically and instantly.
package qpu

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/backend"
	"repro/internal/exec"
	"repro/internal/landscape"
	"repro/internal/obs"
)

// LatencyModel describes one device's per-job latency: a lognormal queue
// delay plus a fixed execution time, with a probability of landing in the
// heavy tail (the paper observed 10x-30x tail latencies on public QPUs).
type LatencyModel struct {
	// QueueMedian is the median queuing delay in seconds.
	QueueMedian float64
	// Sigma is the lognormal shape parameter (0.5 is mild, 1.5 heavy).
	Sigma float64
	// Exec is the fixed circuit-batch execution time in seconds.
	Exec float64
	// TailProb is the probability a job hits the heavy tail.
	TailProb float64
	// TailFactor multiplies the latency of tail jobs (10-30 in the
	// paper's observations).
	TailFactor float64
}

// DefaultLatency is a cloud-QPU-like model: 60 s median queue, moderate
// spread, 5% of jobs hitting a 20x tail.
func DefaultLatency() LatencyModel {
	return LatencyModel{QueueMedian: 60, Sigma: 0.6, Exec: 5, TailProb: 0.05, TailFactor: 20}
}

// Sample draws one job latency in seconds.
func (m LatencyModel) Sample(rng *rand.Rand) float64 {
	return m.SampleBatch(rng, 1)
}

// SampleBatch draws the latency of a batch submission carrying jobs circuit
// evaluations: the queue delay (and any tail excursion) is paid once for the
// whole batch, while execution time scales with its size — the amortization
// real cloud QPUs reward and Section 5 exploits.
func (m LatencyModel) SampleBatch(rng *rand.Rand, jobs int) float64 {
	queue, exec := m.SampleBatchParts(rng, jobs)
	return queue + exec
}

// SampleBatchParts is SampleBatch with the latency decomposed into its queue
// and execution components (both tail-scaled, so queue+exec is the total
// latency). Real cloud QPUs report exactly this split through their queue
// timestamps, and it is the observation adaptive schedulers learn batch
// sizes from: the queue/execution ratio says how many jobs a batch must
// carry before the fixed queue delay stops dominating.
func (m LatencyModel) SampleBatchParts(rng *rand.Rand, jobs int) (queue, exec float64) {
	queue = m.QueueMedian * math.Exp(m.Sigma*rng.NormFloat64())
	exec = m.Exec * float64(jobs)
	if m.TailProb > 0 && rng.Float64() < m.TailProb {
		queue *= m.TailFactor
		exec *= m.TailFactor
	}
	return queue, exec
}

// Validate checks the model parameters.
func (m LatencyModel) Validate() error {
	for _, v := range []float64{m.QueueMedian, m.Sigma, m.Exec, m.TailProb, m.TailFactor} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("qpu: non-finite latency parameters %+v", m)
		}
	}
	if m.QueueMedian < 0 || m.Exec < 0 || m.Sigma < 0 {
		return fmt.Errorf("qpu: negative latency parameters %+v", m)
	}
	if m.TailProb < 0 || m.TailProb > 1 {
		return fmt.Errorf("qpu: tail probability %g out of [0,1]", m.TailProb)
	}
	if m.TailProb > 0 && m.TailFactor < 1 {
		return fmt.Errorf("qpu: tail factor %g < 1", m.TailFactor)
	}
	return nil
}

// Device is one QPU: an evaluator plus its latency behavior.
type Device struct {
	Name    string
	Eval    backend.Evaluator
	Latency LatencyModel
	// FailureProb is the probability a job fails on this device
	// (calibration drop-out, queue eviction). Failed jobs pay their
	// latency, then are rescheduled on the earliest-free *other* device
	// (or retried here if the fleet has a single device).
	FailureProb float64
	// Scenario, when set, perturbs the device's latency, failure
	// probability, and availability as a function of virtual time —
	// deterministic fault injection. Dispatch samples through the
	// scenario-adjusted condition at the submission time.
	Scenario Scenario
}

// Result is one completed job.
type Result struct {
	// Index is the flat grid index the job measured.
	Index int
	// Value is the measured cost.
	Value float64
	// Device is the index of the device that ran the job.
	Device int
	// Done is the virtual completion time in seconds.
	Done float64
}

// BatchGroup records one successful batch submission: which device ran it,
// how many jobs it carried, and the decomposition of its latency. Batch runs
// complete in groups — every job in a group shares one completion time — so
// group boundaries are the natural cut points for eager reconstruction.
type BatchGroup struct {
	// Device is the index of the device that ran the batch, or -1 for a
	// group served instantly from a shared execution cache.
	Device int
	// Size is the number of jobs the batch carried.
	Size int
	// Queue and Exec decompose the batch latency (both tail-scaled);
	// Queue/ (Exec/Size) is the ratio adaptive batch sizing learns from.
	Queue, Exec float64
	// Start and Done are the virtual submission and completion times.
	Start, Done float64
}

// RunReport summarizes a parallel run.
type RunReport struct {
	// Results lists all completed jobs sorted by completion time.
	Results []Result
	// Batches lists the successful batch submissions sorted by completion
	// time (nil for single-job runs). Failed attempts are counted in
	// Retries but not recorded here.
	Batches []BatchGroup
	// Makespan is the virtual time at which the last job finished.
	Makespan float64
	// SerialTime is the virtual time a single reference device would
	// need to run every job back to back.
	SerialTime float64
	// PerDevice counts jobs per device.
	PerDevice []int
	// Retries counts failed executions that were rescheduled.
	Retries int
}

// Speedup is SerialTime / Makespan.
func (r *RunReport) Speedup() float64 {
	if r.Makespan == 0 {
		return math.Inf(1)
	}
	return r.SerialTime / r.Makespan
}

// maxAttempts caps how often one job or batch may fail in a row on a single
// device before the run is abandoned.
const maxAttempts = 8

// attemptCap is the consecutive-failure budget for one job or batch: with a
// single device maxAttempts, with more the budget scales with fleet size —
// each failure already moves the work to a different device, so the run
// should only be abandoned once every device has had its share of chances,
// not after eight unlucky draws while healthy devices remain.
func attemptCap(devices int) int {
	if devices <= 1 {
		return maxAttempts
	}
	return maxAttempts * devices
}

// SerialBaseline draws the virtual time a single device needs to run jobs
// submitted individually, back to back, with failed submissions retried (and
// paid for) on that same device. It is the shared one-device no-batching
// baseline both Executor.RunBatched and the fleet scheduler report as
// SerialTime, so their Speedup figures stay comparable; it advances rng by
// the same draw sequence wherever it is used. The baseline is scenario-blind:
// it measures the undisturbed reference device, so speedup figures stay
// comparable across injected scenarios.
func SerialBaseline(d Device, rng *rand.Rand, jobs int) float64 {
	var serial float64
	for i := 0; i < jobs; i++ {
		for attempt := 0; ; attempt++ {
			serial += d.Latency.Sample(rng)
			if d.FailureProb <= 0 || rng.Float64() >= d.FailureProb || attempt+1 >= maxAttempts {
				break
			}
		}
	}
	return serial
}

// Executor schedules jobs across devices in virtual time.
//
// The latency streams are persistent: successive Run/RunBatched calls on one
// executor continue the same seeded RNG rather than replaying it, so a
// long-lived executor (a service simulating a fleet across many requests)
// draws fresh queue dynamics every run while the whole sequence stays
// deterministic given the seed. Two executors built with the same seed and
// run through the same call sequence reproduce each other exactly. Runs on
// one executor are serialized (they share the streams); use separate
// executors for concurrent fleets.
type Executor struct {
	devices []Device
	seed    int64

	mu sync.Mutex
	// rng drives scheduling draws (queue latency, tails, failures).
	rng *rand.Rand
	// serialRng drives RunBatched's single-device no-batching baseline from
	// its own stream so batched and unbatched runs stay independently
	// reproducible.
	serialRng *rand.Rand
}

// NewExecutor builds an executor over the given devices.
func NewExecutor(seed int64, devices ...Device) (*Executor, error) {
	if len(devices) == 0 {
		return nil, errors.New("qpu: no devices")
	}
	for _, d := range devices {
		if d.Eval == nil {
			return nil, fmt.Errorf("qpu: device %q has no evaluator", d.Name)
		}
		if err := d.Latency.Validate(); err != nil {
			return nil, err
		}
		if d.FailureProb < 0 || d.FailureProb >= 1 {
			return nil, fmt.Errorf("qpu: device %q failure probability %g out of [0,1)", d.Name, d.FailureProb)
		}
	}
	return &Executor{
		devices:   devices,
		seed:      seed,
		rng:       rand.New(rand.NewSource(seed)),
		serialRng: rand.New(rand.NewSource(seed + 1)),
	}, nil
}

// Run executes the cost evaluations for the given flat grid indices,
// assigning each job to the device that becomes free first (greedy
// list scheduling). The measured values are real; only time is simulated.
func (e *Executor) Run(g *landscape.Grid, indices []int) (*RunReport, error) {
	if len(indices) == 0 {
		return nil, errors.New("qpu: no jobs")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rng := e.rng
	free := make([]float64, len(e.devices))
	perDevice := make([]int, len(e.devices))
	results := make([]Result, 0, len(indices))
	var serial float64

	retries := 0
	budget := attemptCap(len(e.devices))
	for _, idx := range indices {
		var (
			done    float64
			dev     int
			exclude = -1
		)
		for attempt := 0; ; attempt++ {
			// Earliest-free device, skipping the one that just
			// failed this job when an alternative exists.
			dev = -1
			for d := 0; d < len(free); d++ {
				if d == exclude && len(free) > 1 {
					continue
				}
				if dev < 0 || free[d] < free[dev] {
					dev = d
				}
			}
			cond := e.devices[dev].ConditionAt(free[dev])
			lat := cond.Latency.Sample(rng)
			// The serial baseline runs the same jobs (same latency
			// draws, same failures) back to back on a single device.
			serial += lat
			free[dev] += lat
			if cond.Down || (cond.FailureProb > 0 && rng.Float64() < cond.FailureProb) {
				if attempt+1 >= budget {
					return nil, fmt.Errorf("qpu: job %d failed %d times in a row", idx, budget)
				}
				retries++
				exclude = dev
				continue
			}
			done = free[dev]
			break
		}
		params := g.Point(idx)
		v, err := e.devices[dev].Eval.Evaluate(params)
		if err != nil {
			return nil, fmt.Errorf("qpu: device %q failed: %w", e.devices[dev].Name, err)
		}
		perDevice[dev]++
		results = append(results, Result{Index: idx, Value: v, Device: dev, Done: done})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Done < results[j].Done })
	makespan := 0.0
	for _, f := range free {
		if f > makespan {
			makespan = f
		}
	}
	return &RunReport{
		Results:    results,
		Makespan:   makespan,
		SerialTime: serial,
		PerDevice:  perDevice,
		Retries:    retries,
	}, nil
}

// RunBatched executes the cost evaluations for the given flat grid indices
// with jobs grouped into batches of batchSize (<= 0 picks a default that
// gives each device a handful of batches). Each batch goes to the device
// that becomes free first and pays a single queue-latency draw for all its
// jobs — the amortization Section 5 intends — with values computed through
// the device evaluator's native batch path. A batch that fails is re-queued
// on the earliest-free other device, like single-job failures in Run.
//
// SerialTime in the report is the virtual time the fleet's first device
// would need with every job submitted individually, back to back — failed
// submissions retried (and paid for) on that same device, mirroring Run's
// accounting — so Speedup captures both fleet parallelism and queue
// amortization against the same one-device no-batching baseline.
func (e *Executor) RunBatched(ctx context.Context, g *landscape.Grid, indices []int, batchSize int) (*RunReport, error) {
	if len(indices) == 0 {
		return nil, errors.New("qpu: no jobs")
	}
	if batchSize <= 0 {
		batchSize = (len(indices) + 4*len(e.devices) - 1) / (4 * len(e.devices))
		if batchSize < 1 {
			batchSize = 1
		}
	}
	span, ctx := obs.Start(ctx, "qpu.run")
	defer span.End()
	span.SetAttr("jobs", len(indices))
	span.SetAttr("devices", len(e.devices))
	span.SetAttr("batch_size", batchSize)
	e.mu.Lock()
	defer e.mu.Unlock()
	rng, serialRng := e.rng, e.serialRng
	free := make([]float64, len(e.devices))
	perDevice := make([]int, len(e.devices))
	results := make([]Result, 0, len(indices))
	batches := make([]BatchGroup, 0, (len(indices)+batchSize-1)/batchSize)
	var serial float64
	retries := 0
	budget := attemptCap(len(e.devices))

	evals := make([]exec.BatchEvaluator, len(e.devices))
	for d := range e.devices {
		evals[d] = exec.FromEvaluator(e.devices[d].Eval)
	}

	ref := e.devices[0]
	for lo := 0; lo < len(indices); lo += batchSize {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + batchSize
		if hi > len(indices) {
			hi = len(indices)
		}
		batch := indices[lo:hi]
		serial += SerialBaseline(ref, serialRng, len(batch))
		var (
			done           float64
			dev            int
			exclude        = -1
			bstart, bq, bx float64
		)
		for attempt := 0; ; attempt++ {
			dev = -1
			for d := 0; d < len(free); d++ {
				if d == exclude && len(free) > 1 {
					continue
				}
				if dev < 0 || free[d] < free[dev] {
					dev = d
				}
			}
			start := free[dev]
			cond := e.devices[dev].ConditionAt(start)
			queue, execT := cond.Latency.SampleBatchParts(rng, len(batch))
			free[dev] += queue + execT
			if cond.Down || (cond.FailureProb > 0 && rng.Float64() < cond.FailureProb) {
				if attempt+1 >= budget {
					return nil, fmt.Errorf("qpu: batch [%d,%d) failed %d times in a row", lo, hi, budget)
				}
				retries++
				m := span.Child("qpu.retry")
				m.SetAttr("device", e.devices[dev].Name)
				m.SetVirtual(free[dev], free[dev])
				m.End()
				exclude = dev
				continue
			}
			done = free[dev]
			bstart, bq, bx = start, queue, execT
			batches = append(batches, BatchGroup{
				Device: dev, Size: len(batch), Queue: queue, Exec: execT,
				Start: start, Done: done,
			})
			break
		}
		bspan := span.Child("qpu.batch")
		bspan.SetAttr("device", e.devices[dev].Name)
		bspan.SetAttr("size", len(batch))
		bspan.SetVirtual(bstart, done)
		if qs := bspan.Child("queue"); qs != nil {
			qs.SetVirtual(bstart, bstart+bq)
			qs.End()
		}
		if xs := bspan.Child("exec"); xs != nil {
			xs.SetVirtual(bstart+bq, bstart+bq+bx)
			xs.End()
		}
		values, err := evals[dev].EvaluateBatch(ctx, g.Points(batch))
		bspan.SetError(err)
		bspan.End()
		if err != nil {
			return nil, fmt.Errorf("qpu: device %q failed: %w", e.devices[dev].Name, err)
		}
		perDevice[dev] += len(batch)
		for j, idx := range batch {
			results = append(results, Result{Index: idx, Value: values[j], Device: dev, Done: done})
		}
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Done < results[j].Done })
	sort.SliceStable(batches, func(i, j int) bool { return batches[i].Done < batches[j].Done })
	makespan := 0.0
	for _, f := range free {
		if f > makespan {
			makespan = f
		}
	}
	span.SetAttr("retries", retries)
	span.SetAttr("makespan_s", makespan)
	span.SetVirtual(0, makespan)
	return &RunReport{
		Results:    results,
		Batches:    batches,
		Makespan:   makespan,
		SerialTime: serial,
		PerDevice:  perDevice,
		Retries:    retries,
	}, nil
}

// EagerCut returns the prefix of results completed by the soft timeout, plus
// the time saved versus waiting for the full run. This is Section 5.2's
// eager reconstruction: a small loss of samples buys a large latency win
// when the timeout cuts off the heavy tail.
func EagerCut(rep *RunReport, timeout float64) (kept []Result, saved float64) {
	for _, r := range rep.Results {
		if r.Done <= timeout {
			kept = append(kept, r)
		}
	}
	saved = rep.Makespan - timeout
	if saved < 0 {
		saved = 0
	}
	return kept, saved
}

// TimeoutForFraction returns the completion time of the q-quantile job —
// the natural soft timeout to keep a fraction q of samples.
func TimeoutForFraction(rep *RunReport, q float64) float64 {
	if len(rep.Results) == 0 || q <= 0 {
		return 0
	}
	if q >= 1 {
		return rep.Makespan
	}
	k := int(q * float64(len(rep.Results)))
	if k < 1 {
		k = 1
	}
	return rep.Results[k-1].Done
}

// BatchTimeoutForFraction returns the batch-boundary soft timeout that keeps
// at least a fraction q of the jobs carried by the given batch groups: groups
// are taken in completion order until their cumulative size covers q of the
// jobs, and the completion time of the last included group is the timeout.
// Batch runs deliver results in groups, so cutting anywhere else would pay a
// group's full latency and then discard part of its samples.
func BatchTimeoutForFraction(batches []BatchGroup, q float64) float64 {
	total := 0
	for _, b := range batches {
		total += b.Size
	}
	if total == 0 || q <= 0 {
		return 0
	}
	sorted := append([]BatchGroup(nil), batches...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Done < sorted[j].Done })
	if q > 1 {
		q = 1
	}
	need := int(math.Ceil(q * float64(total)))
	covered := 0
	for _, b := range sorted {
		covered += b.Size
		if covered >= need {
			return b.Done
		}
	}
	return sorted[len(sorted)-1].Done
}

// EagerCutBatched is EagerCut with the cut placed at a batch boundary: the
// soft timeout is the BatchTimeoutForFraction(q) quantile over the report's
// batch groups, so whole groups are kept or dropped and no partially-paid
// batch is split. Reports without batch records (single-job runs) degrade to
// the per-job quantile policy of TimeoutForFraction. It returns the kept
// results, the effective timeout, and the time saved versus waiting for the
// full run.
func EagerCutBatched(rep *RunReport, q float64) (kept []Result, timeout, saved float64) {
	if len(rep.Batches) > 0 {
		timeout = BatchTimeoutForFraction(rep.Batches, q)
	} else {
		timeout = TimeoutForFraction(rep, q)
	}
	kept, saved = EagerCut(rep, timeout)
	return kept, timeout, saved
}

// SplitIndices partitions sampled indices between two devices with the
// given fraction going to the first — the mixing ratios of Table 5 and
// Figure 8 ("20%-80%" etc.).
func SplitIndices(indices []int, fracFirst float64, rng *rand.Rand) (first, second []int, err error) {
	if fracFirst < 0 || fracFirst > 1 {
		return nil, nil, fmt.Errorf("qpu: fraction %g out of [0,1]", fracFirst)
	}
	perm := rng.Perm(len(indices))
	nFirst := int(math.Round(fracFirst * float64(len(indices))))
	pick := make(map[int]bool, nFirst)
	for _, p := range perm[:nFirst] {
		pick[p] = true
	}
	for i, idx := range indices {
		if pick[i] {
			first = append(first, idx)
		} else {
			second = append(second, idx)
		}
	}
	return first, second, nil
}
