package qpu

import (
	"context"
	"strings"
	"testing"
)

func baseCond() Condition {
	return Condition{
		Latency:     LatencyModel{QueueMedian: 30, Sigma: 0.5, Exec: 5},
		FailureProb: 0.01,
	}
}

func TestDriftRampsExec(t *testing.T) {
	d := Drift{Start: 100, Rate: 0.01, Max: 4}
	if got := d.At(50, baseCond()); got != baseCond() {
		t.Fatalf("drift before Start changed the condition: %+v", got)
	}
	got := d.At(200, baseCond())
	want := baseCond().Latency.Exec * 2 // 1 + 0.01*100
	if got.Latency.Exec != want {
		t.Fatalf("exec at t=200: got %g want %g", got.Latency.Exec, want)
	}
	if got.Latency.QueueMedian != baseCond().Latency.QueueMedian {
		t.Fatalf("drift touched queue median")
	}
	// Far into the drift the multiplier is capped at Max.
	got = d.At(1e6, baseCond())
	if want := baseCond().Latency.Exec * 4; got.Latency.Exec != want {
		t.Fatalf("capped exec: got %g want %g", got.Latency.Exec, want)
	}
}

func TestDropoutWindow(t *testing.T) {
	d := Dropout{Start: 100, Duration: 50}
	for _, tc := range []struct {
		t    float64
		down bool
	}{{0, false}, {99, false}, {100, true}, {149, true}, {150, false}, {1e4, false}} {
		if got := d.At(tc.t, baseCond()); got.Down != tc.down {
			t.Fatalf("dropout at t=%g: down=%v want %v", tc.t, got.Down, tc.down)
		}
	}
}

func TestQueueSpikesDeterministicAndOrderIndependent(t *testing.T) {
	// Two instances with the same seed agree at every time, even when one
	// is queried back to front (window materialization must not depend on
	// query order).
	a := NewQueueSpikes(7, 200, 50, 10)
	b := NewQueueSpikes(7, 200, 50, 10)
	times := make([]float64, 0, 200)
	for i := 0; i < 200; i++ {
		times = append(times, float64(i)*13.7)
	}
	spiked := 0
	for _, tt := range times {
		ca := a.At(tt, baseCond())
		if ca.Latency.QueueMedian > baseCond().Latency.QueueMedian {
			spiked++
		}
	}
	for i := len(times) - 1; i >= 0; i-- {
		ca := a.At(times[i], baseCond())
		cb := b.At(times[i], baseCond())
		if ca != cb {
			t.Fatalf("same-seed spikes disagree at t=%g: %+v vs %+v", times[i], ca, cb)
		}
	}
	if spiked == 0 || spiked == len(times) {
		t.Fatalf("spike windows degenerate: %d/%d samples spiked", spiked, len(times))
	}
}

func TestRetryStormRaisesFailureProb(t *testing.T) {
	s := NewRetryStorm(3, 100, 40, 0.8)
	inside, outside := 0, 0
	for i := 0; i < 400; i++ {
		c := s.At(float64(i)*7.3, baseCond())
		switch c.FailureProb {
		case 0.8:
			inside++
		case baseCond().FailureProb:
			outside++
		default:
			t.Fatalf("unexpected failure prob %g", c.FailureProb)
		}
	}
	if inside == 0 || outside == 0 {
		t.Fatalf("storm windows degenerate: %d inside, %d outside", inside, outside)
	}
	// A storm below the device's base rate leaves the base rate alone.
	weak := NewRetryStorm(3, 100, 40, 0.001)
	base := baseCond()
	for i := 0; i < 400; i++ {
		if c := weak.At(float64(i)*7.3, base); c.FailureProb != base.FailureProb {
			t.Fatalf("weak storm lowered failure prob to %g", c.FailureProb)
		}
	}
}

func TestComposeChainsScenarios(t *testing.T) {
	c := Compose(Drift{Start: 0, Rate: 0.01}, Dropout{Start: 100, Duration: 50})
	if got := c.Kind(); got != "drift+dropout" {
		t.Fatalf("composite kind %q", got)
	}
	cond := c.At(120, baseCond())
	if !cond.Down {
		t.Fatalf("composite dropped the dropout")
	}
	if cond.Latency.Exec <= baseCond().Latency.Exec {
		t.Fatalf("composite dropped the drift")
	}
}

func TestConditionAtWithoutScenario(t *testing.T) {
	d := Device{Latency: baseCond().Latency, FailureProb: 0.25}
	got := d.ConditionAt(123)
	if got.Latency != d.Latency || got.FailureProb != 0.25 || got.Down {
		t.Fatalf("bare ConditionAt mangled the base condition: %+v", got)
	}
}

func TestRunBatchedSurvivesDropout(t *testing.T) {
	g, ev := testGrid(t), evalFunc("chaos")
	lat := LatencyModel{QueueMedian: 20, Sigma: 0.3, Exec: 2}
	// One device is dark from the start for a long window; the other is
	// healthy. Every batch first tried on the dark device must reschedule
	// and the run must still deliver every job.
	dark := Device{Name: "dark", Eval: ev, Latency: lat, Scenario: Dropout{Start: 0, Duration: 1e9}}
	ok := Device{Name: "ok", Eval: ev, Latency: lat}
	e, err := NewExecutor(11, dark, ok)
	if err != nil {
		t.Fatal(err)
	}
	indices := make([]int, 60)
	for i := range indices {
		indices[i] = i
	}
	rep, err := e.RunBatched(context.Background(), g, indices, 10)
	if err != nil {
		t.Fatalf("RunBatched under dropout: %v", err)
	}
	if len(rep.Results) != len(indices) {
		t.Fatalf("got %d results, want %d", len(rep.Results), len(indices))
	}
	if rep.Retries == 0 {
		t.Fatalf("expected retries from the dark device")
	}
	if rep.PerDevice[0] != 0 {
		t.Fatalf("dark device completed %d jobs", rep.PerDevice[0])
	}
}

func TestRunSurvivesHighFailureMultiDevice(t *testing.T) {
	// Satellite: with >1 device the job must move elsewhere rather than
	// abandoning the run after 8 consecutive failures. Two very flaky
	// devices plus a solid one must complete every job.
	g, ev := testGrid(t), evalFunc("chaos")
	lat := LatencyModel{QueueMedian: 5, Sigma: 0.3, Exec: 1}
	e, err := NewExecutor(5,
		Device{Name: "flaky1", Eval: ev, Latency: lat, FailureProb: 0.9},
		Device{Name: "flaky2", Eval: ev, Latency: lat, FailureProb: 0.9},
		Device{Name: "solid", Eval: ev, Latency: lat},
	)
	if err != nil {
		t.Fatal(err)
	}
	indices := make([]int, 100)
	for i := range indices {
		indices[i] = i
	}
	rep, err := e.Run(g, indices)
	if err != nil {
		t.Fatalf("Run with flaky fleet: %v", err)
	}
	if len(rep.Results) != len(indices) {
		t.Fatalf("got %d results, want %d", len(rep.Results), len(indices))
	}
	if rep.Retries == 0 {
		t.Fatalf("expected retries")
	}
}

func TestSingleDeviceDropoutStillErrors(t *testing.T) {
	// With one device and nowhere to reschedule, a permanently dark device
	// must surface an error rather than loop forever.
	g, ev := testGrid(t), evalFunc("chaos")
	lat := LatencyModel{QueueMedian: 5, Sigma: 0.3, Exec: 1}
	e, err := NewExecutor(1, Device{Name: "dark", Eval: ev, Latency: lat, Scenario: Dropout{Start: 0, Duration: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(g, []int{0, 1, 2})
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("want hard failure on single dark device, got %v", err)
	}
}

func TestRunBatchedScenarioDeterministic(t *testing.T) {
	g, ev := testGrid(t), evalFunc("chaos")
	lat := LatencyModel{QueueMedian: 20, Sigma: 0.5, Exec: 2, TailProb: 0.05, TailFactor: 15}
	mk := func() *Executor {
		e, err := NewExecutor(17,
			Device{Name: "a", Eval: ev, Latency: lat, Scenario: NewQueueSpikes(5, 300, 80, 8)},
			Device{Name: "b", Eval: ev, Latency: lat, Scenario: NewRetryStorm(6, 250, 60, 0.7)},
		)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	indices := make([]int, 80)
	for i := range indices {
		indices[i] = i
	}
	r1, err := mk().RunBatched(context.Background(), g, indices, 8)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mk().RunBatched(context.Background(), g, indices, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.Retries != r2.Retries || len(r1.Batches) != len(r2.Batches) {
		t.Fatalf("scenario run not reproducible: makespan %g/%g retries %d/%d batches %d/%d",
			r1.Makespan, r2.Makespan, r1.Retries, r2.Retries, len(r1.Batches), len(r2.Batches))
	}
}

func TestWindowsNonOverlapping(t *testing.T) {
	w := newWindows(9, 50, 20)
	// Force materialization far out, then check ordering invariants.
	w.in(1e5)
	prevEnd := 0.0
	for i, s := range w.starts {
		if s < prevEnd {
			t.Fatalf("window %d starts at %g before previous end %g", i, s, prevEnd)
		}
		prevEnd = s + w.duration
	}
	if len(w.starts) < 100 {
		t.Fatalf("expected many windows materialized, got %d", len(w.starts))
	}
}
