package qpu

import (
	"context"
	"errors"
	"testing"
)

// TestRunBatchedValuesAndAmortization checks batch jobs return the same
// measured values as single-job scheduling while amortizing queue latency
// into a shorter makespan.
func TestRunBatchedValuesAndAmortization(t *testing.T) {
	g := testGrid(t)
	lat := LatencyModel{QueueMedian: 60, Sigma: 0.4, Exec: 1}
	ex, err := NewExecutor(5,
		Device{Name: "a", Eval: evalFunc("a"), Latency: lat},
		Device{Name: "b", Eval: evalFunc("b"), Latency: lat},
	)
	if err != nil {
		t.Fatal(err)
	}
	indices := make([]int, g.Size())
	for i := range indices {
		indices[i] = i
	}
	single, err := ex.Run(g, indices)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := ex.RunBatched(context.Background(), g, indices, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched.Results) != len(indices) {
		t.Fatalf("%d results want %d", len(batched.Results), len(indices))
	}
	// Same measured values per index (time is simulated, values are real).
	want := map[int]float64{}
	for _, r := range single.Results {
		want[r.Index] = r.Value
	}
	for _, r := range batched.Results {
		if r.Value != want[r.Index] {
			t.Fatalf("index %d: batched value %g, single-job value %g", r.Index, r.Value, want[r.Index])
		}
	}
	// 100 jobs on 2 devices: 50 queue waits each unbatched, 5 batched.
	if batched.Makespan >= single.Makespan/2 {
		t.Fatalf("batching did not amortize queue latency: batched makespan %g vs single %g",
			batched.Makespan, single.Makespan)
	}
	if sp := batched.Speedup(); sp <= 1 {
		t.Fatalf("batched speedup %g, want > 1", sp)
	}
	if batched.PerDevice[0]+batched.PerDevice[1] != len(indices) {
		t.Fatalf("per-device counts %v do not sum to %d", batched.PerDevice, len(indices))
	}
}

func TestRunBatchedDeterministic(t *testing.T) {
	g := testGrid(t)
	indices := []int{3, 1, 4, 1, 5, 9, 2, 6}
	// Reproducibility is across executors built with the same seed: one
	// executor's stream advances between calls (see
	// TestRunBatchedAdvancesStreamAcrossCalls).
	run := func() *RunReport {
		ex, _ := NewExecutor(9, Device{Name: "a", Eval: evalFunc("a"), Latency: DefaultLatency()})
		r, err := ex.RunBatched(context.Background(), g, indices, 3)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.Makespan != r2.Makespan || r1.SerialTime != r2.SerialTime {
		t.Fatalf("virtual time not reproducible: %g/%g vs %g/%g",
			r1.Makespan, r1.SerialTime, r2.Makespan, r2.SerialTime)
	}
	for i := range r1.Results {
		if r1.Results[i] != r2.Results[i] {
			t.Fatalf("result %d differs across runs", i)
		}
	}
}

// TestRunBatchedAdvancesStreamAcrossCalls is the regression test for the
// replayed-RNG bug: successive RunBatched calls on one executor used to
// rebuild the RNG from the seed and draw identical latencies. A persistent
// executor must see fresh queue dynamics per run (values stay identical —
// only virtual time is random).
func TestRunBatchedAdvancesStreamAcrossCalls(t *testing.T) {
	g := testGrid(t)
	ex, _ := NewExecutor(9, Device{Name: "a", Eval: evalFunc("a"), Latency: DefaultLatency()})
	indices := []int{3, 1, 4, 1, 5, 9, 2, 6}
	r1, err := ex.RunBatched(context.Background(), g, indices, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ex.RunBatched(context.Background(), g, indices, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan == r2.Makespan && r1.SerialTime == r2.SerialTime {
		t.Fatalf("two runs on one executor replayed identical latency draws: makespan %g, serial %g",
			r1.Makespan, r1.SerialTime)
	}
	for i := range r1.Results {
		if r1.Results[i].Index != r2.Results[i].Index ||
			r1.Results[i].Value != r2.Results[i].Value {
			t.Fatalf("measured values changed across runs: %+v vs %+v", r1.Results[i], r2.Results[i])
		}
	}
}

func TestRunBatchedFailureReschedules(t *testing.T) {
	g := testGrid(t)
	ex, err := NewExecutor(31,
		Device{Name: "flaky", Eval: evalFunc("f"), Latency: DefaultLatency(), FailureProb: 0.9},
		Device{Name: "solid", Eval: evalFunc("s"), Latency: DefaultLatency()},
	)
	if err != nil {
		t.Fatal(err)
	}
	indices := make([]int, 40)
	for i := range indices {
		indices[i] = i
	}
	rep, err := ex.RunBatched(context.Background(), g, indices, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("no retries recorded at 90% failure probability")
	}
	if len(rep.Results) != len(indices) {
		t.Fatalf("%d results want %d", len(rep.Results), len(indices))
	}
}

func TestRunBatchedCancellation(t *testing.T) {
	g := testGrid(t)
	ex, _ := NewExecutor(1, Device{Name: "a", Eval: evalFunc("a"), Latency: DefaultLatency()})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.RunBatched(ctx, g, []int{0, 1, 2}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunBatchedDefaultBatchSize(t *testing.T) {
	g := testGrid(t)
	ex, _ := NewExecutor(2, Device{Name: "a", Eval: evalFunc("a"), Latency: DefaultLatency()})
	indices := make([]int, 17)
	for i := range indices {
		indices[i] = i
	}
	rep, err := ex.RunBatched(context.Background(), g, indices, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 17 {
		t.Fatalf("%d results want 17", len(rep.Results))
	}
	if _, err := ex.RunBatched(context.Background(), g, nil, 0); err == nil {
		t.Fatal("want error for empty job list")
	}
}
