// Package dct provides fast Fourier and discrete cosine transforms used as
// the sparsifying basis for compressed-sensing landscape reconstruction.
//
// The package implements an iterative radix-2 Cooley-Tukey FFT for
// power-of-two lengths and Bluestein's chirp-z algorithm for arbitrary
// lengths, and builds orthonormal DCT-II/DCT-III transforms (1-D and 2-D) on
// top of them. All transforms allocate their twiddle tables once per size via
// plans so the compressed-sensing solver can call them in a tight loop.
package dct

import (
	"fmt"
	"math"
	"math/cmplx"
)

// fftPlan caches the bit-reversal permutation and twiddle factors for a
// radix-2 FFT of a fixed power-of-two size, plus Bluestein scratch for
// arbitrary sizes.
type fftPlan struct {
	n       int // transform size (arbitrary)
	pow2    int // radix-2 size actually used (n if n is a power of two)
	rev     []int
	twiddle []complex128 // forward twiddles for the radix-2 core

	// Bluestein state (nil when n is a power of two).
	chirp    []complex128 // b[k] = exp(i*pi*k^2/n)
	chirpFFT []complex128 // FFT of the zero-padded chirp filter
	scratch  []complex128
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newFFTPlan builds a plan for length-n complex FFTs.
func newFFTPlan(n int) *fftPlan {
	if n <= 0 {
		panic(fmt.Sprintf("dct: invalid FFT size %d", n))
	}
	p := &fftPlan{n: n}
	if isPow2(n) {
		p.pow2 = n
		p.initRadix2(n)
		return p
	}
	// Bluestein: convolution size must be >= 2n-1 and a power of two.
	m := nextPow2(2*n - 1)
	p.pow2 = m
	p.initRadix2(m)

	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k can overflow for huge n; sizes here are grid dimensions
		// (<= a few thousand), so this is safe. Reduce mod 2n for
		// numerical stability anyway.
		kk := (int64(k) * int64(k)) % int64(2*n)
		theta := math.Pi * float64(kk) / float64(n)
		p.chirp[k] = cmplx.Exp(complex(0, theta))
	}
	filter := make([]complex128, m)
	filter[0] = p.chirp[0]
	for k := 1; k < n; k++ {
		filter[k] = p.chirp[k]
		filter[m-k] = p.chirp[k]
	}
	p.radix2(filter, false)
	p.chirpFFT = filter
	p.scratch = make([]complex128, m)
	return p
}

func (p *fftPlan) initRadix2(m int) {
	p.rev = make([]int, m)
	bits := 0
	for 1<<bits < m {
		bits++
	}
	for i := 0; i < m; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		p.rev[i] = r
	}
	p.twiddle = make([]complex128, m/2)
	for i := 0; i < m/2; i++ {
		theta := -2 * math.Pi * float64(i) / float64(m)
		p.twiddle[i] = cmplx.Exp(complex(0, theta))
	}
}

// radix2 performs an in-place power-of-two FFT (inverse when inv is true,
// without the 1/m normalization).
func (p *fftPlan) radix2(a []complex128, inv bool) {
	m := len(a)
	for i, r := range p.rev[:m] {
		if i < r {
			a[i], a[r] = a[r], a[i]
		}
	}
	for size := 2; size <= m; size <<= 1 {
		half := size / 2
		step := m / size
		for start := 0; start < m; start += size {
			for j := 0; j < half; j++ {
				w := p.twiddle[j*step]
				if inv {
					w = cmplx.Conj(w)
				}
				u := a[start+j]
				v := a[start+j+half] * w
				a[start+j] = u + v
				a[start+j+half] = u - v
			}
		}
	}
}

// Forward computes the in-place forward DFT of a, which must have length n.
func (p *fftPlan) Forward(a []complex128) { p.transform(a, false) }

// Inverse computes the in-place inverse DFT of a (normalized by 1/n).
func (p *fftPlan) Inverse(a []complex128) {
	p.transform(a, true)
	scale := complex(1/float64(p.n), 0)
	for i := range a {
		a[i] *= scale
	}
}

func (p *fftPlan) transform(a []complex128, inv bool) {
	if len(a) != p.n {
		panic(fmt.Sprintf("dct: FFT input length %d, plan size %d", len(a), p.n))
	}
	if p.chirp == nil {
		p.radix2(a, inv)
		return
	}
	// Bluestein: X[k] = conj(b[k]) * sum_n (a[n] conj(b[n])) b[k-n].
	// For the inverse transform conjugate the chirp.
	m := p.pow2
	s := p.scratch
	for i := range s {
		s[i] = 0
	}
	for k := 0; k < p.n; k++ {
		c := p.chirp[k]
		if !inv {
			c = cmplx.Conj(c)
		}
		s[k] = a[k] * c
	}
	p.radix2(s, false)
	if !inv {
		for i := 0; i < m; i++ {
			s[i] *= p.chirpFFT[i]
		}
	} else {
		// The inverse chirp filter is the conjugate of the forward one;
		// conj(FFT(f)) equals FFT of conj(f) reversed, but since the
		// filter is symmetric (f[k] == f[m-k]) the FFT of the
		// conjugated filter is simply the conjugate of chirpFFT.
		for i := 0; i < m; i++ {
			s[i] *= cmplx.Conj(p.chirpFFT[i])
		}
	}
	p.radix2(s, true)
	invM := complex(1/float64(m), 0)
	for k := 0; k < p.n; k++ {
		c := p.chirp[k]
		if !inv {
			c = cmplx.Conj(c)
		}
		a[k] = s[k] * invM * c
	}
}
