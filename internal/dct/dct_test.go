package dct

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// dftDirect computes a reference O(n^2) DFT.
func dftDirect(a []complex128, inv bool) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	sign := -1.0
	if inv {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			theta := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += a[j] * cmplx.Exp(complex(0, theta))
		}
		if inv {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func TestFFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 15, 16, 50, 100, 144, 225, 256} {
		p := newFFTPlan(n)
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := dftDirect(a, false)
		got := append([]complex128(nil), a...)
		p.Forward(got)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: FFT[%d]=%v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 8, 15, 50, 99, 128, 225} {
		p := newFFTPlan(n)
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := append([]complex128(nil), a...)
		p.Forward(b)
		p.Inverse(b)
		for i := range a {
			if cmplx.Abs(a[i]-b[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: roundtrip[%d]=%v want %v", n, i, b[i], a[i])
			}
		}
	}
}

func TestDCTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 7, 12, 15, 50, 100, 225} {
		p := NewPlan(n)
		x := randVec(rng, n)
		want := ForwardDirect(x)
		got := make([]float64, n)
		p.Forward(got, x)
		for i := range got {
			if !approxEq(got[i], want[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d: DCT[%d]=%g want %g", n, i, got[i], want[i])
			}
		}
		back := make([]float64, n)
		p.Inverse(back, got)
		for i := range back {
			if !approxEq(back[i], x[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d: IDCT roundtrip[%d]=%g want %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestDCTInverseMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{2, 5, 12, 50} {
		p := NewPlan(n)
		y := randVec(rng, n)
		want := InverseDirect(y)
		got := make([]float64, n)
		p.Inverse(got, y)
		for i := range got {
			if !approxEq(got[i], want[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d: IDCT[%d]=%g want %g", n, i, got[i], want[i])
			}
		}
	}
}

// TestDCTIsometry checks the Parseval property of the orthonormal DCT, which
// the CS solver relies on for its unit step size.
func TestDCTIsometry(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(5))}
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 300 {
			raw = raw[:300]
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				raw[i] = float64(i%17) - 8
			}
		}
		p := NewPlan(len(raw))
		out := make([]float64, len(raw))
		p.Forward(out, raw)
		var n1, n2 float64
		for i := range raw {
			n1 += raw[i] * raw[i]
			n2 += out[i] * out[i]
		}
		return math.Abs(n1-n2) <= 1e-8*(1+n1)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDCTLinearity is a property test: DCT(a*x + b*y) == a*DCT(x) + b*DCT(y).
func TestDCTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewPlan(40)
	for trial := 0; trial < 25; trial++ {
		x := randVec(rng, 40)
		y := randVec(rng, 40)
		a, b := rng.NormFloat64(), rng.NormFloat64()
		mix := make([]float64, 40)
		for i := range mix {
			mix[i] = a*x[i] + b*y[i]
		}
		fx, fy, fm := make([]float64, 40), make([]float64, 40), make([]float64, 40)
		p.Forward(fx, x)
		p.Forward(fy, y)
		p.Forward(fm, mix)
		for i := range fm {
			want := a*fx[i] + b*fy[i]
			if !approxEq(fm[i], want, 1e-9) {
				t.Fatalf("linearity violated at %d: %g want %g", i, fm[i], want)
			}
		}
	}
}

func TestDCTConstantSignal(t *testing.T) {
	n := 64
	p := NewPlan(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = 3.5
	}
	out := make([]float64, n)
	p.Forward(out, x)
	if !approxEq(out[0], 3.5*math.Sqrt(float64(n)), 1e-9) {
		t.Errorf("DC coefficient = %g, want %g", out[0], 3.5*math.Sqrt(float64(n)))
	}
	for k := 1; k < n; k++ {
		if !approxEq(out[k], 0, 1e-9) {
			t.Errorf("AC coefficient %d = %g, want 0", k, out[k])
		}
	}
}

// TestDCTPureCosine checks that a single cosine mode concentrates all energy
// in one coefficient — the sparsity premise of OSCAR.
func TestDCTPureCosine(t *testing.T) {
	n := 100
	p := NewPlan(n)
	for _, mode := range []int{1, 3, 17, 49} {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Cos(math.Pi * (2*float64(i) + 1) * float64(mode) / (2 * float64(n)))
		}
		out := make([]float64, n)
		p.Forward(out, x)
		for k := range out {
			if k == mode {
				if math.Abs(out[k]) < 1 {
					t.Errorf("mode %d: coefficient too small: %g", mode, out[k])
				}
				continue
			}
			if !approxEq(out[k], 0, 1e-9) {
				t.Errorf("mode %d: leakage at %d: %g", mode, k, out[k])
			}
		}
	}
}

func TestPlan2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {12, 15}, {50, 100}, {144, 225}} {
		rows, cols := shape[0], shape[1]
		p := NewPlan2D(rows, cols)
		x := randVec(rng, rows*cols)
		y := make([]float64, rows*cols)
		p.Forward(y, x)
		back := make([]float64, rows*cols)
		p.Inverse(back, y)
		for i := range x {
			if !approxEq(back[i], x[i], 1e-8) {
				t.Fatalf("%dx%d: roundtrip[%d]=%g want %g", rows, cols, i, back[i], x[i])
			}
		}
	}
}

func TestPlan2DMatchesSeparableDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows, cols := 6, 9
	p := NewPlan2D(rows, cols)
	x := randVec(rng, rows*cols)
	got := make([]float64, rows*cols)
	p.Forward(got, x)

	// Direct separable reference: DCT rows, then columns.
	tmp := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		copy(tmp[r*cols:(r+1)*cols], ForwardDirect(x[r*cols:(r+1)*cols]))
	}
	want := make([]float64, rows*cols)
	col := make([]float64, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = tmp[r*cols+c]
		}
		fc := ForwardDirect(col)
		for r := 0; r < rows; r++ {
			want[r*cols+c] = fc[r]
		}
	}
	for i := range got {
		if !approxEq(got[i], want[i], 1e-9) {
			t.Fatalf("2-D DCT[%d]=%g want %g", i, got[i], want[i])
		}
	}
}

func TestPlan2DIsometry(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := NewPlan2D(17, 23)
	x := randVec(rng, 17*23)
	y := make([]float64, len(x))
	p.Forward(y, x)
	var n1, n2 float64
	for i := range x {
		n1 += x[i] * x[i]
		n2 += y[i] * y[i]
	}
	if math.Abs(n1-n2) > 1e-8*n1 {
		t.Fatalf("2-D isometry violated: %g vs %g", n1, n2)
	}
}

// TestPlan2DParallelBitIdentical is the sharded-solver contract: a parallel
// plan must produce bit-for-bit the serial plan's output for every worker
// count, both directions, on grids above and below the serial fallback.
func TestPlan2DParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := [][2]int{{50, 100}, {64, 64}, {70, 90}, {1, 8192}, {4096, 1}, {3, 5}}
	for _, shape := range shapes {
		rows, cols := shape[0], shape[1]
		serial := NewPlan2D(rows, cols)
		x := randVec(rng, rows*cols)
		wantF := make([]float64, rows*cols)
		serial.Forward(wantF, x)
		wantI := make([]float64, rows*cols)
		serial.Inverse(wantI, x)
		for _, workers := range []int{0, 2, 3, 4, 8} {
			par := NewPlan2DWorkers(rows, cols, workers)
			gotF := make([]float64, rows*cols)
			par.Forward(gotF, x)
			gotI := make([]float64, rows*cols)
			par.Inverse(gotI, x)
			for i := range wantF {
				if gotF[i] != wantF[i] {
					t.Fatalf("%dx%d workers=%d: Forward[%d]=%v, serial %v", rows, cols, workers, i, gotF[i], wantF[i])
				}
				if gotI[i] != wantI[i] {
					t.Fatalf("%dx%d workers=%d: Inverse[%d]=%v, serial %v", rows, cols, workers, i, gotI[i], wantI[i])
				}
			}
		}
	}
}

// TestPlan2DDegenerateAxisMatches1D: a 1xN (or Nx1) 2-D plan must equal the
// 1-D plan bitwise — the length-1 pass on the degenerate axis is the exact
// identity and is skipped.
func TestPlan2DDegenerateAxisMatches1D(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 7, 100, 5000} {
		x := randVec(rng, n)
		want := make([]float64, n)
		NewPlan(n).Forward(want, x)
		for _, shape := range [][2]int{{1, n}, {n, 1}} {
			p := NewPlan2D(shape[0], shape[1])
			got := make([]float64, n)
			p.Forward(got, x)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%dx%d: Forward[%d]=%v, 1-D plan %v", shape[0], shape[1], i, got[i], want[i])
				}
			}
			back := make([]float64, n)
			p.Inverse(back, got)
			for i := range back {
				if !approxEq(back[i], x[i], 1e-9) {
					t.Fatalf("%dx%d: roundtrip[%d]=%g want %g", shape[0], shape[1], i, back[i], x[i])
				}
			}
		}
	}
}

// TestPlan2DSerialFallback pins the small-grid rule: under 4096 points a
// parallel plan degrades to one worker.
func TestPlan2DSerialFallback(t *testing.T) {
	if w := NewPlan2DWorkers(10, 10, 8).Workers(); w != 1 {
		t.Errorf("10x10 plan reports %d workers, want serial fallback 1", w)
	}
	if w := NewPlan2DWorkers(63, 65, 8).Workers(); w != 1 {
		t.Errorf("63x65 (4095 pts) plan reports %d workers, want 1", w)
	}
	if w := NewPlan2DWorkers(64, 64, 8).Workers(); w != 8 {
		t.Errorf("64x64 plan reports %d workers, want 8", w)
	}
	// Worker count never exceeds the longer grid side.
	if w := NewPlan2DWorkers(2, 4096, 16384).Workers(); w > 4096 {
		t.Errorf("2x4096 plan reports %d workers, want <= 4096", w)
	}
	if NewPlan2DWorkers(64, 64, 0).Workers() < 1 {
		t.Error("workers=0 must resolve to at least one worker")
	}
}

// TestPlan2DParallelReuse exercises a parallel plan repeatedly (the FISTA
// loop's access pattern) to shake out scratch-buffer sharing bugs under the
// race detector.
func TestPlan2DParallelReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p := NewPlan2DWorkers(50, 100, 4)
	x := randVec(rng, 5000)
	first := make([]float64, 5000)
	p.Forward(first, x)
	for trial := 0; trial < 10; trial++ {
		got := make([]float64, 5000)
		p.Forward(got, x)
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: Forward[%d] drifted: %v vs %v", trial, i, got[i], first[i])
			}
		}
	}
}

func TestPlanPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size 0")
		}
	}()
	NewPlan(0)
}

func TestPlan2DPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape 0x5")
		}
	}()
	NewPlan2D(0, 5)
}

func BenchmarkDCTFFT1024(b *testing.B) {
	p := NewPlan(1024)
	x := randVec(rand.New(rand.NewSource(1)), 1024)
	out := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(out, x)
	}
}

func BenchmarkDCTDirect1024(b *testing.B) {
	x := randVec(rand.New(rand.NewSource(1)), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForwardDirect(x)
	}
}
