package dct

import (
	"fmt"
	"math"
)

// Plan computes orthonormal DCT-II (forward) and DCT-III (inverse)
// transforms of a fixed length. With the orthonormal convention the forward
// and inverse transforms are transposes of each other, so the transform is an
// isometry: ||Forward(x)||_2 == ||x||_2. That property is what makes the
// partial-DCT compressed-sensing operator have unit Lipschitz constant.
type Plan struct {
	n    int
	fft  *fftPlan // size 2n
	c    []float64
	buf  []complex128
	cosK []complex128 // exp(-i*pi*k/(2n))
}

// NewPlan creates a DCT plan for vectors of length n.
func NewPlan(n int) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("dct: invalid DCT size %d", n))
	}
	p := &Plan{
		n:    n,
		fft:  newFFTPlan(2 * n),
		c:    make([]float64, n),
		buf:  make([]complex128, 2*n),
		cosK: make([]complex128, n),
	}
	p.c[0] = math.Sqrt(1 / float64(n))
	for k := 1; k < n; k++ {
		p.c[k] = math.Sqrt(2 / float64(n))
	}
	for k := 0; k < n; k++ {
		theta := -math.Pi * float64(k) / float64(2*n)
		p.cosK[k] = complex(math.Cos(theta), math.Sin(theta))
	}
	return p
}

// N reports the transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the orthonormal DCT-II of src into dst. dst and src may
// be the same slice. Both must have length n.
func (p *Plan) Forward(dst, src []float64) {
	p.check(dst, src)
	n := p.n
	// Mirror extension: y = [x, reverse(x)] has a 2n-point DFT whose
	// twiddled real part is the (unnormalized) DCT-II of x.
	for i := 0; i < n; i++ {
		v := complex(src[i], 0)
		p.buf[i] = v
		p.buf[2*n-1-i] = v
	}
	p.fft.Forward(p.buf)
	for k := 0; k < n; k++ {
		d := real(p.buf[k]*p.cosK[k]) / 2
		dst[k] = p.c[k] * d
	}
}

// Inverse computes the orthonormal DCT-III (the inverse of Forward) of src
// into dst. dst and src may be the same slice.
func (p *Plan) Inverse(dst, src []float64) {
	p.check(dst, src)
	n := p.n
	// Reverse the forward pipeline: rebuild the 2n-point spectrum of the
	// mirrored sequence from the cosine coefficients, then inverse DFT.
	p.buf[n] = 0
	for k := 0; k < n; k++ {
		d := complex(2*src[k]/p.c[k], 0)
		v := d * complex(real(p.cosK[k]), -imag(p.cosK[k])) // e^{+i*pi*k/2n}
		p.buf[k] = v
		if k > 0 {
			p.buf[2*n-k] = complex(real(v), -imag(v))
		}
	}
	p.fft.Inverse(p.buf)
	for i := 0; i < n; i++ {
		dst[i] = real(p.buf[i])
	}
}

func (p *Plan) check(dst, src []float64) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("dct: length mismatch dst=%d src=%d plan=%d", len(dst), len(src), p.n))
	}
}

// ForwardDirect computes the orthonormal DCT-II by direct O(n^2) summation.
// It exists as a reference implementation for tests and for the DCT ablation
// benchmark.
func ForwardDirect(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		c := math.Sqrt(2 / float64(n))
		if k == 0 {
			c = math.Sqrt(1 / float64(n))
		}
		var s float64
		for i := 0; i < n; i++ {
			s += x[i] * math.Cos(math.Pi*(2*float64(i)+1)*float64(k)/(2*float64(n)))
		}
		out[k] = c * s
	}
	return out
}

// InverseDirect computes the orthonormal DCT-III by direct O(n^2) summation.
func InverseDirect(y []float64) []float64 {
	n := len(y)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for k := 0; k < n; k++ {
			c := math.Sqrt(2 / float64(n))
			if k == 0 {
				c = math.Sqrt(1 / float64(n))
			}
			s += c * y[k] * math.Cos(math.Pi*(2*float64(i)+1)*float64(k)/(2*float64(n)))
		}
		out[i] = s
	}
	return out
}

// Plan2D computes separable orthonormal 2-D DCTs on row-major rows×cols
// data. It is the sparsifying transform used by the compressed-sensing
// solver: a landscape X is represented as X = IDCT2(S) with S sparse.
type Plan2D struct {
	rows, cols int
	rowPlan    *Plan // length cols
	colPlan    *Plan // length rows
	colBuf     []float64
	colOut     []float64
}

// NewPlan2D creates a 2-D DCT plan for row-major rows×cols grids.
func NewPlan2D(rows, cols int) *Plan2D {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("dct: invalid 2-D DCT shape %dx%d", rows, cols))
	}
	return &Plan2D{
		rows:    rows,
		cols:    cols,
		rowPlan: NewPlan(cols),
		colPlan: NewPlan(rows),
		colBuf:  make([]float64, rows),
		colOut:  make([]float64, rows),
	}
}

// Rows reports the number of rows the plan transforms.
func (p *Plan2D) Rows() int { return p.rows }

// Cols reports the number of columns the plan transforms.
func (p *Plan2D) Cols() int { return p.cols }

// Forward computes the 2-D orthonormal DCT-II of src into dst (row-major,
// length rows*cols). dst and src may alias.
func (p *Plan2D) Forward(dst, src []float64) { p.apply(dst, src, true) }

// Inverse computes the 2-D orthonormal DCT-III of src into dst.
func (p *Plan2D) Inverse(dst, src []float64) { p.apply(dst, src, false) }

func (p *Plan2D) apply(dst, src []float64, forward bool) {
	n := p.rows * p.cols
	if len(dst) != n || len(src) != n {
		panic(fmt.Sprintf("dct: 2-D length mismatch dst=%d src=%d want=%d", len(dst), len(src), n))
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	for r := 0; r < p.rows; r++ {
		row := dst[r*p.cols : (r+1)*p.cols]
		if forward {
			p.rowPlan.Forward(row, row)
		} else {
			p.rowPlan.Inverse(row, row)
		}
	}
	for c := 0; c < p.cols; c++ {
		for r := 0; r < p.rows; r++ {
			p.colBuf[r] = dst[r*p.cols+c]
		}
		if forward {
			p.colPlan.Forward(p.colOut, p.colBuf)
		} else {
			p.colPlan.Inverse(p.colOut, p.colBuf)
		}
		for r := 0; r < p.rows; r++ {
			dst[r*p.cols+c] = p.colOut[r]
		}
	}
}
