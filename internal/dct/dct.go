package dct

import (
	"fmt"
	"math"
	"sync"
)

// Plan computes orthonormal DCT-II (forward) and DCT-III (inverse)
// transforms of a fixed length. With the orthonormal convention the forward
// and inverse transforms are transposes of each other, so the transform is an
// isometry: ||Forward(x)||_2 == ||x||_2. That property is what makes the
// partial-DCT compressed-sensing operator have unit Lipschitz constant.
type Plan struct {
	n    int
	fft  *fftPlan // size 2n
	c    []float64
	buf  []complex128
	cosK []complex128 // exp(-i*pi*k/(2n))
}

// NewPlan creates a DCT plan for vectors of length n.
func NewPlan(n int) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("dct: invalid DCT size %d", n))
	}
	p := &Plan{
		n:    n,
		fft:  newFFTPlan(2 * n),
		c:    make([]float64, n),
		buf:  make([]complex128, 2*n),
		cosK: make([]complex128, n),
	}
	p.c[0] = math.Sqrt(1 / float64(n))
	for k := 1; k < n; k++ {
		p.c[k] = math.Sqrt(2 / float64(n))
	}
	for k := 0; k < n; k++ {
		theta := -math.Pi * float64(k) / float64(2*n)
		p.cosK[k] = complex(math.Cos(theta), math.Sin(theta))
	}
	return p
}

// N reports the transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the orthonormal DCT-II of src into dst. dst and src may
// be the same slice. Both must have length n.
func (p *Plan) Forward(dst, src []float64) {
	p.check(dst, src)
	n := p.n
	// Mirror extension: y = [x, reverse(x)] has a 2n-point DFT whose
	// twiddled real part is the (unnormalized) DCT-II of x.
	for i := 0; i < n; i++ {
		v := complex(src[i], 0)
		p.buf[i] = v
		p.buf[2*n-1-i] = v
	}
	p.fft.Forward(p.buf)
	for k := 0; k < n; k++ {
		d := real(p.buf[k]*p.cosK[k]) / 2
		dst[k] = p.c[k] * d
	}
}

// Inverse computes the orthonormal DCT-III (the inverse of Forward) of src
// into dst. dst and src may be the same slice.
func (p *Plan) Inverse(dst, src []float64) {
	p.check(dst, src)
	n := p.n
	// Reverse the forward pipeline: rebuild the 2n-point spectrum of the
	// mirrored sequence from the cosine coefficients, then inverse DFT.
	p.buf[n] = 0
	for k := 0; k < n; k++ {
		d := complex(2*src[k]/p.c[k], 0)
		v := d * complex(real(p.cosK[k]), -imag(p.cosK[k])) // e^{+i*pi*k/2n}
		p.buf[k] = v
		if k > 0 {
			p.buf[2*n-k] = complex(real(v), -imag(v))
		}
	}
	p.fft.Inverse(p.buf)
	for i := 0; i < n; i++ {
		dst[i] = real(p.buf[i])
	}
}

func (p *Plan) check(dst, src []float64) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("dct: length mismatch dst=%d src=%d plan=%d", len(dst), len(src), p.n))
	}
}

// clone returns a plan that shares p's immutable precomputed tables (twiddle
// factors, bit-reversal permutation, chirp filters, DCT scaling) but owns its
// scratch buffers, so the clone can transform concurrently with p. Because the
// tables are shared, a clone produces bit-identical output to its original.
func (p *Plan) clone() *Plan {
	q := *p
	q.buf = make([]complex128, len(p.buf))
	fft := *p.fft
	if fft.scratch != nil {
		fft.scratch = make([]complex128, len(fft.scratch))
	}
	q.fft = &fft
	return &q
}

// ForwardDirect computes the orthonormal DCT-II by direct O(n^2) summation.
// It exists as a reference implementation for tests and for the DCT ablation
// benchmark.
func ForwardDirect(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		c := math.Sqrt(2 / float64(n))
		if k == 0 {
			c = math.Sqrt(1 / float64(n))
		}
		var s float64
		for i := 0; i < n; i++ {
			s += x[i] * math.Cos(math.Pi*(2*float64(i)+1)*float64(k)/(2*float64(n)))
		}
		out[k] = c * s
	}
	return out
}

// InverseDirect computes the orthonormal DCT-III by direct O(n^2) summation.
func InverseDirect(y []float64) []float64 {
	n := len(y)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for k := 0; k < n; k++ {
			c := math.Sqrt(2 / float64(n))
			if k == 0 {
				c = math.Sqrt(1 / float64(n))
			}
			s += c * y[k] * math.Cos(math.Pi*(2*float64(i)+1)*float64(k)/(2*float64(n)))
		}
		out[i] = s
	}
	return out
}

// Plan2D computes separable orthonormal 2-D DCTs on row-major rows×cols
// data. It is the sparsifying transform the compressed-sensing solver used
// before the API went N-dimensional: a landscape X is represented as
// X = IDCT2(S) with S sparse.
//
// Plan2D is the 2-axis special case of PlanND — it delegates every transform
// to a PlanND over [rows, cols], so the two are bit-identical by
// construction. New code should use PlanND directly; Plan2D remains as the
// 2-D compatibility surface.
type Plan2D struct {
	nd *PlanND
}

// serialMinSize is the grid size below which parallel plans fall back to a
// single worker: per-transform work is so small there that goroutine fan-out
// costs more than it saves.
const serialMinSize = 4096

// NewPlan2D creates a serial 2-D DCT plan for row-major rows×cols grids.
func NewPlan2D(rows, cols int) *Plan2D { return NewPlan2DWorkers(rows, cols, 1) }

// NewPlan2DWorkers creates a 2-D DCT plan that shards the row and column
// passes across up to workers goroutines (0 = GOMAXPROCS). Small grids
// (rows*cols < 4096) fall back to a serial plan regardless of workers; the
// result is bit-identical to NewPlan2D's in every case.
func NewPlan2DWorkers(rows, cols, workers int) *Plan2D {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("dct: invalid 2-D DCT shape %dx%d", rows, cols))
	}
	return &Plan2D{nd: NewPlanNDWorkers([]int{rows, cols}, workers)}
}

// Rows reports the number of rows the plan transforms.
func (p *Plan2D) Rows() int { return p.nd.dims[0] }

// Cols reports the number of columns the plan transforms.
func (p *Plan2D) Cols() int { return p.nd.dims[1] }

// Workers reports the effective worker count (1 after the small-grid serial
// fallback).
func (p *Plan2D) Workers() int { return p.nd.workers }

// Forward computes the 2-D orthonormal DCT-II of src into dst (row-major,
// length rows*cols). dst and src may alias.
func (p *Plan2D) Forward(dst, src []float64) { p.nd.Forward(dst, src) }

// Inverse computes the 2-D orthonormal DCT-III of src into dst.
func (p *Plan2D) Inverse(dst, src []float64) { p.nd.Inverse(dst, src) }

// forShards splits [0, n) into w contiguous shards on the same deterministic
// i*n/w boundaries internal/exec uses for chunking and runs fn once per
// shard, concurrently when w > 1. fn receives the shard's worker slot so it
// can use per-slot plans and scratch; shards write disjoint output, so no
// synchronization beyond the final wait is needed.
func forShards(w, n int, fn func(slot, lo, hi int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for slot := 0; slot < w; slot++ {
		lo, hi := slot*n/w, (slot+1)*n/w
		go func(slot, lo, hi int) {
			defer wg.Done()
			fn(slot, lo, hi)
		}(slot, lo, hi)
	}
	wg.Wait()
}
