package dct

import (
	"fmt"
	"runtime"
)

// PlanND computes separable orthonormal N-dimensional DCTs on row-major data
// (last axis fastest). The transform applies one 1-D pass per axis, from the
// last axis to the first: each pass transforms size/dims[k] independent lines
// along axis k. The 2-D case is exactly Plan2D's row-then-column sweep;
// Plan2D is now a thin 2-axis wrapper over PlanND, so the two are
// bit-identical by construction.
//
// A plan built with NewPlanNDWorkers shards each axis pass's independent
// lines across a worker pool. Each worker transforms whole lines with its own
// clone of the axis's 1-D plan, and no pass does any cross-line reduction, so
// output is bit-identical to the serial plan for every worker count.
type PlanND struct {
	dims    []int
	size    int
	workers int
	// axisPlans[k] holds one length-dims[k] 1-D plan per worker slot; nil
	// for degenerate (length-1) axes, whose pass is the exact identity and
	// is skipped.
	axisPlans [][]*Plan
	// axisBufs/axisOuts are per-slot gather/transform scratch for strided
	// (non-last) axes; the last axis transforms its contiguous lines in
	// place and needs none.
	axisBufs [][][]float64
	axisOuts [][][]float64
}

// NewPlanND creates a serial N-dimensional DCT plan for row-major data of the
// given per-axis lengths (last axis fastest).
func NewPlanND(dims []int) *PlanND { return NewPlanNDWorkers(dims, 1) }

// NewPlanNDWorkers creates an N-dimensional DCT plan that shards each axis
// pass across up to workers goroutines (0 = GOMAXPROCS). Small grids (fewer
// than 4096 points) fall back to a serial plan regardless of workers; the
// result is bit-identical to NewPlanND's in every case.
func NewPlanNDWorkers(dims []int, workers int) *PlanND {
	if len(dims) == 0 {
		panic("dct: empty ND DCT shape")
	}
	size := 1
	maxDim := 0
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("dct: invalid ND DCT shape %v", dims))
		}
		size *= d
		if d > maxDim {
			maxDim = d
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if size < serialMinSize {
		workers = 1
	}
	// An axis pass has size/dims[k] independent lines; the busiest pass has
	// size/min(dims) of them (= max(rows, cols) in 2-D, matching Plan2D's
	// historical cap), so more workers than that could never all run.
	if m := size / minPositive(dims); workers > m {
		workers = m
	}
	p := &PlanND{
		dims:      append([]int(nil), dims...),
		size:      size,
		workers:   workers,
		axisPlans: make([][]*Plan, len(dims)),
		axisBufs:  make([][][]float64, len(dims)),
		axisOuts:  make([][][]float64, len(dims)),
	}
	for k, d := range dims {
		if d <= 1 {
			continue // identity pass, skipped
		}
		lines := size / d
		slots := workers
		if slots > lines {
			slots = lines
		}
		plans := make([]*Plan, slots)
		plans[0] = NewPlan(d)
		for w := 1; w < slots; w++ {
			plans[w] = plans[0].clone()
		}
		p.axisPlans[k] = plans
		if k < len(dims)-1 {
			bufs := make([][]float64, slots)
			outs := make([][]float64, slots)
			for w := 0; w < slots; w++ {
				bufs[w] = make([]float64, d)
				outs[w] = make([]float64, d)
			}
			p.axisBufs[k] = bufs
			p.axisOuts[k] = outs
		}
	}
	return p
}

func minPositive(dims []int) int {
	m := dims[0]
	for _, d := range dims[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Dims reports the per-axis lengths the plan transforms.
func (p *PlanND) Dims() []int { return append([]int(nil), p.dims...) }

// Size reports the total number of points.
func (p *PlanND) Size() int { return p.size }

// Workers reports the effective worker count (1 after the small-grid serial
// fallback).
func (p *PlanND) Workers() int { return p.workers }

// Forward computes the N-dimensional orthonormal DCT-II of src into dst
// (row-major, length Size). dst and src may alias.
func (p *PlanND) Forward(dst, src []float64) { p.apply(dst, src, true) }

// Inverse computes the N-dimensional orthonormal DCT-III of src into dst.
func (p *PlanND) Inverse(dst, src []float64) { p.apply(dst, src, false) }

func (p *PlanND) apply(dst, src []float64, forward bool) {
	if len(dst) != p.size || len(src) != p.size {
		panic(fmt.Sprintf("dct: ND length mismatch dst=%d src=%d want=%d", len(dst), len(src), p.size))
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	// Passes run from the last axis to the first — the order Plan2D
	// established (rows along the last axis first, then columns), which the
	// 2-D bit-identity pins rely on. The length-1 orthonormal DCT is the
	// exact identity (bit-for-bit), so degenerate axes skip their pass.
	for k := len(p.dims) - 1; k >= 0; k-- {
		n := p.dims[k]
		if n <= 1 {
			continue
		}
		lines := p.size / n
		if k == len(p.dims)-1 {
			// Contiguous lines: transform each in place.
			forShards(p.workers, lines, func(slot, lo, hi int) {
				plan := p.axisPlans[k][slot]
				for r := lo; r < hi; r++ {
					row := dst[r*n : (r+1)*n]
					if forward {
						plan.Forward(row, row)
					} else {
						plan.Inverse(row, row)
					}
				}
			})
			continue
		}
		stride := 1
		for i := k + 1; i < len(p.dims); i++ {
			stride *= p.dims[i]
		}
		// Strided lines: line l starts at (l/stride)*stride*n + l%stride and
		// steps by stride — the same enumeration landscape metrics use.
		forShards(p.workers, lines, func(slot, lo, hi int) {
			plan := p.axisPlans[k][slot]
			buf, out := p.axisBufs[k][slot], p.axisOuts[k][slot]
			for l := lo; l < hi; l++ {
				base := (l/stride)*stride*n + l%stride
				for i := 0; i < n; i++ {
					buf[i] = dst[base+i*stride]
				}
				if forward {
					plan.Forward(out, buf)
				} else {
					plan.Inverse(out, buf)
				}
				for i := 0; i < n; i++ {
					dst[base+i*stride] = out[i]
				}
			}
		})
	}
}
