package dct

import (
	"math"
	"math/rand"
	"testing"
)

// applyAxisDirect transforms every line of x along axis k of dims with the
// direct O(n^2) reference transform, using the same strided line enumeration
// PlanND documents.
func applyAxisDirect(x []float64, dims []int, k int, forward bool) {
	n := dims[k]
	stride := 1
	for i := k + 1; i < len(dims); i++ {
		stride *= dims[i]
	}
	size := len(x)
	lines := size / n
	buf := make([]float64, n)
	for l := 0; l < lines; l++ {
		base := (l/stride)*stride*n + l%stride
		for i := 0; i < n; i++ {
			buf[i] = x[base+i*stride]
		}
		var out []float64
		if forward {
			out = ForwardDirect(buf)
		} else {
			out = InverseDirect(buf)
		}
		for i := 0; i < n; i++ {
			x[base+i*stride] = out[i]
		}
	}
}

// ndDirect is the separable ND reference: one direct pass per axis, last to
// first, matching PlanND's documented pass order.
func ndDirect(src []float64, dims []int, forward bool) []float64 {
	out := append([]float64(nil), src...)
	for k := len(dims) - 1; k >= 0; k-- {
		applyAxisDirect(out, dims, k, forward)
	}
	return out
}

// ndShapes enumerates 1- to 4-axis shapes over the {1, 8, 64} axis lengths
// the issue calls out, trimmed to keep the direct reference fast.
func ndShapes() [][]int {
	return [][]int{
		{1}, {8}, {64},
		{1, 8}, {8, 8}, {64, 8}, {8, 64}, {1, 64},
		{1, 8, 8}, {8, 1, 8}, {8, 8, 1}, {8, 8, 8}, {64, 8, 8},
		{1, 8, 8, 8}, {8, 1, 8, 1}, {8, 8, 8, 8},
	}
}

// TestPlanNDMatchesSeparableDirect pins PlanND to the axis-by-axis direct
// reference on 1- to 4-axis shapes, forward and inverse.
func TestPlanNDMatchesSeparableDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dims := range ndShapes() {
		p := NewPlanND(dims)
		src := make([]float64, p.Size())
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		for _, forward := range []bool{true, false} {
			got := make([]float64, len(src))
			want := ndDirect(src, dims, forward)
			if forward {
				p.Forward(got, src)
			} else {
				p.Inverse(got, src)
			}
			for i := range got {
				if !approxEq(got[i], want[i], 1e-9*float64(len(src))) {
					t.Fatalf("dims %v forward=%v: [%d] = %g, want %g", dims, forward, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPlanNDRoundTrip: Inverse(Forward(x)) == x on every shape.
func TestPlanNDRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range ndShapes() {
		p := NewPlanND(dims)
		x := make([]float64, p.Size())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		fwd := make([]float64, len(x))
		p.Forward(fwd, x)
		back := make([]float64, len(x))
		p.Inverse(back, fwd)
		for i := range x {
			if !approxEq(back[i], x[i], 1e-8) {
				t.Fatalf("dims %v: round trip [%d] = %g, want %g", dims, i, back[i], x[i])
			}
		}
	}
}

// TestPlanNDMatchesPlan2D: the 2-axis PlanND and Plan2D are the same
// transform bit for bit (Plan2D delegates, so this pins the wiring).
func TestPlanNDMatchesPlan2D(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rows, cols := 48, 96 // above the serial floor so workers engage
	src := make([]float64, rows*cols)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	for _, workers := range []int{1, 3} {
		nd := NewPlanNDWorkers([]int{rows, cols}, workers)
		p2 := NewPlan2DWorkers(rows, cols, workers)
		a := make([]float64, len(src))
		b := make([]float64, len(src))
		nd.Forward(a, src)
		p2.Forward(b, src)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers %d: forward [%d] %g != %g", workers, i, a[i], b[i])
			}
		}
	}
}

// TestPlanNDParallelBitIdentical: every worker count produces bit-identical
// output on a 3-axis grid above the serial floor.
func TestPlanNDParallelBitIdentical(t *testing.T) {
	dims := []int{24, 16, 20}
	rng := rand.New(rand.NewSource(44))
	src := make([]float64, 24*16*20)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	ref := make([]float64, len(src))
	NewPlanND(dims).Forward(ref, src)
	refInv := make([]float64, len(src))
	NewPlanND(dims).Inverse(refInv, src)
	for _, workers := range []int{2, 3, 5, 8, 0} {
		p := NewPlanNDWorkers(dims, workers)
		got := make([]float64, len(src))
		p.Forward(got, src)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers %d: forward [%d] %x != %x", workers, i,
					math.Float64bits(got[i]), math.Float64bits(ref[i]))
			}
		}
		p.Inverse(got, src)
		for i := range got {
			if got[i] != refInv[i] {
				t.Fatalf("workers %d: inverse [%d] differs", workers, i)
			}
		}
	}
}

// TestPlanNDIsometry: the orthonormal ND DCT preserves the l2 norm.
func TestPlanNDIsometry(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	dims := []int{6, 10, 7}
	p := NewPlanND(dims)
	x := make([]float64, p.Size())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, len(x))
	p.Forward(y, x)
	var nx, ny float64
	for i := range x {
		nx += x[i] * x[i]
		ny += y[i] * y[i]
	}
	if math.Abs(nx-ny) > 1e-8*nx {
		t.Fatalf("norm changed: %g -> %g", nx, ny)
	}
}

// TestPlanNDValidation: bad shapes panic, mismatched lengths panic.
func TestPlanNDValidation(t *testing.T) {
	for _, dims := range [][]int{nil, {}, {0}, {4, -1}, {4, 0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dims %v: no panic", dims)
				}
			}()
			NewPlanND(dims)
		}()
	}
	p := NewPlanND([]int{4, 4})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch: no panic")
			}
		}()
		p.Forward(make([]float64, 15), make([]float64, 16))
	}()
}

// TestPlanNDAllDegenerate: an all-ones shape is the identity transform.
func TestPlanNDAllDegenerate(t *testing.T) {
	p := NewPlanND([]int{1, 1, 1})
	src := []float64{3.25}
	dst := make([]float64, 1)
	p.Forward(dst, src)
	if dst[0] != 3.25 {
		t.Fatalf("degenerate forward = %g", dst[0])
	}
	p.Inverse(dst, dst)
	if dst[0] != 3.25 {
		t.Fatalf("degenerate inverse = %g", dst[0])
	}
}
