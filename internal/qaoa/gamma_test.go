package qaoa

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestCostAtBitMatchesCost guards the batch fast path: evaluating through
// precomputed gamma factors must be bit-identical to the direct closed form,
// with and without damping — the equivalence the batched execution engine's
// determinism contract rests on.
func TestCostAtBitMatchesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := graph.Random3Regular(12, rng)
	if err != nil {
		t.Fatal(err)
	}
	en, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	damp := make([]float64, en.NumEdges())
	for i := range damp {
		damp[i] = 0.9 + 0.1*rng.Float64()
	}
	for trial := 0; trial < 2000; trial++ {
		beta := rng.NormFloat64()
		gamma := rng.NormFloat64()
		gf := en.Gamma(gamma)
		for _, d := range [][]float64{nil, damp} {
			a := en.Cost(beta, gamma, d)
			b := en.CostAt(beta, gf, d)
			if a != b {
				t.Fatalf("trial %d damp=%v: Cost %v vs CostAt %v (diff %g)", trial, d != nil, a, b, a-b)
			}
		}
	}
}
