package qaoa

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/graph"
	"repro/internal/pauli"
	"repro/internal/problem"
	"repro/internal/qsim"
)

// exactCost runs the real depth-1 QAOA circuit on the state-vector simulator
// and returns <H> — the ground truth the analytic engine must match.
func exactCost(t *testing.T, p *problem.Problem, beta, gamma float64) float64 {
	t.Helper()
	a, err := ansatz.QAOA(p.Graph, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := qsim.Run(a.Circuit, []float64{beta, gamma})
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Expectation(p.Hamiltonian)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAnalyticMatchesStateVector3Regular(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 4; trial++ {
		p, err := problem.Random3RegularMaxCut(8, rng)
		if err != nil {
			t.Fatal(err)
		}
		en, err := NewEngine(p.Graph)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 12; k++ {
			beta := (rng.Float64() - 0.5) * math.Pi / 2
			gamma := (rng.Float64() - 0.5) * math.Pi
			want := exactCost(t, p, beta, gamma)
			got := en.Cost(beta, gamma, nil)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d (beta=%g gamma=%g): analytic %g vs exact %g",
					trial, beta, gamma, got, want)
			}
		}
	}
}

func TestAnalyticMatchesStateVectorSK(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 4; trial++ {
		p, err := problem.SK(6, rng)
		if err != nil {
			t.Fatal(err)
		}
		en, err := NewEngine(p.Graph)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 12; k++ {
			beta := (rng.Float64() - 0.5) * math.Pi / 2
			gamma := (rng.Float64() - 0.5) * math.Pi
			want := exactCost(t, p, beta, gamma)
			got := en.Cost(beta, gamma, nil)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d (beta=%g gamma=%g): analytic %g vs exact %g",
					trial, beta, gamma, got, want)
			}
		}
	}
}

func TestAnalyticMatchesStateVectorWeighted(t *testing.T) {
	// Random real weights, including triangles (complete graph).
	rng := rand.New(rand.NewSource(63))
	g, err := graph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Edges {
		g.Edges[i].Weight = rng.NormFloat64()
	}
	p, err := problem.MaxCut("weighted-k5", g)
	if err != nil {
		t.Fatal(err)
	}
	en, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		beta := (rng.Float64() - 0.5) * math.Pi
		gamma := (rng.Float64() - 0.5) * 2 * math.Pi
		want := exactCost(t, p, beta, gamma)
		got := en.Cost(beta, gamma, nil)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("k=%d (beta=%g gamma=%g): analytic %g vs exact %g", k, beta, gamma, got, want)
		}
	}
}

func TestAnalyticMeshGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	g, err := graph.Mesh(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := problem.MaxCut("mesh", g)
	if err != nil {
		t.Fatal(err)
	}
	en, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		beta := (rng.Float64() - 0.5) * math.Pi / 2
		gamma := (rng.Float64() - 0.5) * math.Pi
		want := exactCost(t, p, beta, gamma)
		got := en.Cost(beta, gamma, nil)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("beta=%g gamma=%g: analytic %g vs exact %g", beta, gamma, got, want)
		}
	}
}

func TestCostAtZeroAngles(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	g, _ := graph.Random3Regular(10, rng)
	en, _ := NewEngine(g)
	// At beta=gamma=0 the state is |+>^n: every <ZZ> = 0 and
	// <H> = -sum w/2 (= -E/2 for unweighted).
	got := en.Cost(0, 0, nil)
	want := -float64(len(g.Edges)) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost at origin %g want %g", got, want)
	}
}

func TestExpectedCutComplementsCost(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	g, _ := graph.Random3Regular(8, rng)
	en, _ := NewEngine(g)
	beta, gamma := 0.2, -0.6
	if math.Abs(en.ExpectedCut(beta, gamma)+en.Cost(beta, gamma, nil)) > 1e-12 {
		t.Fatal("ExpectedCut != -Cost")
	}
}

func TestZZDamping(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	g, _ := graph.Random3Regular(8, rng)
	en, _ := NewEngine(g)
	damp := make([]float64, en.NumEdges())
	for i := range damp {
		damp[i] = 0 // fully depolarized
	}
	got := en.Cost(0.3, 0.5, damp)
	want := -float64(len(g.Edges)) / 2 // only the identity offset survives
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("fully damped cost %g want %g", got, want)
	}
}

func TestNewEngineErrors(t *testing.T) {
	if _, err := NewEngine(nil); err == nil {
		t.Error("want error for nil graph")
	}
	bad := &graph.Graph{N: 3, Edges: []graph.Edge{{U: 1, V: 1, Weight: 1}}}
	if _, err := NewEngine(bad); err == nil {
		t.Error("want error for self loop")
	}
}

func TestZZPerEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	p, err := problem.Random3RegularMaxCut(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	en, _ := NewEngine(p.Graph)
	a, _ := ansatz.QAOA(p.Graph, 1)
	beta, gamma := 0.17, -0.42
	s, err := qsim.Run(a.Circuit, []float64{beta, gamma})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range p.Graph.Edges {
		want, err := s.ExpectationPauli(pauliZZ(p.N(), e.U, e.V))
		if err != nil {
			t.Fatal(err)
		}
		got := en.ZZ(i, beta, gamma)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("edge %d: analytic %g vs exact %g", i, got, want)
		}
	}
}

func pauliZZ(n, a, b int) pauli.String { return pauli.ZZ(n, a, b) }
