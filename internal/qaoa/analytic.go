// Package qaoa implements the closed-form depth-1 QAOA expectation for
// Ising cost Hamiltonians without local fields (MaxCut and SK). The paper
// generated 16-30 qubit depth-1 landscapes with GPU-backed state-vector
// simulation; the analytic engine computes the same expectations in
// O(|E| * n) per landscape point, making the paper's largest sweeps cheap.
//
// The formula is the weighted generalization of the triangle formula of
// Wang, Hadfield, Jiang and Rieffel (PRA 97, 022304, 2018): for the circuit
//
//	|+>^n -> prod_e RZZ(gamma*w_e) -> prod_q RX(2 beta)
//
// (exactly the circuit built by ansatz.QAOA with p=1), the two-point
// correlator of an edge (u,v) with weight w is
//
//	<Z_u Z_v> = (sin 4beta / 2) sin(gamma w) (P_u + P_v)
//	            - (sin^2 2beta / 2) (Q+ - Q-)
//
// where P_u = prod_{k != u,v} cos(gamma w_uk), and
// Q± = prod_{k != u,v} cos(gamma (w_uk ± w_vk)), with w_xy = 0 for
// non-edges. Correctness is established in tests by exact comparison with
// the state-vector simulator on random weighted graphs.
package qaoa

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Engine precomputes adjacency weights for fast repeated evaluations over a
// landscape grid.
type Engine struct {
	g *graph.Graph
	// w[u][v] is the edge weight (0 when absent).
	w [][]float64
}

// NewEngine builds an analytic depth-1 engine for the cut problem on g.
func NewEngine(g *graph.Graph) (*Engine, error) {
	if g == nil || g.N < 2 {
		return nil, fmt.Errorf("qaoa: invalid graph")
	}
	w := make([][]float64, g.N)
	for i := range w {
		w[i] = make([]float64, g.N)
	}
	for _, e := range g.Edges {
		if e.U == e.V {
			return nil, fmt.Errorf("qaoa: self loop on %d", e.U)
		}
		w[e.U][e.V] = e.Weight
		w[e.V][e.U] = e.Weight
	}
	return &Engine{g: g, w: w}, nil
}

// ZZ computes <Z_u Z_v> for edge index e at angles (beta, gamma).
func (en *Engine) ZZ(e int, beta, gamma float64) float64 {
	edge := en.g.Edges[e]
	return en.zz(edge.U, edge.V, edge.Weight, beta, gamma)
}

func (en *Engine) zz(u, v int, wuv, beta, gamma float64) float64 {
	pu, pv := 1.0, 1.0
	qPlus, qMinus := 1.0, 1.0
	for k := 0; k < en.g.N; k++ {
		if k == u || k == v {
			continue
		}
		wu := en.w[u][k]
		wv := en.w[v][k]
		if wu != 0 {
			pu *= math.Cos(gamma * wu)
		}
		if wv != 0 {
			pv *= math.Cos(gamma * wv)
		}
		if wu != 0 || wv != 0 {
			qPlus *= math.Cos(gamma * (wu + wv))
			qMinus *= math.Cos(gamma * (wu - wv))
		}
	}
	s4b := math.Sin(4 * beta)
	s2b := math.Sin(2 * beta)
	first := (s4b / 2) * math.Sin(gamma*wuv) * (pu + pv)
	second := -(s2b * s2b / 2) * (qPlus - qMinus)
	return first + second
}

// Cost computes <H> at (beta, gamma) for H = sum_e w_e/2 (Z_u Z_v - 1), the
// MaxCut/SK minimization Hamiltonian used by package problem. The optional
// zzDamp slice scales each edge's correlator (1.0 = ideal); the depolarizing
// damping model in package noise produces these factors.
func (en *Engine) Cost(beta, gamma float64, zzDamp []float64) float64 {
	var total float64
	for i, e := range en.g.Edges {
		zz := en.zz(e.U, e.V, e.Weight, beta, gamma)
		if zzDamp != nil {
			zz *= zzDamp[i]
		}
		total += e.Weight / 2 * (zz - 1)
	}
	return total
}

// GammaFactors holds the beta-independent per-edge factors of the
// correlator at one fixed gamma: everything under the O(|E|*n) neighbor
// products. Grid scans and batch evaluations revisit the same gammas many
// times (a 50x100 Table 1 grid has 100 gammas shared by 50 betas each), so
// precomputing these turns the per-point cost into O(|E|).
type GammaFactors struct {
	sinG  []float64 // sin(gamma * w_e)
	pSum  []float64 // P_u + P_v
	qDiff []float64 // Q+ - Q-
}

// Gamma precomputes the beta-independent factors at gamma. The arithmetic
// mirrors zz exactly, so CostAt(beta, Gamma(gamma), damp) is bit-identical
// to Cost(beta, gamma, damp).
func (en *Engine) Gamma(gamma float64) *GammaFactors {
	m := len(en.g.Edges)
	gf := &GammaFactors{
		sinG:  make([]float64, m),
		pSum:  make([]float64, m),
		qDiff: make([]float64, m),
	}
	for i, e := range en.g.Edges {
		u, v := e.U, e.V
		pu, pv := 1.0, 1.0
		qPlus, qMinus := 1.0, 1.0
		for k := 0; k < en.g.N; k++ {
			if k == u || k == v {
				continue
			}
			wu := en.w[u][k]
			wv := en.w[v][k]
			if wu != 0 {
				pu *= math.Cos(gamma * wu)
			}
			if wv != 0 {
				pv *= math.Cos(gamma * wv)
			}
			if wu != 0 || wv != 0 {
				qPlus *= math.Cos(gamma * (wu + wv))
				qMinus *= math.Cos(gamma * (wu - wv))
			}
		}
		gf.sinG[i] = math.Sin(gamma * e.Weight)
		gf.pSum[i] = pu + pv
		gf.qDiff[i] = qPlus - qMinus
	}
	return gf
}

// CostAt computes Cost(beta, gamma, zzDamp) from precomputed gamma factors,
// bit-identical to the direct evaluation.
func (en *Engine) CostAt(beta float64, gf *GammaFactors, zzDamp []float64) float64 {
	s4b := math.Sin(4 * beta)
	s2b := math.Sin(2 * beta)
	var total float64
	for i, e := range en.g.Edges {
		first := (s4b / 2) * gf.sinG[i] * gf.pSum[i]
		second := -(s2b * s2b / 2) * gf.qDiff[i]
		zz := first + second
		if zzDamp != nil {
			zz *= zzDamp[i]
		}
		total += e.Weight / 2 * (zz - 1)
	}
	return total
}

// ExpectedCut computes the expected cut value at (beta, gamma):
// sum_e w_e (1 - <Z_u Z_v>)/2.
func (en *Engine) ExpectedCut(beta, gamma float64) float64 {
	return -en.Cost(beta, gamma, nil)
}

// NumEdges reports the edge count, the length expected for zzDamp.
func (en *Engine) NumEdges() int { return len(en.g.Edges) }

// Graph returns the underlying graph.
func (en *Engine) Graph() *graph.Graph { return en.g }
