package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// smallJob is a fast analytic reconstruction: 8-qubit 3-regular MaxCut on a
// 12x14 Table-1-style grid, 25% sampling.
func smallJob() string {
	return `{
		"problem": {"kind": "maxcut3", "n": 8, "seed": 7},
		"backend": {"kind": "analytic"},
		"grid": {"beta_n": 12, "gamma_n": 14},
		"options": {"sampling_fraction": 0.25, "seed": 1},
		"wait": true
	}`
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func do(t *testing.T, s *Server, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	out := map[string]any{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON response %q", method, path, rec.Body.String())
	}
	return rec, out
}

func TestSubmitWaitHappyPath(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, out := do(t, s, "POST", "/jobs", smallJob())
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	if out["state"] != string(StateDone) {
		t.Fatalf("state %v", out["state"])
	}
	res, _ := out["result"].(map[string]any)
	if res == nil {
		t.Fatalf("no result: %v", out)
	}
	if got := res["grid_size"].(float64); got != 12*14 {
		t.Fatalf("grid_size %v", got)
	}
	if got := res["samples"].(float64); got != 42 {
		t.Fatalf("samples %v", got)
	}
	if res["arg_min"].(float64) < 0 {
		t.Fatal("no finite minimum in reconstruction")
	}
	// First run on a fresh cache: all misses.
	if res["cache_hits"].(float64) != 0 || res["cache_misses"].(float64) != 42 {
		t.Fatalf("cache accounting %v/%v", res["cache_hits"], res["cache_misses"])
	}
}

// TestP2JobEndToEnd runs a depth-2 QAOA job through the grid shorthand's new
// "p" field: 4 parameter axes, a true 4-D reconstruction, and ND-clean
// min/max points with one coordinate per axis.
func TestP2JobEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{
		"problem": {"kind": "maxcut3", "n": 8, "seed": 7},
		"backend": {"kind": "statevector", "ansatz": "qaoa", "depth": 2},
		"grid": {"beta_n": 5, "gamma_n": 5, "p": 2},
		"options": {"sampling_fraction": 0.3, "seed": 1},
		"wait": true
	}`
	rec, out := do(t, s, "POST", "/jobs", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	if out["state"] != string(StateDone) {
		t.Fatalf("state %v (%v)", out["state"], out["error"])
	}
	res, _ := out["result"].(map[string]any)
	if res == nil {
		t.Fatalf("no result: %v", out)
	}
	if got := res["grid_size"].(float64); got != 5*5*5*5 {
		t.Fatalf("grid_size %v, want 625", got)
	}
	for _, key := range []string{"min_point", "max_point"} {
		pt, _ := res[key].([]any)
		if len(pt) != 4 {
			t.Fatalf("%s = %v, want 4 coordinates (one per depth-2 axis)", key, res[key])
		}
		for i, c := range pt {
			v := c.(float64)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s[%d] = %v", key, i, v)
			}
		}
	}
}

func TestSecondIdenticalJobHitsCache(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "POST", "/jobs", smallJob())
	_, out := do(t, s, "POST", "/jobs", smallJob())
	res := out["result"].(map[string]any)
	if hits := res["cache_hits"].(float64); hits != 42 {
		t.Fatalf("second identical job hit %v of 42", hits)
	}
	if misses := res["cache_misses"].(float64); misses != 0 {
		t.Fatalf("second identical job missed %v times", misses)
	}
	// The shared cache shows up on /stats with one config.
	_, stats := do(t, s, "GET", "/stats", "")
	cache := stats["cache"].(map[string]any)
	configs := cache["configs"].([]any)
	if len(configs) != 1 {
		t.Fatalf("%d cache configs, want 1 (identical jobs must share)", len(configs))
	}
	if cache["total_hits"].(float64) != 42 {
		t.Fatalf("total hits %v", cache["total_hits"])
	}
}

func TestDifferentConfigsDoNotShareCache(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "POST", "/jobs", smallJob())
	// Same grid and options, different problem seed: separate cache.
	other := strings.Replace(smallJob(), `"seed": 7`, `"seed": 8`, 1)
	_, out := do(t, s, "POST", "/jobs", other)
	res := out["result"].(map[string]any)
	if hits := res["cache_hits"].(float64); hits != 0 {
		t.Fatalf("differently-configured job stole %v cache hits", hits)
	}
	_, stats := do(t, s, "GET", "/stats", "")
	configs := stats["cache"].(map[string]any)["configs"].([]any)
	if len(configs) != 2 {
		t.Fatalf("%d cache configs, want 2", len(configs))
	}
}

func TestMalformedJSON(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, body := range []string{
		"{not json",
		`{"problem": {"kind": "maxcut3"}, "unknown_field": 1}`,
		`[]`,
		"",
	} {
		rec, out := do(t, s, "POST", "/jobs", body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, rec.Code)
		}
		if out["error"] == nil {
			t.Fatalf("body %q: no error message", body)
		}
	}
}

func TestBadSpecs(t *testing.T) {
	s := newTestServer(t, Config{MaxGridPoints: 1000, MaxQubits: 12})
	cases := map[string]string{
		"unknown problem":         `{"problem":{"kind":"nope"},"backend":{"kind":"analytic"},"grid":{"beta_n":4,"gamma_n":4},"options":{"sampling_fraction":0.5}}`,
		"oversized grid":          `{"problem":{"kind":"maxcut3","n":8},"backend":{"kind":"analytic"},"grid":{"beta_n":50,"gamma_n":50},"options":{"sampling_fraction":0.1}}`,
		"too many qubits":         `{"problem":{"kind":"maxcut3","n":14},"backend":{"kind":"statevector"},"grid":{"beta_n":4,"gamma_n":4},"options":{"sampling_fraction":0.5}}`,
		"bad fraction":            `{"problem":{"kind":"maxcut3","n":8},"backend":{"kind":"analytic"},"grid":{"beta_n":4,"gamma_n":4},"options":{"sampling_fraction":1.5}}`,
		"arity mismatch":          `{"problem":{"kind":"maxcut3","n":8},"backend":{"kind":"statevector","depth":2},"grid":{"beta_n":4,"gamma_n":4},"options":{"sampling_fraction":0.5}}`,
		"1 axis, 2-param backend": `{"problem":{"kind":"maxcut3","n":8},"backend":{"kind":"analytic"},"grid":{"axes":[{"name":"x","min":0,"max":1,"n":4}]},"options":{"sampling_fraction":0.5}}`,
		"negative p":              `{"problem":{"kind":"maxcut3","n":8},"backend":{"kind":"analytic"},"grid":{"beta_n":4,"gamma_n":4,"p":-1},"options":{"sampling_fraction":0.5}}`,
		"p with explicit axes":    `{"problem":{"kind":"maxcut3","n":8},"backend":{"kind":"analytic"},"grid":{"p":2,"axes":[{"name":"x","min":0,"max":1,"n":4},{"name":"y","min":0,"max":1,"n":4}]},"options":{"sampling_fraction":0.5}}`,
		"p=2 vs depth-1 backend":  `{"problem":{"kind":"maxcut3","n":8},"backend":{"kind":"analytic"},"grid":{"beta_n":4,"gamma_n":4,"p":2},"options":{"sampling_fraction":0.5}}`,
		"density too big":         `{"problem":{"kind":"sk","n":14},"backend":{"kind":"density"},"grid":{"beta_n":4,"gamma_n":4},"options":{"sampling_fraction":0.5}}`,
		"non-graph qaoa":          `{"problem":{"kind":"h2"},"backend":{"kind":"analytic"},"grid":{"beta_n":4,"gamma_n":4},"options":{"sampling_fraction":0.5}}`,
		"odd maxcut3 n":           `{"problem":{"kind":"maxcut3","n":5},"backend":{"kind":"analytic"},"grid":{"beta_n":4,"gamma_n":4},"options":{"sampling_fraction":0.5}}`,
		"degenerate mesh":         `{"problem":{"kind":"mesh","rows":0,"cols":0},"backend":{"kind":"analytic"},"grid":{"beta_n":4,"gamma_n":4},"options":{"sampling_fraction":0.5}}`,
	}
	for name, body := range cases {
		rec, out := do(t, s, "POST", "/jobs", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", name, rec.Code, out["error"])
		}
	}
}

func TestConcurrentJobsShareCache(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 8})
	// 8 concurrent jobs, same device config, different sampling seeds (so
	// they overlap but do not duplicate work exactly).
	ids := make([]string, 8)
	for i := range ids {
		body := strings.Replace(smallJob(), `"wait": true`, `"wait": false`, 1)
		body = strings.Replace(body, `"seed": 1`, fmt.Sprintf(`"seed": %d`, i), 1)
		rec, out := do(t, s, "POST", "/jobs", body)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d %v", i, rec.Code, out)
		}
		ids[i] = out["id"].(string)
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for {
			_, out := do(t, s, "GET", "/jobs/"+id, "")
			if out["state"] == string(StateDone) {
				break
			}
			if out["state"] == string(StateFailed) || out["state"] == string(StateCanceled) {
				t.Fatalf("job %s: %v (%v)", id, out["state"], out["error"])
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %v", id, out["state"])
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	_, stats := do(t, s, "GET", "/stats", "")
	cache := stats["cache"].(map[string]any)
	if n := len(cache["configs"].([]any)); n != 1 {
		t.Fatalf("%d cache configs, want 1 shared across all jobs", n)
	}
	// 8 jobs x 42 samples over a 168-point grid must overlap: the shared
	// cache cannot have executed more than the grid size.
	if l := cache["total_len"].(float64); l > 168 {
		t.Fatalf("cache len %v exceeds grid size", l)
	}
	if hits := cache["total_hits"].(float64); hits == 0 {
		t.Fatal("8 overlapping jobs recorded zero cache hits")
	}
}

func TestClientDisconnectCancelsSolve(t *testing.T) {
	s := newTestServer(t, Config{})
	// A slow job: 14-qubit statevector over a 30x30 grid, fully sampled.
	body := `{
		"problem": {"kind": "maxcut3", "n": 14, "seed": 3},
		"backend": {"kind": "statevector"},
		"grid": {"beta_n": 30, "gamma_n": 30},
		"options": {"sampling_fraction": 1.0},
		"wait": true
	}`
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel() // the client walks away mid-solve
	}()
	req := httptest.NewRequest("POST", "/jobs", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	start := time.Now()
	s.ServeHTTP(rec, req)
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("disconnected solve ran %v before noticing", elapsed)
	}
	if rec.Code != 499 {
		t.Fatalf("status %d, want 499", rec.Code)
	}
	// The job is recorded as canceled, not failed or done.
	_, list := do(t, s, "GET", "/jobs", "")
	jobs := list["jobs"].([]any)
	if len(jobs) != 1 {
		t.Fatalf("%d jobs", len(jobs))
	}
	if st := jobs[0].(map[string]any)["state"]; st != string(StateCanceled) {
		t.Fatalf("job state %v, want canceled", st)
	}
}

func TestDeleteCancelsAsyncJob(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{
		"problem": {"kind": "maxcut3", "n": 14, "seed": 3},
		"backend": {"kind": "statevector"},
		"grid": {"beta_n": 30, "gamma_n": 30},
		"options": {"sampling_fraction": 1.0}
	}`
	rec, out := do(t, s, "POST", "/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", rec.Code, out)
	}
	id := out["id"].(string)
	time.Sleep(20 * time.Millisecond) // let it start
	_, out = do(t, s, "DELETE", "/jobs/"+id, "")
	if st := out["state"]; st != string(StateCanceled) {
		t.Fatalf("state after DELETE: %v (%v)", st, out["error"])
	}
}

func TestUnknownJob(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec, _ := do(t, s, "GET", "/jobs/zzz", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown: %d", rec.Code)
	}
	if rec, _ := do(t, s, "DELETE", "/jobs/zzz", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown: %d", rec.Code)
	}
}

// TestJobPanicIsContained injects a panicking evaluator directly (no spec
// can build one) and checks the worker boundary converts it into a failed
// job with a 5xx status instead of killing the process.
func TestJobPanicIsContained(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := new(JobSpec)
	if err := json.Unmarshal([]byte(smallJob()), spec); err != nil {
		t.Fatal(err)
	}
	built, err := buildJob(spec, s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	built.eval = panicEvaluator{}
	j := &Job{
		id:        "jpanic",
		spec:      spec,
		built:     built,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.wg.Add(1)
	s.runJob(ctx, j)

	s.mu.Lock()
	state, status, msg := j.state, j.httpStatus, j.errMsg
	s.mu.Unlock()
	if state != StateFailed {
		t.Fatalf("state %v, want failed", state)
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", status)
	}
	if !strings.Contains(msg, "internal panic") {
		t.Fatalf("error %q", msg)
	}
	if s.panics.Load() != 1 {
		t.Fatalf("panics counter %d", s.panics.Load())
	}
	// The server still serves requests afterwards.
	if rec, _ := do(t, s, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", rec.Code)
	}
}

type panicEvaluator struct{}

func (panicEvaluator) EvaluateBatch(ctx context.Context, params [][]float64) ([]float64, error) {
	panic("qsim blew up")
}

func TestSnapshotRestoreAcrossRestart(t *testing.T) {
	cfg := Config{}
	a := newTestServer(t, cfg)
	do(t, a, "POST", "/jobs", smallJob())

	var buf bytes.Buffer
	if err := a.SnapshotCaches(&buf); err != nil {
		t.Fatal(err)
	}

	b := newTestServer(t, cfg)
	if err := b.RestoreCaches(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if n := b.CacheEntries(); n != 42 {
		t.Fatalf("restored %d entries, want 42", n)
	}
	_, out := do(t, b, "POST", "/jobs", smallJob())
	res := out["result"].(map[string]any)
	if hits := res["cache_hits"].(float64); hits != 42 {
		t.Fatalf("warm-started server hit %v of 42", hits)
	}
}

func TestCacheFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.gob")
	a := newTestServer(t, Config{})
	do(t, a, "POST", "/jobs", smallJob())
	if err := a.SaveCacheFile(path); err != nil {
		t.Fatal(err)
	}

	b := newTestServer(t, Config{})
	if err := b.LoadCacheFile(path); err != nil {
		t.Fatal(err)
	}
	_, out := do(t, b, "POST", "/jobs", smallJob())
	if hits := out["result"].(map[string]any)["cache_hits"].(float64); hits != 42 {
		t.Fatalf("file warm-start hit %v of 42", hits)
	}

	// Missing file is a clean no-op; quantum mismatch is an error.
	c := newTestServer(t, Config{})
	if err := c.LoadCacheFile(filepath.Join(t.TempDir(), "absent.gob")); err != nil {
		t.Fatalf("missing file: %v", err)
	}
	d := newTestServer(t, Config{Quantum: 1e-3})
	if err := d.LoadCacheFile(path); err == nil {
		t.Fatal("want error loading archive with mismatched quantum")
	}
}

func TestShotJobsBypassCache(t *testing.T) {
	s := newTestServer(t, Config{})
	body := strings.Replace(smallJob(), `"kind": "analytic"`, `"kind": "analytic", "shots": 1000, "shot_seed": 5`, 1)
	_, out := do(t, s, "POST", "/jobs", body)
	if out["state"] != string(StateDone) {
		t.Fatalf("shot job: %v (%v)", out["state"], out["error"])
	}
	_, stats := do(t, s, "GET", "/stats", "")
	if n := len(stats["cache"].(map[string]any)["configs"].([]any)); n != 0 {
		t.Fatalf("stochastic job created %d caches", n)
	}
}

func TestStatsShape(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "POST", "/jobs", smallJob())
	_, stats := do(t, s, "GET", "/stats", "")
	jobs := stats["jobs"].(map[string]any)
	if jobs["total"].(float64) != 1 {
		t.Fatalf("jobs.total %v", jobs["total"])
	}
	recent := jobs["recent"].([]any)
	if len(recent) != 1 {
		t.Fatalf("recent %d", len(recent))
	}
	j := recent[0].(map[string]any)
	if j["state"] != string(StateDone) || j["run_ms"] == nil {
		t.Fatalf("recent job %v", j)
	}
	if stats["panics"].(float64) != 0 {
		t.Fatalf("panics %v", stats["panics"])
	}
}

// TestNonFiniteResultEncodes pins the JSON encoding of the NaN/Inf
// sentinels: encoding/json rejects non-finite float64s, so without the
// jsonFloat wrappers an all-NaN result would serialize to an empty body.
func TestNonFiniteResultEncodes(t *testing.T) {
	res := &JobResult{
		Min:    jsonFloat(math.NaN()),
		ArgMin: -1,
		Max:    jsonFloat(math.Inf(1)),
		ArgMax: -1,
		Data:   jsonFloats{1.5, math.NaN(), math.Inf(-1)},
	}
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, jobJSON{ID: "x", State: StateDone, Result: res})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("non-finite result produced invalid JSON %q: %v", rec.Body.String(), err)
	}
	r := out["result"].(map[string]any)
	if r["min"] != nil || r["max"] != nil {
		t.Fatalf("non-finite extrema encoded as %v/%v, want null", r["min"], r["max"])
	}
	data := r["data"].([]any)
	if data[0].(float64) != 1.5 || data[1] != nil || data[2] != nil {
		t.Fatalf("data encoded as %v", data)
	}
}

// TestWriteJSONEncodeFailure: an unencodable value answers a 500 error
// document, never a truncated 200.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{"bad": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["error"] == nil {
		t.Fatalf("body %q", rec.Body.String())
	}
}

func TestJobEviction(t *testing.T) {
	s := newTestServer(t, Config{MaxJobsKept: 3})
	for i := 0; i < 5; i++ {
		do(t, s, "POST", "/jobs", smallJob())
	}
	_, list := do(t, s, "GET", "/jobs", "")
	if n := len(list["jobs"].([]any)); n > 3 {
		t.Fatalf("%d jobs kept, want <= 3", n)
	}
}
