package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/landscape"
	"repro/internal/obs"
)

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Job is one reconstruction request flowing through the server. All mutable
// fields are guarded by the server mutex.
type Job struct {
	id    string
	tag   string
	spec  *JobSpec
	built *builtJob
	cache *exec.Cache // nil for uncacheable (shot-sampled) jobs

	state      JobState
	errMsg     string
	httpStatus int // status a Wait submission reports; 0 while unfinished

	submitted time.Time
	started   time.Time
	finished  time.Time

	cancel context.CancelFunc
	done   chan struct{}

	result *JobResult
	// progress carries a fleet job's latest streaming state while it runs
	// (nil for non-fleet jobs); GET /jobs/{id} reports it, so clients see
	// partial results before completion.
	progress *FleetProgress
	// fleet is the live scheduler of a running fleet job; /metrics reads
	// its per-device learned state (tail estimates, quarantine flags)
	// mid-run. Cleared when the job finishes.
	fleet *fleet.Scheduler

	// trace collects the job's spans (nil with tracing disabled); root is
	// its top-level "job" span, open from submission until finishJob.
	trace *obs.Tracer
	root  *obs.Span
}

// FleetProgress is the progressive partial-result view of a running fleet
// job.
type FleetProgress struct {
	// SamplesDone / SamplesTotal count measurements merged into the
	// streaming reconstruction.
	SamplesDone  int `json:"samples_done"`
	SamplesTotal int `json:"samples_total"`
	// VirtualTime is the fleet's simulated clock at the latest merged
	// batch.
	VirtualTime float64 `json:"virtual_time_s"`
	// Solves counts completed interim reconstructions; Residual is the
	// latest one's residual.
	Solves   int       `json:"solves"`
	Residual jsonFloat `json:"residual"`
	// Devices maps device names to their learned batch sizes.
	Devices map[string]int `json:"batch_sizes"`
	// Retries counts failed dispatches that were retried or re-dispatched;
	// QuarantineEvents counts quarantine transitions (bench + re-admit).
	Retries          int `json:"retries"`
	QuarantineEvents int `json:"quarantine_events"`
	// Quarantined lists the devices benched as of the latest merged batch.
	Quarantined []string `json:"quarantined,omitempty"`
}

// FleetQuarantineEvent is one quarantine transition of a fleet run: a device
// benched after crossing a failure threshold, or re-admitted after a probe.
type FleetQuarantineEvent struct {
	Device string    `json:"device"`
	Time   jsonFloat `json:"time_s"`
	Reason string    `json:"reason"`
}

// FleetDeviceState is one device's learned scheduling state at the end of a
// fleet run: batch size, tail estimates, and failure/quarantine counters.
type FleetDeviceState struct {
	Name        string    `json:"name"`
	BatchSize   int       `json:"batch_size"`
	Jobs        int       `json:"jobs"`
	Batches     int       `json:"batches"`
	TailProb    jsonFloat `json:"tail_prob"`
	TailMag     jsonFloat `json:"tail_mag"`
	FailRate    jsonFloat `json:"fail_rate"`
	Fails       int       `json:"fails"`
	Quarantined bool      `json:"quarantined"`
	Quarantines int       `json:"quarantines"`
}

// FleetResult summarizes fleet execution in a finished job's result.
type FleetResult struct {
	Makespan   jsonFloat      `json:"makespan_s"`
	SerialTime jsonFloat      `json:"serial_time_s"`
	Speedup    jsonFloat      `json:"speedup"`
	Retries    int            `json:"retries"`
	Batches    int            `json:"batches"`
	CacheHits  int            `json:"cache_served"`
	Timeout    jsonFloat      `json:"timeout_s"`
	Saved      jsonFloat      `json:"saved_s"`
	Solves     int            `json:"solves"`
	BatchSizes map[string]int `json:"batch_sizes"`
	PerDevice  map[string]int `json:"jobs_per_device"`
	// QuarantineEvents lists the run's quarantine transitions in time
	// order; Devices the per-device learned state (tail estimates,
	// failure counters). Both empty for non-risk-aware runs.
	QuarantineEvents []FleetQuarantineEvent `json:"quarantine_events,omitempty"`
	Devices          []FleetDeviceState     `json:"devices,omitempty"`
}

// JobResult is the outcome of a finished job.
type JobResult struct {
	GridSize         int     `json:"grid_size"`
	Samples          int     `json:"samples"`
	Speedup          float64 `json:"speedup"`
	SolverIterations int     `json:"solver_iterations"`
	Residual         float64 `json:"residual"`
	Sparsity         int     `json:"sparsity"`

	// Min/Max summarize the reconstructed landscape (NaN-tolerant; the
	// Arg indices are -1 — and the values encode as JSON null — if the
	// reconstruction has no finite values).
	Min      jsonFloat `json:"min"`
	ArgMin   int       `json:"arg_min"`
	MinPoint []float64 `json:"min_point,omitempty"`
	Max      jsonFloat `json:"max"`
	ArgMax   int       `json:"arg_max"`
	MaxPoint []float64 `json:"max_point,omitempty"`

	// Data is the full reconstructed landscape (return_data only);
	// non-finite entries encode as JSON null.
	Data jsonFloats `json:"data,omitempty"`

	// CacheHits/CacheMisses are the engine cache counters consumed by this
	// job's execution phase (best-effort under concurrency: concurrent
	// jobs on one cache interleave their accounting).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	// ArtifactID names the landscape artifact this job published — query it
	// via GET/POST /landscapes/{id}/... without rerunning anything. Empty
	// only if publication failed.
	ArtifactID string `json:"artifact_id,omitempty"`

	// Fleet summarizes fleet-mode execution (nil for plain jobs).
	Fleet *FleetResult `json:"fleet,omitempty"`
}

// panicError marks a recovered internal panic (HTTP 500).
type panicError struct{ msg string }

func (e *panicError) Error() string { return e.msg }

// runJob drives a job to completion: wait for a worker slot, execute, and
// record the outcome. It never panics — internal panics from dct/qsim/
// landscape surface as a failed job, not a dead process.
func (s *Server) runJob(ctx context.Context, j *Job) {
	defer s.wg.Done()
	// Release the job's context resources once it finishes; without this,
	// every completed async job would stay registered as a live child of
	// the server's base context for the process lifetime. CancelFuncs are
	// idempotent, so a later DELETE on the finished job stays safe.
	defer j.cancel()
	qspan, _ := obs.Start(ctx, "queue")
	select {
	case s.sem <- struct{}{}:
		qspan.End()
		defer func() { <-s.sem }()
	case <-ctx.Done():
		qspan.SetError(ctx.Err())
		qspan.End()
		s.finishJob(j, nil, ctx.Err())
		return
	}
	s.mu.Lock()
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = time.Now()
	}
	s.mu.Unlock()
	rspan, ctx := obs.Start(ctx, "run")
	res, err := s.execute(ctx, j)
	rspan.SetError(err)
	rspan.End()
	s.finishJob(j, res, err)
}

// execute runs the OSCAR pipeline for a job inside a panic-recovery
// boundary.
func (s *Server) execute(ctx context.Context, j *Job) (res *JobResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			err = &panicError{msg: fmt.Sprintf("internal panic: %v", p)}
		}
	}()
	opt := j.built.opts
	opt.Workers = s.cfg.JobWorkers
	var h0, m0 int64
	if j.cache != nil {
		h0, m0 = j.cache.Hits(), j.cache.Misses()
	}
	if j.built.fleetOpts != nil {
		return s.executeFleet(ctx, j, opt, h0, m0)
	}
	opt.Cache = j.cache
	recon, stats, err := core.ReconstructBatch(ctx, j.built.grid, j.built.eval, opt)
	if err != nil {
		return nil, err
	}
	return s.buildResult(ctx, j, recon, stats, h0, m0), nil
}

// executeFleet runs a fleet-mode job: sampling dispatched across the virtual
// device fleet, streamed into the incremental reconstruction, with progress
// published for GET polling.
func (s *Server) executeFleet(ctx context.Context, j *Job, opt core.Options, h0, m0 int64) (*JobResult, error) {
	names := make([]string, len(j.built.fleetDevices))
	for i, d := range j.built.fleetDevices {
		names[i] = d.Name
	}
	fopt := *j.built.fleetOpts
	fopt.Workers = s.cfg.JobWorkers
	fopt.Cache = j.cache
	fopt.OnProgress = func(p fleet.Progress) {
		sizes := make(map[string]int, len(p.BatchSizes))
		for i, b := range p.BatchSizes {
			if i < len(names) {
				sizes[names[i]] = b
			}
		}
		var quarantined []string
		for i, q := range p.Quarantined {
			if q && i < len(names) {
				quarantined = append(quarantined, names[i])
			}
		}
		s.mu.Lock()
		j.progress = &FleetProgress{
			SamplesDone:      p.SamplesDone,
			SamplesTotal:     p.SamplesTotal,
			VirtualTime:      p.VirtualTime,
			Solves:           p.Solves,
			Residual:         jsonFloat(p.Residual),
			Devices:          sizes,
			Retries:          p.Retries,
			QuarantineEvents: p.QuarantineEvents,
			Quarantined:      quarantined,
		}
		s.mu.Unlock()
	}
	sch, err := fleet.New(fopt, j.built.fleetDevices...)
	if err != nil {
		return nil, err
	}
	// Publish the live scheduler so /metrics can export mid-run tail
	// estimates and quarantine flags; finishJob withdraws it.
	s.mu.Lock()
	j.fleet = sch
	s.mu.Unlock()
	sres, err := sch.ReconstructStream(ctx, j.built.grid, opt)
	if err != nil {
		return nil, err
	}
	s.fleetRetries.Add(int64(sres.Report.Retries))
	s.fleetQuarantines.Add(int64(len(sres.Quarantines)))
	res := s.buildResult(ctx, j, sres.Landscape, sres.Stats, h0, m0)
	sizes := make(map[string]int, len(names))
	for i, b := range sres.BatchSizes {
		if i < len(names) {
			sizes[names[i]] = b
		}
	}
	perDevice := make(map[string]int, len(names))
	cacheServed := 0
	for _, r := range sres.Report.Results {
		if r.Device < 0 {
			cacheServed++
		} else if r.Device < len(names) {
			perDevice[names[r.Device]]++
		}
	}
	events := make([]FleetQuarantineEvent, 0, len(sres.Quarantines))
	for _, ev := range sres.Quarantines {
		events = append(events, FleetQuarantineEvent{
			Device: ev.Name, Time: jsonFloat(ev.Time), Reason: ev.Reason,
		})
	}
	var states []FleetDeviceState
	if j.built.fleetOpts.RiskAware {
		states = make([]FleetDeviceState, 0, len(sres.DeviceStates))
		for _, ds := range sres.DeviceStates {
			states = append(states, FleetDeviceState{
				Name:        ds.Name,
				BatchSize:   ds.BatchSize,
				Jobs:        ds.Jobs,
				Batches:     ds.Batches,
				TailProb:    jsonFloat(ds.TailProb),
				TailMag:     jsonFloat(ds.TailMag),
				FailRate:    jsonFloat(ds.FailRate),
				Fails:       ds.Fails,
				Quarantined: ds.Quarantined,
				Quarantines: ds.Quarantines,
			})
		}
	}
	res.Fleet = &FleetResult{
		Makespan:         jsonFloat(sres.Report.Makespan),
		SerialTime:       jsonFloat(sres.Report.SerialTime),
		Speedup:          jsonFloat(sres.Report.Speedup()),
		Retries:          sres.Report.Retries,
		Batches:          len(sres.Report.Batches),
		CacheHits:        cacheServed,
		Timeout:          jsonFloat(sres.Timeout),
		Saved:            jsonFloat(sres.Saved),
		Solves:           len(sres.Partials) + 1,
		BatchSizes:       sizes,
		PerDevice:        perDevice,
		QuarantineEvents: events,
		Devices:          states,
	}
	return res, nil
}

func (s *Server) buildResult(ctx context.Context, j *Job, recon *landscape.Landscape, stats *core.Stats, h0, m0 int64) *JobResult {
	res := &JobResult{
		GridSize:         stats.GridSize,
		Samples:          stats.Samples,
		Speedup:          stats.Speedup,
		SolverIterations: stats.SolverIterations,
		Residual:         stats.Residual,
		Sparsity:         stats.Sparsity,
	}
	var minV, maxV float64
	minV, res.ArgMin = recon.Min()
	maxV, res.ArgMax = recon.Max()
	res.Min, res.Max = jsonFloat(minV), jsonFloat(maxV)
	if res.ArgMin >= 0 {
		res.MinPoint = recon.Grid.Point(res.ArgMin)
	}
	if res.ArgMax >= 0 {
		res.MaxPoint = recon.Grid.Point(res.ArgMax)
	}
	if j.spec.ReturnData {
		res.Data = recon.Data
	}
	if j.cache != nil {
		res.CacheHits = j.cache.Hits() - h0
		res.CacheMisses = j.cache.Misses() - m0
	}
	// Publish the reconstruction as a landscape artifact so /landscapes can
	// serve it after the job is gone (and across restarts when the store is
	// disk-backed). A publish failure never fails the job — the result above
	// is already correct — it only counts against the store.
	art := landscape.NewArtifact(recon)
	art.Fingerprint = j.built.configKey
	art.Solver = landscape.SolverMeta{
		Method:           solverMethodName(j.spec.Options.Solver),
		SamplingFraction: j.spec.Options.SamplingFraction,
		Seed:             j.spec.Options.Seed,
		Iterations:       stats.SolverIterations,
		Residual:         stats.Residual,
		Sparsity:         stats.Sparsity,
	}
	art.CreatedAt = time.Now()
	pspan, _ := obs.Start(ctx, "publish")
	id, err := s.artifacts.publish(art)
	pspan.SetAttr("artifact_id", id)
	pspan.SetError(err)
	pspan.End()
	if err != nil {
		s.artifacts.publishErrors.Add(1)
	}
	res.ArtifactID = id
	return res
}

// solverMethodName canonicalizes the spec's solver method for artifact
// provenance (the default is FISTA, matching buildSolver).
func solverMethodName(ss *SolverSpec) string {
	if ss == nil || ss.Method == "" {
		return "fista"
	}
	return strings.ToLower(ss.Method)
}

// finishJob records a job outcome exactly once, closes the job's root span
// (open stage spans below it stay serializable: snapshots render them with a
// provisional end), and emits the structured completion line.
func (s *Server) finishJob(j *Job, res *JobResult, err error) {
	s.mu.Lock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		s.mu.Unlock()
		return
	}
	j.finished = time.Now()
	// Progress and the live scheduler are streaming views; a finished job
	// (including failed or canceled fleet jobs) must stop reporting them on
	// GET and /metrics.
	j.progress = nil
	j.fleet = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		j.httpStatus = http.StatusOK
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.errMsg = err.Error()
		// Non-standard but unambiguous "client closed request".
		j.httpStatus = 499
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		var pe *panicError
		if errors.As(err, &pe) {
			j.httpStatus = http.StatusInternalServerError
		} else {
			// Non-panic runtime failures trace back to the job
			// parameters (solver/evaluator rejected them).
			j.httpStatus = http.StatusUnprocessableEntity
		}
	}
	close(j.done)
	state, errMsg := j.state, j.errMsg
	queueMS, runMS := j.view(j.finished).QueueMS, j.view(j.finished).RunMS
	s.mu.Unlock()

	// The job is final past this point: no other goroutine writes its trace
	// again, so ending the root and draining the drop counter race nothing.
	j.root.SetAttr("state", string(state))
	if errMsg != "" {
		j.root.SetAttr("error", errMsg)
	}
	j.root.End()
	if d := j.trace.Dropped(); d > 0 {
		s.droppedSpans.Add(d)
	}
	attrs := []any{
		"trace_id", j.trace.ID(), "job_id", j.id, "state", string(state),
		"queue_ms", queueMS, "run_ms", runMS,
	}
	if errMsg != "" {
		attrs = append(attrs, "error", errMsg)
	}
	if state == StateDone {
		s.log.Info("job finished", attrs...)
	} else {
		s.log.Warn("job finished", attrs...)
	}
}

// jobJSON is the wire form of a job.
type jobJSON struct {
	ID        string    `json:"id"`
	Tag       string    `json:"tag,omitempty"`
	State     JobState  `json:"state"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
	QueueMS   int64     `json:"queue_ms"`
	RunMS     int64     `json:"run_ms"`
	// Progress reports a running fleet job's streaming state — partial
	// results before the job finishes.
	Progress *FleetProgress `json:"progress,omitempty"`
	Result   *JobResult     `json:"result,omitempty"`
}

// view renders a job under the server lock.
func (j *Job) view(now time.Time) jobJSON {
	v := jobJSON{
		ID:        j.id,
		Tag:       j.tag,
		State:     j.state,
		Error:     j.errMsg,
		Submitted: j.submitted,
	}
	switch {
	case j.started.IsZero():
		// Still queued: everything so far is queue time.
		end := now
		if !j.finished.IsZero() {
			end = j.finished
		}
		v.QueueMS = end.Sub(j.submitted).Milliseconds()
	default:
		v.QueueMS = j.started.Sub(j.submitted).Milliseconds()
		end := now
		if !j.finished.IsZero() {
			end = j.finished
		}
		v.RunMS = end.Sub(j.started).Milliseconds()
	}
	v.Result = j.result
	if j.result == nil {
		v.Progress = j.progress
	}
	return v
}
