package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// getTrace fetches and decodes a job's span tree.
func getTrace(t *testing.T, s *Server, id string) (*obs.TraceTree, string) {
	t.Helper()
	req := httptest.NewRequest("GET", "/jobs/"+id+"/trace", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET trace: status %d %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		JobID string         `json:"job_id"`
		State string         `json:"state"`
		Trace *obs.TraceTree `json:"trace"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if resp.Trace == nil {
		t.Fatalf("no trace in response: %s", rec.Body.String())
	}
	return resp.Trace, resp.State
}

// findSpan walks the forest depth-first and returns the first span with the
// given name.
func findSpan(nodes []*obs.SpanNode, name string) *obs.SpanNode {
	for _, n := range nodes {
		if n.Name == name {
			return n
		}
		if hit := findSpan(n.Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

// countSpans returns the total span count and how many are still open.
func countSpans(nodes []*obs.SpanNode) (total, open int) {
	for _, n := range nodes {
		total++
		if n.Open {
			open++
		}
		ct, co := countSpans(n.Children)
		total += ct
		open += co
	}
	return
}

// TestFleetJobTraceTree drives a fleet job end to end and checks the span
// tree: the root "job" span exists with validate/queue/run children tiling
// >= 95% of its wall-clock duration, the fleet plan and batch spans are
// present with virtual queue/exec children, and nothing dangles open.
func TestFleetJobTraceTree(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, out := do(t, s, "POST", "/jobs", fleetJob(""))
	if rec.Code != http.StatusOK {
		t.Fatalf("submit: %d %v", rec.Code, out)
	}
	id := out["id"].(string)

	tree, state := getTrace(t, s, id)
	if state != string(StateDone) {
		t.Fatalf("state %q", state)
	}
	if tree.TraceID == "" || len(tree.TraceID) != 16 {
		t.Fatalf("trace id %q", tree.TraceID)
	}
	if tree.DroppedSpans != 0 {
		t.Fatalf("dropped %d spans on a small job", tree.DroppedSpans)
	}
	total, open := countSpans(tree.Spans)
	if total != tree.SpanCount {
		t.Fatalf("span_count %d but tree holds %d", tree.SpanCount, total)
	}
	if open != 0 {
		t.Fatalf("%d spans still open on a finished job", open)
	}

	root := findSpan(tree.Spans, "job")
	if root == nil {
		t.Fatalf("no root job span: %+v", tree.Spans)
	}
	if got := root.Attrs["state"]; got != "done" {
		t.Fatalf("root state attr %v", got)
	}

	// validate + queue + run must tile the root span: no unattributed gaps
	// beyond 5% of the job's wall-clock time.
	var covered float64
	for _, name := range []string{"validate", "queue", "run"} {
		c := findSpan(root.Children, name)
		if c == nil {
			t.Fatalf("root missing %q child", name)
		}
		covered += c.DurMS
	}
	if root.DurMS <= 0 {
		t.Fatalf("root duration %v", root.DurMS)
	}
	if frac := covered / root.DurMS; frac < 0.95 {
		t.Fatalf("stage spans cover %.1f%% of the job, want >= 95%%", frac*100)
	}

	for _, name := range []string{"fleet.plan", "fleet.sample", "fleet.batch", "fleet.solve", "publish"} {
		if findSpan(tree.Spans, name) == nil {
			t.Fatalf("missing %q span", name)
		}
	}
	// Batch spans carry virtual time and queue/exec virtual children.
	batch := findSpan(tree.Spans, "fleet.batch")
	if batch.VStart == nil || batch.VEnd == nil || *batch.VEnd <= *batch.VStart {
		t.Fatalf("fleet.batch virtual interval %v..%v", batch.VStart, batch.VEnd)
	}
	if findSpan(batch.Children, "queue") == nil || findSpan(batch.Children, "exec") == nil {
		t.Fatalf("fleet.batch missing queue/exec children: %+v", batch.Children)
	}
	plan := findSpan(tree.Spans, "fleet.plan")
	if plan.Attrs["makespan_s"] == nil || plan.Attrs["batches"] == nil {
		t.Fatalf("fleet.plan attrs %v", plan.Attrs)
	}
}

// TestJobTraceChromeFormat asks for ?format=chrome and checks the trace-event
// envelope: metadata naming both clocks, X slices for every closed span, and
// microsecond timestamps anchored at zero.
func TestJobTraceChromeFormat(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, out := do(t, s, "POST", "/jobs", fleetJob(""))
	if rec.Code != http.StatusOK {
		t.Fatalf("submit: %d %v", rec.Code, out)
	}
	id := out["id"].(string)

	req := httptest.NewRequest("GET", "/jobs/"+id+"/trace?format=chrome", nil)
	crec := httptest.NewRecorder()
	s.ServeHTTP(crec, req)
	if crec.Code != http.StatusOK {
		t.Fatalf("chrome trace: %d", crec.Code)
	}
	var ct obs.ChromeTrace
	if err := json.Unmarshal(crec.Body.Bytes(), &ct); err != nil {
		t.Fatalf("decode chrome trace: %v", err)
	}
	var meta, slices int
	for _, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if ev.TS < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta == 0 {
		t.Fatal("no process_name metadata events")
	}
	tree, _ := getTrace(t, s, id)
	wall, _ := countSpans(tree.Spans)
	// Every span yields a wall slice; spans with virtual time add a second
	// slice on the virtual-clock track.
	if slices < wall {
		t.Fatalf("%d slices for %d spans", slices, wall)
	}
}

// TestTraceSurvivesCancellation cancels a job mid-solve and checks the trace
// still renders a complete, closed tree — cancellation must not leak open
// spans once the job reaches a terminal state.
func TestTraceSurvivesCancellation(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{
		"problem": {"kind": "maxcut3", "n": 14, "seed": 3},
		"backend": {"kind": "statevector"},
		"grid": {"beta_n": 30, "gamma_n": 30},
		"options": {"sampling_fraction": 1.0}
	}`
	rec, out := do(t, s, "POST", "/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", rec.Code, out)
	}
	id := out["id"].(string)
	time.Sleep(20 * time.Millisecond) // let it start
	do(t, s, "DELETE", "/jobs/"+id, "")

	// The cancel unwinds asynchronously; poll until the root span closes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		tree, state := getTrace(t, s, id)
		_, open := countSpans(tree.Spans)
		if state == string(StateCanceled) && open == 0 {
			root := findSpan(tree.Spans, "job")
			if root == nil {
				t.Fatal("no root span after cancellation")
			}
			if got := root.Attrs["state"]; got != "canceled" {
				t.Fatalf("root state attr %v", got)
			}
			if findSpan(root.Children, "run") == nil {
				t.Fatal("canceled job lost its run span")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("state %q with %d open spans after cancel", state, open)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceOfRunningJobShowsOpenSpans snapshots a job mid-flight: the tree
// must render with provisional ends and open markers rather than erroring.
func TestTraceOfRunningJobShowsOpenSpans(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{
		"problem": {"kind": "maxcut3", "n": 14, "seed": 3},
		"backend": {"kind": "statevector"},
		"grid": {"beta_n": 30, "gamma_n": 30},
		"options": {"sampling_fraction": 1.0}
	}`
	rec, out := do(t, s, "POST", "/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", rec.Code, out)
	}
	id := out["id"].(string)
	defer do(t, s, "DELETE", "/jobs/"+id, "")

	deadline := time.Now().Add(10 * time.Second)
	for {
		tree, state := getTrace(t, s, id)
		if state == string(StateRunning) {
			_, open := countSpans(tree.Spans)
			if open == 0 {
				t.Fatal("running job shows no open spans")
			}
			return
		}
		if state == string(StateDone) || state == string(StateFailed) {
			t.Skipf("job reached %q before a snapshot landed", state)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", state)
		}
	}
}

// TestTraceDisabledAndUnknown covers the two 404 paths: tracing turned off by
// config, and a job id the server has never seen.
func TestTraceDisabledAndUnknown(t *testing.T) {
	s := newTestServer(t, Config{DisableTracing: true})
	rec, out := do(t, s, "POST", "/jobs", smallJob())
	if rec.Code != http.StatusOK {
		t.Fatalf("submit: %d %v", rec.Code, out)
	}
	id := out["id"].(string)
	rec, out = do(t, s, "GET", "/jobs/"+id+"/trace", "")
	if rec.Code != http.StatusNotFound || out["error"] != "tracing disabled" {
		t.Fatalf("disabled trace: %d %v", rec.Code, out)
	}
	rec, out = do(t, s, "GET", "/jobs/nope/trace", "")
	if rec.Code != http.StatusNotFound || out["error"] != "unknown job" {
		t.Fatalf("unknown job: %d %v", rec.Code, out)
	}
}

// TestSpanCapDropsAndCounts caps spans low and checks the tree stays bounded,
// the drop counter surfaces in the trace JSON, and /metrics accumulates the
// total once the job finishes.
func TestSpanCapDropsAndCounts(t *testing.T) {
	s := newTestServer(t, Config{MaxTraceSpans: 4})
	rec, out := do(t, s, "POST", "/jobs", fleetJob(""))
	if rec.Code != http.StatusOK {
		t.Fatalf("submit: %d %v", rec.Code, out)
	}
	id := out["id"].(string)
	tree, _ := getTrace(t, s, id)
	if tree.SpanCount > 4 {
		t.Fatalf("cap 4 but %d spans kept", tree.SpanCount)
	}
	if tree.DroppedSpans == 0 {
		t.Fatal("fleet job under a 4-span cap dropped nothing")
	}
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), "oscard_trace_dropped_spans_total") {
		t.Fatal("dropped-spans counter missing from /metrics")
	}
	for _, line := range strings.Split(mrec.Body.String(), "\n") {
		if strings.HasPrefix(line, "oscard_trace_dropped_spans_total ") {
			if strings.TrimPrefix(line, "oscard_trace_dropped_spans_total ") == "0" {
				t.Fatal("dropped-spans total still zero after capped job")
			}
		}
	}
}

// TestQueryTraceInline asks the artifact query endpoint for its per-request
// trace: fit and eval child spans inline in the response, nothing stored.
func TestQueryTraceInline(t *testing.T) {
	s := newTestServer(t, Config{})
	id := submitArtifactJob(t, s, smallJob())
	body := `{"points": [[0.1, 0.2]], "gradients": true}`
	req := httptest.NewRequest("POST", "/landscapes/"+id+"/query?trace=1", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Trace *obs.TraceTree `json:"trace"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Trace == nil {
		t.Fatalf("no inline trace: %s", rec.Body.String())
	}
	root := findSpan(resp.Trace.Spans, "query")
	if root == nil {
		t.Fatalf("no query span: %+v", resp.Trace.Spans)
	}
	for _, name := range []string{"query.fit", "query.eval"} {
		if findSpan(root.Children, name) == nil {
			t.Fatalf("query trace missing %q: %+v", name, root.Children)
		}
	}

	// Without the flag the response must stay trace-free.
	req = httptest.NewRequest("POST", "/landscapes/"+id+"/query", strings.NewReader(body))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), `"trace"`) {
		t.Fatal("trace leaked into an untraced query response")
	}
}

// TestArtifactGridETag covers the PR-9 leftover: grid responses carry a
// content-addressed ETag and honor If-None-Match with 304s, including weak
// validators and wildcards per RFC 9110.
func TestArtifactGridETag(t *testing.T) {
	s := newTestServer(t, Config{})
	id := submitArtifactJob(t, s, smallJob())

	get := func(inm string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/landscapes/"+id+"/grid", nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec
	}

	rec := get("")
	if rec.Code != http.StatusOK {
		t.Fatalf("grid: %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")
	if etag != `"`+id+`"` {
		t.Fatalf("ETag %q, want quoted artifact id", etag)
	}

	for _, inm := range []string{etag, "W/" + etag, `"other", ` + etag, "*"} {
		rec = get(inm)
		if rec.Code != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", inm, rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Fatalf("304 carried a %d-byte body", rec.Body.Len())
		}
		if rec.Header().Get("ETag") != etag {
			t.Fatalf("304 lost the ETag header")
		}
	}
	rec = get(`"ls-something-else"`)
	if rec.Code != http.StatusOK {
		t.Fatalf("mismatched If-None-Match: %d, want 200", rec.Code)
	}
}
