package service

import (
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed metric family: its declared type and the samples
// (full series name with labels -> value) that follow it.
type promFamily struct {
	typ     string
	help    bool
	samples map[string]float64
	order   int
}

// parseProm is a minimal Prometheus text-format (0.0.4) parser. It enforces
// the structural invariants the exposition format demands: HELP/TYPE precede
// samples, every sample belongs to a declared family (histogram suffixes
// _bucket/_sum/_count fold into their base family), and values parse as
// floats.
func parseProm(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	order := 0
	get := func(name string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{samples: map[string]float64{}, order: order}
			order++
			fams[name] = f
		}
		return f
	}
	baseName := func(series string) string {
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if f, ok := fams[base]; ok && f.typ == "histogram" {
					return base
				}
			}
		}
		return name
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			get(parts[0]).help = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			f := get(parts[0])
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, parts[0])
			}
			f.typ = parts[1]
		case strings.HasPrefix(line, "#"):
			// comment
		default:
			i := strings.LastIndexByte(line, ' ')
			if i < 0 {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			series, val := line[:i], line[i+1:]
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, val, err)
			}
			base := baseName(series)
			f, ok := fams[base]
			if !ok || f.typ == "" || !f.help {
				t.Fatalf("line %d: sample %q before its # HELP/# TYPE", ln+1, series)
			}
			if _, dup := f.samples[series]; dup {
				t.Fatalf("line %d: duplicate series %q", ln+1, series)
			}
			f.samples[series] = v
		}
	}
	return fams
}

func scrape(t *testing.T, s *Server) map[string]*promFamily {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	return parseProm(t, rec.Body.String())
}

// TestMetricsFamiliesPresentTypedSorted runs a job, scrapes, and checks every
// exported family is present, typed, helped, and emitted in sorted order.
func TestMetricsFamiliesPresentTypedSorted(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec, out := do(t, s, "POST", "/jobs", fleetJob("")); rec.Code != 200 {
		t.Fatalf("job: %d %v", rec.Code, out)
	}
	fams := scrape(t, s)

	want := map[string]string{
		"oscard_build_info":                    "gauge",
		"oscard_uptime_seconds":                "gauge",
		"oscard_jobs":                          "gauge",
		"oscard_panics_total":                  "counter",
		"oscard_trace_dropped_spans_total":     "counter",
		"oscard_cache_hits_total":              "counter",
		"oscard_cache_misses_total":            "counter",
		"oscard_cache_entries":                 "gauge",
		"oscard_cache_configs":                 "gauge",
		"oscard_artifacts":                     "gauge",
		"oscard_artifact_lru_entries":          "gauge",
		"oscard_artifacts_published_total":     "counter",
		"oscard_artifact_lru_hits_total":       "counter",
		"oscard_artifact_lru_misses_total":     "counter",
		"oscard_artifact_evictions_total":      "counter",
		"oscard_artifact_query_points_total":   "counter",
		"oscard_artifact_load_errors_total":    "counter",
		"oscard_artifact_publish_errors_total": "counter",
		"oscard_fleet_retries_total":           "counter",
		"oscard_fleet_quarantine_events_total": "counter",
		"oscard_fleet_batch_size":              "gauge",
		"oscard_fleet_samples_done":            "gauge",
		"oscard_fleet_samples_total":           "gauge",
		"oscard_fleet_solves":                  "gauge",
		"oscard_fleet_retries":                 "gauge",
		"oscard_fleet_quarantine_events":       "gauge",
		"oscard_fleet_tail_prob":               "gauge",
		"oscard_fleet_fail_rate":               "gauge",
		"oscard_fleet_quarantined":             "gauge",
		"oscard_stage_duration_seconds":        "histogram",
		"oscard_fleet_virtual_seconds":         "histogram",
	}
	for name, typ := range want {
		f, ok := fams[name]
		if !ok {
			t.Errorf("family %s missing", name)
			continue
		}
		if f.typ != typ {
			t.Errorf("family %s typed %q, want %q", name, f.typ, typ)
		}
	}

	// Families must arrive in sorted name order so scrapes diff cleanly.
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return fams[names[i]].order < fams[names[j]].order })
	if !sort.StringsAreSorted(names) {
		t.Fatalf("families not in sorted order: %v", names)
	}

	// build_info is a constant-1 gauge with both labels.
	for series, v := range fams["oscard_build_info"].samples {
		if v != 1 || !strings.Contains(series, "go_version=") || !strings.Contains(series, "revision=") {
			t.Fatalf("build info %q = %v", series, v)
		}
	}

	// A finished fleet job must have fed the stage histograms.
	stage := fams["oscard_stage_duration_seconds"]
	for _, name := range []string{"validate", "queue", "run", "fleet.batch", "publish"} {
		series := `oscard_stage_duration_seconds_count{stage="` + name + `"}`
		if stage.samples[series] < 1 {
			t.Errorf("stage %q never observed: %v", name, stage.samples[series])
		}
	}
	virt := fams["oscard_fleet_virtual_seconds"]
	if virt.samples[`oscard_fleet_virtual_seconds_count{stage="fleet.plan"}`] < 1 {
		t.Error("fleet.plan virtual histogram never observed")
	}
}

// TestMetricsHistogramInvariants checks bucket cumulativity: counts rise with
// le, the +Inf bucket equals _count, and _sum is non-negative.
func TestMetricsHistogramInvariants(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec, out := do(t, s, "POST", "/jobs", smallJob()); rec.Code != 200 {
		t.Fatalf("job: %d %v", rec.Code, out)
	}
	fams := scrape(t, s)
	stage := fams["oscard_stage_duration_seconds"]
	if stage == nil {
		t.Fatal("no stage histogram")
	}

	// Group buckets by stage label.
	type hist struct {
		buckets map[float64]float64
		count   float64
		sum     float64
	}
	hists := map[string]*hist{}
	get := func(label string) *hist {
		h := hists[label]
		if h == nil {
			h = &hist{buckets: map[float64]float64{}}
			hists[label] = h
		}
		return h
	}
	for series, v := range stage.samples {
		stageLabel := series[strings.Index(series, `stage="`)+7:]
		stageLabel = stageLabel[:strings.IndexByte(stageLabel, '"')]
		switch {
		case strings.HasPrefix(series, "oscard_stage_duration_seconds_bucket"):
			leStr := series[strings.Index(series, `le="`)+4:]
			leStr = leStr[:strings.IndexByte(leStr, '"')]
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", leStr, err)
			}
			get(stageLabel).buckets[le] = v
		case strings.HasPrefix(series, "oscard_stage_duration_seconds_count"):
			get(stageLabel).count = v
		case strings.HasPrefix(series, "oscard_stage_duration_seconds_sum"):
			get(stageLabel).sum = v
		}
	}
	if len(hists) == 0 {
		t.Fatal("no stage series parsed")
	}
	for label, h := range hists {
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := 0.0
		for _, le := range les {
			if h.buckets[le] < prev {
				t.Fatalf("stage %q: bucket le=%g count %g < previous %g", label, le, h.buckets[le], prev)
			}
			prev = h.buckets[le]
		}
		inf := h.buckets[les[len(les)-1]]
		if les[len(les)-1] != inf && h.buckets[les[len(les)-1]] != h.count {
			t.Fatalf("stage %q: +Inf bucket %g != count %g", label, h.buckets[les[len(les)-1]], h.count)
		}
		if h.sum < 0 {
			t.Fatalf("stage %q: negative sum %g", label, h.sum)
		}
	}
}

// TestMetricsMonotoneAcrossJobs scrapes after one job and again after a
// second, asserting every counter-typed series is monotone non-decreasing
// and the job/stage counts actually advanced.
func TestMetricsMonotoneAcrossJobs(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec, out := do(t, s, "POST", "/jobs", smallJob()); rec.Code != 200 {
		t.Fatalf("job 1: %d %v", rec.Code, out)
	}
	first := scrape(t, s)
	if rec, out := do(t, s, "POST", "/jobs", smallJob()); rec.Code != 200 {
		t.Fatalf("job 2: %d %v", rec.Code, out)
	}
	second := scrape(t, s)

	for name, f1 := range first {
		if f1.typ != "counter" && f1.typ != "histogram" {
			continue
		}
		f2, ok := second[name]
		if !ok {
			t.Errorf("family %s vanished on the second scrape", name)
			continue
		}
		for series, v1 := range f1.samples {
			if v2, ok := f2.samples[series]; ok && v2 < v1 {
				t.Errorf("series %s went backwards: %g -> %g", series, v1, v2)
			}
		}
	}

	if got := second["oscard_jobs"].samples[`oscard_jobs{state="done"}`]; got != 2 {
		t.Fatalf("done jobs %g, want 2", got)
	}
	c1 := first["oscard_stage_duration_seconds"].samples[`oscard_stage_duration_seconds_count{stage="run"}`]
	c2 := second["oscard_stage_duration_seconds"].samples[`oscard_stage_duration_seconds_count{stage="run"}`]
	if c2 != c1+1 {
		t.Fatalf("run stage count %g -> %g, want +1", c1, c2)
	}
}
