package service

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/interp"
	"repro/internal/landscape"
	"repro/internal/obs"
)

// artifactExt names artifact files in the store directory: <id>.landscape.
const artifactExt = ".landscape"

// artifactStore is the landscape-as-a-service registry: every finished
// reconstruction publishes its landscape here as a content-addressed,
// self-describing artifact, and the query endpoints serve values out of it
// without ever touching a backend. Artifacts (axes + data + provenance) live
// in memory and, when dir is set, on disk — so they survive restarts. Fitted
// spline interpolators are kept in a bounded LRU: a query for a hot artifact
// reuses the fitted surrogate, a cold one refits (bit-identical — fitting is
// deterministic), and the LRU bounds the resident spline memory, not which
// artifacts are servable.
type artifactStore struct {
	dir     string // "" = memory-only (artifacts die with the process)
	lruCap  int
	workers int // batch-evaluation worker budget for fitted interpolators

	mu     sync.Mutex
	arts   map[string]*landscape.Artifact
	order  []string // publish order, oldest first (listing)
	lru    *list.List
	lruIdx map[string]*list.Element

	// dirErr records a store-directory failure at boot (surfaced in /stats);
	// the store degrades to memory-only rather than refusing to serve.
	dirErr string

	published     atomic.Int64
	evictions     atomic.Int64
	lruHits       atomic.Int64
	lruMisses     atomic.Int64
	queryPoints   atomic.Int64
	loadErrors    atomic.Int64
	publishErrors atomic.Int64
}

// lruEntry is one fitted interpolator resident in the LRU.
type lruEntry struct {
	id string
	ip interp.Interpolator
}

// newArtifactStore builds the registry and, when dir is set, loads every
// artifact already on disk. Boot is best-effort: an unusable directory
// degrades the store to memory-only and a corrupt file is skipped, both
// counted and reported in /stats rather than failing server construction —
// one damaged artifact must not take the service down.
func newArtifactStore(dir string, lruCap, workers int) *artifactStore {
	st := &artifactStore{
		dir:     dir,
		lruCap:  lruCap,
		workers: workers,
		arts:    make(map[string]*landscape.Artifact),
		lru:     list.New(),
		lruIdx:  make(map[string]*list.Element),
	}
	if dir == "" {
		return st
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		st.dirErr = err.Error()
		st.dir = ""
		return st
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		st.dirErr = err.Error()
		st.dir = ""
		return st
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), artifactExt) {
			continue
		}
		a, err := landscape.LoadArtifactFile(filepath.Join(dir, e.Name()))
		if err != nil {
			st.loadErrors.Add(1)
			continue
		}
		id := a.ID()
		if _, dup := st.arts[id]; dup {
			continue
		}
		st.arts[id] = a
		st.order = append(st.order, id)
	}
	// ReadDir order is lexical by filename (content hash); re-establish
	// publish order by creation time so listings read chronologically.
	sort.SliceStable(st.order, func(i, j int) bool {
		return st.arts[st.order[i]].CreatedAt.Before(st.arts[st.order[j]].CreatedAt)
	})
	return st
}

// publish registers an artifact, persisting it when the store is disk-backed.
// Identical content (same ID) deduplicates to the existing artifact. The
// returned ID is always usable; err reports a failed disk write (the artifact
// still serves from memory).
func (st *artifactStore) publish(a *landscape.Artifact) (string, error) {
	id := a.ID()
	st.mu.Lock()
	if _, exists := st.arts[id]; exists {
		st.mu.Unlock()
		return id, nil
	}
	st.arts[id] = a
	st.order = append(st.order, id)
	dir := st.dir
	st.mu.Unlock()
	st.published.Add(1)
	if dir == "" {
		return id, nil
	}
	if err := landscape.SaveArtifactFile(filepath.Join(dir, id+artifactExt), a); err != nil {
		return id, err
	}
	return id, nil
}

// get returns an artifact by ID.
func (st *artifactStore) get(id string) (*landscape.Artifact, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	a, ok := st.arts[id]
	return a, ok
}

// snapshot returns every artifact in publish order.
func (st *artifactStore) snapshot() []*landscape.Artifact {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*landscape.Artifact, len(st.order))
	for i, id := range st.order {
		out[i] = st.arts[id]
	}
	return out
}

// len reports the number of stored artifacts and resident fitted
// interpolators.
func (st *artifactStore) len() (arts, fitted int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.arts), st.lru.Len()
}

// interpolator returns the fitted surrogate for an artifact, serving from
// the LRU when hot and refitting when evicted. Refits are bit-identical to
// the original fit — spline fitting is deterministic — so eviction is purely
// a memory/latency trade, never a correctness one.
func (st *artifactStore) interpolator(id string) (interp.Interpolator, error) {
	st.mu.Lock()
	if el, ok := st.lruIdx[id]; ok {
		st.lru.MoveToFront(el)
		ip := el.Value.(*lruEntry).ip
		st.mu.Unlock()
		st.lruHits.Add(1)
		return ip, nil
	}
	a, ok := st.arts[id]
	st.mu.Unlock()
	if !ok {
		return nil, errors.New("unknown landscape")
	}
	st.lruMisses.Add(1)
	ip, err := fitArtifact(a, st.workers)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	if el, ok := st.lruIdx[id]; ok {
		// A concurrent query fit the same artifact first; serve that one so
		// every caller shares a single resident spline.
		st.lru.MoveToFront(el)
		ip = el.Value.(*lruEntry).ip
	} else {
		st.lruIdx[id] = st.lru.PushFront(&lruEntry{id: id, ip: ip})
		for st.lru.Len() > st.lruCap {
			tail := st.lru.Back()
			st.lru.Remove(tail)
			delete(st.lruIdx, tail.Value.(*lruEntry).id)
			st.evictions.Add(1)
		}
	}
	st.mu.Unlock()
	return ip, nil
}

// fitArtifact fits the spline surrogate for an artifact's landscape.
func fitArtifact(a *landscape.Artifact, workers int) (interp.Interpolator, error) {
	l, err := a.Landscape()
	if err != nil {
		return nil, err
	}
	axes := make([][]float64, len(l.Grid.Axes))
	for i, ax := range l.Grid.Axes {
		axes[i] = ax.Values()
	}
	ip, err := interp.Fit(axes, l.Data)
	if err != nil {
		return nil, err
	}
	switch t := ip.(type) {
	case *interp.Bicubic:
		t.SetWorkers(workers)
	case *interp.NDSpline:
		t.SetWorkers(workers)
	}
	return ip, nil
}

// artifactJSON is the wire metadata of a stored artifact.
type artifactJSON struct {
	ID          string                `json:"id"`
	Shape       []int                 `json:"shape"`
	Points      int                   `json:"points"`
	Axes        []AxisSpec            `json:"axes"`
	Fingerprint string                `json:"fingerprint,omitempty"`
	Solver      *landscape.SolverMeta `json:"solver,omitempty"`
	NRMSE       jsonFloat             `json:"nrmse"`
	CreatedAt   time.Time             `json:"created_at"`
	Checksum    string                `json:"checksum"`
}

func artifactView(a *landscape.Artifact) artifactJSON {
	v := artifactJSON{
		ID:          a.ID(),
		Shape:       a.Shape(),
		Fingerprint: a.Fingerprint,
		NRMSE:       jsonFloat(a.NRMSE),
		CreatedAt:   a.CreatedAt,
		Checksum:    a.Checksum(),
	}
	points := 1
	for _, ax := range a.Axes {
		v.Axes = append(v.Axes, AxisSpec{Name: ax.Name, Min: ax.Min, Max: ax.Max, N: ax.N})
		points *= ax.N
	}
	v.Points = points
	if a.Solver != (landscape.SolverMeta{}) {
		sm := a.Solver
		v.Solver = &sm
	}
	return v
}

func (s *Server) handleArtifactList(w http.ResponseWriter, r *http.Request) {
	arts := s.artifacts.snapshot()
	views := make([]artifactJSON, len(arts))
	for i, a := range arts {
		views[i] = artifactView(a)
	}
	writeJSON(w, http.StatusOK, map[string]any{"landscapes": views})
}

func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	a, ok := s.artifacts.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown landscape"})
		return
	}
	writeJSON(w, http.StatusOK, artifactView(a))
}

// handleArtifactGrid returns the full grid data of one artifact — the dense
// reconstructed landscape a client can plot or post-process. Metadata rides
// along so the response is self-describing. Artifact ids are content
// addresses, so the id doubles as a strong ETag: a client re-fetching an
// unchanged grid gets 304 Not Modified and skips the (potentially large)
// data payload entirely.
func (s *Server) handleArtifactGrid(w http.ResponseWriter, r *http.Request) {
	a, ok := s.artifacts.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown landscape"})
		return
	}
	etag := `"` + a.ID() + `"`
	w.Header().Set("ETag", etag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"meta": artifactView(a),
		"data": jsonFloats(a.Data),
	})
}

// etagMatch reports whether an If-None-Match header value matches the given
// strong ETag: "*" matches anything, otherwise each comma-separated
// candidate is compared after stripping any weak-validator prefix (weak
// comparison — RFC 9110 §8.8.3.2 — is the correct mode for If-None-Match).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" {
			return true
		}
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// queryRequest is the body of POST /landscapes/{id}/query: a batch of
// parameter vectors to evaluate on the fitted surrogate.
type queryRequest struct {
	// Points are the parameter vectors, each of the artifact's arity.
	// Out-of-domain coordinates clamp to the grid hull.
	Points [][]float64 `json:"points"`
	// Gradients additionally returns the surrogate gradient at every point.
	Gradients bool `json:"gradients,omitempty"`
}

// queryResponse carries the batch evaluation. Values are bit-identical to
// in-process Interpolator evaluation on the same artifact: the float64s
// round-trip exactly through the shortest-round-trip JSON encoding.
type queryResponse struct {
	ID        string       `json:"id"`
	Count     int          `json:"count"`
	Values    jsonFloats   `json:"values"`
	Gradients []jsonFloats `json:"gradients,omitempty"`
	// Trace is the request's span tree, returned inline when the query was
	// made with ?trace=1 (query traces are per-request and not stored
	// server-side, unlike job traces).
	Trace *obs.TraceTree `json:"trace,omitempty"`
}

// handleArtifactQuery evaluates a batch of points on an artifact's fitted
// surrogate — the vectorized, backend-free read path. Validation failures are
// 400s; the evaluation itself cannot fail (the surrogate clamps to the hull).
func (s *Server) handleArtifactQuery(w http.ResponseWriter, r *http.Request) {
	a, ok := s.artifacts.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown landscape"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req queryRequest
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "malformed query: " + err.Error()})
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "query: no points"})
		return
	}
	if len(req.Points) > s.cfg.MaxQueryPoints {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("query: %d points exceeds the limit of %d", len(req.Points), s.cfg.MaxQueryPoints)})
		return
	}
	arity := len(a.Axes)
	for i, p := range req.Points {
		if len(p) != arity {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": fmt.Sprintf("query: point %d has %d coordinates, landscape has %d axes", i, len(p), arity)})
			return
		}
		for k, c := range p {
			if !isFinite(c) {
				writeJSON(w, http.StatusBadRequest, map[string]any{
					"error": fmt.Sprintf("query: point %d coordinate %d is not finite", i, k)})
				return
			}
		}
	}
	// Surrogate queries get a per-request trace: it feeds the stage
	// histograms always, and rides back inline on ?trace=1. The tracer is
	// request-scoped and never stored server-side.
	tr := s.newTracer()
	root := tr.Start("query")
	root.SetAttr("points", len(req.Points))
	root.SetAttr("gradients", req.Gradients)
	fspan := root.Child("query.fit")
	ip, err := s.artifacts.interpolator(a.ID())
	fspan.SetError(err)
	fspan.End()
	if err != nil {
		root.End()
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": "fitting surrogate: " + err.Error()})
		return
	}
	resp := queryResponse{ID: a.ID(), Count: len(req.Points)}
	espan := root.Child("query.eval")
	values := make([]float64, len(req.Points))
	if err := ip.AtPoints(values, req.Points); err != nil {
		espan.SetError(err)
		espan.End()
		root.End()
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "query: " + err.Error()})
		return
	}
	resp.Values = values
	if req.Gradients {
		grads := make([][]float64, len(req.Points))
		backing := make([]float64, len(req.Points)*arity)
		for i := range grads {
			grads[i] = backing[i*arity : (i+1)*arity : (i+1)*arity]
		}
		if err := ip.GradientAtPoints(grads, req.Points); err != nil {
			espan.SetError(err)
			espan.End()
			root.End()
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "query: " + err.Error()})
			return
		}
		resp.Gradients = make([]jsonFloats, len(grads))
		for i, g := range grads {
			resp.Gradients[i] = g
		}
	}
	espan.End()
	root.End()
	s.artifacts.queryPoints.Add(int64(len(req.Points)))
	if r.URL.Query().Get("trace") == "1" {
		resp.Trace = tr.Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

// artifactStats renders the store's /stats block.
func (s *Server) artifactStats() map[string]any {
	st := s.artifacts
	arts, fitted := st.len()
	out := map[string]any{
		"count":          arts,
		"lru_entries":    fitted,
		"lru_capacity":   st.lruCap,
		"published":      st.published.Load(),
		"evictions":      st.evictions.Load(),
		"lru_hits":       st.lruHits.Load(),
		"lru_misses":     st.lruMisses.Load(),
		"query_points":   st.queryPoints.Load(),
		"load_errors":    st.loadErrors.Load(),
		"publish_errors": st.publishErrors.Load(),
		"disk_backed":    st.dir != "",
	}
	if st.dirErr != "" {
		out["dir_error"] = st.dirErr
	}
	return out
}

// ArtifactInfo reports the store's size and boot-time load failures, for
// oscard's startup logging.
func (s *Server) ArtifactInfo() (count int, loadErrors int64, dirErr string) {
	n, _ := s.artifacts.len()
	return n, s.artifacts.loadErrors.Load(), s.artifacts.dirErr
}
