// Package service exposes the OSCAR engine as a long-running HTTP job
// server: clients POST reconstruction jobs (problem spec, device, grid,
// solver options as JSON), the server runs them through a shared execution
// engine with a bounded worker pool, and identical device configurations
// share one memoizing execution cache across requests — the service-level
// deployment the ROADMAP calls for.
//
// Endpoints:
//
//	POST   /jobs      submit a job; "wait": true streams the result on the
//	                  open connection (disconnecting cancels the solve),
//	                  otherwise returns 202 with the job id to poll
//	GET    /jobs      list jobs (newest last)
//	GET    /jobs/{id} poll one job (state, timings, result when done)
//	DELETE /jobs/{id} cancel a queued or running job
//	GET    /stats     cache hit/miss/size per device configuration,
//	                  job counts, per-job timings, recovered panics,
//	                  fleet retry and quarantine totals, artifact-store
//	                  counters
//	GET    /metrics   Prometheus text-format export: job states, cache
//	                  counters, fleet retry/quarantine counters, learned
//	                  batch-size and tail-estimate gauges, artifact-store
//	                  counters
//	GET    /healthz   liveness probe
//
//	GET    /landscapes             list published landscape artifacts
//	GET    /landscapes/{id}        one artifact's metadata
//	GET    /landscapes/{id}/grid   the artifact's dense grid data
//	POST   /landscapes/{id}/query  batch-evaluate the fitted surrogate
//	                               (values and optional gradients; never
//	                               touches a backend)
//
// Every finished reconstruction publishes its landscape into a
// content-addressed artifact store (disk-backed when Config.ArtifactDir is
// set, so artifacts survive restarts) and reports the artifact id in its
// result. The query endpoint evaluates batches on a fitted spline surrogate
// served from a bounded LRU: hot artifacts never refit, evicted ones refit
// on demand with bit-identical results.
//
// Jobs carrying a "fleet" block run in fleet mode: sampling is dispatched
// across a list of virtual devices with adaptive batch sizing
// (internal/fleet) and streamed into an incremental reconstruction; polling
// such a job while it runs returns progressive partial results. Fleet jobs
// accept deterministic fault-injection scenarios (calibration drift,
// dropouts, correlated queue spikes and retry storms) per device or shared
// across the fleet, and a risk-aware scheduling mode that caps batch sizes
// by learned tail exposure, retries failures with backoff, and quarantines
// persistently failing devices.
//
// Every job runs under its own context.Context: client disconnects (for
// wait-mode submissions), DELETE, and server shutdown all cancel the solve
// through the engine's existing cancellation plumbing. A panic-recovery
// boundary around each job and each request converts internal panics into
// HTTP errors instead of process death.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// Config bounds the server.
type Config struct {
	// MaxConcurrent bounds reconstruction jobs running at once (further
	// submissions queue). Default 8.
	MaxConcurrent int
	// JobWorkers is the per-job worker budget for the execution engine and
	// the sharded solver (0 = GOMAXPROCS).
	JobWorkers int
	// MaxGridPoints rejects grids larger than this at submission (413-free
	// simplicity: it is a 400). Default 1<<20.
	MaxGridPoints int
	// MaxQubits rejects statevector/density jobs beyond this size.
	// Default 20.
	MaxQubits int
	// Quantum is the cache parameter quantization step (0 = engine
	// default).
	Quantum float64
	// MaxJobsKept bounds the finished-job history; the oldest finished
	// jobs are evicted first. Default 512.
	MaxJobsKept int
	// MaxBodyBytes bounds request bodies. Default 1<<20.
	MaxBodyBytes int64
	// ArtifactDir, when set, persists published landscape artifacts there so
	// they survive restarts. Empty keeps them in memory only.
	ArtifactDir string
	// ArtifactLRU bounds the fitted interpolators kept hot for the
	// /landscapes query path (artifacts beyond it refit on demand,
	// bit-identically). Default 32.
	ArtifactLRU int
	// MaxQueryPoints bounds one /landscapes query batch. Default 1<<16.
	MaxQueryPoints int
	// Logger receives the server's structured log lines (every one carries
	// trace_id/job_id where applicable). Nil uses slog.Default().
	Logger *slog.Logger
	// DisableTracing turns off per-job tracing entirely: jobs run with a
	// nil tracer (the zero-cost fast path) and GET /jobs/{id}/trace answers
	// 404.
	DisableTracing bool
	// MaxTraceSpans caps recorded spans per job trace; starts beyond it are
	// counted as dropped, not recorded. 0 = obs.DefaultMaxSpans.
	MaxTraceSpans int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.JobWorkers < 0 {
		c.JobWorkers = 1
	}
	if c.MaxGridPoints <= 0 {
		c.MaxGridPoints = 1 << 20
	}
	if c.MaxQubits <= 0 {
		c.MaxQubits = 20
	}
	if c.Quantum <= 0 {
		c.Quantum = exec.DefaultQuantum
	}
	if c.MaxJobsKept <= 0 {
		c.MaxJobsKept = 512
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ArtifactLRU <= 0 {
		c.ArtifactLRU = 32
	}
	if c.MaxQueryPoints <= 0 {
		c.MaxQueryPoints = 1 << 16
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the reconstruction job service.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	sem   chan struct{}
	start time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing and eviction
	seq    int64
	caches map[string]*exec.Cache

	// artifacts is the landscape-as-a-service store: finished
	// reconstructions publish into it and /landscapes serves out of it.
	artifacts *artifactStore

	// log is the structured logger; metrics holds the per-stage latency
	// histograms fed by span completions (the tracer OnEnd hook).
	log     *slog.Logger
	metrics *obs.Registry

	panics atomic.Int64
	// fleetRetries and fleetQuarantines accumulate over finished fleet
	// jobs: failed dispatches that were retried or re-dispatched, and
	// quarantine transitions (bench + re-admit).
	fleetRetries     atomic.Int64
	fleetQuarantines atomic.Int64
	// droppedSpans accumulates span starts rejected by per-job caps, over
	// finished jobs.
	droppedSpans atomic.Int64
}

// New builds a server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		start:      time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		caches:     make(map[string]*exec.Cache),
		artifacts:  newArtifactStore(cfg.ArtifactDir, cfg.ArtifactLRU, cfg.JobWorkers),
		log:        cfg.Logger,
		metrics:    obs.NewRegistry(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /landscapes", s.handleArtifactList)
	mux.HandleFunc("GET /landscapes/{id}", s.handleArtifactGet)
	mux.HandleFunc("GET /landscapes/{id}/grid", s.handleArtifactGrid)
	mux.HandleFunc("POST /landscapes/{id}/query", s.handleArtifactQuery)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler with a request-level panic-recovery
// boundary: a handler panic answers 500 (best effort) instead of killing
// the connection handler goroutine with a stack dump.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			writeJSON(w, http.StatusInternalServerError,
				map[string]any{"error": fmt.Sprintf("internal panic: %v", p)})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Close cancels every in-flight job and waits for them to drain. The server
// keeps answering requests (new submissions fail fast with canceled jobs);
// callers shut the HTTP listener down separately.
func (s *Server) Close() {
	s.baseCancel()
	s.wg.Wait()
}

// Drain waits up to timeout for in-flight jobs to finish naturally, then
// cancels the stragglers — the graceful half of shutdown.
func (s *Server) Drain(timeout time.Duration) {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
	}
	s.Close()
}

// cacheFor returns the shared cache for a device configuration, creating it
// on first use.
func (s *Server) cacheFor(configKey string) *exec.Cache {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.caches[configKey]
	if !ok {
		c = exec.NewCache(s.cfg.Quantum)
		s.caches[configKey] = c
	}
	return c
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	spec := new(JobSpec)
	if err := dec.Decode(spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "malformed job: " + err.Error()})
		return
	}
	// The trace starts before validation so rejected submissions are
	// measured too (their tracer is simply discarded with the request).
	tr := s.newTracer()
	root := tr.Start("job")
	vspan := root.Child("validate")
	built, err := buildJob(spec, s.cfg)
	vspan.SetError(err)
	vspan.End()
	if err != nil {
		root.End()
		status := http.StatusBadRequest
		var se *specError
		if !errors.As(err, &se) {
			status = http.StatusInternalServerError
		}
		s.log.Warn("job rejected", "trace_id", tr.ID(), "error", err.Error())
		writeJSON(w, status, map[string]any{"error": err.Error()})
		return
	}

	j := &Job{
		tag:       spec.Tag,
		spec:      spec,
		built:     built,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
		trace:     tr,
		root:      root,
	}
	if built.cacheable {
		j.cache = s.cacheFor(built.configKey)
	}

	// Wait-mode jobs live on the request context (client disconnect
	// cancels the solve); async jobs live on the server context (DELETE
	// cancels). Both die on shutdown.
	parent := s.baseCtx
	if spec.Wait {
		parent = r.Context()
	}
	ctx, cancel := context.WithCancel(parent)
	j.cancel = cancel
	if spec.Wait {
		stop := context.AfterFunc(s.baseCtx, cancel)
		defer stop()
	}
	// The root span rides the job context: every layer below picks it up
	// via obs.Start and attaches its stage spans to this job's trace.
	ctx = obs.ContextWithSpan(ctx, root)

	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("j%06d", s.seq)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()
	root.SetAttr("job_id", j.id)
	s.log.Info("job submitted",
		"trace_id", tr.ID(), "job_id", j.id, "tag", j.tag,
		"wait", spec.Wait, "fleet", built.fleetOpts != nil,
		"grid_points", built.grid.Size())

	s.wg.Add(1)
	if !spec.Wait {
		go s.runJob(ctx, j)
		writeJSON(w, http.StatusAccepted, map[string]any{"id": j.id, "state": StateQueued})
		return
	}
	s.runJob(ctx, j)
	s.mu.Lock()
	status := j.httpStatus
	view := j.view(time.Now())
	s.mu.Unlock()
	if status == 0 {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, view)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var view jobJSON
	if ok {
		view = j.view(time.Now())
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.mu.Lock()
	views := make([]jobJSON, 0, len(s.order))
	for _, id := range s.order {
		v := s.jobs[id].view(now)
		v.Result = nil // summaries only; poll the job for its result
		views = append(views, v)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var cancel context.CancelFunc
	if ok {
		cancel = j.cancel
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown job"})
		return
	}
	cancel()
	// Wait for the job to acknowledge so the response reflects its final
	// state (cancellation stops the solve between engine chunks / solver
	// iterations, so this is prompt).
	select {
	case <-j.done:
	case <-time.After(5 * time.Second):
	}
	s.mu.Lock()
	view := j.view(time.Now())
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// cacheStats is one configuration's cache accounting.
type cacheStats struct {
	Config string `json:"config"`
	Len    int    `json:"len"`
	Hits   int64  `json:"hits"`
	Misses int64  `json:"misses"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.mu.Lock()
	counts := map[JobState]int{}
	recent := make([]jobJSON, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		counts[j.state]++
		v := j.view(now)
		v.Result = nil
		recent = append(recent, v)
	}
	total := len(recent)
	if len(recent) > 32 {
		recent = recent[len(recent)-32:]
	}
	caches := make([]cacheStats, 0, len(s.caches))
	var totalHits, totalMisses int64
	totalLen := 0
	for key, c := range s.caches {
		st := cacheStats{Config: key, Len: c.Len(), Hits: c.Hits(), Misses: c.Misses()}
		totalHits += st.Hits
		totalMisses += st.Misses
		totalLen += st.Len
		caches = append(caches, st)
	}
	s.mu.Unlock()
	sort.Slice(caches, func(i, j int) bool { return caches[i].Config < caches[j].Config })

	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s":     time.Since(s.start).Seconds(),
		"goroutines":   runtime.NumGoroutine(),
		"panics":       s.panics.Load(),
		"max_parallel": s.cfg.MaxConcurrent,
		"jobs": map[string]any{
			"total":    total,
			"by_state": counts,
			"recent":   recent,
		},
		"cache": map[string]any{
			"configs":      caches,
			"total_len":    totalLen,
			"total_hits":   totalHits,
			"total_misses": totalMisses,
		},
		"fleet": map[string]any{
			"retries_total":           s.fleetRetries.Load(),
			"quarantine_events_total": s.fleetQuarantines.Load(),
		},
		"artifacts": s.artifactStats(),
	})
}

// evictLocked trims finished jobs beyond MaxJobsKept, oldest first. Unfinished
// jobs are never evicted.
func (s *Server) evictLocked() {
	excess := len(s.order) - s.cfg.MaxJobsKept
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		finished := j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
		if excess > 0 && finished {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// jsonFloat is a float64 whose JSON form is null when non-finite —
// encoding/json rejects NaN/±Inf outright, which would otherwise turn a
// response carrying the documented NaN sentinel into an empty body.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (v jsonFloat) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, f, 'g', -1, 64), nil
}

// jsonFloats is a float64 slice encoding non-finite entries as null.
type jsonFloats []float64

// MarshalJSON implements json.Marshaler.
func (d jsonFloats) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 2+16*len(d))
	buf = append(buf, '[')
	for i, v := range d {
		if i > 0 {
			buf = append(buf, ',')
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			buf = append(buf, "null"...)
		} else {
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
	}
	return append(buf, ']'), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Encode before writing the header: an encoding failure after
	// WriteHeader could only produce a truncated 200.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		status = http.StatusInternalServerError
		buf.Reset()
		fmt.Fprintf(&buf, "{\"error\":%q}\n", "encoding response: "+err.Error())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}
