package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fleetJob is a fast fleet-mode job: three heterogeneous virtual devices
// over the analytic backend, streaming thresholds, wait mode.
func fleetJob(extra string) string {
	return `{
		"problem": {"kind": "maxcut3", "n": 8, "seed": 7},
		"backend": {"kind": "analytic"},
		"grid": {"beta_n": 12, "gamma_n": 14},
		"options": {"sampling_fraction": 0.5, "seed": 3},
		"fleet": {
			"devices": [
				{"name": "hiq", "queue_median": 120, "sigma": 0.5, "exec": 1},
				{"name": "mid", "queue_median": 30, "sigma": 0.5, "exec": 5},
				{"name": "slow", "queue_median": 10, "sigma": 0.5, "exec": 12}
			]` + extra + `
		},
		"wait": true
	}`
}

func TestFleetJobHappyPath(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, out := do(t, s, "POST", "/jobs", fleetJob(""))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	if out["state"] != string(StateDone) {
		t.Fatalf("state %v error %v", out["state"], out["error"])
	}
	res, _ := out["result"].(map[string]any)
	if res == nil {
		t.Fatalf("no result: %v", out)
	}
	if got := res["samples"].(float64); got != 84 {
		t.Fatalf("samples %v, want 84 (50%% of 168)", got)
	}
	fl, _ := res["fleet"].(map[string]any)
	if fl == nil {
		t.Fatalf("no fleet summary: %v", res)
	}
	if fl["makespan_s"].(float64) <= 0 {
		t.Fatalf("fleet makespan %v", fl["makespan_s"])
	}
	if fl["speedup"].(float64) <= 1 {
		t.Fatalf("fleet speedup %v", fl["speedup"])
	}
	if int(fl["solves"].(float64)) < 1 {
		t.Fatalf("fleet solves %v", fl["solves"])
	}
	sizes, _ := fl["batch_sizes"].(map[string]any)
	if len(sizes) != 3 {
		t.Fatalf("batch sizes %v", fl["batch_sizes"])
	}
	// The queue-dominated device must have learned a larger batch than
	// the execution-dominated one.
	if sizes["hiq"].(float64) <= sizes["slow"].(float64) {
		t.Errorf("hiq learned %v, slow %v — adaptation did not separate them", sizes["hiq"], sizes["slow"])
	}
	perDev, _ := fl["jobs_per_device"].(map[string]any)
	total := 0.0
	for _, v := range perDev {
		total += v.(float64)
	}
	if total != 84 {
		t.Fatalf("per-device jobs sum to %v, want 84", total)
	}
}

func TestFleetJobEagerCutAndCache(t *testing.T) {
	s := newTestServer(t, Config{})
	// First run primes the shared cache (full wait).
	_, out := do(t, s, "POST", "/jobs", fleetJob(""))
	if out["state"] != string(StateDone) {
		t.Fatalf("first job: %v", out)
	}
	// Second identical fleet job: every point is cache-served at virtual
	// time zero.
	_, out = do(t, s, "POST", "/jobs", fleetJob(""))
	res := out["result"].(map[string]any)
	fl := res["fleet"].(map[string]any)
	if got := fl["cache_served"].(float64); got != 84 {
		t.Fatalf("cache served %v of 84", got)
	}
	if got := fl["makespan_s"].(float64); got != 0 {
		t.Fatalf("fully cached fleet run has makespan %v, want 0", got)
	}
	if res["cache_hits"].(float64) != 84 {
		t.Fatalf("cache hits %v, want 84", res["cache_hits"])
	}

	// Eager cut: heavy tails plus keep_fraction trims samples.
	cut := `,
			"seed": 99,
			"keep_fraction": 0.9,
			"thresholds": [0.5]`
	heavy := strings.Replace(fleetJob(cut), `"sigma": 0.5, "exec": 1`,
		`"sigma": 0.5, "exec": 1, "tail_prob": 0.3, "tail_factor": 40`, 1)
	// A different problem seed keeps this run off the primed cache.
	heavy = strings.Replace(heavy, `"seed": 7`, `"seed": 8`, 1)
	_, out = do(t, s, "POST", "/jobs", heavy)
	if out["state"] != string(StateDone) {
		t.Fatalf("eager job: %v", out)
	}
	res = out["result"].(map[string]any)
	fl = res["fleet"].(map[string]any)
	if fl["timeout_s"].(float64) > fl["makespan_s"].(float64) {
		t.Fatalf("timeout %v past makespan %v", fl["timeout_s"], fl["makespan_s"])
	}
	samples := res["samples"].(float64)
	if samples < 0.9*84 || samples > 84 {
		t.Fatalf("eager job kept %v samples of 84 at keep=0.9", samples)
	}
}

func TestFleetJobValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	bad := []string{
		// No devices.
		`{"problem": {"kind": "maxcut3", "n": 8, "seed": 7}, "backend": {"kind": "analytic"},
		  "grid": {"beta_n": 12, "gamma_n": 14}, "options": {"sampling_fraction": 0.5},
		  "fleet": {"devices": []}}`,
		// Negative queue median.
		`{"problem": {"kind": "maxcut3", "n": 8, "seed": 7}, "backend": {"kind": "analytic"},
		  "grid": {"beta_n": 12, "gamma_n": 14}, "options": {"sampling_fraction": 0.5},
		  "fleet": {"devices": [{"queue_median": -5}]}}`,
		// Missing exec time.
		`{"problem": {"kind": "maxcut3", "n": 8, "seed": 7}, "backend": {"kind": "analytic"},
		  "grid": {"beta_n": 12, "gamma_n": 14}, "options": {"sampling_fraction": 0.5},
		  "fleet": {"devices": [{"queue_median": 10}]}}`,
		// Failure probability 1.
		`{"problem": {"kind": "maxcut3", "n": 8, "seed": 7}, "backend": {"kind": "analytic"},
		  "grid": {"beta_n": 12, "gamma_n": 14}, "options": {"sampling_fraction": 0.5},
		  "fleet": {"devices": [{"queue_median": 10, "exec": 1, "failure_prob": 1.0}]}}`,
		// Threshold at 1.
		`{"problem": {"kind": "maxcut3", "n": 8, "seed": 7}, "backend": {"kind": "analytic"},
		  "grid": {"beta_n": 12, "gamma_n": 14}, "options": {"sampling_fraction": 0.5},
		  "fleet": {"devices": [{"queue_median": 10, "exec": 1}], "thresholds": [1.0]}}`,
		// Keep fraction out of range.
		`{"problem": {"kind": "maxcut3", "n": 8, "seed": 7}, "backend": {"kind": "analytic"},
		  "grid": {"beta_n": 12, "gamma_n": 14}, "options": {"sampling_fraction": 0.5},
		  "fleet": {"devices": [{"queue_median": 10, "exec": 1}], "keep_fraction": 2}}`,
		// Negative risk option.
		`{"problem": {"kind": "maxcut3", "n": 8, "seed": 7}, "backend": {"kind": "analytic"},
		  "grid": {"beta_n": 12, "gamma_n": 14}, "options": {"sampling_fraction": 0.5},
		  "fleet": {"devices": [{"queue_median": 10, "exec": 1}], "risk_aware": true, "tail_budget": -1}}`,
	}
	for i, body := range bad {
		rec, _ := do(t, s, "POST", "/jobs", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("bad fleet spec %d answered %d, want 400", i, rec.Code)
		}
	}
	// Duplicate device names (explicit, or an explicit name colliding with
	// an unnamed device's default) would collapse the name-keyed result
	// maps and metrics gauges.
	for _, devs := range []string{
		`[{"name": "a", "queue_median": 10, "exec": 1}, {"name": "a", "queue_median": 20, "exec": 1}]`,
		`[{"queue_median": 10, "exec": 1}, {"name": "qpu-0", "queue_median": 20, "exec": 1}]`,
	} {
		body := `{"problem": {"kind": "maxcut3", "n": 8, "seed": 7}, "backend": {"kind": "analytic"},
		  "grid": {"beta_n": 12, "gamma_n": 14}, "options": {"sampling_fraction": 0.5},
		  "fleet": {"devices": ` + devs + `}}`
		rec, out := do(t, s, "POST", "/jobs", body)
		if rec.Code != http.StatusBadRequest || !strings.Contains(out["error"].(string), "duplicate device name") {
			t.Errorf("duplicate device names answered %d %v, want 400", rec.Code, out["error"])
		}
	}
}

// TestFleetScenarioValidation pins 400s for malformed scenario specs, both
// per-device and fleet-level.
func TestFleetScenarioValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	mk := func(fleetExtra, devExtra string) string {
		return `{"problem": {"kind": "maxcut3", "n": 8, "seed": 7}, "backend": {"kind": "analytic"},
		  "grid": {"beta_n": 12, "gamma_n": 14}, "options": {"sampling_fraction": 0.5},
		  "fleet": {"devices": [{"queue_median": 10, "exec": 1` + devExtra + `}]` + fleetExtra + `}}`
	}
	bad := []string{
		// Unknown kind.
		mk("", `, "scenario": {"kind": "meteor"}`),
		// Missing kind.
		mk("", `, "scenario": {"duration": 10}`),
		// Drift without a rate.
		mk("", `, "scenario": {"kind": "drift"}`),
		// Dropout without a duration.
		mk("", `, "scenario": {"kind": "dropout", "start": 5}`),
		// Queue spikes with a non-amplifying factor.
		mk("", `, "scenario": {"kind": "queue_spikes", "spacing": 100, "duration": 50, "factor": 1}`),
		// Retry storm with zero probability.
		mk("", `, "scenario": {"kind": "retry_storm", "spacing": 100, "duration": 50, "prob": 0}`),
		// Negative parameter.
		mk("", `, "scenario": {"kind": "dropout", "start": -1, "duration": 10}`),
		// Fleet-level scenario is validated too.
		mk(`, "scenario": {"kind": "queue_spikes", "spacing": 0, "duration": 50, "factor": 4}`, ""),
	}
	for i, body := range bad {
		rec, out := do(t, s, "POST", "/jobs", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("bad scenario %d answered %d: %v", i, rec.Code, out["error"])
		}
	}
	// A well-formed scenario on a well-formed device is accepted and runs.
	good := mk("", `, "scenario": {"kind": "drift", "start": 0, "rate": 0.001, "max": 4}`)
	good = strings.Replace(good, `"fleet":`, `"wait": true, "fleet":`, 1)
	rec, out := do(t, s, "POST", "/jobs", good)
	if rec.Code != http.StatusOK || out["state"] != string(StateDone) {
		t.Fatalf("drift job answered %d: %v", rec.Code, out)
	}
}

// TestFleetChaosJob runs a risk-aware fleet job with a mid-run-forever
// dropout injected on one device and checks the robustness surface
// end-to-end: the job completes, the result reports retries, quarantine
// events, and per-device tail estimates, and /metrics and /stats expose the
// retry/quarantine counters.
func TestFleetChaosJob(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{
		"problem": {"kind": "maxcut3", "n": 8, "seed": 7},
		"backend": {"kind": "analytic"},
		"grid": {"beta_n": 12, "gamma_n": 14},
		"options": {"sampling_fraction": 0.5, "seed": 3},
		"fleet": {
			"seed": 7,
			"risk_aware": true,
			"devices": [
				{"name": "good", "queue_median": 30, "sigma": 0.5, "exec": 1},
				{"name": "dark", "queue_median": 10, "sigma": 0.5, "exec": 1,
				 "scenario": {"kind": "dropout", "start": 0, "duration": 1000000000}}
			]
		},
		"wait": true
	}`
	rec, out := do(t, s, "POST", "/jobs", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	if out["state"] != string(StateDone) {
		t.Fatalf("state %v error %v — a dropout must not fail the job", out["state"], out["error"])
	}
	res := out["result"].(map[string]any)
	fl, _ := res["fleet"].(map[string]any)
	if fl == nil {
		t.Fatalf("no fleet summary: %v", res)
	}
	if fl["retries"].(float64) == 0 {
		t.Error("no retries recorded under a dark device")
	}
	events, _ := fl["quarantine_events"].([]any)
	if len(events) == 0 {
		t.Fatal("no quarantine events recorded")
	}
	first := events[0].(map[string]any)
	if first["device"] != "dark" || first["reason"] == "" {
		t.Errorf("first quarantine event %v, want the dark device benched", first)
	}
	devs, _ := fl["devices"].([]any)
	if len(devs) != 2 {
		t.Fatalf("devices %v, want per-device state for both", fl["devices"])
	}
	for _, d := range devs {
		ds := d.(map[string]any)
		if ds["name"] == "dark" {
			if ds["quarantined"] != true || ds["fails"].(float64) == 0 {
				t.Errorf("dark device state %v, want quarantined with fails", ds)
			}
		}
		if _, ok := ds["tail_prob"]; !ok {
			t.Errorf("device state %v missing tail estimates", ds)
		}
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, req)
	mbody := mrec.Body.String()
	if metricValue(t, mbody, "oscard_fleet_retries_total") == 0 {
		t.Error("oscard_fleet_retries_total still zero after chaos job")
	}
	if metricValue(t, mbody, "oscard_fleet_quarantine_events_total") == 0 {
		t.Error("oscard_fleet_quarantine_events_total still zero after chaos job")
	}

	_, stats := do(t, s, "GET", "/stats", "")
	fs, _ := stats["fleet"].(map[string]any)
	if fs == nil || fs["retries_total"].(float64) == 0 || fs["quarantine_events_total"].(float64) == 0 {
		t.Errorf("/stats fleet block %v, want nonzero retry and quarantine totals", stats["fleet"])
	}
}

// TestFleetSharedScenarioJob pins the correlated-injection path: one
// fleet-level retry-storm instance shared by every device still yields a
// completed job under risk-aware scheduling.
func TestFleetSharedScenarioJob(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{
		"problem": {"kind": "maxcut3", "n": 8, "seed": 7},
		"backend": {"kind": "analytic"},
		"grid": {"beta_n": 12, "gamma_n": 14},
		"options": {"sampling_fraction": 0.5, "seed": 3},
		"fleet": {
			"seed": 21,
			"risk_aware": true,
			"scenario": {"kind": "retry_storm", "spacing": 300, "duration": 400, "prob": 0.9},
			"devices": [
				{"name": "a", "queue_median": 30, "sigma": 0.5, "exec": 1},
				{"name": "b", "queue_median": 10, "sigma": 0.5, "exec": 5}
			]
		},
		"wait": true
	}`
	rec, out := do(t, s, "POST", "/jobs", body)
	if rec.Code != http.StatusOK || out["state"] != string(StateDone) {
		t.Fatalf("storm job answered %d: %v", rec.Code, out)
	}
	res := out["result"].(map[string]any)
	if res["samples"].(float64) != 84 {
		t.Fatalf("samples %v, want the full 84 despite the storm", res["samples"])
	}
}

func TestPromLabelEscaping(t *testing.T) {
	for in, want := range map[string]string{
		"plain":        "plain",
		"a\tb":         "a b",
		"a\nb":         `a\nb`,
		`quo"te`:       `quo\"te`,
		`back\slash`:   `back\\slash`,
		"ctrl\x00\x7f": "ctrl  ",
		"unicode-µ":    "unicode-µ",
	} {
		if got := promLabel(in); got != want {
			t.Errorf("promLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCanceledFleetJobDropsProgress: a finished-by-cancellation fleet job
// must stop reporting progress on GET and exporting gauges on /metrics.
func TestCanceledFleetJobDropsProgress(t *testing.T) {
	s := newTestServer(t, Config{})
	j := &Job{
		id:       "j000099",
		state:    StateRunning,
		progress: &FleetProgress{SamplesDone: 1, SamplesTotal: 10, Devices: map[string]int{"a": 4}},
		done:     make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.finishJob(j, nil, context.Canceled)

	_, out := do(t, s, "GET", "/jobs/"+j.id, "")
	if out["state"] != string(StateCanceled) {
		t.Fatalf("state %v", out["state"])
	}
	if out["progress"] != nil {
		t.Error("canceled job still reports progress")
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), `job="j000099"`) {
		t.Error("canceled job still exports fleet gauges")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	// Run one plain and one fleet job so counters move.
	do(t, s, "POST", "/jobs", smallJob())
	do(t, s, "POST", "/jobs", fleetJob(""))

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE oscard_jobs gauge",
		`oscard_jobs{state="done"} 2`,
		"# TYPE oscard_cache_hits_total counter",
		"oscard_cache_misses_total",
		"oscard_cache_entries",
		"oscard_panics_total 0",
		"oscard_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
	// The two jobs looked up 42 + 84 points on one shared config cache;
	// every miss became a stored entry (overlapping points hit).
	hits := metricValue(t, body, "oscard_cache_hits_total")
	misses := metricValue(t, body, "oscard_cache_misses_total")
	entries := metricValue(t, body, "oscard_cache_entries")
	if hits+misses != 42+84 {
		t.Errorf("hits %v + misses %v != 126 lookups", hits, misses)
	}
	if entries != misses {
		t.Errorf("entries %v != misses %v (every missed point should be stored)", entries, misses)
	}
}

func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found:\n%s", name, body)
	return 0
}

// TestMetricsFleetGauges pins the per-job fleet gauges by injecting a
// running fleet job's progress directly (the callback path is exercised by
// TestFleetJobProgressVisible), then checking a finished job stops
// exporting.
func TestMetricsFleetGauges(t *testing.T) {
	s := newTestServer(t, Config{})
	j := &Job{
		id:    "j000042",
		state: StateRunning,
		progress: &FleetProgress{
			SamplesDone: 40, SamplesTotal: 84, VirtualTime: 123,
			Solves: 1, Residual: 0.5,
			Devices: map[string]int{"hiq": 96, "slow": 2},
		},
		done: make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	scrape := func() string {
		req := httptest.NewRequest("GET", "/metrics", nil)
		r := httptest.NewRecorder()
		s.ServeHTTP(r, req)
		return r.Body.String()
	}
	body := scrape()
	for _, want := range []string{
		`oscard_fleet_batch_size{job="j000042",device="hiq"} 96`,
		`oscard_fleet_batch_size{job="j000042",device="slow"} 2`,
		`oscard_fleet_samples_done{job="j000042"} 40`,
		`oscard_fleet_samples_total{job="j000042"} 84`,
		`oscard_fleet_solves{job="j000042"} 1`,
		`oscard_jobs{state="running"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}

	// Once the job carries a result, its gauges disappear.
	s.mu.Lock()
	j.state = StateDone
	j.result = &JobResult{}
	s.mu.Unlock()
	if strings.Contains(scrape(), `oscard_fleet_batch_size{job="j000042"`) {
		t.Error("finished job still exports fleet gauges")
	}
}

// TestFleetJobProgressVisible checks the polling surface: a fleet job's
// progress is published while it runs (observed via the OnProgress-driven
// progress field after at least one batch merged) and replaced by the result
// at completion.
func TestFleetJobProgressVisible(t *testing.T) {
	s := newTestServer(t, Config{})
	body := strings.Replace(fleetJob(""), `"wait": true`, `"wait": false`, 1)
	rec, out := do(t, s, "POST", "/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	id := out["id"].(string)
	sawProgress := false
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, jb := do(t, s, "GET", "/jobs/"+id, "")
		switch jb["state"] {
		case string(StateDone):
			if jb["progress"] != nil {
				t.Fatal("finished job still reports progress")
			}
			if jb["result"] == nil {
				t.Fatal("finished job has no result")
			}
			// The streaming path publishes progress before finishing;
			// whether a poll catches it is timing-dependent, so its
			// absence is not a failure — the metrics injection test
			// covers the rendering.
			_ = sawProgress
			return
		case string(StateFailed), string(StateCanceled):
			t.Fatalf("job %v: %v", jb["state"], jb["error"])
		}
		if p, ok := jb["progress"].(map[string]any); ok {
			sawProgress = true
			if p["samples_total"].(float64) != 84 {
				t.Fatalf("progress total %v, want 84", p["samples_total"])
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
